package questgo

import (
	"context"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"questgo/internal/benchutil"
)

// Integration tests: every command-line tool must run end to end on a tiny
// workload and print its expected headline. These use `go run`, so they
// also catch build breaks in the mains.

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCmdDQMC(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	ckptPath := filepath.Join(dir, "run.ckpt")
	out := runTool(t, "./cmd/dqmc", "-nx", "2", "-ny", "2", "-l", "8",
		"-warm", "3", "-meas", "6", "-json", jsonPath, "-checkpoint", ckptPath)
	for _, want := range []string{"density", "Table I profile", "Stratification"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dqmc output missing %q:\n%s", want, out)
		}
	}
	// Resume from the checkpoint.
	out = runTool(t, "./cmd/dqmc", "-resume", ckptPath, "-warm", "0", "-meas", "3")
	if !strings.Contains(out, "density") {
		t.Fatalf("resumed dqmc output:\n%s", out)
	}
}

func TestCmdKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/kernels", "-sizes", "32,48", "-reps", "1")
	if !strings.Contains(out, "DGEQP3") {
		t.Fatalf("kernels output:\n%s", out)
	}
}

func TestCmdAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/accuracy", "-nx", "4", "-l", "20", "-evals", "4", "-us", "4")
	if !strings.Contains(out, "median") {
		t.Fatalf("accuracy output:\n%s", out)
	}
}

func TestCmdGreens(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/greens", "-sizes", "16", "-l", "20", "-reps", "1")
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Fatalf("greens output:\n%s", out)
	}
}

func TestCmdScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/scaling", "-sizes", "4,16", "-l", "8", "-warm", "1", "-meas", "2")
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "nominal") {
		t.Fatalf("scaling output:\n%s", out)
	}
}

func TestCmdFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, fig := range []string{"5", "6", "7"} {
		out := runTool(t, "./cmd/figures", "-fig="+fig, "-sizes", "4",
			"-beta", "1", "-l", "8", "-warm", "2", "-meas", "4")
		if !strings.Contains(out, "Figure "+fig) {
			t.Fatalf("figures -fig=%s output:\n%s", fig, out)
		}
	}
}

func TestCmdGPUBench(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/gpubench", "-fig=9", "-sizes", "16", "-k", "4")
	if !strings.Contains(out, "cluster") {
		t.Fatalf("gpubench fig9 output:\n%s", out)
	}
	out = runTool(t, "./cmd/gpubench", "-fig=10", "-sizes", "16", "-l", "8", "-k", "4")
	if !strings.Contains(out, "hybrid") {
		t.Fatalf("gpubench fig10 output:\n%s", out)
	}
}

func TestCmdSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/sweep", "-scan", "u", "-values", "0,4",
		"-nx", "2", "-beta", "1", "-dtau", "0.25", "-warm", "2", "-meas", "4")
	if !strings.Contains(out, "S(pi,pi)") {
		t.Fatalf("sweep output:\n%s", out)
	}
}

func TestCmdExtrapolate(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	out := runTool(t, "./cmd/extrapolate", "-mode", "trotter", "-obs", "docc",
		"-ls", "4,8", "-nx", "2", "-beta", "1", "-warm", "5", "-meas", "10")
	if !strings.Contains(out, "extrapolation") {
		t.Fatalf("extrapolate output:\n%s", out)
	}
}

func TestCmdDQMCLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_service.json")
	out := runTool(t, "./cmd/dqmcload", "-jobs", "4", "-shards", "1", "-json", jsonPath)
	for _, want := range []string{"cache:", "speedup", "worker scaling"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dqmcload output missing %q:\n%s", want, out)
		}
	}
	recs, err := benchutil.ReadRecords(jsonPath)
	if err != nil {
		t.Fatalf("read records: %v", err)
	}
	names := map[string]bool{}
	for _, r := range recs {
		if r.Bench != "service" {
			t.Fatalf("unexpected bench %q", r.Bench)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"cache_cold", "cache_hit", "workload_w1", "workload_w2", "worker_scaling"} {
		if !names[want] {
			t.Fatalf("missing record series %q in %v", want, names)
		}
	}
}

// TestCmdDQMCD boots the daemon on a random port and drives one job
// through the HTTP API with the Go client.
func TestCmdDQMCD(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// The daemon runs until signaled; drive the same server surface
	// in-process instead of managing a child process lifetime here
	// (cmd/dqmcd is a flag-parsing shim over NewServer).
	svc, err := NewServer(ServerOptions{Workers: 1})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer func() { _ = svc.Close() }()
	hs := httptest.NewServer(svc)
	defer hs.Close()
	cl := NewServiceClient(hs.URL)

	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.L = 2, 2, 8
	cfg.WarmSweeps, cfg.MeasSweeps = 3, 6
	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := cl.WaitResult(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.Results == nil || res.Results.Density == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.ConfigHash != cfg.Hash() {
		t.Fatalf("hash mismatch: %s vs %s", res.ConfigHash, cfg.Hash())
	}
}

func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// Examples run full simulations; building them catches interface
	// drift without the runtime cost.
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples failed to build: %v\n%s", err, out)
	}
}

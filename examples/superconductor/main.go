// Superconductor: the attractive Hubbard model. For U < 0 the
// Hubbard-Stratonovich field couples to the charge, both spin
// determinants coincide, and the weight is non-negative at any filling —
// DQMC with no sign problem. The model's low-temperature physics is
// s-wave pairing: this example tracks the uniform pair-field
// susceptibility P_s(q=0) as the temperature drops and contrasts it with
// the free-electron value, showing the pairing scale emerge.
//
// Run with:
//
//	go run ./examples/superconductor
package main

import (
	"fmt"
	"log"
	"math"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/measure"
	"questgo/internal/rng"
	"questgo/internal/update"
)

func main() {
	const (
		nx   = 4
		u    = -4.0
		dtau = 0.125
	)
	fmt.Printf("Attractive Hubbard model, %dx%d, U = %g (half filling)\n\n", nx, nx, u)
	fmt.Println("beta    P_s(q=0)   free P_s   ratio   docc    <m_z^2>")
	for _, beta := range []float64{1, 2, 4} {
		slices := int(beta / dtau)
		lat := lattice.NewSquare(nx, nx, 1)
		model, err := hubbard.NewModel(lat, u, 0, beta, slices)
		if err != nil {
			log.Fatal(err)
		}
		prop := hubbard.NewPropagator(model)
		r := rng.New(7)
		field := hubbard.NewRandomField(slices, model.N(), r)
		sw := update.NewSweeper(prop, field, r, update.Options{ClusterK: 8})
		for i := 0; i < 40; i++ {
			sw.Sweep()
		}
		var ps, docc, mom float64
		const samples = 8
		for s := 0; s < samples; s++ {
			sw.Sweep()
			p := measure.MeasurePairSusceptibility(lat, prop, field, 4, 8)
			ps += p.PairQ0() / samples
			et := measure.Measure(lat, sw.GreenUp(), sw.GreenDn(), sw.Sign())
			docc += et.DoubleOcc / samples
			mom += et.LocalMoment / samples
		}
		free := freePairQ0(lat, beta)
		fmt.Printf("%4.1f    %7.3f    %7.3f   %5.2f   %.3f   %.3f\n",
			beta, ps, free, ps/free, docc, mom)
	}
	fmt.Println()
	fmt.Println("The interacting P_s grows much faster than the free (log T) bubble —")
	fmt.Println("the attractive model's s-wave pairing instability. Double occupancy")
	fmt.Println("above 0.25 and a suppressed local moment show the on-site pairs.")
}

func freePairQ0(lat *lattice.Lattice, beta float64) float64 {
	var out float64
	for _, kp := range lat.MomentumGrid() {
		eps := -2 * (math.Cos(kp.Kx) + math.Cos(kp.Ky))
		if math.Abs(eps) < 1e-12 {
			out += beta / 4
		} else {
			out += math.Tanh(beta*eps/2) / (2 * eps)
		}
	}
	return out / float64(lat.N())
}

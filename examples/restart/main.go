// Restart: long DQMC runs (the paper's production jobs take 36 hours)
// need checkpoint files. This example runs half a simulation, writes a
// restart file, "crashes", resumes from disk and finishes — and verifies
// that the resumed chain gives exactly the observables the uninterrupted
// run would have produced.
//
// Run with:
//
//	go run ./examples/restart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"questgo"
)

func main() {
	cfg := questgo.DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.U, cfg.Beta, cfg.L = 4, 2, 10
	cfg.WarmSweeps, cfg.MeasSweeps = 20, 40
	cfg.Seed = 99

	// Reference: the uninterrupted run.
	simRef, err := questgo.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ref := simRef.Run()

	// Interrupted: first half, checkpoint to disk, resume, second half.
	first := cfg
	first.WarmSweeps, first.MeasSweeps = 19, 1 // same 20 pre-measurement sweeps
	sim1, err := questgo.NewSimulation(first)
	if err != nil {
		log.Fatal(err)
	}
	sim1.Run()

	dir, err := os.MkdirTemp("", "questgo-restart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")
	if err := sim1.Checkpoint().Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written: %s\n", path)

	ck, err := questgo.LoadCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	ck.Config.WarmSweeps, ck.Config.MeasSweeps = 0, 40
	sim2, err := questgo.Resume(ck)
	if err != nil {
		log.Fatal(err)
	}
	res := sim2.Run()

	fmt.Printf("\nuninterrupted: docc = %.6f, S(pi,pi) = %.4f\n", ref.DoubleOcc, ref.SAF)
	fmt.Printf("resumed:       docc = %.6f, S(pi,pi) = %.4f\n", res.DoubleOcc, res.SAF)
	if res.DoubleOcc == ref.DoubleOcc && res.SAF == ref.SAF {
		fmt.Println("\nbit-for-bit identical: the restart file captures the full chain state.")
	} else {
		fmt.Println("\nWARNING: resumed run diverged — this should never happen.")
	}
}

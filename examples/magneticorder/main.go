// Magnetic order: measures the z-spin correlation C_zz(r) of the
// half-filled Hubbard model on growing lattices and prints the
// checkerboard map plus the finite-size trend of the antiferromagnetic
// structure factor S(pi,pi) — the analysis behind the paper's Figure 7,
// where the long-distance value C_zz(Lx/2, Ly/2) on increasing sizes
// extrapolates to the bulk order parameter.
//
// Run with:
//
//	go run ./examples/magneticorder
package main

import (
	"fmt"
	"log"

	"questgo"
	"questgo/internal/stats"
)

func main() {
	sizes := []int{4, 6, 8}
	u, beta := 4.0, 4.0

	fmt.Printf("Half-filled Hubbard model, U=%g, beta=%g\n", u, beta)
	fmt.Println()
	var czzLong, czzErr []float64
	for _, nx := range sizes {
		cfg := questgo.DefaultConfig()
		cfg.Nx, cfg.Ny = nx, nx
		cfg.U = u
		cfg.Beta = beta
		cfg.L = 32
		cfg.WarmSweeps = 60
		cfg.MeasSweeps = 150
		cfg.Seed = uint64(100 + nx)

		sim, err := questgo.NewSimulation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run()

		fmt.Printf("--- %dx%d ---\n", nx, nx)
		fmt.Println("C_zz(r) sign map (checkerboard = antiferromagnetic order):")
		for dy := 0; dy < nx; dy++ {
			for dx := 0; dx < nx; dx++ {
				if res.Czz[dx+nx*dy] >= 0 {
					fmt.Print(" +")
				} else {
					fmt.Print(" -")
				}
			}
			fmt.Println()
		}
		half := nx / 2
		fmt.Printf("C_zz(0,0)        = %+0.4f (local moment)\n", res.Czz[0])
		fmt.Printf("C_zz(1,0)        = %+0.4f +- %.4f\n", res.Czz[1], res.CzzErr[1])
		fmt.Printf("C_zz(L/2,L/2)    = %+0.4f +- %.4f (longest distance)\n",
			res.Czz[half+nx*half], res.CzzErr[half+nx*half])
		fmt.Printf("S(pi,pi)         = %0.4f +- %.4f\n\n", res.SAF, res.SAFErr)
		czzLong = append(czzLong, res.Czz[half+nx*half])
		e := res.CzzErr[half+nx*half]
		if e < 1e-6 {
			e = 1e-6
		}
		czzErr = append(czzErr, e)
	}
	// The paper's Figure 7 methodology: extrapolate the longest-distance
	// correlation in 1/L to decide whether bulk AF order survives.
	yInf, yErr, err := stats.FiniteSizeExtrapolate(sizes, czzLong, czzErr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C_zz(L/2,L/2) extrapolated to L -> infinity: %.4f +- %.4f\n", yInf, yErr)
	fmt.Println()
	fmt.Println("S(pi,pi) grows with lattice size while C_zz at the longest distance")
	fmt.Println("stays positive — the finite-size signature of AF order that the")
	fmt.Println("paper extrapolates to the bulk limit on 12x12 ... 32x32 lattices.")
}

// Multilayer: the paper's motivating application. Simulates a stack of
// four 4x4 Hubbard planes coupled by an inter-layer hopping t_perp — a
// minimal model of a correlated-oxide multilayer/interface — and reports
// layer-resolved densities and how the in-plane antiferromagnetic
// correlations react to the coupling strength.
//
// The physics the paper is after (six to eight 12x12-14x14 layers) needs
// the N = 1024 capability its algorithms unlock; this example runs the
// same code path at laptop scale.
//
// Run with:
//
//	go run ./examples/multilayer
package main

import (
	"fmt"
	"log"

	"questgo"
)

func main() {
	for _, tperp := range []float64{0.0, 0.5, 1.0} {
		cfg := questgo.DefaultConfig()
		cfg.Nx, cfg.Ny = 4, 4
		cfg.Layers = 4
		cfg.Tperp = tperp
		cfg.U = 4
		cfg.Beta = 3
		cfg.L = 24
		cfg.WarmSweeps = 40
		cfg.MeasSweeps = 100
		cfg.Seed = 42

		sim, err := questgo.NewSimulation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("4 layers of 4x4, U=%g, beta=%g, t_perp=%g (N = %d sites)\n",
			cfg.U, cfg.Beta, tperp, cfg.Nx*cfg.Ny*cfg.Layers)
		res := sim.Run()

		fmt.Print("  layer densities:")
		for z, d := range res.LayerDensity {
			fmt.Printf("  z=%d: %.3f", z, d)
		}
		fmt.Println()
		fmt.Printf("  in-plane C_zz(1,0) = %+0.4f +- %.4f\n", res.Czz[1], res.CzzErr[1])
		fmt.Printf("  S(pi,pi)           = %0.4f +- %.4f\n", res.SAF, res.SAFErr)
		fmt.Printf("  double occupancy   = %0.4f +- %.4f\n\n", res.DoubleOcc, res.DoubleOccErr)
	}
	fmt.Println("Increasing t_perp relieves the in-plane ordering tendency: interlayer")
	fmt.Println("singlet formation competes with the planar antiferromagnetism — the")
	fmt.Println("kind of interface physics the paper's N = 1024 capability targets.")
}

// Quickstart: the smallest useful DQMC run. Simulates the half-filled
// 4x4 Hubbard model at U = 4, beta = 4 and prints the basic equal-time
// observables with Monte Carlo error bars.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"questgo"
)

func main() {
	cfg := questgo.DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.U = 4
	cfg.Beta = 4
	cfg.L = 32 // dtau = 0.125
	cfg.WarmSweeps = 100
	cfg.MeasSweeps = 300
	cfg.Seed = 2024

	sim, err := questgo.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run()

	fmt.Printf("4x4 Hubbard model, U=%g, beta=%g (half filling)\n\n", cfg.U, cfg.Beta)
	fmt.Printf("density        = %.4f +- %.4f   (exactly 1 by particle-hole symmetry)\n",
		res.Density, res.DensityErr)
	fmt.Printf("double occ.    = %.4f +- %.4f   (< 0.25: repulsion suppresses pairs)\n",
		res.DoubleOcc, res.DoubleOccErr)
	fmt.Printf("kinetic energy = %.4f +- %.4f per site\n", res.Kinetic, res.KineticErr)
	fmt.Printf("local moment   = %.4f +- %.4f   (> 0.5: moments forming)\n",
		res.LocalMoment, res.LocalMomentErr)
	fmt.Printf("S(pi,pi)       = %.4f +- %.4f   (antiferromagnetic correlations)\n",
		res.SAF, res.SAFErr)
	fmt.Printf("\nacceptance %.2f, <sign> %.3f, max wrap drift %.1e\n",
		res.Acceptance, res.AvgSign, res.MaxWrapDrift)
}

// Fermi surface: measures the momentum distribution <n_k> of the weakly
// coupled (U = 2) half-filled Hubbard model on an 8x8 lattice and prints
// it along the Brillouin-zone symmetry path (0,0) -> (pi,pi) -> (pi,0) ->
// (0,0) — the paper's Figure 5 in miniature. At half filling the Fermi
// surface is the diamond |kx| + |ky| = pi, so n(k) drops from ~1 to ~0
// halfway along the (0,0) -> (pi,pi) segment.
//
// Run with:
//
//	go run ./examples/fermisurface
package main

import (
	"fmt"
	"log"
	"strings"

	"questgo"
)

func main() {
	cfg := questgo.DefaultConfig()
	cfg.Nx, cfg.Ny = 8, 8
	cfg.U = 2
	cfg.Beta = 6
	cfg.L = 30
	cfg.WarmSweeps = 60
	cfg.MeasSweeps = 150
	cfg.Seed = 7

	sim, err := questgo.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running 8x8, U=2, beta=6 ...")
	res := sim.Run()

	idx, arc := sim.Lattice().SymmetryPath()
	fmt.Println("\n<n_k> along (0,0) -> (pi,pi) -> (pi,0) -> (0,0):")
	fmt.Println("  arc     n(k)    (bar chart)")
	for p, id := range idx {
		nk := res.Nk[id]
		bars := int(nk*40 + 0.5)
		if bars < 0 {
			bars = 0
		}
		fmt.Printf("%7.3f  %6.3f  %s\n", arc[p], nk, strings.Repeat("#", bars))
	}
	fmt.Println("\nThe sharp drop near the middle of the first segment is the Fermi")
	fmt.Println("surface crossing at k = (pi/2, pi/2).")
}

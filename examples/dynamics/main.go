// Dynamics: imaginary-time-displaced Green's functions, the "dynamic
// measurements" QUEST supports beyond the equal-time observables of the
// paper's Section V. Measures G(k, tau) at the Fermi-surface momentum
// k = (pi/2, pi/2) and at the zone corner k = (pi, pi) for the half-filled
// 4x4 Hubbard model, and contrasts U = 0 with U = 4: interactions open a
// gap, visible as a faster tau decay at the Fermi point.
//
// This exercises the stable two-sided evaluation of G(tau, 0)
// (greens.DisplacedGreen), which stays near machine accuracy where naive
// forward propagation of G(0) loses a digit per slice.
//
// Run with:
//
//	go run ./examples/dynamics
package main

import (
	"fmt"
	"log"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/measure"
	"questgo/internal/rng"
	"questgo/internal/stats"
	"questgo/internal/update"
)

func main() {
	const (
		nx     = 4
		beta   = 4.0
		slices = 32
		warm   = 40
		sweeps = 60
	)
	for _, u := range []float64{0, 4} {
		lat := lattice.NewSquare(nx, nx, 1)
		model, err := hubbard.NewModel(lat, u, 0, beta, slices)
		if err != nil {
			log.Fatal(err)
		}
		prop := hubbard.NewPropagator(model)
		r := rng.New(31)
		field := hubbard.NewRandomField(slices, model.N(), r)
		sw := update.NewSweeper(prop, field, r, update.Options{ClusterK: 8})
		for i := 0; i < warm; i++ {
			sw.Sweep()
		}
		// Accumulate G(k, tau) over measurement sweeps.
		var acc stats.VectorAccumulator
		var taus []int
		for i := 0; i < sweeps; i++ {
			sw.Sweep()
			d := measure.MeasureDisplaced(lat, prop, field, 4, slices/2, 8)
			taus = d.Taus
			// Flatten [tau][k] for the accumulator: keep two momenta.
			kFS := 1 + nx*1 // (pi/2, pi/2) on a 4x4 grid
			kAF := 2 + nx*2 // (pi, pi)
			row := make([]float64, 0, 2*len(d.Taus))
			for ti := range d.Taus {
				gk := d.GkTau(ti)
				row = append(row, gk[kFS], gk[kAF])
			}
			acc.Push(row)
		}
		mean := acc.MeanVec()
		errs := acc.ErrVec()
		dtau := beta / float64(slices)
		fmt.Printf("U = %g:\n", u)
		fmt.Println("  tau     G(k_FS,tau)          G(k_AF,tau)")
		for ti, l := range taus {
			fmt.Printf("  %5.2f   %8.4f +- %.4f   %8.4f +- %.4f\n",
				dtau*float64(l), mean[2*ti], errs[2*ti], mean[2*ti+1], errs[2*ti+1])
		}
		fmt.Println()
	}
	fmt.Println("At U = 0, G(k_FS, tau) stays ~0.5 (gapless Fermi point) while the")
	fmt.Println("(pi,pi) corner decays fast. At U = 4 the Fermi-point propagator")
	fmt.Println("decays too: the Mott/Slater gap suppresses low-energy spectral weight.")
}

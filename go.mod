module questgo

go 1.22

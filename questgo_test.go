package questgo

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"questgo/internal/config"
)

func TestDefaultConfigRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 5, 10
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if math.IsNaN(res.Density) || res.AvgSign == 0 {
		t.Fatalf("bad results: %+v", res)
	}
}

func TestLoadConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.in")
	content := `
# sample input
nx = 6
ny = 6
u = 2
beta = 4
l = 20
warm = 10
meas = 20
k = 5
prepivot = true
seed = 42
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nx != 6 || cfg.U != 2 || cfg.Beta != 4 || cfg.L != 20 || cfg.Seed != 42 {
		t.Fatalf("config mapping wrong: %+v", cfg)
	}
	// Defaults preserved for unspecified keys.
	if cfg.T != 1 || !cfg.PrePivot {
		t.Fatalf("defaults lost: %+v", cfg)
	}
}

func TestConfigFromFileRejectsTypos(t *testing.T) {
	f, err := config.Parse(strings.NewReader("nx = 4\nbta = 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigFromFile(f); err == nil || !strings.Contains(err.Error(), "bta") {
		t.Fatalf("typo should be rejected: %v", err)
	}
}

func TestConfigFromFileValidates(t *testing.T) {
	f, err := config.Parse(strings.NewReader("beta = -3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigFromFile(f); err == nil {
		t.Fatal("invalid physics should be rejected")
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig("/no/such/file.in"); err == nil {
		t.Fatal("expected error")
	}
}

#!/bin/sh
# Regenerates every table and figure of the paper into results/.
# Default parameters are scaled for a laptop core (minutes); pass
# PAPER_SCALE=1 for the paper's sizes (hours).
set -e
cd "$(dirname "$0")"
mkdir -p results

if [ "${PAPER_SCALE:-0}" = "1" ]; then
    BSIZES=${BSIZES:-8,12,16,20,24}
else
    BSIZES=${BSIZES:-8,12,16}
fi

echo "== Verify: fmt, vet, qmclint, race tests, kernel + sweep regression bench"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
go vet ./...
# All 13 analyzers (waves 1+2) over the whole tree; any finding exits 1.
# The run also appends one analyzer/finding-count record to BENCH_lint.json.
go run ./cmd/qmclint -json BENCH_lint.json ./...
go test -race ./internal/parallel/ ./internal/blas/ ./internal/update/ ./internal/greens/ ./internal/obs/ ./internal/autopilot/ ./internal/core/ ./internal/gpu/ ./internal/service/ ./internal/analysis/
echo "== Verify: qmcdebug sanitizer build (NaN/Inf scans, drift asserts, pool bookkeeping)"
go test -tags qmcdebug ./internal/...
echo "== Verify: fuzz kernels against reference implementations (10s each)"
go test ./internal/blas/ -run NoSuchTest -fuzz 'FuzzGemmPackedVsNaive$' -fuzztime 10s
go test ./internal/lapack/ -run NoSuchTest -fuzz 'FuzzQRReconstruct$' -fuzztime 10s
go test ./internal/lapack/ -run NoSuchTest -fuzz 'FuzzGetrf$' -fuzztime 10s
go test ./internal/lapack/ -run NoSuchTest -fuzz 'FuzzQRPBlockedVsLevel2$' -fuzztime 10s
# -qrpgate 512 fails the run if the blocked level-3 QRP ever drops below the
# retained level-2 reference at N=512 (the DQMC sweet-spot size).
go run ./cmd/kernels -sizes 64,128,256,512,1024 -reps 2 -json BENCH_gemm.json -qrpgate 512
go run ./cmd/sweep -json BENCH_sweep.json -bsizes $BSIZES -bsweeps 2
echo "== Verify: metrics instrumentation overhead gate (<2% on the sweep hot path)"
go run ./cmd/sweep -obscheck -obsnx 8 -obsreps 3 -obsmax 2
echo "== Verify: stability autopilot ablation (residual held, cadence no denser, no slower)"
go run ./cmd/sweep -autopilot BENCH_autopilot.json -apbeta 32 -apl 160 -apk 10 -apcheck 2 -apgate
echo "== Verify: command-graph amortization + multi-device sharding gate (1/2/4 devices)"
go run ./cmd/gpubench -gpugate -json BENCH_gpu.json
# Service smoke benchmark: a cache hit must answer >= 50x faster than the
# cold execution; with 2 workers the mixed workload must clear >= 1.6x
# faster than with 1 (enforced only on multi-core machines).
echo "== Verify: dqmcd service gate (result cache + worker scaling)"
go run ./cmd/dqmcload -servicegate -json BENCH_service.json

if [ "${PAPER_SCALE:-0}" = "1" ]; then
    KSIZES=128,256,384,512,768,1024
    ACC="-nx 16 -l 160 -evals 1000"
    GSIZES=256,400,576,784,1024
    SSIZES=256,400,576,784,1024
    FSIZES=16,20,24,28,32
    FPARAMS="-beta 32 -l 160 -warm 1000 -meas 2000"
    GPUSIZES=256,400,576,784,1024
else
    KSIZES=128,256,512,1024
    ACC="-nx 8 -l 40 -evals 100"
    GSIZES=64,144,256
    SSIZES=16,36,64,100
    FSIZES=8,12
    FPARAMS="-beta 5 -l 25 -warm 60 -meas 150"
    GPUSIZES=64,144,256,576,1024
fi

echo "== Figure 1: kernel throughput" && go run ./cmd/kernels -sizes $KSIZES -reps 2 | tee results/fig1.txt
echo "== Figure 2: Alg2 vs Alg3 accuracy" && go run ./cmd/accuracy $ACC | tee results/fig2.txt
echo "== Figures 3/4: Green's evaluation" && go run ./cmd/greens -sizes $GSIZES -l 40 | tee results/fig34.txt
echo "== Figures 5: momentum distribution (path)" && go run ./cmd/figures -fig=5 -sizes $FSIZES $FPARAMS -out results | tee results/fig5.txt
echo "== Figure 6: momentum distribution (grid)" && go run ./cmd/figures -fig=6 -sizes $FSIZES $FPARAMS -out results | tee results/fig6.txt
echo "== Figure 7: spin correlations" && go run ./cmd/figures -fig=7 -sizes $FSIZES -u 4 $FPARAMS -out results | tee results/fig7.txt
echo "== Figure 8 + Table I: scaling and profile" && go run ./cmd/scaling -sizes $SSIZES -l 24 -warm 10 -meas 20 | tee results/fig8_table1.txt
echo "== Figure 9: simulated-GPU clustering/wrapping" && go run ./cmd/gpubench -fig=9 -sizes $GPUSIZES | tee results/fig9.txt
echo "== Figure 10: hybrid Green's evaluation" && go run ./cmd/gpubench -fig=10 -sizes $GSIZES -l 40 | tee results/fig10.txt
echo "== done; see results/"

// Command figures regenerates the physics figures of the paper's
// Section V from full DQMC simulations:
//
//	-fig=5  momentum distribution <n_k> along the symmetry path
//	        (0,0) -> (pi,pi) -> (pi,0) -> (0,0) for several lattice sizes
//	-fig=6  <n_k> on the full momentum grid for two lattice sizes
//	        (the paper's color contour data), rendered as data + ASCII map
//	-fig=7  C_zz(r) maps for two lattice sizes (AF checkerboard)
//
// Simulation parameters follow the paper (rho = 1, U = 2) with reduced
// beta/size defaults; use flags for paper-scale runs (-beta 32 -l 160
// -sizes 16,20,24,28,32 -warm 1000 -meas 2000).
//
// Usage:
//
//	figures -fig=5 [-sizes 8,12] [-u 2] [-beta 4] [-l 20] [-warm 50]
//	        [-meas 100] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"questgo"
	"questgo/internal/benchutil"
)

func main() {
	fig := flag.Int("fig", 5, "figure to regenerate (5, 6 or 7)")
	sizesFlag := flag.String("sizes", "", "lattice linear sizes (default per figure)")
	u := flag.Float64("u", 2, "interaction strength (paper: 2)")
	beta := flag.Float64("beta", 4, "inverse temperature (paper: 32)")
	l := flag.Int("l", 20, "time slices (paper: 160)")
	warm := flag.Int("warm", 50, "warmup sweeps (paper: 1000)")
	meas := flag.Int("meas", 100, "measurement sweeps (paper: 2000)")
	seed := flag.Uint64("seed", 1, "RNG seed")
	out := flag.String("out", "", "directory for data files (default: stdout only)")
	flag.Parse()

	def := map[int]string{5: "8,12", 6: "8,12", 7: "8,12"}[*fig]
	if def == "" {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d\n", *fig)
		os.Exit(1)
	}
	if *sizesFlag == "" {
		*sizesFlag = def
	}
	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, nx := range sizes {
		if nx%2 != 0 {
			fmt.Fprintf(os.Stderr, "figures: lattice size %d must be even\n", nx)
			os.Exit(1)
		}
	}

	results := make(map[int]*questgo.Results)
	for _, nx := range sizes {
		cfg := questgo.DefaultConfig()
		cfg.Nx, cfg.Ny = nx, nx
		cfg.U = *u
		cfg.Beta = *beta
		cfg.L = *l
		cfg.WarmSweeps, cfg.MeasSweeps = *warm, *meas
		cfg.Seed = *seed
		sim, err := questgo.NewSimulation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "running %dx%d (U=%g beta=%g L=%d)...\n", nx, nx, *u, *beta, *l)
		results[nx] = sim.Run()
	}

	switch *fig {
	case 5:
		figure5(sizes, results, *out)
	case 6:
		figure6(sizes, results, *out)
	case 7:
		figure7(sizes, results, *out)
	}
}

func figure5(sizes []int, results map[int]*questgo.Results, out string) {
	fmt.Println("Figure 5: <n_k> along (0,0) -> (pi,pi) -> (pi,0) -> (0,0)")
	for _, nx := range sizes {
		res := results[nx]
		sim, _ := questgo.NewSimulation(res.Config) // rebuild lattice for the path
		idx, arc := sim.Lattice().SymmetryPath()
		fmt.Printf("\n# %dx%d lattice: arc  n(k)  err\n", nx, nx)
		var sb strings.Builder
		for p, id := range idx {
			line := fmt.Sprintf("%8.4f  %8.5f  %.5f", arc[p], res.Nk[id], res.NkErr[id])
			fmt.Println(line)
			sb.WriteString(line + "\n")
		}
		writeFile(out, fmt.Sprintf("fig5_nk_path_%dx%d.dat", nx, nx), sb.String())
	}
	fmt.Println("\nExpected shape (paper): n(k) ~1 near (0,0), sharp drop near the")
	fmt.Println("midpoint of (0,0)->(pi,pi) (the Fermi surface at half filling),")
	fmt.Println("~0 at (pi,pi); larger lattices resolve the drop more finely.")
}

func figure6(sizes []int, results map[int]*questgo.Results, out string) {
	fmt.Println("Figure 6: <n_k> on the full momentum grid")
	for _, nx := range sizes {
		res := results[nx]
		fmt.Printf("\n# %dx%d lattice (rows ky, cols kx, grid order)\n", nx, nx)
		var sb strings.Builder
		for ky := 0; ky < nx; ky++ {
			cells := make([]string, nx)
			for kx := 0; kx < nx; kx++ {
				cells[kx] = fmt.Sprintf("%6.3f", res.Nk[kx+nx*ky])
			}
			line := strings.Join(cells, " ")
			fmt.Println(line)
			sb.WriteString(line + "\n")
		}
		fmt.Println("\nASCII contour (# filled, . empty):")
		fmt.Print(asciiMap(res.Nk, nx, 0.5))
		writeFile(out, fmt.Sprintf("fig6_nk_grid_%dx%d.dat", nx, nx), sb.String())
	}
	fmt.Println("\nExpected shape (paper): filled diamond around (0,0) bounded by the")
	fmt.Println("|kx|+|ky| = pi Fermi surface; the larger grid resolves it sharply.")
}

func figure7(sizes []int, results map[int]*questgo.Results, out string) {
	fmt.Println("Figure 7: C_zz(r) spin-spin correlation maps")
	for _, nx := range sizes {
		res := results[nx]
		fmt.Printf("\n# %dx%d lattice (rows dy, cols dx)\n", nx, nx)
		var sb strings.Builder
		for dy := 0; dy < nx; dy++ {
			cells := make([]string, nx)
			for dx := 0; dx < nx; dx++ {
				cells[dx] = fmt.Sprintf("%+8.4f", res.Czz[dx+nx*dy])
			}
			line := strings.Join(cells, " ")
			fmt.Println(line)
			sb.WriteString(line + "\n")
		}
		fmt.Println("\nSign checkerboard (+/-):")
		for dy := 0; dy < nx; dy++ {
			var row strings.Builder
			for dx := 0; dx < nx; dx++ {
				if res.Czz[dx+nx*dy] >= 0 {
					row.WriteByte('+')
				} else {
					row.WriteByte('-')
				}
			}
			fmt.Println(row.String())
		}
		fmt.Printf("S(pi,pi) = %.4f +- %.4f\n", res.SAF, res.SAFErr)
		writeFile(out, fmt.Sprintf("fig7_czz_%dx%d.dat", nx, nx), sb.String())
	}
	fmt.Println("\nExpected shape (paper): antiferromagnetic checkerboard — C_zz")
	fmt.Println("alternates sign with |dx+dy| parity; amplitude decays with distance.")
}

func asciiMap(v []float64, nx int, threshold float64) string {
	var sb strings.Builder
	for ky := 0; ky < nx; ky++ {
		for kx := 0; kx < nx; kx++ {
			if v[kx+nx*ky] >= threshold {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func writeFile(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// Command kernels regenerates the paper's Figure 1: throughput (GFlop/s)
// of the three dense kernels that dominate the Green's function
// evaluation — DGEMM (matrix-matrix product), DGEQRF (blocked QR) and
// DGEQP3 (QR with column pivoting) — as a function of matrix size.
//
// The paper's point is the ordering GEMM > QR >> QRP: pivoting serializes
// on level-2 column-norm updates. The same ordering must appear here.
//
// Usage:
//
//	kernels [-sizes 128,256,384,512,768,1024] [-reps 3] [-json BENCH_gemm.json]
//
// With -json, one JSON line per size is appended to the named file
// (machine-readable GFlop/s series for regression tracking).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"questgo/internal/benchutil"
	"questgo/internal/blas"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func main() {
	sizesFlag := flag.String("sizes", "128,256,384,512,768,1024", "comma-separated matrix sizes")
	reps := flag.Int("reps", 3, "minimum repetitions per timing")
	jsonPath := flag.String("json", "", "append one JSON line per size to this file")
	flag.Parse()

	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Figure 1: dense kernel throughput (GFlop/s) vs matrix size")
	fmt.Println()
	tbl := benchutil.NewTable("N", "DGEMM", "DGEQRF", "DGEQP3", "QRP/QR")
	r := rng.New(7)
	for _, n := range sizes {
		a := randomMatrix(r, n)
		b := randomMatrix(r, n)
		c := mat.New(n, n)

		gemmSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			blas.Gemm(false, false, 1, a, b, 0, c)
		})
		work := a.Clone()
		qrSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			work.CopyFrom(a)
			lapack.QRFactor(work)
		})
		qrpSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			work.CopyFrom(a)
			lapack.QRPFactor(work)
		})

		gemmGF := benchutil.GFlops(benchutil.GemmFlops(n), gemmSec)
		qrGF := benchutil.GFlops(benchutil.QRFlops(n), qrSec)
		qrpGF := benchutil.GFlops(benchutil.QRFlops(n), qrpSec)
		tbl.AddRow(n,
			fmt.Sprintf("%7.2f", gemmGF),
			fmt.Sprintf("%7.2f", qrGF),
			fmt.Sprintf("%7.2f", qrpGF),
			fmt.Sprintf("%5.2f", qrpGF/qrGF))
		if *jsonPath != "" {
			for _, pt := range []struct {
				name  string
				secs  float64
				flops float64
			}{
				{"gemm", gemmSec, benchutil.GemmFlops(n)},
				{"geqrf", qrSec, benchutil.QRFlops(n)},
				{"geqp3", qrpSec, benchutil.QRFlops(n)},
			} {
				rec := benchutil.NewRecord("kernels", pt.name, n, pt.secs, pt.flops).
					WithParam("gomaxprocs", runtime.GOMAXPROCS(0))
				if err := rec.Append(*jsonPath); err != nil {
					fmt.Fprintln(os.Stderr, "json append:", err)
					os.Exit(1)
				}
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper, Westmere 12-core): DGEMM > DGEQRF >> DGEQP3,")
	fmt.Println("with the QRP/QR ratio well below 1 and shrinking as N grows.")
}

func randomMatrix(r *rng.Rand, n int) *mat.Dense {
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

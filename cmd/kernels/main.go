// Command kernels regenerates the paper's Figure 1: throughput (GFlop/s)
// of the dense kernels that dominate the Green's function evaluation —
// DGEMM (matrix-matrix product), DGEQRF (blocked QR) and DGEQP3 (QR with
// column pivoting) — as a function of matrix size. The pivoted column is
// measured twice: the retained level-2 reference (lapack.QRPFactorLevel2,
// the classic DGEQPF-style loop the paper's Figure 1 profiles) and the
// blocked level-3 panel factorization (lapack.QRPFactor) that replaced it
// on the hot path.
//
// The paper's point is the ordering GEMM > QR >> QRP for the *level-2*
// pivoted QR: pivoting serializes on column-norm updates. The blocked
// variant exists to break exactly that ordering — its column should sit
// close to DGEQRF, not DGEQP3.
//
// Usage:
//
//	kernels [-sizes 128,256,384,512,768,1024] [-reps 3] [-json BENCH_gemm.json] [-qrpgate 512]
//
// With -json, machine-readable results are appended to the named file as
// one benchutil.Record line per series (gemm, geqrf, geqp3, geqp3_blocked).
// The geqp3_blocked record additionally carries the historical
// geqp3_blocked_gflops key as a float param, so tooling that diffed the
// retired combined-per-size schema still finds the number it gates on.
//
// With -qrpgate N, the run fails (exit 1) unless the blocked QRP was
// measured at size N and was at least as fast as the level-2 reference
// there — the regression gate reproduce.sh runs at N=512.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"questgo/internal/benchutil"
	"questgo/internal/blas"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func main() {
	sizesFlag := flag.String("sizes", "128,256,384,512,768,1024", "comma-separated matrix sizes")
	reps := flag.Int("reps", 3, "minimum repetitions per timing")
	jsonPath := flag.String("json", "", "append one benchutil.Record JSON line per series to this file")
	qrpGate := flag.Int("qrpgate", 0, "fail unless blocked QRP >= level-2 QRP at this size (0 = off)")
	flag.Parse()

	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Figure 1: dense kernel throughput (GFlop/s) vs matrix size")
	fmt.Println()
	tbl := benchutil.NewTable("N", "DGEMM", "DGEQRF", "QRP-L2", "QRP-BLK", "BLK/L2", "BLK/QR")
	r := rng.New(7)
	gateSeen := false
	gateOK := true
	var gateL2, gateBlk float64
	for _, n := range sizes {
		a := randomMatrix(r, n)
		b := randomMatrix(r, n)
		c := mat.New(n, n)

		gemmSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			blas.Gemm(false, false, 1, a, b, 0, c)
		})
		work := a.Clone()
		qrSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			work.CopyFrom(a)
			qr := lapack.QRFactor(work)
			qr.Release()
		})
		qrpL2Sec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			work.CopyFrom(a)
			qr, jpvt := lapack.QRPFactorLevel2(work)
			qr.Release()
			lapack.PutPivot(&jpvt)
		})
		qrpBlkSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			work.CopyFrom(a)
			qr, jpvt := lapack.QRPFactor(work)
			qr.Release()
			lapack.PutPivot(&jpvt)
		})

		gemmGF := benchutil.GFlops(benchutil.GemmFlops(n), gemmSec)
		qrGF := benchutil.GFlops(benchutil.QRFlops(n), qrSec)
		qrpL2GF := benchutil.GFlops(benchutil.QRFlops(n), qrpL2Sec)
		qrpBlkGF := benchutil.GFlops(benchutil.QRFlops(n), qrpBlkSec)
		tbl.AddRow(n,
			fmt.Sprintf("%7.2f", gemmGF),
			fmt.Sprintf("%7.2f", qrGF),
			fmt.Sprintf("%7.2f", qrpL2GF),
			fmt.Sprintf("%7.2f", qrpBlkGF),
			fmt.Sprintf("%5.2f", qrpBlkGF/qrpL2GF),
			fmt.Sprintf("%5.2f", qrpBlkGF/qrGF))
		if n == *qrpGate {
			gateSeen = true
			gateL2, gateBlk = qrpL2GF, qrpBlkGF
			gateOK = qrpBlkGF >= qrpL2GF
		}
		if *jsonPath != "" {
			for _, pt := range []struct {
				name  string
				secs  float64
				flops float64
			}{
				{"gemm", gemmSec, benchutil.GemmFlops(n)},
				{"geqrf", qrSec, benchutil.QRFlops(n)},
				{"geqp3", qrpL2Sec, benchutil.QRFlops(n)},
				{"geqp3_blocked", qrpBlkSec, benchutil.QRFlops(n)},
			} {
				rec := benchutil.NewRecord("kernels", pt.name, n, pt.secs, pt.flops).
					WithParam("gomaxprocs", runtime.GOMAXPROCS(0))
				if pt.name == "geqp3_blocked" {
					rec = rec.WithFloatParam("geqp3_blocked_gflops", qrpBlkGF)
				}
				if err := rec.Append(*jsonPath); err != nil {
					fmt.Fprintln(os.Stderr, "json append:", err)
					os.Exit(1)
				}
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper, Westmere 12-core): DGEMM > DGEQRF >> level-2")
	fmt.Println("DGEQP3, with the blocked QRP column recovering most of the DGEQRF")
	fmt.Println("rate (BLK/QR near 1, BLK/L2 well above 1 and growing with N).")
	if *qrpGate != 0 {
		switch {
		case !gateSeen:
			fmt.Fprintf(os.Stderr, "qrpgate: size %d was not measured (sizes %v)\n", *qrpGate, sizes)
			os.Exit(1)
		case !gateOK:
			fmt.Fprintf(os.Stderr, "qrpgate: blocked QRP %.2f GF/s slower than level-2 reference %.2f GF/s at N=%d\n",
				gateBlk, gateL2, *qrpGate)
			os.Exit(1)
		default:
			fmt.Printf("qrpgate: blocked QRP %.2f GF/s >= level-2 %.2f GF/s at N=%d (%.2fx)\n",
				gateBlk, gateL2, *qrpGate, gateBlk/gateL2)
		}
	}
}

func randomMatrix(r *rng.Rand, n int) *mat.Dense {
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

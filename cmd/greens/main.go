// Command greens regenerates the paper's Figures 3 and 4: the average
// time of one Green's function evaluation and its achieved GFlop/s rate,
// as a function of the number of sites N, comparing
//
//   - Algorithm 2 (QRP stratification, no clustering): the baseline of the
//     original QUEST implementation;
//   - Algorithm 2 with matrix clustering (k = 10);
//   - Algorithm 3 (pre-pivoting) with clustering: the paper's method.
//
// Figure 4 additionally reports the DGEMM and DGEQRF rates at the same
// size, showing the paper's headline "~70% of DGEMM, above DGEQRF".
//
// Usage:
//
//	greens [-sizes 64,100,144,256] [-l 40] [-k 10] [-reps 2]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"questgo/internal/benchutil"
	"questgo/internal/blas"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func main() {
	sizesFlag := flag.String("sizes", "64,100,144,256", "site counts N (must be perfect squares; paper: 256,400,576,784,1024)")
	l := flag.Int("l", 40, "time slices (paper: 160)")
	k := flag.Int("k", 10, "matrix clustering size")
	reps := flag.Int("reps", 2, "minimum repetitions per timing")
	flag.Parse()

	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Figures 3 and 4: Green's function evaluation, L=%d, k=%d\n\n", *l, *k)
	t3 := benchutil.NewTable("N", "alg2 (s)", "alg2+cluster (s)", "alg3+cluster (s)", "speedup")
	t4 := benchutil.NewTable("N", "Geval GF/s", "DGEMM GF/s", "DGEQRF GF/s", "Geval/DGEMM")
	for _, n := range sizes {
		nx := int(math.Round(math.Sqrt(float64(n))))
		if nx*nx != n {
			fmt.Fprintf(os.Stderr, "skipping N=%d (not a perfect square)\n", n)
			continue
		}
		lat := lattice.NewSquare(nx, nx, 1)
		model, err := hubbard.NewModel(lat, 4, 0, 0.1*float64(*l), *l)
		if err != nil {
			panic(err)
		}
		prop := hubbard.NewPropagator(model)
		field := hubbard.NewRandomField(*l, n, rng.New(11))

		// Unclustered Algorithm 2 over all L slice matrices.
		bs := make([]*mat.Dense, *l)
		for i := range bs {
			bs[i] = prop.BMatrix(hubbard.Up, field, i)
		}
		alg2Sec := benchutil.TimeIt(*reps, 300*time.Millisecond, func() {
			greens.GreenQRP(bs)
		})

		// Clustered variants (clusters prebuilt = the recycling case).
		cs := greens.NewClusterSet(prop, field, hubbard.Up, *k)
		alg2cSec := benchutil.TimeIt(*reps, 300*time.Millisecond, func() {
			cs.GreenAt(0, false)
		})
		alg3cSec := benchutil.TimeIt(*reps, 300*time.Millisecond, func() {
			cs.GreenAt(0, true)
		})

		t3.AddRow(n,
			fmt.Sprintf("%.4f", alg2Sec),
			fmt.Sprintf("%.4f", alg2cSec),
			fmt.Sprintf("%.4f", alg3cSec),
			fmt.Sprintf("%.2fx", alg2Sec/alg3cSec))

		// Figure 4 rates at the same N.
		gevalGF := benchutil.GFlops(benchutil.GreensFlops(n, cs.NC), alg3cSec)
		a := randomMatrix(n)
		b := randomMatrix(n)
		c := mat.New(n, n)
		gemmSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			blas.Gemm(false, false, 1, a, b, 0, c)
		})
		work := a.Clone()
		qrSec := benchutil.TimeIt(*reps, 200*time.Millisecond, func() {
			work.CopyFrom(a)
			lapack.QRFactor(work)
		})
		gemmGF := benchutil.GFlops(benchutil.GemmFlops(n), gemmSec)
		qrGF := benchutil.GFlops(benchutil.QRFlops(n), qrSec)
		t4.AddRow(n,
			fmt.Sprintf("%7.2f", gevalGF),
			fmt.Sprintf("%7.2f", gemmGF),
			fmt.Sprintf("%7.2f", qrGF),
			fmt.Sprintf("%5.0f%%", 100*gevalGF/gemmGF))
	}
	fmt.Println("Figure 3: average time per Green's function evaluation")
	t3.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Figure 4: achieved throughput")
	t4.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): ~3x speedup from clustering + pre-pivoting;")
	fmt.Println("G evaluation at ~70% of DGEMM and above DGEQRF at large N.")
}

func randomMatrix(n int) *mat.Dense {
	r := rng.New(uint64(n))
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

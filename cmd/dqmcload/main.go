// Command dqmcload generates a mixed workload against the dqmcd simulation
// service and benchmarks it: a stream of small lattices, a few larger ones,
// and bursts of repeated submissions that exercise the result cache. Every
// measured point is appended to a BENCH_service.json JSON-lines series
// (internal/benchutil records).
//
// By default it starts a private in-process server (full HTTP stack on a
// loopback listener) so the benchmark is hermetic; -addr points it at an
// already running dqmcd instead.
//
// Usage:
//
//	dqmcload [-addr http://127.0.0.1:8517] [-jobs 12] [-shards 2]
//	         [-json BENCH_service.json] [-servicegate]
//
// -servicegate turns the run into a regression gate:
//
//   - a cache hit must be at least 50x faster than the cold execution of
//     the same job;
//   - with 2 workers the service must clear the workload at >= 1.6x the
//     1-worker throughput — enforced only when the machine has >= 2 CPUs
//     (on a single core the ratio is recorded but cannot gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"questgo"
	"questgo/internal/benchutil"
)

func main() {
	addr := flag.String("addr", "", "existing dqmcd base URL (empty = hermetic in-process server)")
	jobs := flag.Int("jobs", 12, "jobs in the mixed workload")
	shards := flag.Int("shards", 2, "shards per workload job")
	jsonPath := flag.String("json", "", "append benchutil records to this JSON-lines file")
	gate := flag.Bool("servicegate", false, "enforce the cache and throughput regression gates")
	flag.Parse()

	if err := run(*addr, *jobs, *shards, *jsonPath, *gate); err != nil {
		fmt.Fprintln(os.Stderr, "dqmcload:", err)
		os.Exit(1)
	}
}

// startServer brings up a hermetic dqmcd on a loopback listener and returns
// its base URL plus a teardown.
func startServer(workers int) (string, func(), error) {
	svc, err := questgo.NewServer(questgo.ServerOptions{Workers: workers})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = svc.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: svc}
	//qmc:allow goleak -- hs.Close() in the returned stop func makes Serve return, ending the goroutine
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	stop := func() {
		_ = hs.Close()
		_ = svc.Close()
	}
	return base, stop, nil
}

// workload builds the mixed job list: mostly small 4x4 systems at varying
// seeds, a few larger 6x6 ones.
func workload(jobs, shards int) []questgo.JobRequest {
	reqs := make([]questgo.JobRequest, 0, jobs)
	for i := 0; i < jobs; i++ {
		cfg := questgo.DefaultConfig()
		cfg.WarmSweeps, cfg.MeasSweeps = 6, 12
		cfg.L = 8
		cfg.Seed = uint64(100 + i)
		if i%4 == 3 { // every fourth job is a larger lattice
			cfg.Nx, cfg.Ny = 6, 6
		}
		reqs = append(reqs, questgo.JobRequest{Config: cfg, Shards: shards, Tag: fmt.Sprintf("load-%d", i)})
	}
	return reqs
}

// clear submits every request and waits for all results, returning the wall
// time. Submission is async (the queue interleaves shards across jobs), so
// this measures service throughput, not per-job latency.
func clear(cl *questgo.ServiceClient, reqs []questgo.JobRequest) (time.Duration, error) {
	ctx := context.Background()
	start := time.Now()
	ids := make([]string, len(reqs))
	for i, r := range reqs {
		st, err := cl.Submit(ctx, r)
		if err != nil {
			return 0, fmt.Errorf("submit %d: %w", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		if _, err := cl.WaitResult(ctx, id); err != nil {
			return 0, fmt.Errorf("wait %d: %w", i, err)
		}
	}
	return time.Since(start), nil
}

// medianRoundTrip submits req reps times and returns the median wall time
// of submit -> result in hand.
func medianRoundTrip(cl *questgo.ServiceClient, req questgo.JobRequest, reps int) (time.Duration, error) {
	ctx := context.Background()
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		st, err := cl.Submit(ctx, req)
		if err != nil {
			return 0, err
		}
		if _, err := cl.WaitResult(ctx, st.ID); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

func record(jsonPath, name string, n int, secs float64, extra map[string]float64) error {
	if jsonPath == "" {
		return nil
	}
	r := benchutil.NewRecord("service", name, n, secs, 0)
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r = r.WithFloatParam(k, extra[k])
	}
	return r.Append(jsonPath)
}

func run(addr string, jobs, shards int, jsonPath string, gate bool) error {
	// ---- Cache gate: cold vs cache-hit round trip on one fixed job.
	base := addr
	var stop func()
	var err error
	if base == "" {
		if base, stop, err = startServer(0); err != nil {
			return err
		}
		defer stop()
	}
	cl := questgo.NewServiceClient(base)

	probe := questgo.DefaultConfig()
	probe.WarmSweeps, probe.MeasSweeps = 20, 40
	probe.Seed = 424242 // private seed so an external server is cold too
	probeReq := questgo.JobRequest{Config: probe, Shards: shards, Tag: "cache-probe"}

	coldReq := probeReq
	coldReq.NoCache = true
	cold, err := medianRoundTrip(cl, coldReq, 3)
	if err != nil {
		return fmt.Errorf("cold probe: %w", err)
	}
	// Warm the cache once, then measure the hit.
	if st, werr := cl.Submit(context.Background(), probeReq); werr != nil {
		return fmt.Errorf("cache warm: %w", werr)
	} else if _, werr := cl.WaitResult(context.Background(), st.ID); werr != nil {
		return fmt.Errorf("cache warm: %w", werr)
	}
	hit, err := medianRoundTrip(cl, probeReq, 5)
	if err != nil {
		return fmt.Errorf("hit probe: %w", err)
	}
	cacheSpeedup := float64(cold) / float64(hit)
	fmt.Printf("cache: cold %8.2f ms   hit %8.3f ms   speedup %.0fx\n",
		float64(cold)/1e6, float64(hit)/1e6, cacheSpeedup)
	if err := record(jsonPath, "cache_cold", probe.Nx*probe.Ny, cold.Seconds(), nil); err != nil {
		return err
	}
	if err := record(jsonPath, "cache_hit", probe.Nx*probe.Ny, hit.Seconds(),
		map[string]float64{"speedup": cacheSpeedup}); err != nil {
		return err
	}
	if gate && cacheSpeedup < 50 {
		return fmt.Errorf("servicegate: cache hit only %.1fx faster than cold (need >= 50x)", cacheSpeedup)
	}

	// ---- Throughput: the mixed workload at 1 and 2 workers. Only
	// meaningful against hermetic servers (worker count is fixed on an
	// external one).
	if addr != "" {
		wall, err := clear(cl, workload(jobs, shards))
		if err != nil {
			return err
		}
		rate := float64(jobs) / wall.Seconds()
		fmt.Printf("workload: %d jobs in %.2fs (%.1f jobs/s) against %s\n", jobs, wall.Seconds(), rate, addr)
		return record(jsonPath, "workload", jobs, wall.Seconds(), map[string]float64{"jobs_per_sec": rate})
	}

	walls := map[int]time.Duration{}
	for _, workers := range []int{1, 2} {
		wbase, wstop, err := startServer(workers)
		if err != nil {
			return err
		}
		wall, err := clear(questgo.NewServiceClient(wbase), workload(jobs, shards))
		wstop()
		if err != nil {
			return fmt.Errorf("workload at %d workers: %w", workers, err)
		}
		walls[workers] = wall
		rate := float64(jobs) / wall.Seconds()
		fmt.Printf("workload: %d jobs x %d shards at %d worker(s): %.2fs (%.1f jobs/s)\n",
			jobs, shards, workers, wall.Seconds(), rate)
		if err := record(jsonPath, fmt.Sprintf("workload_w%d", workers), jobs, wall.Seconds(),
			map[string]float64{"jobs_per_sec": rate}); err != nil {
			return err
		}
	}
	scaling := float64(walls[1]) / float64(walls[2])
	fmt.Printf("worker scaling: 2 workers clear the load %.2fx faster (NumCPU=%d)\n", scaling, runtime.NumCPU())
	if err := record(jsonPath, "worker_scaling", 2, walls[2].Seconds(),
		map[string]float64{"speedup": scaling}); err != nil {
		return err
	}
	if gate {
		if runtime.NumCPU() < 2 {
			fmt.Println("servicegate: single-CPU machine, worker-scaling gate recorded but not enforced")
		} else if scaling < 1.6 {
			return fmt.Errorf("servicegate: 2-worker speedup %.2fx below the 1.6x gate", scaling)
		}
	}
	return nil
}

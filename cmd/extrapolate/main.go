// Command extrapolate removes the two systematic errors of a DQMC study:
//
//	-mode trotter     runs the same system at several Trotter steps and
//	                  fits observable(dtau) = y0 + c*dtau^2, reporting the
//	                  dtau -> 0 limit (the continuous-time value);
//	-mode finitesize  runs several lattice sizes and fits
//	                  observable(L) = y_inf + c/L, reporting the bulk
//	                  limit — the paper's Figure 7 methodology for
//	                  deciding whether antiferromagnetic order survives
//	                  as N -> infinity.
//
// Usage:
//
//	extrapolate -mode trotter -obs docc -ls 8,16,32 -nx 4 -u 4 -beta 2
//	extrapolate -mode finitesize -obs saf -sizes 4,6,8 -u 4 -beta 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"questgo"
	"questgo/internal/benchutil"
	"questgo/internal/stats"
)

func main() {
	mode := flag.String("mode", "trotter", "trotter or finitesize")
	obs := flag.String("obs", "docc", "observable: docc, kinetic, moment, saf, czzmax")
	lsFlag := flag.String("ls", "8,16,32", "slice counts for -mode trotter")
	sizesFlag := flag.String("sizes", "4,6,8", "lattice sizes for -mode finitesize")
	nx := flag.Int("nx", 4, "lattice size (trotter mode)")
	u := flag.Float64("u", 4, "interaction")
	beta := flag.Float64("beta", 2, "inverse temperature")
	dtau := flag.Float64("dtau", 0.1, "Trotter step (finitesize mode)")
	warm := flag.Int("warm", 100, "warmup sweeps")
	meas := flag.Int("meas", 400, "measurement sweeps")
	walkers := flag.Int("walkers", 1, "parallel chains per point")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	pick := func(res *questgo.Results) (float64, float64) {
		switch strings.ToLower(*obs) {
		case "docc":
			return res.DoubleOcc, res.DoubleOccErr
		case "kinetic":
			return res.Kinetic, res.KineticErr
		case "moment":
			return res.LocalMoment, res.LocalMomentErr
		case "saf":
			return res.SAF, res.SAFErr
		case "czzmax":
			nxc := res.Config.Nx
			h := nxc / 2
			return res.Czz[h+nxc*h], res.CzzErr[h+nxc*h]
		}
		fmt.Fprintf(os.Stderr, "extrapolate: unknown observable %q\n", *obs)
		os.Exit(1)
		return 0, 0
	}

	run := func(cfg questgo.Config) *questgo.Results {
		res, err := questgo.Run(context.Background(), cfg, questgo.WithWalkers(*walkers))
		if err != nil {
			fmt.Fprintln(os.Stderr, "extrapolate:", err)
			os.Exit(1)
		}
		return res
	}

	switch strings.ToLower(*mode) {
	case "trotter":
		ls, err := benchutil.ParseSizes(*lsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extrapolate:", err)
			os.Exit(1)
		}
		var dtaus, vals, errs []float64
		tbl := benchutil.NewTable("L", "dtau", *obs)
		for _, l := range ls {
			cfg := questgo.DefaultConfig()
			cfg.Nx, cfg.Ny = *nx, *nx
			cfg.U, cfg.Beta, cfg.L = *u, *beta, l
			cfg.WarmSweeps, cfg.MeasSweeps = *warm, *meas
			cfg.Seed = *seed
			fmt.Fprintf(os.Stderr, "running L = %d...\n", l)
			res := run(cfg)
			v, e := pick(res)
			d := *beta / float64(l)
			dtaus = append(dtaus, d)
			vals = append(vals, v)
			errs = append(errs, maxf(e, 1e-12))
			tbl.AddRow(l, fmt.Sprintf("%.4f", d), fmt.Sprintf("%.5f+-%.5f", v, e))
		}
		tbl.Render(os.Stdout)
		y0, y0err, err := stats.TrotterExtrapolate(dtaus, vals, errs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extrapolate:", err)
			os.Exit(1)
		}
		fmt.Printf("\ndtau -> 0 extrapolation: %s = %.5f +- %.5f\n", *obs, y0, y0err)
	case "finitesize":
		sizes, err := benchutil.ParseSizes(*sizesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extrapolate:", err)
			os.Exit(1)
		}
		var vals, errs []float64
		tbl := benchutil.NewTable("Lx", *obs)
		for _, s := range sizes {
			cfg := questgo.DefaultConfig()
			cfg.Nx, cfg.Ny = s, s
			cfg.U, cfg.Beta = *u, *beta
			cfg.L = int(*beta / *dtau)
			cfg.WarmSweeps, cfg.MeasSweeps = *warm, *meas
			cfg.Seed = *seed
			fmt.Fprintf(os.Stderr, "running %dx%d...\n", s, s)
			res := run(cfg)
			v, e := pick(res)
			vals = append(vals, v)
			errs = append(errs, maxf(e, 1e-12))
			tbl.AddRow(s, fmt.Sprintf("%.5f+-%.5f", v, e))
		}
		tbl.Render(os.Stdout)
		yInf, yErr, err := stats.FiniteSizeExtrapolate(sizes, vals, errs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extrapolate:", err)
			os.Exit(1)
		}
		fmt.Printf("\nL -> infinity extrapolation: %s = %.5f +- %.5f\n", *obs, yInf, yErr)
	default:
		fmt.Fprintf(os.Stderr, "extrapolate: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

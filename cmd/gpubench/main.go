// Command gpubench regenerates the paper's Figures 9 and 10 on the
// *simulated* GPU device (see internal/gpu: arithmetic is executed on the
// host, the clock follows a Tesla-C2050-calibrated cost model; the figures'
// phenomena are transfer-amortization effects that the model reproduces).
//
//	-fig=9   modeled GFlop/s of matrix clustering (Algorithm 4) and
//	         wrapping (Algorithm 6) vs N, against device DGEMM.
//	-fig=10  modeled GFlop/s of the hybrid Green's function evaluation
//	         (device clusters + host pre-pivoted stratification) vs N.
//
// Beyond the paper's figures, -devseries runs the device-scaling series:
// command-graph launch-overhead amortization at N=256 (graphs off vs on)
// and full Metropolis sweeps of independent Markov chains sharded over 1,
// 2 and 4 simulated devices, each with graphs off and on. -gpugate runs
// the same series and fails the process unless graph replay cuts the
// modeled launch overhead by at least 1.5x at N=256, the 2-device modeled
// speedup on chain sharding reaches 1.6x, and every configuration
// produces the bitwise-identical physical trajectory.
//
// Usage:
//
//	gpubench [-fig 9] [-sizes 64,144,256,576,1024] [-k 10] [-l 160]
//	         [-json BENCH_gpu.json]
//	gpubench -devseries [-json BENCH_gpu.json]
//	gpubench -gpugate   [-json BENCH_gpu.json]
//
// With -json, one benchutil.Record JSON line per measured series and size
// is appended to the named file.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"questgo/internal/benchutil"
	"questgo/internal/gpu"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func main() {
	fig := flag.Int("fig", 9, "figure to regenerate (9 or 10)")
	sizesFlag := flag.String("sizes", "64,144,256,576,1024", "site counts (perfect squares)")
	k := flag.Int("k", 10, "matrix clustering size")
	l := flag.Int("l", 160, "time slices (figure 10)")
	jsonPath := flag.String("json", "", "append one JSON line per series and size to this file")
	devSeries := flag.Bool("devseries", false, "run the 1/2/4-device and command-graph series")
	gate := flag.Bool("gpugate", false, "run -devseries and fail unless graph amortization >= 1.5x, 2-device speedup >= 1.6x, and trajectories are device-invariant")
	flag.Parse()

	if *devSeries || *gate {
		deviceSeries(*jsonPath, *gate)
		return
	}

	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *fig {
	case 9:
		figure9(sizes, *k, *jsonPath)
	case 10:
		figure10(sizes, *k, *l, *jsonPath)
	default:
		fmt.Fprintf(os.Stderr, "gpubench: unknown figure %d\n", *fig)
		os.Exit(1)
	}
}

// emit appends one unified bench record, exiting on write failure.
func emit(path, name string, n, k int, secs, flops float64) {
	if path == "" {
		return
	}
	rec := benchutil.NewRecord("gpubench", name, n, secs, flops).WithParam("k", k)
	if err := rec.Append(path); err != nil {
		fmt.Fprintln(os.Stderr, "gpubench: json append:", err)
		os.Exit(1)
	}
}

func setup(n, l int, seed uint64) (*hubbard.Propagator, *hubbard.Field, int) {
	nx := int(math.Round(math.Sqrt(float64(n))))
	if nx*nx != n {
		return nil, nil, 0
	}
	lat := lattice.NewSquare(nx, nx, 1)
	model, err := hubbard.NewModel(lat, 4, 0, 0.1*float64(l), l)
	if err != nil {
		panic(err)
	}
	prop := hubbard.NewPropagator(model)
	field := hubbard.NewRandomField(l, n, rng.New(seed))
	return prop, field, nx
}

func figure9(sizes []int, k int, jsonPath string) {
	fmt.Printf("Figure 9: simulated-GPU clustering (Alg 4) and wrapping (Alg 6), k=%d\n\n", k)
	tbl := benchutil.NewTable("N", "cluster GF/s", "wrap GF/s", "device DGEMM GF/s")
	for _, n := range sizes {
		prop, field, nx := setup(n, 2*k, uint64(n))
		if prop == nil {
			fmt.Fprintf(os.Stderr, "skipping N=%d (not a perfect square)\n", n)
			continue
		}
		_ = nx
		dev := gpu.NewDevice(gpu.TeslaC2050())
		acc := gpu.NewAccelerator(dev, prop)

		dev.Reset() // exclude the one-time B/B^{-1} upload, as the paper does
		dst := mat.New(n, n)
		acc.Cluster(dst, field, hubbard.Up, 0, k)
		clusterGF := dev.GFlopsRate()
		emit(jsonPath, "cluster", n, k, dev.Clock().Seconds(), float64(dev.Flops()))

		dev.Reset()
		g := randomMatrix(n)
		acc.Wrap(g, field, hubbard.Up, 0)
		wrapGF := dev.GFlopsRate()
		emit(jsonPath, "wrap", n, k, dev.Clock().Seconds(), float64(dev.Flops()))

		// Pure device DGEMM rate at this size including one matrix
		// round trip (the CUBLAS-call-with-transfer comparison point).
		dev.Reset()
		da := dev.Malloc(n, n)
		db := dev.Malloc(n, n)
		dc := dev.Malloc(n, n)
		dev.SetMatrix(da, g)
		dev.SetMatrix(db, g)
		dev.Dgemm(false, false, 1, da, db, 0, dc)
		dev.GetMatrix(g, dc)
		gemmGF := dev.GFlopsRate()
		emit(jsonPath, "device-gemm", n, k, dev.Clock().Seconds(), float64(dev.Flops()))

		tbl.AddRow(n,
			fmt.Sprintf("%7.1f", clusterGF),
			fmt.Sprintf("%7.1f", wrapGF),
			fmt.Sprintf("%7.1f", gemmGF))
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): clustering approaches device DGEMM rate")
	fmt.Println("(k GEMMs per result transfer); wrapping is transfer-bound and lower,")
	fmt.Println("but both rise with N.")
}

func figure10(sizes []int, k, l int, jsonPath string) {
	fmt.Printf("Figure 10: hybrid CPU+GPU Green's function evaluation, L=%d, k=%d\n\n", l, k)
	fmt.Println("(clusters built on the simulated device; stratification with")
	fmt.Println("pre-pivoting on the host; rate = flops / (host time + modeled device time))")
	fmt.Println()
	tbl := benchutil.NewTable("N", "hybrid GF/s", "CPU-only GF/s")
	for _, n := range sizes {
		prop, field, _ := setup(n, l, uint64(n)+1)
		if prop == nil {
			fmt.Fprintf(os.Stderr, "skipping N=%d (not a perfect square)\n", n)
			continue
		}
		dev := gpu.NewDevice(gpu.TeslaC2050())
		acc := gpu.NewAccelerator(dev, prop)
		gcs := gpu.NewClusterSet(acc, field, hubbard.Up, k)
		nc := gcs.NC

		// Hybrid: rebuild one cluster on the device (the recycling cost of
		// a sweep step) and evaluate G on the host.
		dev.Reset()
		start := time.Now()
		gcs.Recompute(field, 0)
		gcs.GreenAt(0)
		// Host wall time minus the host cost of *executing* the simulated
		// kernels (that execution stands in for the device's work, whose
		// cost is the modeled clock).
		hostSec := (time.Since(start) - dev.RealTime()).Seconds()
		hybridSec := hostSec + dev.Clock().Seconds()
		flops := benchutil.GreensFlops(n, nc) + benchutil.ClusterFlops(n, k)
		hybridGF := benchutil.GFlops(flops, hybridSec)
		emit(jsonPath, "hybrid", n, k, hybridSec, flops)

		// CPU only: the same work entirely on the host (cluster set built
		// outside the timed region, matching the hybrid measurement).
		cpuCS := greens.NewClusterSet(prop, field, hubbard.Up, k)
		startCPU := time.Now()
		cpuCS.Recompute(field, 0)
		cpuCS.GreenAt(0, true)
		cpuSec := time.Since(startCPU).Seconds()
		cpuGF := benchutil.GFlops(flops, cpuSec)
		emit(jsonPath, "cpu", n, k, cpuSec, flops)

		tbl.AddRow(n,
			fmt.Sprintf("%7.2f", hybridGF),
			fmt.Sprintf("%7.2f", cpuGF))
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): hybrid rate above CPU-only and growing")
	fmt.Println("with N as the device GEMMs dominate the offloaded fraction.")
}

// --- device-scaling series (-devseries / -gpugate) ----------------------

// deviceSeries runs the scale-out experiments: graph launch amortization
// at N=256, then independent-chain sweeps over 1, 2 and 4 devices with
// command graphs off and on. With gate set, the process fails unless the
// modeled-performance thresholds hold and the physics is invariant.
func deviceSeries(jsonPath string, gate bool) {
	okGraph := graphSeries(jsonPath)
	okChain := chainSeries(jsonPath)
	if gate {
		if !okGraph || !okChain {
			fmt.Fprintln(os.Stderr, "gpubench: -gpugate FAILED")
			os.Exit(1)
		}
		fmt.Println("gpubench: -gpugate passed (graph amortization, 2-device speedup, trajectory invariance)")
	}
}

// graphSeries measures the modeled launch overhead of a sweep's wrap and
// cluster launch sequences at N=256, issued per kernel versus replayed
// from captured command graphs. Replay charges one launch for the whole
// recorded sequence, so the overhead must drop by well over the gated
// 1.5x (one 5us launch replaces ~3 launches + 3 transfer latencies per
// wrap and ~30 per cluster build).
func graphSeries(jsonPath string) bool {
	const n, l, k, wraps = 256, 20, 10, 12
	run := func(graphs bool) (launchUS, secs, flops float64) {
		prop, field, _ := setup(n, l, uint64(n))
		dev := gpu.NewDevice(gpu.TeslaC2050())
		acc := gpu.NewAccelerator(dev, prop)
		acc.EnableGraphs(graphs)
		g := randomMatrix(n)
		c0, c1 := mat.New(n, n), mat.New(n, n)
		dev.Reset() // exclude the one-time B/B^{-1} upload, as the paper does
		for w := 0; w < wraps; w++ {
			acc.Wrap(g, field, hubbard.Up, w%l)
		}
		acc.Cluster(c0, field, hubbard.Up, 0, k)
		acc.Cluster(c1, field, hubbard.Up, k, k)
		return float64(dev.LaunchOverhead()) / 1e3, dev.Clock().Seconds(), dev.Flops()
	}

	offUS, offSecs, offFlops := run(false)
	onUS, onSecs, onFlops := run(true)
	ratio := offUS / onUS

	fmt.Printf("Command-graph launch amortization, N=%d (%d wraps + 2 clusters, k=%d)\n\n", n, wraps, k)
	tbl := benchutil.NewTable("graphs", "launch us", "modeled ms", "launch ratio")
	tbl.AddRow("off", fmt.Sprintf("%8.1f", offUS), fmt.Sprintf("%8.3f", offSecs*1e3), "")
	tbl.AddRow("on", fmt.Sprintf("%8.1f", onUS), fmt.Sprintf("%8.3f", onSecs*1e3), fmt.Sprintf("%6.1fx", ratio))
	tbl.Render(os.Stdout)
	fmt.Println()

	if jsonPath != "" {
		off := benchutil.NewRecord("gpubench", "graph-launch", n, offSecs, offFlops).
			WithParam("k", k).WithParam("devices", 1).WithParam("graphs", 0).
			WithFloatParam("launch_us", offUS)
		on := benchutil.NewRecord("gpubench", "graph-launch", n, onSecs, onFlops).
			WithParam("k", k).WithParam("devices", 1).WithParam("graphs", 1).
			WithFloatParam("launch_us", onUS).WithFloatParam("launch_ratio", ratio)
		for _, rec := range []benchutil.Record{off, on} {
			if err := rec.Append(jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, "gpubench: json append:", err)
				os.Exit(1)
			}
		}
	}

	ok := ratio >= 1.5
	if !ok {
		fmt.Fprintf(os.Stderr, "gpubench: graph replay launch ratio %.2fx < 1.5x at N=%d\n", ratio, n)
	}
	return ok
}

// chainSeries sweeps independent Markov chains sharded over 1, 2 and 4
// simulated devices (Scheduler.PlaceChains), graphs off and on. The
// modeled group clock must shrink as devices absorb chains — the gate
// requires >= 1.6x at 2 devices — while the trajectories (auxiliary field
// plus both Green's functions) stay bitwise identical in every
// configuration: sharding and graphs move modeled time, never numbers.
func chainSeries(jsonPath string) bool {
	const n, l, k, chains = 64, 40, 10, 4
	type result struct {
		secs, flops, sig float64
	}
	run := func(nd int, graphs bool) result {
		grp := gpu.NewGroup(nd, gpu.TeslaC2050())
		owners := gpu.Scheduler{G: grp}.PlaceChains(chains)
		var flops, sig float64
		for c := 0; c < chains; c++ {
			prop, field, _ := setup(n, l, uint64(1000+c))
			sw := gpu.NewSweeper(grp.Devs[owners[c]], prop, field, rng.New(uint64(77+c)),
				gpu.SweeperOptions{ClusterK: k, UseGraphs: graphs})
			sw.Sweep()
			sig += fieldSum(field) + matSum(sw.GreenUp()) + matSum(sw.GreenDn())
		}
		for _, d := range grp.Devs {
			flops += d.Flops()
		}
		return result{secs: grp.Clock().Seconds(), flops: flops, sig: sig}
	}

	fmt.Printf("Independent-chain sharding, N=%d, L=%d, %d chains, 1 sweep each\n\n", n, l, chains)
	tbl := benchutil.NewTable("devices", "graphs", "modeled ms", "speedup")
	results := map[[2]int]result{}
	var base result
	ok := true
	for _, graphs := range []bool{false, true} {
		for _, nd := range []int{1, 2, 4} {
			res := run(nd, graphs)
			gi := 0
			if graphs {
				gi = 1
			}
			results[[2]int{nd, gi}] = res
			if nd == 1 {
				base = res
			}
			speedup := base.secs / res.secs
			tbl.AddRow(nd, map[bool]string{false: "off", true: "on"}[graphs],
				fmt.Sprintf("%8.3f", res.secs*1e3), fmt.Sprintf("%5.2fx", speedup))
			if jsonPath != "" {
				rec := benchutil.NewRecord("gpubench", "chain-sweep", n, res.secs, res.flops).
					WithParam("k", k).WithParam("devices", nd).WithParam("graphs", gi).
					WithParam("chains", chains).WithFloatParam("speedup", speedup)
				if err := rec.Append(jsonPath); err != nil {
					fmt.Fprintln(os.Stderr, "gpubench: json append:", err)
					os.Exit(1)
				}
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()

	// Gate 1: modeled 2-device speedup on the ungraphed series.
	speedup2 := results[[2]int{1, 0}].secs / results[[2]int{2, 0}].secs
	if speedup2 < 1.6 {
		fmt.Fprintf(os.Stderr, "gpubench: 2-device chain-sharding speedup %.2fx < 1.6x\n", speedup2)
		ok = false
	}
	// Gate 2: every configuration walked the identical Markov chains.
	// Walk the same device/graph grid the measurement loop used, so the
	// divergence report comes out in a fixed order.
	ref := results[[2]int{1, 0}].sig
	for _, gi := range []int{0, 1} {
		for _, nd := range []int{1, 2, 4} {
			if res := results[[2]int{nd, gi}]; res.sig != ref {
				fmt.Fprintf(os.Stderr, "gpubench: trajectory diverged at devices=%d graphs=%d (sig %.17g vs %.17g)\n",
					nd, gi, res.sig, ref)
				ok = false
			}
		}
	}
	return ok
}

// fieldSum folds the auxiliary-field configuration into a deterministic
// scalar (fixed iteration order, so bitwise-equal trajectories fold to
// bitwise-equal sums).
func fieldSum(f *hubbard.Field) float64 {
	var s float64
	for _, slice := range f.H {
		for _, h := range slice {
			s += h
		}
	}
	return s
}

// matSum folds a matrix into a deterministic scalar, column-major.
func matSum(m *mat.Dense) float64 {
	var s float64
	for j := 0; j < m.Cols; j++ {
		for _, x := range m.Col(j) {
			s += x
		}
	}
	return s
}

func randomMatrix(n int) *mat.Dense {
	r := rng.New(uint64(n) * 3)
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

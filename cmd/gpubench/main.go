// Command gpubench regenerates the paper's Figures 9 and 10 on the
// *simulated* GPU device (see internal/gpu: arithmetic is executed on the
// host, the clock follows a Tesla-C2050-calibrated cost model; the figures'
// phenomena are transfer-amortization effects that the model reproduces).
//
//	-fig=9   modeled GFlop/s of matrix clustering (Algorithm 4) and
//	         wrapping (Algorithm 6) vs N, against device DGEMM.
//	-fig=10  modeled GFlop/s of the hybrid Green's function evaluation
//	         (device clusters + host pre-pivoted stratification) vs N.
//
// Usage:
//
//	gpubench [-fig 9] [-sizes 64,144,256,576,1024] [-k 10] [-l 160]
//	         [-json BENCH_gpu.json]
//
// With -json, one benchutil.Record JSON line per measured series and size
// is appended to the named file.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"questgo/internal/benchutil"
	"questgo/internal/gpu"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func main() {
	fig := flag.Int("fig", 9, "figure to regenerate (9 or 10)")
	sizesFlag := flag.String("sizes", "64,144,256,576,1024", "site counts (perfect squares)")
	k := flag.Int("k", 10, "matrix clustering size")
	l := flag.Int("l", 160, "time slices (figure 10)")
	jsonPath := flag.String("json", "", "append one JSON line per series and size to this file")
	flag.Parse()

	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *fig {
	case 9:
		figure9(sizes, *k, *jsonPath)
	case 10:
		figure10(sizes, *k, *l, *jsonPath)
	default:
		fmt.Fprintf(os.Stderr, "gpubench: unknown figure %d\n", *fig)
		os.Exit(1)
	}
}

// emit appends one unified bench record, exiting on write failure.
func emit(path, name string, n, k int, secs, flops float64) {
	if path == "" {
		return
	}
	rec := benchutil.NewRecord("gpubench", name, n, secs, flops).WithParam("k", k)
	if err := rec.Append(path); err != nil {
		fmt.Fprintln(os.Stderr, "gpubench: json append:", err)
		os.Exit(1)
	}
}

func setup(n, l int, seed uint64) (*hubbard.Propagator, *hubbard.Field, int) {
	nx := int(math.Round(math.Sqrt(float64(n))))
	if nx*nx != n {
		return nil, nil, 0
	}
	lat := lattice.NewSquare(nx, nx, 1)
	model, err := hubbard.NewModel(lat, 4, 0, 0.1*float64(l), l)
	if err != nil {
		panic(err)
	}
	prop := hubbard.NewPropagator(model)
	field := hubbard.NewRandomField(l, n, rng.New(seed))
	return prop, field, nx
}

func figure9(sizes []int, k int, jsonPath string) {
	fmt.Printf("Figure 9: simulated-GPU clustering (Alg 4) and wrapping (Alg 6), k=%d\n\n", k)
	tbl := benchutil.NewTable("N", "cluster GF/s", "wrap GF/s", "device DGEMM GF/s")
	for _, n := range sizes {
		prop, field, nx := setup(n, 2*k, uint64(n))
		if prop == nil {
			fmt.Fprintf(os.Stderr, "skipping N=%d (not a perfect square)\n", n)
			continue
		}
		_ = nx
		dev := gpu.NewDevice(gpu.TeslaC2050())
		acc := gpu.NewAccelerator(dev, prop)

		dev.Reset() // exclude the one-time B/B^{-1} upload, as the paper does
		dst := mat.New(n, n)
		acc.Cluster(dst, field, hubbard.Up, 0, k)
		clusterGF := dev.GFlopsRate()
		emit(jsonPath, "cluster", n, k, dev.Clock().Seconds(), float64(dev.Flops()))

		dev.Reset()
		g := randomMatrix(n)
		acc.Wrap(g, field, hubbard.Up, 0)
		wrapGF := dev.GFlopsRate()
		emit(jsonPath, "wrap", n, k, dev.Clock().Seconds(), float64(dev.Flops()))

		// Pure device DGEMM rate at this size including one matrix
		// round trip (the CUBLAS-call-with-transfer comparison point).
		dev.Reset()
		da := dev.Malloc(n, n)
		db := dev.Malloc(n, n)
		dc := dev.Malloc(n, n)
		dev.SetMatrix(da, g)
		dev.SetMatrix(db, g)
		dev.Dgemm(false, false, 1, da, db, 0, dc)
		dev.GetMatrix(g, dc)
		gemmGF := dev.GFlopsRate()
		emit(jsonPath, "device-gemm", n, k, dev.Clock().Seconds(), float64(dev.Flops()))

		tbl.AddRow(n,
			fmt.Sprintf("%7.1f", clusterGF),
			fmt.Sprintf("%7.1f", wrapGF),
			fmt.Sprintf("%7.1f", gemmGF))
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): clustering approaches device DGEMM rate")
	fmt.Println("(k GEMMs per result transfer); wrapping is transfer-bound and lower,")
	fmt.Println("but both rise with N.")
}

func figure10(sizes []int, k, l int, jsonPath string) {
	fmt.Printf("Figure 10: hybrid CPU+GPU Green's function evaluation, L=%d, k=%d\n\n", l, k)
	fmt.Println("(clusters built on the simulated device; stratification with")
	fmt.Println("pre-pivoting on the host; rate = flops / (host time + modeled device time))")
	fmt.Println()
	tbl := benchutil.NewTable("N", "hybrid GF/s", "CPU-only GF/s")
	for _, n := range sizes {
		prop, field, _ := setup(n, l, uint64(n)+1)
		if prop == nil {
			fmt.Fprintf(os.Stderr, "skipping N=%d (not a perfect square)\n", n)
			continue
		}
		dev := gpu.NewDevice(gpu.TeslaC2050())
		acc := gpu.NewAccelerator(dev, prop)
		gcs := gpu.NewClusterSet(acc, field, hubbard.Up, k)
		nc := gcs.NC

		// Hybrid: rebuild one cluster on the device (the recycling cost of
		// a sweep step) and evaluate G on the host.
		dev.Reset()
		start := time.Now()
		gcs.Recompute(field, 0)
		gcs.GreenAt(0)
		// Host wall time minus the host cost of *executing* the simulated
		// kernels (that execution stands in for the device's work, whose
		// cost is the modeled clock).
		hostSec := (time.Since(start) - dev.RealTime()).Seconds()
		hybridSec := hostSec + dev.Clock().Seconds()
		flops := benchutil.GreensFlops(n, nc) + benchutil.ClusterFlops(n, k)
		hybridGF := benchutil.GFlops(flops, hybridSec)
		emit(jsonPath, "hybrid", n, k, hybridSec, flops)

		// CPU only: the same work entirely on the host (cluster set built
		// outside the timed region, matching the hybrid measurement).
		cpuCS := greens.NewClusterSet(prop, field, hubbard.Up, k)
		startCPU := time.Now()
		cpuCS.Recompute(field, 0)
		cpuCS.GreenAt(0, true)
		cpuSec := time.Since(startCPU).Seconds()
		cpuGF := benchutil.GFlops(flops, cpuSec)
		emit(jsonPath, "cpu", n, k, cpuSec, flops)

		tbl.AddRow(n,
			fmt.Sprintf("%7.2f", hybridGF),
			fmt.Sprintf("%7.2f", cpuGF))
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): hybrid rate above CPU-only and growing")
	fmt.Println("with N as the device GEMMs dominate the offloaded fraction.")
}

func randomMatrix(n int) *mat.Dense {
	r := rng.New(uint64(n) * 3)
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

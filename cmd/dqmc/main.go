// Command dqmc runs a full DQMC simulation of the Hubbard model, the
// QUEST-equivalent driver. Parameters come from a QUEST-style input file
// and/or command-line flags (flags win). It prints the physical
// observables with error bars and the Table-I-style phase profile.
//
// Usage:
//
//	dqmc [-in run.in] [-nx 4] [-ny 4] [-layers 1] [-u 4] [-mu 0]
//	     [-beta 2] [-l 10] [-warm 50] [-meas 100] [-k 10] [-seed 1]
//	     [-prepivot] [-progress]
//
// Example input file:
//
//	nx = 8
//	ny = 8
//	u = 2
//	beta = 8
//	l = 40
//	warm = 200
//	meas = 500
package main

import (
	"flag"
	"fmt"
	"os"

	"questgo"
)

func main() {
	in := flag.String("in", "", "QUEST-style input file")
	nx := flag.Int("nx", 0, "lattice x size")
	ny := flag.Int("ny", 0, "lattice y size")
	layers := flag.Int("layers", 0, "number of planes")
	tperp := flag.Float64("tperp", -1, "inter-layer hopping")
	u := flag.Float64("u", -1, "interaction U")
	mu := flag.Float64("mu", 0, "chemical potential (set with -setmu)")
	setMu := flag.Bool("setmu", false, "override mu from flags")
	beta := flag.Float64("beta", -1, "inverse temperature")
	l := flag.Int("l", 0, "time slices")
	warm := flag.Int("warm", -1, "warmup sweeps")
	meas := flag.Int("meas", -1, "measurement sweeps")
	k := flag.Int("k", 0, "matrix clustering size")
	seed := flag.Uint64("seed", 0, "RNG seed (0 keeps default)")
	qrp := flag.Bool("qrp", false, "use Algorithm 2 (QRP) instead of pre-pivoting")
	dynamics := flag.Bool("dynamics", false, "measure time-displaced G(d,tau) as well")
	progress := flag.Bool("progress", false, "print per-sweep progress")
	jsonOut := flag.String("json", "", "also write results as JSON to this file")
	walkers := flag.Int("walkers", 1, "independent parallel Markov chains to merge")
	ckptOut := flag.String("checkpoint", "", "write a restart file here after the run")
	resume := flag.String("resume", "", "resume the Markov chain from this restart file")
	flag.Parse()

	cfg := questgo.DefaultConfig()
	if *in != "" {
		var err error
		cfg, err = questgo.LoadConfig(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dqmc:", err)
			os.Exit(1)
		}
	}
	if *nx > 0 {
		cfg.Nx = *nx
	}
	if *ny > 0 {
		cfg.Ny = *ny
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	if *tperp >= 0 {
		cfg.Tperp = *tperp
	}
	if *u >= 0 {
		cfg.U = *u
	}
	if *setMu {
		cfg.Mu = *mu
	}
	if *beta > 0 {
		cfg.Beta = *beta
	}
	if *l > 0 {
		cfg.L = *l
	}
	if *warm >= 0 {
		cfg.WarmSweeps = *warm
	}
	if *meas > 0 {
		cfg.MeasSweeps = *meas
	}
	if *k > 0 {
		cfg.ClusterK = *k
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *qrp {
		cfg.PrePivot = false
	}
	if *dynamics {
		cfg.MeasureDynamics = true
	}

	var sim *questgo.Simulation
	var err error
	if *resume != "" {
		ck, lerr := questgo.LoadCheckpoint(*resume)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "dqmc:", lerr)
			os.Exit(1)
		}
		// Flags/input override the schedule for the continuation.
		ck.Config.WarmSweeps = cfg.WarmSweeps
		ck.Config.MeasSweeps = cfg.MeasSweeps
		cfg = ck.Config
		sim, err = questgo.Resume(ck)
	} else {
		sim, err = questgo.NewSimulation(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqmc:", err)
		os.Exit(1)
	}
	fmt.Printf("DQMC: %dx%dx%d sites, U=%g mu=%g beta=%g L=%d (dtau=%g), k=%d, prepivot=%v\n",
		cfg.Nx, cfg.Ny, cfg.Layers, cfg.U, cfg.Mu, cfg.Beta, cfg.L,
		cfg.Beta/float64(cfg.L), cfg.ClusterK, cfg.PrePivot)
	fmt.Printf("Schedule: %d warmup + %d measurement sweeps, seed %d\n\n",
		cfg.WarmSweeps, cfg.MeasSweeps, cfg.Seed)

	var cb func(questgo.Progress)
	if *progress {
		cb = func(p questgo.Progress) {
			if p.Sweep%10 == 0 || p.Sweep == p.Total {
				fmt.Fprintf(os.Stderr, "\r%s %d/%d", p.Stage, p.Sweep, p.Total)
				if p.Sweep == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	var res *questgo.Results
	if *walkers > 1 {
		if *resume != "" {
			fmt.Fprintln(os.Stderr, "dqmc: -walkers cannot combine with -resume")
			os.Exit(1)
		}
		res, err = questgo.RunParallel(cfg, *walkers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dqmc:", err)
			os.Exit(1)
		}
	} else {
		res = sim.RunProgress(cb)
	}

	fmt.Println("Observables (per site):")
	fmt.Printf("  density        %10.6f +- %.6f\n", res.Density, res.DensityErr)
	fmt.Printf("  double occ.    %10.6f +- %.6f\n", res.DoubleOcc, res.DoubleOccErr)
	fmt.Printf("  kinetic energy %10.6f +- %.6f\n", res.Kinetic, res.KineticErr)
	fmt.Printf("  potential U*d  %10.6f +- %.6f\n", res.Potential, res.PotentialErr)
	fmt.Printf("  local moment   %10.6f +- %.6f\n", res.LocalMoment, res.LocalMomentErr)
	fmt.Printf("  S(pi,pi)       %10.6f +- %.6f\n", res.SAF, res.SAFErr)
	if len(res.LayerDensity) > 1 {
		fmt.Printf("  layer densities %v\n", res.LayerDensity)
	}
	fmt.Printf("\nMonte Carlo: <sign> = %.4f, acceptance = %.3f, max wrap drift = %.2e\n",
		res.AvgSign, res.Acceptance, res.MaxWrapDrift)
	if len(res.DisplacedTaus) > 0 {
		fmt.Println("\nTime-displaced local Green's function:")
		dtau := cfg.Beta / float64(cfg.L)
		for i, l := range res.DisplacedTaus {
			fmt.Printf("  G(0, tau=%.3f) = %.5f +- %.5f\n",
				dtau*float64(l), res.GdTau[i][0], res.GdTauErr[i][0])
		}
	}
	fmt.Println("\nTable I profile:")
	fmt.Print(res.Prof.Table())
	if *jsonOut != "" {
		if err := res.SaveJSON(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dqmc: json:", err)
			os.Exit(1)
		}
		fmt.Printf("\nresults written to %s\n", *jsonOut)
	}
	if *ckptOut != "" && *walkers <= 1 {
		if err := sim.Checkpoint().Save(*ckptOut); err != nil {
			fmt.Fprintln(os.Stderr, "dqmc: checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("\ncheckpoint written to %s\n", *ckptOut)
	}
}

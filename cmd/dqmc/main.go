// Command dqmc runs a full DQMC simulation of the Hubbard model, the
// QUEST-equivalent driver. Parameters come from a QUEST-style input file
// and/or command-line flags (flags win). It prints the physical
// observables with error bars and the Table-I-style phase profile.
//
// Usage:
//
//	dqmc [-in run.in] [-nx 4] [-ny 4] [-layers 1] [-u 4] [-mu 0]
//	     [-beta 2] [-l 10] [-warm 50] [-meas 100] [-k 10] [-seed 1]
//	     [-prepivot] [-progress] [-stability 8] [-autopilot] [-json out.json]
//
// Interrupting a run (SIGINT/SIGTERM) stops it at the next sweep boundary;
// with -checkpoint set the Markov-chain state is saved there so the run can
// continue with -resume.
//
// Example input file:
//
//	nx = 8
//	ny = 8
//	u = 2
//	beta = 8
//	l = 40
//	warm = 200
//	meas = 500
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"questgo"
	"questgo/internal/profile"
)

func main() {
	in := flag.String("in", "", "QUEST-style input file")
	nx := flag.Int("nx", 0, "lattice x size")
	ny := flag.Int("ny", 0, "lattice y size")
	layers := flag.Int("layers", 0, "number of planes")
	tperp := flag.Float64("tperp", -1, "inter-layer hopping")
	u := flag.Float64("u", -1, "interaction U")
	mu := flag.Float64("mu", 0, "chemical potential (set with -setmu)")
	setMu := flag.Bool("setmu", false, "override mu from flags")
	beta := flag.Float64("beta", -1, "inverse temperature")
	l := flag.Int("l", 0, "time slices")
	warm := flag.Int("warm", -1, "warmup sweeps")
	meas := flag.Int("meas", -1, "measurement sweeps")
	k := flag.Int("k", 0, "matrix clustering size")
	seed := flag.Uint64("seed", 0, "RNG seed (0 keeps default)")
	qrp := flag.Bool("qrp", false, "use Algorithm 2 (QRP) instead of pre-pivoting")
	dynamics := flag.Bool("dynamics", false, "measure time-displaced G(d,tau) as well")
	progress := flag.Bool("progress", false, "print per-sweep progress")
	stability := flag.Int("stability", 0, "sample the stack-vs-rebuild residual every N cluster boundaries (0 = off)")
	auto := flag.Bool("autopilot", false, "adapt k and the stability-check cadence from live telemetry")
	devices := flag.Int("devices", -1, "simulated accelerators to sweep on (0 = CPU sweeper)")
	graphs := flag.Bool("graphs", false, "capture device launch sequences into command graphs (needs -devices >= 1)")
	jsonOut := flag.String("json", "", "also write results (with phase metrics) as JSON to this file")
	walkers := flag.Int("walkers", 1, "independent parallel Markov chains to merge")
	ckptOut := flag.String("checkpoint", "", "write a restart file here after the run (or on interrupt)")
	resume := flag.String("resume", "", "resume the Markov chain from this restart file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	cfg := questgo.DefaultConfig()
	if *in != "" {
		var err error
		cfg, err = questgo.LoadConfig(*in)
		if err != nil {
			fatal(err)
		}
	}
	// Command-line overrides on top of the file, via the validated builder.
	var opts []questgo.ConfigOption
	if *nx > 0 || *ny > 0 {
		ox, oy := cfg.Nx, cfg.Ny
		if *nx > 0 {
			ox = *nx
		}
		if *ny > 0 {
			oy = *ny
		}
		opts = append(opts, questgo.WithLattice(ox, oy))
	}
	if *layers > 0 {
		tp := cfg.Tperp
		if *tperp >= 0 {
			tp = *tperp
		}
		opts = append(opts, questgo.WithLayers(*layers, tp))
	} else if *tperp >= 0 {
		opts = append(opts, questgo.WithLayers(cfg.Layers, *tperp))
	}
	if *u >= 0 || *setMu {
		ou, om := cfg.U, cfg.Mu
		if *u >= 0 {
			ou = *u
		}
		if *setMu {
			om = *mu
		}
		opts = append(opts, questgo.WithInteraction(ou, om))
	}
	if *beta > 0 || *l > 0 {
		ob, ol := cfg.Beta, cfg.L
		if *beta > 0 {
			ob = *beta
		}
		if *l > 0 {
			ol = *l
		}
		opts = append(opts, questgo.WithTemperature(ob, ol))
	}
	if *warm >= 0 || *meas > 0 {
		ow, om := cfg.WarmSweeps, cfg.MeasSweeps
		if *warm >= 0 {
			ow = *warm
		}
		if *meas > 0 {
			om = *meas
		}
		opts = append(opts, questgo.WithSchedule(ow, om))
	}
	if *k > 0 {
		opts = append(opts, questgo.WithClusterK(*k))
	}
	if *seed != 0 {
		opts = append(opts, questgo.WithSeed(*seed))
	}
	if *qrp {
		opts = append(opts, questgo.WithPrePivot(false))
	}
	if *dynamics {
		opts = append(opts, questgo.WithMeasureDynamics(true))
	}
	if *stability > 0 {
		opts = append(opts, questgo.WithStabilityCheck(*stability))
	}
	if *auto {
		opts = append(opts, questgo.WithAutopilot(true))
	}
	if *devices >= 0 {
		opts = append(opts, questgo.WithDevices(*devices))
	}
	if *graphs {
		opts = append(opts, questgo.WithGraphs(true))
	}
	cfg, err := cfg.With(opts...)
	if err != nil {
		fatal(err)
	}

	if *cpuprofile != "" {
		stop, err := profile.StartCPUProfile(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *tracePath != "" {
		stop, err := profile.StartTrace(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var cb func(questgo.Progress)
	if *progress {
		cb = func(p questgo.Progress) {
			if p.Sweep%10 == 0 || p.Sweep == p.Total {
				fmt.Fprintf(os.Stderr, "\r%s %d/%d (%.1fs)", p.Stage, p.Sweep, p.Total, p.Wall.Seconds())
				if p.Sweep == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	var res *questgo.Results
	var sim *questgo.Simulation
	// Runs that must write a restart file (resume continuation, or
	// -checkpoint on a single walker) keep the Simulation in hand so the
	// final state can be saved on success as well as on interrupt; everything
	// else goes through the unified Run entry point.
	if *resume != "" || (*ckptOut != "" && *walkers <= 1) {
		if *walkers > 1 {
			fatal(errors.New("-walkers cannot combine with -resume"))
		}
		if *resume != "" {
			ck, lerr := questgo.LoadCheckpoint(*resume)
			if lerr != nil {
				fatal(lerr)
			}
			// Flags/input override the schedule for the continuation.
			ck.Config.WarmSweeps = cfg.WarmSweeps
			ck.Config.MeasSweeps = cfg.MeasSweeps
			cfg = ck.Config
			if sim, err = questgo.Resume(ck); err != nil {
				fatal(err)
			}
		} else if sim, err = questgo.NewSimulation(cfg); err != nil {
			fatal(err)
		}
		banner(cfg)
		if res, err = sim.RunContext(ctx, cb); err != nil {
			if *ckptOut != "" {
				if serr := sim.Checkpoint().Save(*ckptOut); serr == nil {
					fmt.Fprintf(os.Stderr, "dqmc: %v; checkpoint written to %s\n", err, *ckptOut)
					os.Exit(1)
				}
			}
			fatal(err)
		}
	} else {
		banner(cfg)
		ropts := []questgo.RunOption{questgo.WithProgress(cb)}
		if *walkers > 1 {
			ropts = append(ropts, questgo.WithWalkers(*walkers))
		}
		if res, err = questgo.Run(ctx, cfg, ropts...); err != nil {
			fatal(err)
		}
	}

	fmt.Println("Observables (per site):")
	fmt.Printf("  density        %10.6f +- %.6f\n", res.Density, res.DensityErr)
	fmt.Printf("  double occ.    %10.6f +- %.6f\n", res.DoubleOcc, res.DoubleOccErr)
	fmt.Printf("  kinetic energy %10.6f +- %.6f\n", res.Kinetic, res.KineticErr)
	fmt.Printf("  potential U*d  %10.6f +- %.6f\n", res.Potential, res.PotentialErr)
	fmt.Printf("  local moment   %10.6f +- %.6f\n", res.LocalMoment, res.LocalMomentErr)
	fmt.Printf("  S(pi,pi)       %10.6f +- %.6f\n", res.SAF, res.SAFErr)
	if len(res.LayerDensity) > 1 {
		fmt.Printf("  layer densities %v\n", res.LayerDensity)
	}
	fmt.Printf("\nMonte Carlo: <sign> = %.4f, acceptance = %.3f, max wrap drift = %.2e\n",
		res.AvgSign, res.Acceptance, res.MaxWrapDrift)
	if m := res.Metrics; m != nil {
		fmt.Printf("Phase metrics: wall %.1f ms", m.WallMS)
		for _, ph := range [...]string{"wrap", "flush", "cluster", "refresh", "measure"} {
			fmt.Printf(", %s %.1f ms", ph, m.PhaseMS[ph])
		}
		fmt.Printf(" (coverage %.0f%%)\n", 100*m.PhaseCoverage)
		if m.Stability.StratResidualSamples > 0 {
			fmt.Printf("Stability: strat residual max %.2e over %d checks, UDT cond max 1e%.1f\n",
				m.Stability.MaxStratResidual, m.Stability.StratResidualSamples,
				m.Stability.MaxUDTCondLog10)
		}
		if ap := m.Autopilot; ap != nil && ap.Enabled {
			fmt.Printf("Autopilot: k %d -> %d, check cadence %d -> %d (%d shrinks, %d grows)\n",
				ap.InitialK, ap.FinalK, ap.InitialCheckEvery, ap.FinalCheckEvery,
				ap.Shrinks, ap.Grows)
			if ap.NonFinite {
				fmt.Printf("Autopilot: %d non-finite stability samples — emergency minimum engaged\n",
					ap.NonFiniteEvents)
			}
		}
	}
	if len(res.DisplacedTaus) > 0 {
		fmt.Println("\nTime-displaced local Green's function:")
		dtau := cfg.Beta / float64(cfg.L)
		for i, l := range res.DisplacedTaus {
			fmt.Printf("  G(0, tau=%.3f) = %.5f +- %.5f\n",
				dtau*float64(l), res.GdTau[i][0], res.GdTauErr[i][0])
		}
	}
	fmt.Println("\nTable I profile:")
	fmt.Print(res.Prof.Table())
	if *jsonOut != "" {
		if err := res.SaveJSON(*jsonOut); err != nil {
			fatal(fmt.Errorf("json: %w", err))
		}
		fmt.Printf("\nresults written to %s\n", *jsonOut)
	}
	if *ckptOut != "" && sim != nil {
		if err := sim.Checkpoint().Save(*ckptOut); err != nil {
			fatal(fmt.Errorf("checkpoint: %w", err))
		}
		fmt.Printf("\ncheckpoint written to %s\n", *ckptOut)
	}
}

func banner(cfg questgo.Config) {
	fmt.Printf("DQMC: %dx%dx%d sites, U=%g mu=%g beta=%g L=%d (dtau=%g), k=%d, prepivot=%v\n",
		cfg.Nx, cfg.Ny, cfg.Layers, cfg.U, cfg.Mu, cfg.Beta, cfg.L,
		cfg.Beta/float64(cfg.L), cfg.ClusterK, cfg.PrePivot)
	fmt.Printf("Schedule: %d warmup + %d measurement sweeps, seed %d\n\n",
		cfg.WarmSweeps, cfg.MeasSweeps, cfg.Seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqmc:", err)
	os.Exit(1)
}

// Command accuracy regenerates the paper's Figure 2: the distribution
// (box-and-whisker five-number summary) of the relative difference
// ||G - G~||_F / ||G||_F between the Green's functions computed by the
// classic QRP stratification (Algorithm 2) and the pre-pivoting variant
// (Algorithm 3), over Green's function evaluations sampled from a running
// DQMC simulation, for a range of interaction strengths U.
//
// The paper samples 1000 evaluations on a 16x16 lattice with L = 160
// (beta = 32) and finds the differences clustered below 1e-12,
// insensitive to U. Defaults here are scaled down for quick runs; use the
// flags for paper-scale parameters.
//
// Usage:
//
//	accuracy [-nx 8] [-l 40] [-evals 200] [-us 2,3,4,5,6,7,8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"questgo/internal/benchutil"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
	"questgo/internal/stats"
	"questgo/internal/update"
)

func main() {
	nx := flag.Int("nx", 8, "linear lattice size (paper: 16)")
	l := flag.Int("l", 40, "time slices (paper: 160, dtau = 0.2)")
	evals := flag.Int("evals", 200, "Green's function evaluations per U (paper: 1000)")
	usFlag := flag.String("us", "2,3,4,5,6,7,8", "interaction strengths")
	clusterK := flag.Int("k", 10, "matrix clustering size")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	us, err := benchutil.ParseSizes(*usFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dtau := 0.2
	beta := dtau * float64(*l)
	fmt.Printf("Figure 2: ||G - G~||_F/||G||_F distribution, %dx%d lattice, L=%d (beta=%g), %d evals per U\n\n",
		*nx, *nx, *l, beta, *evals)
	tbl := benchutil.NewTable("U", "min", "Q1", "median", "Q3", "max")
	for _, u := range us {
		diffs := sampleDiffs(*nx, float64(u), beta, *l, *clusterK, *evals, *seed)
		s := stats.Summary(diffs)
		tbl.AddRow(u,
			fmt.Sprintf("%.2e", s.Min),
			fmt.Sprintf("%.2e", s.Q1),
			fmt.Sprintf("%.2e", s.Median),
			fmt.Sprintf("%.2e", s.Q3),
			fmt.Sprintf("%.2e", s.Max))
	}
	tbl.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): medians ~1e-13..1e-12, maxima below ~1e-10,")
	fmt.Println("no systematic dependence on U.")
}

// sampleDiffs runs a short DQMC simulation and, at every cluster boundary
// of every sweep, evaluates G with both stratifications and records the
// relative difference — the same sampling protocol as the paper (the
// configurations come from the real Markov chain, not random fields).
func sampleDiffs(nx int, u, beta float64, l, k, want int, seed uint64) []float64 {
	lat := lattice.NewSquare(nx, nx, 1)
	model, err := hubbard.NewModel(lat, u, 0, beta, l)
	if err != nil {
		panic(err)
	}
	prop := hubbard.NewPropagator(model)
	r := rng.New(seed)
	field := hubbard.NewRandomField(l, model.N(), r)
	sw := update.NewSweeper(prop, field, r, update.Options{ClusterK: k, PrePivot: true})

	cs := func(sigma hubbard.Spin) *greens.ClusterSet {
		return greens.NewClusterSet(prop, field, sigma, sw.ClusterK())
	}
	var diffs []float64
	for len(diffs) < want {
		sw.Sweep()
		// Compare at every cluster boundary of the current field.
		csUp := cs(hubbard.Up)
		for c := 0; c < csUp.NC && len(diffs) < want; c++ {
			g2 := csUp.GreenAt(c, false)
			g3 := csUp.GreenAt(c, true)
			diffs = append(diffs, mat.RelDiff(g3, g2))
		}
	}
	return diffs
}

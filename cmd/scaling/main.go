// Command scaling regenerates the paper's Figure 8 and Table I.
//
// Figure 8: wall-clock time of a full DQMC simulation versus the number
// of sites N, against the nominal O(N^3) prediction anchored at the
// smallest size. The paper observes *better* than N^3 scaling because the
// dense kernels become more efficient as the matrices grow; the same
// effect appears here.
//
// Table I: the percentage of simulation time spent in each phase
// (delayed updates, stratification, clustering, wrapping, measurements).
//
// Usage:
//
//	scaling [-sizes 16,36,64,100] [-l 24] [-warm 10] [-meas 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"questgo"
	"questgo/internal/benchutil"
	"questgo/internal/profile"
)

func main() {
	sizesFlag := flag.String("sizes", "16,36,64,100", "site counts (perfect squares; paper: 256,400,576,784,1024)")
	l := flag.Int("l", 24, "time slices (paper: 160)")
	warm := flag.Int("warm", 10, "warmup sweeps (paper: 1000)")
	meas := flag.Int("meas", 20, "measurement sweeps (paper: 2000)")
	u := flag.Float64("u", 2, "interaction strength")
	dynamics := flag.Bool("dynamics", true, "include time-displaced measurements (QUEST's dynamic bundle, part of the paper's measurement share)")
	flag.Parse()

	sizes, err := benchutil.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Figure 8 + Table I: full DQMC simulation, U=%g, L=%d, %d+%d sweeps\n\n",
		*u, *l, *warm, *meas)

	fig8 := benchutil.NewTable("N", "time (s)", "nominal N^3 (s)", "ratio")
	profiles := make([]*profile.Profile, 0, len(sizes))
	var baseTime float64
	var baseN int
	okSizes := make([]int, 0, len(sizes))
	for _, n := range sizes {
		nx := int(math.Round(math.Sqrt(float64(n))))
		if nx*nx != n {
			fmt.Fprintf(os.Stderr, "skipping N=%d (not a perfect square)\n", n)
			continue
		}
		cfg, err := questgo.NewConfig(
			questgo.WithLattice(nx, nx),
			questgo.WithInteraction(*u, 0),
			questgo.WithTemperature(0.125*float64(*l), *l),
			questgo.WithSchedule(*warm, *meas),
			questgo.WithMeasureDynamics(*dynamics),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			os.Exit(1)
		}
		res, err := questgo.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			os.Exit(1)
		}
		// The instrumented wall time of the run itself (setup excluded) —
		// the same clock the Table-I percentages are computed from.
		elapsed := res.Metrics.WallMS / 1e3
		if baseTime == 0 {
			baseTime, baseN = elapsed, n
		}
		nominal := baseTime * math.Pow(float64(n)/float64(baseN), 3)
		fig8.AddRow(n,
			fmt.Sprintf("%.2f", elapsed),
			fmt.Sprintf("%.2f", nominal),
			fmt.Sprintf("%.2f", elapsed/nominal))
		profiles = append(profiles, res.Prof)
		okSizes = append(okSizes, n)
	}
	fmt.Println("Figure 8: total simulation time vs N (nominal anchored at the smallest size)")
	fig8.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper): measured/nominal ratio below 1 at large N")
	fmt.Println("(cache/parallel efficiency of the dense kernels improves with size).")
	fmt.Println()

	fmt.Println("Table I: execution-time percentage of each phase")
	t1 := benchutil.NewTable(append([]string{"Phase"}, headerStrings(okSizes)...)...)
	for c := profile.Category(0); c < profile.NumCategories; c++ {
		row := make([]interface{}, 0, len(profiles)+1)
		row = append(row, c.Name())
		for _, p := range profiles {
			row = append(row, fmt.Sprintf("%5.1f%%", p.Percentages()[c]))
		}
		t1.AddRow(row...)
	}
	t1.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Expected shape (paper, Table I): stratification largest (~45%),")
	fmt.Println("measurements ~18-20%, delayed update ~14-17%, clustering and")
	fmt.Println("wrapping ~8-12% each.")
}

func headerStrings(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, n := range sizes {
		out[i] = fmt.Sprintf("N=%d", n)
	}
	return out
}

// Command dqmcd serves DQMC simulations over a versioned HTTP/JSON job API.
// A job is one canonical Config document plus a shard count; shards are
// independent Markov chains executed on a bounded worker pool, aggregated as
// they land and cached by the deterministic Config content hash.
//
// Usage:
//
//	dqmcd [-addr 127.0.0.1:8517] [-workers N] [-cache 256]
//	      [-ckptdir DIR] [-maxrestarts 3] [-retain 512]
//
// Endpoints (all documents carry schema_version):
//
//	POST   /v1/jobs               submit {config, shards, tag, no_cache}
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          status (shard progress, partial estimate)
//	GET    /v1/jobs/{id}/result   merged result (202 while in flight)
//	POST   /v1/jobs/{id}/cancel   stop at the next sweep boundary
//	GET    /v1/jobs/{id}/stream   chunked JSON-lines event feed
//	GET    /v1/healthz            liveness probe
//	GET    /v1/stats              service counters
//
// SIGINT/SIGTERM drains gracefully: in-flight shards checkpoint and stop at
// the next sweep boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"questgo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8517", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	cache := flag.Int("cache", 256, "result cache capacity in entries (negative disables)")
	ckptDir := flag.String("ckptdir", "", "shard checkpoint directory (empty = private temp dir)")
	maxRestarts := flag.Int("maxrestarts", 3, "max resume attempts per shard before the job fails")
	retain := flag.Int("retain", 512, "finished jobs kept for status/result reads (negative retains all)")
	flag.Parse()

	if err := run(*addr, *workers, *cache, *ckptDir, *maxRestarts, *retain); err != nil {
		fmt.Fprintln(os.Stderr, "dqmcd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, cache int, ckptDir string, maxRestarts, retain int) error {
	svc, err := questgo.NewServer(questgo.ServerOptions{
		Workers:       workers,
		CacheSize:     cache,
		CheckpointDir: ckptDir,
		MaxRestarts:   maxRestarts,
		RetainJobs:    retain,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	//qmc:allow goleak -- exits when Shutdown/Close below makes ListenAndServe return; errc is buffered so the send never blocks
	go func() { errc <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("dqmcd: serving on http://%s (workers=%d)\n", addr, svc.Workers())

	select {
	case err := <-errc:
		_ = svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("dqmcd: draining (in-flight shards checkpoint at the next sweep boundary)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	serr := httpSrv.Shutdown(shutCtx)
	cerr := svc.Close()
	if serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return cerr
}

// Command sweep scans a physical parameter (beta, u, mu, tprime or tperp)
// across a list of values, running a full DQMC simulation (optionally
// several parallel walkers) at each point and tabulating the observables —
// the workflow behind finite-size/temperature studies like the paper's
// Figure 7 extrapolation discussion.
//
// Usage:
//
//	sweep -scan beta -values 1,2,3,4 [-nx 4] [-u 4] [-walkers 2] [-chi]
//	sweep -scan u -values 0,2,4,6 -beta 3
//
// With -json, the command instead runs the sweep-scale benchmark: for each
// lattice size in -bsizes it times ms/sweep of the full Metropolis sweep in
// two configurations — the pre-optimization baseline (full-chain
// stratified refresh, serial spin sectors) and the production path
// (prefix/suffix UDT stack + spin-parallel phases) — and appends one JSON
// line per size to the named file:
//
//	sweep -json BENCH_sweep.json -bsizes 8,12,16 -bsweeps 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"questgo"
	"questgo/internal/benchutil"
	"questgo/internal/core"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/rng"
	"questgo/internal/update"
)

func main() {
	scan := flag.String("scan", "beta", "parameter to scan: beta, u, mu, tprime, tperp")
	valuesFlag := flag.String("values", "1,2,3", "comma-separated parameter values")
	nx := flag.Int("nx", 4, "lattice linear size")
	layers := flag.Int("layers", 1, "layers")
	u := flag.Float64("u", 4, "interaction (when not scanned)")
	beta := flag.Float64("beta", 3, "inverse temperature (when not scanned)")
	dtau := flag.Float64("dtau", 0.1, "Trotter step (L = beta/dtau)")
	warm := flag.Int("warm", 50, "warmup sweeps")
	meas := flag.Int("meas", 150, "measurement sweeps")
	walkers := flag.Int("walkers", 1, "parallel Markov chains per point")
	chi := flag.Bool("chi", false, "also sample the spin susceptibility chi_zz(pi,pi)")
	chiSamples := flag.Int("chisamples", 5, "sweeps sampled for chi")
	seed := flag.Uint64("seed", 1, "RNG seed")
	jsonPath := flag.String("json", "", "benchmark mode: append ms/sweep JSON lines to this file")
	bsizes := flag.String("bsizes", "8,12,16", "benchmark lattice linear sizes")
	bl := flag.Int("bl", 40, "benchmark time slices")
	bk := flag.Int("bk", 5, "benchmark cluster size k")
	bsweeps := flag.Int("bsweeps", 2, "timed sweeps per configuration")
	flag.Parse()

	if *jsonPath != "" {
		if err := runSweepBench(*jsonPath, *bsizes, *bl, *bk, *bsweeps); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}

	values, err := parseFloats(*valuesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	header := []string{*scan, "density", "docc", "moment", "S(pi,pi)", "<sign>"}
	if *chi {
		header = append(header, "chi_AF")
	}
	tbl := benchutil.NewTable(header...)
	for _, v := range values {
		cfg := questgo.DefaultConfig()
		cfg.Nx, cfg.Ny, cfg.Layers = *nx, *nx, *layers
		cfg.U, cfg.Beta = *u, *beta
		cfg.WarmSweeps, cfg.MeasSweeps = *warm, *meas
		cfg.Seed = *seed
		switch strings.ToLower(*scan) {
		case "beta":
			cfg.Beta = v
		case "u":
			cfg.U = v
		case "mu":
			cfg.Mu = v
		case "tprime":
			cfg.TPrime = v
		case "tperp":
			cfg.Tperp = v
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *scan)
			os.Exit(1)
		}
		cfg.L = int(cfg.Beta / *dtau)
		if cfg.L < 4 {
			cfg.L = 4
		}
		fmt.Fprintf(os.Stderr, "running %s = %g (L = %d)...\n", *scan, v, cfg.L)

		var res *questgo.Results
		var chiStr string
		if *walkers > 1 {
			res, err = questgo.RunParallel(cfg, *walkers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			if *chi {
				chiStr = "n/a(walkers)"
			}
		} else {
			sim, err := questgo.NewSimulation(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			res = sim.Run()
			if *chi {
				cr := sampleChi(sim, *chiSamples)
				chiStr = fmt.Sprintf("%.3f+-%.3f", cr.AF, cr.AFErr)
			}
		}
		row := []interface{}{
			fmt.Sprintf("%g", v),
			fmt.Sprintf("%.4f+-%.4f", res.Density, res.DensityErr),
			fmt.Sprintf("%.4f+-%.4f", res.DoubleOcc, res.DoubleOccErr),
			fmt.Sprintf("%.4f", res.LocalMoment),
			fmt.Sprintf("%.3f+-%.3f", res.SAF, res.SAFErr),
			fmt.Sprintf("%.3f", res.AvgSign),
		}
		if *chi {
			row = append(row, chiStr)
		}
		tbl.AddRow(row...)
	}
	fmt.Println()
	tbl.Render(os.Stdout)
}

func sampleChi(sim *questgo.Simulation, samples int) *core.ChiResult {
	return sim.SampleSusceptibility(samples, 0)
}

// runSweepBench times full Metropolis sweeps at each lattice size, baseline
// (NoStack + SerialSpins, the pre-optimization path) vs the production
// stack + spin-parallel path, and appends one JSON line per size.
func runSweepBench(path, sizesFlag string, l, k, sweeps int) error {
	sizes, err := benchutil.ParseSizes(sizesFlag)
	if err != nil {
		return err
	}
	if sweeps < 1 {
		sweeps = 1
	}
	fmt.Println("Sweep-scale benchmark: ms/sweep, baseline (full rebuild, serial spins)")
	fmt.Println("vs stacked stratification + spin-parallel pipeline")
	fmt.Println()
	tbl := benchutil.NewTable("N", "L", "k", "base ms/sweep", "opt ms/sweep", "speedup")
	for _, nx := range sizes {
		lat := lattice.NewSquare(nx, nx, 1.0)
		model, err := hubbard.NewModel(lat, 4, 0, 0.125*float64(l), l)
		if err != nil {
			return err
		}
		prop := hubbard.NewPropagator(model)

		msPerSweep := func(noStack, serial bool) float64 {
			f := hubbard.NewRandomField(l, model.N(), rng.New(11))
			sw := update.NewSweeper(prop, f, rng.New(23), update.Options{
				ClusterK: k, PrePivot: true, NoStack: noStack, SerialSpins: serial,
			})
			sw.Sweep() // warm the pools and caches
			start := time.Now()
			for i := 0; i < sweeps; i++ {
				sw.Sweep()
			}
			return time.Since(start).Seconds() * 1e3 / float64(sweeps)
		}
		base := msPerSweep(true, true)
		opt := msPerSweep(false, false)

		n := model.N()
		tbl.AddRow(n, l, k,
			fmt.Sprintf("%9.1f", base),
			fmt.Sprintf("%9.1f", opt),
			fmt.Sprintf("%5.2f", base/opt))
		rec := struct {
			Bench string  `json:"bench"`
			N     int     `json:"n"`
			Nx    int     `json:"nx"`
			L     int     `json:"l"`
			K     int     `json:"k"`
			Procs int     `json:"gomaxprocs"`
			Base  float64 `json:"baseline_ms_per_sweep"`
			Opt   float64 `json:"stacked_ms_per_sweep"`
			Speed float64 `json:"speedup"`
			Stamp string  `json:"time"`
		}{"sweep", n, nx, l, k, runtime.GOMAXPROCS(0), base, opt, base / opt,
			time.Now().UTC().Format(time.RFC3339)}
		if err := benchutil.AppendJSONLine(path, rec); err != nil {
			return err
		}
	}
	tbl.Render(os.Stdout)
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty value list")
	}
	return out, nil
}

// Command sweep scans a physical parameter (beta, u, mu, tprime or tperp)
// across a list of values, running a full DQMC simulation (optionally
// several parallel walkers) at each point and tabulating the observables —
// the workflow behind finite-size/temperature studies like the paper's
// Figure 7 extrapolation discussion.
//
// Usage:
//
//	sweep -scan beta -values 1,2,3,4 [-nx 4] [-u 4] [-walkers 2] [-chi]
//	sweep -scan u -values 0,2,4,6 -beta 3
//
// With -json, the command instead runs the sweep-scale benchmark: for each
// lattice size in -bsizes it times ms/sweep of the full Metropolis sweep in
// two configurations — the pre-optimization baseline (full-chain
// stratified refresh, serial spin sectors) and the production path
// (prefix/suffix UDT stack + spin-parallel phases) — and appends one
// benchutil.Record JSON line per configuration to the named file:
//
//	sweep -json BENCH_sweep.json -bsizes 8,12,16 -bsweeps 2
//
// With -obscheck, the command instead measures the overhead of the metrics
// instrumentation (enabled collector vs disabled) on the hot sweep path and
// fails if it exceeds -obsmax percent — the regression gate wired into
// reproduce.sh:
//
//	sweep -obscheck -obsmax 2
//
// With -autopilot, the command instead runs the stability-autopilot
// ablation: one fixed-k run and one autopilot run of the same chain, each
// appending a benchutil.Record to the named file. With -apgate it fails
// unless the controller held the strat residual under -apres without
// checking more often or running slower than the fixed baseline:
//
//	sweep -autopilot BENCH_autopilot.json -apbeta 32 -apgate
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"questgo"
	"questgo/internal/benchutil"
	"questgo/internal/core"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/obs"
	"questgo/internal/rng"
	"questgo/internal/update"
)

func main() {
	scan := flag.String("scan", "beta", "parameter to scan: beta, u, mu, tprime, tperp")
	valuesFlag := flag.String("values", "1,2,3", "comma-separated parameter values")
	nx := flag.Int("nx", 4, "lattice linear size")
	layers := flag.Int("layers", 1, "layers")
	u := flag.Float64("u", 4, "interaction (when not scanned)")
	beta := flag.Float64("beta", 3, "inverse temperature (when not scanned)")
	dtau := flag.Float64("dtau", 0.1, "Trotter step (L = beta/dtau)")
	warm := flag.Int("warm", 50, "warmup sweeps")
	meas := flag.Int("meas", 150, "measurement sweeps")
	walkers := flag.Int("walkers", 1, "parallel Markov chains per point")
	chi := flag.Bool("chi", false, "also sample the spin susceptibility chi_zz(pi,pi)")
	chiSamples := flag.Int("chisamples", 5, "sweeps sampled for chi")
	seed := flag.Uint64("seed", 1, "RNG seed")
	jsonPath := flag.String("json", "", "benchmark mode: append ms/sweep JSON lines to this file")
	bsizes := flag.String("bsizes", "8,12,16", "benchmark lattice linear sizes")
	bl := flag.Int("bl", 40, "benchmark time slices")
	bk := flag.Int("bk", 5, "benchmark cluster size k")
	bsweeps := flag.Int("bsweeps", 2, "timed sweeps per configuration")
	obscheck := flag.Bool("obscheck", false, "overhead mode: gate metrics instrumentation cost on the sweep hot path")
	obsmax := flag.Float64("obsmax", 2.0, "maximum tolerated instrumentation overhead, percent")
	obsnx := flag.Int("obsnx", 8, "overhead mode: lattice linear size")
	obsreps := flag.Int("obsreps", 3, "overhead mode: interleaved repetitions per variant")
	apPath := flag.String("autopilot", "", "ablation mode: append autopilot-vs-fixed records to this file")
	apnx := flag.Int("apnx", 4, "ablation lattice linear size")
	apbeta := flag.Float64("apbeta", 32, "ablation inverse temperature")
	apl := flag.Int("apl", 160, "ablation time slices")
	apk := flag.Int("apk", 10, "ablation initial cluster size k")
	apcheck := flag.Int("apcheck", 2, "ablation fixed stability-check cadence")
	apwarm := flag.Int("apwarm", 5, "ablation warmup sweeps")
	apmeas := flag.Int("apmeas", 15, "ablation measurement sweeps")
	apgate := flag.Bool("apgate", false, "fail unless the autopilot matches the fixed run's residual, checks and wall time")
	apres := flag.Float64("apres", 1e-8, "ablation max tolerated strat residual")
	flag.Parse()

	if *apPath != "" {
		if err := runAutopilotBench(*apPath, *apnx, *apbeta, *apl, *apk, *apcheck,
			*apwarm, *apmeas, *apres, *apgate); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}

	if *obscheck {
		if err := runObsCheck(*obsnx, *bl, *bk, *bsweeps, *obsreps, *obsmax); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" {
		if err := runSweepBench(*jsonPath, *bsizes, *bl, *bk, *bsweeps); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}

	values, err := parseFloats(*valuesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	header := []string{*scan, "density", "docc", "moment", "S(pi,pi)", "<sign>"}
	if *chi {
		header = append(header, "chi_AF")
	}
	tbl := benchutil.NewTable(header...)
	for _, v := range values {
		bval, uval, muval, tperpv := *beta, *u, 0.0, 0.0
		var extra []questgo.ConfigOption
		switch strings.ToLower(*scan) {
		case "beta":
			bval = v
		case "u":
			uval = v
		case "mu":
			muval = v
		case "tprime":
			extra = append(extra, questgo.WithHopping(1, 0, v))
		case "tperp":
			tperpv = v
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *scan)
			os.Exit(1)
		}
		l := int(bval / *dtau)
		if l < 4 {
			l = 4
		}
		opts := append([]questgo.ConfigOption{
			questgo.WithLattice(*nx, *nx),
			questgo.WithLayers(*layers, tperpv),
			questgo.WithInteraction(uval, muval),
			questgo.WithTemperature(bval, l),
			questgo.WithSchedule(*warm, *meas),
			questgo.WithSeed(*seed),
		}, extra...)
		cfg, err := questgo.NewConfig(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "running %s = %g (L = %d)...\n", *scan, v, cfg.L)

		var res *questgo.Results
		var chiStr string
		if *walkers > 1 {
			res, err = questgo.Run(context.Background(), cfg, questgo.WithWalkers(*walkers))
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			if *chi {
				chiStr = "n/a(walkers)"
			}
		} else {
			sim, err := questgo.NewSimulation(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			res = sim.Run()
			if *chi {
				cr := sampleChi(sim, *chiSamples)
				chiStr = fmt.Sprintf("%.3f+-%.3f", cr.AF, cr.AFErr)
			}
		}
		row := []interface{}{
			fmt.Sprintf("%g", v),
			fmt.Sprintf("%.4f+-%.4f", res.Density, res.DensityErr),
			fmt.Sprintf("%.4f+-%.4f", res.DoubleOcc, res.DoubleOccErr),
			fmt.Sprintf("%.4f", res.LocalMoment),
			fmt.Sprintf("%.3f+-%.3f", res.SAF, res.SAFErr),
			fmt.Sprintf("%.3f", res.AvgSign),
		}
		if *chi {
			row = append(row, chiStr)
		}
		tbl.AddRow(row...)
	}
	fmt.Println()
	tbl.Render(os.Stdout)
}

func sampleChi(sim *questgo.Simulation, samples int) *core.ChiResult {
	return sim.SampleSusceptibility(samples, 0)
}

// sweepSetup builds the model and a per-sweep timer for benchmark modes.
func sweepSetup(nx, l int) (prop *hubbard.Propagator, n int, err error) {
	lat := lattice.NewSquare(nx, nx, 1.0)
	model, err := hubbard.NewModel(lat, 4, 0, 0.125*float64(l), l)
	if err != nil {
		return nil, 0, err
	}
	return hubbard.NewPropagator(model), model.N(), nil
}

// timeSweeps measures seconds per Metropolis sweep under the given options,
// after one untimed warmup sweep to populate pools and caches.
func timeSweeps(prop *hubbard.Propagator, l, sweeps int, o update.Options) float64 {
	f := hubbard.NewRandomField(l, prop.Model.N(), rng.New(11))
	sw := update.NewSweeper(prop, f, rng.New(23), o)
	sw.Sweep()
	start := time.Now()
	for i := 0; i < sweeps; i++ {
		sw.Sweep()
	}
	return time.Since(start).Seconds() / float64(sweeps)
}

// runSweepBench times full Metropolis sweeps at each lattice size, baseline
// (NoStack + SerialSpins, the pre-optimization path) vs the production
// stack + spin-parallel path, and appends one benchutil.Record per
// configuration.
func runSweepBench(path, sizesFlag string, l, k, sweeps int) error {
	sizes, err := benchutil.ParseSizes(sizesFlag)
	if err != nil {
		return err
	}
	if sweeps < 1 {
		sweeps = 1
	}
	fmt.Println("Sweep-scale benchmark: ms/sweep, baseline (full rebuild, serial spins)")
	fmt.Println("vs stacked stratification + spin-parallel pipeline")
	fmt.Println()
	tbl := benchutil.NewTable("N", "L", "k", "base ms/sweep", "opt ms/sweep", "speedup")
	for _, nx := range sizes {
		prop, n, err := sweepSetup(nx, l)
		if err != nil {
			return err
		}
		base := timeSweeps(prop, l, sweeps, update.Options{
			ClusterK: k, PrePivot: true, NoStack: true, SerialSpins: true,
		})
		opt := timeSweeps(prop, l, sweeps, update.Options{
			ClusterK: k, PrePivot: true,
		})

		tbl.AddRow(n, l, k,
			fmt.Sprintf("%9.1f", base*1e3),
			fmt.Sprintf("%9.1f", opt*1e3),
			fmt.Sprintf("%5.2f", base/opt))
		for _, pt := range []struct {
			name string
			secs float64
		}{{"baseline", base}, {"stacked", opt}} {
			rec := benchutil.NewRecord("sweep", pt.name, n, pt.secs, 0).
				WithParam("nx", nx).WithParam("l", l).WithParam("k", k).
				WithParam("gomaxprocs", runtime.GOMAXPROCS(0))
			if err := rec.Append(path); err != nil {
				return err
			}
		}
	}
	tbl.Render(os.Stdout)
	return nil
}

// runAutopilotBench runs the stability-autopilot ablation: the same Markov
// chain once with fixed k and check cadence, once under the controller, and
// appends one benchutil.Record per variant. The gate asserts the controller
// earns its keep — residual held under maxRes, no more residual checks than
// the fixed baseline (the adapted cadence is never denser), and wall time
// within 10% of the fixed run.
func runAutopilotBench(path string, nx int, beta float64, l, k, check, warm, meas int, maxRes float64, gate bool) error {
	base, err := questgo.NewConfig(
		questgo.WithLattice(nx, nx),
		questgo.WithInteraction(4, 0),
		questgo.WithTemperature(beta, l),
		questgo.WithSchedule(warm, meas),
		questgo.WithClusterK(k),
		questgo.WithStabilityCheck(check),
		questgo.WithSeed(1),
	)
	if err != nil {
		return err
	}
	auto, err := base.With(questgo.WithAutopilot(true))
	if err != nil {
		return err
	}

	type outcome struct {
		res     *questgo.Results
		secs    float64
		checks  int64
		maxRes  float64
		finalK  int
		cadence int
	}
	runOne := func(cfg questgo.Config) (*outcome, error) {
		start := time.Now()
		res, err := questgo.Run(context.Background(), cfg)
		if err != nil {
			return nil, err
		}
		o := &outcome{
			res:     res,
			secs:    time.Since(start).Seconds(),
			checks:  res.Metrics.Stability.StratResidualSamples,
			maxRes:  res.Metrics.Stability.MaxStratResidual,
			finalK:  cfg.ClusterK,
			cadence: cfg.StabilityCheckEvery,
		}
		if ap := res.Metrics.Autopilot; ap != nil && ap.Enabled {
			o.finalK = ap.FinalK
			o.cadence = ap.FinalCheckEvery
		}
		return o, nil
	}

	fmt.Printf("Autopilot ablation: %dx%d, beta=%g L=%d, k=%d check=%d, %d+%d sweeps\n\n",
		nx, nx, beta, l, k, check, warm, meas)
	fixed, err := runOne(base)
	if err != nil {
		return err
	}
	piloted, err := runOne(auto)
	if err != nil {
		return err
	}

	tbl := benchutil.NewTable("variant", "final k", "cadence", "checks", "max residual", "wall s")
	for _, pt := range []struct {
		name string
		o    *outcome
	}{{"fixed", fixed}, {"autopilot", piloted}} {
		tbl.AddRow(pt.name, pt.o.finalK, pt.o.cadence, pt.o.checks,
			fmt.Sprintf("%.2e", pt.o.maxRes), fmt.Sprintf("%.2f", pt.o.secs))
		resLog := 0
		if pt.o.maxRes > 0 {
			resLog = int(math.Floor(math.Log10(pt.o.maxRes)))
		}
		rec := benchutil.NewRecord("autopilot", pt.name, nx*nx, pt.o.secs, 0).
			WithParam("nx", nx).WithParam("l", l).WithParam("k", pt.o.finalK).
			WithParam("beta", int(beta)).WithParam("cadence", pt.o.cadence).
			WithParam("checks", int(pt.o.checks)).WithParam("res_log10", resLog)
		if err := rec.Append(path); err != nil {
			return err
		}
	}
	tbl.Render(os.Stdout)

	if !gate {
		return nil
	}
	switch {
	case piloted.maxRes > maxRes:
		return fmt.Errorf("autopilot let the strat residual reach %.2e (gate %.1e)", piloted.maxRes, maxRes)
	case piloted.checks > fixed.checks:
		return fmt.Errorf("autopilot checked %d times, denser than the fixed baseline's %d", piloted.checks, fixed.checks)
	case piloted.secs > 1.10*fixed.secs:
		return fmt.Errorf("autopilot wall %.2fs exceeds fixed %.2fs by more than 10%%", piloted.secs, fixed.secs)
	}
	fmt.Printf("\ngate passed: residual %.2e <= %.1e, %d <= %d checks, wall %.2fs vs %.2fs\n",
		piloted.maxRes, maxRes, piloted.checks, fixed.checks, piloted.secs, fixed.secs)
	return nil
}

// runObsCheck interleaves timed sweep batches with the metrics collector
// disabled (nil) and enabled, compares the best time of each variant, and
// fails when the enabled path is more than maxPct percent slower. The
// instrumentation contract is a handful of atomic adds and monotonic clock
// reads per sweep phase, so the measured overhead should be far below the
// gate; taking the minimum over interleaved repetitions suppresses
// scheduler noise.
func runObsCheck(nx, l, k, sweeps, reps int, maxPct float64) error {
	prop, n, err := sweepSetup(nx, l)
	if err != nil {
		return err
	}
	if sweeps < 1 {
		sweeps = 1
	}
	if reps < 1 {
		reps = 1
	}
	bestOff, bestOn := math.Inf(1), math.Inf(1)
	for r := 0; r < reps; r++ {
		if t := timeSweeps(prop, l, sweeps, update.Options{ClusterK: k, PrePivot: true}); t < bestOff {
			bestOff = t
		}
		col := obs.New()
		col.Reset()
		if t := timeSweeps(prop, l, sweeps, update.Options{ClusterK: k, PrePivot: true, Obs: col}); t < bestOn {
			bestOn = t
		}
	}
	overhead := (bestOn - bestOff) / bestOff * 100
	fmt.Printf("metrics overhead check: N=%d L=%d k=%d, %d sweeps x %d reps\n", n, l, k, sweeps, reps)
	fmt.Printf("  collector off: %8.2f ms/sweep\n", bestOff*1e3)
	fmt.Printf("  collector on:  %8.2f ms/sweep\n", bestOn*1e3)
	fmt.Printf("  overhead:      %+7.2f%% (gate %.1f%%)\n", overhead, maxPct)
	if overhead > maxPct {
		return fmt.Errorf("instrumentation overhead %.2f%% exceeds %.1f%% gate", overhead, maxPct)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty value list")
	}
	return out, nil
}

// Command sweep scans a physical parameter (beta, u, mu, tprime or tperp)
// across a list of values, running a full DQMC simulation (optionally
// several parallel walkers) at each point and tabulating the observables —
// the workflow behind finite-size/temperature studies like the paper's
// Figure 7 extrapolation discussion.
//
// Usage:
//
//	sweep -scan beta -values 1,2,3,4 [-nx 4] [-u 4] [-walkers 2] [-chi]
//	sweep -scan u -values 0,2,4,6 -beta 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"questgo"
	"questgo/internal/benchutil"
	"questgo/internal/core"
)

func main() {
	scan := flag.String("scan", "beta", "parameter to scan: beta, u, mu, tprime, tperp")
	valuesFlag := flag.String("values", "1,2,3", "comma-separated parameter values")
	nx := flag.Int("nx", 4, "lattice linear size")
	layers := flag.Int("layers", 1, "layers")
	u := flag.Float64("u", 4, "interaction (when not scanned)")
	beta := flag.Float64("beta", 3, "inverse temperature (when not scanned)")
	dtau := flag.Float64("dtau", 0.1, "Trotter step (L = beta/dtau)")
	warm := flag.Int("warm", 50, "warmup sweeps")
	meas := flag.Int("meas", 150, "measurement sweeps")
	walkers := flag.Int("walkers", 1, "parallel Markov chains per point")
	chi := flag.Bool("chi", false, "also sample the spin susceptibility chi_zz(pi,pi)")
	chiSamples := flag.Int("chisamples", 5, "sweeps sampled for chi")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	values, err := parseFloats(*valuesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	header := []string{*scan, "density", "docc", "moment", "S(pi,pi)", "<sign>"}
	if *chi {
		header = append(header, "chi_AF")
	}
	tbl := benchutil.NewTable(header...)
	for _, v := range values {
		cfg := questgo.DefaultConfig()
		cfg.Nx, cfg.Ny, cfg.Layers = *nx, *nx, *layers
		cfg.U, cfg.Beta = *u, *beta
		cfg.WarmSweeps, cfg.MeasSweeps = *warm, *meas
		cfg.Seed = *seed
		switch strings.ToLower(*scan) {
		case "beta":
			cfg.Beta = v
		case "u":
			cfg.U = v
		case "mu":
			cfg.Mu = v
		case "tprime":
			cfg.TPrime = v
		case "tperp":
			cfg.Tperp = v
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *scan)
			os.Exit(1)
		}
		cfg.L = int(cfg.Beta / *dtau)
		if cfg.L < 4 {
			cfg.L = 4
		}
		fmt.Fprintf(os.Stderr, "running %s = %g (L = %d)...\n", *scan, v, cfg.L)

		var res *questgo.Results
		var chiStr string
		if *walkers > 1 {
			res, err = questgo.RunParallel(cfg, *walkers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			if *chi {
				chiStr = "n/a(walkers)"
			}
		} else {
			sim, err := questgo.NewSimulation(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			res = sim.Run()
			if *chi {
				cr := sampleChi(sim, *chiSamples)
				chiStr = fmt.Sprintf("%.3f+-%.3f", cr.AF, cr.AFErr)
			}
		}
		row := []interface{}{
			fmt.Sprintf("%g", v),
			fmt.Sprintf("%.4f+-%.4f", res.Density, res.DensityErr),
			fmt.Sprintf("%.4f+-%.4f", res.DoubleOcc, res.DoubleOccErr),
			fmt.Sprintf("%.4f", res.LocalMoment),
			fmt.Sprintf("%.3f+-%.3f", res.SAF, res.SAFErr),
			fmt.Sprintf("%.3f", res.AvgSign),
		}
		if *chi {
			row = append(row, chiStr)
		}
		tbl.AddRow(row...)
	}
	fmt.Println()
	tbl.Render(os.Stdout)
}

func sampleChi(sim *questgo.Simulation, samples int) *core.ChiResult {
	return sim.SampleSusceptibility(samples, 0)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty value list")
	}
	return out, nil
}

// Command qmclint runs the repo-specific static-analysis suite over the
// given packages (default ./...) and exits non-zero on any diagnostic.
// reproduce.sh runs it as part of the verify block, next to go vet.
//
// Usage:
//
//	go run ./cmd/qmclint [-run name,name] [-list] [-fix] [-wiregen] [-json path] [packages...]
//
// -fix applies the mechanically safe fixes some analyzers attach to their
// diagnostics (ctxflow's `defer cancel()` insertion and classification
// hoist) and reports the rewritten files; remaining findings still fail.
// -wiregen regenerates the wirelock golden manifests after a deliberate
// schema-version bump, and refuses when the wire surface changed but the
// governing version constant did not. -json appends one benchutil record
// (analyzer, package and finding counts) to the given BENCH_*.json file.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"questgo/internal/analysis"
	"questgo/internal/benchutil"
)

func main() {
	runNames := flag.String("run", "", "comma-separated analyzer names or sets to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	fix := flag.Bool("fix", false, "apply the mechanically safe fixes and report rewritten files")
	wiregen := flag.Bool("wiregen", false, "regenerate wirelock manifests (requires a schema-version bump when fields changed)")
	jsonPath := flag.String("json", "", "append analyzer/finding counts as one benchutil JSON record to this file")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s wave %d  %s\n", a.Name, a.Wave, a.Doc)
		}
		return
	}

	analyzers := all
	if *runNames != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, n := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "qmclint: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmclint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	start := time.Now()
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmclint: %v\n", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		if p.TypeErr != nil {
			fmt.Fprintf(os.Stderr, "qmclint: warning: %s: type checking incomplete: %v\n", p.PkgPath, p.TypeErr)
		}
	}

	if *wiregen {
		if err := regenManifests(wd, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "qmclint: -wiregen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmclint: %v\n", err)
		os.Exit(2)
	}

	if *fix {
		changed, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qmclint: -fix: %v\n", err)
			os.Exit(2)
		}
		for _, path := range changed {
			fmt.Printf("qmclint: rewrote %s\n", path)
		}
		// Fixed diagnostics are resolved; only the rest still count.
		rest := diags[:0:0]
		for _, d := range diags {
			if d.Fix == nil {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if *jsonPath != "" {
		rec := benchutil.NewRecord("lint", "qmclint", len(pkgs), time.Since(start).Seconds(), 0).
			WithParam("analyzers", len(analyzers)).
			WithParam("findings", len(diags))
		if err := rec.Append(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "qmclint: -json: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qmclint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// regenManifests rewrites the golden wirelock manifest for every loaded
// package that registers one, after verifying that any field change was
// authorized by a schema-version bump.
func regenManifests(wd string, pkgs []*analysis.LoadedPackage) error {
	wireDir, err := analysisWireDir(wd)
	if err != nil {
		return err
	}
	wrote := 0
	for _, p := range pkgs {
		name := analysis.WireManifestName(p.PkgPath)
		if name == "" {
			continue
		}
		path := filepath.Join(wireDir, name)
		old, readErr := os.ReadFile(path)
		if readErr == nil {
			if err := analysis.CheckWireBump(p, string(old)); err != nil {
				return err
			}
		}
		text := analysis.RenderWireManifest(p)
		if text == "" {
			continue
		}
		if readErr == nil && string(old) == text {
			continue
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("qmclint: wrote %s\n", path)
		wrote++
	}
	if wrote == 0 {
		fmt.Println("qmclint: wire manifests already up to date")
	}
	return nil
}

// analysisWireDir locates internal/analysis/testdata/wire from anywhere in
// the module, via the toolchain rather than a hardcoded relative path.
func analysisWireDir(wd string) (string, error) {
	cmd := exec.Command("go", "list", "-f", "{{.Dir}}", "questgo/internal/analysis")
	cmd.Dir = wd
	var out, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("locating questgo/internal/analysis: %v\n%s", err, stderr.String())
	}
	return filepath.Join(strings.TrimSpace(out.String()), "testdata", "wire"), nil
}

// Command qmclint runs the repo-specific static-analysis suite over the
// given packages (default ./...) and exits non-zero on any diagnostic.
// reproduce.sh runs it as part of the verify block, next to go vet.
//
// Usage:
//
//	go run ./cmd/qmclint [-run name,name] [-list] [packages...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"questgo/internal/analysis"
)

func main() {
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runNames != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, n := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "qmclint: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmclint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmclint: %v\n", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		if p.TypeErr != nil {
			fmt.Fprintf(os.Stderr, "qmclint: warning: %s: type checking incomplete: %v\n", p.PkgPath, p.TypeErr)
		}
	}

	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qmclint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

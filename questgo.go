// Package questgo is a pure-Go reimplementation of the QUEST Determinant
// Quantum Monte Carlo (DQMC) simulator for the Hubbard model, reproducing
// "Advancing Large Scale Many-Body QMC Simulations on GPU Accelerated
// Multicore Systems" (Tomas, Chang, Scalettar, Bai; IEEE IPDPS 2012).
//
// The package exposes the high-level simulation API; the building blocks
// live under internal/: dense kernels (internal/blas, internal/lapack),
// the stratified Green's function evaluation with the paper's pre-pivoting
// Algorithm 3 (internal/greens), the Metropolis sweep with delayed updates
// (internal/update), equal-time measurements (internal/measure), and a
// simulated GPU accelerator (internal/gpu).
//
// Quickstart:
//
//	cfg, err := questgo.NewConfig(
//		questgo.WithLattice(4, 4),
//		questgo.WithInteraction(4, 0),
//		questgo.WithTemperature(4, 40),
//	)
//	if err != nil { ... }
//	res, err := questgo.Run(context.Background(), cfg)
//	if err != nil { ... }
//	fmt.Println(res.Density, res.DoubleOcc, res.SAF)
//	fmt.Println(res.Metrics.PhaseMS, res.Metrics.Stability.MaxWrapDrift)
//
// Run accepts options (WithProgress, WithWalkers, WithCheckpointOnCancel)
// and stops cleanly at the next sweep when ctx is canceled. Run is the one
// canonical entry point; the older NewSimulation / Simulation.Run /
// RunParallel / RunProgress surface remains available but is deprecated.
//
// Config round-trips through a canonical JSON wire format (snake_case keys
// matching the QUEST input-file vocabulary, stamped with schema_version)
// and carries a deterministic content hash, Config.Hash — the identity the
// service result cache is keyed on. NewServer runs the sharded simulation
// service (HTTP job API, worker pool, checkpointed fault recovery, result
// cache); NewServiceClient talks to one.
package questgo

import (
	"context"
	"fmt"

	"questgo/internal/config"
	"questgo/internal/core"
	"questgo/internal/obs"
	"questgo/internal/service"
)

// Config specifies a DQMC simulation; see core.Config for field docs.
type Config = core.Config

// Results holds the Monte Carlo estimates of a finished run.
type Results = core.Results

// Simulation is a configured DQMC run.
type Simulation = core.Simulation

// Progress reports a running simulation's position to RunProgress callbacks.
type Progress = core.Progress

// Checkpoint captures the Markov-chain state of a simulation for restart
// files; see Simulation.Checkpoint, Resume, LoadCheckpoint.
type Checkpoint = core.Checkpoint

// ChiResult holds sampled imaginary-time spin susceptibilities; see
// Simulation.SampleSusceptibility.
type ChiResult = core.ChiResult

// Metrics is the exportable metrics document of a run: per-phase wall-time
// breakdown, operation counts and numerical-stability telemetry.
type Metrics = obs.Metrics

// ConfigOption adjusts one aspect of a Config under construction; see
// NewConfig and Config.With.
type ConfigOption = core.ConfigOption

// RunOption configures a Run call; see WithProgress, WithWalkers,
// WithCheckpointOnCancel.
type RunOption = core.RunOption

// Configuration builder options (see the core package for docs).
var (
	WithLattice           = core.WithLattice
	WithLayers            = core.WithLayers
	WithHopping           = core.WithHopping
	WithInteraction       = core.WithInteraction
	WithTemperature       = core.WithTemperature
	WithSchedule          = core.WithSchedule
	WithClusterK          = core.WithClusterK
	WithDelay             = core.WithDelay
	WithPrePivot          = core.WithPrePivot
	WithNoStack           = core.WithNoStack
	WithSerialSpins       = core.WithSerialSpins
	WithMeasureBoundaries = core.WithMeasureBoundaries
	WithMeasureDynamics   = core.WithMeasureDynamics
	WithStabilityCheck    = core.WithStabilityCheck
	WithDevices           = core.WithDevices
	WithGraphs            = core.WithGraphs
	WithSeed              = core.WithSeed
	WithAutopilot         = core.WithAutopilot
	WithAutopilotBounds   = core.WithAutopilotBounds
	WithAutopilotCeilings = core.WithAutopilotCeilings
)

// Run options.
var (
	WithProgress           = core.WithProgress
	WithWalkers            = core.WithWalkers
	WithCheckpointOnCancel = core.WithCheckpointOnCancel
)

// DefaultConfig returns a small, fast, physically sensible configuration
// (half-filled 4x4 Hubbard model).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewConfig builds a validated configuration from DefaultConfig plus the
// given options.
func NewConfig(opts ...ConfigOption) (Config, error) { return core.NewConfig(opts...) }

// Run is the unified entry point: it validates and builds the simulation,
// executes the schedule under ctx (canceling stops between sweeps), and
// returns Results carrying the metrics document.
func Run(ctx context.Context, cfg Config, opts ...RunOption) (*Results, error) {
	return core.Run(ctx, cfg, opts...)
}

// RunParallel runs independent walkers of the same configuration
// concurrently and merges their statistics.
//
// Deprecated: use Run(ctx, cfg, WithWalkers(walkers)); it is the same
// computation with context cancellation and progress reporting.
func RunParallel(cfg Config, walkers int) (*Results, error) {
	return core.RunParallel(cfg, walkers)
}

// Resume reconstructs a simulation from a checkpoint so the Markov chain
// continues exactly where it left off.
func Resume(c *Checkpoint) (*Simulation, error) { return core.Resume(c) }

// LoadCheckpoint reads a restart file written with Checkpoint.Save.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }

// NewSimulation validates the configuration and prepares a simulation.
func NewSimulation(cfg Config) (*Simulation, error) { return core.New(cfg) }

// LoadConfig reads a QUEST-style "key = value" input file. Recognized keys
// (case-insensitive, all optional, defaulting to DefaultConfig):
//
//	nx, ny, layers    lattice dimensions
//	t, ty, tprime, tperp  hoppings: nearest (x / y), diagonal (t'), inter-layer
//	u, mu, beta, l    Hamiltonian and discretization
//	warm, meas        sweep counts
//	k                 matrix clustering size (= wrapping count)
//	delay             delayed-update block size
//	prepivot          true = Algorithm 3, false = Algorithm 2
//	autopilot         true = adapt k and check cadence from live telemetry
//	devices           simulated accelerators (0 = CPU sweeper)
//	graphs            true = device command-graph capture/replay
//	seed              RNG seed
func LoadConfig(path string) (Config, error) {
	f, err := config.Load(path)
	if err != nil {
		return Config{}, err
	}
	return ConfigFromFile(f)
}

// Service API: the sharded simulation server and its wire documents (see
// internal/service for docs). A job is one Config plus a shard count;
// shards are independent Markov chains seeded by core.WalkerSeed, so a
// 1-shard job is bitwise identical to a direct Run and an n-shard job
// reproduces Run(..., WithWalkers(n)).
type (
	// ServerOptions configures NewServer.
	ServerOptions = service.Options
	// Server is the sharded simulation service (an http.Handler).
	Server = service.Server
	// ServiceClient is the Go binding over the v1 HTTP job API.
	ServiceClient = service.Client
	// JobRequest is the POST /v1/jobs submission document.
	JobRequest = service.JobRequest
	// JobStatus is the GET /v1/jobs/{id} status document.
	JobStatus = service.JobStatus
	// JobResult is the GET /v1/jobs/{id}/result document.
	JobResult = service.JobResult
	// JobEvent is one line of the GET /v1/jobs/{id}/stream feed.
	JobEvent = service.Event
	// JobEstimate is the streaming cross-shard aggregate.
	JobEstimate = service.Estimate
	// ServerStats is the GET /v1/stats counters document.
	ServerStats = service.Stats
)

// NewServer builds a sharded simulation server and starts its worker pool;
// Close it when done.
func NewServer(opts ServerOptions) (*Server, error) { return service.New(opts) }

// NewServiceClient returns a client for a dqmcd server at base
// (e.g. "http://127.0.0.1:8517").
func NewServiceClient(base string) *ServiceClient { return &ServiceClient{Base: base} }

// ErrJobNotDone is returned by ServiceClient.Result / Server.Result for a
// job still in flight.
var ErrJobNotDone = service.ErrNotDone

// ConfigFromFile maps a parsed input file onto a Config.
func ConfigFromFile(f *config.File) (Config, error) {
	cfg := core.DefaultConfig()
	cfg.Nx = f.Int("nx", cfg.Nx)
	cfg.Ny = f.Int("ny", cfg.Ny)
	cfg.Layers = f.Int("layers", cfg.Layers)
	cfg.T = f.Float("t", cfg.T)
	cfg.Ty = f.Float("ty", cfg.Ty)
	cfg.TPrime = f.Float("tprime", cfg.TPrime)
	cfg.Tperp = f.Float("tperp", cfg.Tperp)
	cfg.U = f.Float("u", cfg.U)
	cfg.Mu = f.Float("mu", cfg.Mu)
	cfg.Beta = f.Float("beta", cfg.Beta)
	cfg.L = f.Int("l", cfg.L)
	cfg.WarmSweeps = f.Int("warm", cfg.WarmSweeps)
	cfg.MeasSweeps = f.Int("meas", cfg.MeasSweeps)
	cfg.ClusterK = f.Int("k", cfg.ClusterK)
	cfg.Delay = f.Int("delay", cfg.Delay)
	cfg.PrePivot = f.Bool("prepivot", cfg.PrePivot)
	cfg.Autopilot = f.Bool("autopilot", cfg.Autopilot)
	cfg.Devices = f.Int("devices", cfg.Devices)
	cfg.UseGraphs = f.Bool("graphs", cfg.UseGraphs)
	cfg.Seed = f.Uint64("seed", cfg.Seed)
	if err := f.Err(); err != nil {
		return cfg, err
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("questgo: %w", err)
	}
	return cfg, nil
}

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md for the index and EXPERIMENTS.md for
// recorded results). The cmd/ tools regenerate the full figures with
// parameter sweeps; these benchmarks pin each figure's kernel to a
// reproducible `go test -bench` target and report the figure's metric
// (GFlop/s, seconds per evaluation, relative error, phase percentages) via
// b.ReportMetric.
//
// Sizes are scaled down from the paper's 256..1024 so the whole suite runs
// in minutes on one core; pass -bench regexps to run individual figures at
// larger sizes via the cmd/ tools instead.
package questgo

import (
	"fmt"
	"runtime"
	"testing"

	"questgo/internal/benchutil"
	"questgo/internal/blas"
	"questgo/internal/gpu"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/measure"
	"questgo/internal/obs"
	"questgo/internal/profile"
	"questgo/internal/rng"
	"questgo/internal/stats"
	"questgo/internal/update"
)

var benchSizes = []int{128, 256, 512}

func randomMatrix(seed uint64, n int) *mat.Dense {
	r := rng.New(seed)
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

func benchSetup(b *testing.B, nx int, u, beta float64, l int) (*hubbard.Propagator, *hubbard.Field) {
	b.Helper()
	lat := lattice.NewSquare(nx, nx, 1)
	model, err := hubbard.NewModel(lat, u, 0, beta, l)
	if err != nil {
		b.Fatal(err)
	}
	prop := hubbard.NewPropagator(model)
	field := hubbard.NewRandomField(l, model.N(), rng.New(9))
	return prop, field
}

// ---------------------------------------------------------------- Figure 1

func BenchmarkFig01_DGEMM(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := randomMatrix(1, n)
			bb := randomMatrix(2, n)
			c := mat.New(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blas.Gemm(false, false, 1, a, bb, 0, c)
			}
			reportGFlops(b, benchutil.GemmFlops(n))
		})
	}
}

// BenchmarkGemmKernel is the dense-kernel headline series: packed GEMM
// throughput at the paper's full size range (the figure-1 benchmark above
// uses the scaled-down default sizes). reproduce.sh records the same series
// to BENCH_gemm.json through cmd/kernels -json.
func BenchmarkGemmKernel(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := randomMatrix(1, n)
			bb := randomMatrix(2, n)
			c := mat.New(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blas.Gemm(false, false, 1, a, bb, 0, c)
			}
			reportGFlops(b, benchutil.GemmFlops(n))
		})
	}
}

// BenchmarkGemmParallelScaling reports the worker-pool scaling of the packed
// kernel: the same product run with GOMAXPROCS 1, 4, and all cores (the
// paper's Figure 1 spans 1..12 Westmere cores the same way). On a
// single-core host the three series coincide.
func BenchmarkGemmParallelScaling(b *testing.B) {
	n := 512
	a := randomMatrix(1, n)
	bb := randomMatrix(2, n)
	c := mat.New(n, n)
	procs := []int{1, 4, runtime.NumCPU()}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range procs {
		b.Run(fmt.Sprintf("procs=%d", p), func(b *testing.B) {
			runtime.GOMAXPROCS(p)
			defer runtime.GOMAXPROCS(old)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blas.Gemm(false, false, 1, a, bb, 0, c)
			}
			reportGFlops(b, benchutil.GemmFlops(n))
		})
	}
}

func BenchmarkFig01_DGEQRF(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := randomMatrix(3, n)
			work := a.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(a)
				qr := lapack.QRFactor(work)
				qr.Release()
			}
			reportGFlops(b, benchutil.QRFlops(n))
		})
	}
}

func BenchmarkFig01_DGEQP3(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := randomMatrix(4, n)
			work := a.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(a)
				qr, jpvt := lapack.QRPFactor(work)
				qr.Release()
				lapack.PutPivot(&jpvt)
			}
			reportGFlops(b, benchutil.QRFlops(n))
		})
	}
}

// BenchmarkFig01_DGEQP3Level2 measures the retained level-2 pivoted QR —
// the kernel the paper's Figure 1 actually profiles, and the baseline the
// blocked QRPFactor is gated against in cmd/kernels -qrpgate.
func BenchmarkFig01_DGEQP3Level2(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := randomMatrix(4, n)
			work := a.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(a)
				qr, jpvt := lapack.QRPFactorLevel2(work)
				qr.Release()
				lapack.PutPivot(&jpvt)
			}
			reportGFlops(b, benchutil.QRFlops(n))
		})
	}
}

// ---------------------------------------------------------------- Figure 2

// BenchmarkFig02_AccuracyAlg3VsAlg2 measures the cost of the paired
// evaluation and reports the figure's metric: the median relative
// difference between Algorithm 2 and Algorithm 3 Green's functions over
// the sampled configurations.
func BenchmarkFig02_AccuracyAlg3VsAlg2(b *testing.B) {
	for _, u := range []float64{2, 8} {
		b.Run(fmt.Sprintf("U=%g", u), func(b *testing.B) {
			prop, field := benchSetup(b, 6, u, 8, 40)
			cs := greens.NewClusterSet(prop, field, hubbard.Up, 10)
			var diffs []float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := i % cs.NC
				g2 := cs.GreenAt(c, false)
				g3 := cs.GreenAt(c, true)
				diffs = append(diffs, mat.RelDiff(g3, g2))
			}
			b.StopTimer()
			s := stats.Summary(diffs)
			// Reported in units of 1e-12 so the metric is legible in the
			// fixed-point benchmark output (paper: medians ~1 in these units).
			b.ReportMetric(s.Median*1e12, "median-reldiff-e12")
			b.ReportMetric(s.Max*1e12, "max-reldiff-e12")
		})
	}
}

// ------------------------------------------------------- Figures 3 and 4

func BenchmarkFig03_GreensAlg2Unclustered(b *testing.B) {
	benchGreens(b, func(prop *hubbard.Propagator, field *hubbard.Field, n int) func() {
		bs := make([]*mat.Dense, prop.Model.L)
		for i := range bs {
			bs[i] = prop.BMatrix(hubbard.Up, field, i)
		}
		return func() { greens.GreenQRP(bs) }
	})
}

func BenchmarkFig03_GreensAlg2Clustered(b *testing.B) {
	benchGreens(b, func(prop *hubbard.Propagator, field *hubbard.Field, n int) func() {
		cs := greens.NewClusterSet(prop, field, hubbard.Up, 10)
		return func() { cs.GreenAt(0, false) }
	})
}

func BenchmarkFig03_GreensAlg3Clustered(b *testing.B) {
	benchGreens(b, func(prop *hubbard.Propagator, field *hubbard.Field, n int) func() {
		cs := greens.NewClusterSet(prop, field, hubbard.Up, 10)
		return func() { cs.GreenAt(0, true) }
	})
}

func benchGreens(b *testing.B, mk func(*hubbard.Propagator, *hubbard.Field, int) func()) {
	for _, nx := range []int{6, 8, 10} {
		n := nx * nx
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			prop, field := benchSetup(b, nx, 4, 4, 40)
			fn := mk(prop, field, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn()
			}
			reportGFlops(b, benchutil.GreensFlops(n, 4))
		})
	}
}

// BenchmarkFig04_GEvalVsDGEMM reports the headline ratio of Figure 4: the
// Green's function evaluation rate as a fraction of DGEMM at the same N.
func BenchmarkFig04_GEvalVsDGEMM(b *testing.B) {
	nx := 10
	n := nx * nx
	prop, field := benchSetup(b, nx, 4, 4, 40)
	cs := greens.NewClusterSet(prop, field, hubbard.Up, 10)
	a := randomMatrix(5, n)
	bb := randomMatrix(6, n)
	c := mat.New(n, n)
	gemmSec := benchutil.TimeIt(3, 0, func() { blas.Gemm(false, false, 1, a, bb, 0, c) })
	gemmGF := benchutil.GFlops(benchutil.GemmFlops(n), gemmSec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.GreenAt(0, true)
	}
	b.StopTimer()
	gevalGF := benchutil.GFlops(benchutil.GreensFlops(n, cs.NC), b.Elapsed().Seconds()/float64(b.N))
	b.ReportMetric(gevalGF, "geval-GF/s")
	b.ReportMetric(gemmGF, "dgemm-GF/s")
	b.ReportMetric(100*gevalGF/gemmGF, "%of-dgemm")
}

// --------------------------------------------------- Figures 5, 6 and 7

// BenchmarkFig05_MomentumDistribution times one sweep + <n_k> measurement
// on the Figure 5 workload (U = 2, half filling).
func BenchmarkFig05_MomentumDistribution(b *testing.B) {
	prop, field := benchSetup(b, 8, 2, 4, 20)
	sw := update.NewSweeper(prop, field, rng.New(3), update.Options{ClusterK: 10})
	lat := prop.Model.Lat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Sweep()
		et := measurePkg(lat, sw)
		_ = et.MomentumDistribution()
	}
}

// BenchmarkFig06_NkGrid times the full-grid Fourier transform that builds
// the Figure 6 contour data.
func BenchmarkFig06_NkGrid(b *testing.B) {
	prop, field := benchSetup(b, 12, 2, 4, 20)
	sw := update.NewSweeper(prop, field, rng.New(3), update.Options{ClusterK: 10})
	sw.Sweep()
	lat := prop.Model.Lat
	et := measurePkg(lat, sw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = et.MomentumDistribution()
	}
}

// BenchmarkFig07_SpinCorrelation times one sweep + C_zz(r) + S(pi,pi)
// measurement on the Figure 7 workload.
func BenchmarkFig07_SpinCorrelation(b *testing.B) {
	prop, field := benchSetup(b, 8, 2, 4, 20)
	sw := update.NewSweeper(prop, field, rng.New(4), update.Options{ClusterK: 10})
	lat := prop.Model.Lat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Sweep()
		et := measurePkg(lat, sw)
		b.ReportMetric(et.AFStructureFactor(), "S(pi,pi)")
	}
}

// ---------------------------------------------------------------- Figure 8

// BenchmarkFig08_FullSweep times one complete DQMC sweep (wrapping,
// updates, clustering, stratification) at several N; the per-size
// sec/op column is the Figure 8 series.
func BenchmarkFig08_FullSweep(b *testing.B) {
	for _, nx := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("N=%d", nx*nx), func(b *testing.B) {
			prop, field := benchSetup(b, nx, 2, 3, 24)
			sw := update.NewSweeper(prop, field, rng.New(5), update.Options{ClusterK: 8})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Sweep()
			}
		})
	}
}

// ---------------------------------------------------------------- Table I

// BenchmarkTableI_PhaseProfile runs sweeps under the metrics collector and
// reports each Table I row as a metric (percent of total time).
func BenchmarkTableI_PhaseProfile(b *testing.B) {
	prop, field := benchSetup(b, 8, 2, 3, 24)
	col := obs.New()
	sw := update.NewSweeper(prop, field, rng.New(6), update.Options{ClusterK: 8, Obs: col})
	lat := prop.Model.Lat
	col.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Sweep()
		mstart := col.Begin()
		measurePkg(lat, sw)
		col.End(obs.PhaseMeasure, mstart)
	}
	b.StopTimer()
	pc := profile.FromPhases(col.PhaseDurations()).Percentages()
	b.ReportMetric(pc[profile.DelayedUpdate], "%delayed")
	b.ReportMetric(pc[profile.Stratification], "%stratify")
	b.ReportMetric(pc[profile.Clustering], "%cluster")
	b.ReportMetric(pc[profile.Wrapping], "%wrap")
	b.ReportMetric(pc[profile.Measurement], "%measure")
}

// ---------------------------------------------------- Figures 9 and 10

// BenchmarkFig09_GPUCluster reports the simulated-device throughput of
// matrix clustering (Algorithm 4); wall time per op is the host cost of
// driving the simulated device.
func BenchmarkFig09_GPUCluster(b *testing.B) {
	for _, nx := range []int{8, 16} {
		n := nx * nx
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			prop, field := benchSetup(b, nx, 4, 2, 20)
			dev := gpu.NewDevice(gpu.TeslaC2050())
			acc := gpu.NewAccelerator(dev, prop)
			dst := mat.New(n, n)
			dev.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Cluster(dst, field, hubbard.Up, 0, 10)
			}
			b.StopTimer()
			b.ReportMetric(dev.GFlopsRate(), "modeled-GF/s")
		})
	}
}

// BenchmarkFig09_GPUWrap reports the simulated-device throughput of
// Green's function wrapping (Algorithm 6).
func BenchmarkFig09_GPUWrap(b *testing.B) {
	for _, nx := range []int{8, 16} {
		n := nx * nx
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			prop, field := benchSetup(b, nx, 4, 2, 20)
			dev := gpu.NewDevice(gpu.TeslaC2050())
			acc := gpu.NewAccelerator(dev, prop)
			g := randomMatrix(8, n)
			dev.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Wrap(g, field, hubbard.Up, 0)
			}
			b.StopTimer()
			b.ReportMetric(dev.GFlopsRate(), "modeled-GF/s")
		})
	}
}

// BenchmarkFig10_HybridGreens times the hybrid evaluation: device-built
// clusters, host pre-pivoted stratification. The metric combines real host
// time with modeled device time, as in cmd/gpubench.
func BenchmarkFig10_HybridGreens(b *testing.B) {
	nx := 8
	n := nx * nx
	prop, field := benchSetup(b, nx, 4, 4, 40)
	dev := gpu.NewDevice(gpu.TeslaC2050())
	acc := gpu.NewAccelerator(dev, prop)
	cs := gpu.NewClusterSet(acc, field, hubbard.Up, 10)
	dev.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Recompute(field, i%cs.NC)
		cs.GreenAt(i % cs.NC)
	}
	b.StopTimer()
	total := (b.Elapsed() - dev.RealTime() + dev.Clock()).Seconds()
	flops := float64(b.N) * (benchutil.GreensFlops(n, cs.NC) + benchutil.ClusterFlops(n, 10))
	b.ReportMetric(benchutil.GFlops(flops, total), "hybrid-GF/s")
}

// ------------------------------------------------------------- helpers

func reportGFlops(b *testing.B, flopsPerOp float64) {
	secPerOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(benchutil.GFlops(flopsPerOp, secPerOp), "GF/s")
}

func measurePkg(lat *lattice.Lattice, sw *update.Sweeper) *measure.EqualTime {
	return measure.Measure(lat, sw.GreenUp(), sw.GreenDn(), sw.Sign())
}

// ------------------------------------------- Section VII future work

// BenchmarkFutureWork_HybridQR pins the Section VII deliverable: the
// MAGMA-style hybrid QR (CPU panels + simulated-device trailing updates),
// reporting the modeled device rate alongside wall time.
func BenchmarkFutureWork_HybridQR(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := randomMatrix(41, n)
			dev := gpu.NewDevice(gpu.TeslaC2050())
			da := dev.Malloc(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.SetMatrix(da, a)
				gpu.QRFactorHybrid(dev, da)
			}
			b.StopTimer()
			b.ReportMetric(dev.GFlopsRate(), "modeled-GF/s")
		})
	}
}

// BenchmarkFutureWork_HybridStratify runs the whole Algorithm 3 with
// device-resident level-3 work — the paper's "implement most of the
// stratification procedure on the GPU".
func BenchmarkFutureWork_HybridStratify(b *testing.B) {
	prop, field := benchSetup(b, 8, 4, 4, 40)
	cs := greens.NewClusterSet(prop, field, hubbard.Up, 10)
	chain := cs.Chain(0)
	dev := gpu.NewDevice(gpu.TeslaC2050())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu.StratifyHybrid(dev, chain)
	}
	b.StopTimer()
	b.ReportMetric(dev.GFlopsRate(), "modeled-GF/s")
}

// BenchmarkFutureWork_HybridSweeper runs the complete device-offloaded
// Metropolis sweep (wrapping, clustering, stratification and delayed-
// update flushes on the simulated device) — the end state the paper's
// conclusion projects for DQMC on GPU-accelerated nodes.
func BenchmarkFutureWork_HybridSweeper(b *testing.B) {
	prop, field := benchSetup(b, 8, 4, 2, 20)
	dev := gpu.NewDevice(gpu.TeslaC2050())
	sw := gpu.NewSweeper(dev, prop, field, rng.New(15), gpu.SweeperOptions{ClusterK: 10})
	dev.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Sweep()
	}
	b.StopTimer()
	b.ReportMetric(dev.GFlopsRate(), "modeled-GF/s")
	b.ReportMetric(float64(dev.Transferred())/float64(b.N)/1e6, "MB-transferred/sweep")
}

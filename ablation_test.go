// Ablation benchmarks for the design choices DESIGN.md calls out: the
// delayed-update block size, the matrix clustering size k (speed vs
// stability trade-off), pre-pivoting vs per-step pivoting inside a full
// sweep, and the checkerboard vs exact kinetic propagator. These go beyond
// the paper's figures; they quantify why the paper's defaults (k = 10,
// blocked delays, Algorithm 3) are the right ones.
package questgo

import (
	"fmt"
	"testing"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
	"questgo/internal/update"
)

// BenchmarkAblation_DelayBlockSize sweeps the delayed-update block nd.
// nd = 1 degenerates to plain rank-1 (GER-speed) updates; larger blocks
// convert the same flops into GEMM calls.
func BenchmarkAblation_DelayBlockSize(b *testing.B) {
	for _, nd := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("nd=%d", nd), func(b *testing.B) {
			prop, field := benchSetup(b, 8, 4, 2, 20)
			sw := update.NewSweeper(prop, field, rng.New(11), update.Options{ClusterK: 10, Delay: nd})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Sweep()
			}
		})
	}
}

// BenchmarkAblation_ClusterSize sweeps the clustering size k: larger k
// means fewer QR factorizations per Green's evaluation (faster) but a more
// ill-conditioned cluster product (less accurate). The accuracy metric is
// the relative difference between the k-clustered and the k=1 evaluation.
func BenchmarkAblation_ClusterSize(b *testing.B) {
	prop, field := benchSetup(b, 6, 6, 6, 40)
	ref := greens.NewClusterSet(prop, field, hubbard.Up, 1).GreenAt(0, true)
	for _, k := range []int{1, 2, 5, 10, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cs := greens.NewClusterSet(prop, field, hubbard.Up, k)
			var g *mat.Dense
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g = cs.GreenAt(0, true)
			}
			b.StopTimer()
			b.ReportMetric(mat.RelDiff(g, ref)*1e12, "err-vs-k1-e12")
		})
	}
}

// BenchmarkAblation_PrePivotVsQRP compares full-sweep cost under the two
// stratification variants — the end-to-end view of the paper's headline
// micro-benchmark.
func BenchmarkAblation_PrePivotVsQRP(b *testing.B) {
	for _, pre := range []bool{false, true} {
		name := "alg2-qrp"
		if pre {
			name = "alg3-prepivot"
		}
		b.Run(name, func(b *testing.B) {
			prop, field := benchSetup(b, 8, 4, 2, 20)
			sw := update.NewSweeper(prop, field, rng.New(13), update.Options{ClusterK: 10, PrePivot: pre})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Sweep()
			}
		})
	}
}

// BenchmarkAblation_CheckerboardPropagator compares building the kinetic
// propagator via the exact eigendecomposition against the checkerboard
// splitting, and reports the splitting error as a metric.
func BenchmarkAblation_CheckerboardPropagator(b *testing.B) {
	lat := lattice.NewSquare(8, 8, 1)
	model, err := hubbard.NewModel(lat, 4, 0, 2, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact-eig", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hubbard.NewPropagator(model)
		}
	})
	b.Run("checkerboard", func(b *testing.B) {
		var pcb *hubbard.Propagator
		for i := 0; i < b.N; i++ {
			var err error
			pcb, err = hubbard.NewPropagatorCheckerboard(model)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		exact := hubbard.NewPropagator(model)
		b.ReportMetric(mat.RelDiff(pcb.Bkin, exact.Bkin), "split-err")
	})
}

// BenchmarkAblation_WrapDrift measures how the wrapped Green's function
// drifts from its stratified recomputation as the wrap count grows — the
// justification for the paper's l = 10 rewrapping limit.
func BenchmarkAblation_WrapDrift(b *testing.B) {
	for _, wraps := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("wraps=%d", wraps), func(b *testing.B) {
			prop, field := benchSetup(b, 6, 6, 4, 40)
			cs := greens.NewClusterSet(prop, field, hubbard.Up, wraps)
			w := greens.NewWrapper(prop)
			var drift float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := cs.GreenAt(0, true)
				for s := 0; s < wraps; s++ {
					w.Wrap(g, field, hubbard.Up, s)
				}
				fresh := cs.GreenAt(1%cs.NC, true)
				if d := mat.RelDiff(g, fresh); d > drift {
					drift = d
				}
			}
			b.StopTimer()
			b.ReportMetric(drift*1e12, "drift-e12")
		})
	}
}

// Package check is the runtime numerical sanitizer that pairs with the
// qmclint static analyzers. Built with -tags qmcdebug, its assertions scan
// kernel outputs for NaN/Inf, verify wrap drift against the stratified
// reference, and (together with the pool bookkeeping in internal/mat)
// catch scratch double-puts. Built without the tag every function is an
// empty, inlinable no-op and the const Enabled folds the call sites away,
// so the release binaries carry zero overhead — a property the package's
// own tests assert with an allocation regression check.
//
// Call sites pass a short operation label ("blas.Gemm", "greens.GreenInto")
// so a tripped assert names the kernel that produced the bad value, not the
// one that later consumed it — the whole point over waiting for the
// acceptance-ratio diagnostics to go sideways thousands of flops later.
package check

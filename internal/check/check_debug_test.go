//go:build qmcdebug

package check_test

import (
	"math"
	"strings"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/mat"
)

// mustPanic runs f and asserts it panics with a message containing substr.
func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected string panic, got %T: %v", r, r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

func TestFinitePanicsOnNaN(t *testing.T) {
	m := mat.New(3, 3)
	m.Set(1, 2, math.NaN())
	mustPanic(t, "test-op produced non-finite value", func() { check.Finite("test-op", m) })
}

func TestFinitePanicsOnInf(t *testing.T) {
	m := mat.New(2, 2)
	m.Set(0, 0, math.Inf(-1))
	mustPanic(t, "(0,0)", func() { check.Finite("test-op", m) })
}

func TestFiniteAcceptsFiniteMatrix(t *testing.T) {
	m := mat.New(4, 4)
	for i := 0; i < 4; i++ {
		m.Set(i, i, float64(i)-1.5)
	}
	check.Finite("test-op", m)
}

func TestFiniteSlicePanics(t *testing.T) {
	v := []float64{1, 2, math.Inf(1)}
	mustPanic(t, "index 2", func() { check.FiniteSlice("tau", v) })
	check.FiniteSlice("tau", v[:2])
}

func TestDrift(t *testing.T) {
	check.Drift("wrap", 1e-9, 0.05)
	mustPanic(t, "exceeds tolerance", func() { check.Drift("wrap", 0.2, 0.05) })
	mustPanic(t, "drift", func() { check.Drift("wrap", math.NaN(), 0.05) })
}

func TestDims(t *testing.T) {
	m := mat.New(3, 4)
	check.Dims("op", m, 3, 4)
	mustPanic(t, "dimension mismatch", func() { check.Dims("op", m, 4, 3) })
}

func TestAssertf(t *testing.T) {
	check.Assertf(true, "unused %d", 1)
	mustPanic(t, "boundary 7", func() { check.Assertf(false, "boundary %d", 7) })
}

// TestGemmNaNTripped checks the wiring, not just the primitive: a NaN fed
// into the packed GEMM must be caught at the Gemm call site, naming the
// kernel that produced it.
func TestGemmNaNTripped(t *testing.T) {
	n := 8
	a := mat.New(n, n)
	b := mat.New(n, n)
	c := mat.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		b.Set(i, i, 1)
	}
	a.Set(3, 5, math.NaN())
	mustPanic(t, "blas.Gemm produced non-finite value", func() {
		blas.Gemm(false, false, 1, a, b, 0, c)
	})
}

// TestDoublePut checks the pool bookkeeping compiled into internal/mat
// under this tag: returning the same scratch matrix twice must panic,
// while a get/put/get/put cycle of the same buffer stays legal.
func TestDoublePut(t *testing.T) {
	s := mat.GetScratch(5, 5)
	mat.PutScratch(s)
	mustPanic(t, "double put", func() { mat.PutScratch(s) })

	s2 := mat.GetScratch(6, 6)
	mat.PutScratch(s2)
	s3 := mat.GetScratch(6, 6) // may or may not be s2; either way a single put is legal
	mat.PutScratch(s3)
}

//go:build !qmcdebug

package check_test

import (
	"math"
	"testing"

	"questgo/internal/check"
	"questgo/internal/mat"
)

// Without the qmcdebug tag the sanitizer must be inert: Enabled folds to
// false, bad values pass through silently, and — the property the hot
// paths rely on — the calls neither allocate nor panic.
func TestDisabled(t *testing.T) {
	if check.Enabled {
		t.Fatal("check.Enabled must be false without the qmcdebug tag")
	}
	if mat.DebugPool {
		t.Fatal("mat.DebugPool must be false without the qmcdebug tag")
	}
	m := mat.New(2, 2)
	m.Set(0, 0, math.NaN())
	check.Finite("op", m) // must not panic
	check.FiniteSlice("op", []float64{math.Inf(1)})
	check.Drift("op", 1e9, 1e-12)
	check.Dims("op", m, 7, 7)
}

func TestZeroOverhead(t *testing.T) {
	m := mat.New(16, 16)
	v := make([]float64, 16)
	allocs := testing.AllocsPerRun(100, func() {
		check.Finite("op", m)
		check.FiniteSlice("op", v)
		check.Drift("op", 0.5, 1.0)
		check.Dims("op", m, 16, 16)
	})
	if allocs != 0 {
		t.Fatalf("disabled sanitizer allocated %.1f times per run, want 0", allocs)
	}
}

// Double puts are likewise silent in release builds: the pool accepts the
// buffer again without bookkeeping.
func TestDoublePutSilent(t *testing.T) {
	s := mat.GetScratch(4, 4)
	mat.PutScratch(s)
	mat.PutScratch(s)
	_ = mat.GetScratch(4, 4) // drain the duplicate so later users see a clean pool
	_ = mat.GetScratch(4, 4)
}

//go:build qmcdebug

package check

import (
	"fmt"
	"math"

	"questgo/internal/mat"
)

// Enabled reports whether the qmcdebug assertions are compiled in.
const Enabled = true

// Finite panics if m holds a NaN or Inf, naming the operation that just
// wrote it and the offending coordinate.
func Finite(op string, m *mat.Dense) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				panic(fmt.Sprintf("check: %s produced non-finite value %v at (%d,%d) of a %dx%d matrix", op, v, i, j, m.Rows, m.Cols))
			}
		}
	}
}

// FiniteSlice is Finite for a plain vector (tau reflectors, diagonal
// scales, column norms).
func FiniteSlice(op string, v []float64) {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			panic(fmt.Sprintf("check: %s produced non-finite value %v at index %d of a length-%d vector", op, x, i, len(v)))
		}
	}
}

// Drift panics if a relative drift measurement exceeds tol (or is NaN).
// The tolerance is deliberately loose — wrap drift is expected and merely
// bounded; only a blow-up indicates a propagator or stratification bug.
func Drift(op string, rel, tol float64) {
	if math.IsNaN(rel) || rel > tol {
		panic(fmt.Sprintf("check: %s relative drift %.3e exceeds tolerance %.3e", op, rel, tol))
	}
}

// Dims panics unless m is rows x cols.
func Dims(op string, m *mat.Dense, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("check: %s dimension mismatch: got %dx%d, want %dx%d", op, m.Rows, m.Cols, rows, cols))
	}
}

// Assertf panics with the formatted message when cond is false. The
// variadic arguments are evaluated at the call site even in release
// builds, so keep Assertf out of per-element loops; the other checks are
// the zero-cost ones.
func Assertf(cond bool, format string, args ...interface{}) {
	if !cond {
		panic("check: " + fmt.Sprintf(format, args...))
	}
}

//go:build !qmcdebug

package check

import "questgo/internal/mat"

// Enabled reports whether the qmcdebug assertions are compiled in.
const Enabled = false

// Without the qmcdebug tag every assertion is an empty function: small
// enough to inline, so the kernels pay nothing for carrying the calls.

func Finite(op string, m *mat.Dense) {}

func FiniteSlice(op string, v []float64) {}

func Drift(op string, rel, tol float64) {}

func Dims(op string, m *mat.Dense, rows, cols int) {}

func Assertf(cond bool, format string, args ...interface{}) {}

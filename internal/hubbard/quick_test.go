package hubbard

import (
	"math"
	"testing"
	"testing/quick"

	"questgo/internal/lattice"
	"questgo/internal/rng"
)

// Property: VElem and Alpha satisfy the defining flip identity
// V'(i)/V(i) = 1 + Alpha for every spin and field value, in both models.
func TestQuickFlipIdentity(t *testing.T) {
	lat := lattice.NewSquare(2, 2, 1)
	f := func(uRaw int8, hPos bool, up bool) bool {
		u := float64(uRaw%8) / 2 // U in (-4, 4)
		m, err := NewModel(lat, u, 0, 2, 8)
		if err != nil {
			return false
		}
		p := NewPropagator(m)
		h := -1.0
		if hPos {
			h = 1
		}
		sigma := Down
		if up {
			sigma = Up
		}
		v := p.VElem(sigma, h)
		vFlipped := p.VElem(sigma, -h)
		alpha := p.Alpha(sigma, h)
		return math.Abs(vFlipped/v-(1+alpha)) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the attractive model's bosonic factor balances the doubled
// determinant factor in the partition function: for U < 0, flipping twice
// must return the exact weight, i.e. BosonRatio(h) * BosonRatio(-h) = 1.
func TestQuickBosonRatioInvolution(t *testing.T) {
	lat := lattice.NewSquare(2, 2, 1)
	f := func(uRaw uint8, hPos bool) bool {
		u := -float64(uRaw%12)/2 - 0.5 // U in [-6.5, -0.5]
		m, err := NewModel(lat, u, 0, 2, 8)
		if err != nil {
			return false
		}
		p := NewPropagator(m)
		h := -1.0
		if hPos {
			h = 1
		}
		return math.Abs(p.BosonRatio(h)*p.BosonRatio(-h)-1) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: K matrix row sums equal -(mu + coordination * hoppings) for
// every site of a periodic plane (translation invariance).
func TestQuickKMatrixRowSums(t *testing.T) {
	f := func(nxRaw, nyRaw uint8, muRaw int8) bool {
		nx := 2 + int(nxRaw%5)
		ny := 2 + int(nyRaw%5)
		mu := float64(muRaw) / 32
		lat := lattice.NewSquare(nx, ny, 1)
		k := lat.KMatrix(mu)
		want := -mu - 4*lat.T
		for i := 0; i < lat.N(); i++ {
			var sum float64
			for j := 0; j < lat.N(); j++ {
				sum += k.At(i, j)
			}
			if math.Abs(sum-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: B matrices of opposite spins coincide in the attractive model
// and differ in the repulsive model (for any field with at least one
// nonuniform slice this must show in the row scalings).
func TestAttractiveSpinsDegenerate(t *testing.T) {
	lat := lattice.NewSquare(2, 2, 1)
	for _, u := range []float64{4, -4} {
		m, err := NewModel(lat, u, 0, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPropagator(m)
		f := NewRandomField(8, 4, rng.New(9))
		bUp := p.BMatrix(Up, f, 0)
		bDn := p.BMatrix(Down, f, 0)
		same := bUp.EqualApprox(bDn, 0)
		if u < 0 && !same {
			t.Fatal("attractive model must have identical spin propagators")
		}
		if u > 0 && same {
			t.Fatal("repulsive model must have distinct spin propagators")
		}
	}
}

package hubbard

import (
	"math"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

func TestCheckerboardInverse(t *testing.T) {
	lat := lattice.NewMultilayer(4, 4, 3, 1, 0.6)
	cb, err := NewCheckerboard(lat, 0.2, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	b := cb.Materialize()
	binv := cb.MaterializeInv()
	prod := mat.New(lat.N(), lat.N())
	blas.Gemm(false, false, 1, b, binv, 0, prod)
	if !prod.EqualApprox(mat.Identity(lat.N()), 1e-12) {
		t.Fatal("checkerboard B * B^{-1} != I")
	}
}

func TestCheckerboardApplyMatchesMaterialize(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	cb, err := NewCheckerboard(lat, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bm := cb.Materialize()
	// Apply to a random matrix and compare with the dense product.
	a := mat.New(16, 5)
	for j := 0; j < 5; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = float64(i*7+j*3%11) / 10
		}
	}
	want := mat.New(16, 5)
	blas.Gemm(false, false, 1, bm, a, 0, want)
	cb.ApplyLeft(a)
	if !a.EqualApprox(want, 1e-12) {
		t.Fatal("ApplyLeft disagrees with materialized product")
	}
}

func TestCheckerboardApproximatesExact(t *testing.T) {
	// ||B_cb - B_exact|| must shrink as O(dtau^2). Note 4x4 is degenerate
	// (the even/odd bond groups of a 4-ring happen to commute, making the
	// splitting exact); 6x6 exposes the generic non-commuting error.
	lat := lattice.NewSquare(6, 6, 1)
	var prev float64
	for i, dtau := range []float64{0.2, 0.1, 0.05} {
		m, err := NewModel(lat, 0, 0.1, dtau*10, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact := NewPropagator(m)
		cb, err := NewCheckerboard(lat, m.Mu, dtau)
		if err != nil {
			t.Fatal(err)
		}
		diff := mat.RelDiff(cb.Materialize(), exact.Bkin)
		if i > 0 {
			ratio := prev / diff
			// Quadratic convergence: halving dtau should shrink the error
			// by ~4 (allow 3 to 6 for the prefactor drift).
			if ratio < 3 || ratio > 6 {
				t.Fatalf("checkerboard error not O(dtau^2): ratios %v -> %v (factor %v)", prev, diff, ratio)
			}
		}
		prev = diff
	}
}

func TestCheckerboardRejectsOddLattice(t *testing.T) {
	if _, err := NewCheckerboard(lattice.NewSquare(5, 4, 1), 0, 0.1); err == nil {
		t.Fatal("odd Nx must be rejected")
	}
	if _, err := NewCheckerboard(lattice.NewSquare(4, 3, 1), 0, 0.1); err == nil {
		t.Fatal("odd Ny must be rejected")
	}
}

func TestCheckerboardPropagatorPipeline(t *testing.T) {
	// The checkerboard-based Propagator must behave like the exact one up
	// to O(dtau^2): B and B^{-1} inverse pair, and B close to exact B.
	lat := lattice.NewSquare(6, 6, 1)
	m, err := NewModel(lat, 4, 0, 1, 20) // dtau = 0.05
	if err != nil {
		t.Fatal(err)
	}
	pcb, err := NewPropagatorCheckerboard(m)
	if err != nil {
		t.Fatal(err)
	}
	pex := NewPropagator(m)
	prod := mat.New(lat.N(), lat.N())
	blas.Gemm(false, false, 1, pcb.Bkin, pcb.Binv, 0, prod)
	if !prod.EqualApprox(mat.Identity(lat.N()), 1e-12) {
		t.Fatal("checkerboard propagator B*Binv != I")
	}
	if d := mat.RelDiff(pcb.Bkin, pex.Bkin); d > 5e-3 {
		t.Fatalf("checkerboard B too far from exact: %v", d)
	}
	if d := mat.RelDiff(pcb.Bkin, pex.Bkin); d == 0 {
		t.Fatal("checkerboard B identical to exact — splitting not exercised")
	}
}

func TestCheckerboardMuFactor(t *testing.T) {
	// With t = 0 the propagator is exactly exp(dtau*mu)*I.
	lat := lattice.NewSquare(4, 4, 0)
	cb, err := NewCheckerboard(lat, 0.7, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	b := cb.Materialize()
	want := mat.Identity(16)
	want.Scale(math.Exp(0.25 * 0.7))
	if !b.EqualApprox(want, 1e-14) {
		t.Fatal("mu-only checkerboard wrong")
	}
}

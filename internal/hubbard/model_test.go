package hubbard

import (
	"math"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func testModel(t *testing.T, nx, ny int, u, mu, beta float64, l int) *Model {
	t.Helper()
	m, err := NewModel(lattice.NewSquare(nx, ny, 1), u, mu, beta, l)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelDerivedQuantities(t *testing.T) {
	m := testModel(t, 4, 4, 4, 0.2, 8, 40)
	if math.Abs(m.Dtau-0.2) > 1e-15 {
		t.Fatalf("dtau = %v", m.Dtau)
	}
	// cosh(nu) = exp(U*dtau/2) = exp(0.4).
	if math.Abs(math.Cosh(m.Nu)-math.Exp(0.4)) > 1e-14 {
		t.Fatalf("nu = %v", m.Nu)
	}
}

func TestNewModelValidation(t *testing.T) {
	lat := lattice.NewSquare(2, 2, 1)
	if _, err := NewModel(lat, 4, 0, 8, 0); err == nil {
		t.Fatal("L = 0 should fail")
	}
	if _, err := NewModel(lat, 4, 0, -1, 10); err == nil {
		t.Fatal("negative beta should fail")
	}
	if m, err := NewModel(lat, -4, 0, 8, 10); err != nil || !m.Attractive() {
		t.Fatalf("attractive U should be accepted: %v", err)
	}
	if m, _ := NewModel(lat, 4, 0, 8, 10); m.Attractive() {
		t.Fatal("repulsive model misreported as attractive")
	}
}

func TestFieldValues(t *testing.T) {
	f := NewRandomField(5, 9, rng.New(1))
	for l := 0; l < 5; l++ {
		for i := 0; i < 9; i++ {
			if v := f.H[l][i]; v != 1 && v != -1 {
				t.Fatalf("field value %v", v)
			}
		}
	}
	before := f.H[2][3]
	f.Flip(2, 3)
	if f.H[2][3] != -before {
		t.Fatal("Flip failed")
	}
}

func TestFieldCloneIndependent(t *testing.T) {
	f := NewRandomField(3, 4, rng.New(2))
	c := f.Clone()
	f.Flip(0, 0)
	if c.H[0][0] == f.H[0][0] {
		t.Fatal("clone shares storage")
	}
}

func TestPropagatorBBinvInverse(t *testing.T) {
	m := testModel(t, 3, 3, 4, 0.3, 2, 8)
	p := NewPropagator(m)
	prod := mat.New(m.N(), m.N())
	blas.Gemm(false, false, 1, p.Bkin, p.Binv, 0, prod)
	if !prod.EqualApprox(mat.Identity(m.N()), 1e-12) {
		t.Fatal("Bkin * Binv != I")
	}
}

func TestVElemAndAlpha(t *testing.T) {
	m := testModel(t, 2, 2, 4, 0, 2, 8)
	p := NewPropagator(m)
	// V element: exp(sigma*nu*h).
	if math.Abs(p.VElem(Up, 1)-math.Exp(m.Nu)) > 1e-15 {
		t.Fatal("VElem(Up, +1) wrong")
	}
	if math.Abs(p.VElem(Down, 1)-math.Exp(-m.Nu)) > 1e-15 {
		t.Fatal("VElem(Down, +1) wrong")
	}
	if math.Abs(p.VElem(Up, -1)-math.Exp(-m.Nu)) > 1e-15 {
		t.Fatal("VElem(Up, -1) wrong")
	}
	// Alpha: exp(-2*sigma*nu*h) - 1.
	if math.Abs(p.Alpha(Up, 1)-(math.Exp(-2*m.Nu)-1)) > 1e-15 {
		t.Fatal("Alpha(Up, +1) wrong")
	}
	if math.Abs(p.Alpha(Down, -1)-(math.Exp(-2*m.Nu)-1)) > 1e-15 {
		t.Fatal("Alpha(Down, -1) wrong")
	}
}

func TestBMatrixEqualsScaledKinetic(t *testing.T) {
	m := testModel(t, 3, 3, 4, 0.1, 2, 8)
	p := NewPropagator(m)
	f := NewRandomField(m.L, m.N(), rng.New(3))
	b := p.BMatrix(Up, f, 0)
	for i := 0; i < m.N(); i++ {
		v := p.VElem(Up, f.H[0][i])
		for j := 0; j < m.N(); j++ {
			want := v * p.Bkin.At(i, j)
			if math.Abs(b.At(i, j)-want) > 1e-14 {
				t.Fatalf("B(%d,%d) = %v want %v", i, j, b.At(i, j), want)
			}
		}
	}
}

func TestBMatrixInvIsInverse(t *testing.T) {
	m := testModel(t, 3, 3, 4, 0.1, 2, 8)
	p := NewPropagator(m)
	f := NewRandomField(m.L, m.N(), rng.New(4))
	b := p.BMatrix(Down, f, 1)
	binv := p.BMatrixInv(Down, f, 1)
	prod := mat.New(m.N(), m.N())
	blas.Gemm(false, false, 1, b, binv, 0, prod)
	if !prod.EqualApprox(mat.Identity(m.N()), 1e-11) {
		t.Fatal("B * B^{-1} != I")
	}
}

func TestHSDecouplingIdentity(t *testing.T) {
	// The discrete HS transformation requires, for h = +-1:
	//   exp(-dtau*U*(n_up - 1/2)*(n_dn - 1/2))
	//   = (1/2) * exp(-dtau*U/4) * sum_h exp(nu*h*(n_up - n_dn))
	// Check the scalar identity on all four occupation states.
	m := testModel(t, 2, 2, 4, 0, 2, 8)
	gamma := math.Exp(-m.Dtau * m.U / 4)
	for _, nup := range []float64{0, 1} {
		for _, ndn := range []float64{0, 1} {
			lhs := math.Exp(-m.Dtau * m.U * (nup - 0.5) * (ndn - 0.5))
			rhs := 0.5 * gamma * (math.Exp(m.Nu*(nup-ndn)) + math.Exp(-m.Nu*(nup-ndn)))
			if math.Abs(rhs/lhs-1) > 1e-12 {
				t.Fatalf("HS identity broken for (%v,%v): lhs %v rhs %v", nup, ndn, lhs, rhs)
			}
		}
	}
}

package hubbard

import (
	"testing"

	"questgo/internal/blas"
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

func rightTestMatrix(rows, cols int) *mat.Dense {
	a := mat.New(rows, cols)
	for j := 0; j < cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = float64((i*13+j*7)%17-8) / 9
		}
	}
	return a
}

func TestCheckerboardApplyRightMatchesMaterialize(t *testing.T) {
	lat := lattice.NewMultilayer(4, 4, 2, 1, 0.5)
	cb, err := NewCheckerboard(lat, 0.3, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	n := lat.N()
	bm := cb.Materialize()
	a := rightTestMatrix(5, n)
	want := mat.New(5, n)
	blas.Gemm(false, false, 1, a, bm, 0, want)
	cb.ApplyRight(a)
	if !a.EqualApprox(want, 1e-12) {
		t.Fatal("ApplyRight disagrees with materialized product")
	}
}

func TestCheckerboardApplyRightInvMatchesMaterialize(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	cb, err := NewCheckerboard(lat, -0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	n := lat.N()
	binv := cb.MaterializeInv()
	a := rightTestMatrix(n, n)
	want := mat.New(n, n)
	blas.Gemm(false, false, 1, a, binv, 0, want)
	cb.ApplyRightInv(a)
	if !a.EqualApprox(want, 1e-12) {
		t.Fatal("ApplyRightInv disagrees with materialized product")
	}
}

func TestCheckerboardApplyRightRoundTrip(t *testing.T) {
	lat := lattice.NewSquare(6, 6, 1)
	cb, err := NewCheckerboard(lat, 0.1, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	a := rightTestMatrix(lat.N(), lat.N())
	orig := a.Clone()
	cb.ApplyRight(a)
	cb.ApplyRightInv(a)
	if !a.EqualApprox(orig, 1e-12) {
		t.Fatal("ApplyRight then ApplyRightInv did not return the original")
	}
}

func TestCheckerboardPropagatorSetsCB(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	m, err := NewModel(lat, 4, 0.1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPropagatorCheckerboard(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.CB == nil {
		t.Fatal("NewPropagatorCheckerboard did not expose the checkerboard factorization")
	}
	if NewPropagator(m).CB != nil {
		t.Fatal("exact propagator must not carry a checkerboard factorization")
	}
}

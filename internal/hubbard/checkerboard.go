package hubbard

import (
	"fmt"
	"math"

	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// Checkerboard implements the checkerboard (bond-split) approximation of
// the kinetic propagator that QUEST offers for large lattices:
//
//	exp(-dtau*K) ~= exp(dtau*mu) * prod_g exp(-dtau*K_g),
//
// where the hopping bonds are partitioned into groups g of pairwise
// disjoint bonds, so each group exponential factorizes into exact 2x2
// blocks (cosh/sinh mixing of the two sites). The splitting error is
// O(dtau^2), the same order as the Trotter error DQMC already carries, and
// one application costs O(bonds) = O(N) per column instead of the O(N^2)
// of a dense row, i.e. O(N^2) per matrix instead of O(N^3).
//
// The lattice must have even extent in every periodic direction so the
// +even/+odd bond groups pair sites disjointly.
type Checkerboard struct {
	n      int
	dtau   float64
	expMu  float64 // exp(dtau*mu) diagonal factor
	groups [][]bond
}

type bond struct {
	i, j       int
	cosh, sinh float64 // cosh(dtau*t), sinh(dtau*t) for this bond's hopping t
}

// NewCheckerboard builds the bond groups for the lattice geometry.
func NewCheckerboard(lat *lattice.Lattice, mu, dtau float64) (*Checkerboard, error) {
	if lat.Nx%2 != 0 && lat.Nx > 1 {
		return nil, fmt.Errorf("hubbard: checkerboard needs even Nx, got %d", lat.Nx)
	}
	if lat.Ny%2 != 0 && lat.Ny > 1 {
		return nil, fmt.Errorf("hubbard: checkerboard needs even Ny, got %d", lat.Ny)
	}
	cb := &Checkerboard{n: lat.N(), dtau: dtau, expMu: math.Exp(dtau * mu)}
	ch, sh := math.Cosh(dtau*lat.T), math.Sinh(dtau*lat.T)
	chY, shY := math.Cosh(dtau*lat.TyEff()), math.Sinh(dtau*lat.TyEff())
	chP, shP := math.Cosh(dtau*lat.Tperp), math.Sinh(dtau*lat.Tperp)

	addGroup := func(bonds []bond) {
		if len(bonds) > 0 {
			cb.groups = append(cb.groups, bonds)
		}
	}
	// x bonds: even group (x even -> x+1), odd group (x odd -> x+1).
	for parity := 0; parity < 2; parity++ {
		var g []bond
		if lat.Nx > 1 {
			for z := 0; z < lat.Layers; z++ {
				for y := 0; y < lat.Ny; y++ {
					for x := parity; x < lat.Nx; x += 2 {
						g = append(g, bond{lat.Index(x, y, z), lat.Index(x+1, y, z), ch, sh})
					}
				}
			}
		}
		addGroup(g)
	}
	// y bonds.
	for parity := 0; parity < 2; parity++ {
		var g []bond
		if lat.Ny > 1 {
			for z := 0; z < lat.Layers; z++ {
				for x := 0; x < lat.Nx; x++ {
					for y := parity; y < lat.Ny; y += 2 {
						g = append(g, bond{lat.Index(x, y, z), lat.Index(x, y+1, z), chY, shY})
					}
				}
			}
		}
		addGroup(g)
	}
	// z bonds (open boundary): even and odd starting layers.
	for parity := 0; parity < 2; parity++ {
		var g []bond
		for z := parity; z+1 < lat.Layers; z += 2 {
			for y := 0; y < lat.Ny; y++ {
				for x := 0; x < lat.Nx; x++ {
					g = append(g, bond{lat.Index(x, y, z), lat.Index(x, y, z+1), chP, shP})
				}
			}
		}
		addGroup(g)
	}
	return cb, nil
}

// ApplyLeft overwrites a with B_cb * a, applying the group exponentials
// right-to-left and the chemical potential factor last. Cost O(N * a.Cols).
func (cb *Checkerboard) ApplyLeft(a *mat.Dense) {
	if a.Rows != cb.n {
		panic("hubbard: checkerboard dimension mismatch")
	}
	for g := len(cb.groups) - 1; g >= 0; g-- {
		for _, b := range cb.groups[g] {
			for c := 0; c < a.Cols; c++ {
				col := a.Col(c)
				vi, vj := col[b.i], col[b.j]
				col[b.i] = b.cosh*vi + b.sinh*vj
				col[b.j] = b.sinh*vi + b.cosh*vj
			}
		}
	}
	if cb.expMu != 1 {
		a.Scale(cb.expMu)
	}
}

// ApplyLeftInv overwrites a with B_cb^{-1} * a (groups in reverse order
// with the hyperbolic rotation inverted).
func (cb *Checkerboard) ApplyLeftInv(a *mat.Dense) {
	if a.Rows != cb.n {
		panic("hubbard: checkerboard dimension mismatch")
	}
	if cb.expMu != 1 {
		a.Scale(1 / cb.expMu)
	}
	for _, grp := range cb.groups {
		for _, b := range grp {
			for c := 0; c < a.Cols; c++ {
				col := a.Col(c)
				vi, vj := col[b.i], col[b.j]
				col[b.i] = b.cosh*vi - b.sinh*vj
				col[b.j] = -b.sinh*vi + b.cosh*vj
			}
		}
	}
}

// ApplyRight overwrites a with a * B_cb. Right-multiplying by one bond
// group mixes column pairs (the groups are symmetric), so the groups apply
// in forward order — the mirror image of ApplyLeft. Cost O(N * a.Rows).
func (cb *Checkerboard) ApplyRight(a *mat.Dense) {
	if a.Cols != cb.n {
		panic("hubbard: checkerboard dimension mismatch")
	}
	for _, grp := range cb.groups {
		for _, b := range grp {
			ci := a.Col(b.i)
			cj := a.Col(b.j)
			for r := range ci {
				vi, vj := ci[r], cj[r]
				ci[r] = b.cosh*vi + b.sinh*vj
				cj[r] = b.sinh*vi + b.cosh*vj
			}
		}
	}
	if cb.expMu != 1 {
		a.Scale(cb.expMu)
	}
}

// ApplyRightInv overwrites a with a * B_cb^{-1} (groups in reverse order
// with the hyperbolic rotation inverted).
func (cb *Checkerboard) ApplyRightInv(a *mat.Dense) {
	if a.Cols != cb.n {
		panic("hubbard: checkerboard dimension mismatch")
	}
	if cb.expMu != 1 {
		a.Scale(1 / cb.expMu)
	}
	for g := len(cb.groups) - 1; g >= 0; g-- {
		for _, b := range cb.groups[g] {
			ci := a.Col(b.i)
			cj := a.Col(b.j)
			for r := range ci {
				vi, vj := ci[r], cj[r]
				ci[r] = b.cosh*vi - b.sinh*vj
				cj[r] = -b.sinh*vi + b.cosh*vj
			}
		}
	}
}

// Materialize forms the dense matrix of the checkerboard propagator.
func (cb *Checkerboard) Materialize() *mat.Dense {
	m := mat.Identity(cb.n)
	cb.ApplyLeft(m)
	return m
}

// MaterializeInv forms the dense inverse propagator.
func (cb *Checkerboard) MaterializeInv() *mat.Dense {
	m := mat.Identity(cb.n)
	cb.ApplyLeftInv(m)
	return m
}

// NewPropagatorCheckerboard builds a Propagator whose kinetic matrices come
// from the checkerboard splitting instead of the exact eigendecomposition.
// The rest of the DQMC pipeline (stratification, wrapping, updates) is
// unchanged; the physics acquires an additional O(dtau^2) Trotter-like
// error of the same order as the one already present.
func NewPropagatorCheckerboard(m *Model) (*Propagator, error) {
	cb, err := NewCheckerboard(m.Lat, m.Mu, m.Dtau)
	if err != nil {
		return nil, err
	}
	return &Propagator{
		Model: m,
		Bkin:  cb.Materialize(),
		Binv:  cb.MaterializeInv(),
		CB:    cb,
		expNu: [2]float64{math.Exp(m.Nu), math.Exp(-m.Nu)},
	}, nil
}

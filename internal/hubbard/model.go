// Package hubbard defines the Hubbard Hamiltonian parameters, the
// Hubbard-Stratonovich auxiliary field, and the single-particle propagators
// B_l = V_l(h_l) * exp(-dtau*K) that the DQMC Green's function kernels
// consume.
package hubbard

import (
	"fmt"
	"math"

	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// Spin labels the two electron species.
type Spin int

const (
	Up   Spin = +1
	Down Spin = -1
)

// Model collects the physical and discretization parameters of a DQMC run:
// H = H_T + H_V + H_mu on the given lattice, inverse temperature beta
// discretized into L slices of size dtau = beta/L.
//
// Both signs of U are supported. For U > 0 (repulsion) the discrete
// Hubbard-Stratonovich field couples to the spin, sigma*nu*h, and the
// weight is det(M+)det(M-). For U < 0 (attraction) it couples to the
// charge, nu*h for both spins, times a bosonic factor exp(-nu*h) per
// (site, slice); the two determinants are then identical and the weight is
// non-negative at any filling — the attractive model has no sign problem.
type Model struct {
	Lat  *lattice.Lattice
	U    float64 // on-site interaction; < 0 selects the attractive model
	Mu   float64 // chemical potential
	Beta float64 // inverse temperature
	L    int     // imaginary-time slices
	Dtau float64 // Beta / L
	Nu   float64 // HS coupling: cosh(nu) = exp(|U|*dtau/2)
}

// Attractive reports whether the model uses the charge-channel (U < 0)
// decoupling.
func (m *Model) Attractive() bool { return m.U < 0 }

// NewModel validates the parameters and computes the derived quantities.
func NewModel(lat *lattice.Lattice, u, mu, beta float64, l int) (*Model, error) {
	if l < 1 {
		return nil, fmt.Errorf("hubbard: need at least one time slice, got %d", l)
	}
	if beta <= 0 {
		return nil, fmt.Errorf("hubbard: beta must be positive, got %g", beta)
	}
	dtau := beta / float64(l)
	m := &Model{Lat: lat, U: u, Mu: mu, Beta: beta, L: l, Dtau: dtau}
	// cosh(nu) = exp(|U|*dtau/2)  =>  nu = acosh(exp(|U|*dtau/2)).
	m.Nu = math.Acosh(math.Exp(math.Abs(u) * dtau / 2))
	return m, nil
}

// N returns the number of lattice sites (the matrix dimension).
func (m *Model) N() int { return m.Lat.N() }

// Field is the Hubbard-Stratonovich field h[l][i] in {-1, +1}, one value per
// (time slice, site).
type Field struct {
	L, N int
	H    [][]float64
}

// NewRandomField draws an independent +-1 configuration, the starting point
// of the warmup stage.
func NewRandomField(l, n int, r *rng.Rand) *Field {
	f := &Field{L: l, N: n, H: make([][]float64, l)}
	for s := range f.H {
		row := make([]float64, n)
		for i := range row {
			row[i] = r.PlusMinus()
		}
		f.H[s] = row
	}
	return f
}

// Flip negates h[l][i].
func (f *Field) Flip(l, i int) { f.H[l][i] = -f.H[l][i] }

// Clone deep-copies the field (used by tests that compare trajectories).
func (f *Field) Clone() *Field {
	c := &Field{L: f.L, N: f.N, H: make([][]float64, f.L)}
	for s := range f.H {
		c.H[s] = append([]float64(nil), f.H[s]...)
	}
	return c
}

// Propagator owns the field-independent kinetic propagators
// B = exp(-dtau*K) and B^{-1} = exp(+dtau*K), computed once per simulation
// from the eigendecomposition of the symmetric hopping matrix K.
type Propagator struct {
	Model      *Model
	Bkin, Binv *mat.Dense
	// CB, when non-nil, is the checkerboard factorization Bkin/Binv were
	// materialized from (NewPropagatorCheckerboard). Consumers with an
	// O(N^2) sparse-apply fast path (greens.Wrapper) use it in place of
	// dense GEMMs against Bkin/Binv; the dense matrices stay valid for
	// every other code path.
	CB    *Checkerboard
	expNu [2]float64 // e^{+nu}, e^{-nu} for h = +1/-1 at sigma = +1
}

// NewPropagator builds the kinetic propagators for the model.
func NewPropagator(m *Model) *Propagator {
	k := m.Lat.KMatrix(m.Mu)
	bkin, binv := lapack.SymExp(k, -m.Dtau)
	return &Propagator{
		Model: m,
		Bkin:  bkin,
		Binv:  binv,
		expNu: [2]float64{math.Exp(m.Nu), math.Exp(-m.Nu)},
	}
}

// VElem returns the V_l(i) diagonal element for a field value h in
// {-1, +1}: exp(sigma*nu*h) in the repulsive (spin-coupled) model,
// exp(nu*h) for both spins in the attractive (charge-coupled) model.
func (p *Propagator) VElem(sigma Spin, h float64) float64 {
	if p.Model.Attractive() {
		sigma = Up
	}
	if (sigma == Up) == (h > 0) {
		return p.expNu[0]
	}
	return p.expNu[1]
}

// VDiag fills v with the diagonal of V_l for the given slice and spin.
func (p *Propagator) VDiag(sigma Spin, f *Field, l int, v []float64) {
	h := f.H[l]
	for i := range h {
		v[i] = p.VElem(sigma, h[i])
	}
}

// Alpha returns the rank-1 update amplitude when h_{l,i} is flipped:
// exp(-2*sigma*nu*h) - 1 (repulsive) or exp(-2*nu*h) - 1 for both spins
// (attractive).
func (p *Propagator) Alpha(sigma Spin, h float64) float64 {
	if p.Model.Attractive() {
		sigma = Up
	}
	return math.Exp(-2*float64(sigma)*p.Model.Nu*h) - 1
}

// BosonRatio returns the ratio of the field-dependent bosonic weight
// factor under a flip of h: exp(+2*nu*h) in the attractive model (from the
// per-site exp(-nu*h) factor of the charge decoupling), 1 in the repulsive
// model.
func (p *Propagator) BosonRatio(h float64) float64 {
	if !p.Model.Attractive() {
		return 1
	}
	return math.Exp(2 * p.Model.Nu * h)
}

// BMatrix materializes B_{l,sigma} = V_l * exp(-dtau*K) as a dense matrix.
func (p *Propagator) BMatrix(sigma Spin, f *Field, l int) *mat.Dense {
	b := p.Bkin.Clone()
	v := make([]float64, p.Model.N())
	p.VDiag(sigma, f, l, v)
	b.ScaleRows(v)
	return b
}

// BMatrixInv materializes B_{l,sigma}^{-1} = exp(+dtau*K) * V_l^{-1}.
func (p *Propagator) BMatrixInv(sigma Spin, f *Field, l int) *mat.Dense {
	b := p.Binv.Clone()
	v := make([]float64, p.Model.N())
	p.VDiag(sigma, f, l, v)
	for i := range v {
		v[i] = 1 / v[i]
	}
	b.ScaleCols(v)
	return b
}

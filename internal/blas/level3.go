package blas

import (
	"questgo/internal/mat"
	"questgo/internal/parallel"
)

// Cache blocking parameters for Gemm. KC columns of A (a panel of
// mc x kc doubles) are streamed against kc x (column chunk) of B.
const (
	gemmKC = 128 // k-dimension block
	gemmMC = 256 // m-dimension block (256*128*8 = 256 KiB A panel)
	// gemmGrain is the minimum number of C columns per worker.
	gemmGrain = 8
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C, the workhorse of the
// Green's function evaluation (matrix clustering, wrapping, and the trailing
// updates of the QR factorizations all reduce to it).
//
// The (transA, transB) flags select op as identity or transposition.
// Transposed operands are materialized once so the inner kernel is always
// the cache-friendly column-major NN case; for DQMC sizes (N <= ~1024) the
// extra copy is a negligible fraction of the 2mnk flops.
func Gemm(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = bn, bk
	}
	if am != c.Rows || bn != c.Cols || ak != bk {
		panic("blas: Gemm dimension mismatch")
	}
	if transA {
		a = a.Transpose()
	}
	if transB {
		b = b.Transpose()
	}
	gemmNN(alpha, a, b, beta, c)
}

// gemmNN is the blocked kernel for column-major C = alpha*A*B + beta*C.
// Work is split over column chunks of C; each worker streams k-blocks and
// m-blocks with a 4-way unrolled axpy micro-kernel, so reads of A columns,
// B columns and C columns are all stride 1.
func gemmNN(alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		if beta != 1 {
			for j := 0; j < n; j++ {
				Scal(beta, c.Col(j))
			}
		}
		return
	}
	parallel.For(n, gemmGrain, func(jlo, jhi int) {
		// Scale the destination columns once up front.
		if beta != 1 {
			for j := jlo; j < jhi; j++ {
				Scal(beta, c.Col(j))
			}
		}
		for kb := 0; kb < k; kb += gemmKC {
			ke := kb + gemmKC
			if ke > k {
				ke = k
			}
			for ib := 0; ib < m; ib += gemmMC {
				ie := ib + gemmMC
				if ie > m {
					ie = m
				}
				gemmBlock(alpha, a, b, c, ib, ie, kb, ke, jlo, jhi)
			}
		}
	})
}

// gemmBlock computes C[ib:ie, jlo:jhi] += alpha * A[ib:ie, kb:ke] * B[kb:ke, jlo:jhi].
func gemmBlock(alpha float64, a, b, c *mat.Dense, ib, ie, kb, ke, jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		cj := c.Data[ib+j*c.Stride : ie+j*c.Stride]
		bj := b.Data[j*b.Stride:]
		kk := kb
		for ; kk+4 <= ke; kk += 4 {
			b0 := alpha * bj[kk]
			b1 := alpha * bj[kk+1]
			b2 := alpha * bj[kk+2]
			b3 := alpha * bj[kk+3]
			if b0 == 0 && b1 == 0 && b2 == 0 && b3 == 0 {
				continue
			}
			a0 := a.Data[ib+kk*a.Stride : ie+kk*a.Stride]
			a1 := a.Data[ib+(kk+1)*a.Stride : ie+(kk+1)*a.Stride]
			a2 := a.Data[ib+(kk+2)*a.Stride : ie+(kk+2)*a.Stride]
			a3 := a.Data[ib+(kk+3)*a.Stride : ie+(kk+3)*a.Stride]
			for i := range cj {
				cj[i] += b0*a0[i] + b1*a1[i] + b2*a2[i] + b3*a3[i]
			}
		}
		for ; kk < ke; kk++ {
			bv := alpha * bj[kk]
			if bv == 0 {
				continue
			}
			ak := a.Data[ib+kk*a.Stride : ie+kk*a.Stride]
			for i := range cj {
				cj[i] += bv * ak[i]
			}
		}
	}
}

// GemmFlops returns the nominal flop count 2*m*n*k of a Gemm call with the
// given result shape and inner dimension, used by the benchmark harness to
// report GFlops rates comparable to the paper's figures.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

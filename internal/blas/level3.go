package blas

import (
	"fmt"

	"questgo/internal/check"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/parallel"
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C, the workhorse of the
// Green's function evaluation (matrix clustering, wrapping, and the trailing
// updates of the QR factorizations all reduce to it).
//
// The (transA, transB) flags select op as identity or transposition.
// Transposition is absorbed into the packing step of the blocked kernel
// (see gemm_packed.go), so no operand is ever materialized: both layouts
// read the strided source directly while writing the contiguous packed
// panels. C must not alias A or B.
//
//qmc:charges OpGemmCalls,OpGemmFlops
//qmc:hot
func Gemm(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = bn, bk
	}
	if am != c.Rows || bn != c.Cols || ak != bk {
		panic(fmt.Sprintf("blas: Gemm dimension mismatch: op(A) is %dx%d, op(B) is %dx%d, C is %dx%d", am, ak, bk, bn, c.Rows, c.Cols))
	}
	m, n, k := am, bn, ak
	if m == 0 || n == 0 {
		return
	}
	obs.AddGemm(m, n, k)

	ctx := gemmCtxPool.Get().(*gemmCtx)
	ctx.aData, ctx.as, ctx.transA = a.Data, a.Stride, transA
	ctx.bData, ctx.bs, ctx.transB = b.Data, b.Stride, transB
	ctx.cData, ctx.cs = c.Data, c.Stride
	ctx.alpha, ctx.beta = alpha, beta
	ctx.m, ctx.n, ctx.k = m, n, k

	// The kernels accumulate into C, so fold beta in with one pass first.
	// beta == 0 zeroes without reading C (NaN/Inf in uninitialized C must
	// not leak into the result, matching reference BLAS).
	if beta != 1 {
		parallel.For(n, 8, ctx.scaleBody)
	}
	if alpha != 0 && k != 0 {
		if m*n*k <= gemmSmallLimit {
			ctx.runSmall()
		} else {
			ctx.runPacked()
		}
	}
	ctx.aData, ctx.bData, ctx.cData = nil, nil, nil
	gemmCtxPool.Put(ctx)
	check.Finite("blas.Gemm", c)
}

// GemmTN computes C = alpha*A^T*B + beta*C. It is a named entry for the
// common UDT/block-reflector pattern where one operand is reused transposed
// (W = V^T C, N = Q_a^T Q_b); the transpose is handled during packing, so
// this costs exactly the same as the NN case.
//
//qmc:hot
func GemmTN(alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	Gemm(true, false, alpha, a, b, beta, c)
}

// gemmSmallLimit routes products with m*n*k at or below it (roughly 32^3)
// to the direct loops in runSmall: packing latency is not worth amortizing
// for the small block-reflector and delayed-update shapes.
const gemmSmallLimit = 32 * 32 * 32

// runScale folds beta into columns [jlo, jhi) of C.
func (ctx *gemmCtx) runScale(jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		col := ctx.cData[j*ctx.cs : j*ctx.cs+ctx.m]
		if ctx.beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else {
			for i := range col {
				col[i] *= ctx.beta
			}
		}
	}
}

// runSmall accumulates alpha*op(A)*op(B) into C with direct loops (beta has
// already been applied). Each trans combination gets the loop order that
// keeps the innermost accesses stride-1 where possible.
func (ctx *gemmCtx) runSmall() {
	m, n, k := ctx.m, ctx.n, ctx.k
	alpha := ctx.alpha
	a, as := ctx.aData, ctx.as
	b, bs := ctx.bData, ctx.bs
	c, cs := ctx.cData, ctx.cs
	switch {
	case !ctx.transA && !ctx.transB:
		for j := 0; j < n; j++ {
			cj := c[j*cs : j*cs+m]
			bj := b[j*bs:]
			for l := 0; l < k; l++ {
				if f := alpha * bj[l]; f != 0 {
					al := a[l*as : l*as+m]
					for i := range cj {
						cj[i] += f * al[i]
					}
				}
			}
		}
	case !ctx.transA && ctx.transB:
		for j := 0; j < n; j++ {
			cj := c[j*cs : j*cs+m]
			for l := 0; l < k; l++ {
				if f := alpha * b[j+l*bs]; f != 0 {
					al := a[l*as : l*as+m]
					for i := range cj {
						cj[i] += f * al[i]
					}
				}
			}
		}
	case ctx.transA && !ctx.transB:
		for j := 0; j < n; j++ {
			cj := c[j*cs : j*cs+m]
			bj := b[j*bs : j*bs+k]
			for i := 0; i < m; i++ {
				cj[i] += alpha * Dot(a[i*as:i*as+k], bj)
			}
		}
	default: // transA && transB
		for j := 0; j < n; j++ {
			cj := c[j*cs : j*cs+m]
			for i := 0; i < m; i++ {
				ai := a[i*as : i*as+k]
				var s float64
				for l := 0; l < k; l++ {
					s += ai[l] * b[j+l*bs]
				}
				cj[i] += alpha * s
			}
		}
	}
}

// GemmFlops returns the nominal flop count 2*m*n*k of a Gemm call with the
// given result shape and inner dimension, used by the benchmark harness to
// report GFlops rates comparable to the paper's figures.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

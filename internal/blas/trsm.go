package blas

import (
	"fmt"
	"sync"

	"questgo/internal/mat"
	"questgo/internal/parallel"
)

// trsmBlock is the diagonal-block size of the blocked solve: the unblocked
// column solver handles trsmBlock rows at a time and the rest of the work is
// pushed into Gemm trailing updates, which run on the packed kernel.
const trsmBlock = 64

// Trsm solves op(T) * X = alpha * B in place (B is overwritten by X) for a
// triangular T. Only the "left side" variants needed by the LU solver and
// the blocked factorizations are implemented:
//
//	upper=false, unit=true  : unit lower triangular (LU forward substitution)
//	upper=true,  unit=false : upper triangular (LU back substitution)
//
// trans selects op(T) = T or T^T. The solve is blocked: each trsmBlock-sized
// diagonal block is solved with the unblocked column routine (right-hand
// sides in parallel), then the remaining rows are updated with one Gemm rank
// update, so the bulk of the flops run through the packed kernel.
func Trsm(upper, trans, unit bool, alpha float64, t, b *mat.Dense) {
	n := t.Rows
	if t.Cols != n || b.Rows != n {
		panic(fmt.Sprintf("blas: Trsm dimension mismatch: T is %dx%d, B is %dx%d", t.Rows, t.Cols, b.Rows, b.Cols))
	}
	if b.Cols == 0 || n == 0 {
		return
	}
	// Like the GEMM path, the parallel bodies are pre-bound methods on a
	// pooled context so no closure is allocated per call or per block.
	ctx := trsmCtxPool.Get().(*trsmCtx)
	ctx.upper, ctx.trans, ctx.unit, ctx.alpha = upper, trans, unit, alpha
	ctx.t, ctx.b = t, b
	if alpha != 1 {
		parallel.For(b.Cols, 8, ctx.scaleBody)
	}
	if n <= trsmBlock {
		ctx.solveDiag(0, n)
		ctx.release()
		return
	}
	// Forward sweeps eliminate solved blocks from the rows below; backward
	// sweeps from the rows above. Transposed cases feed Gemm the mirrored
	// off-diagonal block with transA=true, which the packed kernel absorbs
	// during packing.
	switch {
	case !trans && !upper:
		for k0 := 0; k0 < n; k0 += trsmBlock {
			k1 := min(k0+trsmBlock, n)
			ctx.solveDiag(k0, k1)
			if k1 < n {
				Gemm(false, false, -1,
					t.View(k1, k0, n-k1, k1-k0), b.View(k0, 0, k1-k0, b.Cols),
					1, b.View(k1, 0, n-k1, b.Cols))
			}
		}
	case !trans && upper:
		for k1 := n; k1 > 0; k1 -= trsmBlock {
			k0 := max(k1-trsmBlock, 0)
			ctx.solveDiag(k0, k1)
			if k0 > 0 {
				Gemm(false, false, -1,
					t.View(0, k0, k0, k1-k0), b.View(k0, 0, k1-k0, b.Cols),
					1, b.View(0, 0, k0, b.Cols))
			}
		}
	case trans && !upper:
		// T^T is upper triangular: backward sweep, block column of T below
		// the diagonal becomes the block row of T^T to its right.
		for k1 := n; k1 > 0; k1 -= trsmBlock {
			k0 := max(k1-trsmBlock, 0)
			ctx.solveDiag(k0, k1)
			if k0 > 0 {
				Gemm(true, false, -1,
					t.View(k0, 0, k1-k0, k0), b.View(k0, 0, k1-k0, b.Cols),
					1, b.View(0, 0, k0, b.Cols))
			}
		}
	default: // trans && upper
		// T^T is lower triangular: forward sweep.
		for k0 := 0; k0 < n; k0 += trsmBlock {
			k1 := min(k0+trsmBlock, n)
			ctx.solveDiag(k0, k1)
			if k1 < n {
				Gemm(true, false, -1,
					t.View(k0, k1, k1-k0, n-k1), b.View(k0, 0, k1-k0, b.Cols),
					1, b.View(k1, 0, n-k1, b.Cols))
			}
		}
	}
	ctx.release()
}

// trsmCtx carries one Trsm call's operands so the parallel loop bodies can
// be pre-bound methods instead of per-block closures.
type trsmCtx struct {
	upper, trans, unit bool
	alpha              float64
	t, b               *mat.Dense
	td                 *mat.Dense // current diagonal block view
	k0, k1             int
	scaleBody          func(jlo, jhi int)
	solveBody          func(jlo, jhi int)
}

var trsmCtxPool = sync.Pool{New: func() interface{} {
	ctx := &trsmCtx{}
	ctx.scaleBody = ctx.runScale
	ctx.solveBody = ctx.runSolve
	return ctx
}}

func (ctx *trsmCtx) release() {
	ctx.t, ctx.b, ctx.td = nil, nil, nil
	trsmCtxPool.Put(ctx)
}

//qmc:hot
func (ctx *trsmCtx) runScale(jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		Scal(ctx.alpha, ctx.b.Col(j))
	}
}

//qmc:hot
func (ctx *trsmCtx) runSolve(jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		trsv(ctx.upper, ctx.trans, ctx.unit, ctx.td, ctx.b.Col(j)[ctx.k0:ctx.k1])
	}
}

// solveDiag solves op(T[k0:k1, k0:k1]) * X = B[k0:k1, :] in place, with the
// right-hand-side columns in parallel.
func (ctx *trsmCtx) solveDiag(k0, k1 int) {
	ctx.k0, ctx.k1 = k0, k1
	ctx.td = ctx.t.View(k0, k0, k1-k0, k1-k0)
	parallel.For(ctx.b.Cols, 4, ctx.solveBody)
}

// trsv solves op(T) x = x in place for one right-hand side.
func trsv(upper, trans, unit bool, t *mat.Dense, x []float64) {
	n := t.Rows
	switch {
	case !trans && !upper:
		// Forward substitution with column access: after x[k] is final,
		// eliminate it from the remaining entries using column k.
		for k := 0; k < n; k++ {
			if !unit {
				x[k] /= t.At(k, k)
			}
			xk := x[k]
			if xk == 0 {
				continue
			}
			col := t.Col(k)
			for i := k + 1; i < n; i++ {
				x[i] -= xk * col[i]
			}
		}
	case !trans && upper:
		for k := n - 1; k >= 0; k-- {
			if !unit {
				x[k] /= t.At(k, k)
			}
			xk := x[k]
			if xk == 0 {
				continue
			}
			col := t.Col(k)
			for i := 0; i < k; i++ {
				x[i] -= xk * col[i]
			}
		}
	case trans && !upper:
		// T^T is upper triangular; dot products along columns of T.
		for k := n - 1; k >= 0; k-- {
			col := t.Col(k)
			s := x[k]
			for i := k + 1; i < n; i++ {
				s -= col[i] * x[i]
			}
			if unit {
				x[k] = s
			} else {
				x[k] = s / col[k]
			}
		}
	default: // trans && upper
		// T^T is lower triangular.
		for k := 0; k < n; k++ {
			col := t.Col(k)
			s := x[k]
			for i := 0; i < k; i++ {
				s -= col[i] * x[i]
			}
			if unit {
				x[k] = s
			} else {
				x[k] = s / col[k]
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package blas

import (
	"questgo/internal/mat"
	"questgo/internal/parallel"
)

// Trsm solves op(T) * X = alpha * B in place (B is overwritten by X) for a
// triangular T. Only the "left side" variants needed by the LU solver and
// the blocked factorizations are implemented:
//
//	upper=false, unit=true  : unit lower triangular (LU forward substitution)
//	upper=true,  unit=false : upper triangular (LU back substitution)
//
// trans selects op(T) = T or T^T. Right-hand sides (columns of B) are
// independent, so they are solved in parallel.
func Trsm(upper, trans, unit bool, alpha float64, t, b *mat.Dense) {
	n := t.Rows
	if t.Cols != n || b.Rows != n {
		panic("blas: Trsm dimension mismatch")
	}
	parallel.For(b.Cols, 4, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			x := b.Col(j)
			if alpha != 1 {
				Scal(alpha, x)
			}
			trsv(upper, trans, unit, t, x)
		}
	})
}

// trsv solves op(T) x = x in place for one right-hand side.
func trsv(upper, trans, unit bool, t *mat.Dense, x []float64) {
	n := t.Rows
	switch {
	case !trans && !upper:
		// Forward substitution with column access: after x[k] is final,
		// eliminate it from the remaining entries using column k.
		for k := 0; k < n; k++ {
			if !unit {
				x[k] /= t.At(k, k)
			}
			xk := x[k]
			if xk == 0 {
				continue
			}
			col := t.Col(k)
			for i := k + 1; i < n; i++ {
				x[i] -= xk * col[i]
			}
		}
	case !trans && upper:
		for k := n - 1; k >= 0; k-- {
			if !unit {
				x[k] /= t.At(k, k)
			}
			xk := x[k]
			if xk == 0 {
				continue
			}
			col := t.Col(k)
			for i := 0; i < k; i++ {
				x[i] -= xk * col[i]
			}
		}
	case trans && !upper:
		// T^T is upper triangular; dot products along columns of T.
		for k := n - 1; k >= 0; k-- {
			col := t.Col(k)
			s := x[k]
			for i := k + 1; i < n; i++ {
				s -= col[i] * x[i]
			}
			if unit {
				x[k] = s
			} else {
				x[k] = s / col[k]
			}
		}
	default: // trans && upper
		// T^T is lower triangular.
		for k := 0; k < n; k++ {
			col := t.Col(k)
			s := x[k]
			for i := 0; i < k; i++ {
				s -= col[i] * x[i]
			}
			if unit {
				x[k] = s
			} else {
				x[k] = s / col[k]
			}
		}
	}
}

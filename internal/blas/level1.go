// Package blas implements the dense kernels (BLAS levels 1-3) that the
// LAPACK-style factorizations and the DQMC Green's function code build on.
//
// The paper's performance analysis rests on the throughput hierarchy
// DGEMM > DGEQRF > DGEQP3: matrix-matrix products are compute bound, the
// blocked QR is mostly level 3 with a level-2 panel, and the pivoted QR is
// level-2 bound because every pivot choice requires a matrix-vector product
// to refresh column norms. This package reproduces that hierarchy in pure
// Go: Gemm is blocked, unrolled, and parallel; the level 1/2 routines are
// deliberately simple stride-1 loops.
package blas

import (
	"fmt"
	"math"
)

// Dot returns x . y over n elements with unit stride.
func Dot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(x)
	if len(y) < n {
		panic(fmt.Sprintf("blas: Dot length mismatch: len(x)=%d len(y)=%d", n, len(y)))
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if alpha == 0 {
		return
	}
	n := len(x)
	if len(y) < n {
		panic(fmt.Sprintf("blas: Axpy length mismatch: len(x)=%d len(y)=%d", n, len(y)))
	}
	for i := 0; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x, guarding against overflow and
// underflow in the same way as the reference BLAS. The graded matrices in
// the stratification algorithm have columns spanning many orders of
// magnitude, so the naive sum of squares is not safe here.
func Nrm2(x []float64) float64 {
	var scale float64
	ssq := 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Idamax returns the index of the element of largest absolute value,
// or -1 for an empty slice.
func Idamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// Swap exchanges x and y element-wise.
func Swap(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: Swap length mismatch: len(x)=%d len(y)=%d", len(x), len(y)))
	}
	for i := range x {
		x[i], y[i] = y[i], x[i]
	}
}

package blas

import (
	"fmt"

	"questgo/internal/mat"
)

// Gemv computes y = alpha*op(A)*x + beta*y where op is the identity when
// trans is false and transposition when trans is true.
func Gemv(trans bool, alpha float64, a *mat.Dense, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	if trans {
		if len(x) < m || len(y) < n {
			panic(fmt.Sprintf("blas: Gemv^T dimension mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m, n, len(x), len(y)))
		}
		for j := 0; j < n; j++ {
			y[j] = beta*y[j] + alpha*Dot(a.Col(j), x[:m])
		}
		return
	}
	if len(x) < n || len(y) < m {
		panic(fmt.Sprintf("blas: Gemv dimension mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m, n, len(x), len(y)))
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			y[i] *= beta
		}
	}
	for j := 0; j < n; j++ {
		Axpy(alpha*x[j], a.Col(j), y[:m])
	}
}

// Ger computes the rank-1 update A += alpha * x * y^T.
func Ger(alpha float64, x, y []float64, a *mat.Dense) {
	m, n := a.Rows, a.Cols
	if len(x) < m || len(y) < n {
		panic(fmt.Sprintf("blas: Ger dimension mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m, n, len(x), len(y)))
	}
	for j := 0; j < n; j++ {
		Axpy(alpha*y[j], x[:m], a.Col(j))
	}
}

//go:build amd64 && !purego

package blas

// Runtime selection of the AVX2+FMA micro-kernel. The assembly kernel in
// gemm_amd64.s computes an 8x4 register tile (eight ymm accumulators, two
// a-vector loads and four b broadcasts per k step), which is 2 FMA issues
// per cycle on Haswell-and-later cores — the same shape BLIS uses for
// double precision on this family. Feature detection is done with CPUID
// and XGETBV directly (no external deps): FMA + AVX2 + OS-enabled ymm
// state are all required.

//go:noescape
func dgemm8x4asm(kc int64, a, b, c *float64, ldc int64)

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// microKernel8x4 adapts the assembly kernel to the generic signature.
func microKernel8x4(kc int, a, b, c []float64, ldc int) {
	dgemm8x4asm(int64(kc), &a[0], &b[0], &c[0], int64(ldc))
}

func init() {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 {
		return
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	if b7&avx2Bit == 0 {
		return
	}
	kernMR, kernNR, microKernel = 8, 4, microKernel8x4
}

package blas

// GotoBLAS-style packed GEMM.
//
// The product is tiled over three cache levels:
//
//	for jc over N in NC columns:            // C/B column slab
//	  for pc over K in KC:                  // shared inner dimension
//	    pack op(B)[pc:pc+KC, jc:jc+NC]     -> bp (L3-resident, nr-wide micro-panels)
//	    for ic over M in MC rows:
//	      pack alpha*op(A)[ic:ic+MC, pc:]  -> ap (L2-resident, mr-tall micro-panels)
//	      for jr, ir over micro-panels:     // parallel over jr chunks
//	        C[ir, jr] += ap[ir] * bp[jr]    // register-blocked micro-kernel
//
// Both packing routines read the strided operand directly — transA/transB
// only swap which index runs contiguously — so transposed operands cost the
// same as plain ones and nothing is ever materialized. Packed micro-panels
// store A k-major in mr-tall stripes (element (r, k) at [k*mr+r]) and B
// k-major in nr-wide stripes (element (k, q) at [k*nr+q]); padding rows and
// columns are zero-filled so the micro-kernel always runs full tiles, and
// only the write-back respects the true edge.
//
// The micro-kernel itself is selected at startup: an AVX2+FMA 8x4 assembly
// kernel on capable amd64 hardware (gemm_amd64.s), otherwise the portable
// 4x4 Go kernel below. Contexts (including the packing buffers and the
// parallel-loop closures) are pooled so a steady-state Gemm call performs
// zero heap allocations.

import (
	"sync"

	"questgo/internal/parallel"
)

// Cache blocking parameters. kc*nr*8 (one B micro-panel) stays L1-resident
// through a macro row sweep; mc*kc*8 = 256 KiB (one packed A slab) targets
// L2; kc*NC*8 = 2 MiB (one packed B slab) targets L3.
const (
	gemmKC = 256
	gemmMC = 128
	gemmNC = 1024
)

// Micro-tile dimensions, set at init by the per-arch kernel selection.
// kernMR*kernNR accumulators live in registers across the whole KC loop.
var (
	kernMR      = 4
	kernNR      = 4
	microKernel = microKernel4x4
)

// maxMR bounds kernMR across all kernel choices (edge buffers are sized
// statically with it).
const maxMR = 8

// gemmCtx carries one Gemm call's state. The closures are created once per
// context (in the pool's New) so per-call dispatch into the worker pool
// allocates nothing.
type gemmCtx struct {
	aData, bData, cData []float64
	as, bs, cs          int
	transA, transB      bool
	alpha, beta         float64
	m, n, k             int

	jc, nb int // current column slab [jc, jc+nb)
	pc, kc int // current k slab [pc, pc+kc)
	ic, mb int // current row slab [ic, ic+mb)

	ap, bp []float64

	scaleBody func(lo, hi int)
	packBBody func(lo, hi int)
	macroBody func(lo, hi int)
}

var gemmCtxPool = sync.Pool{New: func() interface{} {
	ctx := new(gemmCtx)
	ctx.scaleBody = ctx.runScale
	ctx.packBBody = ctx.runPackB
	ctx.macroBody = ctx.runMacro
	return ctx
}}

func growBuf(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	//qmc:allow hotalloc -- amortized growth: reused via the gemmCtx pool, steady state allocates nothing
	return make([]float64, n)
}

// runPacked drives the blocked loops. Packing B is parallel over its
// micro-panels; packing A is serial (it is O(mc*kc), negligible against the
// O(mc*kc*nb) macro sweep it feeds); the macro sweep is parallel over B
// micro-panel chunks, each worker streaming the whole packed A slab.
func (ctx *gemmCtx) runPacked() {
	mr, nr := kernMR, kernNR
	for jc := 0; jc < ctx.n; jc += gemmNC {
		ctx.jc = jc
		ctx.nb = min(gemmNC, ctx.n-jc)
		npan := (ctx.nb + nr - 1) / nr
		for pc := 0; pc < ctx.k; pc += gemmKC {
			ctx.pc = pc
			ctx.kc = min(gemmKC, ctx.k-pc)
			ctx.bp = growBuf(ctx.bp, npan*nr*ctx.kc)
			parallel.For(npan, 8, ctx.packBBody)
			for ic := 0; ic < ctx.m; ic += gemmMC {
				ctx.ic = ic
				ctx.mb = min(gemmMC, ctx.m-ic)
				mpan := (ctx.mb + mr - 1) / mr
				ctx.ap = growBuf(ctx.ap, mpan*mr*ctx.kc)
				ctx.runPackA()
				parallel.For(npan, 2, ctx.macroBody)
			}
		}
	}
}

// runPackB packs op(B) micro-panels [plo, phi) of the current (jc, pc) slab
// into bp. Panel p covers columns jc+p*nr .. jc+p*nr+nr with element
// (k, q) at bp[p*nr*kc + k*nr + q]; columns past the matrix edge are zero.
func (ctx *gemmCtx) runPackB(plo, phi int) {
	nr, kc := kernNR, ctx.kc
	for p := plo; p < phi; p++ {
		dst := ctx.bp[p*nr*kc : (p+1)*nr*kc]
		j0 := ctx.jc + p*nr
		jw := min(nr, ctx.jc+ctx.nb-j0)
		if jw < nr {
			for i := range dst {
				dst[i] = 0
			}
		}
		if !ctx.transB {
			// op(B)(pc+k, j) = B(pc+k, j): source columns are contiguous.
			for q := 0; q < jw; q++ {
				src := ctx.bData[ctx.pc+(j0+q)*ctx.bs:]
				for kk := 0; kk < kc; kk++ {
					dst[kk*nr+q] = src[kk]
				}
			}
		} else {
			// op(B)(pc+k, j) = B(j, pc+k): source rows are contiguous.
			for kk := 0; kk < kc; kk++ {
				src := ctx.bData[j0+(ctx.pc+kk)*ctx.bs:]
				d := dst[kk*nr : kk*nr+jw]
				for q := range d {
					d[q] = src[q]
				}
			}
		}
	}
}

// runPackA packs alpha*op(A) for the current (ic, pc) slab into ap. Panel
// ir covers rows ic+ir*mr .. +mr with element (r, k) at
// ap[ir*mr*kc + k*mr + r]; rows past the matrix edge are zero.
func (ctx *gemmCtx) runPackA() {
	mr, kc := kernMR, ctx.kc
	alpha := ctx.alpha
	mpan := (ctx.mb + mr - 1) / mr
	for ir := 0; ir < mpan; ir++ {
		dst := ctx.ap[ir*mr*kc : (ir+1)*mr*kc]
		i0 := ctx.ic + ir*mr
		iw := min(mr, ctx.ic+ctx.mb-i0)
		if iw < mr {
			for i := range dst {
				dst[i] = 0
			}
		}
		if !ctx.transA {
			// op(A)(i, pc+k) = A(i, pc+k): source columns are contiguous.
			for kk := 0; kk < kc; kk++ {
				src := ctx.aData[i0+(ctx.pc+kk)*ctx.as:]
				d := dst[kk*mr : kk*mr+iw]
				for r := range d {
					d[r] = alpha * src[r]
				}
			}
		} else {
			// op(A)(i, pc+k) = A(pc+k, i): source rows run along k.
			for r := 0; r < iw; r++ {
				src := ctx.aData[ctx.pc+(i0+r)*ctx.as:]
				for kk := 0; kk < kc; kk++ {
					dst[kk*mr+r] = alpha * src[kk]
				}
			}
		}
	}
}

// runMacro sweeps B micro-panels [plo, phi) against every packed A panel of
// the current slab. Full tiles go straight to the register kernel; edge
// tiles (bottom rows / last columns) use the buffer-free scalar kernel.
func (ctx *gemmCtx) runMacro(plo, phi int) {
	mr, nr, kc := kernMR, kernNR, ctx.kc
	mpan := (ctx.mb + mr - 1) / mr
	for p := plo; p < phi; p++ {
		bpanel := ctx.bp[p*nr*kc : (p+1)*nr*kc]
		j0 := ctx.jc + p*nr
		jw := min(nr, ctx.jc+ctx.nb-j0)
		for ir := 0; ir < mpan; ir++ {
			apanel := ctx.ap[ir*mr*kc : (ir+1)*mr*kc]
			i0 := ctx.ic + ir*mr
			iw := min(mr, ctx.ic+ctx.mb-i0)
			if iw == mr && jw == nr {
				microKernel(kc, apanel, bpanel, ctx.cData[i0+j0*ctx.cs:], ctx.cs)
			} else {
				microKernelEdge(kc, iw, jw, mr, nr, apanel, bpanel, ctx.cData[i0+j0*ctx.cs:], ctx.cs)
			}
		}
	}
}

// microKernel4x4 is the portable register-blocked kernel:
// C[r + q*ldc] += sum_k a[k*4+r] * b[k*4+q] with all 16 accumulators in
// locals, fully unrolled over the tile.
func microKernel4x4(kc int, a, b, c []float64, ldc int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for kk := 0; kk < kc; kk++ {
		aa := (*[4]float64)(a[kk*4:])
		bb := (*[4]float64)(b[kk*4:])
		a0, a1, a2, a3 := aa[0], aa[1], aa[2], aa[3]
		b0, b1, b2, b3 := bb[0], bb[1], bb[2], bb[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
	}
	c[0] += c00
	c[1] += c10
	c[2] += c20
	c[3] += c30
	c[ldc+0] += c01
	c[ldc+1] += c11
	c[ldc+2] += c21
	c[ldc+3] += c31
	c[2*ldc+0] += c02
	c[2*ldc+1] += c12
	c[2*ldc+2] += c22
	c[2*ldc+3] += c32
	c[3*ldc+0] += c03
	c[3*ldc+1] += c13
	c[3*ldc+2] += c23
	c[3*ldc+3] += c33
}

// microKernelEdge handles partial tiles (iw <= mr rows, jw <= nr columns)
// without a spill buffer: one dot product per surviving C element over the
// zero-padded packed panels.
func microKernelEdge(kc, iw, jw, mr, nr int, a, b, c []float64, ldc int) {
	for q := 0; q < jw; q++ {
		for r := 0; r < iw; r++ {
			var s float64
			for kk := 0; kk < kc; kk++ {
				s += a[kk*mr+r] * b[kk*nr+q]
			}
			c[r+q*ldc] += s
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

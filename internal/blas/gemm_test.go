package blas

import (
	"math"
	"runtime"
	"testing"
	"time"

	"questgo/internal/mat"
	"questgo/internal/parallel"
	"questgo/internal/rng"
)

// gemmShapes spans the micro-kernel edge cases: dimensions below, at, and
// just past the MR/NR tile widths, shapes straddling the small-product
// threshold, and degenerate 1-row/1-column extents.
var gemmShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{1, 9, 1},
	{9, 1, 7},
	{2, 3, 5},
	{4, 4, 4},
	{5, 5, 5},
	{7, 13, 3},
	{8, 4, 17},
	{9, 5, 31},
	{16, 16, 16},
	{17, 33, 9},
	{31, 32, 33},
	{33, 33, 33},   // just past gemmSmallLimit: packed path
	{65, 100, 31},  // packed, edge tiles on both borders
	{129, 65, 100}, // packed, m past MC
	{100, 129, 65},
}

// TestGemmEdgeCasesVsNaive sweeps shapes x trans combos x alpha/beta values
// against the reference triple loop. This covers m, n, k not divisible by
// the register tile, both kernel paths, and the beta pre-pass.
func TestGemmEdgeCasesVsNaive(t *testing.T) {
	r := rng.New(42)
	for _, sh := range gemmShapes {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for _, alpha := range []float64{0, 1, 0.5} {
					for _, beta := range []float64{0, 1, 0.5} {
						var a, b *mat.Dense
						if ta {
							a = randomDense(r, sh.k, sh.m)
						} else {
							a = randomDense(r, sh.m, sh.k)
						}
						if tb {
							b = randomDense(r, sh.n, sh.k)
						} else {
							b = randomDense(r, sh.k, sh.n)
						}
						c := randomDense(r, sh.m, sh.n)
						want := c.Clone()
						Gemm(ta, tb, alpha, a, b, beta, c)
						gemmNaive(ta, tb, alpha, a, b, beta, want)
						if !c.EqualApprox(want, 1e-11) {
							t.Fatalf("Gemm mismatch m=%d n=%d k=%d ta=%v tb=%v alpha=%v beta=%v",
								sh.m, sh.n, sh.k, ta, tb, alpha, beta)
						}
					}
				}
			}
		}
	}
}

// TestGemmBetaZeroClearsNaN: beta = 0 must overwrite C without reading it,
// so NaN/Inf garbage in the destination cannot leak into the result.
func TestGemmBetaZeroClearsNaN(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{8, 64} { // small and packed paths
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		c := mat.New(n, n)
		for i := range c.Data {
			c.Data[i] = math.NaN()
		}
		want := mat.New(n, n)
		Gemm(false, false, 1, a, b, 0, c)
		gemmNaive(false, false, 1, a, b, 0, want)
		if !c.EqualApprox(want, 1e-11) {
			t.Fatalf("n=%d: NaN leaked through beta=0", n)
		}
	}
}

// TestGemmNoAllocSteadyState asserts the zero-allocation contract: after
// warm-up, a Gemm call allocates nothing — contexts, packing buffers, and
// loop descriptors all come from pools. The transA case doubles as the
// regression test for the old implementation's a.Transpose() path, which
// allocated a full O(m*k) copy: any per-call allocation fails the test, let
// alone a matrix-sized one.
func TestGemmNoAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only meaningful without -race")
	}
	r := rng.New(11)
	n := 128 // comfortably in the packed path
	a := randomDense(r, n, n)
	b := randomDense(r, n, n)
	c := mat.New(n, n)
	for _, tc := range []struct {
		name   string
		ta, tb bool
	}{
		{"NN", false, false},
		{"TN", true, false},
		{"NT", false, true},
	} {
		// Warm the pools outside the measured runs.
		Gemm(tc.ta, tc.tb, 1, a, b, 0, c)
		allocs := testing.AllocsPerRun(10, func() {
			Gemm(tc.ta, tc.tb, 1, a, b, 0.5, c)
		})
		if allocs != 0 {
			t.Errorf("%s: Gemm allocated %.1f objects per call, want 0", tc.name, allocs)
		}
	}
}

// TestGemmInsideParallelFor pins the nested-parallelism contract from the
// caller's side: Gemm dispatches onto the same worker pool as parallel.For,
// so issuing it from inside a For body must neither deadlock nor corrupt
// results. (The pool-level nesting test lives in internal/parallel; this one
// exercises the real Gemm path, which internal/parallel cannot import.)
func TestGemmInsideParallelFor(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	r := rng.New(13)
	n := 48
	const tasks = 8
	as := make([]*mat.Dense, tasks)
	bs := make([]*mat.Dense, tasks)
	cs := make([]*mat.Dense, tasks)
	wants := make([]*mat.Dense, tasks)
	for i := range as {
		as[i] = randomDense(r, n, n)
		bs[i] = randomDense(r, n, n)
		cs[i] = mat.New(n, n)
		wants[i] = mat.New(n, n)
		gemmNaive(false, false, 1, as[i], bs[i], 0, wants[i])
	}

	done := make(chan struct{})
	go func() {
		parallel.For(tasks, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				Gemm(false, false, 1, as[i], bs[i], 0, cs[i])
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Gemm inside parallel.For deadlocked")
	}
	for i := range cs {
		if !cs[i].EqualApprox(wants[i], 1e-11) {
			t.Fatalf("task %d: nested Gemm result corrupted", i)
		}
	}
}

func TestGemmTN(t *testing.T) {
	r := rng.New(17)
	a := randomDense(r, 40, 24)
	b := randomDense(r, 40, 32)
	c := randomDense(r, 24, 32)
	want := c.Clone()
	GemmTN(1.5, a, b, 0.5, c)
	gemmNaive(true, false, 1.5, a, b, 0.5, want)
	if !c.EqualApprox(want, 1e-12) {
		t.Fatal("GemmTN disagrees with naive reference")
	}
}

func TestSyrk(t *testing.T) {
	r := rng.New(19)
	for _, sz := range []struct{ k, n int }{{30, 20}, {100, 70}, {64, 65}} {
		a := randomDense(r, sz.k, sz.n)
		// Symmetric starting C so the beta term is well-defined in both
		// triangles.
		c := mat.New(sz.n, sz.n)
		for i := 0; i < sz.n; i++ {
			for j := i; j < sz.n; j++ {
				v := 2*r.Float64() - 1
				c.Set(i, j, v)
				c.Set(j, i, v)
			}
		}
		want := c.Clone()
		Syrk(1.25, a, 0.5, c)
		gemmNaive(true, false, 1.25, a, a, 0.5, want)
		if !c.EqualApprox(want, 1e-11) {
			t.Fatalf("Syrk(%d,%d) disagrees with A^T A reference", sz.k, sz.n)
		}
		// Result must be exactly symmetric (lower mirrored from upper).
		for i := 0; i < sz.n; i++ {
			for j := i + 1; j < sz.n; j++ {
				if c.At(i, j) != c.At(j, i) {
					t.Fatalf("Syrk result not symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

//go:build amd64 && !purego

#include "textflag.h"

// func dgemm8x4asm(kc int64, a, b, c *float64, ldc int64)
//
// C[r + q*ldc] += sum_k a[8k+r] * b[4k+q] for r in [0,8), q in [0,4).
// a is an mr=8 packed micro-panel (k-major stripes of 8), b an nr=4 packed
// micro-panel (k-major stripes of 4); see gemm_packed.go for the layout.
// Eight ymm accumulators hold the full 8x4 tile across the k loop; each
// iteration issues 2 vector loads, 4 broadcasts and 8 FMAs (64 flops).
TEXT ·dgemm8x4asm(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8              // ldc in bytes

	VXORPD Y0, Y0, Y0        // C[0:4, 0]
	VXORPD Y1, Y1, Y1        // C[4:8, 0]
	VXORPD Y2, Y2, Y2        // C[0:4, 1]
	VXORPD Y3, Y3, Y3        // C[4:8, 1]
	VXORPD Y4, Y4, Y4        // C[0:4, 2]
	VXORPD Y5, Y5, Y5        // C[4:8, 2]
	VXORPD Y6, Y6, Y6        // C[0:4, 3]
	VXORPD Y7, Y7, Y7        // C[4:8, 3]

	TESTQ CX, CX
	JE    write

loop:
	VMOVUPD      (SI), Y8    // a[0:4]
	VMOVUPD      32(SI), Y9  // a[4:8]
	VBROADCASTSD (DI), Y10   // b[0]
	VBROADCASTSD 8(DI), Y11  // b[1]
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(DI), Y12 // b[2]
	VBROADCASTSD 24(DI), Y13 // b[3]
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $64, SI
	ADDQ         $32, DI
	DECQ         CX
	JNE          loop

write:
	MOVQ    DX, R9
	VMOVUPD (R9), Y8
	VADDPD  Y0, Y8, Y8
	VMOVUPD Y8, (R9)
	VMOVUPD 32(R9), Y9
	VADDPD  Y1, Y9, Y9
	VMOVUPD Y9, 32(R9)
	ADDQ    R8, R9
	VMOVUPD (R9), Y8
	VADDPD  Y2, Y8, Y8
	VMOVUPD Y8, (R9)
	VMOVUPD 32(R9), Y9
	VADDPD  Y3, Y9, Y9
	VMOVUPD Y9, 32(R9)
	ADDQ    R8, R9
	VMOVUPD (R9), Y8
	VADDPD  Y4, Y8, Y8
	VMOVUPD Y8, (R9)
	VMOVUPD 32(R9), Y9
	VADDPD  Y5, Y9, Y9
	VMOVUPD Y9, 32(R9)
	ADDQ    R8, R9
	VMOVUPD (R9), Y8
	VADDPD  Y6, Y8, Y8
	VMOVUPD Y8, (R9)
	VMOVUPD 32(R9), Y9
	VADDPD  Y7, Y9, Y9
	VMOVUPD Y9, 32(R9)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

package blas

import (
	"math"
	"testing"

	"questgo/internal/rng"
)

// FuzzGemmPackedVsNaive drives the packed GEMM (and the small-product
// fallback it dispatches to) against the reference triple loop over
// fuzzer-chosen shapes, transpose flags, scalars and data seeds. The two
// must agree to 1e-12 relative to the accumulation length — the packed
// kernel reorders the sum but performs the same floating-point work.
func FuzzGemmPackedVsNaive(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint64(1), 1.0, 0.0, false, false)
	f.Add(uint8(7), uint8(5), uint8(3), uint64(2), 1.3, 0.7, true, false)
	f.Add(uint8(64), uint8(64), uint8(64), uint64(3), -0.5, 1.0, false, true)
	f.Add(uint8(33), uint8(17), uint8(65), uint64(4), 2.0, -1.0, true, true)
	f.Add(uint8(96), uint8(2), uint8(47), uint64(5), 1.0, 0.5, false, false)
	f.Fuzz(func(t *testing.T, m8, n8, k8 uint8, seed uint64, alpha, beta float64, ta, tb bool) {
		m := int(m8%96) + 1
		n := int(n8%96) + 1
		k := int(k8%96) + 1
		// Relative comparison: non-finite or huge scalars only probe
		// float64 overflow, not the kernel.
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 16 ||
			math.IsNaN(beta) || math.IsInf(beta, 0) || math.Abs(beta) > 16 {
			t.Skip("degenerate scalars")
		}
		r := rng.New(seed)
		ar, ac := m, k
		if ta {
			ar, ac = k, m
		}
		br, bc := k, n
		if tb {
			br, bc = n, k
		}
		a := randomDense(r, ar, ac)
		b := randomDense(r, br, bc)
		got := randomDense(r, m, n)
		want := got.Clone()
		Gemm(ta, tb, alpha, a, b, beta, got)
		gemmNaive(ta, tb, alpha, a, b, beta, want)
		tol := 1e-12 * float64(k) * (math.Abs(alpha) + math.Abs(beta) + 1)
		for j := 0; j < n; j++ {
			gc, wc := got.Col(j), want.Col(j)
			for i := range gc {
				if d := math.Abs(gc[i] - wc[i]); d > tol || math.IsNaN(d) {
					t.Fatalf("C(%d,%d): packed %v vs naive %v (|diff| %.3e > tol %.3e) m=%d n=%d k=%d ta=%v tb=%v alpha=%v beta=%v",
						i, j, gc[i], wc[i], d, tol, m, n, k, ta, tb, alpha, beta)
				}
			}
		}
	})
}

//go:build race

package blas

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on its own, so allocation-count assertions are
// skipped under -race.
const raceEnabled = true

package blas

import (
	"fmt"

	"questgo/internal/mat"
)

// syrkNB is the column-block width of the Syrk sweep: each block update is
// one Gemm over the upper-trapezoidal slice, so roughly half the flops of a
// full Gemm are skipped while all of them run on the packed kernel.
const syrkNB = 64

// Syrk computes the symmetric rank-k product C = alpha*A^T*A + beta*C.
//
// Only the upper triangle of the input C is referenced; on return both
// triangles hold the (symmetric) result, the lower one mirrored from the
// upper. The sweep walks C in syrkNB-wide column blocks and computes the
// upper-trapezoidal slice C[0:j1, j0:j1] with one Gemm each, halving the
// work of the naive full product. It backs the UDT orthogonality norms
// (||Q^T Q - I||_F), where the full Gemm would redundantly compute every
// off-diagonal entry twice.
func Syrk(alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("blas: Syrk dimension mismatch: A is %dx%d but C is %dx%d (want %dx%d)", a.Rows, a.Cols, c.Rows, c.Cols, n, n))
	}
	if n == 0 {
		return
	}
	k := a.Rows
	for j0 := 0; j0 < n; j0 += syrkNB {
		j1 := min(j0+syrkNB, n)
		Gemm(true, false, alpha,
			a.View(0, 0, k, j1), a.View(0, j0, k, j1-j0),
			beta, c.View(0, j0, j1, j1-j0))
	}
	// Mirror the upper triangle into the lower.
	for j := 0; j < n-1; j++ {
		col := c.Col(j)
		for i := j + 1; i < n; i++ {
			col[i] = c.At(j, i)
		}
	}
}

package blas

import (
	"math"
	"testing"
	"testing/quick"

	"questgo/internal/mat"
	"questgo/internal/rng"
)

func randomDense(r *rng.Rand, rows, cols int) *mat.Dense {
	m := mat.New(rows, cols)
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

// gemmNaive is the reference triple loop for op(A)*op(B).
func gemmNaive(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	opA := func(i, k int) float64 {
		if transA {
			return a.At(k, i)
		}
		return a.At(i, k)
	}
	opB := func(k, j int) float64 {
		if transB {
			return b.At(j, k)
		}
		return b.At(k, j)
	}
	kdim := a.Cols
	if transA {
		kdim = a.Rows
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			s := 0.0
			for k := 0; k < kdim; k++ {
				s += opA(i, k) * opB(k, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %v", got)
	}
	if Dot(nil, nil) != 0 {
		t.Fatal("empty Dot should be 0")
	}
}

func TestAxpyScal(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	Scal(0.5, y)
	if y[0] != 1.5 || y[2] != 3.5 {
		t.Fatalf("Scal = %v", y)
	}
}

func TestNrm2Robust(t *testing.T) {
	// Values that would overflow a naive sum of squares.
	x := []float64{3e180, 4e180}
	got := Nrm2(x)
	if math.IsInf(got, 0) || math.Abs(got-5e180)/5e180 > 1e-14 {
		t.Fatalf("Nrm2 = %v", got)
	}
	// And values that would underflow.
	x = []float64{3e-170, 4e-170}
	got = Nrm2(x)
	if got == 0 || math.Abs(got-5e-170)/5e-170 > 1e-14 {
		t.Fatalf("Nrm2 underflow = %v", got)
	}
	if Nrm2(nil) != 0 {
		t.Fatal("empty Nrm2")
	}
}

func TestIdamax(t *testing.T) {
	if Idamax([]float64{1, -5, 3}) != 1 {
		t.Fatal("Idamax wrong")
	}
	if Idamax(nil) != -1 {
		t.Fatal("Idamax empty")
	}
}

func TestSwap(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	Swap(x, y)
	if x[0] != 3 || y[1] != 2 {
		t.Fatal("Swap wrong")
	}
}

func TestGemvNoTrans(t *testing.T) {
	r := rng.New(1)
	a := randomDense(r, 5, 3)
	x := []float64{1, -2, 0.5}
	y := make([]float64, 5)
	Gemv(false, 1, a, x, 0, y)
	for i := 0; i < 5; i++ {
		want := a.At(i, 0)*x[0] + a.At(i, 1)*x[1] + a.At(i, 2)*x[2]
		if math.Abs(y[i]-want) > 1e-14 {
			t.Fatalf("Gemv[%d] = %v want %v", i, y[i], want)
		}
	}
}

func TestGemvTrans(t *testing.T) {
	r := rng.New(2)
	a := randomDense(r, 4, 3)
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 10, 10}
	Gemv(true, 2, a, x, 1, y)
	for j := 0; j < 3; j++ {
		want := 10.0
		for i := 0; i < 4; i++ {
			want += 2 * a.At(i, j) * x[i]
		}
		if math.Abs(y[j]-want) > 1e-13 {
			t.Fatalf("Gemv^T[%d] = %v want %v", j, y[j], want)
		}
	}
}

func TestGer(t *testing.T) {
	a := mat.New(2, 3)
	Ger(2, []float64{1, 2}, []float64{3, 4, 5}, a)
	if a.At(1, 2) != 20 || a.At(0, 0) != 6 {
		t.Fatalf("Ger wrong: %v", a)
	}
}

func TestGemmAllTranspositions(t *testing.T) {
	r := rng.New(3)
	m, n, k := 7, 9, 5
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			var a, b *mat.Dense
			if ta {
				a = randomDense(r, k, m)
			} else {
				a = randomDense(r, m, k)
			}
			if tb {
				b = randomDense(r, n, k)
			} else {
				b = randomDense(r, k, n)
			}
			c := randomDense(r, m, n)
			want := c.Clone()
			Gemm(ta, tb, 1.3, a, b, 0.7, c)
			gemmNaive(ta, tb, 1.3, a, b, 0.7, want)
			if !c.EqualApprox(want, 1e-12) {
				t.Fatalf("Gemm mismatch for transA=%v transB=%v", ta, tb)
			}
		}
	}
}

func TestGemmLargeBlocked(t *testing.T) {
	// Exercise the k-block and m-block paths (dims larger than block sizes).
	r := rng.New(4)
	m, n, k := gemmMC+37, gemmNC+3, gemmKC+19
	a := randomDense(r, m, k)
	b := randomDense(r, k, n)
	c := mat.New(m, n)
	want := mat.New(m, n)
	Gemm(false, false, 1, a, b, 0, c)
	gemmNaive(false, false, 1, a, b, 0, want)
	if !c.EqualApprox(want, 1e-10) {
		t.Fatal("blocked Gemm mismatch on large matrix")
	}
}

func TestGemmAlphaZero(t *testing.T) {
	r := rng.New(5)
	a := randomDense(r, 3, 3)
	b := randomDense(r, 3, 3)
	c := randomDense(r, 3, 3)
	want := c.Clone()
	want.Scale(0.5)
	Gemm(false, false, 0, a, b, 0.5, c)
	if !c.EqualApprox(want, 1e-15) {
		t.Fatal("alpha=0 should only scale C")
	}
}

func TestGemmDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(false, false, 1, mat.New(2, 3), mat.New(4, 2), 0, mat.New(2, 2))
}

func TestTrsmLowerUnit(t *testing.T) {
	r := rng.New(6)
	n := 12
	l := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	x := randomDense(r, n, 4)
	b := mat.New(n, 4)
	Gemm(false, false, 1, l, x, 0, b)
	Trsm(false, false, true, 1, l, b)
	if !b.EqualApprox(x, 1e-10) {
		t.Fatal("lower unit Trsm failed")
	}
}

func TestTrsmUpper(t *testing.T) {
	r := rng.New(7)
	n := 12
	u := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		u.Set(i, i, 2+r.Float64())
		for j := 0; j < i; j++ {
			u.Set(i, j, 0)
		}
	}
	x := randomDense(r, n, 3)
	b := mat.New(n, 3)
	Gemm(false, false, 1, u, x, 0, b)
	Trsm(true, false, false, 1, u, b)
	if !b.EqualApprox(x, 1e-10) {
		t.Fatal("upper Trsm failed")
	}
}

func TestTrsmTransposed(t *testing.T) {
	r := rng.New(8)
	n := 10
	u := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		u.Set(i, i, 2+r.Float64())
		for j := 0; j < i; j++ {
			u.Set(i, j, 0)
		}
	}
	x := randomDense(r, n, 3)
	b := mat.New(n, 3)
	// B = U^T X; solve U^T X = B.
	Gemm(true, false, 1, u, x, 0, b)
	Trsm(true, true, false, 1, u, b)
	if !b.EqualApprox(x, 1e-10) {
		t.Fatal("transposed upper Trsm failed")
	}
	// Lower-unit transposed.
	l := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	b2 := mat.New(n, 3)
	Gemm(true, false, 1, l, x, 0, b2)
	Trsm(false, true, true, 1, l, b2)
	if !b2.EqualApprox(x, 1e-10) {
		t.Fatal("transposed lower unit Trsm failed")
	}
}

// Property: Gemm agrees with the naive triple loop on random shapes.
func TestQuickGemmMatchesNaive(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		m, n, k := 1+r.Intn(24), 1+r.Intn(24), 1+r.Intn(24)
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		c := randomDense(r, m, n)
		want := c.Clone()
		Gemm(false, false, 1, a, b, 1, c)
		gemmNaive(false, false, 1, a, b, 1, want)
		return c.EqualApprox(want, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)*C == A*(B*C) within roundoff.
func TestQuickGemmAssociative(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0xabcdef)
		n := 2 + r.Intn(16)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		c := randomDense(r, n, n)
		ab := mat.New(n, n)
		Gemm(false, false, 1, a, b, 0, ab)
		abc1 := mat.New(n, n)
		Gemm(false, false, 1, ab, c, 0, abc1)
		bc := mat.New(n, n)
		Gemm(false, false, 1, b, c, 0, bc)
		abc2 := mat.New(n, n)
		Gemm(false, false, 1, a, bc, 0, abc2)
		return abc1.EqualApprox(abc2, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package mat

import (
	"strings"
	"testing"
)

func TestNewFromColMajor(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromColMajor(2, 3, data)
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 2) != 6 {
		t.Fatal("column-major wrapping wrong")
	}
	// Shares storage.
	data[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("NewFromColMajor must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short data should panic")
		}
	}()
	NewFromColMajor(3, 3, data)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestZeroAndSetIdentity(t *testing.T) {
	m := New(3, 3)
	m.Set(1, 2, 5)
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
	m.Set(0, 1, 7)
	m.SetIdentity()
	if m.At(0, 1) != 0 || m.At(0, 0) != 1 || m.At(2, 2) != 1 {
		t.Fatal("SetIdentity failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetIdentity on non-square should panic")
		}
	}()
	New(2, 3).SetIdentity()
}

func TestStringRendering(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1.5)
	s := m.String()
	if !strings.Contains(s, "2x2") || !strings.Contains(s, "1.5") {
		t.Fatalf("String = %q", s)
	}
	big := New(20, 20)
	if !strings.Contains(big.String(), "elided") {
		t.Fatal("large matrices should be elided")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(3, 3)
	for name, fn := range map[string]func(){
		"CopyFrom":  func() { a.CopyFrom(b) },
		"Add":       func() { a.Add(1, b) },
		"ScaleRows": func() { a.ScaleRows([]float64{1}) },
		"ScaleCols": func() { a.ScaleCols([]float64{1}) },
		"RelDiff":   func() { RelDiff(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched dims should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEqualApproxDimensionMismatch(t *testing.T) {
	if New(2, 2).EqualApprox(New(3, 3), 1) {
		t.Fatal("different shapes can never be equal")
	}
}

func TestRelDiffZeroDenominator(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 3)
	z := New(2, 2)
	if RelDiff(a, z) != 3 {
		t.Fatalf("RelDiff against zero matrix should be absolute: %v", RelDiff(a, z))
	}
}

package mat

import (
	"math"
	"testing"
	"testing/quick"

	"questgo/internal/rng"
)

func randomDense(r *rng.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatalf("not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(5, 7)
	m.Set(2, 3, 42.5)
	if m.At(2, 3) != 42.5 {
		t.Fatalf("At(2,3) = %v", m.At(2, 3))
	}
	if m.Data[2+3*m.Stride] != 42.5 {
		t.Fatal("column-major layout violated")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatal("Diag wrong")
	}
	got := d.Diagonal(nil)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Diagonal = %v", got)
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New(6, 6)
	v := m.View(2, 3, 2, 2)
	v.Set(0, 0, 9)
	if m.At(2, 3) != 9 {
		t.Fatal("view does not alias parent")
	}
	if v.Rows != 2 || v.Cols != 2 {
		t.Fatal("view dims wrong")
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 3).View(1, 1, 3, 1)
}

func TestTranspose(t *testing.T) {
	r := rng.New(1)
	m := randomDense(r, 4, 7)
	tr := m.Transpose()
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	back := tr.Transpose()
	if !back.EqualApprox(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestScaleRowsCols(t *testing.T) {
	r := rng.New(2)
	m := randomDense(r, 3, 3)
	orig := m.Clone()
	dr := []float64{2, 3, 4}
	dc := []float64{5, 6, 7}
	m.ScaleRows(dr)
	m.ScaleCols(dc)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := orig.At(i, j) * dr[i] * dc[j]
			if math.Abs(m.At(i, j)-want) > 1e-15 {
				t.Fatalf("(%d,%d): got %v want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestAddScale(t *testing.T) {
	r := rng.New(3)
	a := randomDense(r, 4, 4)
	b := randomDense(r, 4, 4)
	sum := a.Clone()
	sum.Add(2, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := a.At(i, j) + 2*b.At(i, j)
			if math.Abs(sum.At(i, j)-want) > 1e-15 {
				t.Fatal("Add wrong")
			}
		}
	}
	sum.Scale(0.5)
	if math.Abs(sum.At(1, 2)-(a.At(1, 2)+2*b.At(1, 2))/2) > 1e-15 {
		t.Fatal("Scale wrong")
	}
}

func TestFrobNormOverflowSafe(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1e200)
	m.Set(1, 1, 1e200)
	got := m.FrobNorm()
	want := 1e200 * math.Sqrt2
	if math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("FrobNorm = %v want %v", got, want)
	}
	if math.IsInf(got, 0) {
		t.Fatal("FrobNorm overflowed")
	}
}

func TestRelDiff(t *testing.T) {
	a := Identity(3)
	b := Identity(3)
	if RelDiff(a, b) != 0 {
		t.Fatal("identical matrices should have zero RelDiff")
	}
	b.Set(0, 0, 1.1)
	d := RelDiff(a, b)
	if d <= 0 || d > 0.2 {
		t.Fatalf("RelDiff = %v", d)
	}
}

func TestMaxAbs(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, -7)
	m.Set(1, 0, 3)
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

// Property: transpose preserves the Frobenius norm.
func TestQuickTransposeNorm(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + r.Uint64()%64)
		rows := 1 + rr.Intn(20)
		cols := 1 + rr.Intn(20)
		m := randomDense(rr, rows, cols)
		return math.Abs(m.FrobNorm()-m.Transpose().FrobNorm()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is independent of the original.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		m := randomDense(rr, 1+rr.Intn(10), 1+rr.Intn(10))
		c := m.Clone()
		m.Set(0, 0, 1234)
		return c.At(0, 0) != 1234 || m.Rows == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package mat

import (
	"fmt"
	"math/bits"
	"sync"
)

// Scratch matrix pool.
//
// The Green's function pipeline allocates the same handful of N x N
// temporaries on every evaluation (stratification work matrices, QR panel
// buffers, transposed copies for the final solve). At N = 1024 each one is
// 8 MiB, so per-call allocation both churns the GC and loses cache warmth.
// GetScratch/PutScratch recycle those buffers through size-class pools:
// class k holds backing slices of capacity 2^k floats, so a buffer returned
// for one shape can serve any later request that rounds up to the same
// class.

// scratchClasses bounds the largest pooled buffer at 2^(scratchClasses-1)
// floats (= 2 GiB of float64); larger requests fall through to plain New.
const scratchClasses = 28

var scratchPools [scratchClasses]sync.Pool

// scratchClass returns the size class whose buffers hold at least n floats.
func scratchClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetScratch returns a zeroed rows x cols matrix with a tight stride,
// drawing the backing storage from the scratch pool when possible. Pair it
// with PutScratch when the matrix is dead; a matrix that escapes (is
// returned to a caller) should be allocated with New instead.
func GetScratch(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	need := rows * cols
	class := scratchClass(need)
	if class >= scratchClasses {
		return New(rows, cols)
	}
	v := scratchPools[class].Get()
	if v == nil {
		d := &Dense{Rows: rows, Cols: cols, Stride: max(rows, 1), Data: make([]float64, 1<<class)[:need]}
		debugTrackGet(d)
		return d
	}
	d := v.(*Dense)
	d.Rows, d.Cols, d.Stride = rows, cols, max(rows, 1)
	d.Data = d.Data[:cap(d.Data)][:need]
	for i := range d.Data {
		d.Data[i] = 0
	}
	debugTrackGet(d)
	return d
}

// PutScratch returns a matrix obtained from GetScratch to the pool. The
// caller must not use d (or any view of it) afterwards. Matrices from other
// sources are accepted as long as their backing capacity is sane; they are
// filed under the largest class their capacity covers.
func PutScratch(d *Dense) {
	if d == nil || cap(d.Data) == 0 {
		return
	}
	class := bits.Len(uint(cap(d.Data))) - 1 // floor(log2): cap >= 2^class
	if class >= scratchClasses {
		return
	}
	debugTrackPut(d)
	scratchPools[class].Put(d)
}

// TransposeInto writes the transpose of m into dst (dst must be Cols x Rows
// and must not alias m). Unlike Transpose it performs no allocation, so hot
// paths can pair it with GetScratch.
//
//qmc:hot
func (m *Dense) TransposeInto(dst *Dense) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("mat: TransposeInto dimension mismatch: src is %dx%d but dst is %dx%d (want %dx%d)", m.Rows, m.Cols, dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			dst.Data[j+i*dst.Stride] = v
		}
	}
}

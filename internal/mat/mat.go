// Package mat provides the column-major dense matrix type shared by the
// BLAS/LAPACK-style kernels and the DQMC code.
//
// Storage is column-major (LAPACK convention): element (i, j) lives at
// Data[i + j*Stride]. The QR-based stratification algorithms at the heart of
// the paper are column oriented — column norms, column pivoting, Householder
// panels — so stride-1 columns keep the hot loops contiguous.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a column-major matrix view over a float64 slice.
type Dense struct {
	Rows   int
	Cols   int
	Stride int // distance between consecutive columns; >= Rows
	Data   []float64
}

// New allocates a zeroed Rows x Cols matrix with a tight stride.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Stride: max(rows, 1), Data: make([]float64, rows*cols)}
}

// NewFromColMajor wraps existing column-major data (not copied).
func NewFromColMajor(rows, cols int, data []float64) *Dense {
	if len(data) < rows*cols {
		panic(fmt.Sprintf("mat: data too short: %dx%d needs %d floats, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Dense{Rows: rows, Cols: cols, Stride: max(rows, 1), Data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i+i*m.Stride] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Data[i+i*m.Stride] = v
	}
	return m
}

// At returns element (i, j). Bounds are checked only by the slice access.
func (m *Dense) At(i, j int) float64 { return m.Data[i+j*m.Stride] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i+j*m.Stride] = v }

// Col returns the stride-1 slice backing column j.
func (m *Dense) Col(j int) []float64 { return m.Data[j*m.Stride : j*m.Stride+m.Rows] }

// View returns a sub-matrix view of rows [i, i+r) and columns [j, j+c)
// sharing storage with m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("mat: view out of range (%d,%d,%d,%d) of %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i+j*m.Stride:]}
}

// Clone returns a deep copy with a tight stride.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	c.CopyFrom(m)
	return c
}

// CopyFrom copies src into m; dimensions must match.
//
//qmc:hot
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch: dst is %dx%d but src is %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// SetIdentity writes the identity into a square matrix.
func (m *Dense) SetIdentity() {
	if m.Rows != m.Cols {
		panic("mat: SetIdentity on non-square matrix")
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Data[i+i*m.Stride] = 1
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	t := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			t.Data[j+i*t.Stride] = v
		}
	}
	return t
}

// Scale multiplies every element by alpha.
func (m *Dense) Scale(alpha float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] *= alpha
		}
	}
}

// Add accumulates alpha*b into m; dimensions must match.
//
//qmc:hot
func (m *Dense) Add(alpha float64, b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Add dimension mismatch: m is %dx%d but b is %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		mc, bc := m.Col(j), b.Col(j)
		for i := range mc {
			mc[i] += alpha * bc[i]
		}
	}
}

// ScaleRows multiplies row i by d[i] (left multiplication by diag(d)).
//
//qmc:hot
func (m *Dense) ScaleRows(d []float64) {
	if len(d) != m.Rows {
		panic(fmt.Sprintf("mat: ScaleRows length mismatch: m has %d rows but len(d)=%d", m.Rows, len(d)))
	}
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] *= d[i]
		}
	}
}

// ScaleCols multiplies column j by d[j] (right multiplication by diag(d)).
//
//qmc:hot
func (m *Dense) ScaleCols(d []float64) {
	if len(d) != m.Cols {
		panic(fmt.Sprintf("mat: ScaleCols length mismatch: m has %d cols but len(d)=%d", m.Cols, len(d)))
	}
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		s := d[j]
		for i := range col {
			col[i] *= s
		}
	}
}

// Diagonal copies the main diagonal into dst (or allocates if dst is nil).
func (m *Dense) Diagonal(dst []float64) []float64 {
	n := min(m.Rows, m.Cols)
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		dst[i] = m.Data[i+i*m.Stride]
	}
	return dst
}

// FrobNorm returns the Frobenius norm with intermediate scaling to avoid
// overflow for the graded matrices produced by stratification.
func (m *Dense) FrobNorm() float64 {
	var scale, ssq float64 = 0, 1
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for _, v := range col {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				ssq = 1 + ssq*(scale/a)*(scale/a)
				scale = a
			} else {
				ssq += (a / scale) * (a / scale)
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		mc, bc := m.Col(j), b.Col(j)
		for i := range mc {
			if math.Abs(mc[i]-bc[i]) > tol {
				return false
			}
		}
	}
	return true
}

// RelDiff returns ||m - b||_F / ||b||_F, the metric of the paper's Figure 2.
func RelDiff(m, b *Dense) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: RelDiff dimension mismatch: m is %dx%d but b is %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	d := m.Clone()
	d.Add(-1, b)
	nb := b.FrobNorm()
	if nb == 0 {
		return d.FrobNorm()
	}
	return d.FrobNorm() / nb
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d", m.Rows, m.Cols)
	if m.Rows > 12 || m.Cols > 12 {
		sb.WriteString(" (elided)")
		return sb.String()
	}
	sb.WriteByte('\n')
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% 12.5e ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

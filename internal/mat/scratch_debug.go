//go:build qmcdebug

package mat

import (
	"fmt"
	"sync"
)

// DebugPool reports whether scratch-pool double-put bookkeeping is
// compiled in (qmcdebug builds only).
const DebugPool = true

// The bookkeeping lives here rather than in internal/check because check
// imports mat; a tagged hook pair keeps the dependency one-way. State is
// a checked-out set keyed by matrix identity: a Put of a matrix that is
// already pooled is the use-after-free precursor the sanitizer exists to
// catch — the next Get would hand two owners the same backing array.
var (
	scratchMu   sync.Mutex
	scratchLive = map[*Dense]bool{} // true = checked out, false = in pool
)

func debugTrackGet(d *Dense) {
	scratchMu.Lock()
	scratchLive[d] = true
	scratchMu.Unlock()
}

func debugTrackPut(d *Dense) {
	scratchMu.Lock()
	defer scratchMu.Unlock()
	if live, seen := scratchLive[d]; seen && !live {
		panic(fmt.Sprintf("mat: PutScratch double put of %dx%d scratch matrix", d.Rows, d.Cols))
	}
	scratchLive[d] = false
}

package mat

import (
	"testing"
)

func TestScratchClassBoundaries(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11}, {4096, 12},
	}
	for _, c := range cases {
		if got := scratchClass(c.n); got != c.class {
			t.Fatalf("scratchClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestScratchReuseAndZeroing(t *testing.T) {
	d := GetScratch(64, 64)
	for i := range d.Data {
		d.Data[i] = 3.25
	}
	PutScratch(d)
	// 60*60 = 3600 rounds up to the same 2^12 size class, so (absent a GC
	// between Put and Get) the same descriptor comes back — and it must be
	// zeroed despite the dirty contents we left in it.
	e := GetScratch(60, 60)
	if e.Rows != 60 || e.Cols != 60 || e.Stride != 60 {
		t.Fatalf("bad scratch shape %dx%d stride %d", e.Rows, e.Cols, e.Stride)
	}
	for i, v := range e.Data {
		if v != 0 {
			t.Fatalf("scratch not zeroed at %d: %v", i, v)
		}
	}
	if e != d {
		t.Log("scratch descriptor not reused (pool drained by GC?)")
	}
	PutScratch(e)
}

func TestScratchDegenerateShapes(t *testing.T) {
	for _, s := range []struct{ r, c int }{{0, 0}, {0, 5}, {5, 0}, {1, 1}} {
		d := GetScratch(s.r, s.c)
		if d.Rows != s.r || d.Cols != s.c || len(d.Data) != s.r*s.c {
			t.Fatalf("GetScratch(%d,%d) gave %dx%d len %d", s.r, s.c, d.Rows, d.Cols, len(d.Data))
		}
		PutScratch(d)
	}
}

func TestTransposeInto(t *testing.T) {
	m := New(3, 5)
	for j := 0; j < 5; j++ {
		for i := 0; i < 3; i++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	dst := New(5, 3)
	m.TransposeInto(dst)
	want := m.Transpose()
	if !dst.EqualApprox(want, 0) {
		t.Fatal("TransposeInto disagrees with Transpose")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension-mismatch panic")
		}
	}()
	m.TransposeInto(New(3, 5))
}

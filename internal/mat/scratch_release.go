//go:build !qmcdebug

package mat

// DebugPool reports whether scratch-pool double-put bookkeeping is
// compiled in (qmcdebug builds only).
const DebugPool = false

func debugTrackGet(d *Dense) {}

func debugTrackPut(d *Dense) {}

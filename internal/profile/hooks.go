package profile

import (
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
)

// The hooks below wire the standard Go profilers into the command-line
// tools (-cpuprofile / -memprofile / -trace flags): obs answers "which DQMC
// phase is slow", these answer "which function inside it".

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops it and closes the file.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profile: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// StartTrace begins a runtime execution trace written to path and returns
// the function that stops it and closes the file.
func StartTrace(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profile: start trace: %w", err)
	}
	return func() {
		trace.Stop()
		f.Close()
	}, nil
}

// WriteHeapProfile dumps the current heap profile to path (call at the end
// of a run).
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

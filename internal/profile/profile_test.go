package profile

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndDuration(t *testing.T) {
	p := New()
	p.Add(Wrapping, 10*time.Millisecond)
	p.Add(Wrapping, 5*time.Millisecond)
	if p.Duration(Wrapping) != 15*time.Millisecond {
		t.Fatalf("Duration = %v", p.Duration(Wrapping))
	}
	if p.Total() != 15*time.Millisecond {
		t.Fatalf("Total = %v", p.Total())
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	p := New()
	p.Add(DelayedUpdate, 1*time.Second)
	p.Add(Stratification, 2*time.Second)
	p.Add(Measurement, 1*time.Second)
	pc := p.Percentages()
	var total float64
	for _, v := range pc {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("percentages sum to %v", total)
	}
	if pc[Stratification] != 50 {
		t.Fatalf("stratification share = %v", pc[Stratification])
	}
}

func TestEmptyProfile(t *testing.T) {
	p := New()
	pc := p.Percentages()
	for _, v := range pc {
		if v != 0 {
			t.Fatal("empty profile should have zero percentages")
		}
	}
}

func TestNilProfileIsNoop(t *testing.T) {
	var p *Profile
	p.Add(Wrapping, time.Second) // must not panic
	done := p.Track(Clustering)
	done()
	if p.Duration(Wrapping) != 0 || p.Total() != 0 {
		t.Fatal("nil profile should report zero")
	}
}

func TestTrack(t *testing.T) {
	p := New()
	done := p.Track(Measurement)
	time.Sleep(2 * time.Millisecond)
	done()
	if p.Duration(Measurement) <= 0 {
		t.Fatal("Track recorded nothing")
	}
}

func TestCategoryNames(t *testing.T) {
	want := []string{"Delayed rank-1 update", "Stratification", "Clustering", "Wrapping", "Physical meas."}
	for c := Category(0); c < NumCategories; c++ {
		if c.Name() != want[c] {
			t.Fatalf("category %d name %q", c, c.Name())
		}
	}
	if Category(99).Name() != "unknown" {
		t.Fatal("out-of-range category name")
	}
}

func TestTableOutput(t *testing.T) {
	p := New()
	p.Add(Stratification, 3*time.Second)
	p.Add(Wrapping, time.Second)
	tbl := p.Table()
	if !strings.Contains(tbl, "Stratification") || !strings.Contains(tbl, "75.0%") {
		t.Fatalf("table output:\n%s", tbl)
	}
}

func TestConcurrentAdd(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Add(Clustering, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p.Duration(Clustering) != 8000*time.Microsecond {
		t.Fatalf("concurrent adds lost time: %v", p.Duration(Clustering))
	}
}

// Package profile accumulates wall-clock time per DQMC phase, reproducing
// the breakdown of the paper's Table I (delayed update, stratification,
// clustering, wrapping, physical measurements).
package profile

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"questgo/internal/obs"
)

// Category labels one row of Table I.
type Category int

const (
	DelayedUpdate Category = iota
	Stratification
	Clustering
	Wrapping
	Measurement
	NumCategories
)

// Name returns the paper's row label for the category.
func (c Category) Name() string {
	switch c {
	case DelayedUpdate:
		return "Delayed rank-1 update"
	case Stratification:
		return "Stratification"
	case Clustering:
		return "Clustering"
	case Wrapping:
		return "Wrapping"
	case Measurement:
		return "Physical meas."
	}
	return "unknown"
}

// Profile accumulates durations. Safe for concurrent use.
type Profile struct {
	mu sync.Mutex
	d  [NumCategories]time.Duration
}

// New returns an empty profile.
func New() *Profile { return &Profile{} }

// Add accumulates d into category c. A nil profile is a no-op, so timing
// can be disabled by simply not providing one.
func (p *Profile) Add(c Category, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.d[c] += d
	p.mu.Unlock()
}

// Track starts a timer for category c and returns a function that stops it;
// use as `defer p.Track(profile.Wrapping)()`.
func (p *Profile) Track(c Category) func() {
	if p == nil {
		return func() {}
	}
	start := time.Now()
	return func() { p.Add(c, time.Since(start)) }
}

// Duration returns the accumulated time for category c.
func (p *Profile) Duration(c Category) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.d[c]
}

// Total returns the sum over all categories.
func (p *Profile) Total() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var t time.Duration
	for _, v := range p.d {
		t += v
	}
	return t
}

// Percentages returns each category's share of the total, in percent.
func (p *Profile) Percentages() [NumCategories]float64 {
	var out [NumCategories]float64
	total := p.Total()
	if total == 0 {
		return out
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, v := range p.d {
		out[i] = 100 * float64(v) / float64(total)
	}
	return out
}

// FromPhases converts an obs per-phase breakdown into the Table-I view:
// wrap -> Wrapping, flush -> DelayedUpdate, cluster -> Clustering,
// refresh -> Stratification, measure -> Measurement. The instrumentation
// lives in obs; this package is now only the paper-facing rendering of it.
func FromPhases(pd obs.PhaseDurations) *Profile {
	p := New()
	p.Add(Wrapping, pd[obs.PhaseWrap])
	p.Add(DelayedUpdate, pd[obs.PhaseFlush])
	p.Add(Clustering, pd[obs.PhaseCluster])
	p.Add(Stratification, pd[obs.PhaseRefresh])
	p.Add(Measurement, pd[obs.PhaseMeasure])
	return p
}

// Table renders the Table-I-style breakdown.
func (p *Profile) Table() string {
	pc := p.Percentages()
	var sb strings.Builder
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&sb, "%-24s %6.1f%%  (%v)\n", c.Name(), pc[c], p.Duration(c).Round(time.Millisecond))
	}
	return sb.String()
}

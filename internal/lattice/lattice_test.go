package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIndexCoordsRoundTrip(t *testing.T) {
	l := NewMultilayer(4, 3, 2, 1, 0.5)
	if l.N() != 24 {
		t.Fatalf("N = %d", l.N())
	}
	for i := 0; i < l.N(); i++ {
		x, y, z := l.Coords(i)
		if l.Index(x, y, z) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestIndexPeriodicWrap(t *testing.T) {
	l := NewSquare(4, 4, 1)
	if l.Index(4, 0, 0) != l.Index(0, 0, 0) {
		t.Fatal("x wrap failed")
	}
	if l.Index(-1, 2, 0) != l.Index(3, 2, 0) {
		t.Fatal("negative x wrap failed")
	}
}

func TestKMatrixSymmetric(t *testing.T) {
	for _, l := range []*Lattice{NewSquare(4, 4, 1), NewSquare(2, 2, 1), NewMultilayer(3, 3, 3, 1, 0.7)} {
		k := l.KMatrix(0.3)
		n := l.N()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if k.At(i, j) != k.At(j, i) {
					t.Fatalf("K not symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestKMatrixStructure(t *testing.T) {
	l := NewSquare(4, 4, 1.5)
	k := l.KMatrix(0.25)
	// Diagonal = -mu.
	if k.At(0, 0) != -0.25 {
		t.Fatalf("diagonal = %v", k.At(0, 0))
	}
	// Nearest neighbors = -t.
	if k.At(l.Index(0, 0, 0), l.Index(1, 0, 0)) != -1.5 {
		t.Fatal("neighbor hopping wrong")
	}
	// Non-neighbors zero.
	if k.At(l.Index(0, 0, 0), l.Index(2, 0, 0)) != 0 {
		t.Fatal("next-nearest hopping should be zero")
	}
	// Row sums: each site has 4 neighbors, so sum = -mu - 4t.
	sum := 0.0
	for j := 0; j < l.N(); j++ {
		sum += k.At(0, j)
	}
	if math.Abs(sum-(-0.25-4*1.5)) > 1e-15 {
		t.Fatalf("row sum = %v", sum)
	}
}

func TestKMatrixTwoSiteDoubleBond(t *testing.T) {
	// On an Nx=2 periodic ring the +x and -x bonds coincide and the
	// matrix element doubles.
	l := NewSquare(2, 1, 1)
	k := l.KMatrix(0)
	if k.At(0, 1) != -2 {
		t.Fatalf("expected doubled bond, got %v", k.At(0, 1))
	}
}

func TestKMatrixMultilayer(t *testing.T) {
	l := NewMultilayer(2, 2, 3, 1, 0.4)
	k := l.KMatrix(0)
	a := l.Index(0, 0, 0)
	b := l.Index(0, 0, 1)
	c := l.Index(0, 0, 2)
	if k.At(a, b) != -0.4 || k.At(b, c) != -0.4 {
		t.Fatal("interlayer hopping wrong")
	}
	// Open boundary in z: no hopping layer 0 <-> layer 2.
	if k.At(a, c) != 0 {
		t.Fatal("z boundary should be open")
	}
}

func TestNeighborsCount(t *testing.T) {
	l := NewSquare(4, 4, 1)
	if got := len(l.Neighbors(5)); got != 4 {
		t.Fatalf("square lattice should have 4 neighbors, got %d", got)
	}
	ml := NewMultilayer(4, 4, 2, 1, 1)
	if got := len(ml.Neighbors(ml.Index(1, 1, 0))); got != 5 {
		t.Fatalf("bottom layer should have 5 neighbors, got %d", got)
	}
}

func TestDisplacementWrap(t *testing.T) {
	l := NewSquare(4, 4, 1)
	dx, dy := l.Displacement(l.Index(3, 0, 0), l.Index(0, 0, 0))
	if dx != -1 || dy != 0 {
		t.Fatalf("displacement = (%d,%d), want (-1,0)", dx, dy)
	}
	dx, dy = l.Displacement(l.Index(2, 2, 0), l.Index(0, 0, 0))
	if dx != 2 || dy != 2 {
		t.Fatalf("displacement = (%d,%d), want (2,2)", dx, dy)
	}
}

func TestMomentumGrid(t *testing.T) {
	l := NewSquare(4, 4, 1)
	pts := l.MomentumGrid()
	if len(pts) != 16 {
		t.Fatalf("got %d k-points", len(pts))
	}
	for _, p := range pts {
		if p.Kx <= -math.Pi-1e-12 || p.Kx > math.Pi+1e-12 {
			t.Fatalf("kx out of zone: %v", p.Kx)
		}
	}
	// Point (2,2) should be (pi, pi).
	p := pts[2+4*2]
	if math.Abs(p.Kx-math.Pi) > 1e-12 || math.Abs(p.Ky-math.Pi) > 1e-12 {
		t.Fatalf("grid point (2,2) = (%v,%v)", p.Kx, p.Ky)
	}
}

func TestSymmetryPath(t *testing.T) {
	l := NewSquare(8, 8, 1)
	idx, arc := l.SymmetryPath()
	if len(idx) != len(arc) {
		t.Fatal("idx and arc lengths differ")
	}
	// Path visits (0,0), (pi,pi), (pi,0) and returns to (0,0).
	if idx[0] != 0 {
		t.Fatal("path must start at (0,0)")
	}
	if idx[len(idx)-1] != 0 {
		t.Fatal("path must end at (0,0)")
	}
	// Arc lengths strictly increasing.
	for i := 1; i < len(arc); i++ {
		if arc[i] <= arc[i-1] {
			t.Fatalf("arc not increasing at %d", i)
		}
	}
	// Contains (pi,pi) = grid (4,4) and (pi,0) = grid (4,0).
	has := func(want int) bool {
		for _, v := range idx {
			if v == want {
				return true
			}
		}
		return false
	}
	if !has(4+8*4) || !has(4) {
		t.Fatal("path misses a high-symmetry point")
	}
}

func TestSymmetryPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd lattice should panic")
		}
	}()
	NewSquare(5, 5, 1).SymmetryPath()
}

// Property: Displacement is antisymmetric under site exchange (mod the
// half-size ambiguity on even lattices, excluded by the filter).
func TestQuickDisplacementAntisymmetric(t *testing.T) {
	l := NewSquare(7, 7, 1) // odd size: no +N/2 == -N/2 ambiguity
	f := func(a, b uint8) bool {
		i, j := int(a)%49, int(b)%49
		dx1, dy1 := l.Displacement(i, j)
		dx2, dy2 := l.Displacement(j, i)
		return dx1 == -dx2 && dy1 == -dy2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

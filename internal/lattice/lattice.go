// Package lattice defines the site geometries DQMC simulates: the periodic
// two-dimensional rectangular lattice that QUEST uses by default, and the
// stacked multilayer geometry (several coupled planes) whose simulation at
// useful aspect ratios is the paper's motivating application.
package lattice

import (
	"fmt"

	"questgo/internal/mat"
)

// Lattice is a periodic Nx x Ny x Layers stack of rectangular planes.
// Layers = 1 reproduces the standard 2D Hubbard geometry. Sites are indexed
// x-fastest: i = x + Nx*(y + Ny*z).
type Lattice struct {
	Nx, Ny, Layers int
	// T is the nearest-neighbor hopping within a plane and Tperp the
	// hopping between adjacent planes (open boundaries in z, periodic in
	// x and y, as appropriate for an interface/multilayer geometry).
	T, Tperp float64
	// TPrime is the next-nearest-neighbor (diagonal) in-plane hopping t',
	// the standard one-band refinement for cuprate band structures; it
	// breaks particle-hole symmetry, so expect <sign> < 1 away from
	// special points. Zero by default.
	TPrime float64
	// Ty, when nonzero, replaces T for the y-direction bonds, giving an
	// anisotropic (quasi-1D towards Ty -> 0) lattice. Zero means isotropic.
	Ty float64
}

// TyEff returns the effective y-direction hopping (T unless Ty is set).
func (l *Lattice) TyEff() float64 {
	if l.Ty != 0 {
		return l.Ty
	}
	return l.T
}

// NewSquare returns a periodic nx x ny single-plane lattice with in-plane
// hopping t.
func NewSquare(nx, ny int, t float64) *Lattice {
	if nx < 1 || ny < 1 {
		panic("lattice: dimensions must be positive")
	}
	return &Lattice{Nx: nx, Ny: ny, Layers: 1, T: t}
}

// NewMultilayer returns a stack of `layers` periodic nx x ny planes with
// in-plane hopping t and inter-plane hopping tperp.
func NewMultilayer(nx, ny, layers int, t, tperp float64) *Lattice {
	if nx < 1 || ny < 1 || layers < 1 {
		panic("lattice: dimensions must be positive")
	}
	return &Lattice{Nx: nx, Ny: ny, Layers: layers, T: t, Tperp: tperp}
}

// WithTPrime returns a copy of the lattice with diagonal hopping t' set.
func (l *Lattice) WithTPrime(tp float64) *Lattice {
	c := *l
	c.TPrime = tp
	return &c
}

// WithTy returns a copy with anisotropic y-direction hopping.
func (l *Lattice) WithTy(ty float64) *Lattice {
	c := *l
	c.Ty = ty
	return &c
}

// N returns the total number of sites.
func (l *Lattice) N() int { return l.Nx * l.Ny * l.Layers }

// Index maps coordinates (with periodic wrapping in x and y) to a site index.
func (l *Lattice) Index(x, y, z int) int {
	x = mod(x, l.Nx)
	y = mod(y, l.Ny)
	if z < 0 || z >= l.Layers {
		panic(fmt.Sprintf("lattice: layer %d out of range", z))
	}
	return x + l.Nx*(y+l.Ny*z)
}

// Coords inverts Index.
func (l *Lattice) Coords(i int) (x, y, z int) {
	x = i % l.Nx
	i /= l.Nx
	y = i % l.Ny
	z = i / l.Ny
	return
}

// Neighbors returns the site indices connected to site i by a hopping bond,
// in deterministic order (+x, -x, +y, -y, then +z, -z when present).
func (l *Lattice) Neighbors(i int) []int {
	x, y, z := l.Coords(i)
	nb := make([]int, 0, 6)
	if l.Nx > 1 {
		nb = append(nb, l.Index(x+1, y, z))
		if l.Nx > 2 {
			nb = append(nb, l.Index(x-1, y, z))
		}
	}
	if l.Ny > 1 {
		nb = append(nb, l.Index(x, y+1, z))
		if l.Ny > 2 {
			nb = append(nb, l.Index(x, y-1, z))
		}
	}
	if z+1 < l.Layers {
		nb = append(nb, l.Index(x, y, z+1))
	}
	if z-1 >= 0 {
		nb = append(nb, l.Index(x, y, z-1))
	}
	return nb
}

// KMatrix builds the quadratic-form matrix K of H_K = sum c^dag K c:
// K(r,r') = -t for nearest neighbors (in plane), -tperp between adjacent
// layers, and K(r,r) = -mu. DQMC propagates with B = exp(-dtau*K).
func (l *Lattice) KMatrix(mu float64) *mat.Dense {
	n := l.N()
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		k.Set(i, i, -mu)
		x, y, z := l.Coords(i)
		// Accumulate bonds additively so that small lattices where +x and
		// -x wrap to the same neighbor get the doubled matrix element the
		// Hamiltonian demands.
		if l.Nx > 1 {
			k.Set(i, l.Index(x+1, y, z), k.At(i, l.Index(x+1, y, z))-l.T)
			k.Set(i, l.Index(x-1, y, z), k.At(i, l.Index(x-1, y, z))-l.T)
		}
		if l.Ny > 1 {
			ty := l.TyEff()
			k.Set(i, l.Index(x, y+1, z), k.At(i, l.Index(x, y+1, z))-ty)
			k.Set(i, l.Index(x, y-1, z), k.At(i, l.Index(x, y-1, z))-ty)
		}
		if z+1 < l.Layers {
			j := l.Index(x, y, z+1)
			k.Set(i, j, k.At(i, j)-l.Tperp)
		}
		if z-1 >= 0 {
			j := l.Index(x, y, z-1)
			k.Set(i, j, k.At(i, j)-l.Tperp)
		}
		if l.TPrime != 0 && l.Nx > 1 && l.Ny > 1 {
			for _, d := range [4][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
				j := l.Index(x+d[0], y+d[1], z)
				k.Set(i, j, k.At(i, j)-l.TPrime)
			}
		}
	}
	return k
}

// Displacement returns the periodic displacement (dx, dy) from site j to
// site i within a plane, mapped to the ranges (-Nx/2, Nx/2] etc. It panics
// if the sites are in different layers.
func (l *Lattice) Displacement(i, j int) (dx, dy int) {
	xi, yi, zi := l.Coords(i)
	xj, yj, zj := l.Coords(j)
	if zi != zj {
		panic("lattice: Displacement across layers")
	}
	dx = wrapHalf(xi-xj, l.Nx)
	dy = wrapHalf(yi-yj, l.Ny)
	return
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// wrapHalf maps d to the symmetric interval (-n/2, n/2].
func wrapHalf(d, n int) int {
	d = mod(d, n)
	if d > n/2 {
		d -= n
	}
	return d
}

package lattice

import "math"

// KPoint is a momentum-space grid point of a periodic plane.
type KPoint struct {
	Ix, Iy int     // integer grid coordinates, kx = 2*pi*Ix/Nx
	Kx, Ky float64 // momentum components in (-pi, pi]
}

// MomentumGrid returns the Nx*Ny allowed in-plane momenta, x-fastest, with
// components folded into (-pi, pi].
func (l *Lattice) MomentumGrid() []KPoint {
	pts := make([]KPoint, 0, l.Nx*l.Ny)
	for iy := 0; iy < l.Ny; iy++ {
		for ix := 0; ix < l.Nx; ix++ {
			pts = append(pts, KPoint{
				Ix: ix, Iy: iy,
				Kx: foldMomentum(ix, l.Nx),
				Ky: foldMomentum(iy, l.Ny),
			})
		}
	}
	return pts
}

func foldMomentum(i, n int) float64 {
	k := 2 * math.Pi * float64(i) / float64(n)
	if k > math.Pi {
		k -= 2 * math.Pi
	}
	return k
}

// SymmetryPath returns the momentum grid indices (into the x-fastest
// ordering used by MomentumGrid and by measure.MomentumDistribution) along
// the path (0,0) -> (pi,pi) -> (pi,0) -> (0,0) of the paper's Figure 5,
// together with the cumulative arc length at each point for plotting.
// The lattice must be square with even linear size so that (pi,pi) and
// (pi,0) are grid points.
func (l *Lattice) SymmetryPath() (idx []int, arc []float64) {
	n := l.Nx
	if l.Ny != n {
		panic("lattice: SymmetryPath requires a square lattice")
	}
	if n%2 != 0 {
		panic("lattice: SymmetryPath requires even linear size")
	}
	half := n / 2
	step := 2 * math.Pi / float64(n)
	var pos float64
	add := func(ix, iy int, ds float64) {
		idx = append(idx, mod(ix, n)+n*mod(iy, n))
		arc = append(arc, pos)
		pos += ds
	}
	// (0,0) -> (pi,pi): diagonal, ds = sqrt(2)*step.
	for i := 0; i < half; i++ {
		add(i, i, math.Sqrt2*step)
	}
	// (pi,pi) -> (pi,0): vertical, ds = step.
	for i := half; i > 0; i-- {
		add(half, i, step)
	}
	// (pi,0) -> (0,0): horizontal, closing the loop at (0,0).
	for i := half; i > 0; i-- {
		add(i, 0, step)
	}
	add(0, 0, 0)
	return idx, arc
}

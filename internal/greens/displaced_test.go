package greens

import (
	"math"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// freeDisplaced builds the exact U = 0 displaced Green's function
// G(tau, 0) = e^{-tau*K} (I + e^{-beta*K})^{-1} spectrally.
func freeDisplaced(lat *lattice.Lattice, beta, tau float64) *mat.Dense {
	k := lat.KMatrix(0)
	eps, z := lapack.SymEig(k)
	n := lat.N()
	zg := z.Clone()
	gl := make([]float64, n)
	for i, e := range eps {
		// e^{-tau e} / (1 + e^{-beta e}), computed stably for both signs.
		if e >= 0 {
			gl[i] = math.Exp(-tau*e) / (1 + math.Exp(-beta*e))
		} else {
			gl[i] = math.Exp((beta-tau)*e) / (1 + math.Exp(beta*e))
		}
	}
	zg.ScaleCols(gl)
	g := mat.New(n, n)
	blas.Gemm(false, true, 1, zg, z, 0, g)
	return g
}

func TestDisplacedWalkerFreeFermions(t *testing.T) {
	// At U = 0 the HS field drops out and G(tau) must match the analytic
	// free propagator at every slice.
	lat := lattice.NewSquare(4, 4, 1)
	beta, l := 4.0, 32
	model, err := hubbard.NewModel(lat, 0, 0, beta, l)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(l, model.N(), rng.New(1))
	g0 := freeDisplaced(lat, beta, 0)
	w := NewDisplacedWalker(p, g0, hubbard.Up, 8)
	dtau := beta / float64(l)
	for s := 1; s <= l; s++ {
		w.Step(f)
		want := freeDisplaced(lat, beta, dtau*float64(s))
		got := w.Current()
		if d := mat.RelDiff(got, want); d > 1e-8 {
			t.Fatalf("tau step %d: rel diff %g", s, d)
		}
	}
}

func TestDisplacedWalkerMatchesNaiveShort(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 4, 2, 8, 51)
	g0 := Green(bs)
	w := NewDisplacedWalker(p, g0, hubbard.Up, 3)
	for s := 0; s < 5; s++ {
		w.Step(f)
	}
	naive := DisplacedNaive(p, f, g0, hubbard.Up, 5)
	if d := mat.RelDiff(w.Current(), naive); d > 1e-10 {
		t.Fatalf("walker vs naive short-tau: %g", d)
	}
	if w.Tau() != 5 {
		t.Fatalf("Tau = %d", w.Tau())
	}
}

func TestDisplacedWalkerLimitationVsStable(t *testing.T) {
	// Strong coupling, long displacement: forward propagation amplifies
	// the float64 rounding of its G(0) starting point by the norm of the
	// accumulated product — by tau = beta on this configuration it has
	// lost ~12 digits. The two-sided evaluation (DisplacedGreen) never
	// multiplies the chain into G(0) and must stay near machine accuracy.
	p, f, _ := testChain(t, 2, 2, 8, 5, 25, 53)
	steps := 24 // stay off the l = L antiperiodicity special case
	ref := bigDisplaced(p, f, hubbard.Up, steps, 256)
	g0 := bigDisplaced(p, f, hubbard.Up, 25, 256) // = I - G(0); recover G(0)
	n := g0.Rows
	gStart := mat.Identity(n)
	gStart.Add(-1, g0)
	w := NewDisplacedWalker(p, gStart, hubbard.Up, 5)
	for s := 0; s < steps; s++ {
		w.Step(f)
	}
	walkerErr := mat.RelDiff(w.Current(), ref)
	stableErr := mat.RelDiff(DisplacedGreen(p, f, hubbard.Up, steps, 5), ref)
	if stableErr > 1e-10 {
		t.Fatalf("stable displaced G inaccurate: %g", stableErr)
	}
	if walkerErr < 100*stableErr {
		t.Fatalf("expected forward propagation to be much worse (walker %g, stable %g); the instability this test documents has vanished", walkerErr, stableErr)
	}
	t.Logf("rel err vs 256-bit reference at tau near beta: walker %.2e, stable %.2e", walkerErr, stableErr)
}

func TestDisplacedAntiperiodicity(t *testing.T) {
	// Fermionic boundary condition: G(beta, 0) = I - G(0, 0) when
	// propagating through the full chain of the same field.
	p, f, bs := testChain(t, 3, 3, 4, 2, 8, 57)
	g0 := Green(bs)
	w := NewDisplacedWalker(p, g0, hubbard.Up, 4)
	for s := 0; s < p.Model.L; s++ {
		w.Step(f)
	}
	got := w.Current()
	want := mat.Identity(g0.Rows)
	want.Add(-1, g0)
	if d := mat.RelDiff(got, want); d > 1e-8 {
		t.Fatalf("G(beta,0) != I - G(0): rel diff %g", d)
	}
}

package greens

import (
	"math/big"

	"questgo/internal/mat"
)

// GreenBigFloat evaluates G = (I + bs[last] ... bs[0])^{-1} in
// high-precision arithmetic (prec bits) and rounds the result to float64.
// It is the test oracle that lets us quantify, on small systems, how many
// digits the float64 algorithms actually deliver: the naive product loses
// everything at large beta*U while both stratifications stay near machine
// precision — the claim behind the paper's Figure 2.
func GreenBigFloat(bs []*mat.Dense, prec uint) *mat.Dense {
	n := bs[0].Rows
	p := bigFromDense(bs[0], prec)
	for i := 1; i < len(bs); i++ {
		p = bigMul(bigFromDense(bs[i], prec), p, prec)
	}
	one := new(big.Float).SetPrec(prec).SetInt64(1)
	for i := 0; i < n; i++ {
		p[i][i].Add(p[i][i], one)
	}
	inv := bigInverse(p, prec)
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v, _ := inv[i][j].Float64()
			out.Set(i, j, v)
		}
	}
	return out
}

func bigFromDense(a *mat.Dense, prec uint) [][]*big.Float {
	n, m := a.Rows, a.Cols
	out := make([][]*big.Float, n)
	for i := 0; i < n; i++ {
		out[i] = make([]*big.Float, m)
		for j := 0; j < m; j++ {
			out[i][j] = new(big.Float).SetPrec(prec).SetFloat64(a.At(i, j))
		}
	}
	return out
}

func bigMul(a, b [][]*big.Float, prec uint) [][]*big.Float {
	n := len(a)
	m := len(b[0])
	k := len(b)
	out := make([][]*big.Float, n)
	t := new(big.Float).SetPrec(prec)
	for i := 0; i < n; i++ {
		out[i] = make([]*big.Float, m)
		for j := 0; j < m; j++ {
			s := new(big.Float).SetPrec(prec)
			for kk := 0; kk < k; kk++ {
				t.Mul(a[i][kk], b[kk][j])
				s.Add(s, t)
			}
			out[i][j] = s
		}
	}
	return out
}

// bigInverse performs Gauss-Jordan elimination with partial pivoting.
func bigInverse(a [][]*big.Float, prec uint) [][]*big.Float {
	n := len(a)
	// Augment with identity.
	inv := make([][]*big.Float, n)
	for i := 0; i < n; i++ {
		inv[i] = make([]*big.Float, n)
		for j := 0; j < n; j++ {
			inv[i][j] = new(big.Float).SetPrec(prec)
			if i == j {
				inv[i][j].SetInt64(1)
			}
		}
	}
	t := new(big.Float).SetPrec(prec)
	abs := func(x *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Abs(x) }
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if c := abs(a[r][col]); c.Cmp(best) > 0 {
				best, p = c, r
			}
		}
		a[col], a[p] = a[p], a[col]
		inv[col], inv[p] = inv[p], inv[col]
		piv := new(big.Float).SetPrec(prec).Quo(new(big.Float).SetPrec(prec).SetInt64(1), a[col][col])
		for j := 0; j < n; j++ {
			a[col][j].Mul(a[col][j], piv)
			inv[col][j].Mul(inv[col][j], piv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := new(big.Float).SetPrec(prec).Set(a[r][col])
			if f.Sign() == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				t.Mul(f, a[col][j])
				a[r][j].Sub(a[r][j], t)
				t.Mul(f, inv[col][j])
				inv[r][j].Sub(inv[r][j], t)
			}
		}
	}
	return inv
}

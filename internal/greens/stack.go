package greens

import (
	"fmt"
	"math"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// ClusterSource is the slice of the ClusterSet contract the stratification
// stack needs: a fixed number of cluster products, addressable by index.
// Both greens.ClusterSet (host) and gpu.ClusterSet (device-built clusters)
// satisfy it.
type ClusterSource interface {
	// Clusters returns the number of cluster products NC = L/k.
	Clusters() int
	// Cluster returns the stored product for cluster c (not modified).
	Cluster(c int) *mat.Dense
}

// StratStack amortizes the per-boundary stratified Green's function
// recomputation of a sweep (Section III cluster recycling; Bauer,
// SciPost 2020, arXiv:2003.05286).
//
// The naive sweeper rebuilds the whole L/k-cluster UDT chain at every
// cluster boundary, i.e. O((L/k)^2) cluster-UDT steps per sweep. The stack
// exploits the sweep's access pattern instead. At boundary c the chain is
//
//	P(c) = Bhat_{c-1}' ... Bhat_0' * Bhat_{NC-1} ... Bhat_c,
//
// where primes mark clusters already re-sampled this sweep. The left
// ("prefix") factor grows by exactly one cluster per boundary, so its UDT
// is extended incrementally — one extendUDT step per boundary. The right
// ("suffix") factors shrink from the left, which is the wrong direction for
// UDT extension; but all of them are built from *unchanged* clusters, so
// the stack precomputes every suffix decomposition once per sweep in a
// single backward pass over the transposed clusters:
//
//	suf[j] = UDT of (Bhat_{NC-1} ... Bhat_j)^T
//	       = extend(suf[j+1], Bhat_j^T),
//
// i.e. NC-1 extension steps total, snapshotting after each. A boundary then
// costs one prefix extension plus one combine (a single QR of the scaled
// middle matrix), for ~3*NC steps per sweep instead of NC^2.
//
// Usage per sweep, mirroring Sweeper.Sweep: after re-sampling and
// recomputing cluster c, call Advance (absorbs cluster c into the prefix)
// and then GreenInto (Green's function at boundary c+1). When the prefix
// has absorbed all NC clusters, GreenInto evaluates the full chain from the
// prefix alone — arithmetically identical to the from-scratch
// stratification of Chain(0) — and then rolls: the suffix stack is rebuilt
// from the now-current clusters and the prefix is reset for the next sweep.
type StratStack struct {
	src      ClusterSource
	prePivot bool // Algorithm 3 (true) vs Algorithm 2 (false) steps
	n        int
	nc       int
	filled   int // clusters absorbed into the prefix
	fresh    bool

	prefix UDT
	suf    []UDT // suf[j]: transposed-suffix snapshot, j = 1..NC-1

	// Obs, when non-nil, receives a UDT condition estimate
	// (log10 max|D|/min|D|) for every boundary evaluation — the stability
	// telemetry that shows how much dynamic range the graded decomposition
	// is absorbing. Optional; set by the sweepers.
	Obs *obs.Collector
}

// NewStratStack builds the suffix decompositions for the source's current
// clusters. prePivot selects the same pivoting policy as the sweeper's
// stratified refresh (Algorithm 3 vs Algorithm 2).
func NewStratStack(src ClusterSource, prePivot bool) *StratStack {
	nc := src.Clusters()
	n := src.Cluster(0).Rows
	st := &StratStack{src: src, prePivot: prePivot, n: n, nc: nc}
	st.prefix = UDT{Q: mat.New(n, n), D: make([]float64, n), T: mat.New(n, n)}
	st.suf = make([]UDT, nc)
	for j := 1; j < nc; j++ {
		st.suf[j] = UDT{Q: mat.New(n, n), D: make([]float64, n), T: mat.New(n, n)}
	}
	st.Rebuild()
	return st
}

// Filled returns how many clusters the prefix currently covers; the next
// GreenInto evaluates boundary Filled (mod NC).
func (st *StratStack) Filled() int { return st.filled }

// Retarget re-sources the stack onto src — a cluster set with a different
// cluster count NC (a different k over the same L) but the same matrix
// dimension — resizing the suffix snapshots and rebuilding them from src's
// current clusters. This is the resize path of the stability autopilot:
// call it only between sweeps (the prefix is discarded). The attached Obs
// collector is kept.
func (st *StratStack) Retarget(src ClusterSource) {
	n := src.Cluster(0).Rows
	if n != st.n {
		panic(fmt.Sprintf("greens: StratStack.Retarget dimension change %d -> %d", st.n, n))
	}
	nc := src.Clusters()
	st.src = src
	if nc != st.nc {
		st.nc = nc
		st.suf = make([]UDT, nc)
		for j := 1; j < nc; j++ {
			st.suf[j] = UDT{Q: mat.New(n, n), D: make([]float64, n), T: mat.New(n, n)}
		}
	}
	st.Rebuild()
}

// Rebuild recomputes every suffix snapshot from the source's current
// clusters and resets the prefix. Called automatically when a sweep's
// prefix completes; call it manually only if clusters changed outside the
// Advance order (e.g. after loading a checkpointed field).
func (st *StratStack) Rebuild() {
	work := mat.GetScratch(st.n, st.n)
	r := mat.GetScratch(st.n, st.n)
	tNew := mat.GetScratch(st.n, st.n)
	bt := mat.GetScratch(st.n, st.n)
	defer func() {
		mat.PutScratch(work)
		mat.PutScratch(r)
		mat.PutScratch(tNew)
		mat.PutScratch(bt)
	}()
	for j := st.nc - 1; j >= 1; j-- {
		st.src.Cluster(j).TransposeInto(bt)
		u := &st.suf[j]
		if j == st.nc-1 {
			initUDT(u, bt, work, r)
		} else {
			u.Q.CopyFrom(st.suf[j+1].Q)
			copy(u.D, st.suf[j+1].D)
			u.T.CopyFrom(st.suf[j+1].T)
			extendUDT(u, bt, !st.prePivot, work, r, tNew)
		}
	}
	st.filled = 0
	st.fresh = true
}

// Advance absorbs the source's cluster Filled() — which the sweeper has
// just recomputed from the re-sampled field — into the prefix UDT. Exactly
// one extension step; must be called in cluster order 0, 1, ..., NC-1.
//
//qmc:hot
func (st *StratStack) Advance() {
	if st.filled >= st.nc {
		panic("greens: StratStack.Advance past the last cluster (missing GreenInto roll?)")
	}
	work := mat.GetScratch(st.n, st.n)
	r := mat.GetScratch(st.n, st.n)
	tNew := mat.GetScratch(st.n, st.n)
	defer func() {
		mat.PutScratch(work)
		mat.PutScratch(r)
		mat.PutScratch(tNew)
	}()
	b := st.src.Cluster(st.filled)
	if st.filled == 0 {
		initUDT(&st.prefix, b, work, r)
	} else {
		extendUDT(&st.prefix, b, !st.prePivot, work, r, tNew)
	}
	st.filled++
	st.fresh = false
}

// GreenInto writes the equal-time Green's function at boundary Filled()
// into dst (n x n).
//
// Filled() == 0 (only before the first Advance after construction or
// Rebuild): the full chain is stratified from scratch — this is the
// initial-refresh case and is arithmetically identical to the seed path.
// 0 < Filled() < NC: prefix and suffix are combined with one QR.
// Filled() == NC: the prefix covers the whole chain; after evaluating it
// the stack rolls over (suffix rebuild + prefix reset) for the next sweep.
func (st *StratStack) GreenInto(dst *mat.Dense) {
	switch {
	case st.filled == 0:
		if !st.fresh {
			st.Rebuild()
		}
		chain := make([]*mat.Dense, st.nc)
		for i := range chain {
			chain[i] = st.src.Cluster(i)
		}
		GreenInto(dst, chain, st.prePivot)
	case st.filled == st.nc:
		st.sampleCond(st.prefix.D)
		GreenFromUDTInto(dst, &st.prefix)
		st.Rebuild()
	default:
		st.combineInto(dst, st.filled)
	}
	check.Finite("greens.StratStack.GreenInto", dst)
}

// combineInto evaluates G at boundary c from the prefix UDT and the
// transposed-suffix snapshot suf[c].
//
// With prefix = Q1 D1 T1 and suffix^T = Qs Ds Ts (so the suffix itself is
// Ts^T Ds Qs^T), the boundary chain is
//
//	P(c) = Q1 (D1 * T1 Ts^T * Ds) Qs^T.
//
// The middle matrix mixes the two gradings but is the product of two
// well-conditioned factors scaled on either side, exactly the shape the
// stratification step already handles: factor it as q d t with the same
// pivoting policy, giving P = (Q1 q) d (t Qs^T) — a single UDT for the
// whole chain, finished by the stabilized inversion.
//
//qmc:charges OpUDTSteps
//qmc:hot
func (st *StratStack) combineInto(dst *mat.Dense, c int) {
	n := st.n
	suf := &st.suf[c]
	m := mat.GetScratch(n, n)
	r := mat.GetScratch(n, n)
	tmp := mat.GetScratch(n, n)
	that := mat.GetScratch(n, n)
	defer func() {
		mat.PutScratch(m)
		mat.PutScratch(r)
		mat.PutScratch(tmp)
		mat.PutScratch(that)
	}()

	// M = D1 * (T1 Ts^T) * Ds.
	blas.Gemm(false, true, 1, st.prefix.T, suf.T, 0, m)
	m.ScaleRows(st.prefix.D)
	m.ScaleCols(suf.D)

	var qr *lapack.QR
	var perm []int
	if st.prePivot {
		perm = descendingNormPerm(m)
		permuteColsGather(tmp, m, perm)
		m.CopyFrom(tmp)
		qr = lapack.QRFactor(m)
	} else {
		qr, perm = lapack.QRPFactor(m)
	}
	d := getVec(n)
	qr.RInto(r)
	r.Diagonal(d)
	scaleInvRows(r, d)
	// that = (d^{-1} R) P^T: scatter column j back to original position.
	for j := 0; j < n; j++ {
		copy(that.Col(perm[j]), r.Col(j))
	}
	qmid := tmp // free again after the permuted copy above
	qr.FormQ(qmid)
	qr.Release()
	if st.prePivot {
		putPerm(perm)
	} else {
		lapack.PutPivot(&perm)
	}

	// Q_new = Q1 * q, T_new = that * Qs^T.
	qNew := mat.GetScratch(n, n)
	tNew := mat.GetScratch(n, n)
	blas.Gemm(false, false, 1, st.prefix.Q, qmid, 0, qNew)
	blas.Gemm(false, true, 1, that, suf.Q, 0, tNew)
	u := UDT{Q: qNew, D: d, T: tNew}
	st.sampleCond(d)
	GreenFromUDTInto(dst, &u)
	mat.PutScratch(qNew)
	mat.PutScratch(tNew)
	putVec(d)
	obs.Add(obs.OpUDTSteps, 1)
}

// sampleCond reports the condition estimate log10(max|D|/min|D|) of a
// completed whole-chain decomposition to the attached collector. D is
// sorted by descending magnitude by construction, but scan defensively.
func (st *StratStack) sampleCond(d []float64) {
	if !st.Obs.Enabled() || len(d) == 0 {
		return
	}
	lo, hi := math.Abs(d[0]), math.Abs(d[0])
	for _, v := range d[1:] {
		a := math.Abs(v)
		if a > hi {
			hi = a
		}
		if a < lo {
			lo = a
		}
	}
	if lo == 0 || hi == 0 {
		return
	}
	st.Obs.SampleUDTCond(math.Log10(hi / lo))
}

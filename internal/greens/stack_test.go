package greens

import (
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func stackSetup(t *testing.T, nx, ny int, u, beta float64, l, k int, seed uint64) (*hubbard.Propagator, *hubbard.Field, *ClusterSet) {
	t.Helper()
	lat := lattice.NewSquare(nx, ny, 1.0)
	m, err := hubbard.NewModel(lat, u, 0, beta, l)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(m)
	f := hubbard.NewRandomField(l, m.N(), rng.New(seed))
	return p, f, NewClusterSet(p, f, hubbard.Up, k)
}

// mutateCluster flips a few field entries inside cluster c, emulating the
// re-sampling a Metropolis sweep performs before Recompute(c).
func mutateCluster(f *hubbard.Field, c, k int, r *rng.Rand) {
	for j := 0; j < k; j++ {
		s := c*k + j
		for i := 0; i < f.N; i++ {
			if r.Float64() < 0.3 {
				f.Flip(s, i)
			}
		}
	}
}

// TestStratStackMatchesFullRebuild drives a StratStack through the exact
// boundary sequence of a Metropolis sweep — mutate cluster c, Recompute(c),
// Advance, read the Green's function — for several "sweeps", checking the
// combined prefix+suffix evaluation against a full chain re-stratification
// at every boundary, under both pivoting policies.
func TestStratStackMatchesFullRebuild(t *testing.T) {
	for _, prePivot := range []bool{false, true} {
		p, f, cs := stackSetup(t, 3, 3, 4, 2, 12, 4, 31)
		r := rng.New(7)
		st := NewStratStack(cs, prePivot)
		n := p.Model.N()
		got, want := mat.New(n, n), mat.New(n, n)

		// The initial (filled = 0) evaluation must match boundary 0.
		st.GreenInto(got)
		cs.GreenAtInto(want, 0, prePivot)
		if d := mat.RelDiff(got, want); d != 0 {
			t.Fatalf("prePivot=%v: initial stack G not identical to full chain: %g", prePivot, d)
		}

		for sweep := 0; sweep < 3; sweep++ {
			for c := 0; c < cs.NC; c++ {
				mutateCluster(f, c, cs.K, r)
				cs.Recompute(f, c)
				st.Advance()
				st.GreenInto(got)
				cs.GreenAtInto(want, (c+1)%cs.NC, prePivot)
				if d := mat.RelDiff(got, want); d > 1e-12 {
					t.Fatalf("prePivot=%v sweep %d boundary %d: stack vs rebuild rel diff %g",
						prePivot, sweep, c, d)
				}
			}
		}
	}
}

// TestStratStackStepCount asserts the asymptotic win: one simulated sweep
// costs the stack O(NC) cluster-UDT steps (NC prefix extensions, up to
// NC-1 combines, NC-1 suffix rebuild steps) versus the NC^2 steps of
// re-stratifying the full chain at each of the NC boundaries.
func TestStratStackStepCount(t *testing.T) {
	_, f, cs := stackSetup(t, 3, 3, 4, 2, 20, 4, 37)
	nc := cs.NC // 5
	n := cs.Cluster(0).Rows
	g := mat.New(n, n)
	r := rng.New(11)

	st := NewStratStack(cs, true)
	start := UDTSteps()
	for c := 0; c < nc; c++ {
		mutateCluster(f, c, cs.K, r)
		cs.Recompute(f, c)
		st.Advance()
		st.GreenInto(g)
	}
	stackSteps := UDTSteps() - start

	start = UDTSteps()
	for c := 0; c < nc; c++ {
		cs.GreenAtInto(g, (c+1)%nc, true)
	}
	rebuildSteps := UDTSteps() - start

	if want := int64(nc * nc); rebuildSteps != want {
		t.Fatalf("rebuild path: %d UDT steps, want %d", rebuildSteps, want)
	}
	// NC advances + (NC-1) combines + (NC-1) end-of-sweep suffix rebuild.
	if want := int64(3*nc - 2); stackSteps != want {
		t.Fatalf("stack path: %d UDT steps, want %d", stackSteps, want)
	}
	if stackSteps >= rebuildSteps {
		t.Fatalf("stack (%d steps) not cheaper than rebuild (%d steps)", stackSteps, rebuildSteps)
	}
}

// TestStratStackRetarget resizes a stack onto cluster sets of a different k
// (the autopilot path) and checks every boundary of the retargeted stack
// against a full-chain rebuild, in both resize directions.
func TestStratStackRetarget(t *testing.T) {
	p, f, cs := stackSetup(t, 3, 3, 4, 2, 12, 4, 53)
	st := NewStratStack(cs, true)
	n := cs.Cluster(0).Rows
	got, want := mat.New(n, n), mat.New(n, n)
	r := rng.New(19)

	// Advance partway so Retarget must discard a nontrivial prefix.
	mutateCluster(f, 0, cs.K, r)
	cs.Recompute(f, 0)
	st.Advance()

	for _, k := range []int{2, 6, 3} {
		cs = NewClusterSet(p, f, hubbard.Up, k)
		st.Retarget(cs)
		if st.Filled() != 0 {
			t.Fatalf("k=%d: Retarget left filled=%d, want 0", k, st.Filled())
		}
		for c := 0; c < cs.NC; c++ {
			mutateCluster(f, c, cs.K, r)
			cs.Recompute(f, c)
			st.Advance()
			st.GreenInto(got)
			cs.GreenAtInto(want, (c+1)%cs.NC, true)
			if d := mat.RelDiff(got, want); d > 1e-12 {
				t.Fatalf("k=%d boundary %d: retargeted stack vs rebuild rel diff %g", k, c, d)
			}
		}
	}
}

// TestStratStackAutoRebuild checks that the stack survives wrap-around: the
// suffix decompositions are rebuilt when the prefix completes, so a second
// sweep sees suffixes of the *current* clusters.
func TestStratStackAutoRebuild(t *testing.T) {
	_, f, cs := stackSetup(t, 2, 2, 6, 2, 8, 4, 41)
	st := NewStratStack(cs, true)
	n := cs.Cluster(0).Rows
	got, want := mat.New(n, n), mat.New(n, n)
	r := rng.New(3)

	// Sweep 1 mutates every cluster; sweep 2 must still agree, which only
	// works if the suffixes were rebuilt from the mutated clusters. The
	// prefix-complete evaluation (boundary 0) is arithmetically the same
	// incremental chain as a full stratification, so it must match exactly.
	for sweep := 0; sweep < 2; sweep++ {
		for c := 0; c < cs.NC; c++ {
			mutateCluster(f, c, cs.K, r)
			cs.Recompute(f, c)
			st.Advance()
			st.GreenInto(got)
		}
		cs.GreenAtInto(want, 0, true)
		if d := mat.RelDiff(got, want); d != 0 {
			t.Fatalf("sweep %d: post-rebuild boundary-0 G not identical to full chain: %g", sweep, d)
		}
	}
}

package greens

import (
	"fmt"
	"questgo/internal/blas"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// ClusterSet stores the products of k consecutive B matrices,
//
//	Bhat_c = B_{ck+k} * ... * B_{ck+2} * B_{ck+1}   (1-based slice labels),
//
// so the stratification loop runs over L/k clusters instead of L slices
// (Section III-A2), and so unchanged clusters can be *recycled* across
// Green's function recomputations and across sweeps (Section III-B2): when
// only the slices of cluster c were re-sampled, only Bhat_c is rebuilt.
type ClusterSet struct {
	K        int // slices per cluster
	NC       int // number of clusters = L/K
	sigma    hubbard.Spin
	prop     *hubbard.Propagator
	clusters []*mat.Dense
	chain    []*mat.Dense // reused by Chain (rebuilt on every call)
	tmp      *mat.Dense
	v        []float64
}

// NewClusterSet builds all cluster products for one spin species. L must be
// divisible by k.
func NewClusterSet(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, k int) *ClusterSet {
	l := p.Model.L
	if k < 1 || l%k != 0 {
		panic(fmt.Sprintf("greens: cluster size %d must divide the slice count %d", k, l))
	}
	n := p.Model.N()
	cs := &ClusterSet{
		K:        k,
		NC:       l / k,
		sigma:    sigma,
		prop:     p,
		clusters: make([]*mat.Dense, l/k),
		chain:    make([]*mat.Dense, l/k),
		tmp:      mat.New(n, n),
		v:        make([]float64, n),
	}
	for c := range cs.clusters {
		cs.clusters[c] = mat.New(n, n)
		cs.Recompute(f, c)
	}
	return cs
}

// Recompute rebuilds cluster c from the current field. This is the
// CPU analogue of the paper's Algorithm 4 (the GPU version lives in
// internal/gpu): A = B_{ck+k} ... B_{ck+1} built by alternating GEMMs with
// the fixed kinetic propagator and diagonal row scalings.
func (cs *ClusterSet) Recompute(f *hubbard.Field, c int) {
	a, spare := cs.clusters[c], cs.tmp
	base := c * cs.K
	// A = V_{base} * Bkin
	a.CopyFrom(cs.prop.Bkin)
	cs.prop.VDiag(cs.sigma, f, base, cs.v)
	a.ScaleRows(cs.v)
	for j := 1; j < cs.K; j++ {
		// A = V_{base+j} * (Bkin * A)
		blas.Gemm(false, false, 1, cs.prop.Bkin, a, 0, spare)
		cs.prop.VDiag(cs.sigma, f, base+j, cs.v)
		spare.ScaleRows(cs.v)
		a, spare = spare, a
	}
	if a != cs.clusters[c] {
		// The result landed in the scratch buffer: adopt it as the stored
		// cluster and keep the old cluster matrix as future scratch.
		cs.clusters[c], cs.tmp = a, spare
	}
}

// Cluster returns the stored product for cluster c (do not modify).
func (cs *ClusterSet) Cluster(c int) *mat.Dense { return cs.clusters[c] }

// Clusters returns NC, satisfying the ClusterSource interface consumed by
// StratStack.
func (cs *ClusterSet) Clusters() int { return cs.NC }

// Chain returns the cluster matrices in the application order that makes
//
//	G_l = (I + Bhat_c ... Bhat_1 Bhat_NC ... Bhat_{c+1})^{-1}
//
// for l = c*K, i.e. the Green's function seen after sweeping the first c
// clusters (c = 0 gives the standard G = (I + Bhat_NC ... Bhat_1)^{-1}).
// The returned slice is owned by the ClusterSet and overwritten by the next
// Chain call; the matrices are shared.
func (cs *ClusterSet) Chain(c int) []*mat.Dense {
	for i := 0; i < cs.NC; i++ {
		cs.chain[i] = cs.clusters[(c+i)%cs.NC]
	}
	return cs.chain
}

// GreenAt evaluates the stratified Green's function after cluster c with
// Algorithm 3 (prePivot=true is the production path; false selects the
// Algorithm 2 reference).
func (cs *ClusterSet) GreenAt(c int, prePivot bool) *mat.Dense {
	chain := cs.Chain(c)
	if prePivot {
		return Green(chain)
	}
	return GreenQRP(chain)
}

// GreenAtInto is GreenAt writing into dst, with every UDT temporary drawn
// from the scratch pool — the allocation-free path the sweeper's reference
// (non-stack) refresh uses.
func (cs *ClusterSet) GreenAtInto(dst *mat.Dense, c int, prePivot bool) {
	GreenInto(dst, cs.Chain(c), prePivot)
}

// Wrapper advances an equal-time Green's function from slice l-1 to l:
//
//	G_l = B_l G_{l-1} B_l^{-1}
//	    = V_l Bkin G Bkin^{-1} V_l^{-1}
//
// (Section III-B1). The two GEMMs dominate; the diagonal scalings are the
// fine-grained operations the paper parallelizes by hand (and offloads in
// its Algorithm 6/7 GPU variant).
//
// When the propagator was built via hubbard.NewPropagatorCheckerboard, the
// wrap skips the dense GEMMs entirely: the checkerboard factors apply in
// O(N) per column (2x2 bond rotations), turning the O(N^3) wrap into
// O(N^2). The result is bitwise identical to multiplying the materialized
// checkerboard matrices only up to reassociation, but both are the same
// B_cb propagator, so the Markov chain semantics are unchanged.
type Wrapper struct {
	prop *hubbard.Propagator
	tmp  *mat.Dense
	v    []float64
}

// NewWrapper allocates the scratch for N x N wrapping.
func NewWrapper(p *hubbard.Propagator) *Wrapper {
	n := p.Model.N()
	return &Wrapper{prop: p, tmp: mat.New(n, n), v: make([]float64, n)}
}

// Wrap overwrites g with B_l G B_l^{-1} for the given slice and spin.
//
//qmc:charges OpWraps
//qmc:hot
func (w *Wrapper) Wrap(g *mat.Dense, f *hubbard.Field, sigma hubbard.Spin, l int) {
	obs.Add(obs.OpWraps, 1)
	if cb := w.prop.CB; cb != nil {
		// Checkerboard fast path: g = Bcb * g * Bcb^{-1} in O(N^2).
		cb.ApplyLeft(g)
		cb.ApplyRightInv(g)
	} else {
		// tmp = Bkin * G
		blas.Gemm(false, false, 1, w.prop.Bkin, g, 0, w.tmp)
		// g = tmp * Binv
		blas.Gemm(false, false, 1, w.tmp, w.prop.Binv, 0, g)
	}
	// g = V_l g V_l^{-1}: row scale by v, column scale by 1/v.
	w.prop.VDiag(sigma, f, l, w.v)
	g.ScaleRows(w.v)
	for i := range w.v {
		w.v[i] = 1 / w.v[i]
	}
	g.ScaleCols(w.v)
}

// WrapInverse undoes Wrap: g <- B_l^{-1} G B_l, used by tests to verify the
// wrapping identity.
func (w *Wrapper) WrapInverse(g *mat.Dense, f *hubbard.Field, sigma hubbard.Spin, l int) {
	w.prop.VDiag(sigma, f, l, w.v)
	for i := range w.v {
		w.v[i] = 1 / w.v[i]
	}
	g.ScaleRows(w.v)
	for i := range w.v {
		w.v[i] = 1 / w.v[i]
	}
	g.ScaleCols(w.v)
	if cb := w.prop.CB; cb != nil {
		cb.ApplyLeftInv(g)
		cb.ApplyRight(g)
		return
	}
	blas.Gemm(false, false, 1, w.prop.Binv, g, 0, w.tmp)
	blas.Gemm(false, false, 1, w.tmp, w.prop.Bkin, 0, g)
}

package greens

import (
	"testing"
	"testing/quick"

	"questgo/internal/blas"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// randomUDT builds a well-conditioned random UDT triple with controlled
// grading: Q from the QR of a random matrix, D log-spaced over the given
// decade span, T = unit-diagonal upper triangular plus small off-diagonals.
func randomUDT(r *rng.Rand, n int, decades float64) *UDT {
	a := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	qr := lapack.QRFactor(a)
	q := mat.New(n, n)
	qr.FormQ(q)
	d := make([]float64, n)
	for i := range d {
		exp := decades * (0.5 - float64(i)/float64(n))
		d[i] = pow10(exp)
		if r.Uint64()&1 == 0 {
			d[i] = -d[i]
		}
	}
	t := mat.Identity(n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			t.Set(i, j, 0.5*(2*r.Float64()-1))
		}
	}
	return &UDT{Q: q, D: d, T: t}
}

func pow10(x float64) float64 {
	v := 1.0
	for x >= 1 {
		v *= 10
		x--
	}
	for x <= -1 {
		v /= 10
		x++
	}
	return v * (1 + 1.3*x) // rough fractional interpolation; exactness irrelevant
}

// Property: for mildly graded UDT pairs (sum well conditioned),
// InvertUDTSum agrees with the directly formed and LU-inverted sum.
func TestQuickInvertUDTSumMatchesDirect(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0x51ab)
		n := 2 + r.Intn(8)
		a := randomUDT(r, n, 2)
		b := randomUDT(r, n, 2)
		got := InvertUDTSum(a, b)
		sum := a.Matrix()
		sum.Add(1, b.Matrix())
		want := mat.New(n, n)
		lu, err := lapack.LUFactor(sum)
		if err != nil {
			return true // skip pathological draws
		}
		lu.Invert(want)
		return mat.RelDiff(got, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: invertFactoredSum equals InvertUDTSum on the analytically
// inverted first factor: ((U1 D1 T1)^{-1} + B)^{-1}.
func TestQuickFactoredSumConsistent(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0xd00d)
		n := 2 + r.Intn(6)
		u1 := randomUDT(r, n, 1.5)
		b := randomUDT(r, n, 1.5)
		got := invertFactoredSum(u1, b)
		// Direct: invert U1 D1 T1, add B, invert.
		p1 := u1.Matrix()
		luP, err := lapack.LUFactor(p1.Clone())
		if err != nil {
			return true
		}
		a := mat.New(n, n)
		luP.Invert(a)
		a.Add(1, b.Matrix())
		lu2, err := lapack.LUFactor(a)
		if err != nil {
			return true
		}
		want := mat.New(n, n)
		lu2.Invert(want)
		return mat.RelDiff(got, want) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the UDT Matrix() reconstruction is linear in D: doubling D
// doubles the product.
func TestQuickUDTLinearInD(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0xbead)
		n := 2 + r.Intn(8)
		u := randomUDT(r, n, 1)
		m1 := u.Matrix()
		for i := range u.D {
			u.D[i] *= 2
		}
		m2 := u.Matrix()
		m1.Scale(2)
		return m1.EqualApprox(m2, 1e-12*m2.MaxAbs()+1e-300)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// orthoCheck: randomUDT must produce orthogonal Q (sanity of the helper).
func TestRandomUDTHelperSane(t *testing.T) {
	r := rng.New(5)
	u := randomUDT(r, 10, 3)
	qtq := mat.New(10, 10)
	blas.Gemm(true, false, 1, u.Q, u.Q, 0, qtq)
	if !qtq.EqualApprox(mat.Identity(10), 1e-12) {
		t.Fatal("helper Q not orthogonal")
	}
	for i := 1; i < 10; i++ {
		if abs(u.D[i]) > abs(u.D[i-1]) {
			t.Fatal("helper D not descending")
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package greens

import (
	"testing"

	"questgo/internal/blas"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func cbSetup(t *testing.T, nx, ny int) (*hubbard.Propagator, *hubbard.Field) {
	t.Helper()
	lat := lattice.NewSquare(nx, ny, 1.0)
	m, err := hubbard.NewModel(lat, 4, 0.1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hubbard.NewPropagatorCheckerboard(m)
	if err != nil {
		t.Fatal(err)
	}
	f := hubbard.NewRandomField(m.L, m.N(), rng.New(61))
	return p, f
}

// TestWrapCheckerboardFastPath: wrapping through the O(N^2) checkerboard
// applies must agree with the dense-GEMM wrap against the *materialized*
// checkerboard matrices — same B_cb propagator, different association.
func TestWrapCheckerboardFastPath(t *testing.T) {
	p, f := cbSetup(t, 4, 4)
	n := p.Model.N()
	g := randomDense(rng.New(3), n)
	want := g.Clone()

	// Reference: dense wrap with the materialized Bkin/Binv, exactly the
	// code path the Wrapper takes when prop.CB is nil.
	tmp := mat.New(n, n)
	v := make([]float64, n)
	blas.Gemm(false, false, 1, p.Bkin, want, 0, tmp)
	blas.Gemm(false, false, 1, tmp, p.Binv, 0, want)
	p.VDiag(hubbard.Up, f, 2, v)
	want.ScaleRows(v)
	for i := range v {
		v[i] = 1 / v[i]
	}
	want.ScaleCols(v)

	NewWrapper(p).Wrap(g, f, hubbard.Up, 2)
	if d := mat.RelDiff(g, want); d > 1e-12 {
		t.Fatalf("checkerboard wrap deviates from dense wrap: %g", d)
	}
}

// TestWrapInverseCheckerboardRoundTrip: Wrap followed by WrapInverse must be
// the identity on the fast path too.
func TestWrapInverseCheckerboardRoundTrip(t *testing.T) {
	p, f := cbSetup(t, 6, 6)
	n := p.Model.N()
	g := randomDense(rng.New(17), n)
	orig := g.Clone()
	w := NewWrapper(p)
	w.Wrap(g, f, hubbard.Down, 5)
	w.WrapInverse(g, f, hubbard.Down, 5)
	if d := mat.RelDiff(g, orig); d > 1e-11 {
		t.Fatalf("checkerboard wrap round trip drifted: %g", d)
	}
}

// TestCheckerboardSweepConsistency runs real sweeps on a checkerboard
// propagator (so every wrap takes the fast path) and verifies the
// incrementally maintained G against a fresh stratified evaluation of the
// final field — the same invariant TestSweepKeepsGreenConsistent checks
// for the dense propagator. Lives here rather than in internal/update to
// avoid an import cycle in the test topology.
func TestCheckerboardSweepConsistency(t *testing.T) {
	p, f := cbSetup(t, 4, 4)
	cs := NewClusterSet(p, f, hubbard.Up, 4)
	w := NewWrapper(p)
	g := cs.GreenAt(0, true)
	// Wrap through one full cluster and compare against the stratified
	// evaluation at that boundary.
	for l := 0; l < cs.K; l++ {
		w.Wrap(g, f, hubbard.Up, l)
	}
	fresh := cs.GreenAt(1, true)
	if d := mat.RelDiff(g, fresh); d > 1e-10 {
		t.Fatalf("wrapped G drifted from stratified evaluation: %g", d)
	}
}

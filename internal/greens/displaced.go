package greens

import (
	"questgo/internal/blas"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/mat"
)

// This file implements the unequal-time (imaginary-time-displaced) Green's
// function
//
//	G(tau_l, 0) = <T c(tau_l) c^dag(0)> = B_l B_{l-1} ... B_1 G(0),
//
// the quantity behind QUEST's "dynamic" measurements (spectral and
// transport properties; the paper's introduction lists conductivity at
// interfaces among the targets of the N = 1024 capability).
//
// The naive left-multiplication by B_l accumulates the same exponential
// dynamic range that destroys the equal-time calculation, so the displaced
// propagation is stabilized the same way: the accumulated product is kept
// in graded UDT form and re-factored (by the pre-pivoted QR of Algorithm 3)
// every k steps.

// DisplacedWalker computes G(tau_l, 0) for l = 0, 1, 2, ... by stabilized
// forward propagation from the equal-time G(0).
type DisplacedWalker struct {
	prop  *hubbard.Propagator
	sigma hubbard.Spin
	// Graded state: the current displaced Green's function is
	// Q * diag(D) * T.
	q *mat.Dense
	d []float64
	t *mat.Dense
	// refactorEvery counts B applications between QR re-factorizations.
	refactorEvery int
	sinceRefactor int
	l             int
	tmp           *mat.Dense
	v             []float64
}

// NewDisplacedWalker starts at tau = 0 with the supplied equal-time Green's
// function g0 = G(0) (not modified). refactorEvery plays the role of the
// clustering size k; 10 is a good default.
func NewDisplacedWalker(p *hubbard.Propagator, g0 *mat.Dense, sigma hubbard.Spin, refactorEvery int) *DisplacedWalker {
	if refactorEvery < 1 {
		refactorEvery = 10
	}
	n := g0.Rows
	w := &DisplacedWalker{
		prop:          p,
		sigma:         sigma,
		q:             mat.Identity(n),
		d:             make([]float64, n),
		t:             g0.Clone(),
		refactorEvery: refactorEvery,
		tmp:           mat.New(n, n),
		v:             make([]float64, n),
	}
	for i := range w.d {
		w.d[i] = 1
	}
	return w
}

// Tau returns the current displacement index l (tau = l * dtau).
func (w *DisplacedWalker) Tau() int { return w.l }

// Step advances tau by one slice using the field values at slice
// (l mod L): G(tau+dtau, 0) = B_{l+1} G(tau, 0).
func (w *DisplacedWalker) Step(f *hubbard.Field) {
	slice := w.l % w.prop.Model.L
	// Q <- V_slice * (Bkin * Q); the graded D and well-conditioned T are
	// untouched, exactly like step 3a of the stratification.
	blas.Gemm(false, false, 1, w.prop.Bkin, w.q, 0, w.tmp)
	w.prop.VDiag(w.sigma, f, slice, w.v)
	w.tmp.ScaleRows(w.v)
	w.q, w.tmp = w.tmp, w.q
	w.l++
	w.sinceRefactor++
	if w.sinceRefactor >= w.refactorEvery {
		w.refactor()
	}
}

// refactor restores Q to orthogonality by absorbing the accumulated product
// into the graded factors: (Q D) = Q' R P^T, D' = diag(R),
// T' = D'^{-1} R P^T T.
func (w *DisplacedWalker) refactor() {
	n := w.q.Rows
	// C = Q * diag(D)
	w.q.ScaleCols(w.d)
	perm := descendingNormPerm(w.q)
	permuted := w.tmp
	permuteColsGather(permuted, w.q, perm)
	qr := lapack.QRFactor(permuted)
	r := qr.R()
	r.Diagonal(w.d)
	scaleInvRows(r, w.d)
	// T <- (D^{-1} R) (P^T T)
	pt := mat.New(n, n)
	permuteRowsGather(pt, w.t, perm)
	blas.Gemm(false, false, 1, r, pt, 0, w.t)
	qr.FormQ(w.q)
	qr.Release()
	putPerm(perm)
	w.sinceRefactor = 0
}

// Current materializes G(tau_l, 0) = Q D T. The entries can legitimately
// span a large range; the product is formed most-graded-last so that small
// scales are not lost prematurely.
func (w *DisplacedWalker) Current() *mat.Dense {
	qd := w.q.Clone()
	qd.ScaleCols(w.d)
	out := mat.New(w.q.Rows, w.q.Cols)
	blas.Gemm(false, false, 1, qd, w.t, 0, out)
	return out
}

// DisplacedNaive computes G(tau_l, 0) by plain repeated multiplication —
// the unstable reference used in tests to demonstrate why the UDT
// propagation is necessary.
func DisplacedNaive(p *hubbard.Propagator, f *hubbard.Field, g0 *mat.Dense, sigma hubbard.Spin, l int) *mat.Dense {
	g := g0.Clone()
	n := g0.Rows
	tmp := mat.New(n, n)
	v := make([]float64, n)
	for s := 0; s < l; s++ {
		blas.Gemm(false, false, 1, p.Bkin, g, 0, tmp)
		p.VDiag(sigma, f, s%p.Model.L, v)
		tmp.ScaleRows(v)
		g, tmp = tmp, g
	}
	return g
}

package greens

import (
	"math"
	"testing"
	"testing/quick"

	"questgo/internal/blas"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func randomDense(r *rng.Rand, n int) *mat.Dense {
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

// testChain builds the B_l matrices of a real Hubbard configuration.
func testChain(t *testing.T, nx, ny int, u, beta float64, l int, seed uint64) (*hubbard.Propagator, *hubbard.Field, []*mat.Dense) {
	t.Helper()
	lat := lattice.NewSquare(nx, ny, 1.0)
	m, err := hubbard.NewModel(lat, u, 0, beta, l)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(m)
	f := hubbard.NewRandomField(l, m.N(), rng.New(seed))
	bs := make([]*mat.Dense, l)
	for i := 0; i < l; i++ {
		bs[i] = p.BMatrix(hubbard.Up, f, i)
	}
	return p, f, bs
}

func TestUDTReconstructsShortProduct(t *testing.T) {
	_, _, bs := testChain(t, 3, 3, 4, 1, 4, 11)
	// Product B4 B3 B2 B1 directly.
	n := bs[0].Rows
	prod := bs[0].Clone()
	tmp := mat.New(n, n)
	for i := 1; i < len(bs); i++ {
		blas.Gemm(false, false, 1, bs[i], prod, 0, tmp)
		prod, tmp = tmp, prod
	}
	for _, udt := range []*UDT{StratifyQRP(bs), StratifyPrePivot(bs)} {
		rec := udt.Matrix()
		if d := mat.RelDiff(rec, prod); d > 1e-12 {
			t.Fatalf("UDT does not reconstruct the product: rel diff %g", d)
		}
	}
}

// TestOrthoError checks the Syrk-backed orthogonality diagnostic: tiny for
// the Q of a healthy stratification even under extreme grading, and O(1)
// for a deliberately non-orthogonal U factor.
func TestOrthoError(t *testing.T) {
	_, _, bs := testChain(t, 4, 4, 6, 8, 40, 17)
	for name, udt := range map[string]*UDT{"qrp": StratifyQRP(bs), "prepivot": StratifyPrePivot(bs)} {
		if e := udt.OrthoError(); e > 1e-12 {
			t.Fatalf("%s: Q lost orthogonality: ||Q^T Q - I||_F = %g", name, e)
		}
	}
	bad := &UDT{Q: bs[0].Clone()}
	if e := bad.OrthoError(); e < 1e-3 {
		t.Fatalf("non-orthogonal factor reported error %g", e)
	}
}

func TestStratifyDGraded(t *testing.T) {
	_, _, bs := testChain(t, 4, 4, 6, 8, 40, 13)
	for name, udt := range map[string]*UDT{"qrp": StratifyQRP(bs), "prepivot": StratifyPrePivot(bs)} {
		for i := 1; i < len(udt.D); i++ {
			if math.Abs(udt.D[i]) > math.Abs(udt.D[i-1])*(1+1e-9) {
				t.Fatalf("%s: D not graded at %d: |%g| > |%g|", name, i, udt.D[i], udt.D[i-1])
			}
		}
		// The dynamic range must be huge for these parameters — that is
		// the whole reason stratification exists.
		ratio := math.Abs(udt.D[0]) / math.Abs(udt.D[len(udt.D)-1])
		if ratio < 1e8 {
			t.Fatalf("%s: expected strongly graded D, ratio %g", name, ratio)
		}
	}
}

func TestGreenMatchesNaiveShortChain(t *testing.T) {
	// For a short, mild chain the naive inversion is accurate and all
	// three evaluations must coincide.
	_, _, bs := testChain(t, 3, 3, 2, 0.5, 4, 17)
	gn := GreenNaive(bs)
	g2 := GreenQRP(bs)
	g3 := Green(bs)
	if d := mat.RelDiff(g2, gn); d > 1e-11 {
		t.Fatalf("Algorithm 2 vs naive: rel diff %g", d)
	}
	if d := mat.RelDiff(g3, gn); d > 1e-11 {
		t.Fatalf("Algorithm 3 vs naive: rel diff %g", d)
	}
}

func TestAlg3MatchesAlg2LongChain(t *testing.T) {
	// The paper's Figure 2 claim: at beta = 8..32 and U up to 8 the two
	// stratifications agree to ~1e-12 relative difference in G.
	for _, u := range []float64{2, 4, 8} {
		_, _, bs := testChain(t, 4, 4, u, 8, 40, 19)
		g2 := GreenQRP(bs)
		g3 := Green(bs)
		if d := mat.RelDiff(g3, g2); d > 1e-9 {
			t.Fatalf("U=%g: Alg2 vs Alg3 rel diff %g", u, d)
		}
	}
}

func TestStratifiedMatchesBigFloatAndNaiveFails(t *testing.T) {
	// Small lattice, long chain, strong coupling: the float64 naive
	// product/inverse must have lost essentially all accuracy while both
	// stratified evaluations track the 256-bit reference.
	_, _, bs := testChain(t, 2, 2, 8, 10, 50, 23)
	ref := GreenBigFloat(bs, 256)
	g2 := GreenQRP(bs)
	g3 := Green(bs)
	gn := GreenNaive(bs)
	d2 := mat.RelDiff(g2, ref)
	d3 := mat.RelDiff(g3, ref)
	dn := mat.RelDiff(gn, ref)
	if d2 > 1e-10 {
		t.Fatalf("Algorithm 2 inaccurate vs big.Float: %g", d2)
	}
	if d3 > 1e-10 {
		t.Fatalf("Algorithm 3 inaccurate vs big.Float: %g", d3)
	}
	if dn < 1e-6 {
		t.Fatalf("naive inversion unexpectedly accurate (%g); test not probing instability", dn)
	}
	t.Logf("rel err vs 256-bit reference: alg2=%.2e alg3=%.2e naive=%.2e", d2, d3, dn)
}

func TestGreenIdentityChain(t *testing.T) {
	// With B = I, G = (I + I)^{-1} = I/2.
	n := 6
	bs := []*mat.Dense{mat.Identity(n), mat.Identity(n), mat.Identity(n)}
	g := Green(bs)
	want := mat.Identity(n)
	want.Scale(0.5)
	if !g.EqualApprox(want, 1e-13) {
		t.Fatal("G of identity chain should be I/2")
	}
}

func TestWrapMatchesFreshGreen(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 4, 2, 8, 29)
	// G_0 = (I + B8...B1)^{-1}; wrap by B_1 gives
	// G_1 = (I + B1 B8 ... B2)^{-1}, which we also evaluate fresh.
	g := Green(bs)
	w := NewWrapper(p)
	w.Wrap(g, f, hubbard.Up, 0)
	rot := append(append([]*mat.Dense{}, bs[1:]...), bs[0])
	fresh := Green(rot)
	if d := mat.RelDiff(g, fresh); d > 1e-9 {
		t.Fatalf("wrapped vs fresh G: rel diff %g", d)
	}
}

func TestWrapInverseRoundTrip(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 4, 2, 8, 31)
	g := Green(bs)
	orig := g.Clone()
	w := NewWrapper(p)
	w.Wrap(g, f, hubbard.Up, 3)
	w.WrapInverse(g, f, hubbard.Up, 3)
	if d := mat.RelDiff(g, orig); d > 1e-10 {
		t.Fatalf("Wrap/WrapInverse round trip: rel diff %g", d)
	}
}

func TestClusterProductMatchesSliceProduct(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 4, 2, 8, 37)
	cs := NewClusterSet(p, f, hubbard.Up, 4)
	if cs.NC != 2 {
		t.Fatalf("NC = %d", cs.NC)
	}
	// Bhat_1 = B4 B3 B2 B1.
	n := bs[0].Rows
	prod := bs[0].Clone()
	tmp := mat.New(n, n)
	for i := 1; i < 4; i++ {
		blas.Gemm(false, false, 1, bs[i], prod, 0, tmp)
		prod, tmp = tmp, prod
	}
	if d := mat.RelDiff(cs.Cluster(0), prod); d > 1e-13 {
		t.Fatalf("cluster 0 mismatch: %g", d)
	}
}

func TestClusteredGreenMatchesUnclustered(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 4, 4, 16, 41)
	g1 := Green(bs) // k = 1: every slice its own matrix
	cs := NewClusterSet(p, f, hubbard.Up, 4)
	g4 := cs.GreenAt(0, true)
	if d := mat.RelDiff(g4, g1); d > 1e-10 {
		t.Fatalf("clustered (k=4) vs unclustered G: rel diff %g", d)
	}
	g4qrp := cs.GreenAt(0, false)
	if d := mat.RelDiff(g4qrp, g1); d > 1e-10 {
		t.Fatalf("clustered QRP vs unclustered G: rel diff %g", d)
	}
}

func TestClusterChainRotation(t *testing.T) {
	p, f, _ := testChain(t, 2, 2, 4, 2, 8, 43)
	cs := NewClusterSet(p, f, hubbard.Up, 2)
	chain := cs.Chain(1)
	if len(chain) != 4 {
		t.Fatalf("chain length %d", len(chain))
	}
	if chain[0] != cs.Cluster(1) || chain[3] != cs.Cluster(0) {
		t.Fatal("Chain(1) should start at cluster 1 and end at cluster 0")
	}
}

func TestClusterRecomputeTracksFieldChange(t *testing.T) {
	p, f, _ := testChain(t, 3, 3, 4, 2, 8, 47)
	cs := NewClusterSet(p, f, hubbard.Up, 4)
	f.Flip(1, 3) // slice 1 lives in cluster 0
	cs.Recompute(f, 0)
	// Rebuild from scratch and compare.
	cs2 := NewClusterSet(p, f, hubbard.Up, 4)
	if d := mat.RelDiff(cs.Cluster(0), cs2.Cluster(0)); d > 1e-14 {
		t.Fatalf("recomputed cluster differs from fresh: %g", d)
	}
	if d := mat.RelDiff(cs.Cluster(1), cs2.Cluster(1)); d > 1e-14 {
		t.Fatalf("untouched cluster changed: %g", d)
	}
}

func TestGreenBigFloatIdentity(t *testing.T) {
	n := 4
	bs := []*mat.Dense{mat.Identity(n), mat.Identity(n)}
	g := GreenBigFloat(bs, 128)
	want := mat.Identity(n)
	want.Scale(0.5)
	if !g.EqualApprox(want, 1e-15) {
		t.Fatal("big.Float G of identity chain should be I/2")
	}
}

// Property: for random mild chains, Alg2 and Alg3 agree with the naive
// inversion (all matrices well conditioned, short products).
func TestQuickGreenConsistency(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0xfeed)
		n := 2 + r.Intn(8)
		l := 1 + r.Intn(4)
		bs := make([]*mat.Dense, l)
		for i := range bs {
			b := randomDense(r, n)
			// Shift towards identity to keep I + P well conditioned.
			for d := 0; d < n; d++ {
				b.Set(d, d, b.At(d, d)+2)
			}
			bs[i] = b
		}
		gn := GreenNaive(bs)
		g3 := Green(bs)
		g2 := GreenQRP(bs)
		return mat.RelDiff(g3, gn) < 1e-9 && mat.RelDiff(g2, gn) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

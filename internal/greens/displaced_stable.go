package greens

import (
	"fmt"
	"questgo/internal/blas"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/mat"
)

// This file implements the fully stable evaluation of the time-displaced
// Green's function through the two-sided graded decomposition of Loh and
// Gubernatis (the same reference as the paper's Algorithm 2):
//
//	G(tau_l, 0) = B_l ... B_1 (I + B_L ... B_1)^{-1}
//	            = ((B_l ... B_1)^{-1} + B_L ... B_{l+1})^{-1}.
//
// Forward propagation from G(0) (see DisplacedWalker) loses a digit or so
// per slice once the product develops cancellations, which is fine for
// short displacements but not for tau ~ beta/2 at strong coupling.
//
// Here both *forward* partial products are stratified with the paper's
// Algorithm 3,
//
//	P1 = B_l ... B_1     = U1 D1 T1,
//	P2 = B_L ... B_{l+1} = U2 D2 T2,
//
// and the inverse of P1 enters analytically as T1^{-1} D1^{-1} U1^T —
// a well-conditioned solve, exact diagonal reciprocals, and an orthogonal
// transpose. (Stratifying a chain of B^{-1} matrices instead loses the
// small-scale structure of the sum: the roundoff committed at the large
// scale of that product is not of factor-perturbation form, and shows up
// as ~1e-4 errors in G at strong coupling. The factored-inverse route
// below keeps every intermediate bounded and is verified against 256-bit
// references in the tests.)

// DisplacedGreen computes G(tau_l, 0) for 1 <= l <= L with cluster size k
// for both chains (k = 1 means one QR per slice).
//
// Accuracy: the achievable error tracks the conditioning of the partial
// product, err ~ eps * kappa(B_l...B_1)-ish — the same behaviour as a
// backward-stable algorithm, verified against 256-bit references in the
// tests (which also measure the intrinsic sensitivity of G(tau) to 1e-15
// input noise and find the two indistinguishable). For l = L the exact
// antiperiodicity identity G(beta, 0) = I - G(0) is used instead, which is
// well conditioned at any coupling.
func DisplacedGreen(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, l, k int) *mat.Dense {
	L := p.Model.L
	if l < 1 || l > L {
		panic(fmt.Sprintf("greens: displaced slice %d out of range [1, %d]", l, L))
	}
	if k < 1 {
		k = 1
	}
	if l == L {
		g0 := GreenFromUDT(StratifyPrePivot(forwardClusters(p, f, sigma, 0, L, k)))
		out := mat.Identity(p.Model.N())
		out.Add(-1, g0)
		return out
	}
	udt1 := StratifyPrePivot(forwardClusters(p, f, sigma, 0, l, k))
	udt2 := StratifyPrePivot(forwardClusters(p, f, sigma, l, L, k))
	return invertFactoredSum(udt1, udt2)
}

// DisplacedGreenReverse computes the "reverse" displaced Green's function
//
//	G(0, tau_l) = <T c(0) c^dag(tau_l)> = -(I - G(0)) (B_l ... B_1)^{-1}
//	            = -(B_l ... B_1 + (B_L ... B_{l+1})^{-1})^{-1},
//
// the other ingredient of unequal-time two-particle correlators
// (susceptibilities): <c^dag_a(tau) c_b(0)> = -G(0,tau)(b,a) for tau > 0.
// Evaluated with the same two-sided graded machinery as DisplacedGreen,
// with the roles of the chains exchanged.
func DisplacedGreenReverse(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, l, k int) *mat.Dense {
	L := p.Model.L
	if l < 1 || l > L {
		panic(fmt.Sprintf("greens: displaced slice %d out of range [1, %d]", l, L))
	}
	if k < 1 {
		k = 1
	}
	var out *mat.Dense
	if l == L {
		// G(0, beta) = -(I - G(beta-chain inverse + ...)) — the sum
		// degenerates to P1 + I with P1 the full chain:
		// G(0, beta) = -(P1 + I)^{-1}... but (I + P1)^{-1} = G(0), so
		// G(0, beta) = -G(0), which is the antiperiodic image.
		out = GreenFromUDT(StratifyPrePivot(forwardClusters(p, f, sigma, 0, L, k)))
	} else {
		udt1 := StratifyPrePivot(forwardClusters(p, f, sigma, 0, l, k))
		udt2 := StratifyPrePivot(forwardClusters(p, f, sigma, l, L, k))
		out = invertFactoredSum(udt2, udt1)
	}
	out.Scale(-1)
	return out
}

// forwardClusters splits slices [lo, hi) into clusters of at most k and
// returns the cluster matrices in application order (lowest slices first).
func forwardClusters(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, lo, hi, k int) []*mat.Dense {
	out := make([]*mat.Dense, 0, (hi-lo+k-1)/k)
	for base := lo; base < hi; base += k {
		end := base + k
		if end > hi {
			end = hi
		}
		out = append(out, forwardCluster(p, f, sigma, base, end))
	}
	return out
}

// forwardCluster builds B_{hi} ... B_{lo+1} (slices lo..hi-1, 0-based).
func forwardCluster(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, lo, hi int) *mat.Dense {
	n := p.Model.N()
	a := p.Bkin.Clone()
	v := make([]float64, n)
	p.VDiag(sigma, f, lo, v)
	a.ScaleRows(v)
	tmp := mat.New(n, n)
	for s := lo + 1; s < hi; s++ {
		blas.Gemm(false, false, 1, p.Bkin, a, 0, tmp)
		p.VDiag(sigma, f, s, v)
		tmp.ScaleRows(v)
		a, tmp = tmp, a
	}
	return a
}

func identityUDT(n int) *UDT {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	return &UDT{Q: mat.Identity(n), D: d, T: mat.Identity(n)}
}

// invertFactoredSum computes ((U1 D1 T1)^{-1} + U2 D2 T2)^{-1} with the
// big/small splitting of Loh and Gubernatis. Writing Da = D1^{-1} (exact
// reciprocals) and D = D^b * D^s with D^b = max(|D|, 1) carrying the sign
// and |D^s| <= 1:
//
//	A + B = T1^{-1} Da^b [ Da^s U1^T T2^{-1} (Db^b)^{-1}
//	                     + (Da^b)^{-1} T1 U2 Db^s ] Db^b T2
//
// so every matrix entering the bracket C is a product of factors bounded
// by one in magnitude with well-conditioned matrices, and
//
//	G = T2^{-1} (Db^b)^{-1} C^{-1} (Da^b)^{-1} T1.
func invertFactoredSum(u1, u2 *UDT) *mat.Dense {
	n := u1.Q.Rows
	da := make([]float64, n)
	for i, v := range u1.D {
		if v == 0 {
			da[i] = 0
		} else {
			da[i] = 1 / v
		}
	}
	daBig, daSmall := splitBigSmall(da)
	dbBig, dbSmall := splitBigSmall(u2.D)

	// M = U1^T * T2^{-1}: solve M T2 = U1^T, i.e. T2^T M^T = U1.
	t2T := u2.T.Transpose()
	luT2T, _ := lapack.LUFactor(t2T)
	mT := u1.Q.Clone()
	luT2T.Solve(mT)
	m := mT.Transpose()
	// N = T1 * U2.
	nn := mat.New(n, n)
	blas.Gemm(false, false, 1, u1.T, u2.Q, 0, nn)

	// C = Da^s M (Db^b)^{-1} + (Da^b)^{-1} N Db^s.
	m.ScaleRows(daSmall)
	scaleInvCols(m, dbBig)
	scaleInvRows(nn, daBig)
	nn.ScaleCols(dbSmall)
	m.Add(1, nn)

	// RHS = (Da^b)^{-1} T1; solve C X = RHS.
	x := u1.T.Clone()
	scaleInvRows(x, daBig)
	luC, _ := lapack.LUFactor(m)
	luC.Solve(x)
	// X <- (Db^b)^{-1} X, then solve T2 G = X.
	scaleInvRows(x, dbBig)
	luT2, _ := lapack.LUFactor(u2.T.Clone())
	luT2.Solve(x)
	return x
}

// InvertUDTSum computes (Ua Da Ta + Ub Db Tb)^{-1} for two explicit UDT
// decompositions, with the same big/small splitting:
//
//	A + B = Ua Da^b [ Da^s (Ta Tb^{-1}) (Db^b)^{-1}
//	                + (Da^b)^{-1} (Ua^T Ub) Db^s ] Db^b Tb.
//
// Use invertFactoredSum (via DisplacedGreen) when A is the inverse of a
// stratified product — feeding this function a UDT obtained by stratifying
// a chain of inverse matrices loses small-scale accuracy (see the file
// comment).
func InvertUDTSum(a, b *UDT) *mat.Dense {
	n := a.Q.Rows
	daBig, daSmall := splitBigSmall(a.D)
	dbBig, dbSmall := splitBigSmall(b.D)

	// M = Ta * Tb^{-1}: solve M Tb = Ta, i.e. Tb^T M^T = Ta^T.
	tbT := b.T.Transpose()
	luTbT, _ := lapack.LUFactor(tbT)
	mT := a.T.Transpose()
	luTbT.Solve(mT)
	m := mT.Transpose()
	// N = Ua^T Ub (transpose absorbed by the Gemm packing).
	nn := mat.New(n, n)
	blas.GemmTN(1, a.Q, b.Q, 0, nn)

	// C = Da^s M (Db^b)^{-1} + (Da^b)^{-1} N Db^s.
	m.ScaleRows(daSmall)
	scaleInvCols(m, dbBig)
	scaleInvRows(nn, daBig)
	nn.ScaleCols(dbSmall)
	m.Add(1, nn)

	// RHS = (Da^b)^{-1} Ua^T; solve C X = RHS.
	x := a.Q.Transpose()
	scaleInvRows(x, daBig)
	luC, _ := lapack.LUFactor(m)
	luC.Solve(x)
	// X <- (Db^b)^{-1} X, then solve Tb G = X.
	scaleInvRows(x, dbBig)
	luTb, _ := lapack.LUFactor(b.T.Clone())
	luTb.Solve(x)
	return x
}

// splitBigSmall returns (D^b, D^s) with D^b = max(|d|, 1) carrying the
// sign of d and D^s = d / D^b, so d = D^b * D^s element-wise.
func splitBigSmall(d []float64) (big, small []float64) {
	big = make([]float64, len(d))
	small = make([]float64, len(d))
	for i, v := range d {
		a := v
		if a < 0 {
			a = -a
		}
		if a > 1 {
			if v < 0 {
				big[i] = -a
			} else {
				big[i] = a
			}
			small[i] = v / big[i]
		} else {
			big[i] = 1
			small[i] = v
		}
	}
	return
}

// scaleInvCols scales column j of m by 1/d[j], guarding zeros.
func scaleInvCols(m *mat.Dense, d []float64) {
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 0
		} else {
			inv[i] = 1 / v
		}
	}
	m.ScaleCols(inv)
}

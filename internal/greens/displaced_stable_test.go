package greens

import (
	"math/big"
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// bigDisplaced computes B_l ... B_1 (I + B_L ... B_1)^{-1} entirely in
// high precision — G(0) is never rounded to float64 before the chain
// multiplication (rounding it would inject eps*||B_l...B_1|| error into
// the "reference", swamping the quantity under test).
func bigDisplaced(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, l int, prec uint) *mat.Dense {
	n := p.Model.N()
	bs := make([]*mat.Dense, p.Model.L)
	for i := range bs {
		bs[i] = p.BMatrix(sigma, f, i)
	}
	// Full product in big precision.
	prod := bigFromDense(bs[0], prec)
	var partial [][]*big.Float
	if l == 0 {
		partial = bigFromDense(mat.Identity(n), prec)
	}
	for i := 1; i < len(bs); i++ {
		if i == l {
			partial = cloneBig(prod, prec)
		}
		prod = bigMul(bigFromDense(bs[i], prec), prod, prec)
	}
	if l == len(bs) {
		partial = cloneBig(prod, prec)
	}
	// G0 = (I + prod)^{-1} in big precision.
	one := new(big.Float).SetPrec(prec).SetInt64(1)
	for i := 0; i < n; i++ {
		prod[i][i].Add(prod[i][i], one)
	}
	g0 := bigInverse(prod, prec)
	res := bigMul(partial, g0, prec)
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v, _ := res[i][j].Float64()
			out.Set(i, j, v)
		}
	}
	return out
}

func cloneBig(a [][]*big.Float, prec uint) [][]*big.Float {
	out := make([][]*big.Float, len(a))
	for i := range a {
		out[i] = make([]*big.Float, len(a[i]))
		for j := range a[i] {
			out[i][j] = new(big.Float).SetPrec(prec).Set(a[i][j])
		}
	}
	return out
}

func TestDisplacedGreenMatchesBigFloat(t *testing.T) {
	// Strong coupling (U = 8, beta = 5, partial-product condition numbers
	// up to ~1e22): the two-sided evaluation must track the 256-bit
	// reference to near machine precision at *every* displacement. (Note
	// the reference must itself be computed end-to-end in high precision:
	// rounding G(0) to float64 before the chain multiplication injects
	// eps*||B_l...B_1|| of error — the very amplification the two-sided
	// formula exists to avoid.)
	p, f, _ := testChain(t, 2, 2, 8, 5, 25, 53)
	for _, l := range []int{1, 5, 12, 20, 24, 25} {
		got := DisplacedGreen(p, f, hubbard.Up, l, 5)
		want := bigDisplaced(p, f, hubbard.Up, l, 256)
		if d := mat.RelDiff(got, want); d > 1e-10 {
			t.Fatalf("l=%d: stable displaced G rel diff %g", l, d)
		}
	}
}

func TestDisplacedGreenShortTauMatchesWalker(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 4, 2, 8, 61)
	g0 := Green(bs)
	w := NewDisplacedWalker(p, g0, hubbard.Up, 4)
	for s := 0; s < 3; s++ {
		w.Step(f)
	}
	stable := DisplacedGreen(p, f, hubbard.Up, 3, 4)
	if d := mat.RelDiff(w.Current(), stable); d > 1e-9 {
		t.Fatalf("walker vs stable at short tau: %g", d)
	}
}

func TestDisplacedGreenAntiperiodicity(t *testing.T) {
	p, f, bs := testChain(t, 3, 3, 6, 3, 12, 67)
	g0 := Green(bs)
	gBeta := DisplacedGreen(p, f, hubbard.Up, p.Model.L, 4)
	want := mat.Identity(g0.Rows)
	want.Add(-1, g0)
	if d := mat.RelDiff(gBeta, want); d > 1e-9 {
		t.Fatalf("G(beta,0) != I - G(0): %g", d)
	}
}

func TestDisplacedGreenFreeFermions(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 6.0, 30
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(2))
	dtau := beta / float64(L)
	for _, l := range []int{1, 10, 15, 30} {
		got := DisplacedGreen(p, f, hubbard.Up, l, 10)
		want := freeDisplaced(lat, beta, dtau*float64(l))
		if d := mat.RelDiff(got, want); d > 1e-9 {
			t.Fatalf("free fermions l=%d: %g", l, d)
		}
	}
}

func TestInvertUDTSumEqualTimeConsistency(t *testing.T) {
	// (I + B_L...B_1)^{-1} via InvertUDTSum(identity, chain) must equal
	// the production equal-time evaluation.
	_, _, bs := testChain(t, 3, 3, 6, 4, 16, 71)
	udtB := StratifyPrePivot(bs)
	g1 := InvertUDTSum(identityUDT(bs[0].Rows), udtB)
	g2 := Green(bs)
	if d := mat.RelDiff(g1, g2); d > 1e-10 {
		t.Fatalf("UDT-sum vs stratified equal-time G: %g", d)
	}
}

func TestDisplacedGreenPanicsOutOfRange(t *testing.T) {
	p, f, _ := testChain(t, 2, 2, 4, 1, 4, 73)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for l = 0")
		}
	}()
	DisplacedGreen(p, f, hubbard.Up, 0, 2)
}

// Package greens evaluates the DQMC equal-time Green's function
//
//	G = (I + B_L B_{L-1} ... B_1)^{-1}
//
// with the numerically stable graded (UDT) decompositions of the paper:
// Algorithm 2, the classic Loh et al. stratification built on QR with
// column pivoting, and Algorithm 3, the paper's contribution, which
// replaces per-step pivoting by a pre-computed column-norm permutation
// followed by an ordinary blocked QR. It also implements the cost
// reductions of Section III: matrix clustering, wrapping, cluster
// recycling, and (stack.go) the amortized prefix/suffix UDT stack that
// replaces the per-boundary full-chain rebuild.
package greens

import (
	"math"
	"sort"
	"sync"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// UDT is the graded decomposition Q * diag(D) * T of a long matrix product.
// Q is orthogonal, D carries the (typically enormous) dynamic range sorted
// in descending magnitude, and T is well conditioned with unit diagonal.
type UDT struct {
	Q *mat.Dense
	D []float64
	T *mat.Dense
}

// Matrix multiplies the factors back together (test/diagnostic use only —
// the whole point of the decomposition is never to form this product in
// floating point when the grading is extreme).
func (u *UDT) Matrix() *mat.Dense {
	n := u.Q.Rows
	qd := u.Q.Clone()
	qd.ScaleCols(u.D)
	out := mat.New(n, n)
	blas.Gemm(false, false, 1, qd, u.T, 0, out)
	return out
}

// UDTSteps returns the cumulative cluster-UDT step count (one per matrix
// absorbed into a decomposition, plus one per stack combine). The counter
// lives in the obs instrumentation layer; this accessor is kept for the
// stack tests that assert the prefix/suffix scheme performs asymptotically
// fewer steps per sweep than the full-chain rebuild. Monotonic; take deltas
// to compare code paths.
func UDTSteps() int64 { return obs.Total(obs.OpUDTSteps) }

// vecPool recycles the float64 work vectors (inverse diagonals, column
// norms) that the stratification loop used to allocate on every call.
var vecPool sync.Pool

func getVec(n int) []float64 {
	if v, ok := vecPool.Get().(*[]float64); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float64, n)
}

func putVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	vecPool.Put(&v)
}

// permPool does the same for the pre-pivot permutation vectors.
var permPool sync.Pool

func getPerm(n int) []int {
	if p, ok := permPool.Get().(*[]int); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int, n)
}

func putPerm(p []int) {
	if cap(p) == 0 {
		return
	}
	permPool.Put(&p)
}

// scaleInvRows overwrites r with diag(d)^{-1} * r, guarding exact zeros
// (a structurally singular slice product would produce a zero pivot). The
// inverse diagonal lives in pooled scratch — this runs in the innermost
// stratification loop.
func scaleInvRows(r *mat.Dense, d []float64) {
	inv := getVec(len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 0
		} else {
			inv[i] = 1 / v
		}
	}
	r.ScaleRows(inv)
	putVec(inv)
}

// permuteColsGather writes dst[:, j] = src[:, perm[j]].
func permuteColsGather(dst, src *mat.Dense, perm []int) {
	for j, p := range perm {
		copy(dst.Col(j), src.Col(p))
	}
}

// permuteRowsGather writes dst[j, :] = src[perm[j], :] (this is P^T * src
// when src*P gathers columns by perm).
func permuteRowsGather(dst, src *mat.Dense, perm []int) {
	for j := 0; j < src.Cols; j++ {
		s := src.Col(j)
		d := dst.Col(j)
		for i, p := range perm {
			d[i] = s[p]
		}
	}
}

// StratifyQRP runs Algorithm 2 on the matrices bs, given in application
// order (bs[0] is applied first, i.e. the product is
// bs[len-1] * ... * bs[1] * bs[0]), and returns its UDT decomposition.
// Every step uses the QR factorization with column pivoting — since the
// level-3 rewrite of lapack.QRPFactor this path rides the blocked panel
// factorization too, so choosing Algorithm 2 no longer forfeits the packed
// GEMM throughput.
func StratifyQRP(bs []*mat.Dense) *UDT {
	return stratify(bs, true)
}

// StratifyPrePivot runs Algorithm 3: the first factorization still pivots
// (there is no grading to exploit yet), every subsequent step sorts the
// columns of C_i by descending norm up front and then runs the ordinary
// blocked QR. This removes the level-2 pivoting bottleneck while the
// progressive grading keeps the decomposition stable.
func StratifyPrePivot(bs []*mat.Dense) *UDT {
	return stratify(bs, false)
}

// initUDT seeds u with the decomposition of a single matrix b:
// B = Q R P^T with column pivoting (there is no grading to exploit yet, so
// Algorithm 2 and 3 share this step); D = diag(R), T = D^{-1} R P^T.
// work and r are n x n scratch (work is overwritten by the factorization).
//
//qmc:charges OpUDTSteps
//qmc:hot
func initUDT(u *UDT, b *mat.Dense, work, r *mat.Dense) {
	n := b.Rows
	work.CopyFrom(b)
	qr, jpvt := lapack.QRPFactor(work)
	qr.RInto(r)
	r.Diagonal(u.D)
	scaleInvRows(r, u.D)
	// T = (D^{-1} R) P^T: column j of D^{-1}R came from original column
	// jpvt[j], so scatter it back there. Every column is written, so a
	// dirty T buffer is fine.
	for j := 0; j < n; j++ {
		copy(u.T.Col(jpvt[j]), r.Col(j))
	}
	qr.FormQ(u.Q)
	qr.Release()
	lapack.PutPivot(&jpvt)
	obs.Add(obs.OpUDTSteps, 1)
}

// extendUDT absorbs one more matrix into the decomposition from the left:
// u <- UDT of (b * Q D T). This is the per-cluster step 3 of the
// stratification algorithms; pivotEveryStep selects Algorithm 2 (QRP) vs
// Algorithm 3 (descending-norm pre-pivot + blocked QR). work, r and tNew
// are n x n scratch.
//
//qmc:charges OpUDTSteps
//qmc:hot
func extendUDT(u *UDT, b *mat.Dense, pivotEveryStep bool, work, r, tNew *mat.Dense) {
	// Step 3a: C = (B Q) D. The parenthesization is essential: B * Q is a
	// product of well-scaled matrices, and the graded D enters only as a
	// final column scaling.
	blas.Gemm(false, false, 1, b, u.Q, 0, work)
	work.ScaleCols(u.D)

	var qr *lapack.QR
	var perm []int
	if pivotEveryStep {
		qr, perm = lapack.QRPFactor(work)
	} else {
		// Algorithm 3 step 3b: pre-pivot by descending column norm.
		perm = descendingNormPerm(work)
		permuteColsGather(tNew, work, perm) // tNew used as scratch here
		work.CopyFrom(tNew)
		qr = lapack.QRFactor(work)
	}
	qr.RInto(r)
	r.Diagonal(u.D)
	scaleInvRows(r, u.D)
	// Step 3c/3d: T = (D^{-1} R) (P^T T_prev).
	permuteRowsGather(tNew, u.T, perm)
	blas.Gemm(false, false, 1, r, tNew, 0, u.T)
	qr.FormQ(u.Q)
	qr.Release()
	if pivotEveryStep {
		lapack.PutPivot(&perm)
	} else {
		putPerm(perm)
	}
	obs.Add(obs.OpUDTSteps, 1)
}

// stratifyInto runs the full chain through u, whose Q/D/T must be
// preallocated n x n / n; every temporary comes from the scratch pool.
//
//qmc:hot
func stratifyInto(u *UDT, bs []*mat.Dense, pivotEveryStep bool) {
	if len(bs) == 0 {
		panic("greens: empty matrix chain")
	}
	n := bs[0].Rows
	work := mat.GetScratch(n, n)
	r := mat.GetScratch(n, n)
	tNew := mat.GetScratch(n, n)
	defer func() {
		mat.PutScratch(work)
		mat.PutScratch(r)
		mat.PutScratch(tNew)
	}()
	initUDT(u, bs[0], work, r)
	for i := 1; i < len(bs); i++ {
		extendUDT(u, bs[i], pivotEveryStep, work, r, tNew)
	}
}

func stratify(bs []*mat.Dense, pivotEveryStep bool) *UDT {
	if len(bs) == 0 {
		panic("greens: empty matrix chain")
	}
	n := bs[0].Rows
	// Q, D, T escape in the returned UDT.
	u := &UDT{Q: mat.New(n, n), D: make([]float64, n), T: mat.New(n, n)}
	stratifyInto(u, bs, pivotEveryStep)
	return u
}

// descendingNormPerm returns the permutation that sorts the columns of c by
// descending Euclidean norm. The norms are computed in parallel — the paper
// notes the BLAS-level loop has too little work per column and implements
// exactly this multicore reduction in OpenMP. The returned slice comes from
// the pool; release it with putPerm when done.
func descendingNormPerm(c *mat.Dense) []int {
	norms := lapack.ColumnNorms(c, getVec(c.Cols))
	perm := getPerm(len(norms))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return norms[perm[a]] > norms[perm[b]] })
	putVec(norms)
	return perm
}

// GreenFromUDTInto forms G = (I + Q D T)^{-1} into dst through the
// stabilized final step of the stratification algorithms. Writing
// D = D_b^{-1} D_s with
//
//	D_b(i) = 1/|D(i)| if |D(i)| > 1, else 1   (inverse "big" part)
//	D_s(i) = sgn(D(i)) if |D(i)| > 1, else D(i) ("small" part)
//
// gives I + Q D T = Q D_b^{-1} (D_b Q^T + D_s T), hence
//
//	G = (D_b Q^T + D_s T)^{-1} D_b Q^T,
//
// a solve whose matrix mixes only O(1)-sized entries. This is algebraically
// the paper's step 4 in the form of Bai, Lee, Li and Xu (2010).
func GreenFromUDTInto(dst *mat.Dense, u *UDT) {
	n := u.Q.Rows
	db := getVec(n)
	ds := getVec(n)
	for i, v := range u.D {
		if a := math.Abs(v); a > 1 {
			db[i] = 1 / a
			ds[i] = math.Copysign(1, v)
		} else {
			db[i] = 1
			ds[i] = v
		}
	}
	// M = D_b Q^T + D_s T, RHS = D_b Q^T.
	qt := mat.GetScratch(n, n)
	u.Q.TransposeInto(qt)
	qt.ScaleRows(db)
	m := mat.GetScratch(n, n)
	m.CopyFrom(u.T)
	m.ScaleRows(ds)
	m.Add(1, qt)
	dst.CopyFrom(qt)
	lu, err := lapack.LUFactor(m)
	if err != nil {
		// A singular M means the configuration has a genuinely singular
		// I + B...B; propagate NaNs rather than abort, matching LAPACK
		// behaviour. (Never observed for physical parameters.)
		_ = err
	}
	lu.Solve(dst)
	mat.PutScratch(qt)
	mat.PutScratch(m)
	putVec(db)
	putVec(ds)
}

// GreenFromUDT is GreenFromUDTInto with a freshly allocated result.
func GreenFromUDT(u *UDT) *mat.Dense {
	g := mat.New(u.Q.Rows, u.Q.Rows)
	GreenFromUDTInto(g, u)
	return g
}

// OrthoError returns ||Q^T Q - I||_F, the departure of the U factor from
// orthogonality. It is the cheap stability diagnostic of the stratification:
// a healthy decomposition keeps it at a small multiple of machine epsilon
// regardless of the grading in D. The Gram matrix comes from the symmetric
// rank-k kernel (blas.Syrk), which does roughly half the work of a full
// Q^T * Q product.
func (u *UDT) OrthoError() float64 {
	n := u.Q.Cols
	s := mat.GetScratch(n, n)
	blas.Syrk(1, u.Q, 0, s)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)-1)
	}
	err := s.FrobNorm()
	mat.PutScratch(s)
	return err
}

// Green evaluates G = (I + bs[last] ... bs[0])^{-1} with Algorithm 3
// (the production path). Use GreenQRP for the Algorithm 2 reference.
func Green(bs []*mat.Dense) *mat.Dense { return GreenFromUDT(StratifyPrePivot(bs)) }

// GreenInto is Green writing into dst, with the intermediate UDT factors
// drawn from the scratch pool (nothing escapes).
func GreenInto(dst *mat.Dense, bs []*mat.Dense, prePivot bool) {
	n := bs[0].Rows
	q := mat.GetScratch(n, n)
	t := mat.GetScratch(n, n)
	d := getVec(n)
	u := &UDT{Q: q, D: d, T: t}
	stratifyInto(u, bs, !prePivot)
	GreenFromUDTInto(dst, u)
	check.Finite("greens.GreenInto", dst)
	mat.PutScratch(q)
	mat.PutScratch(t)
	putVec(d)
}

// GreenQRP evaluates the same Green's function with Algorithm 2.
func GreenQRP(bs []*mat.Dense) *mat.Dense { return GreenFromUDT(StratifyQRP(bs)) }

// GreenNaive forms the product and inverts I + P directly, with no
// stratification. It is the obvious algorithm that loses all accuracy at
// large beta*U — kept as the contrast case for tests and documentation.
func GreenNaive(bs []*mat.Dense) *mat.Dense {
	n := bs[0].Rows
	p := bs[0].Clone()
	tmp := mat.New(n, n)
	for i := 1; i < len(bs); i++ {
		blas.Gemm(false, false, 1, bs[i], p, 0, tmp)
		p, tmp = tmp, p
	}
	for i := 0; i < n; i++ {
		p.Set(i, i, p.At(i, i)+1)
	}
	g := mat.New(n, n)
	lu, _ := lapack.LUFactor(p)
	lu.Invert(g)
	return g
}

// Package greens evaluates the DQMC equal-time Green's function
//
//	G = (I + B_L B_{L-1} ... B_1)^{-1}
//
// with the numerically stable graded (UDT) decompositions of the paper:
// Algorithm 2, the classic Loh et al. stratification built on QR with
// column pivoting, and Algorithm 3, the paper's contribution, which
// replaces per-step pivoting by a pre-computed column-norm permutation
// followed by an ordinary blocked QR. It also implements the cost
// reductions of Section III: matrix clustering, wrapping, and cluster
// recycling.
package greens

import (
	"math"
	"sort"

	"questgo/internal/blas"
	"questgo/internal/lapack"
	"questgo/internal/mat"
)

// UDT is the graded decomposition Q * diag(D) * T of a long matrix product.
// Q is orthogonal, D carries the (typically enormous) dynamic range sorted
// in descending magnitude, and T is well conditioned with unit diagonal.
type UDT struct {
	Q *mat.Dense
	D []float64
	T *mat.Dense
}

// Matrix multiplies the factors back together (test/diagnostic use only —
// the whole point of the decomposition is never to form this product in
// floating point when the grading is extreme).
func (u *UDT) Matrix() *mat.Dense {
	n := u.Q.Rows
	qd := u.Q.Clone()
	qd.ScaleCols(u.D)
	out := mat.New(n, n)
	blas.Gemm(false, false, 1, qd, u.T, 0, out)
	return out
}

// scaleInvRows overwrites r with diag(d)^{-1} * r, guarding exact zeros
// (a structurally singular slice product would produce a zero pivot).
func scaleInvRows(r *mat.Dense, d []float64) {
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 0
		} else {
			inv[i] = 1 / v
		}
	}
	r.ScaleRows(inv)
}

// permuteColsGather writes dst[:, j] = src[:, perm[j]].
func permuteColsGather(dst, src *mat.Dense, perm []int) {
	for j, p := range perm {
		copy(dst.Col(j), src.Col(p))
	}
}

// permuteRowsGather writes dst[j, :] = src[perm[j], :] (this is P^T * src
// when src*P gathers columns by perm).
func permuteRowsGather(dst, src *mat.Dense, perm []int) {
	for j := 0; j < src.Cols; j++ {
		s := src.Col(j)
		d := dst.Col(j)
		for i, p := range perm {
			d[i] = s[p]
		}
	}
}

// StratifyQRP runs Algorithm 2 on the matrices bs, given in application
// order (bs[0] is applied first, i.e. the product is
// bs[len-1] * ... * bs[1] * bs[0]), and returns its UDT decomposition.
// Every step uses the QR factorization with column pivoting.
func StratifyQRP(bs []*mat.Dense) *UDT {
	return stratify(bs, true)
}

// StratifyPrePivot runs Algorithm 3: the first factorization still pivots
// (there is no grading to exploit yet), every subsequent step sorts the
// columns of C_i by descending norm up front and then runs the ordinary
// blocked QR. This removes the level-2 pivoting bottleneck while the
// progressive grading keeps the decomposition stable.
func StratifyPrePivot(bs []*mat.Dense) *UDT {
	return stratify(bs, false)
}

func stratify(bs []*mat.Dense, pivotEveryStep bool) *UDT {
	if len(bs) == 0 {
		panic("greens: empty matrix chain")
	}
	n := bs[0].Rows

	// Q, D, T escape in the returned UDT; every other n x n temporary is
	// recycled through the scratch pool across calls.
	c := mat.GetScratch(n, n)
	r := mat.GetScratch(n, n)
	ci := mat.GetScratch(n, n)
	tNew := mat.GetScratch(n, n)
	defer func() {
		mat.PutScratch(c)
		mat.PutScratch(r)
		mat.PutScratch(ci)
		mat.PutScratch(tNew)
	}()

	// Step 1-2: B_1 = Q_1 R_1 P_1^T; D_1 = diag(R_1); T_1 = D_1^{-1} R_1 P_1^T.
	c.CopyFrom(bs[0])
	qr, jpvt := lapack.QRPFactor(c)
	d := make([]float64, n)
	qr.RInto(r)
	r.Diagonal(d)
	scaleInvRows(r, d)
	t := mat.New(n, n)
	// T_1 = (D^{-1} R) P^T: column j of D^{-1}R came from original column
	// jpvt[j], so scatter it back there.
	for j := 0; j < n; j++ {
		copy(t.Col(jpvt[j]), r.Col(j))
	}
	q := mat.New(n, n)
	qr.FormQ(q)

	for i := 1; i < len(bs); i++ {
		// Step 3a: C_i = (B_i Q_{i-1}) D_{i-1}. The parenthesization is
		// essential: B_i * Q is a product of well-scaled matrices, and the
		// graded D enters only as a final column scaling.
		blas.Gemm(false, false, 1, bs[i], q, 0, ci)
		ci.ScaleCols(d)

		var perm []int
		if pivotEveryStep {
			qr, perm = lapack.QRPFactor(ci)
		} else {
			// Algorithm 3 step 3b: pre-pivot by descending column norm.
			perm = descendingNormPerm(ci)
			permuteColsGather(tNew, ci, perm) // tNew used as scratch here
			ci.CopyFrom(tNew)
			qr = lapack.QRFactor(ci)
		}
		qr.RInto(r)
		r.Diagonal(d)
		scaleInvRows(r, d)
		// Step 3c/3d: T_i = (D_i^{-1} R_i) (P_i^T T_{i-1}).
		permuteRowsGather(tNew, t, perm)
		blas.Gemm(false, false, 1, r, tNew, 0, t)
		qr.FormQ(q)
	}
	return &UDT{Q: q, D: d, T: t}
}

// descendingNormPerm returns the permutation that sorts the columns of c by
// descending Euclidean norm. The norms are computed in parallel — the paper
// notes the BLAS-level loop has too little work per column and implements
// exactly this multicore reduction in OpenMP.
func descendingNormPerm(c *mat.Dense) []int {
	norms := lapack.ColumnNorms(c, nil)
	perm := make([]int, len(norms))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return norms[perm[a]] > norms[perm[b]] })
	return perm
}

// GreenFromUDT forms G = (I + Q D T)^{-1} through the stabilized final
// step of the stratification algorithms. Writing D = D_b^{-1} D_s with
//
//	D_b(i) = 1/|D(i)| if |D(i)| > 1, else 1   (inverse "big" part)
//	D_s(i) = sgn(D(i)) if |D(i)| > 1, else D(i) ("small" part)
//
// gives I + Q D T = Q D_b^{-1} (D_b Q^T + D_s T), hence
//
//	G = (D_b Q^T + D_s T)^{-1} D_b Q^T,
//
// a solve whose matrix mixes only O(1)-sized entries. This is algebraically
// the paper's step 4 in the form of Bai, Lee, Li and Xu (2010).
func GreenFromUDT(u *UDT) *mat.Dense {
	n := u.Q.Rows
	db := make([]float64, n)
	ds := make([]float64, n)
	for i, v := range u.D {
		if a := math.Abs(v); a > 1 {
			db[i] = 1 / a
			ds[i] = math.Copysign(1, v)
		} else {
			db[i] = 1
			ds[i] = v
		}
	}
	// M = D_b Q^T + D_s T, RHS = D_b Q^T.
	qt := mat.GetScratch(n, n)
	u.Q.TransposeInto(qt)
	qt.ScaleRows(db)
	m := mat.GetScratch(n, n)
	m.CopyFrom(u.T)
	m.ScaleRows(ds)
	m.Add(1, qt)
	g := qt.Clone()
	lu, err := lapack.LUFactor(m)
	if err != nil {
		// A singular M means the configuration has a genuinely singular
		// I + B...B; propagate NaNs rather than abort, matching LAPACK
		// behaviour. (Never observed for physical parameters.)
		_ = err
	}
	lu.Solve(g)
	mat.PutScratch(qt)
	mat.PutScratch(m)
	return g
}

// OrthoError returns ||Q^T Q - I||_F, the departure of the U factor from
// orthogonality. It is the cheap stability diagnostic of the stratification:
// a healthy decomposition keeps it at a small multiple of machine epsilon
// regardless of the grading in D. The Gram matrix comes from the symmetric
// rank-k kernel (blas.Syrk), which does roughly half the work of a full
// Q^T * Q product.
func (u *UDT) OrthoError() float64 {
	n := u.Q.Cols
	s := mat.GetScratch(n, n)
	blas.Syrk(1, u.Q, 0, s)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)-1)
	}
	err := s.FrobNorm()
	mat.PutScratch(s)
	return err
}

// Green evaluates G = (I + bs[last] ... bs[0])^{-1} with Algorithm 3
// (the production path). Use GreenQRP for the Algorithm 2 reference.
func Green(bs []*mat.Dense) *mat.Dense { return GreenFromUDT(StratifyPrePivot(bs)) }

// GreenQRP evaluates the same Green's function with Algorithm 2.
func GreenQRP(bs []*mat.Dense) *mat.Dense { return GreenFromUDT(StratifyQRP(bs)) }

// GreenNaive forms the product and inverts I + P directly, with no
// stratification. It is the obvious algorithm that loses all accuracy at
// large beta*U — kept as the contrast case for tests and documentation.
func GreenNaive(bs []*mat.Dense) *mat.Dense {
	n := bs[0].Rows
	p := bs[0].Clone()
	tmp := mat.New(n, n)
	for i := 1; i < len(bs); i++ {
		blas.Gemm(false, false, 1, bs[i], p, 0, tmp)
		p, tmp = tmp, p
	}
	for i := 0; i < n; i++ {
		p.Set(i, i, p.At(i, i)+1)
	}
	g := mat.New(n, n)
	lu, _ := lapack.LUFactor(p)
	lu.Invert(g)
	return g
}

package config

import (
	"strings"
	"testing"
)

func parse(t *testing.T, s string) *File {
	t.Helper()
	f, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseBasics(t *testing.T) {
	f := parse(t, `
# lattice
nx = 8
ny = 8
U  = 2.5   # coupling
prepivot = true
name = run one
`)
	if f.Int("nx", 0) != 8 || f.Int("ny", 0) != 8 {
		t.Fatal("int parsing failed")
	}
	if f.Float("U", 0) != 2.5 {
		t.Fatal("float parsing failed")
	}
	if !f.Bool("prepivot", false) {
		t.Fatal("bool parsing failed")
	}
	if f.String("name", "") != "run one" {
		t.Fatal("string with spaces failed")
	}
	if err := f.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCaseInsensitiveKeys(t *testing.T) {
	f := parse(t, "BeTa = 8\n")
	if f.Float("beta", 0) != 8 {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestDefaults(t *testing.T) {
	f := parse(t, "")
	if f.Int("missing", 7) != 7 || f.Float("missing", 1.5) != 1.5 ||
		!f.Bool("missing", true) || f.String("missing", "x") != "x" ||
		f.Uint64("missing", 9) != 9 {
		t.Fatal("defaults not honored")
	}
	if f.Has("missing") {
		t.Fatal("Has on missing key")
	}
}

func TestMalformedLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("nx 8\n")); err == nil {
		t.Fatal("missing '=' should fail")
	}
	if _, err := Parse(strings.NewReader("= 8\n")); err == nil {
		t.Fatal("empty key should fail")
	}
}

func TestDuplicateKey(t *testing.T) {
	if _, err := Parse(strings.NewReader("nx = 1\nnx = 2\n")); err == nil {
		t.Fatal("duplicate key should fail")
	}
}

func TestTypeErrorsCollected(t *testing.T) {
	f := parse(t, "nx = eight\nbeta = warm\n")
	if got := f.Int("nx", 3); got != 3 {
		t.Fatal("bad int should fall back to default")
	}
	f.Float("beta", 1)
	err := f.Err()
	if err == nil {
		t.Fatal("expected type errors")
	}
	if !strings.Contains(err.Error(), "nx") || !strings.Contains(err.Error(), "beta") {
		t.Fatalf("both errors should be reported: %v", err)
	}
}

func TestUnknownKeysReported(t *testing.T) {
	f := parse(t, "nx = 4\nbta = 8\n") // typo: bta
	f.Int("nx", 0)
	err := f.Err()
	if err == nil || !strings.Contains(err.Error(), "bta") {
		t.Fatalf("typo key should be reported: %v", err)
	}
}

func TestBoolSpellings(t *testing.T) {
	f := parse(t, "a = yes\nb = off\nc = 1\nd = FALSE\n")
	if !f.Bool("a", false) || f.Bool("b", true) || !f.Bool("c", false) || f.Bool("d", true) {
		t.Fatal("bool spellings")
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestUint64(t *testing.T) {
	f := parse(t, "seed = 18446744073709551615\n")
	if f.Uint64("seed", 0) != ^uint64(0) {
		t.Fatal("uint64 max failed")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path/x.in"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

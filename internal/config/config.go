// Package config parses QUEST-style simulation input files: one
// "key = value" pair per line, '#' comments, blank lines ignored. Keys are
// case-insensitive. The package reports every malformed line and every
// type error rather than stopping at the first.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// File is a parsed input file.
type File struct {
	values map[string]string
	used   map[string]bool
	errs   []error
}

// Parse reads key = value pairs from r.
func Parse(r io.Reader) (*File, error) {
	f := &File{values: map[string]string{}, used: map[string]bool{}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("config: line %d: expected key = value, got %q", lineNo, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:eq]))
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("config: line %d: empty key", lineNo)
		}
		if _, dup := f.values[key]; dup {
			return nil, fmt.Errorf("config: line %d: duplicate key %q", lineNo, key)
		}
		f.values[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// Load parses the file at path.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Parse(fh)
}

// Has reports whether key was present.
func (f *File) Has(key string) bool {
	_, ok := f.values[strings.ToLower(key)]
	return ok
}

func (f *File) lookup(key string) (string, bool) {
	k := strings.ToLower(key)
	v, ok := f.values[k]
	if ok {
		f.used[k] = true
	}
	return v, ok
}

// Int returns the integer value of key, or def when absent.
func (f *File) Int(key string, def int) int {
	v, ok := f.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		f.errs = append(f.errs, fmt.Errorf("config: key %q: %q is not an integer", key, v))
		return def
	}
	return n
}

// Float returns the float value of key, or def when absent.
func (f *File) Float(key string, def float64) float64 {
	v, ok := f.lookup(key)
	if !ok {
		return def
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		f.errs = append(f.errs, fmt.Errorf("config: key %q: %q is not a number", key, v))
		return def
	}
	return x
}

// Bool returns the boolean value of key (true/false/1/0/yes/no), or def.
func (f *File) Bool(key string, def bool) bool {
	v, ok := f.lookup(key)
	if !ok {
		return def
	}
	switch strings.ToLower(v) {
	case "true", "1", "yes", "on":
		return true
	case "false", "0", "no", "off":
		return false
	}
	f.errs = append(f.errs, fmt.Errorf("config: key %q: %q is not a boolean", key, v))
	return def
}

// String returns the raw value of key, or def.
func (f *File) String(key, def string) string {
	v, ok := f.lookup(key)
	if !ok {
		return def
	}
	return v
}

// Uint64 returns the unsigned value of key (RNG seeds), or def.
func (f *File) Uint64(key string, def uint64) uint64 {
	v, ok := f.lookup(key)
	if !ok {
		return def
	}
	x, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		f.errs = append(f.errs, fmt.Errorf("config: key %q: %q is not an unsigned integer", key, v))
		return def
	}
	return x
}

// Err returns the accumulated type errors plus an error for every key that
// was never read (catching typos like "bta = 8"), or nil.
func (f *File) Err() error {
	errs := append([]error(nil), f.errs...)
	var unknown []string
	for k := range f.values {
		if !f.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		errs = append(errs, fmt.Errorf("config: unknown keys: %s", strings.Join(unknown, ", ")))
	}
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "; "))
}

package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"questgo/internal/core"
)

// fastConfig is a small, quick configuration used throughout the service
// tests.
func fastConfig() core.Config {
	return core.Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1,
		U: 4, Mu: 0, Beta: 1, L: 8,
		WarmSweeps: 6, MeasSweeps: 12,
		ClusterK: 4, Delay: 16, PrePivot: true,
		MeasureBoundaries: true,
		Seed:              7,
	}
}

// newTestServer starts a service plus an httptest front end and returns the
// client; everything is torn down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	if opts.CheckpointDir == "" {
		opts.CheckpointDir = t.TempDir()
	}
	svc, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, &Client{Base: ts.URL, HTTPClient: ts.Client()}
}

// resultsEqual compares two results documents bitwise via their canonical
// JSON (Prof timing is run-dependent and excluded by zeroing).
func resultsBytes(t *testing.T, r *core.Results) []byte {
	t.Helper()
	cp := *r
	cp.Prof = nil
	cp.Metrics = nil // wall-times differ run to run; physics must not
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return b
}

// TestSingleShardBitwiseMatchesDirectRun is the API-redesign anchor: one
// shard through the whole HTTP stack returns the byte-identical physics of
// a direct core.Run of the same Config.
func TestSingleShardBitwiseMatchesDirectRun(t *testing.T) {
	cfg := fastConfig()
	want, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	_, cl := newTestServer(t, Options{Workers: 2})
	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := cl.WaitResult(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.Shards != 1 || res.Cached {
		t.Fatalf("unexpected provenance: shards=%d cached=%v", res.Shards, res.Cached)
	}
	if got, wantB := resultsBytes(t, res.Results), resultsBytes(t, want); string(got) != string(wantB) {
		t.Errorf("service result differs from direct run:\n got %s\nwant %s", got, wantB)
	}
	if res.ConfigHash != cfg.Hash() {
		t.Errorf("config hash mismatch: %s vs %s", res.ConfigHash, cfg.Hash())
	}
}

// TestShardedJobMatchesWithWalkers: an n-shard job merges to exactly what
// the in-process walker group computes.
func TestShardedJobMatchesWithWalkers(t *testing.T) {
	cfg := fastConfig()
	const shards = 3
	want, err := core.Run(context.Background(), cfg, core.WithWalkers(shards))
	if err != nil {
		t.Fatalf("walker run: %v", err)
	}

	_, cl := newTestServer(t, Options{Workers: 2})
	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Shards: shards})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := cl.WaitResult(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if got, wantB := resultsBytes(t, res.Results), resultsBytes(t, want); string(got) != string(wantB) {
		t.Errorf("sharded result differs from WithWalkers(%d):\n got %s\nwant %s", shards, got, wantB)
	}
}

// TestCacheHit: resubmitting identical physics is served from the cache,
// instantly and marked as such.
func TestCacheHit(t *testing.T) {
	cfg := fastConfig()
	svc, cl := newTestServer(t, Options{Workers: 1})

	st1, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	res1, err := cl.WaitResult(context.Background(), st1.ID)
	if err != nil {
		t.Fatalf("wait 1: %v", err)
	}

	st2, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("resubmission not served from cache: state=%s cached=%v", st2.State, st2.Cached)
	}
	if st2.ShardsDone != 2 {
		t.Errorf("cached status shards_done = %d, want 2", st2.ShardsDone)
	}
	res2, err := cl.Result(context.Background(), st2.ID)
	if err != nil {
		t.Fatalf("result 2: %v", err)
	}
	if !res2.Cached || res2.WallMS != 0 {
		t.Errorf("cached result provenance: cached=%v wall_ms=%v", res2.Cached, res2.WallMS)
	}
	if res2.ID != st2.ID {
		t.Errorf("cached result served under wrong id %s (want %s)", res2.ID, st2.ID)
	}
	if got, want := resultsBytes(t, res2.Results), resultsBytes(t, res1.Results); string(got) != string(want) {
		t.Errorf("cached result differs from original")
	}

	// Different shard count = different merge statistics = cache miss.
	st3, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	if st3.Cached {
		t.Errorf("shards=1 request must not hit the shards=2 cache entry")
	}
	if _, err := cl.WaitResult(context.Background(), st3.ID); err != nil {
		t.Fatalf("wait 3: %v", err)
	}

	stats := svc.Stats()
	if stats.CacheHits != 1 || stats.CacheMisses != 2 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/2", stats.CacheHits, stats.CacheMisses)
	}
	// NoCache bypasses lookup entirely.
	st4, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Shards: 2, NoCache: true})
	if err != nil {
		t.Fatalf("submit 4: %v", err)
	}
	if st4.Cached {
		t.Errorf("no_cache submission served from cache")
	}
	if _, err := cl.WaitResult(context.Background(), st4.ID); err != nil {
		t.Fatalf("wait 4: %v", err)
	}
}

// TestCancel stops a long job before it finishes.
func TestCancel(t *testing.T) {
	cfg := fastConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 5000, 5000 // long enough to cancel mid-run

	_, cl := newTestServer(t, Options{Workers: 1})
	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	cst, err := cl.Cancel(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if cst.State != StateCanceled {
		t.Fatalf("post-cancel state %s", cst.State)
	}
	if _, err := cl.Result(context.Background(), st.ID); err == nil {
		t.Errorf("result of a canceled job must error")
	}
	// Cancel is idempotent.
	if _, err := cl.Cancel(context.Background(), st.ID); err != nil {
		t.Errorf("second cancel: %v", err)
	}
}

// TestFinishedJobRetention: a long-running daemon must not accumulate
// finished jobs forever — beyond RetainJobs the oldest finished ones are
// evicted at submission time, while live jobs and recent results survive.
func TestFinishedJobRetention(t *testing.T) {
	_, cl := newTestServer(t, Options{Workers: 1, RetainJobs: 2})
	ctx := context.Background()

	var last string
	for i := 0; i < 6; i++ {
		cfg := fastConfig()
		cfg.Seed = uint64(100 + i) // distinct physics per job
		st, err := cl.Submit(ctx, JobRequest{Config: cfg, NoCache: true})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := cl.WaitResult(ctx, st.ID); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		last = st.ID
	}

	// Submissions 4..6 each found 3+ finished jobs and evicted down to the
	// cap of 2, so only j4 (finished after submit 6 ran eviction), j5 and
	// j6 remain.
	jobs, err := cl.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(jobs) != 3 {
		ids := make([]string, 0, len(jobs))
		for _, j := range jobs {
			ids = append(ids, j.ID)
		}
		t.Fatalf("retained jobs = %v, want the 3 most recent", ids)
	}
	if _, err := cl.Status(ctx, "j000001"); err == nil {
		t.Errorf("evicted job still answers status")
	}
	if _, err := cl.Result(ctx, last); err != nil {
		t.Errorf("most recent job lost its result: %v", err)
	}
}

// TestStreamDeliversOrderedEventsToTerminal follows the chunked feed and
// checks sequencing and the terminal tail.
func TestStreamDeliversOrderedEventsToTerminal(t *testing.T) {
	cfg := fastConfig()
	_, cl := newTestServer(t, Options{Workers: 1})
	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, Tag: "stream-test"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var events []Event
	err = cl.Stream(context.Background(), st.ID, func(e Event) bool {
		events = append(events, e)
		return true
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event %d out of order: seq %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone || last.Shard != -1 {
		t.Errorf("stream did not end on the terminal state event: %+v", last)
	}
	var sawProgress, sawPartial bool
	for _, e := range events {
		if e.SchemaVersion != JobSchemaVersion {
			t.Fatalf("event without schema version: %+v", e)
		}
		switch e.Type {
		case "progress":
			sawProgress = true
		case "partial":
			sawPartial = true
			if e.Partial == nil || e.Partial.Shards == 0 {
				t.Errorf("partial event without estimate: %+v", e)
			}
		}
	}
	if !sawProgress || !sawPartial {
		t.Errorf("missing event types: progress=%v partial=%v", sawProgress, sawPartial)
	}
}

// TestSubmitValidation exercises the request-rejection paths end to end.
func TestSubmitValidation(t *testing.T) {
	_, cl := newTestServer(t, Options{Workers: 1})
	bad := fastConfig()
	bad.L = 0
	if _, err := cl.Submit(context.Background(), JobRequest{Config: bad}); err == nil {
		t.Errorf("invalid config accepted")
	}
	if _, err := cl.Submit(context.Background(), JobRequest{Config: fastConfig(), Shards: -1}); err == nil {
		t.Errorf("negative shards accepted")
	}
	if _, err := cl.Submit(context.Background(), JobRequest{SchemaVersion: "2.0", Config: fastConfig()}); err == nil {
		t.Errorf("wrong-major request accepted")
	}
	ap := fastConfig()
	ap.Autopilot = true
	if _, err := cl.Submit(context.Background(), JobRequest{Config: ap, Shards: 2}); err == nil {
		t.Errorf("autopilot multi-shard accepted")
	}
}

// TestHTTPSurface covers the remaining endpoints and error statuses.
func TestHTTPSurface(t *testing.T) {
	_, cl := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	if _, err := cl.Status(ctx, "jexists-not"); err == nil {
		t.Errorf("status of unknown job must 404")
	}
	if _, err := cl.Result(ctx, "jexists-not"); err == nil {
		t.Errorf("result of unknown job must 404")
	}

	st, err := cl.Submit(ctx, JobRequest{Config: fastConfig()})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.SchemaVersion != JobSchemaVersion || st.ConfigHash == "" {
		t.Errorf("submission status missing wire metadata: %+v", st)
	}

	// Result before completion: 202 surfaces as ErrNotDone-ish error.
	resp, err := cl.http().Get(cl.url("/v1/jobs/" + st.ID + "/result"))
	if err != nil {
		t.Fatalf("raw result get: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight result status = %d", resp.StatusCode)
	}

	if _, err := cl.WaitResult(ctx, st.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}

	// List includes the job; healthz and stats answer.
	resp, err = cl.http().Get(cl.url("/v1/jobs"))
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var list struct {
		SchemaVersion string       `json:"schema_version"`
		Jobs          []*JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	_ = resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}
	resp, err = cl.http().Get(cl.url("/v1/healthz"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	_ = resp.Body.Close()
	sstats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if sstats.JobsSubmitted != 1 || sstats.JobsDone != 1 {
		t.Errorf("stats = %+v", sstats)
	}
}

// TestCloseCancelsEveryJobInOrder pins the Close teardown path: the live
// snapshot must be taken from s.order (submission order), not from ranging
// the jobs map, so it covers every job exactly once and cancels in a
// deterministic sequence. A skipped entry would leave a job context alive
// past Close.
func TestCloseCancelsEveryJobInOrder(t *testing.T) {
	svc, err := New(Options{Workers: 1, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := fastConfig()
	cfg.MeasSweeps = 200 // slow enough that later submissions stay queued
	var ids []string
	for i := 0; i < 4; i++ {
		c := cfg
		c.Seed = uint64(100 + i)
		st, err := svc.Submit(JobRequest{Config: c, NoCache: true})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	svc.mu.Lock()
	if got, want := len(svc.order), len(ids); got != want {
		svc.mu.Unlock()
		t.Fatalf("order tracks %d jobs, want %d", got, want)
	}
	for i, id := range svc.order {
		if id != ids[i] {
			svc.mu.Unlock()
			t.Fatalf("order[%d] = %s, want %s (submission order)", i, id, ids[i])
		}
	}
	svc.mu.Unlock()

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	for _, id := range ids {
		j, ok := svc.jobs[id]
		if !ok {
			t.Fatalf("job %s missing after Close", id)
		}
		select {
		case <-j.ctx.Done():
		default:
			t.Errorf("job %s context still alive after Close", id)
		}
	}
}

package service

import (
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	res := func(id string) *JobResult { return &JobResult{ID: id} }

	c.put("a", res("a"))
	c.put("b", res("b"))
	if _, ok := c.get("a"); !ok { // refresh a: b is now least recent
		t.Fatal("a missing")
	}
	c.put("c", res("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if got, ok := c.get(k); !ok || got.ID != k {
			t.Errorf("%s: got %+v ok=%v", k, got, ok)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}

	// Overwrite keeps one entry.
	c.put("a", res("a2"))
	if got, _ := c.get("a"); got.ID != "a2" {
		t.Errorf("overwrite lost: %+v", got)
	}
	if c.len() != 2 {
		t.Errorf("len after overwrite = %d", c.len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := newResultCache(capacity)
		c.put("a", &JobResult{ID: "a"})
		if _, ok := c.get("a"); ok {
			t.Errorf("cap %d: cache should be disabled", capacity)
		}
	}
}

func TestResultCacheEvictionOrder(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), &JobResult{})
	}
	if c.len() != 3 {
		t.Fatalf("len = %d", c.len())
	}
	for i := 7; i < 10; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}
}

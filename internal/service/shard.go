package service

import (
	"context"
	"fmt"
	"os"

	"questgo/internal/core"
)

// runShard executes one attempt of one shard: fresh from the shard config,
// or resumed from the checkpoint a previous interrupted attempt left
// behind. On interruption (ctx canceled mid-run) it persists a resume point
// and returns the context error; the queue decides whether to reschedule.
//
// Recovery preserves the exact trajectory. Two facts make that possible:
//
//   - Warmup is incrementally resumable: the chain state after warmup sweep
//     w plus "warm-w more warmup sweeps, then the full measurement
//     schedule" reproduces the uninterrupted run exactly (measurements all
//     happen later).
//
//   - The measurement segment is atomic: measurement samples accumulate in
//     memory and die with the worker, so a fault mid-measurement resumes
//     from the chain state captured at the warmup/measurement boundary and
//     replays the whole measurement segment. The chain is deterministic
//     from that state, so the replayed samples — and therefore the
//     aggregated observables — are bitwise identical to an undisturbed run.
func (s *Server) runShard(ctx context.Context, j *job, sh *shardState) (*core.Results, error) {
	var (
		sim *core.Simulation
		cfg core.Config
		err error
	)
	if _, statErr := os.Stat(sh.ckptPath); statErr == nil {
		ck, lerr := core.LoadCheckpoint(sh.ckptPath)
		if lerr != nil {
			return nil, fmt.Errorf("shard checkpoint: %w", lerr)
		}
		// The checkpointed Config already carries the remaining schedule
		// (adjusted at save time below).
		if sim, err = core.Resume(ck); err != nil {
			return nil, fmt.Errorf("shard resume: %w", err)
		}
		cfg = ck.Config
	} else {
		if sim, err = core.New(sh.cfg); err != nil {
			return nil, err
		}
		cfg = sh.cfg
	}

	// measStart is the resume point for faults inside the atomic
	// measurement segment: the chain state with warmup fully consumed.
	var measStart *core.Checkpoint
	if cfg.WarmSweeps == 0 {
		measStart = sim.Checkpoint()
	}
	var lastStage string
	var lastSweep int
	interrupted := false
	cb := func(p core.Progress) {
		lastStage, lastSweep = p.Stage, p.Sweep
		if p.Stage == "warmup" && p.Sweep == p.Total {
			ck := sim.Checkpoint()
			ck.Config.WarmSweeps = 0
			measStart = ck
		}
		s.shardProgress(j, sh, p)
		if hook := s.opts.FaultHook; hook != nil && !interrupted && hook(j.id, sh.idx, p.Sweep) {
			// Kill this worker: cancel only the shard's run context. The
			// cancel takes effect at the next sweep boundary, exactly like an
			// external SIGKILL between sweeps.
			interrupted = true
			sh.interrupt()
		}
	}
	res, runErr := sim.RunContext(ctx, cb)
	if runErr == nil {
		_ = os.Remove(sh.ckptPath) // stale resume point, if any
		// A resumed attempt ran a shrunken schedule; the result's provenance
		// is the shard's full original config.
		res.Config = sh.cfg
		return res, nil
	}
	if ctx.Err() == nil {
		return nil, runErr
	}

	// Interrupted between sweeps: persist the resume point.
	var ck *core.Checkpoint
	if lastStage == "warmup" && lastSweep < cfg.WarmSweeps {
		ck = sim.Checkpoint()
		ck.Config.WarmSweeps = cfg.WarmSweeps - lastSweep
	} else if lastStage == "" && measStart == nil {
		// Killed before the first sweep: resume is a fresh start.
		ck = sim.Checkpoint()
	} else {
		// Warmup finished (possibly exactly at the boundary) or measurement
		// underway: the measurement segment restarts whole.
		ck = measStart
	}
	if serr := ck.Save(sh.ckptPath); serr != nil {
		// Deliberately not %w on runErr: without a saved resume point this is
		// a real failure, and wrapping the context error would make the queue
		// classify it as a resumable interruption.
		return nil, fmt.Errorf("shard checkpoint save: %v (after %v)", serr, runErr)
	}
	return nil, runErr
}

// interrupt cancels the shard's current run context, if any. Safe to call
// from the progress callback (the callback runs on the worker goroutine
// that owns runCancel for the duration of the attempt).
func (sh *shardState) interrupt() {
	if sh.runCancel != nil {
		sh.runCancel()
	}
}

// shardProgress folds a per-sweep progress report into the shard status and
// emits a throttled progress event (about 16 per stage, plus the last sweep
// of each stage).
func (s *Server) shardProgress(j *job, sh *shardState, p core.Progress) {
	step := p.Total / 16
	if step < 1 {
		step = 1
	}
	emit := p.Sweep%step == 0 || p.Sweep == p.Total
	j.mu.Lock()
	sh.stage, sh.sweep, sh.total = p.Stage, p.Sweep, p.Total
	if emit {
		j.emit(Event{Type: "progress", Shard: sh.idx, Stage: p.Stage, Sweep: p.Sweep, Total: p.Total})
	}
	j.mu.Unlock()
}

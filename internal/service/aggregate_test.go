package service

import (
	"context"
	"testing"

	"questgo/internal/core"
)

// runShardResult computes shard i's result directly (the same derivation
// newJob uses).
func runShardResult(t *testing.T, cfg core.Config, i int) *core.Results {
	t.Helper()
	cfg.Seed = core.WalkerSeed(cfg.Seed, i)
	r, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("shard %d run: %v", i, err)
	}
	return r
}

// TestAggregatorOrderIndependence: the final merge does not depend on the
// order shards land in.
func TestAggregatorOrderIndependence(t *testing.T) {
	cfg := fastConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 6
	rs := []*core.Results{
		runShardResult(t, cfg, 0),
		runShardResult(t, cfg, 1),
		runShardResult(t, cfg, 2),
	}

	inOrder := NewAggregator(3)
	for i, r := range rs {
		inOrder.Land(i, r)
	}
	scrambled := NewAggregator(3)
	for _, i := range []int{2, 0, 1} {
		scrambled.Land(i, rs[i])
	}

	a, err := inOrder.Final()
	if err != nil {
		t.Fatalf("final: %v", err)
	}
	b, err := scrambled.Final()
	if err != nil {
		t.Fatalf("final: %v", err)
	}
	if string(resultsBytes(t, a)) != string(resultsBytes(t, b)) {
		t.Error("merge depends on landing order")
	}
}

func TestAggregatorPartialEstimate(t *testing.T) {
	cfg := fastConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 6
	a := NewAggregator(2)
	if a.Estimate() != nil {
		t.Error("estimate before any shard landed")
	}
	if _, err := a.Final(); err == nil {
		t.Error("final before all shards landed must error")
	}

	r0 := runShardResult(t, cfg, 0)
	a.Land(0, r0)
	e := a.Estimate()
	if e == nil || e.Shards != 1 {
		t.Fatalf("estimate after one shard: %+v", e)
	}
	// One shard: its own jackknife errors pass through.
	if e.Density != r0.Density || e.DensityErr != r0.DensityErr {
		t.Errorf("single-shard estimate not a passthrough: %+v vs %+v", e, r0)
	}

	a.Land(1, runShardResult(t, cfg, 1))
	e = a.Estimate()
	if e.Shards != 2 {
		t.Fatalf("estimate shards = %d", e.Shards)
	}
	if e.DensityErr < 0 {
		t.Errorf("negative cross-shard error: %+v", e)
	}
	if _, err := a.Final(); err != nil {
		t.Errorf("final with all shards landed: %v", err)
	}
}

func TestAggregatorDoubleLandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double land did not panic")
		}
	}()
	a := NewAggregator(1)
	a.Land(0, &core.Results{})
	a.Land(0, &core.Results{})
}

// Package service turns the DQMC library into a long-running sharded
// simulation server: a versioned HTTP/JSON job API (submit / status /
// result / cancel, plus chunked-JSON progress streaming) over the canonical
// core.Run pipeline.
//
// A job is one Config plus a shard count. Shards are statistically
// independent Markov chains — the embarrassingly parallel axis of DQMC —
// with seeds derived by core.WalkerSeed, so a 1-shard job reproduces a
// direct single-walker core.Run bit for bit and an n-shard job reproduces
// Run(..., WithWalkers(n)). Shards are executed by a bounded worker pool;
// results are aggregated as they land (binned/jackknife statistics via
// internal/stats and core.MergeResults), a partial estimate is streamed
// while the job runs, and the final merged document is stored in an LRU
// result cache keyed on the deterministic Config content hash — a repeated
// request for identical physics is served instantly.
//
// A worker that dies mid-shard (fault injection, cancellation, crash
// recovery) leaves a checkpoint behind: warmup progress is checkpointed
// incrementally, and the measurement segment is atomic — it restarts from
// the chain state captured at the warmup/measurement boundary, so the
// re-run reproduces the uninterrupted measurement sequence exactly and the
// aggregated observables are bitwise identical to an undisturbed run.
package service

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a Server. The zero value is usable: it runs
// runtime.NumCPU() workers, caches 256 results, retains the 512 most
// recent finished jobs, and checkpoints into a private temporary directory
// that is removed on Close.
type Options struct {
	// Workers bounds the number of shards executing concurrently
	// (default runtime.NumCPU()).
	Workers int
	// CacheSize is the result-cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// CheckpointDir is where per-shard restart files live. Empty means a
	// private os.MkdirTemp directory owned (and removed) by the server.
	CheckpointDir string
	// MaxRestarts bounds how many times one shard may be resumed from its
	// checkpoint after an interruption before the job fails (default 3).
	MaxRestarts int
	// RetainJobs caps how many finished (done/failed/canceled) jobs are
	// kept for status/result reads; beyond it the oldest finished jobs are
	// evicted at submission time (default 512; negative retains all). Live
	// jobs are never evicted and do not count against the cap.
	RetainJobs int
	// FaultHook, when set, is consulted after every completed sweep of
	// every shard; returning true kills that shard's worker mid-run (its
	// context is canceled, it saves a checkpoint, and the queue reschedules
	// it). This is the deterministic fault-injection port used by the
	// shard-recovery tests and the workload harness — production servers
	// leave it nil.
	FaultHook func(jobID string, shard, sweep int) bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	if o.RetainJobs == 0 {
		o.RetainJobs = 512
	}
	return o
}

// Server is the sharded simulation service. It implements http.Handler
// (mount it on any mux or listener); the Go-level Submit/Status/... methods
// are the same operations the HTTP layer exposes, so in-process callers and
// remote clients see one behavior.
type Server struct {
	opts Options
	mux  *http.ServeMux

	cache *resultCache
	sched *scheduler

	mu     sync.Mutex
	jobs   map[string]*job //qmc:guarded(mu)
	order  []string        //qmc:guarded(mu) submission order, for listing
	nextID int             //qmc:guarded(mu)
	closed bool            //qmc:guarded(mu)

	ckptDir    string
	ownCkptDir bool

	wg sync.WaitGroup

	// Counters for the /v1/stats document.
	nSubmitted, nDone, nFailed, nCanceled atomic.Int64
	nShardsRun, nRestarts                 atomic.Int64
	nCacheHits, nCacheMisses              atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		jobs:  map[string]*job{},
		sched: newScheduler(),
		cache: newResultCache(opts.CacheSize),
	}
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: checkpoint dir: %w", err)
		}
		s.ckptDir = opts.CheckpointDir
	} else {
		dir, err := os.MkdirTemp("", "dqmcd-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("service: checkpoint dir: %w", err)
		}
		s.ckptDir, s.ownCkptDir = dir, true
	}
	s.routes()
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
	return s, nil
}

// Workers reports the size of the worker pool.
func (s *Server) Workers() int { return s.opts.Workers }

// Close cancels every live job, drains the worker pool and removes the
// server-owned checkpoint directory. The HTTP surface keeps answering
// status/result reads for already-finished jobs until the caller tears the
// listener down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	live := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		live = append(live, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range live {
		j.cancelCtx()
	}
	s.sched.close()
	s.wg.Wait()
	if s.ownCkptDir {
		return os.RemoveAll(s.ckptDir)
	}
	return nil
}

// Stats is the /v1/stats service counters document.
type Stats struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	Jobs          int    `json:"jobs"`
	JobsSubmitted int64  `json:"jobs_submitted"`
	JobsDone      int64  `json:"jobs_done"`
	JobsFailed    int64  `json:"jobs_failed"`
	JobsCanceled  int64  `json:"jobs_canceled"`
	ShardsRun     int64  `json:"shards_run"`
	ShardRestarts int64  `json:"shard_restarts"`
	CacheHits     int64  `json:"cache_hits"`
	CacheMisses   int64  `json:"cache_misses"`
	CacheEntries  int    `json:"cache_entries"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return Stats{
		SchemaVersion: JobSchemaVersion,
		Workers:       s.opts.Workers,
		QueueDepth:    s.sched.depth(),
		Jobs:          jobs,
		JobsSubmitted: s.nSubmitted.Load(),
		JobsDone:      s.nDone.Load(),
		JobsFailed:    s.nFailed.Load(),
		JobsCanceled:  s.nCanceled.Load(),
		ShardsRun:     s.nShardsRun.Load(),
		ShardRestarts: s.nRestarts.Load(),
		CacheHits:     s.nCacheHits.Load(),
		CacheMisses:   s.nCacheMisses.Load(),
		CacheEntries:  s.cache.len(),
	}
}

// evictFinishedLocked enforces the RetainJobs cap: excess finished jobs are
// dropped oldest-first, together with their buffered events and result
// documents, so a long-running daemon's job table stays bounded. Live jobs
// are never touched, and the result cache is unaffected — identical physics
// resubmitted after eviction is still a cache hit. Caller holds s.mu; job
// locks nest inside it.
//
//qmc:locked(mu)
func (s *Server) evictFinishedLocked() {
	if s.opts.RetainJobs < 0 {
		return
	}
	finished := 0
	terminal := make([]bool, len(s.order))
	for i, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		terminal[i] = j.state.terminal()
		j.mu.Unlock()
		if terminal[i] {
			finished++
		}
	}
	if finished <= s.opts.RetainJobs {
		return
	}
	keep := s.order[:0]
	for i, id := range s.order {
		if finished > s.opts.RetainJobs && terminal[i] {
			delete(s.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// background returns the context all job contexts derive from. Jobs are
// canceled individually (or by Close), never by an HTTP request ending.
func background() context.Context { return context.Background() }

package service

import (
	"container/list"
	"sync"
)

// resultCache is a small LRU over finished job results, keyed on the
// canonical Config content hash plus the shard count (see
// JobRequest.cacheKey). Identical physics — every Config field equal,
// including the seed — maps to an identical trajectory, so serving the
// stored document is exact, not approximate.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *JobResult
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// get returns the cached result and refreshes its recency.
func (c *resultCache) get(key string) (*JobResult, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result, evicting the least recently used entry when full.
func (c *resultCache) put(key string, res *JobResult) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.m, tail.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

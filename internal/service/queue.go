package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// shardTask is one unit of worker-pool work: run (or resume) one shard of
// one job.
type shardTask struct {
	job   *job
	shard *shardState
}

// scheduler is the unbounded FIFO the worker pool drains. Interrupted
// shards re-enter at the front so a recovering job is not starved by a deep
// backlog of fresh work.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	fifo   []*shardTask //qmc:guarded(mu)
	closed bool         //qmc:guarded(mu)
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *scheduler) push(t *shardTask) {
	s.mu.Lock()
	s.fifo = append(s.fifo, t)
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *scheduler) pushFront(t *shardTask) {
	s.mu.Lock()
	s.fifo = append([]*shardTask{t}, s.fifo...)
	s.mu.Unlock()
	s.cond.Signal()
}

// pop blocks for the next task; ok is false once the scheduler is closed
// and drained.
func (s *scheduler) pop() (*shardTask, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.fifo) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.fifo) == 0 {
		return nil, false
	}
	t := s.fifo[0]
	s.fifo = s.fifo[1:]
	return t, true
}

func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fifo)
}

func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Submit validates the request, consults the result cache, and either
// answers instantly from it or enqueues the job's shards on the worker
// pool. The returned status is the submission-time snapshot (terminal
// already for cache hits).
func (s *Server) Submit(req JobRequest) (*JobStatus, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	hash := req.Config.Hash()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: server is closed")
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, req, hash, s.ckptDir)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictFinishedLocked()
	s.mu.Unlock()
	s.nSubmitted.Add(1)

	if !req.NoCache {
		if hit, ok := s.cache.get(req.cacheKey()); ok {
			s.nCacheHits.Add(1)
			j.mu.Lock()
			now := time.Now()
			j.state = StateDone
			j.cached = true
			j.started, j.finished = now, now
			// Serve the cached document under this job's identity.
			served := *hit
			served.ID = id
			served.Cached = true
			served.WallMS = 0
			j.result = &served
			for _, sh := range j.shards {
				sh.state = StateDone
			}
			j.emit(Event{Type: "state", Shard: -1, State: StateDone})
			st := j.status()
			j.mu.Unlock()
			return st, nil
		}
		s.nCacheMisses.Add(1)
	}

	j.mu.Lock()
	j.emit(Event{Type: "state", Shard: -1, State: StateQueued})
	st := j.status()
	j.mu.Unlock()
	for _, sh := range j.shards {
		s.sched.push(&shardTask{job: j, shard: sh})
	}
	return st, nil
}

// Status returns a job's current status document.
func (s *Server) Status(id string) (*JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status(), nil
}

// Result returns a finished job's result document; ErrNotDone while the job
// is still in flight.
func (s *Server) Result(id string) (*JobResult, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateDone:
		return j.result, nil
	case j.state.terminal():
		return nil, fmt.Errorf("service: job %s %s: %s", id, j.state, j.errMsg)
	default:
		return nil, ErrNotDone
	}
}

// ErrNotDone is returned by Result for a job still in flight (the HTTP
// layer maps it to 202 Accepted).
var ErrNotDone = fmt.Errorf("service: job is not finished")

// Cancel stops a job: queued shards never start, running shards stop at
// their next sweep boundary. Canceling a terminal job is a no-op.
func (s *Server) Cancel(id string) (*JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	if !j.state.terminal() {
		j.state = StateCanceled
		j.finished = time.Now()
		for _, sh := range j.shards {
			if !sh.state.terminal() && sh.state != StateRunning {
				sh.state = StateCanceled
			}
		}
		j.emit(Event{Type: "state", Shard: -1, State: StateCanceled})
		s.nCanceled.Add(1)
		j.cancel()
		s.maybeCleanupFiles(j)
	}
	st := j.status()
	j.mu.Unlock()
	return st, nil
}

// List returns every job's status in submission order.
func (s *Server) List() []*JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]*JobStatus, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, j.status())
		j.mu.Unlock()
	}
	return out
}

func (s *Server) lookup(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no such job %q", id)
	}
	return j, nil
}

// worker is one pool goroutine: it drains the scheduler until close.
func (s *Server) worker() {
	for {
		t, ok := s.sched.pop()
		if !ok {
			return
		}
		s.runTask(t)
	}
}

// runTask executes one shard attempt and folds the outcome back into the
// job: landed results feed the streaming aggregate, interruptions reschedule
// from checkpoint, failures and cancellations retire the job.
func (s *Server) runTask(t *shardTask) {
	j, sh := t.job, t.shard
	j.mu.Lock()
	if j.state.terminal() {
		if !sh.state.terminal() {
			sh.state = StateCanceled
		}
		s.maybeCleanupFiles(j)
		j.mu.Unlock()
		return
	}
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
		j.emit(Event{Type: "state", Shard: -1, State: StateRunning})
	}
	sh.state = StateRunning
	runCtx, cancel := context.WithCancel(j.ctx)
	sh.runCancel = cancel
	j.emit(Event{Type: "shard", Shard: sh.idx, State: StateRunning, Restarts: sh.restarts})
	j.mu.Unlock()

	s.nShardsRun.Add(1)
	res, err := s.runShard(runCtx, j, sh)
	// Classify the outcome before cancel(): afterwards runCtx.Err() is
	// non-nil unconditionally. A genuine interruption (fault hook, worker
	// kill) surfaces as the run context's Canceled error with a checkpoint
	// saved on the way out; any other error — checkpoint load/save failure,
	// core.New error — is a real shard failure and must not be retried.
	interrupted := runCtx.Err() != nil && errors.Is(err, context.Canceled)
	cancel()

	j.mu.Lock()
	defer j.mu.Unlock()
	sh.runCancel = nil
	switch {
	case err == nil:
		if j.state.terminal() {
			// The job retired (canceled, or failed via a sibling shard) while
			// this one was finishing: drop the result — landing it would keep
			// mutating a terminal status and push events past the terminal
			// "state" line stream readers stop at.
			sh.state = StateCanceled
			s.maybeCleanupFiles(j)
			return
		}
		sh.state = StateDone
		j.agg.Land(sh.idx, res)
		j.emit(Event{Type: "partial", Shard: sh.idx, State: StateDone, Partial: j.agg.Estimate()})
		if j.agg.Landed() == len(j.shards) && j.state == StateRunning {
			s.finishJob(j)
		}
	case j.ctx.Err() != nil:
		// The whole job was canceled (Cancel or Close); wind the shard down.
		sh.state = StateCanceled
		if !j.state.terminal() {
			j.emit(Event{Type: "shard", Shard: sh.idx, State: StateCanceled})
		}
		s.maybeCleanupFiles(j)
	case interrupted:
		// Only this shard's context died: its worker was killed. The shard
		// saved a checkpoint on the way out; reschedule it, bounded.
		sh.restarts++
		s.nRestarts.Add(1)
		if sh.restarts > s.opts.MaxRestarts {
			sh.state = StateFailed
			s.failJob(j, fmt.Sprintf("shard %d exceeded %d restarts", sh.idx, s.opts.MaxRestarts))
			return
		}
		sh.state = StateQueued
		sh.stage, sh.sweep = "", 0
		j.emit(Event{Type: "shard", Shard: sh.idx, State: StateQueued, Restarts: sh.restarts})
		s.sched.pushFront(t)
	default:
		sh.state = StateFailed
		s.failJob(j, fmt.Sprintf("shard %d: %v", sh.idx, err))
	}
}

// finishJob merges the landed shards, stores the result, caches it and
// retires the job. Caller holds j.mu.
//
//qmc:locked(mu)
func (s *Server) finishJob(j *job) {
	merged, err := j.agg.Final()
	if err != nil {
		s.failJob(j, err.Error())
		return
	}
	j.state = StateDone
	j.finished = time.Now()
	j.result = &JobResult{
		SchemaVersion: JobSchemaVersion,
		ID:            j.id,
		ConfigHash:    j.hash,
		Shards:        j.req.Shards,
		WallMS:        float64(j.finished.Sub(j.submitted)) / float64(time.Millisecond),
		Results:       merged,
	}
	if !j.req.NoCache {
		s.cache.put(j.req.cacheKey(), j.result)
	}
	s.nDone.Add(1)
	j.emit(Event{Type: "state", Shard: -1, State: StateDone, Partial: j.agg.Estimate()})
	s.cleanupJobFiles(j)
}

// failJob retires the job with an error, canceling the remaining shards.
// Caller holds j.mu.
//
//qmc:locked(mu)
func (s *Server) failJob(j *job, msg string) {
	if j.state.terminal() {
		return
	}
	j.state = StateFailed
	j.errMsg = msg
	j.finished = time.Now()
	for _, sh := range j.shards {
		if !sh.state.terminal() && sh.state != StateRunning {
			sh.state = StateCanceled
		}
	}
	s.nFailed.Add(1)
	j.emit(Event{Type: "state", Shard: -1, State: StateFailed, Error: msg})
	j.cancel()
	s.maybeCleanupFiles(j)
}

// maybeCleanupFiles removes the job's checkpoint files once it is terminal
// and its last running shard has wound down (interrupted shards write their
// resume point before re-entering the queue, so removing earlier would
// race the save). Without this, failed and canceled jobs would leak .ckpt
// files into a long-lived user-provided CheckpointDir. Caller holds j.mu.
//
//qmc:locked(mu)
func (s *Server) maybeCleanupFiles(j *job) {
	if !j.state.terminal() {
		return
	}
	for _, sh := range j.shards {
		if sh.state == StateRunning {
			return
		}
	}
	s.cleanupJobFiles(j)
}

// cleanupJobFiles removes any checkpoint files the job's shards left
// behind. Caller holds j.mu (paths are immutable, removal is idempotent —
// a missing file is the common case and not an error worth surfacing).
//
//qmc:locked(mu)
func (s *Server) cleanupJobFiles(j *job) {
	for _, sh := range j.shards {
		_ = os.Remove(sh.ckptPath)
	}
}

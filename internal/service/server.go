package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// errorDoc is the JSON body of every non-2xx response.
type errorDoc struct {
	SchemaVersion string `json:"schema_version"`
	Error         string `json:"error"`
}

// ServeHTTP implements http.Handler over the versioned job API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// routes registers the v1 HTTP surface. Every endpoint is a thin wire shim
// over the exported Go methods — the HTTP layer adds no behavior.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The document marshaled fine or the connection died; neither is
	// recoverable from here.
	_ = enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{
		SchemaVersion: JobSchemaVersion,
		Error:         fmt.Sprintf(format, args...),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode job request: %v", err)
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion string       `json:"schema_version"`
		Jobs          []*JobStatus `json:"jobs"`
	}{JobSchemaVersion, s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotDone):
		writeError(w, http.StatusAccepted, "%v", err)
	case err != nil:
		// Distinguish "no such job" from "job retired without a result".
		if _, lerr := s.lookup(r.PathValue("id")); lerr != nil {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream serves the job's event feed as chunked JSON lines: buffered
// events first, then live ones as they are emitted, ending after the
// terminal "state" event. A reader that outlives the event buffer resumes
// at the oldest retained event (Seq makes the gap visible).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	next := 0 // next Seq to deliver
	for {
		j.mu.Lock()
		if next < j.firstSeq {
			next = j.firstSeq
		}
		batch := append([]Event(nil), j.events[next-j.firstSeq:]...)
		notify := j.notify
		terminal := j.state.terminal()
		j.mu.Unlock()

		for _, e := range batch {
			if err := enc.Encode(e); err != nil {
				return // client went away
			}
			next = e.Seq + 1
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// Everything buffered at terminal-time has been delivered and the
			// terminal "state" event is always the last one emitted.
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion string `json:"schema_version"`
		Status        string `json:"status"`
	}{JobSchemaVersion, "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

package service

import (
	"fmt"

	"questgo/internal/core"
	"questgo/internal/stats"
)

// Estimate is the streaming cross-shard aggregate published while a job
// runs: sign-weighted scalar observables with cross-shard standard errors
// (each shard is an independent chain whose own errors already carry the
// jackknife/binning of its sweep series; across shards the spread of the
// independent estimates is the honest error). With one landed shard the
// shard's own jackknife errors are reported.
type Estimate struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	// Shards is how many chains have landed in this aggregate.
	Shards int `json:"shards"`

	Density      float64 `json:"density"`
	DensityErr   float64 `json:"density_err"`
	DoubleOcc    float64 `json:"double_occupancy"`
	DoubleOccErr float64 `json:"double_occupancy_err"`
	Energy       float64 `json:"energy"`
	EnergyErr    float64 `json:"energy_err"`
	SAF          float64 `json:"s_af"`
	SAFErr       float64 `json:"s_af_err"`
	AvgSign      float64 `json:"avg_sign"`
}

// Aggregator accumulates shard results as they land, in any order, and
// merges them deterministically: results are stored by shard index, and
// every aggregate (partial or final) is computed over the landed subset in
// index order — so the same landed set always yields the same bytes, and
// the final merge is independent of worker scheduling.
type Aggregator struct {
	results []*core.Results
	landed  int
}

// NewAggregator prepares an aggregator for n shards.
func NewAggregator(n int) *Aggregator {
	return &Aggregator{results: make([]*core.Results, n)}
}

// Land stores shard idx's result. Landing the same shard twice is a
// programming error (the queue retires a shard exactly once).
func (a *Aggregator) Land(idx int, r *core.Results) {
	if a.results[idx] != nil {
		panic(fmt.Sprintf("service: shard %d landed twice", idx))
	}
	a.results[idx] = r
	a.landed++
}

// Landed reports how many shards have landed.
func (a *Aggregator) Landed() int { return a.landed }

// landedInOrder returns the landed results by ascending shard index.
func (a *Aggregator) landedInOrder() []*core.Results {
	out := make([]*core.Results, 0, a.landed)
	for _, r := range a.results {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Estimate computes the streaming aggregate over the landed shards (nil if
// none landed yet).
func (a *Aggregator) Estimate() *Estimate {
	rs := a.landedInOrder()
	if len(rs) == 0 {
		return nil
	}
	e := &Estimate{SchemaVersion: JobSchemaVersion, Shards: len(rs)}
	if len(rs) == 1 {
		r := rs[0]
		e.Density, e.DensityErr = r.Density, r.DensityErr
		e.DoubleOcc, e.DoubleOccErr = r.DoubleOcc, r.DoubleOccErr
		e.Energy, e.EnergyErr = r.Energy, r.EnergyErr
		e.SAF, e.SAFErr = r.SAF, r.SAFErr
		e.AvgSign = r.AvgSign
		return e
	}
	pick := func(f func(*core.Results) float64) (float64, float64) {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = f(r)
		}
		return stats.Mean(xs), stats.StdErr(xs)
	}
	e.Density, e.DensityErr = pick(func(r *core.Results) float64 { return r.Density })
	e.DoubleOcc, e.DoubleOccErr = pick(func(r *core.Results) float64 { return r.DoubleOcc })
	e.Energy, e.EnergyErr = pick(func(r *core.Results) float64 { return r.Energy })
	e.SAF, e.SAFErr = pick(func(r *core.Results) float64 { return r.SAF })
	e.AvgSign, _ = pick(func(r *core.Results) float64 { return r.AvgSign })
	return e
}

// Final merges all shards into the job's result document. Every shard must
// have landed. The merge is core.MergeResults over the shards in index
// order — exactly what Run(..., WithWalkers(n)) computes, and for one shard
// the shard's Results pointer itself (bitwise identical to a direct Run).
func (a *Aggregator) Final() (*core.Results, error) {
	if a.landed != len(a.results) {
		return nil, fmt.Errorf("service: final aggregate needs all %d shards, have %d", len(a.results), a.landed)
	}
	return core.MergeResults(a.landedInOrder())
}

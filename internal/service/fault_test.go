package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"questgo/internal/core"
)

// TestShardFaultRecoveryBitwise is the fault-handling acceptance test: a
// shard's worker is killed twice — once mid-warmup, once mid-measurement —
// the queue resumes it from checkpoint each time, and the final observables
// are bitwise identical to an uninterrupted direct run.
//
// The kill points are deterministic (a global sweep-callback counter), so
// the test exercises both recovery paths every run:
//
//   - kill #1 at callback 4 = warmup sweep 4 of 8: resume restores the
//     chain mid-warmup and warms the remaining 4 sweeps;
//   - kill #2 at callback 14 = measurement sweep 6 of the resumed attempt:
//     the measurement segment is atomic, so resume restarts it from the
//     state captured at the warmup/measurement boundary and replays all 16
//     measurement sweeps.
func TestShardFaultRecoveryBitwise(t *testing.T) {
	cfg := fastConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 8, 16

	want, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	ckptDir := t.TempDir()
	var calls atomic.Int64
	opts := Options{
		Workers:       1,
		MaxRestarts:   3,
		CheckpointDir: ckptDir,
		FaultHook: func(jobID string, shard, sweep int) bool {
			n := calls.Add(1)
			return n == 4 || n == 14
		},
	}
	_, cl := newTestServer(t, opts)

	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, NoCache: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := cl.WaitResult(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}

	final, err := cl.Status(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if got := final.Shards[0].Restarts; got != 2 {
		t.Errorf("shard restarts = %d, want 2 (one warmup kill + one measurement kill)", got)
	}
	if got, wantB := resultsBytes(t, res.Results), resultsBytes(t, want); string(got) != string(wantB) {
		t.Errorf("recovered result differs from uninterrupted run:\n got %s\nwant %s", got, wantB)
	}

	// The shard's checkpoint file must be gone after success.
	left, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(left) != 0 {
		t.Errorf("stale checkpoints left behind: %v", left)
	}
}

// TestShardFaultBudgetExhausted: a shard that keeps dying fails the job
// once MaxRestarts is spent, instead of looping forever.
func TestShardFaultBudgetExhausted(t *testing.T) {
	cfg := fastConfig()
	opts := Options{
		Workers:     1,
		MaxRestarts: 2,
		FaultHook: func(jobID string, shard, sweep int) bool {
			return true // every attempt dies at its first sweep
		},
	}
	svc, cl := newTestServer(t, opts)

	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, NoCache: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := cl.WaitResult(context.Background(), st.ID); err == nil {
		t.Fatal("job with a permanently dying shard must fail")
	}
	final, err := cl.Status(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if final.State != StateFailed || final.Error == "" {
		t.Errorf("final state = %s (error %q), want failed", final.State, final.Error)
	}
	// MaxRestarts=2 allows 3 attempts; every interruption increments the
	// counter, including the one that exhausts the budget.
	if svc.Stats().ShardRestarts != 3 {
		t.Errorf("restart counter = %d, want 3", svc.Stats().ShardRestarts)
	}
}

// TestShardErrorFailsImmediately: a genuine shard error (here: a corrupt
// checkpoint that fails to load) retires the job with the real error on the
// first attempt — it must not be misclassified as a worker interruption and
// burn through the restart budget re-reading the same broken file.
func TestShardErrorFailsImmediately(t *testing.T) {
	cfg := fastConfig()
	ckptDir := t.TempDir()
	svc, cl := newTestServer(t, Options{Workers: 1, MaxRestarts: 3, CheckpointDir: ckptDir})

	// Plant garbage where the first job's only shard looks for a resume
	// point (IDs are sequential, so the path is deterministic).
	bad := filepath.Join(ckptDir, "j000001-shard0000.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatalf("plant corrupt checkpoint: %v", err)
	}

	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, NoCache: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := cl.WaitResult(context.Background(), st.ID); err == nil {
		t.Fatal("job with a corrupt checkpoint must fail")
	}
	final, err := cl.Status(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "checkpoint") {
		t.Errorf("final state = %s (error %q), want failed with the checkpoint error", final.State, final.Error)
	}
	if final.Shards[0].State != StateFailed {
		t.Errorf("failing shard state = %s, want failed", final.Shards[0].State)
	}
	if got := svc.Stats().ShardRestarts; got != 0 {
		t.Errorf("restart counter = %d, want 0 (a real error is not an interruption)", got)
	}
	// The failed job's checkpoint files are cleaned up too.
	left, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(left) != 0 {
		t.Errorf("failed job left checkpoints behind: %v", left)
	}
}

// TestCancelCleansCheckpoints: a canceled job's running shard saves a resume
// point on the way out; once it winds down the queue must remove it instead
// of leaking it into a long-lived checkpoint directory.
func TestCancelCleansCheckpoints(t *testing.T) {
	cfg := fastConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 5000, 5000 // long enough to cancel mid-run
	ckptDir := t.TempDir()
	_, cl := newTestServer(t, Options{Workers: 1, CheckpointDir: ckptDir})

	st, err := cl.Submit(context.Background(), JobRequest{Config: cfg, NoCache: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Let the shard take at least one sweep so the cancel interrupts a live
	// run (a pre-start cancel would never write a checkpoint at all).
	waitShard := func(pred func(ShardStatus) bool, what string) *JobStatus {
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur, err := cl.Status(context.Background(), st.ID)
			if err != nil {
				t.Fatalf("status: %v", err)
			}
			if pred(cur.Shards[0]) {
				return cur
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; last status %+v", what, cur)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitShard(func(sh ShardStatus) bool { return sh.State == StateRunning && sh.Sweep > 0 }, "shard to start sweeping")
	if _, err := cl.Cancel(context.Background(), st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	// Checkpoint removal happens in the same critical section that retires
	// the shard, so once it reports non-running the directory must be clean.
	waitShard(func(sh ShardStatus) bool { return sh.State != StateRunning }, "shard to wind down")
	left, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(left) != 0 {
		t.Errorf("canceled job left checkpoints behind: %v", left)
	}
}

// TestRunShardCheckpointContents drives runShard directly (no queue, no
// timing) and inspects the restart file an interrupted attempt leaves
// behind: a valid core checkpoint whose schedule has been advanced past the
// completed warmup sweeps, consumable by a second attempt that finishes the
// shard with the exact uninterrupted physics.
func TestRunShardCheckpointContents(t *testing.T) {
	cfg := fastConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 8, 16
	want, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	ckptDir := t.TempDir()
	var calls atomic.Int64
	svc, err := New(Options{
		Workers:       1,
		CheckpointDir: ckptDir,
		FaultHook: func(jobID string, shard, sweep int) bool {
			return calls.Add(1) == 3 // die at warmup sweep 3 of 8
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = svc.Close() })

	req := JobRequest{Config: cfg}
	if err := req.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	j := newJob("jtest", req, cfg.Hash(), ckptDir)
	sh := j.shards[0]

	// Attempt 1: the fault hook cancels the run context mid-warmup.
	ctx1, cancel1 := context.WithCancel(context.Background())
	sh.runCancel = cancel1
	if _, err := svc.runShard(ctx1, j, sh); err == nil {
		t.Fatal("interrupted attempt did not error")
	}
	cancel1()
	sh.runCancel = nil

	ck, err := core.LoadCheckpoint(sh.ckptPath)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if got := ck.Config.WarmSweeps; got != cfg.WarmSweeps-3 {
		t.Errorf("checkpoint warmup schedule = %d, want %d", got, cfg.WarmSweeps-3)
	}
	if ck.Config.MeasSweeps != cfg.MeasSweeps {
		t.Errorf("checkpoint measurement schedule = %d, want %d", ck.Config.MeasSweeps, cfg.MeasSweeps)
	}
	if ck.Proposed == 0 {
		t.Errorf("checkpoint lost the Metropolis counters")
	}

	// Attempt 2 resumes from the file and must reproduce the direct run.
	res, err := svc.runShard(context.Background(), j, sh)
	if err != nil {
		t.Fatalf("resumed attempt: %v", err)
	}
	if got, wantB := resultsBytes(t, res), resultsBytes(t, want); string(got) != string(wantB) {
		t.Errorf("resumed shard differs from uninterrupted run:\n got %s\nwant %s", got, wantB)
	}
	if res.Acceptance != want.Acceptance {
		t.Errorf("acceptance not carried across resume: %v vs %v", res.Acceptance, want.Acceptance)
	}
	if _, err := os.Stat(sh.ckptPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after success: %v", err)
	}
}

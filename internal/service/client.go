package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a thin Go binding over the v1 HTTP job API. The zero HTTPClient
// means http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8517".
	Base string
	// HTTPClient overrides the transport (httptest servers, timeouts).
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues one request and decodes the JSON body into out (errors decode
// the error document).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 400 {
		var ed errorDoc
		if derr := json.NewDecoder(resp.Body).Decode(&ed); derr == nil && ed.Error != "" {
			return fmt.Errorf("service client: %s %s: %s", method, path, ed.Error)
		}
		return fmt.Errorf("service client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if resp.StatusCode == http.StatusAccepted && method == http.MethodGet {
		// GET result on an in-flight job.
		return ErrNotDone
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its submission-time status (terminal
// already on a cache hit).
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status document.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every retained job's status in submission order.
func (c *Client) List(ctx context.Context) ([]*JobStatus, error) {
	var doc struct {
		SchemaVersion string       `json:"schema_version"`
		Jobs          []*JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &doc); err != nil {
		return nil, err
	}
	return doc.Jobs, nil
}

// Result fetches a finished job's result; ErrNotDone while it is in flight.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	var res JobResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel stops a job and returns the post-cancel status.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stream follows the job's chunked-JSON event feed, invoking fn for every
// event until the stream ends (terminal event delivered), fn returns false,
// or ctx is canceled.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/stream"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var ed errorDoc
		if derr := json.NewDecoder(resp.Body).Decode(&ed); derr == nil && ed.Error != "" {
			return fmt.Errorf("service client: stream %s: %s", id, ed.Error)
		}
		return fmt.Errorf("service client: stream %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("service client: stream %s: decode event: %w", id, err)
		}
		if !fn(e) {
			return nil
		}
	}
	return sc.Err()
}

// WaitResult blocks until the job finishes (following the event stream, so
// no polling) and returns its result document.
func (c *Client) WaitResult(ctx context.Context, id string) (*JobResult, error) {
	// A cache hit (or an already-finished job) needs no stream round trip.
	res, err := c.Result(ctx, id)
	if err == nil {
		return res, nil
	}
	if err != ErrNotDone && !strings.Contains(err.Error(), ErrNotDone.Error()) {
		return nil, err
	}
	err = c.Stream(ctx, id, func(e Event) bool {
		return !(e.Type == "state" && e.Shard == -1 && e.State.terminal())
	})
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return c.Result(ctx, id)
}

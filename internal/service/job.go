package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"questgo/internal/core"
	"questgo/internal/schema"
)

// JobSchemaVersion is the wire version of every job-API document
// (JobRequest, JobStatus, JobResult, Event, Stats, error bodies). The HTTP
// paths carry the major too (/v1/...); the body field is what programs
// check.
const JobSchemaVersion = "1.0"

// JobState is the lifecycle of a job (and of each shard).
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether no further transitions can happen.
func (st JobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// JobRequest is the POST /v1/jobs body: the canonical Config wire document
// plus the shard fan-out. Shard i runs the same physics with seed
// core.WalkerSeed(Config.Seed, i), so shards are statistically independent
// chains and the merged result is exactly what Run(..., WithWalkers) would
// produce.
type JobRequest struct {
	SchemaVersion string      `json:"schema_version,omitempty"`
	Config        core.Config `json:"config"`
	// Shards is the number of independent chains (default 1).
	Shards int `json:"shards,omitempty"`
	// Tag is an opaque client label echoed in status documents.
	Tag string `json:"tag,omitempty"`
	// NoCache bypasses the result cache for this job (no lookup, no
	// store) — the workload harness uses it to force cold executions.
	NoCache bool `json:"no_cache,omitempty"`
}

// normalize validates the request and fills defaults.
func (r *JobRequest) normalize() error {
	if err := schema.Check(r.SchemaVersion, JobSchemaVersion); err != nil {
		return fmt.Errorf("service: job request: %w", err)
	}
	if r.Shards == 0 {
		r.Shards = 1
	}
	if r.Shards < 1 || r.Shards > 4096 {
		return fmt.Errorf("service: shards must be in [1, 4096], got %d", r.Shards)
	}
	if err := r.Config.Validate(); err != nil {
		return err
	}
	if r.Shards > 1 && r.Config.Autopilot {
		// Mirrors core.Run's WithWalkers restriction: the walker group shares
		// one collector whose single stability listener cannot serve several
		// controllers. Shards are separate simulations so they *could* pilot
		// independently, but then an n-shard job would no longer reproduce
		// Run(..., WithWalkers(n)); keep the two surfaces identical.
		return fmt.Errorf("service: autopilot jobs support a single shard, not %d", r.Shards)
	}
	return nil
}

// cacheKey is the result-cache identity of the request: the deterministic
// Config content hash plus the shard fan-out (the merge statistics depend
// on it).
func (r *JobRequest) cacheKey() string {
	return fmt.Sprintf("%s/shards=%d", r.Config.Hash(), r.Shards)
}

// ShardStatus is one shard's slice of a status document.
type ShardStatus struct {
	Shard    int      `json:"shard"`
	State    JobState `json:"state"`
	Stage    string   `json:"stage,omitempty"`
	Sweep    int      `json:"sweep,omitempty"`
	Total    int      `json:"total,omitempty"`
	Restarts int      `json:"restarts,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} document.
type JobStatus struct {
	SchemaVersion string        `json:"schema_version,omitempty"`
	ID            string        `json:"job_id"`
	State         JobState      `json:"state"`
	Cached        bool          `json:"cached,omitempty"`
	Tag           string        `json:"tag,omitempty"`
	ConfigHash    string        `json:"config_hash"`
	Shards        []ShardStatus `json:"shards"`
	ShardsDone    int           `json:"shards_done"`
	// Partial is the streaming aggregate over the shards that have landed
	// so far (nil until the first one does).
	Partial *Estimate `json:"partial,omitempty"`
	Error   string    `json:"error,omitempty"`

	SubmittedUnixMS int64 `json:"submitted_unix_ms"`
	StartedUnixMS   int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS  int64 `json:"finished_unix_ms,omitempty"`
}

// JobResult is the GET /v1/jobs/{id}/result document: the merged results
// wire format plus service provenance.
type JobResult struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	ID            string `json:"job_id"`
	ConfigHash    string `json:"config_hash"`
	Shards        int    `json:"shards"`
	// Cached marks a result served from the cache instead of computed.
	Cached bool `json:"cached,omitempty"`
	// WallMS is the service-side execution time (submit to finish; 0 when
	// served from the cache).
	WallMS  float64       `json:"wall_ms"`
	Results *core.Results `json:"results"`
}

// Event is one chunked-JSON line of the GET /v1/jobs/{id}/stream feed.
// Shard is -1 for job-level events. The buffer is bounded, so Seq may jump
// for a slow reader; the terminal "state" event is never dropped.
type Event struct {
	SchemaVersion string    `json:"schema_version,omitempty"`
	Seq           int       `json:"seq"`
	ID            string    `json:"job_id"`
	Type          string    `json:"type"` // "state", "shard", "progress", "partial"
	Shard         int       `json:"shard"`
	State         JobState  `json:"state,omitempty"`
	Stage         string    `json:"stage,omitempty"`
	Sweep         int       `json:"sweep,omitempty"`
	Total         int       `json:"total,omitempty"`
	Restarts      int       `json:"restarts,omitempty"`
	Partial       *Estimate `json:"partial,omitempty"`
	Error         string    `json:"error,omitempty"`
}

// maxBufferedEvents bounds each job's event replay buffer.
const maxBufferedEvents = 1024

// job is the server-side record of one submission.
type job struct {
	id   string
	req  JobRequest
	hash string

	ctx    context.Context
	cancel context.CancelFunc

	// All fields below are guarded by mu.
	mu        sync.Mutex
	state     JobState      //qmc:guarded(mu)
	errMsg    string        //qmc:guarded(mu)
	cached    bool          //qmc:guarded(mu)
	shards    []*shardState //qmc:guarded(mu)
	agg       *Aggregator   //qmc:guarded(mu)
	result    *JobResult    //qmc:guarded(mu)
	submitted time.Time     //qmc:guarded(mu)
	started   time.Time     //qmc:guarded(mu)
	finished  time.Time     //qmc:guarded(mu)

	events   []Event       //qmc:guarded(mu)
	firstSeq int           //qmc:guarded(mu)
	nextSeq  int           //qmc:guarded(mu)
	notify   chan struct{} //qmc:guarded(mu) closed+replaced on every event (broadcast)
}

// shardState is the live bookkeeping of one shard.
type shardState struct {
	idx       int
	cfg       core.Config // seed-derived; schedule may shrink across restarts
	state     JobState
	stage     string
	sweep     int
	total     int
	restarts  int
	ckptPath  string
	runCancel context.CancelFunc // non-nil while running
}

func newJob(id string, req JobRequest, hash string, ckptDir string) *job {
	ctx, cancel := context.WithCancel(background())
	shards := make([]*shardState, 0, req.Shards)
	for i := 0; i < req.Shards; i++ {
		cfg := req.Config
		cfg.Seed = core.WalkerSeed(req.Config.Seed, i)
		shards = append(shards, &shardState{
			idx:      i,
			cfg:      cfg,
			state:    StateQueued,
			ckptPath: fmt.Sprintf("%s/%s-shard%04d.ckpt", ckptDir, id, i),
		})
	}
	return &job{
		id: id, req: req, hash: hash,
		ctx: ctx, cancel: cancel,
		state:     StateQueued,
		shards:    shards,
		agg:       NewAggregator(req.Shards),
		submitted: time.Now(),
		notify:    make(chan struct{}),
	}
}

// cancelCtx cancels the job's context without touching state (Close path;
// state transitions happen under the lock elsewhere).
func (j *job) cancelCtx() { j.cancel() }

// emit appends an event under the job lock and wakes stream readers.
//
//qmc:locked(mu)
func (j *job) emit(e Event) {
	e.SchemaVersion = JobSchemaVersion
	e.Seq = j.nextSeq
	e.ID = j.id
	j.nextSeq++
	j.events = append(j.events, e)
	if len(j.events) > maxBufferedEvents {
		drop := len(j.events) - maxBufferedEvents
		j.events = j.events[drop:]
		j.firstSeq += drop
	}
	close(j.notify)
	j.notify = make(chan struct{})
}

// status builds the wire status document under the job lock.
//
//qmc:locked(mu)
func (j *job) status() *JobStatus {
	st := &JobStatus{
		SchemaVersion:   JobSchemaVersion,
		ID:              j.id,
		State:           j.state,
		Cached:          j.cached,
		Tag:             j.req.Tag,
		ConfigHash:      j.hash,
		ShardsDone:      j.agg.Landed(),
		Error:           j.errMsg,
		SubmittedUnixMS: j.submitted.UnixMilli(),
	}
	if j.cached {
		// A cache hit never ran its shards; they are done by proxy.
		st.ShardsDone = len(j.shards)
	}
	if !j.started.IsZero() {
		st.StartedUnixMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedUnixMS = j.finished.UnixMilli()
	}
	if j.agg.Landed() > 0 {
		st.Partial = j.agg.Estimate()
	}
	for _, sh := range j.shards {
		st.Shards = append(st.Shards, ShardStatus{
			Shard: sh.idx, State: sh.state, Stage: sh.stage,
			Sweep: sh.sweep, Total: sh.total, Restarts: sh.restarts,
		})
	}
	return st
}

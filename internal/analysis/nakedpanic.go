package analysis

import (
	"go/ast"
	"regexp"
	"strconv"
)

// nakedPanicPackages are the kernel layers whose panics guard shape and
// bounds contracts.
var nakedPanicPackages = map[string]bool{
	pkgBlas:   true,
	pkgLapack: true,
	pkgGreens: true,
	pkgUpdate: true,
	pkgGPU:    true,
	pkgMat:    true,
}

// shapeComplaint matches panic messages that complain about a shape or
// bounds violation without saying which shapes collided.
var shapeComplaint = regexp.MustCompile(`(?i)(mismatch|dimension|length|size|out of range|expects|too short|must divide)`)

// NakedPanic requires kernel panics about shapes to carry the offending
// dimensions. A wrapped N=1024 Green's function pipeline dies ~10 call
// frames below the sweep that misconfigured it; "dimension mismatch" with
// no numbers forces a debugger session that fmt.Sprintf("%dx%d vs %dx%d",
// ...) would have answered from the log line. The formatting cost is
// irrelevant: panic arguments only evaluate on the failure path (hotalloc
// exempts them for the same reason).
// nakedpanic diagnostic format.
const msgNakedPanic = "shape panic %q carries no dimensions; use fmt.Sprintf with the offending sizes"

var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "kernel shape panics must carry the offending dimensions",
	Wave: 1,
	Messages: []string{
		msgNakedPanic,
	},
	Run: runNakedPanic,
}

func runNakedPanic(pass *Pass) error {
	if !nakedPanicPackages[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !pass.isBuiltin(id, "panic") {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // fmt.Sprintf / error value: carries context
			}
			msg, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if shapeComplaint.MatchString(msg) {
				pass.Reportf(call.Pos(), msgNakedPanic, msg)
			}
			return true
		})
	}
	return nil
}

package analysis

import (
	"strings"
)

// RngDiscipline forbids math/rand (and math/rand/v2) everywhere except
// internal/rng. Monte Carlo trajectories must be exactly reproducible from
// a single seed: the validation pipeline compares physical observables
// against published runs, checkpoints resume mid-chain, and the
// spin-parallel sweep relies on per-stream determinism. A stray global
// rand source — seeded from the clock, shared across goroutines — breaks
// all three silently. All randomness flows through the deterministic
// xoshiro256** streams of internal/rng.
// rngdiscipline diagnostic format.
const msgRngImport = "import of %s outside internal/rng breaks deterministic trajectories; use rng.New/rng.NewStream"

var RngDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "math/rand is forbidden outside internal/rng",
	Wave: 1,
	Messages: []string{
		msgRngImport,
	},
	Run: runRngDiscipline,
}

func runRngDiscipline(pass *Pass) error {
	if pass.PkgPath == pkgRng {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), msgRngImport, path)
			}
		}
	}
	return nil
}

// Package analysis is qmclint: a repo-specific static-analysis suite that
// machine-checks the invariants the fast paths rely on — the properties the
// compiler cannot see but PRs 1–3 bought their throughput with.
//
// The Go module proxy is not available in the build environment, so the
// suite does not depend on golang.org/x/tools/go/analysis; instead it
// implements the same analyzer/pass/diagnostic shape on the standard
// library (go/ast + go/types with the source importer, packages enumerated
// by `go list -json`). The API is deliberately a subset of x/tools so the
// analyzers could be ported to a real multichecker verbatim if the
// dependency ever becomes available.
//
// Analyzers (run all of them with `go run ./cmd/qmclint ./...`):
//
//   - hotalloc: no make/append/new/closure/fmt allocations in //qmc:hot
//     functions (and anywhere in internal/blas, which is hot top to bottom);
//     hot-path buffers must route through the mat scratch pools.
//   - poolpair: every mat.GetScratch has a matching mat.PutScratch in the
//     same function, and scratch never escapes through a return.
//   - obscharge: kernels annotated //qmc:charges Op must charge that
//     internal/obs counter, the known kernel entry points must carry the
//     annotation, and no counter is charged without one — so the metrics
//     document cannot silently rot.
//   - dimcheck: provably mismatched matrix shapes at blas/mat call sites
//     (dimensions inferred from local mat.New/GetScratch literals).
//   - rngdiscipline: math/rand is forbidden outside internal/rng; all
//     stochastic behavior must flow through the deterministic xoshiro
//     streams or trajectories stop being reproducible.
//   - nakedpanic: kernel panics about shapes must carry the offending
//     dimensions (fmt.Sprintf), not a bare string.
//   - errcheck: cmd/* must not drop errors from flag/JSON/file handling.
//   - streamorder: internal/gpu's modeled-clock state may be written only
//     through the Stream/Graph execution layer (or Device.Reset), so the
//     overlap and launch-overhead accounting always reflects an event-
//     ordered schedule.
//
// Wave 2 (PR 10) covers the concurrent and wire-facing layers grown in
// PRs 7–9:
//
//   - ctxflow: every context.WithCancel/WithTimeout cancel func is
//     deferred, called, or stored; and no ctx.Err() / errors.Is(err,
//     context.Canceled) classification runs after the corresponding
//     cancel() in the same function (the misclassification bug class).
//   - guardedfield: //qmc:guarded(mu) struct fields may only be touched by
//     functions that lock the named mutex or carry a //qmc:locked(mu)
//     caller-holds contract.
//   - goleak: every go statement needs a visible drain path (select,
//     channel receive/range, WaitGroup Done) or a justified waiver.
//   - mapdet: no range over a map in the deterministic packages — map
//     iteration order is the canonical silent determinism killer.
//   - wirelock: versioned wire-format structs are locked against golden
//     manifests under testdata/wire/; field drift without a schema-version
//     bump is a finding.
//
// # Annotations
//
//	//qmc:hot                    function must be allocation-free (hotalloc)
//	//qmc:charges Op1[,Op2...]   function charges these obs counters (obscharge)
//	//qmc:guarded(mu)            struct field is guarded by sibling mutex mu
//	//qmc:locked(mu)             function runs with mutex mu already held
//	//qmc:allow name[,name] -- why   suppress named analyzers on this or the
//	                                 next line (a justification is required)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check. Run inspects a pass and reports diagnostics
// through pass.Reportf.
//
// Messages lists every diagnostic format string the analyzer may pass to
// Reportf; the fixture suite fails unless each one is exercised by at
// least one // want comment, and Reportf coverage of an undeclared format
// is equally a test failure — so the fixture set and the analyzer cannot
// drift apart.
type Analyzer struct {
	Name     string
	Doc      string
	Wave     int // 1 = hot-path wave (PR 4), 2 = concurrency/wire wave (PR 10)
	Messages []string
	Run      func(*Pass) error
}

// Diagnostic is one finding, positioned for file:line:col display. Fix,
// when non-nil, is a mechanically safe edit `qmclint -fix` may apply.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fix      *Fix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package // may be nil if type-checking failed badly
	Info     *types.Info    // always non-nil; maps may be sparse on type errors

	diags    *[]Diagnostic
	suppress map[string]map[int][]string // filename -> line -> allowed analyzer names
}

// Reportf records a diagnostic at pos unless a //qmc:allow comment on the
// same or the preceding line waives this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, nil, format, args...)
}

// ReportfFix is Reportf with an attached mechanical fix.
func (p *Pass) ReportfFix(pos token.Pos, fix *Fix, format string, args ...interface{}) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *Fix, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	recordCoverage(p.Analyzer.Name, format)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Message-format coverage bookkeeping: every unsuppressed Reportf records
// which declared format fired, so the test suite can demand a fixture per
// message. Guarded by a mutex — RunAnalyzers analyzes packages
// concurrently.
var (
	coverageMu   sync.Mutex
	coverageSeen = map[string]map[string]bool{}
)

func recordCoverage(analyzer, format string) {
	coverageMu.Lock()
	m := coverageSeen[analyzer]
	if m == nil {
		m = map[string]bool{}
		coverageSeen[analyzer] = m
	}
	m[format] = true
	coverageMu.Unlock()
}

// MessageCoverage snapshots which diagnostic formats each analyzer has
// emitted in this process (analyzer name -> format -> fired).
func MessageCoverage() map[string]map[string]bool {
	coverageMu.Lock()
	defer coverageMu.Unlock()
	out := make(map[string]map[string]bool, len(coverageSeen))
	for a, formats := range coverageSeen {
		fc := make(map[string]bool, len(formats))
		for f := range formats {
			fc[f] = true
		}
		out[a] = fc
	}
	return out
}

func (p *Pass) allowed(pos token.Position) bool {
	lines := p.suppress[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// buildSuppressions indexes every //qmc:allow comment by file and line.
// The directive form is `//qmc:allow name[,name...] -- justification`. A
// directive without a justification is ignored — the diagnostic keeps
// firing — so every waiver in the tree states why it is safe.
func buildSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	sup := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//qmc:allow ")
				if !ok {
					continue
				}
				names, why, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(why) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					sup[pos.Filename] = lines
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						lines[pos.Line] = append(lines[pos.Line], n)
					}
				}
			}
		}
	}
	return sup
}

// hasDirective reports whether the doc comment carries the exact directive
// line (e.g. "//qmc:hot").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// directiveArgs returns the comma-separated arguments of a doc directive
// like `//qmc:charges OpGemmCalls,OpGemmFlops`, and whether it is present.
func directiveArgs(doc *ast.CommentGroup, prefix string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, prefix+" ")
		if !ok {
			continue
		}
		var args []string
		for _, a := range strings.Split(rest, ",") {
			if a = strings.TrimSpace(a); a != "" {
				args = append(args, a)
			}
		}
		return args, true
	}
	return nil, false
}

// pkgSelector resolves a selector expression like obs.Add to
// (importPath, funcName) when its base names an imported package. When
// type information is missing it falls back to the syntactic package name,
// resolved through the file imports.
func (p *Pass) pkgSelector(f *ast.File, e ast.Expr) (path, name string) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if p.Info != nil {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path(), sel.Sel.Name
		}
		if _, ok := p.Info.Uses[id]; ok {
			return "", "" // a real object, not a package qualifier
		}
	}
	for _, imp := range f.Imports {
		ipath := strings.Trim(imp.Path.Value, `"`)
		name := ipath[strings.LastIndex(ipath, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return ipath, sel.Sel.Name
		}
	}
	return "", ""
}

// isBuiltin reports whether id names the given predeclared function (make,
// append, new, panic, ...), i.e. it is not shadowed by a local object.
func (p *Pass) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			_, builtin := obj.(*types.Builtin)
			return builtin
		}
	}
	return true
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position. Packages are analyzed concurrently (the
// per-package goroutines share only the coverage recorder, which is
// mutex-guarded); the merged output is deterministic because each
// package's findings land in its own slot before the final sort.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *LoadedPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sup := buildSuppressions(pkg.Fset, pkg.Files)
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					PkgPath:  pkg.PkgPath,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					diags:    &perPkg[i],
					suppress: sup,
				}
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
					return
				}
			}
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	for _, err := range errs {
		if err != nil {
			return diags, err
		}
	}
	return diags, nil
}

// All returns the full qmclint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		PoolPair,
		ObsCharge,
		DimCheck,
		RngDiscipline,
		NakedPanic,
		ErrCheck,
		StreamOrder,
		CtxFlow,
		GuardedField,
		GoLeak,
		MapDet,
		WireLock,
	}
}

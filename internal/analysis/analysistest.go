package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// This file is a miniature analysistest: fixture packages live under
// testdata/<analyzer>/, and lines that should trigger a diagnostic carry a
// trailing `// want "substring"` comment (several substrings allowed). The
// harness type-checks the fixture with the source importer — fixtures may
// import the real questgo packages — runs one analyzer, and diffs the
// diagnostics against the expectations.
//
// Because several analyzers key on the package import path (obscharge only
// fires in kernel packages, rngdiscipline exempts internal/rng, ...), a
// fixture may pin its path with a magic first-line comment:
//
//	//qmclint:path questgo/internal/blas

// TB is the subset of *testing.T the harness needs; keeping it an
// interface avoids importing testing into the library.
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

var wantRE = regexp.MustCompile(`// want (.+)$`)

// RunFixture analyzes testdata/<dir> with a and compares diagnostics
// against the fixture's want comments.
func RunFixture(t TB, a *Analyzer, dir string) {
	t.Helper()
	pattern := filepath.Join("testdata", dir, "*.go")
	names, err := filepath.Glob(pattern)
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files match %s", pattern)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	pkgPath := "fixture/" + dir
	type want struct {
		substr  string
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//qmclint:path "); ok {
					pkgPath = strings.TrimSpace(rest)
				}
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range splitQuoted(m[1]) {
					wants[key] = append(wants[key], &want{substr: q})
				}
			}
		}
	}

	pkg := typeCheck(fset, importer.ForCompiler(fset, "source", nil), pkgPath, filepath.Dir(names[0]), files)
	diags, err := RunAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", dir, d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s: missing diagnostic containing %q", dir, key, w.substr)
			}
		}
	}
}

// loadFixturePackage parses and type-checks one testdata fixture package
// the same way RunFixture does (honoring //qmclint:path), for tests that
// drive RunAnalyzers over several packages at once.
func loadFixturePackage(t TB, dir string) *LoadedPackage {
	t.Helper()
	pattern := filepath.Join("testdata", dir, "*.go")
	names, err := filepath.Glob(pattern)
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files match %s", pattern)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	pkgPath := "fixture/" + dir
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//qmclint:path "); ok {
					pkgPath = strings.TrimSpace(rest)
				}
			}
		}
	}
	return typeCheck(fset, importer.ForCompiler(fset, "source", nil), pkgPath, filepath.Dir(names[0]), files)
}

// splitQuoted extracts the double-quoted substrings of a want clause, e.g.
// `"a" "b"` -> [a b].
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '"')
		if j < 0 {
			return out
		}
		out = append(out, s[i+1:i+1+j])
		s = s[i+j+2:]
	}
}

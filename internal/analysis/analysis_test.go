package analysis

import "testing"

// fixtureCases pairs every analyzer with its testdata package(s); each
// fixture mixes positive lines (tagged `// want "substring"`) with
// negative ones that must stay silent. TestMessageCoverage replays the
// same table, so adding an analyzer without fixtures fails twice.
var fixtureCases = []struct {
	analyzer *Analyzer
	dir      string
}{
	{HotAlloc, "hotalloc"},
	{PoolPair, "poolpair"},
	{ObsCharge, "obscharge"},
	{DimCheck, "dimcheck"},
	{RngDiscipline, "rngdiscipline"},
	{RngDiscipline, "rngdiscipline_ok"},
	{NakedPanic, "nakedpanic"},
	{ErrCheck, "errcheck"},
	{ErrCheck, "errcheck_service"},
	{StreamOrder, "streamorder"},
	{CtxFlow, "ctxflow"},
	{GuardedField, "guardedfield"},
	{GoLeak, "goleak"},
	{MapDet, "mapdet"},
	{WireLock, "wirelock"},
	{WireLock, "wirelock_missing"},
}

func TestFixtures(t *testing.T) {
	for _, c := range fixtureCases {
		c := c
		t.Run(c.dir+"/"+c.analyzer.Name, func(t *testing.T) {
			RunFixture(t, c.analyzer, c.dir)
		})
	}
}

// TestAllRegistered keeps cmd/qmclint's -list in sync with the suite.
func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("All() returned %d analyzers, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc or run function", a)
		}
		if a.Wave != 1 && a.Wave != 2 {
			t.Fatalf("analyzer %q has wave %d, want 1 or 2", a.Name, a.Wave)
		}
		if len(a.Messages) == 0 {
			t.Fatalf("analyzer %q declares no diagnostic messages", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestMessageCoverage enforces the fixture contract both ways: every
// declared diagnostic format must fire from at least one fixture line,
// and no analyzer may emit a format it does not declare. It replays the
// fixture table itself so the result does not depend on test ordering.
func TestMessageCoverage(t *testing.T) {
	for _, c := range fixtureCases {
		RunFixture(t, c.analyzer, c.dir)
	}
	cov := MessageCoverage()
	for _, a := range All() {
		declared := map[string]bool{}
		for _, m := range a.Messages {
			declared[m] = true
		}
		for _, m := range a.Messages {
			if !cov[a.Name][m] {
				t.Errorf("%s: declared message has no exercising fixture: %q", a.Name, m)
			}
		}
		for m := range cov[a.Name] {
			if !declared[m] {
				t.Errorf("%s: emitted message is not declared in Messages: %q", a.Name, m)
			}
		}
	}
}

// TestConcurrentRunDeterministic loads several fixture packages at once
// and runs the full suite repeatedly; under -race this exercises the
// parallel per-package analysis, and the diagnostics must come back in
// identical order every time.
func TestConcurrentRunDeterministic(t *testing.T) {
	var pkgs []*LoadedPackage
	for _, dir := range []string{"ctxflow", "goleak", "mapdet", "guardedfield", "hotalloc", "streamorder"} {
		pkgs = append(pkgs, loadFixturePackage(t, dir))
	}
	baseline, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(baseline) == 0 {
		t.Fatal("expected diagnostics from the fixture packages")
	}
	for i := 0; i < 5; i++ {
		diags, err := RunAnalyzers(pkgs, All())
		if err != nil {
			t.Fatalf("RunAnalyzers (run %d): %v", i, err)
		}
		if len(diags) != len(baseline) {
			t.Fatalf("run %d: %d diagnostics, want %d", i, len(diags), len(baseline))
		}
		for j := range diags {
			if diags[j].String() != baseline[j].String() {
				t.Fatalf("run %d: diagnostic %d is %q, want %q", i, j, diags[j], baseline[j])
			}
		}
	}
}

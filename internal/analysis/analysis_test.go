package analysis

import "testing"

// TestFixtures runs every analyzer against its testdata package(s); each
// fixture mixes positive lines (tagged `// want "substring"`) with
// negative ones that must stay silent.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{HotAlloc, "hotalloc"},
		{PoolPair, "poolpair"},
		{ObsCharge, "obscharge"},
		{DimCheck, "dimcheck"},
		{RngDiscipline, "rngdiscipline"},
		{RngDiscipline, "rngdiscipline_ok"},
		{NakedPanic, "nakedpanic"},
		{ErrCheck, "errcheck"},
		{ErrCheck, "errcheck_service"},
		{StreamOrder, "streamorder"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir+"/"+c.analyzer.Name, func(t *testing.T) {
			RunFixture(t, c.analyzer, c.dir)
		})
	}
}

// TestAllRegistered keeps cmd/qmclint's -list in sync with the suite.
func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() returned %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

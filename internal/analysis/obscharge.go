package analysis

import (
	"go/ast"
	"strings"
)

// ObsCharge keeps the internal/obs operation counters honest in three
// directions:
//
//  1. A function annotated `//qmc:charges Op1[,Op2]` must actually charge
//     each listed counter in its body (obs.Add(obs.OpX, ...), or
//     obs.AddGemm for the OpGemmCalls/OpGemmFlops pair).
//  2. The known kernel entry points (registry below) must carry the
//     annotation — adding a new GEMM path that forgets to charge flops
//     fails the build instead of silently rotting the metrics document.
//  3. Inside the kernel packages, no counter may be charged from a
//     function that lacks the annotation, so the annotations stay in sync
//     with the code.
//
// obscharge diagnostic formats.
const (
	msgObsNotCharged    = "%s declares //qmc:charges %s but never calls obs.Add(obs.%s, ...)%s"
	msgObsMissingAnnot  = "kernel entry point %s must be annotated //qmc:charges %s (and charge it)"
	msgObsUndeclCharges = "%s charges obs counters without a //qmc:charges annotation (charges: %s)"
)

var ObsCharge = &Analyzer{
	Name: "obscharge",
	Doc:  "kernel entry points must charge their internal/obs counters",
	Wave: 1,
	Messages: []string{
		msgObsNotCharged,
		msgObsMissingAnnot,
		msgObsUndeclCharges,
	},
	Run: runObsCharge,
}

// obsKernelRegistry lists, per kernel package, the functions that *must*
// be annotated (and therefore charge): the operations the paper's Table I
// profile and the JSON metrics document are derived from.
var obsKernelRegistry = map[string]map[string]string{
	pkgBlas: {
		"Gemm": "OpGemmCalls",
	},
	pkgLapack: {
		"QRFactor":        "OpQRFactorizations",
		"QRPFactor":       "OpQRPFactorizations",
		"QRPFactorLevel2": "OpQRPFactorizations",
	},
	pkgGreens: {
		"Wrap":        "OpWraps",
		"initUDT":     "OpUDTSteps",
		"extendUDT":   "OpUDTSteps",
		"combineInto": "OpUDTSteps",
	},
	pkgUpdate: {
		"flush": "OpDelayedFlushes",
		"Sweep": "OpSweeps",
	},
	pkgGPU: {
		"chargeTransfer": "OpDeviceBytes",
		"chargeKernel":   "OpDeviceKernels",
		"Wrap":           "OpWraps",
		"flush":          "OpDelayedFlushes",
		"Sweep":          "OpSweeps",
		"QRFactorHybrid": "OpQRFactorizations",
		"Replay":         "OpGraphReplays",
		"PeerCopy":       "OpPeerBytes",
	},
}

// obsChargePackages is where rule 3 (no unannotated charges) applies.
var obsChargePackages = map[string]bool{
	pkgBlas:   true,
	pkgLapack: true,
	pkgGreens: true,
	pkgUpdate: true,
	pkgGPU:    true,
}

func runObsCharge(pass *Pass) error {
	registry := obsKernelRegistry[pass.PkgPath]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			declared, annotated := directiveArgs(fd.Doc, "//qmc:charges")
			charged := chargedOps(pass, f, fd)

			if annotated {
				for _, op := range declared {
					if !charged[op] {
						pass.Reportf(fd.Pos(), msgObsNotCharged,
							fd.Name.Name, op, op, gemmHint(op))
					}
				}
			} else {
				if op, required := registry[fd.Name.Name]; required {
					pass.Reportf(fd.Pos(), msgObsMissingAnnot, fd.Name.Name, op)
				}
				if len(charged) > 0 && obsChargePackages[pass.PkgPath] {
					ops := make([]string, 0, len(charged))
					for op := range charged {
						ops = append(ops, op)
					}
					pass.Reportf(fd.Pos(), msgObsUndeclCharges,
						fd.Name.Name, strings.Join(ops, ","))
				}
			}
		}
	}
	return nil
}

func gemmHint(op string) string {
	if op == "OpGemmCalls" || op == "OpGemmFlops" {
		return " (obs.AddGemm also satisfies it)"
	}
	return ""
}

// chargedOps returns the set of obs counter names fd's body charges.
// obs.AddGemm counts as charging both OpGemmCalls and OpGemmFlops.
func chargedOps(pass *Pass, file *ast.File, fd *ast.FuncDecl) map[string]bool {
	ops := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := pass.pkgSelector(file, call.Fun)
		if path != pkgObs {
			return true
		}
		switch name {
		case "AddGemm":
			ops["OpGemmCalls"] = true
			ops["OpGemmFlops"] = true
		case "Add":
			if len(call.Args) >= 1 {
				if opPath, opName := pass.pkgSelector(file, call.Args[0]); opPath == pkgObs {
					ops[opName] = true
				}
			}
		}
		return true
	})
	return ops
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflow diagnostic formats. Declared as constants so the fixture suite
// can demand one // want comment per message (see Analyzer.Messages).
const (
	msgCtxLeak = "cancel func %q from %s is never deferred, called, or stored; the context leaks until process exit — add `defer %s()`"

	msgCtxDiscard = "%s discards its cancel func; bind it and defer it or the context leaks"

	msgCtxErrAfterCancel = "%s.Err() runs after %s() and is therefore non-nil unconditionally, misclassifying every outcome as cancellation; capture the classification before canceling"

	msgCtxIsAfterCancel = "errors.Is against context.%s runs after %s() already canceled the context it classifies; move the classification above the cancel call"
)

// ctxCancelCtors maps qualified constructor names to the functions whose
// second result is a context.CancelFunc that must not be lost.
var ctxCancelCtors = map[string]bool{
	"context.WithCancel":        true,
	"context.WithCancelCause":   true,
	"context.WithTimeout":       true,
	"context.WithTimeoutCause":  true,
	"context.WithDeadline":      true,
	"context.WithDeadlineCause": true,
	"os/signal.NotifyContext":   true,
}

// CtxFlow enforces the two cancellation contracts the PR 9 review paid
// for the hard way. First, a context.CancelFunc must be deferred, called,
// or stored (a struct field, an argument, a return value) — dropping it
// leaks the context's timer and goroutine until process exit. Second, the
// misclassification bug class: once cancel() has run, ctx.Err() is
// non-nil unconditionally, so any `ctx.Err() != nil` or
// errors.Is(err, context.Canceled) classification sequenced after the
// cancel call reports "canceled" for every outcome, including success.
// The classification must be captured before canceling (qmclint -fix can
// reorder the adjacent statement pair when it is provably side-effect
// free).
//
// The ordering check is lexical within one function body: a cancel that
// only runs on some paths may produce a false positive, which is what
// //qmc:allow ctxflow -- <why> is for.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "cancel funcs must be deferred/called/stored; no ctx.Err()/errors.Is(Canceled) classification after cancel()",
	Wave: 2,
	Messages: []string{
		msgCtxLeak,
		msgCtxDiscard,
		msgCtxErrAfterCancel,
		msgCtxIsAfterCancel,
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(pass, f, fd)
		}
	}
	return nil
}

// ctxBinding is one `ctx, cancel := context.WithX(...)` pair in a function.
type ctxBinding struct {
	ctor       string // qualified constructor, e.g. "context.WithCancel"
	assign     *ast.AssignStmt
	ctxObj     types.Object
	cancelObj  types.Object
	ctxName    string
	cancelName string

	deferred bool
	escaped  bool
	calls    []*ast.CallExpr // plain (non-deferred) cancel() calls
}

func checkCtxFlow(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	var bindings []*ctxBinding

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		path, sel := pass.pkgSelector(file, call.Fun)
		ctor := path + "." + sel
		if !ctxCancelCtors[ctor] {
			return true
		}
		ctxID, _ := as.Lhs[0].(*ast.Ident)
		cancelID, _ := as.Lhs[1].(*ast.Ident)
		if cancelID == nil {
			return true
		}
		if cancelID.Name == "_" {
			pass.Reportf(as.Pos(), msgCtxDiscard, ctor)
			return true
		}
		b := &ctxBinding{ctor: ctor, assign: as, cancelName: cancelID.Name}
		if ctxID != nil && ctxID.Name != "_" {
			b.ctxObj = objectOf(pass, ctxID)
			b.ctxName = ctxID.Name
		}
		b.cancelObj = objectOf(pass, cancelID)
		if b.cancelObj != nil {
			bindings = append(bindings, b)
		}
		return true
	})
	if len(bindings) == 0 {
		return
	}

	// Classify every use of each cancel func: deferred, plainly called, or
	// escaped (stored/passed/returned). Idents acting as the Fun of a call
	// are recognized first so any remaining use counts as an escape.
	deferredIdents := map[*ast.Ident]bool{}
	callFun := map[*ast.Ident]*ast.CallExpr{}
	blankUse := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// `_ = cancel` silences the compiler but runs nothing: such a
			// use is neither a call nor an escape.
			allBlank := len(n.Lhs) > 0
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				for _, rhs := range n.Rhs {
					if id, ok := rhs.(*ast.Ident); ok {
						blankUse[id] = true
					}
				}
			}
		case *ast.DeferStmt:
			if id, ok := n.Call.Fun.(*ast.Ident); ok {
				deferredIdents[id] = true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { ...; cancel(); ... }() defers the cancel too.
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if id, ok := c.Fun.(*ast.Ident); ok {
							deferredIdents[id] = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				callFun[id] = n
			}
		}
		return true
	})
	byObj := map[types.Object]*ctxBinding{}
	defIdent := map[*ast.Ident]bool{}
	for _, b := range bindings {
		byObj[b.cancelObj] = b
		for _, lhs := range b.assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				defIdent[id] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || defIdent[id] {
			return true
		}
		b := byObj[objectOf(pass, id)]
		if b == nil {
			return true
		}
		switch {
		case blankUse[id]:
			// ignored: see above
		case deferredIdents[id]:
			b.deferred = true
		case callFun[id] != nil:
			b.calls = append(b.calls, callFun[id])
		default:
			b.escaped = true
		}
		return true
	})

	for _, b := range bindings {
		if !b.deferred && !b.escaped && len(b.calls) == 0 {
			pass.ReportfFix(b.assign.Pos(), insertDeferFix(pass, b), msgCtxLeak, b.cancelName, b.ctor, b.cancelName)
			continue
		}
		if len(b.calls) == 0 {
			continue
		}
		firstCancel := b.calls[0].Pos()
		for _, c := range b.calls[1:] {
			if c.Pos() < firstCancel {
				firstCancel = c.Pos()
			}
		}
		checkAfterCancel(pass, file, fd, b, firstCancel)
	}
}

// checkAfterCancel reports classification expressions lexically after the
// first plain cancel() call of binding b.
func checkAfterCancel(pass *Pass, file *ast.File, fd *ast.FuncDecl, b *ctxBinding, firstCancel token.Pos) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= firstCancel {
			return true
		}
		// ctx.Err() on the canceled context.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" && len(call.Args) == 0 {
			if id, ok := sel.X.(*ast.Ident); ok && b.ctxObj != nil && objectOf(pass, id) == b.ctxObj {
				pass.ReportfFix(call.Pos(), swapClassificationFix(pass, fd, b, call), msgCtxErrAfterCancel, b.ctxName, b.cancelName)
			}
			return true
		}
		// errors.Is(err, context.Canceled / context.DeadlineExceeded).
		if path, name := pass.pkgSelector(file, call.Fun); path == "errors" && name == "Is" && len(call.Args) == 2 {
			if tpath, tname := pass.pkgSelector(file, call.Args[1]); tpath == "context" &&
				(tname == "Canceled" || tname == "DeadlineExceeded") {
				pass.ReportfFix(call.Pos(), swapClassificationFix(pass, fd, b, call), msgCtxIsAfterCancel, tname, b.cancelName)
			}
		}
		return true
	})
}

// insertDeferFix builds the `defer cancel()` insertion right after the
// constructor assignment.
func insertDeferFix(pass *Pass, b *ctxBinding) *Fix {
	pos := pass.Fset.Position(b.assign.Pos())
	end := pass.Fset.Position(b.assign.End())
	indent := ""
	for i := 1; i < pos.Column; i++ {
		indent += "\t"
	}
	return &Fix{
		Desc: "insert `defer " + b.cancelName + "()` after the constructor",
		Kind: FixInsert,
		Path: end.Filename,
		Off:  end.Offset,
		Text: "\n" + indent + "defer " + b.cancelName + "()",
	}
}

// swapClassificationFix returns a statement-swap fix when the flagged
// classification is the assignment immediately following the cancel()
// statement and is provably safe to hoist: every call inside it is
// ctx.Err(), errors.Is, or context.Cause, and it never references the
// cancel func itself. Otherwise nil — the finding stays manual.
func swapClassificationFix(pass *Pass, fd *ast.FuncDecl, b *ctxBinding, flagged *ast.CallExpr) *Fix {
	var fix *Fix
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok || fix != nil {
			return true
		}
		for i := 0; i+1 < len(block.List); i++ {
			es, ok := block.List[i].(*ast.ExprStmt)
			if !ok {
				continue
			}
			cancelCall, ok := es.X.(*ast.CallExpr)
			if !ok || len(cancelCall.Args) != 0 {
				continue
			}
			id, ok := cancelCall.Fun.(*ast.Ident)
			if !ok || objectOf(pass, id) != b.cancelObj {
				continue
			}
			next, ok := block.List[i+1].(*ast.AssignStmt)
			if !ok || flagged.Pos() < next.Pos() || flagged.End() > next.End() {
				continue
			}
			if !hoistableClassification(pass, b, next) {
				continue
			}
			a := pass.Fset.Position(es.Pos())
			aEnd := pass.Fset.Position(es.End())
			bStart := pass.Fset.Position(next.Pos())
			bEnd := pass.Fset.Position(next.End())
			fix = &Fix{
				Desc:   "hoist the classification above " + b.cancelName + "()",
				Kind:   FixSwap,
				Path:   a.Filename,
				AStart: a.Offset, AEnd: aEnd.Offset,
				BStart: bStart.Offset, BEnd: bEnd.Offset,
			}
			return false
		}
		return true
	})
	return fix
}

// hoistableClassification reports whether the assignment may safely move
// above the cancel call: its only calls read context/error state and it
// does not touch the cancel func.
func hoistableClassification(pass *Pass, b *ctxBinding, as *ast.AssignStmt) bool {
	ok := true
	ast.Inspect(as, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel {
				if sel.Sel.Name == "Err" && len(n.Args) == 0 {
					return true
				}
				if id, isID := sel.X.(*ast.Ident); isID && (id.Name == "errors" || id.Name == "context") &&
					(sel.Sel.Name == "Is" || sel.Sel.Name == "As" || sel.Sel.Name == "Cause") {
					return true
				}
			}
			ok = false
		case *ast.Ident:
			if objectOf(pass, n) == b.cancelObj {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// objectOf resolves an identifier through Defs then Uses; nil when type
// information is sparse.
func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if pass.Info == nil {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

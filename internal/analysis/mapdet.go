package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapdet diagnostic format.
const (
	msgMapRange = "range over %s: map iteration order is randomized per run, and this package feeds deterministic wire/trajectory output; iterate a sorted key slice or a canonical index (or waive: //qmc:allow mapdet -- <why order cannot matter>)"
)

// mapdetExempt lists the questgo packages mapdet skips entirely. The
// analysis package itself is bookkeeping for a developer tool: its maps
// never reach wire output, checkpoints, or trajectory state, and the
// linter sorts its own diagnostics before printing.
var mapdetExempt = map[string]bool{
	"questgo/internal/analysis": true,
}

// MapDet bans ranging over maps in the deterministic packages. Map
// iteration order is randomized per process, so a map range on any path
// that feeds wire output, Config.Hash, checkpoint encoding, event
// streams, or trajectory state is the canonical silent determinism
// killer: the run "works" and two bitwise-identical submissions produce
// differently-ordered documents. Two safe idioms are recognized and stay
// silent — copying one map into another (order irrelevant by
// construction) and collecting keys that are sorted before use. Anything
// else needs a sorted-key loop or a justified waiver.
var MapDet = &Analyzer{
	Name: "mapdet",
	Doc:  "no range over a map in deterministic packages; iterate sorted keys or a canonical index",
	Wave: 2,
	Messages: []string{
		msgMapRange,
	},
	Run: runMapDet,
}

func runMapDet(pass *Pass) error {
	if mapdetExempt[pass.PkgPath] {
		return nil
	}
	if !strings.HasPrefix(pass.PkgPath, "questgo") && !strings.HasPrefix(pass.PkgPath, "fixture/mapdet") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rs.X) {
			return true
		}
		if isMapCopyLoop(pass, rs) || isCollectThenSort(pass, fd, rs) {
			return true
		}
		pass.Reportf(rs.Pos(), msgMapRange, typeLabel(pass, rs.X))
		return true
	})
}

func isMapType(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func typeLabel(pass *Pass, e ast.Expr) string {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
			return tv.Type.String()
		}
	}
	return "map"
}

// isMapCopyLoop recognizes `for k, v := range src { dst[k] = v ... }`
// bodies: every statement assigns through an index expression, so the
// visitation order cannot be observed.
func isMapCopyLoop(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			if _, ok := lhs.(*ast.IndexExpr); !ok {
				return false
			}
		}
	}
	return true
}

// isCollectThenSort recognizes the sorted-keys idiom: the loop body only
// appends to local slices (possibly behind an if), and every such slice
// is passed to a sort.* / slices.Sort* call after the loop in the same
// function.
func isCollectThenSort(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	if !collectAppendTargets(pass, rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := objectOf(pass, id); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// collectAppendTargets walks loop-body statements accepting only
// `x = append(x, ...)` assignments and if-statements wrapping more of the
// same; the append targets land in out.
func collectAppendTargets(pass *Pass, stmts []ast.Stmt, out map[types.Object]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || !pass.isBuiltin(fun, "append") {
				return false
			}
			if obj := objectOf(pass, id); obj != nil {
				out[obj] = true
			}
		case *ast.IfStmt:
			if s.Else != nil || !collectAppendTargets(pass, s.Body.List, out) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

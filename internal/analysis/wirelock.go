package analysis

import (
	"embed"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// wirelock diagnostic formats.
const (
	msgWireManifestMissing = "wire manifest %s for %s is missing; generate it with `go run ./cmd/qmclint -wiregen ./...`"

	msgWireVersionDrift = "wire version constant %s = %s does not match the locked manifest value %s; bump the constant deliberately and regenerate manifests with `qmclint -wiregen`"

	msgWireFieldsDrift = "wire struct %s diverges from its locked manifest (%s); bump %s (minor: additive, major: rename/retype/removal) and regenerate with `qmclint -wiregen`"

	msgWireStructGone = "wire struct %s is locked in manifest %s but no longer exists in this package; that is a major schema change — bump %s and regenerate with `qmclint -wiregen`"

	msgWireStructNew = "wire struct %s is reachable from a locked wire document but absent from manifest %s; bump %s and regenerate with `qmclint -wiregen`"
)

// wireManifests embeds the golden field/JSON-tag manifests. The analyzer
// compares the live struct definitions against them, so any field change
// must go through `qmclint -wiregen` — which refuses to regenerate unless
// the governing schema-version constant was bumped first.
//
//go:embed testdata/wire/*.manifest
var wireManifests embed.FS

// wireRoot is one locked document root: the struct (plus everything
// reachable from it within the package) and the version constant whose
// bump authorizes changing it.
type wireRoot struct {
	TypeName     string
	VersionConst string
}

// wireDoc is a package's wirelock registration.
type wireDoc struct {
	Manifest string
	Roots    []wireRoot
}

// wireRegistry lists every versioned wire document in the tree. Each
// entry locks the named roots and their same-package struct closure
// against testdata/wire/<Manifest>.
var wireRegistry = map[string]wireDoc{
	"questgo/internal/core": {
		Manifest: "core.manifest",
		Roots: []wireRoot{
			{"configWire", "ConfigSchemaVersion"},
			{"resultsJSON", "ResultsSchemaVersion"},
		},
	},
	"questgo/internal/obs": {
		Manifest: "obs.manifest",
		Roots:    []wireRoot{{"Metrics", "MetricsSchemaVersion"}},
	},
	"questgo/internal/benchutil": {
		Manifest: "benchutil.manifest",
		Roots:    []wireRoot{{"Record", "RecordSchemaVersion"}},
	},
	"questgo/internal/service": {
		Manifest: "service.manifest",
		Roots: []wireRoot{
			{"JobRequest", "JobSchemaVersion"},
			{"JobStatus", "JobSchemaVersion"},
			{"JobResult", "JobSchemaVersion"},
			{"Event", "JobSchemaVersion"},
			{"Estimate", "JobSchemaVersion"},
			{"Stats", "JobSchemaVersion"},
			{"errorDoc", "JobSchemaVersion"},
		},
	},
	// Fixture entries for the analysistest harness.
	"fixture/wirelock": {
		Manifest: "wirelock_fixture.manifest",
		Roots:    []wireRoot{{"Doc", "FixtureSchemaVersion"}},
	},
	"fixture/wirelock_missing": {
		Manifest: "wirelock_missing.manifest",
		Roots:    []wireRoot{{"Doc", "FixtureSchemaVersion"}},
	},
}

// WireLock locks the wire-format structs against checked-in golden
// manifests. The JSON documents these structs encode are consumed by
// clients, checkpoints, benchmark trend lines, and the result cache —
// renaming a field or reordering a struct silently breaks wire
// compatibility and the canonical (hash-feeding) encodings. Any change
// therefore has to be deliberate: bump the governing schema-version
// constant, regenerate the manifest with `qmclint -wiregen`, and the diff
// shows reviewers exactly which fields moved.
var WireLock = &Analyzer{
	Name: "wirelock",
	Doc:  "versioned wire structs must match their golden manifests; field drift requires a schema-version bump + -wiregen",
	Wave: 2,
	Messages: []string{
		msgWireManifestMissing,
		msgWireVersionDrift,
		msgWireFieldsDrift,
		msgWireStructGone,
		msgWireStructNew,
	},
	Run: runWireLock,
}

func runWireLock(pass *Pass) error {
	doc, ok := wireRegistry[pass.PkgPath]
	if !ok || pass.Pkg == nil {
		return nil
	}
	current, structOrder := wireSnapshot(pass.Pkg, doc)
	manifest, err := wireManifests.ReadFile("testdata/wire/" + doc.Manifest)
	if err != nil {
		pass.Reportf(pass.Files[0].Package, msgWireManifestMissing, doc.Manifest, pass.PkgPath)
		return nil
	}
	locked := parseWireManifest(string(manifest))

	// Version constants.
	for _, root := range doc.Roots {
		want, inManifest := locked.versions[root.VersionConst]
		if !inManifest {
			continue
		}
		got := wireConstValue(pass.Pkg, root.VersionConst)
		if got != want {
			pass.Reportf(wireConstPos(pass, root.VersionConst), msgWireVersionDrift, root.VersionConst, got, want)
		}
	}

	// Struct field sets, both directions.
	seen := map[string]bool{}
	for _, name := range structOrder {
		seen[name] = true
		vc := current.version[name]
		lockedFields, inManifest := locked.structs[name]
		if !inManifest {
			pass.Reportf(wireStructPos(pass, name), msgWireStructNew, name, doc.Manifest, vc)
			continue
		}
		if diff := diffFieldLines(lockedFields, current.structs[name]); diff != "" {
			pass.Reportf(wireStructPos(pass, name), msgWireFieldsDrift, name, diff, vc)
		}
	}
	for _, name := range locked.structOrder {
		if !seen[name] {
			vc := "the schema version"
			if len(doc.Roots) > 0 {
				vc = doc.Roots[0].VersionConst
			}
			pass.Reportf(pass.Files[0].Package, msgWireStructGone, name, doc.Manifest, vc)
		}
	}
	return nil
}

// wireSnapshot renders the live wire surface of a package: every root
// struct and its same-package struct closure, in deterministic
// encounter order.
type wireSurface struct {
	versions    map[string]string
	structs     map[string][]string
	version     map[string]string // struct -> governing version const
	structOrder []string
}

func wireSnapshot(pkg *types.Package, doc wireDoc) (wireSurface, []string) {
	s := wireSurface{
		versions: map[string]string{},
		structs:  map[string][]string{},
		version:  map[string]string{},
	}
	for _, root := range doc.Roots {
		s.versions[root.VersionConst] = wireConstValue(pkg, root.VersionConst)
	}
	qualify := func(p *types.Package) string {
		if p == pkg {
			return ""
		}
		return p.Name()
	}
	var visit func(name, versionConst string)
	visit = func(name, versionConst string) {
		if _, done := s.structs[name]; done {
			return
		}
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			return
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		var lines []string
		var nested []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			line := fmt.Sprintf("\t%s %s", f.Name(), types.TypeString(f.Type(), qualify))
			if tag := st.Tag(i); tag != "" {
				line += " `" + tag + "`"
			}
			lines = append(lines, line)
			nested = append(nested, samePkgStructs(pkg, f.Type())...)
		}
		s.structs[name] = lines
		s.version[name] = versionConst
		s.structOrder = append(s.structOrder, name)
		for _, n := range nested {
			visit(n, versionConst)
		}
	}
	for _, root := range doc.Roots {
		visit(root.TypeName, root.VersionConst)
	}
	return s, s.structOrder
}

// samePkgStructs returns the names of named struct types from pkg
// reachable through one field type (descending through pointers, slices,
// arrays, and map keys/values).
func samePkgStructs(pkg *types.Package, t types.Type) []string {
	switch t := t.(type) {
	case *types.Pointer:
		return samePkgStructs(pkg, t.Elem())
	case *types.Slice:
		return samePkgStructs(pkg, t.Elem())
	case *types.Array:
		return samePkgStructs(pkg, t.Elem())
	case *types.Map:
		return append(samePkgStructs(pkg, t.Key()), samePkgStructs(pkg, t.Elem())...)
	case *types.Named:
		if t.Obj().Pkg() == pkg {
			if _, isStruct := t.Underlying().(*types.Struct); isStruct {
				return []string{t.Obj().Name()}
			}
		}
	}
	return nil
}

func wireConstValue(pkg *types.Package, name string) string {
	obj := pkg.Scope().Lookup(name)
	c, ok := obj.(*types.Const)
	if !ok {
		return "(missing)"
	}
	if c.Val().Kind() == constant.String {
		return fmt.Sprintf("%q", constant.StringVal(c.Val()))
	}
	return c.Val().String()
}

func wireConstPos(pass *Pass, name string) token.Pos {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == name {
						return id.Pos()
					}
				}
			}
		}
	}
	return pass.Files[0].Package
}

func wireStructPos(pass *Pass, name string) token.Pos {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts.Pos()
				}
			}
		}
	}
	return pass.Files[0].Package
}

// parsedManifest is the decoded golden file.
type parsedManifest struct {
	versions    map[string]string
	structs     map[string][]string
	structOrder []string
}

func parseWireManifest(text string) parsedManifest {
	m := parsedManifest{versions: map[string]string{}, structs: map[string][]string{}}
	var cur string
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "":
		case strings.HasPrefix(line, "version "):
			parts := strings.SplitN(strings.TrimPrefix(line, "version "), " ", 2)
			if len(parts) == 2 {
				m.versions[parts[0]] = parts[1]
			}
		case strings.HasPrefix(line, "struct "):
			cur = strings.TrimPrefix(line, "struct ")
			m.structs[cur] = []string{}
			m.structOrder = append(m.structOrder, cur)
		case strings.HasPrefix(line, "\t") && cur != "":
			m.structs[cur] = append(m.structs[cur], line)
		}
	}
	return m
}

// diffFieldLines returns "" when equal, or a one-line description of the
// first divergence.
func diffFieldLines(locked, current []string) string {
	for i := 0; i < len(locked) && i < len(current); i++ {
		if locked[i] != current[i] {
			return fmt.Sprintf("field %d: manifest has %q, source has %q",
				i+1, strings.TrimSpace(locked[i]), strings.TrimSpace(current[i]))
		}
	}
	if len(locked) > len(current) {
		return fmt.Sprintf("field %d removed: manifest has %q", len(current)+1, strings.TrimSpace(locked[len(current)]))
	}
	if len(current) > len(locked) {
		return fmt.Sprintf("field %d added: source has %q", len(locked)+1, strings.TrimSpace(current[len(locked)]))
	}
	return ""
}

// RenderWireManifest produces the golden manifest text for one loaded
// package, or "" when the package is not registered.
func RenderWireManifest(pkg *LoadedPackage) string {
	doc, ok := wireRegistry[pkg.PkgPath]
	if !ok || pkg.Types == nil {
		return ""
	}
	surface, order := wireSnapshot(pkg.Types, doc)
	var b strings.Builder
	b.WriteString("# qmclint wirelock manifest for " + pkg.PkgPath + "\n")
	b.WriteString("# Regenerate after a deliberate schema bump: go run ./cmd/qmclint -wiregen ./...\n")
	seenConst := map[string]bool{}
	for _, root := range doc.Roots {
		if seenConst[root.VersionConst] {
			continue
		}
		seenConst[root.VersionConst] = true
		fmt.Fprintf(&b, "version %s %s\n", root.VersionConst, surface.versions[root.VersionConst])
	}
	for _, name := range order {
		b.WriteString("struct " + name + "\n")
		for _, line := range surface.structs[name] {
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// WireManifestName returns the manifest file name registered for a
// package path ("" when unregistered).
func WireManifestName(pkgPath string) string {
	return wireRegistry[pkgPath].Manifest
}

// CheckWireBump guards -wiregen: if the struct surface changed relative
// to the old manifest text but every governing version constant kept its
// old value, regeneration is refused — the bump must come first.
func CheckWireBump(pkg *LoadedPackage, oldText string) error {
	doc := wireRegistry[pkg.PkgPath]
	surface, order := wireSnapshot(pkg.Types, doc)
	old := parseWireManifest(oldText)
	var stale []string
	for _, name := range order {
		lockedFields, ok := old.structs[name]
		changed := !ok || diffFieldLines(lockedFields, surface.structs[name]) != ""
		if !changed {
			continue
		}
		vc := surface.version[name]
		if oldV, ok := old.versions[vc]; ok && oldV == surface.versions[vc] {
			stale = append(stale, fmt.Sprintf("%s (governed by %s, still %s)", name, vc, oldV))
		}
	}
	for _, name := range old.structOrder {
		if _, ok := surface.structs[name]; ok {
			continue
		}
		vc := "its schema constant"
		if len(doc.Roots) > 0 {
			vc = doc.Roots[0].VersionConst
			if oldV, ok := old.versions[vc]; !ok || oldV != surface.versions[vc] {
				continue // bumped already
			}
		}
		stale = append(stale, fmt.Sprintf("%s removed (bump %s first)", name, vc))
	}
	if len(stale) > 0 {
		return fmt.Errorf("%s: wire surface changed without a schema-version bump: %s",
			pkg.PkgPath, strings.Join(stale, "; "))
	}
	return nil
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Module-internal package paths the analyzers key on.
const (
	pkgBlas     = "questgo/internal/blas"
	pkgLapack   = "questgo/internal/lapack"
	pkgGreens   = "questgo/internal/greens"
	pkgUpdate   = "questgo/internal/update"
	pkgGPU      = "questgo/internal/gpu"
	pkgMat      = "questgo/internal/mat"
	pkgObs      = "questgo/internal/obs"
	pkgParallel = "questgo/internal/parallel"
	pkgRng      = "questgo/internal/rng"
)

// autoHotPackages are checked in full: every function is treated as if it
// carried //qmc:hot. internal/blas is the innermost kernel layer — nothing
// in it is ever off the hot path.
var autoHotPackages = map[string]bool{
	pkgBlas: true,
}

// hotalloc diagnostic formats.
const (
	msgHotBuiltin     = "hot path calls %s (allocates); use the mat scratch pools or a pre-bound buffer"
	msgHotFmt         = "hot path calls fmt.%s (allocates and reflects); move formatting off the hot path"
	msgHotSliceLit    = "hot path builds a slice literal (allocates); use the mat scratch pools or a pre-bound buffer"
	msgHotMapLit      = "hot path builds a map literal (allocates)"
	msgHotClosure     = "hot path creates a closure (allocates); pre-bind it at construction time"
	msgHotGoroutine   = "hot path spawns a goroutine; route fork/join through the persistent parallel pool"
	msgHotMethodValue = "hot path takes a method value of %s (allocates); pre-bind it at construction time"
)

// HotAlloc rejects per-call allocations in //qmc:hot functions: make,
// append, new, slice/map composite literals, func literals (closure
// capture), method values, go statements and fmt calls. Hot-path buffers
// must come from the mat scratch pools (GetScratch/PutScratch) or be
// pre-bound at construction time, which is what keeps the delayed-update
// and wrapping loops at level-3 throughput. Panic arguments are exempt:
// they only evaluate on the failure path, so fmt.Sprintf diagnostics there
// are free.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations in //qmc:hot functions and the blas kernel package",
	Wave: 1,
	Messages: []string{
		msgHotBuiltin,
		msgHotFmt,
		msgHotSliceLit,
		msgHotMapLit,
		msgHotClosure,
		msgHotGoroutine,
		msgHotMethodValue,
	},
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasDirective(fd.Doc, "//qmc:hot") && !autoHotPackages[pass.PkgPath] {
				continue
			}
			(&hotWalker{pass: pass, file: f}).walk(fd.Body, 0)
		}
	}
	return nil
}

// hotWalker traverses a hot function body tracking loop depth (a deferred
// closure is only alloc-free when the defer is not in a loop).
type hotWalker struct {
	pass *Pass
	file *ast.File
}

func (w *hotWalker) walk(n ast.Node, loopDepth int) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		loopDepth++
	case *ast.DeferStmt:
		// defer func() { ... }() outside a loop uses an open-coded defer:
		// the closure does not escape, so scratch-release blocks stay legal.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && loopDepth == 0 {
			for _, arg := range n.Call.Args {
				w.walk(arg, loopDepth)
			}
			w.walk(lit.Body, loopDepth)
			return
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok {
			switch {
			case w.pass.isBuiltin(id, "panic"):
				// Failure path: diagnostics may format freely.
				return
			case w.pass.isBuiltin(id, "make"), w.pass.isBuiltin(id, "append"), w.pass.isBuiltin(id, "new"):
				w.pass.Reportf(n.Pos(), msgHotBuiltin, id.Name)
			}
		}
		if path, name := w.pass.pkgSelector(w.file, n.Fun); path == "fmt" {
			w.pass.Reportf(n.Pos(), msgHotFmt, name)
		}
	case *ast.CompositeLit:
		switch n.Type.(type) {
		case *ast.ArrayType:
			if n.Type.(*ast.ArrayType).Len == nil {
				w.pass.Reportf(n.Pos(), msgHotSliceLit)
			}
		case *ast.MapType:
			w.pass.Reportf(n.Pos(), msgHotMapLit)
		}
	case *ast.FuncLit:
		w.pass.Reportf(n.Pos(), msgHotClosure)
		return // the body is not on this function's hot path
	case *ast.GoStmt:
		w.pass.Reportf(n.Pos(), msgHotGoroutine)
	case *ast.SelectorExpr:
		// A method value (m.F used as a value, not called) allocates its
		// bound receiver. Detectable only with type info.
		if w.pass.Info != nil {
			if sel, ok := w.pass.Info.Selections[n]; ok && sel.Kind() == types.MethodVal && !w.isCalled(n) {
				w.pass.Reportf(n.Pos(), msgHotMethodValue, n.Sel.Name)
			}
		}
	}
	for _, c := range childNodes(n) {
		w.walk(c, loopDepth)
	}
}

// isCalled reports whether sel appears as the callee of some call in the
// enclosing file (cheap approximation: sel is a callee iff its parent call
// records it; we just check the direct parent via re-inspection).
func (w *hotWalker) isCalled(sel *ast.SelectorExpr) bool {
	called := false
	ast.Inspect(w.file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			called = true
		}
		return !called
	})
	return called
}

// childNodes returns the direct children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

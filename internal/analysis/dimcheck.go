package analysis

import (
	"go/ast"
	"go/constant"
	"strconv"
)

// DimCheck flags provably mismatched matrix shapes at blas/mat call sites.
// It tracks local variables bound once to mat.New(r, c) or
// mat.GetScratch(r, c) whose dimensions evaluate to compile-time integer
// constants, and then checks the shape contracts of blas.Gemm / blas.GemmTN
// and mat's TransposeInto/CopyFrom. Only *provable* mismatches are
// reported: unknown or symbolic dimensions stay silent, and a variable
// that is ever reassigned is dropped. This turns the runtime dimension
// panics of the kernels into build-time findings for the static subset.
// dimcheck diagnostic formats.
const (
	msgDimGemmInner = "Gemm inner dimensions disagree: op(A) is %dx%d but op(B) is %dx%d"
	msgDimGemmRows  = "Gemm output rows disagree: op(A) has %d rows but C is %dx%d"
	msgDimGemmCols  = "Gemm output cols disagree: op(B) has %d cols but C is %dx%d"
	msgDimTranspose = "TransposeInto destination is %dx%d but the source is %dx%d (need %dx%d)"
	msgDimCopyFrom  = "CopyFrom source is %dx%d but the destination is %dx%d"
)

var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc:  "provably mismatched matrix dimensions at blas/mat call sites",
	Wave: 1,
	Messages: []string{
		msgDimGemmInner,
		msgDimGemmRows,
		msgDimGemmCols,
		msgDimTranspose,
		msgDimCopyFrom,
	},
	Run: runDimCheck,
}

type dims struct{ r, c int }

func runDimCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDims(pass, f, fd)
		}
	}
	return nil
}

func checkDims(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	shapes := make(map[string]dims)
	assigns := make(map[string]int)

	// intConst evaluates e as a compile-time int if possible.
	intConst := func(e ast.Expr) (int, bool) {
		if pass.Info != nil {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
					return int(v), true
				}
			}
		}
		if lit, ok := e.(*ast.BasicLit); ok {
			if v, err := strconv.Atoi(lit.Value); err == nil {
				return v, true
			}
		}
		return 0, false
	}

	// Pass 1: collect constructor-bound shapes and count assignments.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			assigns[id.Name]++
			if i >= len(as.Rhs) {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				continue
			}
			if path, sel := pass.pkgSelector(file, call.Fun); path != pkgMat || (sel != "New" && sel != "GetScratch") {
				continue
			}
			r, rok := intConst(call.Args[0])
			c, cok := intConst(call.Args[1])
			if rok && cok {
				shapes[id.Name] = dims{r, c}
			}
		}
		return true
	})
	for name, n := range assigns {
		if n > 1 {
			delete(shapes, name) // reassigned: shape no longer provable
		}
	}

	shapeOf := func(e ast.Expr) (dims, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return dims{}, false
		}
		d, ok := shapes[id.Name]
		return d, ok
	}
	boolLit := func(e ast.Expr) (bool, bool) {
		if id, ok := e.(*ast.Ident); ok {
			switch id.Name {
			case "true":
				return true, true
			case "false":
				return false, true
			}
		}
		return false, false
	}

	// Pass 2: check call-site contracts.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, sel := pass.pkgSelector(file, call.Fun)
		switch {
		case path == pkgBlas && sel == "Gemm" && len(call.Args) == 7:
			ta, taok := boolLit(call.Args[0])
			tb, tbok := boolLit(call.Args[1])
			if taok && tbok {
				checkGemmShapes(pass, call, ta, tb, shapeOf)
			}
		case path == pkgBlas && sel == "GemmTN" && len(call.Args) == 5:
			checkGemmTNShapes(pass, call, shapeOf)
		default:
			checkMatMethodShapes(pass, call, shapes)
		}
		return true
	})
}

func checkGemmShapes(pass *Pass, call *ast.CallExpr, ta, tb bool, shapeOf func(ast.Expr) (dims, bool)) {
	a, aok := shapeOf(call.Args[3])
	b, bok := shapeOf(call.Args[4])
	c, cok := shapeOf(call.Args[6])
	reportGemm(pass, call, ta, tb, a, aok, b, bok, c, cok)
}

func checkGemmTNShapes(pass *Pass, call *ast.CallExpr, shapeOf func(ast.Expr) (dims, bool)) {
	a, aok := shapeOf(call.Args[1])
	b, bok := shapeOf(call.Args[2])
	c, cok := shapeOf(call.Args[4])
	reportGemm(pass, call, true, false, a, aok, b, bok, c, cok)
}

func reportGemm(pass *Pass, call *ast.CallExpr, ta, tb bool, a dims, aok bool, b dims, bok bool, c dims, cok bool) {
	am, ak := a.r, a.c
	if ta {
		am, ak = ak, am
	}
	bk, bn := b.r, b.c
	if tb {
		bk, bn = bn, bk
	}
	if aok && bok && ak != bk {
		pass.Reportf(call.Pos(), msgDimGemmInner, am, ak, bk, bn)
	}
	if aok && cok && am != c.r {
		pass.Reportf(call.Pos(), msgDimGemmRows, am, c.r, c.c)
	}
	if bok && cok && bn != c.c {
		pass.Reportf(call.Pos(), msgDimGemmCols, bn, c.r, c.c)
	}
}

// checkMatMethodShapes validates receiver/argument shape contracts of the
// alloc-free mat.Dense methods used on hot paths.
func checkMatMethodShapes(pass *Pass, call *ast.CallExpr, shapes map[string]dims) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	rd, rok := shapes[recv.Name]
	if !rok || len(call.Args) != 1 {
		return
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	ad, aok := shapes[arg.Name]
	if !aok {
		return
	}
	switch sel.Sel.Name {
	case "TransposeInto":
		if ad.r != rd.c || ad.c != rd.r {
			pass.Reportf(call.Pos(), msgDimTranspose,
				ad.r, ad.c, rd.r, rd.c, rd.c, rd.r)
		}
	case "CopyFrom":
		if ad.r != rd.r || ad.c != rd.c {
			pass.Reportf(call.Pos(), msgDimCopyFrom, ad.r, ad.c, rd.r, rd.c)
		}
	}
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one parsed and type-checked package, ready for analysis.
type LoadedPackage struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErr holds the first type-checking error, if any. Analysis still
	// runs (the analyzers are resilient to sparse type info), but drivers
	// may want to surface it.
	TypeErr error
}

// Load enumerates the packages matching patterns (go list syntax, e.g.
// "./...") under dir, parses their non-test Go files and type-checks them
// with the source importer. It needs only the Go toolchain — no module
// downloads — which keeps qmclint runnable in hermetic build environments.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*LoadedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var meta struct {
			ImportPath string
			Dir        string
			GoFiles    []string
		}
		if err := dec.Decode(&meta); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if len(meta.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range meta.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkgs = append(pkgs, typeCheck(fset, imp, meta.ImportPath, meta.Dir, files))
	}
	return pkgs, nil
}

// typeCheck runs go/types over one package, tolerating errors: a package
// that fails to type-check fully still gets analyzed with whatever info
// was recovered.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []*ast.File) *LoadedPackage {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	return &LoadedPackage{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		TypeErr: firstErr,
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// guardedfield diagnostic formats.
const (
	msgGuardAccess = "%s.%s is guarded by %q (//qmc:guarded) but %s neither locks it nor declares //qmc:locked(%s)"

	msgGuardNoMutex = "//qmc:guarded(%s) on %s.%s names no sync.Mutex/sync.RWMutex field of %s"
)

var (
	guardedRE = regexp.MustCompile(`^//qmc:guarded\(([A-Za-z_]\w*)\)(\s.*)?$`)
	lockedRE  = regexp.MustCompile(`^//qmc:locked\(([A-Za-z_]\w*)\)(\s.*)?$`)
)

// GuardedField checks the repo's documented-by-comment lock discipline
// mechanically. A struct field annotated //qmc:guarded(mu) may only be
// read or written inside functions that either lock the owning struct's
// mutex (`x.mu.Lock()` / `x.mu.RLock()` somewhere in the body, with x of
// the owning type) or carry a //qmc:locked(mu) doc directive — the
// machine-readable form of the tree's "Caller holds s.mu" comments.
//
// The check is lexical, not path-sensitive: holding the lock on every
// path is the author's contract; the analyzer enforces that the contract
// is at least stated and the mutex is at least touched. Composite
// literals are naturally exempt (a struct under construction is not yet
// shared), which is why constructors build locals and assign whole
// structs.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "//qmc:guarded(mu) fields are only touched under the named mutex or a //qmc:locked(mu) contract",
	Wave: 2,
	Messages: []string{
		msgGuardAccess,
		msgGuardNoMutex,
	},
	Run: runGuardedField,
}

// guardInfo describes one annotated field.
type guardInfo struct {
	mutex      string
	structName string
	field      string
}

func runGuardedField(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields maps each annotated field object to its guard
// contract, validating that the named mutex exists in the same struct.
func collectGuardedFields(pass *Pass) map[types.Object]guardInfo {
	guarded := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := fieldGuardDirective(field)
				if !ok {
					continue
				}
				if !structHasMutex(pass, st, mu) {
					name := "(embedded)"
					if len(field.Names) > 0 {
						name = field.Names[0].Name
					}
					pass.Reportf(field.Pos(), msgGuardNoMutex, mu, ts.Name.Name, name, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{mutex: mu, structName: ts.Name.Name, field: name.Name}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// fieldGuardDirective extracts the //qmc:guarded(mu) annotation from a
// field's doc or trailing comment.
func fieldGuardDirective(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedRE.FindStringSubmatch(c.Text); m != nil {
				return m[1], true
			}
		}
	}
	return "", false
}

// structHasMutex reports whether the struct declares a field named mu of
// type sync.Mutex or sync.RWMutex.
func structHasMutex(pass *Pass, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil {
				s := obj.Type().String()
				if s == "sync.Mutex" || s == "sync.RWMutex" {
					return true
				}
			}
		}
	}
	return false
}

// checkGuardedAccesses flags selector accesses to guarded fields inside
// fd unless fd locks the owning mutex or declares //qmc:locked.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]guardInfo) {
	lockedNames := lockedDirectives(fd.Doc)
	var lockKeys map[string]bool // "Struct.mu" pairs locked in this body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		g, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		if lockedNames[g.mutex] {
			return true
		}
		if lockKeys == nil {
			lockKeys = collectLockCalls(pass, fd.Body)
		}
		if lockKeys[g.structName+"."+g.mutex] {
			return true
		}
		pass.Reportf(sel.Pos(), msgGuardAccess, g.structName, g.field, g.mutex, fd.Name.Name, g.mutex)
		return true
	})
}

// lockedDirectives parses every //qmc:locked(mu) line of a doc comment.
func lockedDirectives(doc *ast.CommentGroup) map[string]bool {
	out := map[string]bool{}
	if doc == nil {
		return out
	}
	for _, c := range doc.List {
		if m := lockedRE.FindStringSubmatch(c.Text); m != nil {
			out[m[1]] = true
		}
	}
	return out
}

// collectLockCalls finds every `x.mu.Lock()` / `x.mu.RLock()` in the body
// and records the owning named type and mutex field as "Type.mu".
func collectLockCalls(pass *Pass, body *ast.BlockStmt) map[string]bool {
	keys := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		lockSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (lockSel.Sel.Name != "Lock" && lockSel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := lockSel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner := namedTypeName(pass, muSel.X)
		if owner == "" {
			return true
		}
		keys[owner+"."+muSel.Sel.Name] = true
		return true
	})
	return keys
}

// namedTypeName resolves the (pointer-dereferenced) named type of an
// expression, or "".
func namedTypeName(pass *Pass, e ast.Expr) string {
	if pass.Info == nil {
		return ""
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

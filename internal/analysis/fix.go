package analysis

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"sort"
)

// FixKind classifies the two mechanically safe edits qmclint knows how to
// apply. Anything richer (restructuring control flow, inventing locks)
// stays a human's job.
type FixKind int

const (
	// FixInsert inserts Text at byte offset Off.
	FixInsert FixKind = iota
	// FixSwap exchanges the byte ranges [AStart,AEnd) and [BStart,BEnd)
	// (AEnd <= BStart; the separator between them is preserved).
	FixSwap
)

// Fix is one concrete edit to one file, expressed in byte offsets of the
// file as it was analyzed. ApplyFixes refuses overlapping edits and
// re-formats the result, so a fix that produces syntactically invalid code
// is an error, never a written file.
type Fix struct {
	Desc string
	Kind FixKind
	Path string

	Off  int    // FixInsert: insertion offset
	Text string // FixInsert: inserted text

	AStart, AEnd int // FixSwap: first range
	BStart, BEnd int // FixSwap: second range
}

// start returns the earliest offset the fix touches, for ordering.
func (f *Fix) start() int {
	if f.Kind == FixInsert {
		return f.Off
	}
	return f.AStart
}

// end returns the offset just past the last byte the fix touches.
func (f *Fix) end() int {
	if f.Kind == FixInsert {
		return f.Off
	}
	return f.BEnd
}

// ApplyFixes applies every diagnostic's attached fix and rewrites the
// touched files (gofmt-normalized). It returns the changed file paths in
// sorted order. Files whose fixed content equals the original are left
// untouched — running -fix on a clean tree is a no-op.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	byFile := map[string][]*Fix{}
	for i := range diags {
		if f := diags[i].Fix; f != nil {
			byFile[f.Path] = append(byFile[f.Path], f)
		}
	}
	paths := make([]string, 0, len(byFile))
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var changed []string
	for _, path := range paths {
		fixes := byFile[path]
		src, err := os.ReadFile(path)
		if err != nil {
			return changed, err
		}
		// Apply back to front so earlier offsets stay valid.
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].start() > fixes[j].start() })
		out := src
		prevStart := len(src) + 1
		for _, f := range fixes {
			if f.end() > prevStart {
				return changed, fmt.Errorf("%s: overlapping fixes; re-run qmclint -fix after the first pass", path)
			}
			prevStart = f.start()
			out, err = applyFix(out, f)
			if err != nil {
				return changed, fmt.Errorf("%s: %w", path, err)
			}
		}
		formatted, err := format.Source(out)
		if err != nil {
			return changed, fmt.Errorf("%s: fix produced invalid Go: %w", path, err)
		}
		if bytes.Equal(formatted, src) {
			continue
		}
		if err := os.WriteFile(path, formatted, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, path)
	}
	return changed, nil
}

func applyFix(src []byte, f *Fix) ([]byte, error) {
	switch f.Kind {
	case FixInsert:
		if f.Off < 0 || f.Off > len(src) {
			return nil, fmt.Errorf("fix offset %d out of range", f.Off)
		}
		var out []byte
		out = append(out, src[:f.Off]...)
		out = append(out, f.Text...)
		out = append(out, src[f.Off:]...)
		return out, nil
	case FixSwap:
		if !(0 <= f.AStart && f.AStart <= f.AEnd && f.AEnd <= f.BStart && f.BStart <= f.BEnd && f.BEnd <= len(src)) {
			return nil, fmt.Errorf("fix swap ranges [%d,%d) [%d,%d) out of order", f.AStart, f.AEnd, f.BStart, f.BEnd)
		}
		var out []byte
		out = append(out, src[:f.AStart]...)
		out = append(out, src[f.BStart:f.BEnd]...)
		out = append(out, src[f.AEnd:f.BStart]...)
		out = append(out, src[f.AStart:f.AEnd]...)
		out = append(out, src[f.BEnd:]...)
		return out, nil
	}
	return nil, fmt.Errorf("unknown fix kind %d", f.Kind)
}

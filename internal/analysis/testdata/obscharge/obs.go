//qmclint:path questgo/internal/lapack

// Package fixture exercises the obscharge analyzer against the lapack
// slot of the kernel registry: QRFactor/QRPFactor must be annotated and
// charge, declared charges must happen, and charges need annotations.
package fixture

import "questgo/internal/obs"

func QRFactor() { // want "must be annotated //qmc:charges OpQRFactorizations"
}

//qmc:charges OpQRPFactorizations
func QRPFactor() {
	obs.Add(obs.OpQRPFactorizations, 1)
}

//qmc:charges OpUDTSteps
func declaredButSilent() { // want "never calls obs.Add"
}

func unannotatedCharge() { // want "without a //qmc:charges annotation"
	obs.Add(obs.OpWraps, 1)
}

//qmc:charges OpGemmCalls,OpGemmFlops
func viaAddGemm() {
	obs.AddGemm(2, 3, 4)
}

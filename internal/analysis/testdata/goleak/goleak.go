package fixture

import (
	"context"
	"sync"
)

var workCh = make(chan int)

// spin has no drain path at all: the classic leaked hot loop.
func spin() {
	go func() { // want "no visible drain path"
		for {
			compute()
		}
	}()
}

// sendOnly blocks forever once the receiver is gone; a send is not a
// drain path.
func sendOnly(out chan<- int) {
	go func() { // want "no visible drain path"
		out <- compute()
	}()
}

// dynamic callees cannot be inspected from here.
func dynamic(f func()) {
	go f() // want "not visible from this package"
}

// selectDone drains via select on ctx.Done().
func selectDone(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case workCh <- compute():
			}
		}
	}()
}

// waitGroup drains via wg.Done with the Wait on the spawner's side.
func waitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute()
	}()
}

// worker ranges over a channel: closed channel, drained goroutine.
func worker() {
	for w := range workCh {
		_ = w
	}
}

// named resolves the same-package callee one level deep.
func named() {
	go worker()
}

// method drain resolution works through selector callees too.
type pool struct{ ch chan int }

func (p *pool) loop() {
	for v := range p.ch {
		_ = v
	}
}

func (p *pool) start() {
	go p.loop()
}

func compute() int { return 1 }

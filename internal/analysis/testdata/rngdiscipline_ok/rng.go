//qmclint:path questgo/internal/rng

// Package fixture pins the internal/rng path: the one package allowed to
// import math/rand (e.g. to cross-check its own streams in tests).
package fixture

import "math/rand"

func roll() float64 { return rand.Float64() }

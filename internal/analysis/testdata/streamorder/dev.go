//qmclint:path questgo/internal/gpu

// Package fixture exercises the streamorder analyzer: the simulated
// device's modeled-clock fields may be written only from *Stream or *Graph
// methods (or zeroed by Device.Reset); anything else bypasses the stream
// dependency ordering.
package fixture

import "sync/atomic"

type Device struct {
	busyNS, xferBusyNS, launchNS, realNS int64
	transferred                          int64
}

type Stream struct {
	dev     *Device
	clockNS int64
}

type Graph struct {
	dev *Device
}

// Stream methods own the clock: silent.
func (s *Stream) chargeKernel(ns int64) {
	atomic.AddInt64(&s.dev.busyNS, ns)
	atomic.AddInt64(&s.clockNS, ns)
}

// Graph replay charges through the graph layer: silent.
func (g *Graph) Replay(ns int64) {
	atomic.AddInt64(&g.dev.launchNS, ns)
}

// Reset is the sanctioned re-baseline: silent.
func (d *Device) Reset() {
	atomic.StoreInt64(&d.busyNS, 0)
	d.realNS = 0
}

// Reads are not ordered state transitions: silent.
func clock(d *Device) int64 {
	return atomic.LoadInt64(&d.busyNS) + d.xferBusyNS
}

// Counter fields outside the clock set are not streamorder's business:
// silent (obscharge owns counter discipline).
func (d *Device) account(bytes int64) {
	atomic.AddInt64(&d.transferred, bytes)
}

// A Device method advancing the clock directly bypasses the streams.
func (d *Device) sneakCharge(ns int64) {
	atomic.AddInt64(&d.busyNS, ns) // want "outside a Stream/Graph method"
	d.launchNS += ns               // want "outside a Stream/Graph method"
}

// Free functions are no better.
func sneakier(s *Stream, ns int64) {
	atomic.StoreInt64(&s.clockNS, ns) // want "outside a Stream/Graph method"
	s.dev.realNS = ns                 // want "outside a Stream/Graph method"
}

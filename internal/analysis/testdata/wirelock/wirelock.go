package fixture // want "no longer exists in this package"

// FixtureSchemaVersion was bumped here without regenerating the locked
// manifest (which still records 1.0).
const FixtureSchemaVersion = "1.1" // want "does not match the locked manifest value"

// Doc is the locked wire root; the manifest records field B with tag
// json:"b", so the rename below is drift.
type Doc struct { // want "diverges from its locked manifest"
	A   int    `json:"a"`
	B   string `json:"b_renamed"`
	Sub Sub    `json:"sub"`
	New Fresh  `json:"new"`
}

// Sub matches its manifest entry exactly: no finding.
type Sub struct {
	X float64 `json:"x"`
}

// Fresh is reachable from Doc but absent from the manifest.
type Fresh struct { // want "absent from manifest"
	Y int `json:"y"`
}

// Package fixture exercises the poolpair analyzer: every mat.GetScratch
// needs a same-function mat.PutScratch, and scratch must not escape.
package fixture

import "questgo/internal/mat"

func leak(n int) {
	s := mat.GetScratch(n, n) // want "no mat.PutScratch"
	s.Set(0, 0, 1)
}

func escape(n int) *mat.Dense {
	s := mat.GetScratch(n, n) // want "escapes via return" "no mat.PutScratch"
	return s
}

func good(n int) {
	s := mat.GetScratch(n, n)
	defer mat.PutScratch(s)
	s.Set(0, 0, 1)
}

func unbound(n int) {
	consume(mat.GetScratch(n, n)) // want "not bound to a variable"
}

func consume(d *mat.Dense) {}

func handoff(n int) *mat.Dense {
	s := mat.GetScratch(n, n) //qmc:allow poolpair -- fixture: caller releases
	return s
}

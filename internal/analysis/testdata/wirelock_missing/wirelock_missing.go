package fixture // want "is missing"

const FixtureSchemaVersion = "1.0"

type Doc struct {
	A int `json:"a"`
}

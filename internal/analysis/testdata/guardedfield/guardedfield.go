package fixture

import "sync"

// registry models the service-style guarded struct.
type registry struct {
	mu sync.Mutex
	//qmc:guarded(mu)
	entries []string
	count   int //qmc:guarded(mu)
}

// broken claims //qmc:guarded(nope) against a mutex that does not exist.
type broken struct {
	mu sync.Mutex
	//qmc:guarded(nope)
	data int // want "names no sync.Mutex/sync.RWMutex field"
}

// Add locks the owning mutex: clean.
func (r *registry) Add(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, s)
	r.count++
}

// lockedHelper documents the caller-holds contract: clean.
//
//qmc:locked(mu)
func (r *registry) lockedHelper() int {
	return r.count
}

// Racy touches guarded state with no lock and no contract.
func (r *registry) Racy() int {
	return r.count // want "neither locks it nor declares"
}

// racyCrossFunc is racy even from a non-method helper.
func racyCrossFunc(r *registry) []string {
	return r.entries // want "neither locks it nor declares"
}

// crossStruct holds r's lock explicitly from outside: clean.
type wrapper struct{ r *registry }

func (w *wrapper) snapshot() int {
	w.r.mu.Lock()
	defer w.r.mu.Unlock()
	return w.r.count
}

// construction through a composite literal is not a shared access.
func fresh() *registry {
	return &registry{count: 1}
}

// Package fixture exercises the dimcheck analyzer: provable constant
// shape mismatches at blas/mat call sites are findings; symbolic or
// reassigned shapes stay silent.
package fixture

import (
	"questgo/internal/blas"
	"questgo/internal/mat"
)

func bad() {
	a := mat.New(4, 3)
	b := mat.New(5, 6)
	c := mat.New(4, 6)
	blas.Gemm(false, false, 1, a, b, 0, c) // want "inner dimensions disagree"
}

func good() {
	a := mat.New(4, 3)
	b := mat.New(3, 6)
	c := mat.New(4, 6)
	blas.Gemm(false, false, 1, a, b, 0, c)
}

func transFlagsGood() {
	a := mat.New(3, 4) // op(A) = A^T is 4x3
	b := mat.New(3, 6)
	c := mat.New(4, 6)
	blas.Gemm(true, false, 1, a, b, 0, c)
}

func badOutput() {
	a := mat.New(4, 3)
	b := mat.New(3, 6)
	c := mat.New(5, 6)
	blas.Gemm(false, false, 1, a, b, 0, c) // want "output rows disagree"
}

func reassignedSilent(n int) {
	a := mat.New(4, 3)
	a = mat.New(n, n) // shape no longer provable
	b := mat.New(5, 6)
	c := mat.New(4, 6)
	blas.Gemm(false, false, 1, a, b, 0, c)
}

func transposeBad() {
	src := mat.GetScratch(3, 5)
	dst := mat.GetScratch(3, 5)
	src.TransposeInto(dst) // want "need 5x3"
	mat.PutScratch(src)
	mat.PutScratch(dst)
}

func copyBad() {
	src := mat.New(3, 5)
	dst := mat.New(5, 3)
	dst.CopyFrom(src) // want "CopyFrom source is 3x5"
}

func badOutputCols() {
	a := mat.New(4, 3)
	b := mat.New(3, 7)
	c := mat.New(4, 6)
	blas.Gemm(false, false, 1, a, b, 0, c) // want "output cols disagree"
}

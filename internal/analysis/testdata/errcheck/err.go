//qmclint:path questgo/cmd/fixture

// Package main exercises the errcheck analyzer: cmd/* must not drop
// returned errors; fmt printing and Builder writes are exempt.
package main

import (
	"fmt"
	"os"
	"strings"
)

func run() error { return nil }

func main() {
	run()             // want "discarded"
	fmt.Println("ok") // fmt terminal printing: exempt
	var sb strings.Builder
	sb.WriteString("x") // Builder writes never fail: exempt
	f, err := os.Open("fixture")
	if err != nil {
		return
	}
	defer f.Close() // want "discarded"
	_ = run()       // explicit drop: fine
	fmt.Println(sb.String())
}

// Package fixture exercises the rngdiscipline analyzer: math/rand is
// forbidden outside questgo/internal/rng.
package fixture

import "math/rand" // want "outside internal/rng breaks deterministic trajectories"

func roll() float64 { return rand.Float64() }

//qmclint:path questgo/internal/greens

// Package fixture exercises the hotalloc analyzer: allocations in
// //qmc:hot functions are findings, cold functions and panic arguments
// are not, and //qmc:allow suppresses with a justification.
package fixture

import "fmt"

//qmc:hot
func hotBad(n int) []float64 {
	buf := make([]float64, n) // want "calls make"
	fmt.Println(n)            // want "calls fmt.Println"
	f := func() {}            // want "creates a closure"
	f()
	lit := []float64{1, 2} // want "slice literal"
	_ = lit
	return buf
}

func coldOK(n int) []float64 {
	return make([]float64, n) // cold function: no finding
}

//qmc:hot
func hotAllowed(n int) []float64 {
	//qmc:allow hotalloc -- fixture: result escapes to the caller
	return make([]float64, n)
}

//qmc:hot
func hotUnjustifiedAllow(n int) []float64 {
	//qmc:allow hotalloc
	return make([]float64, n) // want "calls make"
}

//qmc:hot
func hotPanicOK(n int) {
	if n < 0 {
		panic(fmt.Sprintf("fixture: negative dimension %d", n)) // failure path: exempt
	}
}

//qmc:hot
func hotMapAndGo(done chan struct{}) map[int]int {
	m := map[int]int{} // want "builds a map literal"
	go func() {        // want "spawns a goroutine" "creates a closure"
		<-done
	}()
	return m
}

type emitter struct{}

func (emitter) fire() {}

//qmc:hot
func hotMethodValue(e emitter) func() {
	h := e.fire // want "takes a method value of fire"
	return h
}

//qmclint:path questgo/internal/blas

// Package fixture exercises the nakedpanic analyzer: kernel shape panics
// must carry the offending dimensions.
package fixture

import "fmt"

func bad(n int) {
	if n < 0 {
		panic("blas: dimension mismatch") // want "carries no dimensions"
	}
}

func good(n, m int) {
	if n != m {
		panic(fmt.Sprintf("blas: dimension mismatch: %d vs %d", n, m))
	}
}

func unrelatedOK() {
	panic("not a shape complaint")
}

//qmclint:path questgo/internal/service

// Package service exercises the errcheck analyzer's service-layer scope:
// internal/service persists shard checkpoints and writes HTTP documents, so
// dropped errors there are as load-bearing as in cmd/*.
package service

import "os"

func save(path string) error { return os.WriteFile(path, nil, 0o644) }

func cleanup(path string) {
	save(path)            // want "discarded"
	os.Remove(path)       // want "discarded"
	_ = os.Remove(path)   // explicit drop: fine
	go save(path)         // want "discarded"
	defer os.Remove(path) // want "discarded"
}

package fixture

import (
	"context"
	"errors"
	"time"
)

// leak: the cancel func is never deferred, called, or stored.
func leakPlain() context.Context {
	ctx, cancel := context.WithCancel(context.Background()) // want "never deferred, called, or stored"
	_ = cancel
	return ctx
}

// discard: binding the cancel func to _ can never be undone.
func discard() context.Context {
	ctx, _ := context.WithTimeout(context.Background(), time.Second) // want "discards its cancel func"
	return ctx
}

// misclassify: ctx.Err() after cancel() is non-nil unconditionally.
func misclassify(run func(context.Context) error) bool {
	ctx, cancel := context.WithCancel(context.Background())
	err := run(ctx)
	cancel()
	interrupted := ctx.Err() != nil && err != nil // want "non-nil unconditionally"
	return interrupted
}

// misclassifyIs: errors.Is(err, context.Canceled) after cancel().
func misclassifyIs(run func(context.Context) error) bool {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	err := run(ctx)
	cancel()
	return errors.Is(err, context.Canceled) // want "move the classification above"
}

// deferred is the canonical clean shape: classification may follow a
// *deferred* cancel freely.
func deferred(run func(context.Context) error) bool {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := run(ctx)
	return ctx.Err() != nil && errors.Is(err, context.Canceled)
}

// deferredLit: cancel inside a deferred closure counts as deferred.
func deferredLit(run func(context.Context) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
	}()
	return run(ctx)
}

// classifyFirst is the PR 9 fix shape: capture before canceling.
func classifyFirst(run func(context.Context) error) bool {
	ctx, cancel := context.WithCancel(context.Background())
	err := run(ctx)
	interrupted := ctx.Err() != nil && errors.Is(err, context.Canceled)
	cancel()
	return interrupted
}

// holder stores a cancel func for another goroutine to call.
type holder struct {
	stop context.CancelFunc
}

// escapes: storing the cancel func hands ownership elsewhere — clean.
func escapes(h *holder) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	h.stop = cancel
	return ctx
}

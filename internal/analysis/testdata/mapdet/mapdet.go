package fixture

import "sort"

// encode feeds wire output: ranging the map makes the document order
// random per process.
func encode(params map[string]float64) []string {
	var out []string
	for k, v := range params { // want "iteration order is randomized"
		out = append(out, k+":"+itoa(int(v)))
		emit(k)
	}
	return out
}

// sum looks harmless but float addition is order-sensitive.
func sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "iteration order is randomized"
		total += v
	}
	return total
}

// copyMap is the recognized map-to-map idiom: order unobservable.
func copyMap(src map[string]float64) map[string]float64 {
	dst := make(map[string]float64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// sortedKeys is the recognized collect-then-sort idiom.
func sortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		if m[k] != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// slices and arrays range deterministically; no finding.
func overSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func emit(string) {}

func itoa(int) string { return "" }

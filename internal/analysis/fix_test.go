package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyzeTempFile writes src to its own temp package dir, type-checks it and
// runs one analyzer — the round trip `qmclint -fix` performs per file.
func analyzeTempFile(t *testing.T, a *Analyzer, src string) (string, []Diagnostic) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "tmp.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := typeCheck(fset, importer.ForCompiler(fset, "source", nil), "fixture/fixtmp", dir, []*ast.File{f})
	diags, err := RunAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return path, diags
}

const leakSrc = `package fixtmp

import "context"

func leak() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	return ctx
}
`

// TestApplyFixesInsertDefer drives the ctxflow leak fix end to end: the
// rewritten file gains the defer and re-analyzes clean.
func TestApplyFixesInsertDefer(t *testing.T) {
	path, diags := analyzeTempFile(t, CtxFlow, leakSrc)
	if len(diags) != 1 || diags[0].Fix == nil {
		t.Fatalf("want 1 fixable diagnostic, got %v", diags)
	}
	changed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(changed) != 1 || changed[0] != path {
		t.Fatalf("changed = %v, want [%s]", changed, path)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !strings.Contains(string(out), "defer cancel()") {
		t.Fatalf("fixed file lacks defer cancel():\n%s", out)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("reparse fixed file: %v", err)
	}
	pkg := typeCheck(fset, importer.ForCompiler(fset, "source", nil), "fixture/fixtmp", filepath.Dir(path), []*ast.File{f})
	again, err := RunAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{CtxFlow})
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if len(again) != 0 {
		t.Fatalf("fixed file still has diagnostics: %v", again)
	}
}

const misclassifySrc = `package fixtmp

import (
	"context"
	"errors"
)

func classify(err error) bool {
	ctx, cancel := context.WithCancel(context.Background())
	_ = ctx
	cancel()
	interrupted := errors.Is(err, context.Canceled)
	return interrupted
}
`

// TestApplyFixesSwapClassification drives the ctxflow hoist fix: the
// classification moves above cancel() and the file re-analyzes clean.
func TestApplyFixesSwapClassification(t *testing.T) {
	path, diags := analyzeTempFile(t, CtxFlow, misclassifySrc)
	if len(diags) != 1 || diags[0].Fix == nil {
		t.Fatalf("want 1 fixable diagnostic, got %v", diags)
	}
	if _, err := ApplyFixes(diags); err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	ci := strings.Index(string(out), "cancel()\n")
	ii := strings.Index(string(out), "interrupted :=")
	if ci < 0 || ii < 0 || ii > ci {
		t.Fatalf("classification was not hoisted above cancel():\n%s", out)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("reparse fixed file: %v", err)
	}
	pkg := typeCheck(fset, importer.ForCompiler(fset, "source", nil), "fixture/fixtmp", filepath.Dir(path), []*ast.File{f})
	again, err := RunAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{CtxFlow})
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if len(again) != 0 {
		t.Fatalf("fixed file still has diagnostics: %v", again)
	}
}

const cleanSrc = `package fixtmp

import "context"

func clean(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}
`

// TestApplyFixesNoOpOnCleanTree is the -fix contract on an already-clean
// package: zero diagnostics, zero rewritten files, untouched bytes.
func TestApplyFixesNoOpOnCleanTree(t *testing.T) {
	path, diags := analyzeTempFile(t, CtxFlow, cleanSrc)
	if len(diags) != 0 {
		t.Fatalf("clean source produced diagnostics: %v", diags)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	changed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(changed) != 0 {
		t.Fatalf("no-op run rewrote files: %v", changed)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(before) != string(after) {
		t.Fatal("file content changed on a clean tree")
	}
}

// TestApplyFixesRejectsOverlap: two fixes touching the same byte range must
// refuse to apply rather than splice garbage.
func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tmp.go")
	if err := os.WriteFile(path, []byte("package fixtmp\n\nvar a, b = 1, 2\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	diags := []Diagnostic{
		{Fix: &Fix{Kind: FixSwap, Path: path, AStart: 20, AEnd: 21, BStart: 27, BEnd: 28}},
		{Fix: &Fix{Kind: FixInsert, Path: path, Off: 24, Text: "x"}},
	}
	if _, err := ApplyFixes(diags); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("want overlapping-fixes error, got %v", err)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleak diagnostic formats.
const (
	msgGoLeakNoDrain = "goroutine has no visible drain path (no select, channel receive, channel range, or WaitGroup Done); wire it to a done/ctx channel or waive: //qmc:allow goleak -- <why it terminates>"

	msgGoLeakOpaque = "goroutine body is not visible from this package, so its termination cannot be checked; waive with //qmc:allow goleak -- <why it terminates>"
)

// GoLeak requires every go statement in non-test code to show a drain
// path: the spawned body (or a same-package callee it immediately invokes)
// must select, receive from or range over a channel, or call a WaitGroup's
// Done — the three shapes by which the repo's goroutines are collected.
// Everything else is a potential leak: a daemon accumulating one stuck
// goroutine per job eventually runs the box out of memory long after the
// code that spawned it has "worked" for months.
//
// The check is shallow by design (one level of same-package callee
// resolution, no path analysis); a goroutine that provably terminates for
// reasons the analyzer cannot see carries a justified waiver instead.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement needs a visible drain path (select, channel receive/range, WaitGroup Done) or a justified waiver",
	Wave: 2,
	Messages: []string{
		msgGoLeakNoDrain,
		msgGoLeakOpaque,
	},
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	// Index this package's function declarations so `go worker()` can be
	// resolved to its body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, decls, g.Call)
			switch {
			case body == nil:
				pass.Reportf(g.Pos(), msgGoLeakOpaque)
			case !hasDrainPath(pass, decls, body, 1):
				pass.Reportf(g.Pos(), msgGoLeakNoDrain)
			}
			return true
		})
	}
	return nil
}

// goBody resolves the statement body a go statement will run: a function
// literal's own body, or the declaration of a same-package named function
// or method. nil when the callee is external or dynamic.
func goBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[objectOf(pass, fun)]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[objectOf(pass, fun.Sel)]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasDrainPath reports whether the body contains one of the recognized
// collection shapes. It follows same-package calls one level deep so
// `go func() { defer wg.Done(); s.worker() }()` and `go worker()` both
// resolve.
func hasDrainPath(pass *Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				// wg.Done() (ctx.Done() is a receive and matches above).
				found = true
				return false
			}
			if depth > 0 {
				var callee types.Object
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					callee = objectOf(pass, fun)
				case *ast.SelectorExpr:
					callee = objectOf(pass, fun.Sel)
				}
				if fd := decls[callee]; fd != nil && hasDrainPath(pass, decls, fd.Body, depth-1) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isChanType(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

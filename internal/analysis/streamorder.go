package analysis

import (
	"go/ast"
	"go/token"
)

// StreamOrder enforces the stream-execution discipline of internal/gpu:
// the Device's modeled-clock state (busyNS, xferBusyNS, launchNS, realNS
// and the per-stream clockNS) may be advanced only from *Stream or *Graph
// methods — the layer that knows the event ordering — or zeroed by
// (*Device).Reset. A kernel that bumps the clock fields directly bypasses
// the stream dependency model: its time is charged with no stream to order
// it against, so overlap accounting and the launch-overhead ledger silently
// drift from the executed schedule. Reads (the accessors' atomic.Load) are
// fine; only writes are ordered.
// streamorder diagnostic formats.
const (
	msgStreamWrite       = "write to device clock field %s outside a Stream/Graph method bypasses stream-ordered timing; charge through a Stream"
	msgStreamAtomicWrite = "atomic write to device clock field %s outside a Stream/Graph method bypasses stream-ordered timing; charge through a Stream"
)

var StreamOrder = &Analyzer{
	Name: "streamorder",
	Doc:  "Device clock state must be written through a Stream or Graph",
	Wave: 1,
	Messages: []string{
		msgStreamWrite,
		msgStreamAtomicWrite,
	},
	Run: runStreamOrder,
}

// streamClockFields is the device/stream modeled-clock state guarded by the
// stream layer.
var streamClockFields = map[string]bool{
	"busyNS":     true,
	"xferBusyNS": true,
	"launchNS":   true,
	"realNS":     true,
	"clockNS":    true,
}

// atomicWriters are the sync/atomic entry points that mutate their operand.
var atomicWriters = map[string]bool{
	"AddInt64":             true,
	"StoreInt64":           true,
	"SwapInt64":            true,
	"CompareAndSwapInt64":  true,
	"AddInt32":             true,
	"StoreInt32":           true,
	"CompareAndSwapInt32":  true,
	"CompareAndSwapUint64": true,
}

func runStreamOrder(pass *Pass) error {
	if pass.PkgPath != pkgGPU {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || streamOrderExempt(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if name, ok := clockFieldSelector(lhs); ok {
							pass.Reportf(lhs.Pos(), msgStreamWrite, name)
						}
					}
				case *ast.IncDecStmt:
					if name, ok := clockFieldSelector(n.X); ok {
						pass.Reportf(n.Pos(), msgStreamWrite, name)
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || !atomicWriters[sel.Sel.Name] {
						return true
					}
					if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "atomic" {
						return true
					}
					if len(n.Args) == 0 {
						return true
					}
					if addr, ok := n.Args[0].(*ast.UnaryExpr); ok && addr.Op == token.AND {
						if name, ok := clockFieldSelector(addr.X); ok {
							pass.Reportf(n.Pos(), msgStreamAtomicWrite, name)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// streamOrderExempt reports whether fd is allowed to write clock state: a
// method on *Stream or *Graph, or the (*Device).Reset re-baseline.
func streamOrderExempt(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "Stream", "Graph":
		return true
	case "Device":
		return fd.Name.Name == "Reset"
	}
	return false
}

// clockFieldSelector reports whether e is a selector of a guarded clock
// field (x.busyNS, s.dev.clockNS, ...).
func clockFieldSelector(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !streamClockFields[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

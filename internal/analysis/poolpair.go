package analysis

import (
	"go/ast"
)

// PoolPair enforces the scratch-pool contract of internal/mat: every
// matrix obtained from mat.GetScratch inside a function must be released
// with mat.PutScratch in that same function (directly or in a defer), and
// scratch must never escape through a return — escaping buffers belong to
// mat.New. A Get with no Put leaks the pool's cache warmth; an escaping
// Get poisons a caller that holds the matrix across someone else's Put.
//
// The check is per-function and name-based: it does not track scratch
// handed to other functions for release (annotate such hand-offs with
// //qmc:allow poolpair and a justification).
// poolpair diagnostic formats.
const (
	msgPoolUnbound = "mat.GetScratch result is not bound to a variable, so it can never be returned with PutScratch"
	msgPoolEscape  = "scratch matrix %s escapes via return; allocate escaping buffers with mat.New"
	msgPoolNoPut   = "scratch matrix %s from mat.GetScratch has no mat.PutScratch in this function"
)

var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "every mat.GetScratch needs a mat.PutScratch on the same function's paths",
	Wave: 1,
	Messages: []string{
		msgPoolUnbound,
		msgPoolEscape,
		msgPoolNoPut,
	},
	Run: runPoolPair,
}

func runPoolPair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolPairs(pass, f, fd)
		}
	}
	return nil
}

func checkPoolPairs(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	type scratch struct {
		get *ast.CallExpr
		put bool
	}
	gets := make(map[string]*scratch) // var name -> state
	var returned []string

	isMatCall := func(call *ast.CallExpr, name string) bool {
		if path, sel := pass.pkgSelector(file, call.Fun); path == pkgMat && sel == name {
			return true
		}
		// Inside package mat itself the calls are unqualified.
		if id, ok := call.Fun.(*ast.Ident); ok && pass.PkgPath == pkgMat && id.Name == name {
			return true
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isMatCall(call, "GetScratch") || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					gets[id.Name] = &scratch{get: call}
				} else {
					pass.Reportf(call.Pos(), msgPoolUnbound)
				}
			}
		case *ast.CallExpr:
			if isMatCall(n, "PutScratch") && len(n.Args) == 1 {
				if id, ok := n.Args[0].(*ast.Ident); ok {
					if s := gets[id.Name]; s != nil {
						s.put = true
					}
				}
			}
			// A bare Get used directly as an argument or statement leaks.
			if isMatCall(n, "GetScratch") {
				if !isAssignedCall(fd.Body, n) {
					pass.Reportf(n.Pos(), msgPoolUnbound)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				collectIdents(res, &returned)
			}
		}
		return true
	})

	for name, s := range gets {
		for _, r := range returned {
			if r == name {
				pass.Reportf(s.get.Pos(), msgPoolEscape, name)
			}
		}
		if !s.put {
			pass.Reportf(s.get.Pos(), msgPoolNoPut, name)
		}
	}
}

// isAssignedCall reports whether call is the direct RHS of an assignment
// inside body.
func isAssignedCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				if rhs == call {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// collectIdents appends every identifier appearing in e to out.
func collectIdents(e ast.Expr, out *[]string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			*out = append(*out, id.Name)
		}
		return true
	})
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags dropped errors in the cmd/* front ends and the service
// layer: an expression statement whose call returns an error (alone or in a
// tuple) silently discards it. The commands are where JSON benchmark
// documents, figures, checkpoints and profiles hit the filesystem, and
// internal/service is where job checkpoints and HTTP documents do — exactly
// the writes whose failures must reach the exit code (or the job error) to
// be trustworthy. fmt's terminal printing family is exempt (its error is
// about a closed stdout and is conventionally ignored).
// errcheck diagnostic format.
const msgErrDropped = "result of %s includes an error that is discarded; check it (or assign to _ to make the drop explicit)"

var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "cmd/* and internal/service must not drop returned errors",
	Wave: 1,
	Messages: []string{
		msgErrDropped,
	},
	Run: runErrCheck,
}

// errCheckedPkgs are the package-path prefixes ErrCheck applies to.
var errCheckedPkgs = []string{
	"questgo/cmd/",
	"questgo/internal/service",
}

func runErrCheck(pass *Pass) error {
	checked := false
	for _, prefix := range errCheckedPkgs {
		if strings.HasPrefix(pass.PkgPath, prefix) {
			checked = true
			break
		}
	}
	if !checked {
		return nil
	}
	if pass.Info == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if path, _ := pass.pkgSelector(f, call.Fun); path == "fmt" {
				return true
			}
			if builderWrite(pass, call) {
				return true
			}
			if returnsError(pass, call) {
				pass.Reportf(call.Pos(), msgErrDropped, callName(call))
			}
			return true
		})
	}
	return nil
}

// builderWrite reports whether call is a method on strings.Builder or
// bytes.Buffer, whose Write* methods are documented to always return a nil
// error (they exist only to satisfy io interfaces).
func builderWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErr(t)
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

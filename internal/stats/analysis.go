package stats

import (
	"fmt"
	"math"
)

// This file holds the post-processing analyses a DQMC study needs beyond
// raw error bars: integrated autocorrelation times (to choose bin sizes
// and sweep counts), weighted least squares, and the two extrapolations
// the paper's methodology relies on — Trotter (dtau^2 -> 0) and finite
// size (the Figure 7 discussion extrapolates the long-distance spin
// correlation in 1/L to decide whether bulk order survives).

// IntegratedAutocorrelationTime estimates tau_int of a series by summing
// the normalized autocorrelation function with the standard self-
// consistent window (sum until lag > window*tau). Returns 0.5 for white
// noise. Sweep-to-sweep observables with tau_int >> 1 need proportionally
// more sweeps (or bigger bins) for honest error bars.
func IntegratedAutocorrelationTime(xs []float64) float64 {
	n := len(xs)
	if n < 4 {
		return 0.5
	}
	mean := Mean(xs)
	var c0 float64
	for _, x := range xs {
		d := x - mean
		c0 += d * d
	}
	c0 /= float64(n)
	if c0 == 0 {
		return 0.5
	}
	tau := 0.5
	const window = 6.0
	for lag := 1; lag < n/2; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		c /= float64(n - lag)
		rho := c / c0
		tau += rho
		if float64(lag) > window*tau {
			break
		}
	}
	if tau < 0.5 {
		tau = 0.5
	}
	return tau
}

// FitResult holds a weighted linear least-squares fit y = A + B*x.
type FitResult struct {
	A, B       float64 // intercept and slope
	AErr, BErr float64 // standard errors
	Chi2       float64 // weighted residual sum of squares
	NDF        int     // degrees of freedom
}

// LinearFit performs a weighted least-squares line fit. Errors sigma may
// be nil (unit weights). At least two distinct x values are required.
func LinearFit(x, y, sigma []float64) (*FitResult, error) {
	n := len(x)
	if len(y) != n || (sigma != nil && len(sigma) != n) {
		return nil, fmt.Errorf("stats: LinearFit length mismatch")
	}
	if n < 2 {
		return nil, fmt.Errorf("stats: LinearFit needs at least 2 points")
	}
	var s, sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		w := 1.0
		if sigma != nil {
			if sigma[i] <= 0 {
				return nil, fmt.Errorf("stats: non-positive error at point %d", i)
			}
			w = 1 / (sigma[i] * sigma[i])
		}
		s += w
		sx += w * x[i]
		sy += w * y[i]
		sxx += w * x[i] * x[i]
		sxy += w * x[i] * y[i]
	}
	det := s*sxx - sx*sx
	if det == 0 {
		return nil, fmt.Errorf("stats: degenerate x values")
	}
	fit := &FitResult{
		A:   (sxx*sy - sx*sxy) / det,
		B:   (s*sxy - sx*sy) / det,
		NDF: n - 2,
	}
	fit.AErr = math.Sqrt(sxx / det)
	fit.BErr = math.Sqrt(s / det)
	for i := 0; i < n; i++ {
		w := 1.0
		if sigma != nil {
			w = 1 / (sigma[i] * sigma[i])
		}
		r := y[i] - fit.A - fit.B*x[i]
		fit.Chi2 += w * r * r
	}
	if sigma == nil && fit.NDF > 0 {
		// Scale parameter errors by the residual variance when no input
		// errors were given.
		scale := math.Sqrt(fit.Chi2 / float64(fit.NDF))
		fit.AErr *= scale
		fit.BErr *= scale
	}
	return fit, nil
}

// TrotterExtrapolate fits observable values measured at several Trotter
// steps to y = y0 + c*dtau^2 and returns the dtau -> 0 limit with its
// error — the standard way to remove the systematic discretization error.
func TrotterExtrapolate(dtaus, values, errors []float64) (y0, y0Err float64, err error) {
	x := make([]float64, len(dtaus))
	for i, d := range dtaus {
		x[i] = d * d
	}
	fit, ferr := LinearFit(x, values, errors)
	if ferr != nil {
		return 0, 0, ferr
	}
	return fit.A, fit.AErr, nil
}

// FiniteSizeExtrapolate fits values measured on lattices of linear size L
// to y = y_inf + c/L (the leading spin-wave correction for the staggered
// correlations the paper's Figure 7 discussion extrapolates) and returns
// the bulk limit.
func FiniteSizeExtrapolate(ls []int, values, errors []float64) (yInf, yInfErr float64, err error) {
	x := make([]float64, len(ls))
	for i, l := range ls {
		if l <= 0 {
			return 0, 0, fmt.Errorf("stats: non-positive lattice size")
		}
		x[i] = 1 / float64(l)
	}
	fit, ferr := LinearFit(x, values, errors)
	if ferr != nil {
		return 0, 0, ferr
	}
	return fit.A, fit.AErr, nil
}

// EffectiveSamples returns the equivalent number of independent samples,
// n / (2 tau_int).
func EffectiveSamples(xs []float64) float64 {
	tau := IntegratedAutocorrelationTime(xs)
	return float64(len(xs)) / (2 * tau)
}

// Package stats provides the Monte Carlo statistics used by the simulation
// driver and the benchmark harness: means with autocorrelation-aware binned
// error bars, jackknife resampling, and the box-and-whisker quartile
// summary of the paper's Figure 2.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdErr returns the naive standard error of the mean sqrt(var/n). For
// correlated Monte Carlo samples use BinnedErr instead.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return math.Sqrt(Variance(xs) / float64(len(xs)))
}

// Rebin averages consecutive samples into len(xs)/binSize bins, dropping a
// possible remainder. Binning absorbs the autocorrelation between
// successive sweeps so the bin means are approximately independent.
func Rebin(xs []float64, binSize int) []float64 {
	if binSize < 1 {
		binSize = 1
	}
	nb := len(xs) / binSize
	out := make([]float64, nb)
	for b := 0; b < nb; b++ {
		out[b] = Mean(xs[b*binSize : (b+1)*binSize])
	}
	return out
}

// BinnedErr estimates the standard error of the mean using bins of the
// given size.
func BinnedErr(xs []float64, binSize int) float64 {
	return StdErr(Rebin(xs, binSize))
}

// AutoBinnedErr picks the bin size as sqrt(n) (a standard robust default)
// and returns the binned error.
func AutoBinnedErr(xs []float64) float64 {
	if len(xs) < 4 {
		return StdErr(xs)
	}
	return BinnedErr(xs, int(math.Sqrt(float64(len(xs)))))
}

// Jackknife returns the jackknife estimate of the mean and standard error
// of f applied to leave-one-out samples; with f = Mean it reproduces the
// plain mean and error, but it also propagates through nonlinear
// combinations (ratios of signed averages, etc.).
func Jackknife(xs []float64, f func([]float64) float64) (mean, err float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return f(xs), 0
	}
	full := f(xs)
	loo := make([]float64, n)
	buf := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		buf = append(buf, xs[:i]...)
		buf = append(buf, xs[i+1:]...)
		loo[i] = f(buf)
	}
	m := Mean(loo)
	var s float64
	for _, v := range loo {
		d := v - m
		s += d * d
	}
	err = math.Sqrt(float64(n-1) / float64(n) * s)
	// Bias-corrected estimate.
	mean = float64(n)*full - float64(n-1)*m
	return mean, err
}

// FiveNum is the five-number summary behind a box-and-whisker plot.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary computes the five-number summary of xs (which is not modified).
// It panics on an empty slice.
func Summary(xs []float64) FiveNum {
	if len(xs) == 0 {
		panic("stats: Summary of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// quantileSorted linearly interpolates the q-quantile of sorted data.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// VectorAccumulator accumulates vector-valued samples (e.g. C_zz(r) maps or
// <n_k> arrays, one per sweep) and reports element-wise means and errors.
type VectorAccumulator struct {
	n       int
	samples [][]float64
}

// Push records one sample; the slice is copied.
func (a *VectorAccumulator) Push(v []float64) {
	if a.n == 0 {
		a.n = len(v)
	}
	if len(v) != a.n {
		panic("stats: inconsistent sample length")
	}
	a.samples = append(a.samples, append([]float64(nil), v...))
}

// Count returns the number of samples pushed.
func (a *VectorAccumulator) Count() int { return len(a.samples) }

// MeanVec returns the element-wise mean.
func (a *VectorAccumulator) MeanVec() []float64 {
	out := make([]float64, a.n)
	if len(a.samples) == 0 {
		return out
	}
	for _, s := range a.samples {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(a.samples))
	}
	return out
}

// ErrVec returns element-wise binned standard errors.
func (a *VectorAccumulator) ErrVec() []float64 {
	out := make([]float64, a.n)
	col := make([]float64, len(a.samples))
	for i := 0; i < a.n; i++ {
		for s, v := range a.samples {
			col[s] = v[i]
		}
		out[i] = AutoBinnedErr(col)
	}
	return out
}

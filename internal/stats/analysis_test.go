package stats

import (
	"math"
	"testing"

	"questgo/internal/rng"
)

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	tau := IntegratedAutocorrelationTime(xs)
	if tau < 0.4 || tau > 0.8 {
		t.Fatalf("white noise tau_int = %v, want ~0.5", tau)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient a has tau_int = (1+a)/(2(1-a)).
	r := rng.New(2)
	a := 0.9
	xs := make([]float64, 100000)
	v := 0.0
	for i := range xs {
		v = a*v + r.NormFloat64()
		xs[i] = v
	}
	tau := IntegratedAutocorrelationTime(xs)
	want := (1 + a) / (2 * (1 - a)) // = 9.5
	if math.Abs(tau-want) > 0.3*want {
		t.Fatalf("AR(1) tau_int = %v, want ~%v", tau, want)
	}
	eff := EffectiveSamples(xs)
	if eff > float64(len(xs))/10 {
		t.Fatalf("effective samples %v too large for correlated data", eff)
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if IntegratedAutocorrelationTime([]float64{1, 2}) != 0.5 {
		t.Fatal("short series should default to 0.5")
	}
	if IntegratedAutocorrelationTime([]float64{3, 3, 3, 3, 3, 3}) != 0.5 {
		t.Fatal("constant series should default to 0.5")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := LinearFit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-1) > 1e-12 || math.Abs(fit.B-2) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.Chi2 > 1e-20 {
		t.Fatalf("exact line should have zero chi2: %v", fit.Chi2)
	}
}

func TestLinearFitWeighted(t *testing.T) {
	// A point with a huge error bar should barely influence the fit.
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 100}
	sigma := []float64{0.1, 0.1, 0.1, 1000}
	fit, err := LinearFit(x, y, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-1) > 0.01 || math.Abs(fit.B-2) > 0.01 {
		t.Fatalf("weighted fit pulled by outlier: %+v", fit)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}, nil); err == nil {
		t.Fatal("single point should fail")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}, nil); err == nil {
		t.Fatal("degenerate x should fail")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("negative sigma should fail")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}, nil); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestTrotterExtrapolate(t *testing.T) {
	// Synthetic y = 0.120 + 0.5*dtau^2.
	dtaus := []float64{0.05, 0.1, 0.2}
	values := make([]float64, 3)
	errors := []float64{0.001, 0.001, 0.001}
	for i, d := range dtaus {
		values[i] = 0.120 + 0.5*d*d
	}
	y0, y0err, err := TrotterExtrapolate(dtaus, values, errors)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y0-0.120) > 1e-10 {
		t.Fatalf("Trotter limit = %v want 0.120", y0)
	}
	if y0err <= 0 {
		t.Fatal("error bar must be positive")
	}
}

func TestFiniteSizeExtrapolate(t *testing.T) {
	// Synthetic y = 0.3 + 1.2/L.
	ls := []int{4, 8, 16}
	values := make([]float64, 3)
	for i, l := range ls {
		values[i] = 0.3 + 1.2/float64(l)
	}
	yInf, _, err := FiniteSizeExtrapolate(ls, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(yInf-0.3) > 1e-10 {
		t.Fatalf("bulk limit = %v want 0.3", yInf)
	}
	if _, _, err := FiniteSizeExtrapolate([]int{0, 4}, []float64{1, 2}, nil); err == nil {
		t.Fatal("L = 0 should fail")
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"questgo/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	// Unbiased variance of {1,2,3,4} = 5/3.
	if math.Abs(Variance(xs)-5.0/3) > 1e-14 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestStdErr(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	want := math.Sqrt(5.0 / 3 / 4)
	if math.Abs(StdErr(xs)-want) > 1e-14 {
		t.Fatalf("StdErr = %v want %v", StdErr(xs), want)
	}
}

func TestRebin(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9}
	got := Rebin(xs, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("Rebin = %v", got)
	}
	if len(Rebin(xs, 10)) != 0 {
		t.Fatal("oversized bin should give empty result")
	}
}

func TestBinnedErrCorrelatedData(t *testing.T) {
	// Strongly autocorrelated series: binned error must exceed naive.
	r := rng.New(1)
	n := 4096
	xs := make([]float64, n)
	v := 0.0
	for i := range xs {
		v = 0.95*v + r.NormFloat64()
		xs[i] = v
	}
	naive := StdErr(xs)
	binned := BinnedErr(xs, 64)
	if binned < 2*naive {
		t.Fatalf("binned error %v should be much larger than naive %v", binned, naive)
	}
}

func TestJackknifeMatchesMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	m, e := Jackknife(xs, Mean)
	if math.Abs(m-3.5) > 1e-13 {
		t.Fatalf("jackknife mean = %v", m)
	}
	if math.Abs(e-StdErr(xs)) > 1e-13 {
		t.Fatalf("jackknife err = %v, StdErr = %v", e, StdErr(xs))
	}
}

func TestJackknifeNonlinear(t *testing.T) {
	// Ratio estimator <x>/<x^2>: jackknife should run without blowing up
	// and land near the plain ratio for well-behaved data.
	r := rng.New(2)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 5 + r.NormFloat64()
	}
	f := func(v []float64) float64 {
		m := Mean(v)
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return m / (s / float64(len(v)))
	}
	m, e := Jackknife(xs, f)
	if e <= 0 || math.Abs(m-f(xs)) > 5*e+0.01 {
		t.Fatalf("jackknife ratio %v +- %v vs direct %v", m, e, f(xs))
	}
}

func TestSummaryQuartiles(t *testing.T) {
	s := Summary([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarySingle(t *testing.T) {
	s := Summary([]float64{7})
	if s.Min != 7 || s.Q1 != 7 || s.Median != 7 || s.Q3 != 7 || s.Max != 7 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummaryDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summary(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summary mutated its input")
	}
}

func TestVectorAccumulator(t *testing.T) {
	var a VectorAccumulator
	a.Push([]float64{1, 10})
	a.Push([]float64{3, 30})
	if a.Count() != 2 {
		t.Fatalf("Count = %d", a.Count())
	}
	m := a.MeanVec()
	if m[0] != 2 || m[1] != 20 {
		t.Fatalf("MeanVec = %v", m)
	}
	e := a.ErrVec()
	if e[0] <= 0 || e[1] <= 0 {
		t.Fatalf("ErrVec = %v", e)
	}
}

func TestVectorAccumulatorCopies(t *testing.T) {
	var a VectorAccumulator
	v := []float64{1, 2}
	a.Push(v)
	v[0] = 99
	if a.MeanVec()[0] != 1 {
		t.Fatal("Push must copy its argument")
	}
}

// Property: quartiles are ordered min <= Q1 <= median <= Q3 <= max.
func TestQuickSummaryOrdered(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		s := Summary(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean of rebinned data equals mean of the kept prefix.
func TestQuickRebinPreservesMean(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0x7777)
		n := 4 + r.Intn(100)
		bin := 1 + r.Intn(4)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		kept := (n / bin) * bin
		if kept == 0 {
			return true
		}
		return math.Abs(Mean(Rebin(xs, bin))-Mean(xs[:kept])) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

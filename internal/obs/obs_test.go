package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestPhaseAndOpNames(t *testing.T) {
	wantPhases := []string{"wrap", "flush", "cluster", "refresh", "measure"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != wantPhases[p] {
			t.Fatalf("phase %d name %q, want %q", p, p.String(), wantPhases[p])
		}
	}
	seen := map[string]bool{}
	for o := Op(0); o < NumOps; o++ {
		n := o.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("op %d has bad/duplicate name %q", o, n)
		}
		seen[n] = true
	}
}

func TestCountersAndDeltas(t *testing.T) {
	c := New()
	Add(OpWraps, 3)
	AddGemm(4, 5, 6)
	d := c.OpDeltas()
	if d[OpWraps] != 3 {
		t.Fatalf("wraps delta %d, want 3", d[OpWraps])
	}
	if d[OpGemmCalls] != 1 || d[OpGemmFlops] != 2*4*5*6 {
		t.Fatalf("gemm delta calls=%d flops=%d", d[OpGemmCalls], d[OpGemmFlops])
	}
	// A second collector created now must not see those counts.
	c2 := New()
	if d2 := c2.OpDeltas(); d2[OpWraps] != 0 {
		t.Fatalf("fresh collector sees stale wraps delta %d", d2[OpWraps])
	}
}

func TestPhaseTiming(t *testing.T) {
	c := New()
	start := c.Begin()
	time.Sleep(2 * time.Millisecond)
	c.End(PhaseWrap, start)
	pd := c.PhaseDurations()
	if pd[PhaseWrap] < time.Millisecond {
		t.Fatalf("wrap phase %v, want >= 1ms", pd[PhaseWrap])
	}
	if pd.Sum() != pd[PhaseWrap] {
		t.Fatalf("sum %v != wrap %v", pd.Sum(), pd[PhaseWrap])
	}
}

func TestStabilitySamples(t *testing.T) {
	c := New()
	c.SampleWrapDrift(1e-9)
	c.SampleWrapDrift(1e-11)
	c.SampleStratResidual(1e-13)
	c.SampleStratResidual(3e-13)
	c.SampleUDTCond(5)
	c.SampleUDTCond(7)
	m := c.Metrics()
	s := m.Stability
	if s.MaxWrapDrift != 1e-9 || s.WrapDriftSamples != 2 {
		t.Fatalf("wrap drift %v/%d", s.MaxWrapDrift, s.WrapDriftSamples)
	}
	if s.MaxStratResidual != 3e-13 || s.StratResidualSamples != 2 {
		t.Fatalf("strat residual %v/%d", s.MaxStratResidual, s.StratResidualSamples)
	}
	if s.MeanStratResidual != 2e-13 {
		t.Fatalf("mean strat residual %v", s.MeanStratResidual)
	}
	if s.MaxUDTCondLog10 != 7 || s.MeanUDTCondLog10 != 6 || s.UDTCondSamples != 2 {
		t.Fatalf("cond %v/%v/%d", s.MaxUDTCondLog10, s.MeanUDTCondLog10, s.UDTCondSamples)
	}
}

// TestNonFiniteSamples is the regression test for the silent NaN/Inf drop:
// `v > max` is false for NaN, so a blown-up probe reading used to leave the
// maxima untouched and the run looked stable. Non-finite samples must be
// counted explicitly, set the sticky flag, stay out of the finite
// aggregates, and never leak NaN into the JSON document.
func TestNonFiniteSamples(t *testing.T) {
	c := New()
	c.SampleWrapDrift(1e-10)
	c.SampleWrapDrift(math.NaN())
	c.SampleStratResidual(math.Inf(1))
	c.SampleStratResidual(2e-12)
	c.SampleUDTCond(math.NaN())
	c.SampleUDTCond(math.Inf(-1))
	m := c.Metrics()
	s := m.Stability
	if !s.NonFiniteSeen {
		t.Fatal("NaN/Inf samples did not set the sticky non-finite flag")
	}
	if s.NonFiniteWrapDrift != 1 || s.NonFiniteStratResidual != 1 || s.NonFiniteUDTCond != 2 {
		t.Fatalf("non-finite counts drift=%d strat=%d cond=%d, want 1/1/2",
			s.NonFiniteWrapDrift, s.NonFiniteStratResidual, s.NonFiniteUDTCond)
	}
	if s.MaxWrapDrift != 1e-10 || s.WrapDriftSamples != 1 {
		t.Fatalf("finite wrap drift aggregates polluted: max=%v n=%d", s.MaxWrapDrift, s.WrapDriftSamples)
	}
	if s.MaxStratResidual != 2e-12 || s.MeanStratResidual != 2e-12 || s.StratResidualSamples != 1 {
		t.Fatalf("finite strat aggregates polluted: max=%v mean=%v n=%d",
			s.MaxStratResidual, s.MeanStratResidual, s.StratResidualSamples)
	}
	if s.MaxUDTCondLog10 != 0 || s.MeanUDTCondLog10 != 0 || s.UDTCondSamples != 0 {
		t.Fatalf("cond aggregates should be empty: max=%v mean=%v n=%d",
			s.MaxUDTCondLog10, s.MeanUDTCondLog10, s.UDTCondSamples)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("metrics with non-finite samples must still marshal: %v", err)
	}
}

// TestZeroSampleMeansRoundTrip asserts that a run where a probe never fired
// exports mean 0 with samples 0 (not NaN, which encoding/json rejects), and
// that the document round-trips.
func TestZeroSampleMeansRoundTrip(t *testing.T) {
	c := New()
	c.Finish()
	m := c.Metrics()
	s := m.Stability
	if s.StratResidualSamples != 0 || s.UDTCondSamples != 0 || s.WrapDriftSamples != 0 {
		t.Fatalf("expected zero samples, got %+v", s)
	}
	if s.MeanStratResidual != 0 || s.MeanUDTCondLog10 != 0 {
		t.Fatalf("zero-sample means must be exactly 0, got strat=%v cond=%v",
			s.MeanStratResidual, s.MeanUDTCondLog10)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("zero-sample metrics must marshal: %v", err)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stability != s {
		t.Fatalf("stability round trip mismatch: %+v vs %+v", back.Stability, s)
	}
}

// recordingListener captures the sample stream (thread-safely, as required
// by the StabilityListener contract).
type recordingListener struct {
	mu      sync.Mutex
	samples []struct {
		p StabilityProbe
		v float64
	}
}

func (r *recordingListener) ObserveStability(p StabilityProbe, v float64) {
	r.mu.Lock()
	r.samples = append(r.samples, struct {
		p StabilityProbe
		v float64
	}{p, v})
	r.mu.Unlock()
}

// TestStabilityListenerStream asserts the listener sees every sample in
// order, including non-finite ones, and survives Reset.
func TestStabilityListenerStream(t *testing.T) {
	c := New()
	r := &recordingListener{}
	c.SetStabilityListener(r)
	c.SampleWrapDrift(1e-9)
	c.SampleUDTCond(math.NaN())
	c.Reset()
	c.SampleStratResidual(3e-13)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) != 3 {
		t.Fatalf("listener saw %d samples, want 3 (must survive Reset)", len(r.samples))
	}
	if r.samples[0].p != ProbeWrapDrift || r.samples[0].v != 1e-9 {
		t.Fatalf("sample 0: %+v", r.samples[0])
	}
	if r.samples[1].p != ProbeUDTCond || !math.IsNaN(r.samples[1].v) {
		t.Fatalf("sample 1 must deliver the raw NaN: %+v", r.samples[1])
	}
	if r.samples[2].p != ProbeStratResidual || r.samples[2].v != 3e-13 {
		t.Fatalf("sample 2: %+v", r.samples[2])
	}
	c.SetStabilityListener(nil)
	c.SampleWrapDrift(1)
	if len(r.samples) != 3 {
		t.Fatal("detached listener still receives samples")
	}
}

func TestProbeNames(t *testing.T) {
	want := []string{"wrap_drift", "strat_residual", "udt_cond"}
	for p := StabilityProbe(0); p < NumProbes; p++ {
		if p.String() != want[p] {
			t.Fatalf("probe %d name %q, want %q", p, p.String(), want[p])
		}
	}
}

func TestMetricsDocumentShape(t *testing.T) {
	c := New()
	c.End(PhaseRefresh, c.Begin())
	c.Finish()
	m := c.Metrics()
	for p := Phase(0); p < NumPhases; p++ {
		if _, ok := m.PhaseMS[p.String()]; !ok {
			t.Fatalf("phase_ms missing key %q", p)
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.WallMS != m.WallMS || len(back.PhaseMS) != len(m.PhaseMS) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, m)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.End(PhaseWrap, c.Begin())
	c.SampleWrapDrift(1)
	c.SampleStratResidual(1)
	c.SampleUDTCond(1)
	c.Reset()
	c.Finish()
	if c.Wall() != 0 || c.PhaseDurations().Sum() != 0 {
		t.Fatal("nil collector returned nonzero state")
	}
	m := c.Metrics()
	if m == nil || m.WallMS != 0 {
		t.Fatalf("nil collector metrics: %+v", m)
	}
}

// TestNilCollectorZeroAlloc is the alloc-regression gate for the disabled
// path: every hot-loop entry point on a nil collector (and the global
// counters, which are always on) must allocate nothing.
func TestNilCollectorZeroAlloc(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		start := c.Begin()
		c.End(PhaseFlush, start)
		c.SampleWrapDrift(1e-12)
		Add(OpWraps, 1)
		AddGemm(8, 8, 8)
	})
	if allocs != 0 {
		t.Fatalf("disabled-collector hot path allocates %v/op, want 0", allocs)
	}
}

// TestEnabledCollectorZeroAlloc asserts the enabled hot path is also
// allocation-free (timers are atomic adds, samples take a mutex only).
func TestEnabledCollectorZeroAlloc(t *testing.T) {
	c := New()
	allocs := testing.AllocsPerRun(1000, func() {
		start := c.Begin()
		c.End(PhaseFlush, start)
		c.SampleWrapDrift(1e-12)
		Add(OpWraps, 1)
	})
	if allocs != 0 {
		t.Fatalf("enabled-collector hot path allocates %v/op, want 0", allocs)
	}
}

package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestPhaseAndOpNames(t *testing.T) {
	wantPhases := []string{"wrap", "flush", "cluster", "refresh", "measure"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != wantPhases[p] {
			t.Fatalf("phase %d name %q, want %q", p, p.String(), wantPhases[p])
		}
	}
	seen := map[string]bool{}
	for o := Op(0); o < NumOps; o++ {
		n := o.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("op %d has bad/duplicate name %q", o, n)
		}
		seen[n] = true
	}
}

func TestCountersAndDeltas(t *testing.T) {
	c := New()
	Add(OpWraps, 3)
	AddGemm(4, 5, 6)
	d := c.OpDeltas()
	if d[OpWraps] != 3 {
		t.Fatalf("wraps delta %d, want 3", d[OpWraps])
	}
	if d[OpGemmCalls] != 1 || d[OpGemmFlops] != 2*4*5*6 {
		t.Fatalf("gemm delta calls=%d flops=%d", d[OpGemmCalls], d[OpGemmFlops])
	}
	// A second collector created now must not see those counts.
	c2 := New()
	if d2 := c2.OpDeltas(); d2[OpWraps] != 0 {
		t.Fatalf("fresh collector sees stale wraps delta %d", d2[OpWraps])
	}
}

func TestPhaseTiming(t *testing.T) {
	c := New()
	start := c.Begin()
	time.Sleep(2 * time.Millisecond)
	c.End(PhaseWrap, start)
	pd := c.PhaseDurations()
	if pd[PhaseWrap] < time.Millisecond {
		t.Fatalf("wrap phase %v, want >= 1ms", pd[PhaseWrap])
	}
	if pd.Sum() != pd[PhaseWrap] {
		t.Fatalf("sum %v != wrap %v", pd.Sum(), pd[PhaseWrap])
	}
}

func TestStabilitySamples(t *testing.T) {
	c := New()
	c.SampleWrapDrift(1e-9)
	c.SampleWrapDrift(1e-11)
	c.SampleStratResidual(1e-13)
	c.SampleStratResidual(3e-13)
	c.SampleUDTCond(5)
	c.SampleUDTCond(7)
	m := c.Metrics()
	s := m.Stability
	if s.MaxWrapDrift != 1e-9 || s.WrapDriftSamples != 2 {
		t.Fatalf("wrap drift %v/%d", s.MaxWrapDrift, s.WrapDriftSamples)
	}
	if s.MaxStratResidual != 3e-13 || s.StratResidualSamples != 2 {
		t.Fatalf("strat residual %v/%d", s.MaxStratResidual, s.StratResidualSamples)
	}
	if s.MeanStratResidual != 2e-13 {
		t.Fatalf("mean strat residual %v", s.MeanStratResidual)
	}
	if s.MaxUDTCondLog10 != 7 || s.MeanUDTCondLog10 != 6 || s.UDTCondSamples != 2 {
		t.Fatalf("cond %v/%v/%d", s.MaxUDTCondLog10, s.MeanUDTCondLog10, s.UDTCondSamples)
	}
}

func TestMetricsDocumentShape(t *testing.T) {
	c := New()
	c.End(PhaseRefresh, c.Begin())
	c.Finish()
	m := c.Metrics()
	for p := Phase(0); p < NumPhases; p++ {
		if _, ok := m.PhaseMS[p.String()]; !ok {
			t.Fatalf("phase_ms missing key %q", p)
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.WallMS != m.WallMS || len(back.PhaseMS) != len(m.PhaseMS) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, m)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.End(PhaseWrap, c.Begin())
	c.SampleWrapDrift(1)
	c.SampleStratResidual(1)
	c.SampleUDTCond(1)
	c.Reset()
	c.Finish()
	if c.Wall() != 0 || c.PhaseDurations().Sum() != 0 {
		t.Fatal("nil collector returned nonzero state")
	}
	m := c.Metrics()
	if m == nil || m.WallMS != 0 {
		t.Fatalf("nil collector metrics: %+v", m)
	}
}

// TestNilCollectorZeroAlloc is the alloc-regression gate for the disabled
// path: every hot-loop entry point on a nil collector (and the global
// counters, which are always on) must allocate nothing.
func TestNilCollectorZeroAlloc(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		start := c.Begin()
		c.End(PhaseFlush, start)
		c.SampleWrapDrift(1e-12)
		Add(OpWraps, 1)
		AddGemm(8, 8, 8)
	})
	if allocs != 0 {
		t.Fatalf("disabled-collector hot path allocates %v/op, want 0", allocs)
	}
}

// TestEnabledCollectorZeroAlloc asserts the enabled hot path is also
// allocation-free (timers are atomic adds, samples take a mutex only).
func TestEnabledCollectorZeroAlloc(t *testing.T) {
	c := New()
	allocs := testing.AllocsPerRun(1000, func() {
		start := c.Begin()
		c.End(PhaseFlush, start)
		c.SampleWrapDrift(1e-12)
		Add(OpWraps, 1)
	})
	if allocs != 0 {
		t.Fatalf("enabled-collector hot path allocates %v/op, want 0", allocs)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"time"

	"questgo/internal/schema"
)

// MetricsSchemaVersion is the wire version of the metrics document. The
// major is bumped whenever a field is renamed, retyped or removed; purely
// additive changes bump the minor.
const MetricsSchemaVersion = "1.0"

// Metrics is the stable JSON metrics document exported from a run: the
// per-phase wall-time breakdown (the paper's Table-I rows in machine form),
// the op-counter deltas, and the stability telemetry. Field names and the
// phase/op key sets are a compatibility surface — downstream tooling diffs
// these documents across runs; DecodeMetrics is the read path that enforces
// it.
type Metrics struct {
	SchemaVersion string `json:"schema_version,omitempty"`

	WallMS float64 `json:"wall_ms"`
	// PhaseMS maps phase name -> accumulated milliseconds; PhasePercent is
	// each phase's share of the phase total.
	PhaseMS      map[string]float64 `json:"phase_ms"`
	PhasePercent map[string]float64 `json:"phase_percent"`
	// PhaseCoverage is sum(phase)/wall — how much of the wall time the
	// instrumented phases account for (1.0 = everything; parallel walkers
	// sharing one collector can exceed 1).
	PhaseCoverage float64 `json:"phase_coverage"`

	Ops OpMetrics `json:"ops"`
	// GemmGFlops is the derived host GEMM rate over the wall time.
	GemmGFlops float64 `json:"gemm_gflops"`

	Stability StabilityMetrics `json:"stability"`

	// Autopilot records the stability controller's decisions when the run
	// had one attached (nil otherwise — the field is owned by
	// internal/autopilot and only carried here so it rides the same
	// document).
	Autopilot *AutopilotMetrics `json:"autopilot,omitempty"`

	// Devices carries one entry per simulated accelerator when the run
	// offloaded to internal/gpu (empty otherwise). The entries are filled
	// by the runner from the device counters; obs only defines the schema.
	Devices []DeviceMetrics `json:"devices,omitempty"`
}

// DeviceMetrics is one simulated accelerator's end-of-run counter snapshot:
// the modeled clock, how much of it was fixed launch/latency overhead (the
// part command graphs amortize), the work totals, and the memory
// high-water mark.
type DeviceMetrics struct {
	Device           string  `json:"device"`
	ClockMS          float64 `json:"clock_ms"`
	LaunchOverheadMS float64 `json:"launch_overhead_ms"`
	ModeledGFlops    float64 `json:"modeled_gflops"`
	Flops            int64   `json:"flops"`
	TransferredBytes int64   `json:"transferred_bytes"`
	Kernels          int64   `json:"kernels"`
	MaxAllocBytes    int64   `json:"max_alloc_bytes"`
}

// OpMetrics holds the op-counter deltas of a run.
type OpMetrics struct {
	GemmCalls         int64 `json:"gemm_calls"`
	GemmFlops         int64 `json:"gemm_flops"`
	QRFactorizations  int64 `json:"qr_factorizations"`
	QRPFactorizations int64 `json:"qrp_factorizations"`
	QRPPanels         int64 `json:"qrp_panels"`
	UDTSteps          int64 `json:"udt_steps"`
	DelayedFlushes    int64 `json:"delayed_flushes"`
	Wraps             int64 `json:"wraps"`
	Sweeps            int64 `json:"sweeps"`
	DeviceFlops       int64 `json:"device_flops,omitempty"`
	DeviceBytes       int64 `json:"device_bytes,omitempty"`
	DeviceKernels     int64 `json:"device_kernels,omitempty"`
	GraphReplays      int64 `json:"graph_replays,omitempty"`
	GraphNodes        int64 `json:"graph_nodes,omitempty"`
	PeerBytes         int64 `json:"peer_bytes,omitempty"`
}

// fromCounts maps an OpCounts delta onto the named document fields.
func fromCounts(d OpCounts) OpMetrics {
	return OpMetrics{
		GemmCalls:         d[OpGemmCalls],
		GemmFlops:         d[OpGemmFlops],
		QRFactorizations:  d[OpQRFactorizations],
		QRPFactorizations: d[OpQRPFactorizations],
		QRPPanels:         d[OpQRPPanels],
		UDTSteps:          d[OpUDTSteps],
		DelayedFlushes:    d[OpDelayedFlushes],
		Wraps:             d[OpWraps],
		Sweeps:            d[OpSweeps],
		DeviceFlops:       d[OpDeviceFlops],
		DeviceBytes:       d[OpDeviceBytes],
		DeviceKernels:     d[OpDeviceKernels],
		GraphReplays:      d[OpGraphReplays],
		GraphNodes:        d[OpGraphNodes],
		PeerBytes:         d[OpPeerBytes],
	}
}

// StabilityMetrics summarizes the sampled numerical diagnostics. Zero
// sample counts mean the corresponding probe never ran (e.g. the
// stratification residual check is off by default); with zero samples the
// max and mean fields are exactly 0, never NaN, so the document always
// marshals. Max/mean/samples cover finite samples only — non-finite
// readings (NaN, ±Inf) are reported through the NonFinite* counts and the
// sticky NonFiniteSeen flag instead of silently vanishing from the maxima.
type StabilityMetrics struct {
	// MaxWrapDrift is the largest relative difference between a wrapped
	// Green's function and its stratified recomputation — the diagnostic
	// that motivates the wrapping limit l = k.
	MaxWrapDrift     float64 `json:"max_wrap_drift"`
	WrapDriftSamples int64   `json:"wrap_drift_samples"`
	// MaxStratResidual / MeanStratResidual compare the prefix/suffix UDT
	// stack's boundary Green's function against a full Loh-stratification
	// rebuild (<= ~1e-12 for a healthy stack).
	MaxStratResidual     float64 `json:"max_strat_residual"`
	MeanStratResidual    float64 `json:"mean_strat_residual"`
	StratResidualSamples int64   `json:"strat_residual_samples"`
	// MaxUDTCondLog10 / MeanUDTCondLog10 estimate the dynamic range the
	// graded decomposition absorbs: log10(max|D|/min|D|).
	MaxUDTCondLog10  float64 `json:"max_udt_cond_log10"`
	MeanUDTCondLog10 float64 `json:"mean_udt_cond_log10"`
	UDTCondSamples   int64   `json:"udt_cond_samples"`
	// NonFinite* count NaN/±Inf samples per probe; NonFiniteSeen is true if
	// any probe ever produced one. A run with NonFiniteSeen set blew up
	// numerically no matter what the finite aggregates say.
	NonFiniteWrapDrift     int64 `json:"non_finite_wrap_drift,omitempty"`
	NonFiniteStratResidual int64 `json:"non_finite_strat_residual,omitempty"`
	NonFiniteUDTCond       int64 `json:"non_finite_udt_cond,omitempty"`
	NonFiniteSeen          bool  `json:"non_finite_seen,omitempty"`
}

// metrics maps the internal per-probe aggregates onto the named document
// fields, guarding every mean against zero samples.
func (s stability) metrics() StabilityMetrics {
	m := StabilityMetrics{
		MaxWrapDrift:           s.max[ProbeWrapDrift],
		WrapDriftSamples:       s.n[ProbeWrapDrift],
		MaxStratResidual:       s.max[ProbeStratResidual],
		StratResidualSamples:   s.n[ProbeStratResidual],
		MaxUDTCondLog10:        s.max[ProbeUDTCond],
		UDTCondSamples:         s.n[ProbeUDTCond],
		NonFiniteWrapDrift:     s.nonFinite[ProbeWrapDrift],
		NonFiniteStratResidual: s.nonFinite[ProbeStratResidual],
		NonFiniteUDTCond:       s.nonFinite[ProbeUDTCond],
		NonFiniteSeen:          s.nonFiniteSeen,
	}
	if n := s.n[ProbeStratResidual]; n > 0 {
		m.MeanStratResidual = s.sum[ProbeStratResidual] / float64(n)
	}
	if n := s.n[ProbeUDTCond]; n > 0 {
		m.MeanUDTCondLog10 = s.sum[ProbeUDTCond] / float64(n)
	}
	return m
}

// AutopilotMetrics is the stability controller's section of the metrics
// document: where the run ended up, how it got there, and whether the
// controller ever had to slam the brakes. The types live here (not in
// internal/autopilot) because autopilot imports obs for the sample stream.
type AutopilotMetrics struct {
	Enabled bool `json:"enabled"`
	// InitialK/FinalK and InitialCheckEvery/FinalCheckEvery bracket the
	// controller's trajectory; Shrinks/Grows count the moves between them.
	InitialK          int `json:"initial_k"`
	FinalK            int `json:"final_k"`
	InitialCheckEvery int `json:"initial_check_every"`
	FinalCheckEvery   int `json:"final_check_every"`
	Shrinks           int `json:"shrinks"`
	Grows             int `json:"grows"`
	// KCap is the hysteresis ceiling: once a k breaches a stability
	// ceiling the controller never grows back past it.
	KCap int `json:"k_cap"`
	// NonFiniteEvents counts emergency shrinks triggered by NaN/Inf
	// samples; NonFinite is the matching sticky flag.
	NonFiniteEvents int  `json:"non_finite_events,omitempty"`
	NonFinite       bool `json:"non_finite,omitempty"`
	// Decisions is the (capped) change log, one entry per accepted move.
	Decisions []AutopilotDecision `json:"decisions,omitempty"`
}

// AutopilotDecision records one accepted controller move.
type AutopilotDecision struct {
	Sweep      int     `json:"sweep"`
	K          int     `json:"k"`
	CheckEvery int     `json:"check_every"`
	Reason     string  `json:"reason"`
	Signal     float64 `json:"signal"`
}

// Metrics builds the exportable document from the collector's current
// state. Safe on a nil collector (returns an empty document). This is the
// cold path: it allocates freely.
func (c *Collector) Metrics() *Metrics {
	m := &Metrics{
		SchemaVersion: MetricsSchemaVersion,
		PhaseMS:       map[string]float64{},
		PhasePercent:  map[string]float64{},
	}
	for p := Phase(0); p < NumPhases; p++ {
		m.PhaseMS[p.String()] = 0
		m.PhasePercent[p.String()] = 0
	}
	if c == nil {
		return m
	}
	pd := c.PhaseDurations()
	total := pd.Sum()
	for p := Phase(0); p < NumPhases; p++ {
		m.PhaseMS[p.String()] = float64(pd[p]) / float64(time.Millisecond)
		if total > 0 {
			m.PhasePercent[p.String()] = 100 * float64(pd[p]) / float64(total)
		}
	}
	wall := c.Wall()
	m.WallMS = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		m.PhaseCoverage = float64(total) / float64(wall)
	}
	m.Ops = fromCounts(c.OpDeltas())
	if secs := wall.Seconds(); secs > 0 {
		m.GemmGFlops = float64(m.Ops.GemmFlops) / secs / 1e9
	}
	c.mu.Lock()
	s := c.stab
	c.mu.Unlock()
	m.Stability = s.metrics()
	return m
}

// DecodeMetrics parses a metrics document, rejecting incompatible schema
// majors (a document without a schema_version predates versioning and is
// read as current). This is the entry point downstream tooling should use
// instead of raw json.Unmarshal, so a producer/reader mismatch fails at the
// boundary.
func DecodeMetrics(data []byte) (*Metrics, error) {
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if err := schema.Check(m.SchemaVersion, MetricsSchemaVersion); err != nil {
		return nil, fmt.Errorf("obs: metrics: %w", err)
	}
	return &m, nil
}

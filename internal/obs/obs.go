// Package obs is the instrumentation layer of the DQMC pipeline: per-phase
// monotonic timers, process-wide operation counters registered by the
// kernel packages (blas, lapack, greens, update, gpu), and
// numerical-stability telemetry sampled during sweeps.
//
// Design constraints (the sweep hot loop calls into this package many times
// per slice):
//
//   - Zero allocation on every hot-path entry point: Begin/End pass a
//     time.Time by value, op counters are plain atomic adds, stability
//     samples touch a mutex only at cluster-boundary frequency.
//   - A nil *Collector is fully valid and compiles down to a pointer check:
//     disabled collection costs one predictable branch per call and zero
//     allocations (asserted by TestNilCollectorZeroAlloc).
//
// The op counters are process-global (like a runtime/metrics view): the
// producing packages cannot carry a collector handle through every kernel
// call, so they charge shared atomic counters and a Collector snapshots
// them at construction/Reset and reports deltas. Within one command this
// gives exact per-run counts; concurrent runs in one process (parallel
// walkers) share the counters, which Run handles by snapshotting around the
// whole walker group.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Phase labels one section of the sweep loop. The five phases partition the
// wall time of a simulation run: wrapping, the delayed-update block
// (proposals, acceptances and flushes), cluster recomputation, the
// stratified boundary refresh (stack advance + Green's evaluation), and
// physical measurements.
type Phase uint8

const (
	PhaseWrap Phase = iota
	PhaseFlush
	PhaseCluster
	PhaseRefresh
	PhaseMeasure
	NumPhases
)

// String returns the stable lower-case key used in the JSON metrics
// document ("wrap", "flush", "cluster", "refresh", "measure").
func (p Phase) String() string {
	switch p {
	case PhaseWrap:
		return "wrap"
	case PhaseFlush:
		return "flush"
	case PhaseCluster:
		return "cluster"
	case PhaseRefresh:
		return "refresh"
	case PhaseMeasure:
		return "measure"
	}
	return "unknown"
}

// PhaseDurations is a by-value snapshot of accumulated time per phase.
type PhaseDurations [NumPhases]time.Duration

// Sum returns the total time across all phases.
func (pd PhaseDurations) Sum() time.Duration {
	var t time.Duration
	for _, d := range pd {
		t += d
	}
	return t
}

// Op identifies one process-global operation counter.
type Op uint8

const (
	// OpGemmCalls counts host blas.Gemm invocations; OpGemmFlops their
	// nominal 2mnk flop total. Device GEMMs executed by the simulated GPU
	// also run through the host kernel and therefore appear here too.
	OpGemmCalls Op = iota
	OpGemmFlops
	// OpQRFactorizations / OpQRPFactorizations count blocked QR (DGEQRF)
	// and column-pivoted QR (DGEQP3) factorizations.
	OpQRFactorizations
	OpQRPFactorizations
	// OpQRPPanels counts the pre-pivoted panels processed by the blocked
	// QRP (~n/qrpBlock per factorization): the unit of its level-3
	// trailing updates and aggregated norm downdates.
	OpQRPPanels
	// OpUDTSteps counts cluster-level UDT factorization steps (one per
	// matrix absorbed into a decomposition, plus one per stack combine).
	OpUDTSteps
	// OpDelayedFlushes counts non-empty delayed-update block flushes
	// (G += U W^T applications).
	OpDelayedFlushes
	// OpWraps counts single-slice wrapping steps G <- B G B^{-1} (one per
	// spin per slice).
	OpWraps
	// OpSweeps counts full Metropolis sweeps.
	OpSweeps
	// OpDeviceFlops / OpDeviceBytes / OpDeviceKernels are charged by the
	// simulated GPU device: modeled kernel flops, host<->device bytes
	// moved, and kernel launches.
	OpDeviceFlops
	OpDeviceBytes
	OpDeviceKernels
	// OpGraphReplays / OpGraphNodes are charged by command-graph replay:
	// one replay per launch of a recorded sequence, plus the number of
	// recorded nodes it executed (the launches amortized away).
	OpGraphReplays
	OpGraphNodes
	// OpPeerBytes counts device<->device bytes moved over the modeled
	// inter-accelerator link by multi-device scheduling.
	OpPeerBytes
	NumOps
)

// String returns the stable snake_case key used in the JSON metrics
// document.
func (o Op) String() string {
	switch o {
	case OpGemmCalls:
		return "gemm_calls"
	case OpGemmFlops:
		return "gemm_flops"
	case OpQRFactorizations:
		return "qr_factorizations"
	case OpQRPFactorizations:
		return "qrp_factorizations"
	case OpQRPPanels:
		return "qrp_panels"
	case OpUDTSteps:
		return "udt_steps"
	case OpDelayedFlushes:
		return "delayed_flushes"
	case OpWraps:
		return "wraps"
	case OpSweeps:
		return "sweeps"
	case OpDeviceFlops:
		return "device_flops"
	case OpDeviceBytes:
		return "device_bytes"
	case OpDeviceKernels:
		return "device_kernels"
	case OpGraphReplays:
		return "graph_replays"
	case OpGraphNodes:
		return "graph_nodes"
	case OpPeerBytes:
		return "peer_bytes"
	}
	return "unknown"
}

// ops holds the process-global counters. Plain atomic adds: the cheapest
// always-on instrumentation, dwarfed by the O(n^3) work of every call site.
var ops [NumOps]int64

// Add charges n to the global counter op.
func Add(op Op, n int64) { atomic.AddInt64(&ops[op], n) }

// AddGemm charges one host GEMM call of result shape m x n with inner
// dimension k (nominal 2mnk flops).
func AddGemm(m, n, k int) {
	atomic.AddInt64(&ops[OpGemmCalls], 1)
	atomic.AddInt64(&ops[OpGemmFlops], 2*int64(m)*int64(n)*int64(k))
}

// Total returns the current global value of op.
func Total(op Op) int64 { return atomic.LoadInt64(&ops[op]) }

// OpCounts is a by-value snapshot of every global counter.
type OpCounts [NumOps]int64

// Counts snapshots all global counters.
func Counts() OpCounts {
	var c OpCounts
	for i := range c {
		c[i] = atomic.LoadInt64(&ops[i])
	}
	return c
}

// Sub returns c - prev element-wise (the counts accumulated since prev was
// taken).
func (c OpCounts) Sub(prev OpCounts) OpCounts {
	var d OpCounts
	for i := range c {
		d[i] = c[i] - prev[i]
	}
	return d
}

// StabilityProbe identifies one of the numerical-stability diagnostics the
// sweep samples: wrap drift, stack-vs-rebuild stratification residual, and
// the UDT condition estimate (log10 of max|D|/min|D|).
type StabilityProbe uint8

const (
	ProbeWrapDrift StabilityProbe = iota
	ProbeStratResidual
	ProbeUDTCond
	NumProbes
)

// String returns the stable snake_case probe key.
func (p StabilityProbe) String() string {
	switch p {
	case ProbeWrapDrift:
		return "wrap_drift"
	case ProbeStratResidual:
		return "strat_residual"
	case ProbeUDTCond:
		return "udt_cond"
	}
	return "unknown"
}

// StabilityListener receives every stability sample as it is recorded — the
// streaming counterpart of the end-of-run StabilityMetrics aggregates, and
// the input side of the feedback controller in internal/autopilot.
//
// ObserveStability is called from the sweep's refresh path, possibly from
// two goroutines at once (the spin-parallel phases), so implementations
// must be safe for concurrent use and must not block: the sweep waits on
// them at cluster-boundary frequency. Non-finite samples are delivered
// unfiltered — a NaN reading is precisely the blow-up a listener exists to
// react to.
type StabilityListener interface {
	ObserveStability(p StabilityProbe, v float64)
}

// Collector accumulates one run's phase timings, op-counter deltas and
// stability telemetry. All methods are safe on a nil receiver (no-ops) and
// safe for concurrent use; the hot-path methods never allocate.
type Collector struct {
	phaseNS   [NumPhases]int64 // atomic
	startOps  OpCounts
	startTime time.Time
	wallNS    int64 // atomic; set by Finish, 0 while running

	mu       sync.Mutex
	stab     stability
	listener StabilityListener
}

// stability aggregates the sampled numerical diagnostics per probe. Only
// finite samples enter max/sum/n — a NaN would otherwise never update the
// running max (NaN > x is false) and would poison the sum, so the run
// would report "stable" through the exact blow-up the probes exist to
// catch. Non-finite samples are counted separately with a sticky flag.
type stability struct {
	max           [NumProbes]float64
	sum           [NumProbes]float64
	n             [NumProbes]int64
	nonFinite     [NumProbes]int64
	nonFiniteSeen bool
}

// New returns a collector whose wall clock and op baseline start now.
func New() *Collector {
	c := &Collector{}
	c.Reset()
	return c
}

// Enabled reports whether collection is active (non-nil receiver).
func (c *Collector) Enabled() bool { return c != nil }

// Reset zeroes the phase timers and stability samples and re-baselines the
// wall clock and op counters. Run calls it once on entry so setup work
// (cluster building, stack construction) is excluded from the run's
// breakdown.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.phaseNS {
		atomic.StoreInt64(&c.phaseNS[i], 0)
	}
	atomic.StoreInt64(&c.wallNS, 0)
	c.startOps = Counts()
	c.startTime = time.Now()
	c.mu.Lock()
	c.stab = stability{}
	c.mu.Unlock()
}

// Begin starts a phase timer. On a nil collector it returns the zero Time
// without reading the clock.
func (c *Collector) Begin() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// End accumulates the time since start into phase p. Pair with Begin:
//
//	start := c.Begin()
//	... phase work ...
//	c.End(obs.PhaseWrap, start)
func (c *Collector) End(p Phase, start time.Time) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.phaseNS[p], int64(time.Since(start)))
}

// Finish stamps the run's wall time. Metrics taken after Finish report the
// frozen wall; before, the wall is read live.
func (c *Collector) Finish() {
	if c == nil {
		return
	}
	atomic.StoreInt64(&c.wallNS, int64(time.Since(c.startTime)))
}

// Wall returns the run's wall time: frozen if Finish was called, live
// otherwise.
func (c *Collector) Wall() time.Duration {
	if c == nil {
		return 0
	}
	if w := atomic.LoadInt64(&c.wallNS); w != 0 {
		return time.Duration(w)
	}
	return time.Since(c.startTime)
}

// PhaseDurations snapshots the accumulated time per phase.
func (c *Collector) PhaseDurations() PhaseDurations {
	var pd PhaseDurations
	if c == nil {
		return pd
	}
	for i := range pd {
		pd[i] = time.Duration(atomic.LoadInt64(&c.phaseNS[i]))
	}
	return pd
}

// OpDeltas returns the op counts accumulated since the last Reset.
func (c *Collector) OpDeltas() OpCounts {
	if c == nil {
		return OpCounts{}
	}
	return Counts().Sub(c.startOps)
}

// SetStabilityListener attaches l to receive every subsequent stability
// sample (nil detaches). The listener survives Reset: it belongs to the
// run's control plane, not to the aggregates being rebaselined. Safe on a
// nil collector (no-op: with collection disabled there is no sample stream
// to observe).
func (c *Collector) SetStabilityListener(l StabilityListener) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
}

// SampleStability records one reading of probe p. Finite samples enter the
// per-probe max/sum/count aggregates; non-finite samples (NaN, ±Inf) are
// counted separately and set a sticky flag so the Metrics document can
// never report a blown-up run as stable. Either way the attached listener
// (if any) sees the raw value, outside the collector's lock.
func (c *Collector) SampleStability(p StabilityProbe, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		c.stab.nonFinite[p]++
		c.stab.nonFiniteSeen = true
	} else {
		if v > c.stab.max[p] {
			c.stab.max[p] = v
		}
		c.stab.sum[p] += v
		c.stab.n[p]++
	}
	l := c.listener
	c.mu.Unlock()
	if l != nil {
		l.ObserveStability(p, v)
	}
}

// SampleWrapDrift records one relative difference between a wrapped Green's
// function and its stratified recomputation.
func (c *Collector) SampleWrapDrift(d float64) { c.SampleStability(ProbeWrapDrift, d) }

// SampleStratResidual records one relative difference between the
// prefix/suffix stack's boundary Green's function and a full-chain rebuild
// (the Loh-stratification reference).
func (c *Collector) SampleStratResidual(d float64) { c.SampleStability(ProbeStratResidual, d) }

// SampleUDTCond records one UDT condition estimate, as log10 of
// max|D|/min|D| of a completed decomposition — the dynamic range the
// graded factorization keeps out of the dense arithmetic.
func (c *Collector) SampleUDTCond(log10Cond float64) { c.SampleStability(ProbeUDTCond, log10Cond) }

// StabilitySnapshot returns the stability aggregates accumulated so far as
// a by-value metrics block. Cold path; safe on a nil collector.
func (c *Collector) StabilitySnapshot() StabilityMetrics {
	if c == nil {
		return StabilityMetrics{}
	}
	c.mu.Lock()
	s := c.stab
	c.mu.Unlock()
	return s.metrics()
}

package measure

import (
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// This file implements the imaginary-time spin susceptibility
//
//	chi_zz(q) = Integral_0^beta dtau <m_z(q, tau) m_z(-q, 0)>,
//
// the canonical "dynamic" two-particle measurement (its q = (pi,pi) value
// diverges at an antiferromagnetic transition). The integrand is the
// unequal-time spin correlation, Wick-factorized per HS configuration into
// the forward and reverse displaced Green's functions:
//
//	<m(a,tau) m(b,0)> = (n_up - n_dn)(a,tau) * (n_up - n_dn)(b,0)
//	                  + sum_sigma [-G_sigma(0,tau)(b,a)] * [G_sigma(tau,0)(a,b)].
//
// The bosonic correlator is beta-periodic, so the rectangle rule over the
// measured slices integrates it with spectral accuracy in the sampling
// spacing.
type Susceptibility struct {
	Lat *lattice.Lattice
	// ChiD[d] = Integral dtau C_zz(d, tau), displacement resolved.
	ChiD []float64
}

// MeasureSusceptibility computes chi_zz for the current configuration,
// sampling tau every `every` slices (1 = every slice; larger values trade
// accuracy for the cost of the displaced evaluations). clusterK is the
// stratification cluster size.
func MeasureSusceptibility(lat *lattice.Lattice, p *hubbard.Propagator, f *hubbard.Field, every, clusterK int) *Susceptibility {
	if every < 1 {
		every = 1
	}
	L := p.Model.L
	dtau := p.Model.Dtau
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	chi := &Susceptibility{Lat: lat, ChiD: make([]float64, planeN)}

	// Equal-time Green's functions at tau = 0.
	csUp := greens.NewClusterSet(p, f, hubbard.Up, clusterK)
	csDn := greens.NewClusterSet(p, f, hubbard.Down, clusterK)
	g0Up := csUp.GreenAt(0, true)
	g0Dn := csDn.GreenAt(0, true)

	weight := dtau * float64(every)
	// tau = 0 term: the equal-time C_zz.
	et := Measure(lat, g0Up, g0Dn, 1)
	for d, v := range et.Czz {
		chi.ChiD[d] += weight * v
	}
	// Wrapped equal-time G's provide the densities at tau_l.
	wrap := greens.NewWrapper(p)
	glUp := g0Up.Clone()
	glDn := g0Dn.Clone()
	next := every
	for l := 1; l <= L-1; l++ {
		wrap.Wrap(glUp, f, hubbard.Up, l-1)
		wrap.Wrap(glDn, f, hubbard.Down, l-1)
		if l != next {
			continue
		}
		next += every
		gtUp := greens.DisplacedGreen(p, f, hubbard.Up, l, clusterK)
		gtDn := greens.DisplacedGreen(p, f, hubbard.Down, l, clusterK)
		grUp := greens.DisplacedGreenReverse(p, f, hubbard.Up, l, clusterK)
		grDn := greens.DisplacedGreenReverse(p, f, hubbard.Down, l, clusterK)
		accumulateCzzTau(lat, chi.ChiD, weight, glUp, glDn, g0Up, g0Dn, gtUp, gtDn, grUp, grDn)
	}
	return chi
}

// accumulateCzzTau adds weight * C_zz(d, tau) to dst.
func accumulateCzzTau(lat *lattice.Lattice, dst []float64, weight float64,
	glUp, glDn, g0Up, g0Dn, gtUp, gtDn, grUp, grDn *mat.Dense) {
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	inv := weight / float64(n)
	for a := 0; a < n; a++ {
		xa, ya, za := lat.Coords(a)
		mA := (1 - glUp.At(a, a)) - (1 - glDn.At(a, a))
		base := za * planeN
		for jp := 0; jp < planeN; jp++ {
			b := base + jp
			xb, yb, _ := lat.Coords(b)
			dx := modInt(xa-xb, nx)
			dy := modInt(ya-yb, ny)
			d := dx + nx*dy
			mB := (1 - g0Up.At(b, b)) - (1 - g0Dn.At(b, b))
			val := mA * mB
			val += -grUp.At(b, a)*gtUp.At(a, b) - grDn.At(b, a)*gtDn.At(a, b)
			dst[d] += val * inv
		}
	}
}

// ChiQ Fourier transforms the displacement-resolved susceptibility onto
// the momentum grid; the antiferromagnetic susceptibility is the value at
// q = (pi, pi).
func (s *Susceptibility) ChiQ() []float64 { return FourierPlane(s.Lat, s.ChiD) }

// ChiAF returns chi_zz(pi, pi).
func (s *Susceptibility) ChiAF() float64 {
	var out float64
	nx := s.Lat.Nx
	for dy := 0; dy < s.Lat.Ny; dy++ {
		for dx := 0; dx < nx; dx++ {
			sign := 1.0
			if (dx+dy)%2 == 1 {
				sign = -1
			}
			out += sign * s.ChiD[dx+nx*dy]
		}
	}
	return out
}

// ChiUniform returns the uniform susceptibility chi_zz(q = 0).
func (s *Susceptibility) ChiUniform() float64 {
	var out float64
	for _, v := range s.ChiD {
		out += v
	}
	return out
}

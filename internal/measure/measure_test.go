package measure

import (
	"math"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// freeGreens builds the exact U = 0 equal-time Green's function
// G = (I + e^{-beta*K})^{-1} for both spins (identical at U = 0),
// spectrally: G = Z diag(1/(1+e^{-beta*eps})) Z^T, which is well
// conditioned for any beta.
func freeGreens(lat *lattice.Lattice, mu, beta float64) *mat.Dense {
	k := lat.KMatrix(mu)
	eps, z := lapack.SymEig(k)
	n := lat.N()
	zg := z.Clone()
	gl := make([]float64, n)
	for i, e := range eps {
		gl[i] = 1 / (1 + math.Exp(-beta*e))
	}
	zg.ScaleCols(gl)
	g := mat.New(n, n)
	blas.Gemm(false, true, 1, zg, z, 0, g)
	return g
}

func TestFreeFermionHalfFillingDensity(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0, 4)
	e := Measure(lat, g, g, 1)
	if math.Abs(e.Density()-1) > 1e-12 {
		t.Fatalf("half-filled free density = %v", e.Density())
	}
	if math.Abs(e.DensityUp-e.DensityDn) > 1e-13 {
		t.Fatal("spin densities should match")
	}
}

func TestFreeFermionMomentumDistribution(t *testing.T) {
	// <n_k> must equal the Fermi function of eps_k = -2t(cos kx + cos ky) - mu.
	lat := lattice.NewSquare(6, 6, 1)
	mu, beta := 0.3, 3.0
	g := freeGreens(lat, mu, beta)
	e := Measure(lat, g, g, 1)
	nk := e.MomentumDistribution()
	for _, p := range lat.MomentumGrid() {
		eps := -2*(math.Cos(p.Kx)+math.Cos(p.Ky)) - mu
		want := 1 / (1 + math.Exp(beta*eps))
		got := nk[p.Ix+lat.Nx*p.Iy]
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("n(k=%v,%v) = %v want %v", p.Kx, p.Ky, got, want)
		}
	}
}

func TestFreeFermionKineticEnergy(t *testing.T) {
	// <H_T>/N = (2/N) sum_k eps^hop_k n_F(eps_k) with eps^hop the hopping
	// part only (factor 2 for spin).
	lat := lattice.NewSquare(6, 6, 1)
	beta := 2.5
	g := freeGreens(lat, 0, beta)
	e := Measure(lat, g, g, 1)
	want := 0.0
	for _, p := range lat.MomentumGrid() {
		eps := -2 * (math.Cos(p.Kx) + math.Cos(p.Ky))
		want += 2 * eps / (1 + math.Exp(beta*eps))
	}
	want /= float64(lat.N())
	if math.Abs(e.Kinetic-want) > 1e-10 {
		t.Fatalf("kinetic = %v want %v", e.Kinetic, want)
	}
}

func TestFreeFermionDoubleOccFactorizes(t *testing.T) {
	// At U = 0, <n_up n_dn> = <n_up><n_dn> on every site.
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0.2, 2)
	e := Measure(lat, g, g, 1)
	if math.Abs(e.DoubleOcc-e.DensityUp*e.DensityDn) > 1e-12 {
		t.Fatalf("double occupancy %v != %v", e.DoubleOcc, e.DensityUp*e.DensityDn)
	}
}

func TestCzzSumRule(t *testing.T) {
	// sum_d Czz(d) = (1/N) <(sum_r m_z(r))^2> >= 0, and Czz(0) equals the
	// local moment.
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0, 3)
	e := Measure(lat, g, g, 1)
	if math.Abs(e.Czz[0]-e.LocalMoment) > 1e-12 {
		t.Fatalf("Czz(0) = %v, local moment = %v", e.Czz[0], e.LocalMoment)
	}
	var total float64
	for _, v := range e.Czz {
		total += v
	}
	if total < -1e-10 {
		t.Fatalf("sum rule violated: total spin correlation %v < 0", total)
	}
}

func TestMeasureOnInteractingConfig(t *testing.T) {
	// Interacting single-configuration measurement must stay physical:
	// density in [0,2], |Czz| maps bounded, structure factor finite.
	lat := lattice.NewSquare(4, 4, 1)
	m, err := hubbard.NewModel(lat, 4, 0, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(m)
	f := hubbard.NewRandomField(m.L, m.N(), rng.New(7))
	bsUp := make([]*mat.Dense, m.L)
	bsDn := make([]*mat.Dense, m.L)
	for i := 0; i < m.L; i++ {
		bsUp[i] = p.BMatrix(hubbard.Up, f, i)
		bsDn[i] = p.BMatrix(hubbard.Down, f, i)
	}
	e := Measure(lat, greens.Green(bsUp), greens.Green(bsDn), 1)
	if e.Density() < 0 || e.Density() > 2 {
		t.Fatalf("density %v unphysical", e.Density())
	}
	if e.LocalMoment < 0 || e.LocalMoment > 2 {
		t.Fatalf("local moment %v unphysical", e.LocalMoment)
	}
	if math.IsNaN(e.AFStructureFactor()) {
		t.Fatal("structure factor NaN")
	}
}

func TestLayerDensity(t *testing.T) {
	lat := lattice.NewMultilayer(4, 4, 2, 1, 0.5)
	g := freeGreens(lat, 0, 2)
	e := Measure(lat, g, g, 1)
	if len(e.LayerDensity) != 2 {
		t.Fatalf("layer count %d", len(e.LayerDensity))
	}
	// Symmetric bilayer at half filling: both layers at density 1.
	for z, d := range e.LayerDensity {
		if math.Abs(d-1) > 1e-12 {
			t.Fatalf("layer %d density %v", z, d)
		}
	}
	avg := (e.LayerDensity[0] + e.LayerDensity[1]) / 2
	if math.Abs(avg-e.Density()) > 1e-12 {
		t.Fatal("layer densities inconsistent with total")
	}
}

func TestFourierPlaneDeltaFunction(t *testing.T) {
	// f(d) = delta_{d,0} transforms to f(k) = 1 for all k.
	lat := lattice.NewSquare(4, 4, 1)
	f := make([]float64, 16)
	f[0] = 1
	out := FourierPlane(lat, f)
	for i, v := range out {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("F[delta](%d) = %v", i, v)
		}
	}
}

func TestFourierPlaneParseval(t *testing.T) {
	// sum_k f(k) = N * f(d=0).
	lat := lattice.NewSquare(4, 6, 1)
	r := rng.New(9)
	f := make([]float64, 24)
	// A symmetric (f(d) = f(-d)) random function, as all our correlators are.
	for dy := 0; dy < 6; dy++ {
		for dx := 0; dx < 4; dx++ {
			v := r.Float64()
			f[dx+4*dy] = v
			f[((4-dx)%4)+4*((6-dy)%6)] = v
		}
	}
	out := FourierPlane(lat, f)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-24*f[0]) > 1e-10 {
		t.Fatalf("Parseval check failed: %v vs %v", sum, 24*f[0])
	}
}

func TestAFStructureFactorMatchesGridPoint(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0, 3)
	e := Measure(lat, g, g, 1)
	sq := e.SpinStructureFactor()
	// (pi,pi) is grid point (2,2) on a 4x4 lattice.
	if math.Abs(e.AFStructureFactor()-sq[2+4*2]) > 1e-12 {
		t.Fatal("AFStructureFactor disagrees with S(q) grid")
	}
}

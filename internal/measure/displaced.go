package measure

import (
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// This file implements the imaginary-time-displaced ("dynamic")
// measurements that QUEST advertises alongside the equal-time ones: the
// single-particle propagator G(d, tau) = <c_{r+d}(tau) c^dag_r(0)> and its
// Fourier transform G(k, tau), whose tau-dependence carries spectral
// information (quasiparticle weights, gaps).

// Displaced holds G(d, tau) on a grid of displacements and time slices.
type Displaced struct {
	Lat *lattice.Lattice
	// Taus[i] is the slice index of the i-th measured displacement.
	Taus []int
	// GdTau[i][d] = (1/N) sum_r <c_{r+d}(tau_i) c^dag_r(0)>, spin averaged
	// over the two provided spin species.
	GdTau [][]float64
}

// MeasureDisplaced computes G(d, tau) for tau = every*dtau, 2*every*dtau,
// ..., up to maxTau slices, from the current field configuration. Each
// displaced Green's function is evaluated with the stable two-sided
// decomposition (greens.DisplacedGreen).
func MeasureDisplaced(lat *lattice.Lattice, p *hubbard.Propagator, f *hubbard.Field, every, maxTau, clusterK int) *Displaced {
	if every < 1 {
		every = 1
	}
	if maxTau > p.Model.L {
		maxTau = p.Model.L
	}
	d := &Displaced{Lat: lat}
	for l := every; l <= maxTau; l += every {
		gup := greens.DisplacedGreen(p, f, hubbard.Up, l, clusterK)
		gdn := greens.DisplacedGreen(p, f, hubbard.Down, l, clusterK)
		d.Taus = append(d.Taus, l)
		d.GdTau = append(d.GdTau, displacedGFun(lat, gup, gdn))
	}
	return d
}

// displacedGFun translation-averages <c_{r+d}(tau) c^dag_r(0)> =
// Gtau(r+d, r) over r within planes and over layers, spin averaged.
func displacedGFun(lat *lattice.Lattice, gup, gdn *mat.Dense) []float64 {
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	out := make([]float64, planeN)
	inv := 1 / float64(n)
	for r := 0; r < n; r++ {
		xr, yr, zr := lat.Coords(r)
		base := zr * planeN
		for jp := 0; jp < planeN; jp++ {
			j := base + jp
			xj, yj, _ := lat.Coords(j)
			dx := modInt(xj-xr, nx)
			dy := modInt(yj-yr, ny)
			out[dx+nx*dy] += 0.5 * (gup.At(j, r) + gdn.At(j, r)) * inv
		}
	}
	return out
}

// GkTau returns G(k, tau_i) for the i-th measured tau, on the x-fastest
// momentum grid.
func (d *Displaced) GkTau(i int) []float64 {
	return FourierPlane(d.Lat, d.GdTau[i])
}

// LocalGTau returns the local propagator G(d=0, tau) for every measured
// tau — the quantity whose large-tau decay rate estimates the
// single-particle gap.
func (d *Displaced) LocalGTau() []float64 {
	out := make([]float64, len(d.GdTau))
	for i, g := range d.GdTau {
		out[i] = g[0]
	}
	return out
}

package measure

import (
	"math"
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/rng"
)

func TestMeasureDisplacedFreeFermions(t *testing.T) {
	// At U = 0, G(k, tau) = e^{-tau*eps_k} / (1 + e^{-beta*eps_k}).
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 4.0, 20
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(3))
	d := MeasureDisplaced(lat, p, f, 5, L, 5)
	if len(d.Taus) != 4 {
		t.Fatalf("taus = %v", d.Taus)
	}
	dtau := beta / float64(L)
	for i, l := range d.Taus {
		tau := dtau * float64(l)
		gk := d.GkTau(i)
		for _, kp := range lat.MomentumGrid() {
			eps := -2 * (math.Cos(kp.Kx) + math.Cos(kp.Ky))
			var want float64
			if eps >= 0 {
				want = math.Exp(-tau*eps) / (1 + math.Exp(-beta*eps))
			} else {
				want = math.Exp((beta-tau)*eps) / (1 + math.Exp(beta*eps))
			}
			got := gk[kp.Ix+lat.Nx*kp.Iy]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("G(k=(%.2f,%.2f), tau=%.2f) = %v want %v", kp.Kx, kp.Ky, tau, got, want)
			}
		}
	}
}

func TestLocalGTauDecays(t *testing.T) {
	// The local propagator must decay monotonically in tau over (0, beta/2)
	// for the free system.
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 6.0, 24
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(4))
	d := MeasureDisplaced(lat, p, f, 2, L/2, 4)
	loc := d.LocalGTau()
	for i := 1; i < len(loc); i++ {
		if loc[i] >= loc[i-1] {
			t.Fatalf("local G(tau) not decaying: %v", loc)
		}
	}
	if loc[0] <= 0 || loc[0] >= 1 {
		t.Fatalf("local G(tau) out of physical range: %v", loc[0])
	}
}

func TestMeasureDisplacedInteracting(t *testing.T) {
	// Interacting configuration: just require physical bounds and the
	// right shapes.
	lat := lattice.NewSquare(2, 2, 1)
	model, err := hubbard.NewModel(lat, 4, 0, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(8, 4, rng.New(5))
	d := MeasureDisplaced(lat, p, f, 1, 8, 4)
	if len(d.Taus) != 8 || len(d.GdTau[0]) != 4 {
		t.Fatalf("shapes: %v %v", d.Taus, len(d.GdTau[0]))
	}
	for i := range d.Taus {
		for _, v := range d.GdTau[i] {
			if math.IsNaN(v) || math.Abs(v) > 10 {
				t.Fatalf("unphysical G(d,tau): %v", v)
			}
		}
	}
}

func TestPairingFreeFermions(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0, 3)
	pr := MeasurePairing(lat, g, g)
	// On-site: P_s(0) = (1/N) sum_r G(r,r)^2 (spins identical at U = 0).
	var want float64
	for r := 0; r < lat.N(); r++ {
		want += g.At(r, r) * g.At(r, r)
	}
	want /= float64(lat.N())
	if math.Abs(pr.Ps[0]-want) > 1e-13 {
		t.Fatalf("P_s(0) = %v want %v", pr.Ps[0], want)
	}
	// q = 0 structure factor is a norm, hence non-negative.
	if pr.StructureFactor() < 0 {
		t.Fatalf("pair structure factor %v < 0", pr.StructureFactor())
	}
}

func TestPairingVertex(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0, 3)
	pr := MeasurePairing(lat, g, g)
	v := pr.Vertex(pr)
	for _, x := range v {
		if x != 0 {
			t.Fatal("vertex of a measurement against itself must vanish")
		}
	}
}

func TestPairingTranslationConsistency(t *testing.T) {
	// P_s must be symmetric under d -> -d for the spin-symmetric free case.
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0.3, 2)
	pr := MeasurePairing(lat, g, g)
	nx := lat.Nx
	for dy := 0; dy < nx; dy++ {
		for dx := 0; dx < nx; dx++ {
			a := pr.Ps[dx+nx*dy]
			b := pr.Ps[((nx-dx)%nx)+nx*((nx-dy)%nx)]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("P_s not inversion symmetric at (%d,%d): %v vs %v", dx, dy, a, b)
			}
		}
	}
}

package measure

import (
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
)

// This file adds the other two standard imaginary-time susceptibilities:
//
//	P_s        = Integral_0^beta dtau (1/N) sum_{a,b} <Delta_a(tau) Delta^dag_b(0)>,
//	chi_c(q)   = Integral_0^beta dtau <dn(q, tau) dn(-q, 0)>,  dn = n - <n>,
//
// the s-wave pair-field susceptibility (the superconducting diagnostic of
// the attractive model) and the charge susceptibility (compressibility at
// q -> 0). Wick factorization per configuration:
//
//	<Delta_a(tau) Delta^dag_b(0)> = Gup(tau,0)(a,b) * Gdn(tau,0)(a,b)
//	<n_a(tau) n_b(0)>             = n_a(tau) n_b(0)
//	                              + sum_s [-G_s(0,tau)(b,a)] G_s(tau,0)(a,b).
//
// ChiCD stores the *full* (unsubtracted) density correlation integral; the
// disconnected piece integrates to beta*<n_a><n_b> and must be removed at
// the ensemble level (ChiCConnected) because the density product
// fluctuates between configurations.
type PairSusceptibility struct {
	Lat  *lattice.Lattice
	Beta float64
	// PsD[d] = Integral dtau (1/N) sum_r <Delta_{r+d}(tau) Delta^dag_r(0)>.
	PsD []float64
	// ChiCD[d] = Integral dtau full density-density correlation.
	ChiCD []float64
}

// MeasurePairSusceptibility computes the pair-field and charge
// susceptibilities for the current configuration, sampling tau every
// `every` slices.
func MeasurePairSusceptibility(lat *lattice.Lattice, p *hubbard.Propagator, f *hubbard.Field, every, clusterK int) *PairSusceptibility {
	if every < 1 {
		every = 1
	}
	L := p.Model.L
	dtau := p.Model.Dtau
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	out := &PairSusceptibility{
		Lat:   lat,
		Beta:  p.Model.Beta,
		PsD:   make([]float64, planeN),
		ChiCD: make([]float64, planeN),
	}

	csUp := greens.NewClusterSet(p, f, hubbard.Up, clusterK)
	csDn := greens.NewClusterSet(p, f, hubbard.Down, clusterK)
	g0Up := csUp.GreenAt(0, true)
	g0Dn := csDn.GreenAt(0, true)

	weight := dtau * float64(every)

	// tau = 0 terms: equal-time pair correlation and connected charge
	// correlation.
	pr := MeasurePairing(lat, g0Up, g0Dn)
	for d, v := range pr.Ps {
		out.PsD[d] += weight * v
	}
	addChargeTau0(lat, out.ChiCD, weight, g0Up, g0Dn)

	wrap := greens.NewWrapper(p)
	glUp := g0Up.Clone()
	glDn := g0Dn.Clone()
	next := every
	for l := 1; l <= L-1; l++ {
		wrap.Wrap(glUp, f, hubbard.Up, l-1)
		wrap.Wrap(glDn, f, hubbard.Down, l-1)
		if l != next {
			continue
		}
		next += every
		gtUp := greens.DisplacedGreen(p, f, hubbard.Up, l, clusterK)
		gtDn := greens.DisplacedGreen(p, f, hubbard.Down, l, clusterK)
		grUp := greens.DisplacedGreenReverse(p, f, hubbard.Up, l, clusterK)
		grDn := greens.DisplacedGreenReverse(p, f, hubbard.Down, l, clusterK)
		inv := weight / float64(n)
		for a := 0; a < n; a++ {
			xa, ya, za := lat.Coords(a)
			base := za * planeN
			nA := (1 - glUp.At(a, a)) + (1 - glDn.At(a, a))
			for jp := 0; jp < planeN; jp++ {
				b := base + jp
				xb, yb, _ := lat.Coords(b)
				dx := modInt(xa-xb, nx)
				dy := modInt(ya-yb, ny)
				d := dx + nx*dy
				// Pair: Gup(tau)(a,b) * Gdn(tau)(a,b).
				out.PsD[d] += gtUp.At(a, b) * gtDn.At(a, b) * inv
				// Full charge correlation: density product plus the
				// same-spin exchange contraction.
				nB := (1 - g0Up.At(b, b)) + (1 - g0Dn.At(b, b))
				val := nA * nB
				val += -grUp.At(b, a)*gtUp.At(a, b) - grDn.At(b, a)*gtDn.At(a, b)
				out.ChiCD[d] += val * inv
			}
		}
	}
	return out
}

// addChargeTau0 adds the weighted tau = 0 full charge correlation:
// n_a n_b plus the same-spin Wick exchange (delta - G(b,a)) G(a,b).
func addChargeTau0(lat *lattice.Lattice, dst []float64, weight float64, gup, gdn interface {
	At(int, int) float64
}) {
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	inv := weight / float64(n)
	for a := 0; a < n; a++ {
		xa, ya, za := lat.Coords(a)
		base := za * planeN
		nA := (1 - gup.At(a, a)) + (1 - gdn.At(a, a))
		for jp := 0; jp < planeN; jp++ {
			b := base + jp
			xb, yb, _ := lat.Coords(b)
			dx := modInt(xa-xb, nx)
			dy := modInt(ya-yb, ny)
			d := dx + nx*dy
			var delta float64
			if a == b {
				delta = 1
			}
			nB := (1 - gup.At(b, b)) + (1 - gdn.At(b, b))
			val := nA * nB
			val += (delta-gup.At(b, a))*gup.At(a, b) + (delta-gdn.At(b, a))*gdn.At(a, b)
			dst[d] += val * inv
		}
	}
}

// PairQ0 returns the uniform (q = 0) s-wave pair-field susceptibility.
func (s *PairSusceptibility) PairQ0() float64 {
	var out float64
	for _, v := range s.PsD {
		out += v
	}
	return out
}

// ChiCQ Fourier transforms the full charge correlation integral.
func (s *PairSusceptibility) ChiCQ() []float64 { return FourierPlane(s.Lat, s.ChiCD) }

// ChiCConnected returns the connected charge susceptibility map given the
// ensemble mean density: the disconnected piece beta*<n>^2 is uniform in
// displacement and is removed from every bin.
func (s *PairSusceptibility) ChiCConnected(meanDensity float64) []float64 {
	out := make([]float64, len(s.ChiCD))
	sub := s.Beta * meanDensity * meanDensity
	for i, v := range s.ChiCD {
		out[i] = v - sub
	}
	return out
}

// Package measure computes the equal-time physical observables of the
// paper's Section V from the DQMC Green's functions: densities, double
// occupancy, energies, the momentum distribution <n_k> (Figures 5 and 6),
// and the z-component spin-spin correlation C_zz(r) with its
// antiferromagnetic structure factor (Figure 7).
//
// Conventions: G_sigma(r, r') = <c_r c^dag_r'>, so the density matrix is
// <c^dag_r' c_r> = delta_rr' - G_sigma(r, r'). All displacement-resolved
// quantities are translation averaged within planes and averaged over
// layers, and are indexed d = dx + Nx*dy with dx in [0, Nx).
package measure

import (
	"math"
	"sync"

	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/parallel"
)

// EqualTime holds the observables extracted from one field configuration.
type EqualTime struct {
	Lat *lattice.Lattice

	Sign float64 // fermion sign of the configuration weight

	DensityUp, DensityDn float64 // <n_sigma> per site
	DoubleOcc            float64 // <n_up n_dn> per site
	Kinetic              float64 // <H_T>/N (hopping energy per site)
	LocalMoment          float64 // <m_z^2> per site, m_z = n_up - n_dn

	// LayerDensity[z] is the per-site density of plane z (interesting for
	// the multilayer geometry the paper motivates).
	LayerDensity []float64

	// GFun[d] = (1/N) sum_r <c^dag_{r+d} c_r>, spin averaged; its Fourier
	// transform is the momentum distribution.
	GFun []float64

	// Czz[d] = (1/N) sum_r <m_z(r+d) m_z(r)>.
	Czz []float64
}

// Density returns the total per-site density <n_up + n_dn>.
func (e *EqualTime) Density() float64 { return e.DensityUp + e.DensityDn }

// Measure computes all equal-time observables from the two spin Green's
// functions of the current configuration.
func Measure(lat *lattice.Lattice, gup, gdn *mat.Dense, sign float64) *EqualTime {
	n := lat.N()
	if gup.Rows != n || gdn.Rows != n {
		panic("measure: Green's function dimension mismatch")
	}
	nx, ny, nl := lat.Nx, lat.Ny, lat.Layers
	planeN := nx * ny
	e := &EqualTime{
		Lat:          lat,
		Sign:         sign,
		LayerDensity: make([]float64, nl),
		GFun:         make([]float64, planeN),
		Czz:          make([]float64, planeN),
	}

	// Site-local quantities.
	for i := 0; i < n; i++ {
		nup := 1 - gup.At(i, i)
		ndn := 1 - gdn.At(i, i)
		e.DensityUp += nup
		e.DensityDn += ndn
		e.DoubleOcc += nup * ndn
		_, _, z := lat.Coords(i)
		e.LayerDensity[z] += nup + ndn
	}
	e.DensityUp /= float64(n)
	e.DensityDn /= float64(n)
	e.DoubleOcc /= float64(n)
	for z := range e.LayerDensity {
		e.LayerDensity[z] /= float64(planeN)
	}
	e.LocalMoment = e.DensityUp + e.DensityDn - 2*e.DoubleOcc

	// Kinetic energy: <H_T> = sum_{<rr'>} -t (<c^dag_r c_r'> + h.c.) etc.
	// Use the hopping structure via Neighbors (mu excluded).
	var kin float64
	for i := 0; i < n; i++ {
		x, y, z := lat.Coords(i)
		// In-plane bonds counted once per direction (+x, +y).
		if lat.Nx > 1 {
			j := lat.Index(x+1, y, z)
			kin += -lat.T * bondDensity(gup, gdn, i, j)
		}
		if lat.Ny > 1 {
			j := lat.Index(x, y+1, z)
			kin += -lat.TyEff() * bondDensity(gup, gdn, i, j)
		}
		if z+1 < nl {
			j := lat.Index(x, y, z+1)
			kin += -lat.Tperp * bondDensity(gup, gdn, i, j)
		}
		if lat.TPrime != 0 && lat.Nx > 1 && lat.Ny > 1 {
			// Diagonal bonds counted once per site via the +x+y and +x-y
			// directions.
			j := lat.Index(x+1, y+1, z)
			kin += -lat.TPrime * bondDensity(gup, gdn, i, j)
			j = lat.Index(x+1, y-1, z)
			kin += -lat.TPrime * bondDensity(gup, gdn, i, j)
		}
	}
	e.Kinetic = kin / float64(n)

	// Displacement-resolved correlations, translation averaged in-plane.
	// The O(N * planeN) pair loop is the expensive part of a measurement;
	// it parallelizes over source sites with per-worker accumulators (the
	// same OpenMP-style split the paper applies to its fine-grained loops).
	inv := 1 / float64(n)
	type accum struct {
		gfun, czz []float64
	}
	var mu sync.Mutex
	parallel.For(n, 16, func(lo, hi int) {
		acc := accum{gfun: make([]float64, planeN), czz: make([]float64, planeN)}
		for i := lo; i < hi; i++ {
			xi, yi, zi := lat.Coords(i)
			nupI := 1 - gup.At(i, i)
			ndnI := 1 - gdn.At(i, i)
			mzI := nupI - ndnI
			base := zi * planeN
			for jp := 0; jp < planeN; jp++ {
				j := base + jp // same-layer partner
				xj, yj, _ := lat.Coords(j)
				dx := modInt(xj-xi, nx)
				dy := modInt(yj-yi, ny)
				d := dx + nx*dy
				// <c^dag_{i+d} c_i>: here j = i + d.
				var delta float64
				if i == j {
					delta = 1
				}
				gfun := delta - 0.5*(gup.At(i, j)+gdn.At(i, j))
				acc.gfun[d] += gfun * inv

				nupJ := 1 - gup.At(j, j)
				ndnJ := 1 - gdn.At(j, j)
				mzJ := nupJ - ndnJ
				czz := mzI * mzJ
				// Same-spin Wick contractions: (delta - G(i,j)) * G(j,i).
				czz += (delta - gup.At(i, j)) * gup.At(j, i)
				czz += (delta - gdn.At(i, j)) * gdn.At(j, i)
				acc.czz[d] += czz * inv
			}
		}
		mu.Lock()
		for d := range acc.gfun {
			e.GFun[d] += acc.gfun[d]
			e.Czz[d] += acc.czz[d]
		}
		mu.Unlock()
	})
	return e
}

// bondDensity returns <c^dag_i c_j> + <c^dag_j c_i> summed over both spins
// for i != j.
func bondDensity(gup, gdn *mat.Dense, i, j int) float64 {
	return -gup.At(j, i) - gup.At(i, j) - gdn.At(j, i) - gdn.At(i, j)
}

// PotentialWith returns the interaction energy per site U*<n_up n_dn>.
func (e *EqualTime) PotentialWith(u float64) float64 { return u * e.DoubleOcc }

// MomentumDistribution Fourier transforms GFun onto the momentum grid:
// <n_k> = sum_d exp(i k.d) GFun(d), returned in the x-fastest grid order of
// lattice.MomentumGrid.
func (e *EqualTime) MomentumDistribution() []float64 {
	return FourierPlane(e.Lat, e.GFun)
}

// SpinStructureFactor returns S(q) = sum_d exp(i q.d) Czz(d) on the grid;
// the antiferromagnetic structure factor of Figure 7's discussion is the
// value at q = (pi, pi).
func (e *EqualTime) SpinStructureFactor() []float64 {
	return FourierPlane(e.Lat, e.Czz)
}

// AFStructureFactor returns S(pi, pi). The lattice must have even linear
// dimensions for (pi, pi) to be on the grid; for odd sizes the closest grid
// point is used.
func (e *EqualTime) AFStructureFactor() float64 {
	s := 0.0
	nx, ny := e.Lat.Nx, e.Lat.Ny
	for dy := 0; dy < ny; dy++ {
		for dx := 0; dx < nx; dx++ {
			sign := 1.0
			if (dx+dy)%2 == 1 {
				sign = -1
			}
			s += sign * e.Czz[dx+nx*dy]
		}
	}
	return s
}

// FourierPlane computes f(k) = sum_d exp(i k.d) f(d) for a real, in-plane
// displacement function, returning the (real) values on the x-fastest
// momentum grid. Inversion symmetry of translation-averaged correlators
// makes the result real; the imaginary part is discarded (it vanishes to
// roundoff).
func FourierPlane(lat *lattice.Lattice, f []float64) []float64 {
	nx, ny := lat.Nx, lat.Ny
	if len(f) != nx*ny {
		panic("measure: displacement function has wrong length")
	}
	out := make([]float64, nx*ny)
	parallel.For(nx*ny, 4, func(lo, hi int) {
		for kidx := lo; kidx < hi; kidx++ {
			kx := kidx % nx
			ky := kidx / nx
			var re float64
			for dy := 0; dy < ny; dy++ {
				for dx := 0; dx < nx; dx++ {
					phase := 2 * math.Pi * (float64(kx*dx)/float64(nx) + float64(ky*dy)/float64(ny))
					re += f[dx+nx*dy] * math.Cos(phase)
				}
			}
			out[kidx] = re
		}
	})
	return out
}

func modInt(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

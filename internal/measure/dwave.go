package measure

import (
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// D-wave pairing: the cuprate-relevant order parameter lives on bonds with
// a sign-alternating form factor,
//
//	Delta_d(r) = (1/2) sum_delta f(delta) c_{r+delta,dn} c_{r,up},
//	f(+-x) = +1, f(+-y) = -1,
//
// and the equal-time pair correlation Wick-factorizes per configuration as
//
//	<Delta_d(a) Delta_d^dag(b)> =
//	  (1/4) sum_{delta,delta'} f(delta) f(delta')
//	        Gup(a, b) Gdn(a+delta, b+delta').
//
// Comparing the d-wave and s-wave (extended) channels is how DQMC studies
// diagnose the symmetry of the dominant pairing fluctuation.

// DWave holds the d-wave pair correlation map.
type DWave struct {
	Lat *lattice.Lattice
	// Pd[d] = (1/N) sum_r <Delta_d(r+d) Delta_d^dag(r)>.
	Pd []float64
}

// deltaOffsets are the nearest-neighbor bond vectors and their d-wave
// form factors.
var deltaOffsets = [4]struct {
	dx, dy int
	f      float64
}{
	{1, 0, 1}, {-1, 0, 1}, {0, 1, -1}, {0, -1, -1},
}

// MeasureDWave computes the equal-time d-wave pair correlation from the
// two spin Green's functions. The lattice must extend at least 2 sites in
// both in-plane directions.
func MeasureDWave(lat *lattice.Lattice, gup, gdn *mat.Dense) *DWave {
	if lat.Nx < 2 || lat.Ny < 2 {
		panic("measure: d-wave pairing needs Nx, Ny >= 2")
	}
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	out := &DWave{Lat: lat, Pd: make([]float64, planeN)}
	inv := 1 / float64(n)
	for b := 0; b < n; b++ {
		xb, yb, zb := lat.Coords(b)
		base := zb * planeN
		for jp := 0; jp < planeN; jp++ {
			a := base + jp
			xa, ya, _ := lat.Coords(a)
			dx := modInt(xa-xb, nx)
			dy := modInt(ya-yb, ny)
			d := dx + nx*dy
			gupAB := gup.At(a, b)
			if gupAB == 0 {
				continue
			}
			var sum float64
			for _, da := range deltaOffsets {
				ad := lat.Index(xa+da.dx, ya+da.dy, zb)
				for _, db := range deltaOffsets {
					bd := lat.Index(xb+db.dx, yb+db.dy, zb)
					sum += da.f * db.f * gdn.At(ad, bd)
				}
			}
			out.Pd[d] += 0.25 * gupAB * sum * inv
		}
	}
	return out
}

// Q0 returns the uniform d-wave pair structure factor sum_d P_d(d).
func (w *DWave) Q0() float64 {
	var s float64
	for _, v := range w.Pd {
		s += v
	}
	return s
}

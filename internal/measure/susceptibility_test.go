package measure

import (
	"math"
	"testing"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
	"questgo/internal/update"
)

// freeChiZZ computes the exact static spin susceptibility of free
// electrons on the lattice: chi_zz(q) = (2/N) sum_k
// [f(eps_k) - f(eps_{k+q})]/(eps_{k+q} - eps_k), with the degenerate limit
// beta f (1-f).
func freeChiZZ(lat *lattice.Lattice, beta float64, qx, qy int) float64 {
	nx, ny := lat.Nx, lat.Ny
	eps := func(ix, iy int) float64 {
		kx := 2 * math.Pi * float64(ix) / float64(nx)
		ky := 2 * math.Pi * float64(iy) / float64(ny)
		return -2 * (math.Cos(kx) + math.Cos(ky))
	}
	f := func(e float64) float64 { return 1 / (1 + math.Exp(beta*e)) }
	var chi float64
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			e1 := eps(ix, iy)
			e2 := eps(ix+qx, iy+qy)
			if math.Abs(e1-e2) < 1e-12 {
				fe := f(e1)
				chi += beta * fe * (1 - fe)
			} else {
				chi += (f(e1) - f(e2)) / (e2 - e1)
			}
		}
	}
	return 2 * chi / float64(nx*ny)
}

func TestSusceptibilityFreeFermions(t *testing.T) {
	// At U = 0 the measured chi_zz(q) must match the Lindhard-style exact
	// values within Trotter error (the HS field drops out entirely).
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 3.0, 30
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(11))
	chi := MeasureSusceptibility(lat, p, f, 1, 10)
	chiQ := chi.ChiQ()
	for _, kp := range lat.MomentumGrid() {
		want := freeChiZZ(lat, beta, kp.Ix, kp.Iy)
		got := chiQ[kp.Ix+lat.Nx*kp.Iy]
		if math.Abs(got-want) > 0.01*want+0.005 {
			t.Fatalf("chi(q=%d,%d) = %v want %v", kp.Ix, kp.Iy, got, want)
		}
	}
	// Consistency of the helpers.
	if math.Abs(chi.ChiAF()-chiQ[2+4*2]) > 1e-12 {
		t.Fatal("ChiAF inconsistent with grid")
	}
	if math.Abs(chi.ChiUniform()-chiQ[0]) > 1e-12 {
		t.Fatal("ChiUniform inconsistent with grid")
	}
}

func TestSusceptibilityInteractingEnhancedAtAF(t *testing.T) {
	// Repulsion at half filling enhances chi(pi,pi) over the free value
	// on typical configurations drawn from a short equilibrated chain.
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 3.0, 24
	model, err := hubbard.NewModel(lat, 4, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	r := rng.New(13)
	f := hubbard.NewRandomField(L, model.N(), r)
	// Equilibrate briefly.
	swDrv := newTestSweeper(p, f, r)
	for i := 0; i < 20; i++ {
		swDrv.Sweep()
	}
	var acc float64
	const samples = 5
	for s := 0; s < samples; s++ {
		swDrv.Sweep()
		chi := MeasureSusceptibility(lat, p, f, 4, 8)
		acc += chi.ChiAF()
	}
	acc /= samples
	free := freeChiZZ(lat, beta, 2, 2)
	if acc <= free {
		t.Fatalf("interacting chi_AF %v should exceed free value %v", acc, free)
	}
}

func TestDisplacedGreenReverseFreeFermions(t *testing.T) {
	// G(0, tau)(k) = -e^{tau*eps} f(eps) for free electrons.
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 4.0, 20
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(17))
	dtau := beta / float64(L)
	for _, l := range []int{1, 5, 10, 20} {
		gr := greens.DisplacedGreenReverse(p, f, hubbard.Up, l, 5)
		// Diagonalize via the momentum transform of the translation
		// average of -gr (which equals e^{tau eps} f per momentum).
		avg := displacedGFunFromSingle(lat, gr)
		gk := FourierPlane(lat, avg)
		tau := dtau * float64(l)
		for _, kp := range lat.MomentumGrid() {
			eps := -2 * (math.Cos(kp.Kx) + math.Cos(kp.Ky))
			var want float64
			// -e^{tau*eps}/(1+e^{beta*eps}), computed stably.
			if eps >= 0 {
				want = -math.Exp((tau-beta)*eps) / (1 + math.Exp(-beta*eps))
			} else {
				want = -math.Exp(tau*eps) / (1 + math.Exp(beta*eps))
			}
			got := gk[kp.Ix+lat.Nx*kp.Iy]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("G(0,tau=%.2f)(k=%.2f,%.2f) = %v want %v", tau, kp.Kx, kp.Ky, got, want)
			}
		}
	}
}

// displacedGFunFromSingle translation-averages a single-spin displaced
// Green's function matrix (same convention as displacedGFun but without
// spin averaging).
func displacedGFunFromSingle(lat *lattice.Lattice, g *mat.Dense) []float64 {
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	out := make([]float64, planeN)
	inv := 1 / float64(n)
	for r := 0; r < n; r++ {
		xr, yr, zr := lat.Coords(r)
		base := zr * planeN
		for jp := 0; jp < planeN; jp++ {
			j := base + jp
			xj, yj, _ := lat.Coords(j)
			dx := modInt(xj-xr, nx)
			dy := modInt(yj-yr, ny)
			out[dx+nx*dy] += g.At(j, r) * inv
		}
	}
	return out
}

// newTestSweeper builds a Metropolis sweeper for equilibration in tests.
func newTestSweeper(p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand) *update.Sweeper {
	return update.NewSweeper(p, f, r, update.Options{ClusterK: 8})
}

package measure

import (
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// This file implements equal-time pairing correlations, part of QUEST's
// "great variety of physical measurements": the s-wave pair correlation
//
//	P_s(d) = (1/N) sum_r <Delta_{r+d} Delta^dag_r>,
//	Delta_r = c_{r,dn} c_{r,up},
//
// whose uniform sum (the pair structure factor) diagnoses superconducting
// tendencies. For a fixed HS configuration Wick's theorem factorizes the
// four-operator average into a product of the two spin Green's functions:
//
//	<c_{a,dn} c_{a,up} c^dag_{b,up} c^dag_{b,dn}> = Gup(a,b) * Gdn(a,b).
type Pairing struct {
	Lat *lattice.Lattice
	// Ps[d] = (1/N) sum_r <Delta_{r+d} Delta^dag_r>.
	Ps []float64
}

// MeasurePairing computes the s-wave pair correlation map from the two
// spin Green's functions of the current configuration.
func MeasurePairing(lat *lattice.Lattice, gup, gdn *mat.Dense) *Pairing {
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	p := &Pairing{Lat: lat, Ps: make([]float64, planeN)}
	inv := 1 / float64(n)
	for r := 0; r < n; r++ {
		xr, yr, zr := lat.Coords(r)
		base := zr * planeN
		for jp := 0; jp < planeN; jp++ {
			a := base + jp // a = r + d
			xa, ya, _ := lat.Coords(a)
			dx := modInt(xa-xr, nx)
			dy := modInt(ya-yr, ny)
			p.Ps[dx+nx*dy] += gup.At(a, r) * gdn.At(a, r) * inv
		}
	}
	return p
}

// StructureFactor returns the q = 0 pair structure factor sum_d P_s(d).
func (p *Pairing) StructureFactor() float64 {
	var s float64
	for _, v := range p.Ps {
		s += v
	}
	return s
}

// Vertex returns the interaction-driven part of the pair correlation:
// P_s(d) minus its Wick-decoupled single-particle background
// (1/N) sum_r Gup(a,r)Gdn(a,r) computed from *uncorrelated* propagators.
// Callers pass the same map measured on a U = 0 reference; the difference
// isolates the pairing vertex contribution.
func (p *Pairing) Vertex(reference *Pairing) []float64 {
	if len(reference.Ps) != len(p.Ps) {
		panic("measure: pairing vertex reference size mismatch")
	}
	out := make([]float64, len(p.Ps))
	for i := range out {
		out[i] = p.Ps[i] - reference.Ps[i]
	}
	return out
}

package measure

import (
	"math"
	"testing"

	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// naiveDWave recomputes the d-wave correlation with an independent
// quadruple loop for cross-checking.
func naiveDWave(lat *lattice.Lattice, gup, gdn *mat.Dense) []float64 {
	nx, ny := lat.Nx, lat.Ny
	planeN := nx * ny
	n := lat.N()
	out := make([]float64, planeN)
	offsets := [][3]float64{{1, 0, 1}, {-1, 0, 1}, {0, 1, -1}, {0, -1, -1}}
	for b := 0; b < n; b++ {
		xb, yb, zb := lat.Coords(b)
		for a := zb * planeN; a < (zb+1)*planeN; a++ {
			xa, ya, _ := lat.Coords(a)
			d := ((xa-xb)%nx+nx)%nx + nx*(((ya-yb)%ny+ny)%ny)
			var sum float64
			for _, da := range offsets {
				for _, db := range offsets {
					ad := lat.Index(xa+int(da[0]), ya+int(da[1]), zb)
					bd := lat.Index(xb+int(db[0]), yb+int(db[1]), zb)
					sum += da[2] * db[2] * gup.At(a, b) * gdn.At(ad, bd)
				}
			}
			out[d] += 0.25 * sum / float64(n)
		}
	}
	return out
}

func TestDWaveMatchesNaive(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0.2, 2)
	got := MeasureDWave(lat, g, g)
	want := naiveDWave(lat, g, g)
	for d := range want {
		if math.Abs(got.Pd[d]-want[d]) > 1e-13 {
			t.Fatalf("P_d(%d) = %v want %v", d, got.Pd[d], want[d])
		}
	}
}

func TestDWaveInversionSymmetry(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	g := freeGreens(lat, 0, 3)
	w := MeasureDWave(lat, g, g)
	nx := lat.Nx
	for dy := 0; dy < nx; dy++ {
		for dx := 0; dx < nx; dx++ {
			a := w.Pd[dx+nx*dy]
			b := w.Pd[((nx-dx)%nx)+nx*((nx-dy)%nx)]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("P_d not inversion symmetric at (%d,%d)", dx, dy)
			}
		}
	}
}

func TestDWaveOnSitePositive(t *testing.T) {
	// P_d(0) = <|Delta_d|^2>-like and must be positive for a physical G.
	lat := lattice.NewSquare(6, 6, 1)
	g := freeGreens(lat, 0, 3)
	w := MeasureDWave(lat, g, g)
	if w.Pd[0] <= 0 {
		t.Fatalf("P_d(0) = %v, expected positive", w.Pd[0])
	}
	if w.Q0() <= 0 {
		t.Fatalf("Q0 = %v, expected positive", w.Q0())
	}
}

func TestDWaveRejectsThinLattice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Ny = 1")
		}
	}()
	lat := lattice.NewSquare(4, 1, 1)
	g := freeGreens(lat, 0, 1)
	MeasureDWave(lat, g, g)
}

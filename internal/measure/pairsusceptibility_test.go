package measure

import (
	"math"
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/rng"
)

// freePairQ0 is the exact q = 0 s-wave pair-field susceptibility of free
// electrons: (1/N) sum_k tanh(beta*eps/2) / (2*eps), with beta/4 at eps=0.
func freePairQ0(lat *lattice.Lattice, beta float64) float64 {
	var out float64
	for _, kp := range lat.MomentumGrid() {
		eps := -2 * (math.Cos(kp.Kx) + math.Cos(kp.Ky))
		if math.Abs(eps) < 1e-12 {
			out += beta / 4
		} else {
			out += math.Tanh(beta*eps/2) / (2 * eps)
		}
	}
	return out / float64(lat.N())
}

func TestPairSusceptibilityFreeFermions(t *testing.T) {
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 3.0, 30
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(19))
	ps := MeasurePairSusceptibility(lat, p, f, 1, 10)
	want := freePairQ0(lat, beta)
	got := ps.PairQ0()
	if math.Abs(got-want) > 0.01*want+0.005 {
		t.Fatalf("P_s(q=0) = %v want %v", got, want)
	}
}

func TestChargeSusceptibilityFreeFermions(t *testing.T) {
	// Free connected charge susceptibility equals the free spin
	// susceptibility (no cross-spin terms at U = 0).
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 3.0, 30
	model, err := hubbard.NewModel(lat, 0, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	f := hubbard.NewRandomField(L, model.N(), rng.New(23))
	ps := MeasurePairSusceptibility(lat, p, f, 1, 10)
	conn := ps.ChiCConnected(1.0) // half filling: <n> = 1 exactly
	chiQ := FourierPlane(lat, conn)
	for _, kp := range lat.MomentumGrid() {
		want := freeChiZZ(lat, beta, kp.Ix, kp.Iy)
		got := chiQ[kp.Ix+lat.Nx*kp.Iy]
		if math.Abs(got-want) > 0.01*want+0.01 {
			t.Fatalf("chi_c(q=%d,%d) = %v want %v", kp.Ix, kp.Iy, got, want)
		}
	}
}

func TestAttractiveEnhancesPairSusceptibility(t *testing.T) {
	// U < 0 must enhance the q = 0 pair-field susceptibility over the
	// free value on equilibrated configurations.
	lat := lattice.NewSquare(4, 4, 1)
	beta, L := 3.0, 24
	model, err := hubbard.NewModel(lat, -4, 0, beta, L)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(model)
	r := rng.New(29)
	f := hubbard.NewRandomField(L, model.N(), r)
	sw := newTestSweeper(p, f, r)
	for i := 0; i < 20; i++ {
		sw.Sweep()
	}
	var acc float64
	const samples = 5
	for s := 0; s < samples; s++ {
		sw.Sweep()
		acc += MeasurePairSusceptibility(lat, p, f, 4, 8).PairQ0()
	}
	acc /= samples
	free := freePairQ0(lat, beta)
	if acc <= free {
		t.Fatalf("attractive P_s %v should exceed free value %v", acc, free)
	}
	t.Logf("P_s(q=0): attractive %.3f vs free %.3f", acc, free)
}

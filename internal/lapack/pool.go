package lapack

import "sync"

// Factorization-output pools.
//
// QRFactor/QRPFactor run in the innermost stratification loop (once per
// cluster-UDT step), and their outputs — the scalar reflector factors tau
// and, for the pivoted variant, the permutation vector — used to be
// allocated fresh on every call because they escape in the returned QR.
// The stratification call sites consume both within the same step, so the
// buffers are recycled through package pools instead: the factorizations
// draw from getTau/getPivot and the call sites hand the storage back with
// QR.Release / PutPivot once the factors are dead. Callers that keep the
// QR (tests, diagnostics) simply never release it and the buffers fall to
// the garbage collector — correctness never depends on the pool.

// tauPool recycles the tau vectors of released QR factorizations.
var tauPool sync.Pool

// getTau returns a length-k slice for the scalar reflector factors, reusing
// a released buffer when one is large enough. Every entry is written by the
// factorization, so stale pool contents are never observed.
func getTau(k int) []float64 {
	if v, ok := tauPool.Get().(*[]float64); ok && cap(*v) >= k {
		return (*v)[:k]
	}
	return make([]float64, k)
}

// Release returns the factorization's tau buffer to the package pool and
// clears the reference. Call it only when the QR is dead: after Release the
// receiver must not be used for R/RInto/MulQ/FormQ. The factored matrix A
// belongs to the caller and is untouched. Safe on a nil receiver and
// idempotent, so defensive double-releases are harmless.
func (qr *QR) Release() {
	if qr == nil || cap(qr.Tau) == 0 {
		return
	}
	t := qr.Tau
	tauPool.Put(&t)
	qr.Tau = nil
}

// pivotPool recycles the permutation vectors returned by QRPFactor.
var pivotPool sync.Pool

// getPivot returns a length-n pivot slice, reusing a returned buffer when
// one is large enough. QRPFactor initializes every entry.
func getPivot(n int) []int {
	if v, ok := pivotPool.Get().(*[]int); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]int, n)
}

// PutPivot returns a permutation vector obtained from QRPFactor (or
// QRPFactorLevel2) to the package pool. The caller must not use the slice
// afterwards.
func PutPivot(p []int) {
	if cap(p) == 0 {
		return
	}
	pivotPool.Put(&p)
}

package lapack

import "sync"

// Factorization-output pools.
//
// QRFactor/QRPFactor run in the innermost stratification loop (once per
// cluster-UDT step), and their outputs — the scalar reflector factors tau
// and, for the pivoted variant, the permutation vector — used to be
// allocated fresh on every call because they escape in the returned QR.
// The stratification call sites consume both within the same step, so the
// buffers are recycled through package pools instead: the factorizations
// draw from getTau/getPivot and the call sites hand the storage back with
// QR.Release / PutPivot once the factors are dead. Callers that keep the
// QR (tests, diagnostics) simply never release it and the buffers fall to
// the garbage collector — correctness never depends on the pool.

// tauPool recycles the tau vectors of released QR factorizations.
var tauPool sync.Pool

// getTau returns a length-k slice for the scalar reflector factors, reusing
// a released buffer when one is large enough. Every entry is written by the
// factorization, so stale pool contents are never observed.
func getTau(k int) []float64 {
	if v, ok := tauPool.Get().(*[]float64); ok && cap(*v) >= k {
		t := (*v)[:k]
		debugTrackTauGet(t)
		return t
	}
	t := make([]float64, k)
	debugTrackTauGet(t)
	return t
}

// Release returns the factorization's tau buffer to the package pool and
// clears the reference. Call it only when the QR is dead: after Release the
// receiver must not be used for R/RInto/MulQ/FormQ. The factored matrix A
// belongs to the caller and is untouched. Safe on a nil receiver and
// idempotent through the nil-out, so defensive double-releases on the same
// receiver are harmless; a double release through *aliased copies* of the
// QR value would pool the same backing array twice (two later
// factorizations would share storage) and is caught by the qmcdebug
// bookkeeping.
func (qr *QR) Release() {
	if qr == nil || cap(qr.Tau) == 0 {
		return
	}
	t := qr.Tau
	debugTrackTauPut(t)
	tauPool.Put(&t)
	qr.Tau = nil
}

// pivotPool recycles the permutation vectors returned by QRPFactor.
var pivotPool sync.Pool

// getPivot returns a length-n pivot slice, reusing a returned buffer when
// one is large enough. QRPFactor initializes every entry.
func getPivot(n int) []int {
	if v, ok := pivotPool.Get().(*[]int); ok && cap(*v) >= n {
		p := (*v)[:n]
		debugTrackPivotGet(p)
		return p
	}
	p := make([]int, n)
	debugTrackPivotGet(p)
	return p
}

// PutPivot returns a permutation vector obtained from QRPFactor (or
// QRPFactorLevel2) to the package pool and nils the caller's slice, making
// a second PutPivot through the same variable a no-op. (The previous
// by-value signature made double puts silent: the same backing array
// entered the pool twice and two later factorizations aliased it.) A
// double put through a surviving alias is caught by the qmcdebug
// bookkeeping.
func PutPivot(p *[]int) {
	if p == nil || cap(*p) == 0 {
		return
	}
	s := *p
	debugTrackPivotPut(s)
	pivotPool.Put(&s)
	*p = nil
}

package lapack

import (
	"math"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/parallel"
)

// qrpBlock is the panel width of the blocked QRP. Like qrBlock it balances
// the level-2 panel cost (quadratic in the width) against the per-panel
// trailing-update and norm-downdate sweeps for DQMC matrix sizes.
const qrpBlock = 32

// tol3z is sqrt(machine epsilon): the DGEQP3 threshold below which a
// downdated partial column norm has lost too many digits to cancellation
// and must be recomputed from the matrix.
const tol3z = 1.4901161193847656e-08

// QRPFactor computes the QR factorization with column pivoting
// A*P = Q*R, overwriting a with the DGEQRF-style layout and returning the
// permutation: jpvt[j] is the original index of the column that ends up in
// position j (so P in A*P = QR gathers columns in jpvt order).
//
// This is the blocked, level-3 variant in the spirit of the source paper's
// Algorithm 3 (pre-permute by column norm, then ride the blocked QR) and
// of LAPACK's DGEQP3/DLAQPS panel scheme:
//
//  1. Pre-pivot a panel: the qrpBlock remaining columns of largest partial
//     norm are swapped to the elimination frontier in one pass. This is the
//     per-panel version of the paper's descending-norm pre-sort.
//  2. Factor the panel with the classic level-2 pivoted QR (qrpPanel),
//     with both the reflector applications and the residual pivot search
//     confined to the panel columns — O(m·jb²) level-2 work instead of the
//     O(m·n·jb) a per-column trailing update would cost.
//  3. Apply the panel's compact-WY block reflector to the whole trailing
//     matrix as one GEMM-rich larfb — the same machinery the blocked QR
//     uses, so the bulk of the flops run at level-3 speed.
//  4. Downdate all trailing column norms in aggregate (downdateNorms): one
//     panel row per reflector, with the DGEQP3 cancellation safeguard,
//     parallelized across columns like ColumnNorms.
//
// The pivot sequence can differ from the level-2 reference
// (QRPFactorLevel2) when downdating reorders columns mid-panel, but the
// factorization is exact for whatever permutation it returns (A·P = Q·R to
// machine precision) and the diagonal of R remains graded, which is all
// the UDT stratification relies on.
//
//qmc:charges OpQRPFactorizations,OpQRPPanels
//qmc:hot
func QRPFactor(a *mat.Dense) (*QR, []int) {
	obs.Add(obs.OpQRPFactorizations, 1)
	m, n := a.Rows, a.Cols
	k := min(m, n)
	tau := getTau(k)
	jpvt := getPivot(n)
	wk := mat.GetScratch(n, 3)
	norms := wk.Data[0:n]      // partial (trailing) column norms
	onorms := wk.Data[n : 2*n] // reference norms for the safeguard
	work := wk.Data[2*n : 3*n] // reflector workspace
	lwk := mat.GetScratch(qrpBlock, 2)
	v := mat.GetScratch(m, qrpBlock)
	t := mat.GetScratch(qrpBlock, qrpBlock)
	wrk := mat.GetScratch(2*qrpBlock, n)
	defer func() {
		mat.PutScratch(wk)
		mat.PutScratch(lwk)
		mat.PutScratch(v)
		mat.PutScratch(t)
		mat.PutScratch(wrk)
	}()

	//qmc:allow hotalloc -- one closure per factorization, amortized over the O(mn) norm sweep
	parallel.For(n, 16, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			jpvt[j] = j
			norms[j] = blas.Nrm2(a.Col(j))
			onorms[j] = norms[j]
		}
	})

	panels := int64(0)
	for j := 0; j < k; j += qrpBlock {
		jb := min(qrpBlock, k-j)
		// Step 1: greedily swap the jb largest partial norms to the front.
		// Strict > with first-index-wins matches the level-2 tie policy.
		for s := j; s < j+jb; s++ {
			p := s
			for c := s + 1; c < n; c++ {
				if norms[c] > norms[p] {
					p = c
				}
			}
			if p != s {
				blas.Swap(a.Col(p), a.Col(s))
				jpvt[p], jpvt[s] = jpvt[s], jpvt[p]
				norms[p] = norms[s]
				onorms[p] = onorms[s]
			}
		}
		// Step 2: level-2 pivoted QR confined to the panel.
		qrpPanel(a, j, jb, tau[j:j+jb], jpvt, lwk.Data[0:qrpBlock], lwk.Data[qrpBlock:2*qrpBlock], work)
		if j+jb < n {
			// Step 3: one block-reflector GEMM sweep over the trailing matrix.
			vv := v.View(0, 0, m-j, jb)
			copyReflectors(a.View(j, j, m-j, jb), vv)
			tt := t.View(0, 0, jb, jb)
			larft(vv, tau[j:j+jb], tt)
			trail := a.View(j, j+jb, m-j, n-j-jb)
			larfb(vv, tt, true, trail, wrk)
			// Step 4: aggregated norm downdate for the next panel's pivots.
			downdateNorms(a, j, jb, norms, onorms)
		}
		panels++
	}
	obs.Add(obs.OpQRPPanels, panels)
	check.Finite("lapack.QRPFactor", a)
	check.FiniteSlice("lapack.QRPFactor tau", tau)
	return &QR{A: a, Tau: tau}, jpvt
}

// qrpPanel runs the level-2 column-pivoted QR on the pre-pivoted panel
// a[j:m, j:j+jb]: at each step the remaining *panel* column of largest
// partial norm is swapped in (full-height swap, so R rows above the
// frontier stay consistent), one reflector is generated, and only the
// remaining panel columns are updated. Panel-local norms start exact (the
// columns are about to stream through the cache anyway) and are downdated
// with the usual safeguard, so the within-panel elimination order is the
// classic greedy one and the panel's R diagonal is non-increasing.
func qrpPanel(a *mat.Dense, j, jb int, tau []float64, jpvt []int, lnorms, lonorms, work []float64) {
	m := a.Rows
	lnorms = lnorms[:jb]
	lonorms = lonorms[:jb]
	for s := 0; s < jb; s++ {
		lnorms[s] = blas.Nrm2(a.Col(j + s)[j:])
		lonorms[s] = lnorms[s]
	}
	for i := 0; i < jb; i++ {
		ji := j + i
		p := i
		for s := i + 1; s < jb; s++ {
			if lnorms[s] > lnorms[p] {
				p = s
			}
		}
		if p != i {
			blas.Swap(a.Col(j+p), a.Col(ji))
			jpvt[j+p], jpvt[ji] = jpvt[ji], jpvt[j+p]
			lnorms[p] = lnorms[i]
			lonorms[p] = lonorms[i]
		}
		col := a.Col(ji)
		beta, t := larfg(col[ji], col[ji+1:])
		tau[i] = t
		if i+1 < jb && t != 0 {
			save := col[ji]
			col[ji] = 1
			trail := a.View(ji, ji+1, m-ji, jb-i-1)
			larf(col[ji:], t, trail, work)
			col[ji] = save
		}
		col[ji] = beta
		for s := i + 1; s < jb; s++ {
			if lnorms[s] == 0 {
				continue
			}
			r := math.Abs(a.At(ji, j+s)) / lnorms[s]
			temp := 1 - r*r
			if temp < 0 {
				temp = 0
			}
			temp2 := temp * (lnorms[s] / lonorms[s]) * (lnorms[s] / lonorms[s])
			if temp2 <= tol3z {
				if ji+1 < m {
					lnorms[s] = blas.Nrm2(a.Col(j + s)[ji+1:])
				} else {
					lnorms[s] = 0
				}
				lonorms[s] = lnorms[s]
			} else {
				lnorms[s] *= math.Sqrt(temp)
			}
		}
	}
}

// downdateNorms downdates the partial norms of the trailing columns after a
// whole panel's block update, preserving the DGEQP3 cancellation safeguard.
// Reflector i of the panel only ever modifies rows >= j+i, so after the
// aggregated larfb, rows j..j+jb-1 of a trailing column hold exactly the
// values the level-2 algorithm would have downdated with step by step.
//
// The per-step safeguard collapses to a single test: in squared form,
// LAPACK's recompute condition temp·(norm/onorm)² <= tol3z at step i reads
// ns_i <= tol3z·onorm², where ns_i is the downdated squared norm after
// removing rows j..j+i and onorm is fixed between recomputes. ns_i decreases
// monotonically in i, so some step trips iff the final ns does — and a
// tripped column is recomputed from the fully updated frontier j+jb no
// matter which step tripped. The whole walk therefore reduces to one dot
// product of the jb panel rows per column plus one compare. Independent per
// column, hence parallelized like ColumnNorms.
//
//qmc:hot
func downdateNorms(a *mat.Dense, j, jb int, norms, onorms []float64) {
	n := a.Cols
	//qmc:allow hotalloc -- one closure per panel, amortized over the O((n-j)·jb) downdate
	parallel.For(n-j-jb, 32, func(lo, hi int) {
		for c := j + jb + lo; c < j+jb+hi; c++ {
			if norms[c] == 0 {
				continue
			}
			col := a.Col(c)
			head := col[j : j+jb]
			ns := norms[c]*norms[c] - blas.Dot(head, head)
			if ns <= tol3z*onorms[c]*onorms[c] {
				norms[c] = blas.Nrm2(col[j+jb:])
				onorms[c] = norms[c]
			} else {
				norms[c] = math.Sqrt(ns)
			}
		}
	})
}

// QRPFactorLevel2 is the retained classic DGEQPF-style reference: at each
// step the remaining column of largest partial norm is swapped in, one
// Householder reflector is generated, and the trailing matrix is updated
// with a matrix-vector product and a rank-1 update. Column norms are
// downdated with the usual cancellation safeguard and recomputed when
// unreliable.
//
// This routine is intentionally level-2 bound — pivot selection needs the
// updated norms of every remaining column before the next reflector can be
// chosen, which is exactly the serialization the blocked QRPFactor (and,
// more aggressively, the paper's whole-matrix pre-pivoting) removes. It is
// kept as the equivalence oracle for the blocked path and as the baseline
// series of cmd/kernels.
//
//qmc:charges OpQRPFactorizations
//qmc:hot
func QRPFactorLevel2(a *mat.Dense) (*QR, []int) {
	obs.Add(obs.OpQRPFactorizations, 1)
	m, n := a.Rows, a.Cols
	k := min(m, n)
	tau := getTau(k)
	jpvt := getPivot(n)
	wk := mat.GetScratch(n, 3) // pooled: norms | onorms | gemv workspace
	norms := wk.Data[0:n]      // partial (trailing) column norms
	onorms := wk.Data[n : 2*n] // reference norms for the safeguard
	work := wk.Data[2*n : 3*n] // gemv workspace
	defer mat.PutScratch(wk)

	//qmc:allow hotalloc -- one closure per factorization, amortized over the O(mn) norm sweep
	parallel.For(n, 16, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			jpvt[j] = j
			norms[j] = blas.Nrm2(a.Col(j))
			onorms[j] = norms[j]
		}
	})

	for i := 0; i < k; i++ {
		// Pivot: remaining column with the largest partial norm.
		p := i
		for j := i + 1; j < n; j++ {
			if norms[j] > norms[p] {
				p = j
			}
		}
		if p != i {
			blas.Swap(a.Col(p), a.Col(i))
			jpvt[p], jpvt[i] = jpvt[i], jpvt[p]
			norms[p] = norms[i]
			onorms[p] = onorms[i]
		}
		col := a.Col(i)
		beta, t := larfg(col[i], col[i+1:])
		tau[i] = t
		if i+1 < n && t != 0 {
			save := col[i]
			col[i] = 1
			trail := a.View(i, i+1, m-i, n-i-1)
			larf(col[i:], t, trail, work)
			col[i] = save
		}
		col[i] = beta
		// Downdate the partial norms of the trailing columns.
		for j := i + 1; j < n; j++ {
			if norms[j] == 0 {
				continue
			}
			r := math.Abs(a.At(i, j)) / norms[j]
			temp := 1 - r*r
			if temp < 0 {
				temp = 0
			}
			temp2 := temp * (norms[j] / onorms[j]) * (norms[j] / onorms[j])
			if temp2 <= tol3z {
				// Cancellation: recompute from scratch.
				if i+1 < m {
					norms[j] = blas.Nrm2(a.Col(j)[i+1:])
				} else {
					norms[j] = 0
				}
				onorms[j] = norms[j]
			} else {
				norms[j] *= math.Sqrt(temp)
			}
		}
	}
	check.Finite("lapack.QRPFactorLevel2", a)
	check.FiniteSlice("lapack.QRPFactorLevel2 tau", tau)
	return &QR{A: a, Tau: tau}, jpvt
}

// ColumnNorms computes the Euclidean norm of every column of a in parallel.
// This is the pre-pivoting step of the paper's Algorithm 3: the permutation
// that sorts these norms in descending order replaces per-step pivoting.
func ColumnNorms(a *mat.Dense, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, a.Cols)
	}
	parallel.For(a.Cols, 8, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = blas.Nrm2(a.Col(j))
		}
	})
	return dst
}

package lapack

import (
	"math"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/parallel"
)

// QRPFactor computes the QR factorization with column pivoting
// A*P = Q*R, overwriting a with the DGEQRF-style layout and returning the
// permutation: jpvt[j] is the original index of the column that ends up in
// position j (so P in A*P = QR gathers columns in jpvt order).
//
// The implementation follows DGEQPF/DGEQP3: at each step the remaining
// column of largest partial norm is swapped in, one Householder reflector is
// generated, and the trailing matrix is updated with a matrix-vector product
// and a rank-1 update. Column norms are downdated with the usual
// cancellation safeguard and recomputed when unreliable.
//
// This routine is intentionally level-2 bound — pivot selection needs the
// updated norms of every remaining column before the next reflector can be
// chosen, which is exactly the serialization the paper's pre-pivoting
// variant removes.
//
//qmc:charges OpQRPFactorizations
//qmc:hot
func QRPFactor(a *mat.Dense) (*QR, []int) {
	obs.Add(obs.OpQRPFactorizations, 1)
	m, n := a.Rows, a.Cols
	k := min(m, n)
	tau := make([]float64, k)  //qmc:allow hotalloc -- escapes in the returned QR
	jpvt := make([]int, n)     //qmc:allow hotalloc -- escapes as the returned pivot vector
	wk := mat.GetScratch(n, 3) // pooled: norms | onorms | gemv workspace
	norms := wk.Data[0:n]      // partial (trailing) column norms
	onorms := wk.Data[n : 2*n] // reference norms for the safeguard
	work := wk.Data[2*n : 3*n] // gemv workspace
	defer mat.PutScratch(wk)
	const tol3z = 1.4901161193847656e-08 // sqrt(machine epsilon)

	//qmc:allow hotalloc -- one closure per factorization, amortized over the O(mn) norm sweep
	parallel.For(n, 16, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			jpvt[j] = j
			norms[j] = blas.Nrm2(a.Col(j))
			onorms[j] = norms[j]
		}
	})

	for i := 0; i < k; i++ {
		// Pivot: remaining column with the largest partial norm.
		p := i
		for j := i + 1; j < n; j++ {
			if norms[j] > norms[p] {
				p = j
			}
		}
		if p != i {
			blas.Swap(a.Col(p), a.Col(i))
			jpvt[p], jpvt[i] = jpvt[i], jpvt[p]
			norms[p] = norms[i]
			onorms[p] = onorms[i]
		}
		col := a.Col(i)
		beta, t := larfg(col[i], col[i+1:])
		tau[i] = t
		if i+1 < n && t != 0 {
			save := col[i]
			col[i] = 1
			trail := a.View(i, i+1, m-i, n-i-1)
			larf(col[i:], t, trail, work)
			col[i] = save
		}
		col[i] = beta
		// Downdate the partial norms of the trailing columns.
		for j := i + 1; j < n; j++ {
			if norms[j] == 0 {
				continue
			}
			r := math.Abs(a.At(i, j)) / norms[j]
			temp := 1 - r*r
			if temp < 0 {
				temp = 0
			}
			temp2 := temp * (norms[j] / onorms[j]) * (norms[j] / onorms[j])
			if temp2 <= tol3z {
				// Cancellation: recompute from scratch.
				if i+1 < m {
					norms[j] = blas.Nrm2(a.Col(j)[i+1:])
				} else {
					norms[j] = 0
				}
				onorms[j] = norms[j]
			} else {
				norms[j] *= math.Sqrt(temp)
			}
		}
	}
	check.Finite("lapack.QRPFactor", a)
	check.FiniteSlice("lapack.QRPFactor tau", tau)
	return &QR{A: a, Tau: tau}, jpvt
}

// ColumnNorms computes the Euclidean norm of every column of a in parallel.
// This is the pre-pivoting step of the paper's Algorithm 3: the permutation
// that sorts these norms in descending order replaces per-step pivoting.
func ColumnNorms(a *mat.Dense, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, a.Cols)
	}
	parallel.For(a.Cols, 8, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = blas.Nrm2(a.Col(j))
		}
	})
	return dst
}

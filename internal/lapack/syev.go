package lapack

import (
	"fmt"
	"math"

	"questgo/internal/mat"
)

// SymEig computes the full eigendecomposition A = Z * diag(d) * Z^T of a
// symmetric matrix. It returns the eigenvalues in ascending order and the
// orthonormal eigenvectors as the columns of Z. The input is not modified.
//
// DQMC needs this once per simulation: the hopping matrix K is symmetric and
// B = exp(-dtau*K), B^{-1} = exp(+dtau*K) are formed from its spectrum. The
// implementation is the classic Householder tridiagonalization (TRED2)
// followed by implicit-shift QL iteration (TQL2), in the EISPACK/JAMA
// formulation.
func SymEig(a *mat.Dense) ([]float64, *mat.Dense) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: SymEig expects a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	v := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	tql2(v, d, e)
	return d, v
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form,
// accumulating the orthogonal transformation in v. On return d holds the
// diagonal and e the subdiagonal (e[0] = 0).
func tred2(v *mat.Dense, d, e []float64) {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Set(k, j, v.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Set(k, j, v.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 diagonalizes the symmetric tridiagonal matrix (d, e) with implicit
// QL iterations, accumulating the rotations into v, and sorts the spectrum
// ascending.
func tql2(v *mat.Dense, d, e []float64) {
	n := v.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	f, tst1 := 0.0, 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		if t := math.Abs(d[l]) + math.Abs(e[l]); t > tst1 {
			tst1 = t
		}
		m := l
		for m < n && math.Abs(e[m]) > eps*tst1 {
			m++
		}
		if m > l {
			for {
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate the rotation into the eigenvector matrix.
					ci := v.Col(i)
					ci1 := v.Col(i + 1)
					for k := 0; k < n; k++ {
						h = ci1[k]
						ci1[k] = s*ci[k] + c*h
						ci[k] = c*ci[k] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	// Sort eigenvalues ascending, permuting eigenvectors accordingly.
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			ci, ck := v.Col(i), v.Col(k)
			for r := 0; r < n; r++ {
				ci[r], ck[r] = ck[r], ci[r]
			}
		}
	}
}

// SymExp returns exp(s*A) and exp(-s*A) for a symmetric matrix A via its
// eigendecomposition: exp(sA) = Z diag(e^{s d}) Z^T. Both exponentials share
// one factorization since DQMC always needs B and B^{-1} together.
func SymExp(a *mat.Dense, s float64) (pos, neg *mat.Dense) {
	n := a.Rows
	d, z := SymEig(a)
	pos = expFromEig(z, d, s, n)
	neg = expFromEig(z, d, -s, n)
	return pos, neg
}

func expFromEig(z *mat.Dense, d []float64, s float64, n int) *mat.Dense {
	scaled := z.Clone()
	ex := make([]float64, n)
	for i, v := range d {
		ex[i] = math.Exp(s * v)
	}
	scaled.ScaleCols(ex)
	out := mat.New(n, n)
	// out = scaled * Z^T
	gemmNT(scaled, z, out)
	return out
}

// gemmNT computes out = a * b^T without importing the blas package (which
// would create an import cycle risk if blas ever needs lapack); the matrix
// is formed once per simulation so a simple loop suffices.
func gemmNT(a, b, out *mat.Dense) {
	m, n, k := a.Rows, b.Rows, a.Cols
	for j := 0; j < n; j++ {
		oc := out.Col(j)
		for i := range oc {
			oc[i] = 0
		}
		for kk := 0; kk < k; kk++ {
			f := b.At(j, kk)
			if f == 0 {
				continue
			}
			ac := a.Col(kk)
			for i := 0; i < m; i++ {
				oc[i] += f * ac[i]
			}
		}
	}
}

package lapack

import (
	"fmt"
	"questgo/internal/check"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// qrBlock is the panel width of the blocked QR. The panel itself is
// factored with a second level of blocking (geqrPanel, inner width
// qrInner), which keeps the truly level-2 work quadratic in qrInner rather
// than qrBlock — so the outer width can be sized for the trailing larfb
// GEMMs alone. 32/16 measured fastest at the DQMC sizes (a few hundred to
// ~1024) on the dev container, with the two-level split worth ~10-15% over
// a plain geqr2 panel at N >= 512.
const qrBlock = 32

// qrInner is the sub-panel width of the two-level panel factorization:
// columns are eliminated unblocked qrInner at a time, and the rest of the
// panel is updated through the compact-WY block reflector (a skinny GEMM)
// instead of column-at-a-time larf sweeps.
const qrInner = 16

// QR holds a Householder QR factorization computed in place: R occupies the
// upper triangle of A and the reflector vectors V the strict lower
// trapezoid, with scalar factors in Tau (LAPACK DGEQRF layout).
type QR struct {
	A   *mat.Dense
	Tau []float64
}

// QRFactor computes the blocked Householder QR factorization of a,
// overwriting it. This mirrors DGEQRF: unblocked panel factorization,
// block reflector T formation, and a GEMM-rich trailing update — the
// "mostly level 3" routine of the paper's Figure 1.
//
//qmc:charges OpQRFactorizations
//qmc:hot
func QRFactor(a *mat.Dense) *QR {
	obs.Add(obs.OpQRFactorizations, 1)
	m, n := a.Rows, a.Cols
	k := min(m, n)
	// tau escapes in the returned QR; it comes from the package pool and
	// call sites hand it back with Release. The panel/reflector scratch is
	// identical on every call for a given shape, so it comes from the
	// shared pool.
	tau := getTau(k)
	wk := mat.GetScratch(n, 1)
	work := wk.Data[:n]
	t := mat.GetScratch(qrBlock, qrBlock)
	v := mat.GetScratch(m, qrBlock)
	wrk := mat.GetScratch(2*qrBlock, n)
	defer func() {
		mat.PutScratch(wk)
		mat.PutScratch(t)
		mat.PutScratch(v)
		mat.PutScratch(wrk)
	}()
	for j := 0; j < k; j += qrBlock {
		jb := min(qrBlock, k-j)
		panel := a.View(j, j, m-j, jb)
		geqrPanel(panel, tau[j:j+jb], work, v, t, wrk)
		if j+jb < n {
			// Copy the panel reflectors with explicit unit diagonal.
			vv := v.View(0, 0, m-j, jb)
			copyReflectors(panel, vv)
			tt := t.View(0, 0, jb, jb)
			larft(vv, tau[j:j+jb], tt)
			trail := a.View(j, j+jb, m-j, n-j-jb)
			larfb(vv, tt, true, trail, wrk)
		}
	}
	check.Finite("lapack.QRFactor", a)
	check.FiniteSlice("lapack.QRFactor tau", tau)
	return &QR{A: a, Tau: tau}
}

// geqrPanel factors an m x jb panel in place like geqr2, but with a second
// level of blocking: sub-panels of qrInner columns are eliminated unblocked
// and then applied to the rest of the panel through their compact-WY block
// reflector, so most of the panel work runs as skinny GEMMs instead of
// column-at-a-time larf sweeps. v, t and wrk are the caller's (larger)
// reflector scratch; their contents are scratch here and are rebuilt by the
// caller's whole-panel larft afterwards.
func geqrPanel(a *mat.Dense, tau, work []float64, v, t, wrk *mat.Dense) {
	m, jb := a.Rows, a.Cols
	k := min(m, jb)
	for j := 0; j < k; j += qrInner {
		ib := min(qrInner, k-j)
		sub := a.View(j, j, m-j, ib)
		geqr2(sub, tau[j:j+ib], work)
		if j+ib < jb {
			vv := v.View(0, 0, m-j, ib)
			copyReflectors(sub, vv)
			tt := t.View(0, 0, ib, ib)
			larft(vv, tau[j:j+ib], tt)
			trail := a.View(j, j+ib, m-j, jb-j-ib)
			larfb(vv, tt, true, trail, wrk)
		}
	}
}

// geqr2 is the unblocked Householder QR of a panel (DGEQR2).
func geqr2(a *mat.Dense, tau []float64, work []float64) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	for i := 0; i < k; i++ {
		col := a.Col(i)
		beta, t := larfg(col[i], col[i+1:])
		tau[i] = t
		if i+1 < n && t != 0 {
			// Apply H_i to the trailing columns. Temporarily set the unit
			// element so the reflector vector is contiguous.
			save := col[i]
			col[i] = 1
			trail := a.View(i, i+1, m-i, n-i-1)
			larf(col[i:], t, trail, work)
			col[i] = save
		}
		col[i] = beta
	}
}

// copyReflectors copies the unit lower trapezoid of the factored panel into
// dst, zeroing the upper triangle and setting the unit diagonal.
func copyReflectors(panel, dst *mat.Dense) {
	m, jb := panel.Rows, panel.Cols
	for c := 0; c < jb; c++ {
		dcol := dst.Col(c)
		pcol := panel.Col(c)
		for r := 0; r < c && r < m; r++ {
			dcol[r] = 0
		}
		if c < m {
			dcol[c] = 1
		}
		for r := c + 1; r < m; r++ {
			dcol[r] = pcol[r]
		}
	}
}

// R extracts the upper triangular factor into a new k x n matrix,
// k = min(m, n).
func (qr *QR) R() *mat.Dense {
	m, n := qr.A.Rows, qr.A.Cols
	r := mat.New(min(m, n), n)
	qr.RInto(r)
	return r
}

// RInto writes the upper triangular factor into r, which must be k x n with
// k = min(m, n). Entries below the diagonal are zeroed. Unlike R it performs
// no allocation, so the stratification loop can reuse one pooled matrix.
//
//qmc:hot
func (qr *QR) RInto(r *mat.Dense) {
	m, n := qr.A.Rows, qr.A.Cols
	k := min(m, n)
	if r.Rows != k || r.Cols != n {
		panic(fmt.Sprintf("lapack: RInto dimension mismatch: r is %dx%d, want %dx%d", r.Rows, r.Cols, k, n))
	}
	for j := 0; j < n; j++ {
		src := qr.A.Col(j)
		dst := r.Col(j)
		top := min(j+1, k)
		copy(dst[:top], src[:top])
		for i := top; i < k; i++ {
			dst[i] = 0
		}
	}
}

// MulQ applies Q (trans=false) or Q^T (trans=true) from the left to c in
// place, using the block reflectors (DORMQR, side = left).
//
//qmc:hot
func (qr *QR) MulQ(trans bool, c *mat.Dense) {
	m := qr.A.Rows
	if c.Rows != m {
		panic(fmt.Sprintf("lapack: MulQ dimension mismatch: Q is %dx%d but C has %d rows", m, m, c.Rows))
	}
	k := len(qr.Tau)
	v := mat.GetScratch(m, qrBlock)
	t := mat.GetScratch(qrBlock, qrBlock)
	wrk := mat.GetScratch(2*qrBlock, c.Cols)
	defer func() {
		mat.PutScratch(v)
		mat.PutScratch(t)
		mat.PutScratch(wrk)
	}()
	//qmc:allow hotalloc -- one closure per MulQ call, amortized over O(m n k) reflector work
	apply := func(j, jb int) {
		vv := v.View(0, 0, m-j, jb)
		copyReflectors(qr.A.View(j, j, m-j, jb), vv)
		tt := t.View(0, 0, jb, jb)
		larft(vv, qr.Tau[j:j+jb], tt)
		sub := c.View(j, 0, m-j, c.Cols)
		larfb(vv, tt, trans, sub, wrk)
	}
	if trans {
		// Q^T = H_k^T ... H_1^T: blocks in forward order.
		for j := 0; j < k; j += qrBlock {
			apply(j, min(qrBlock, k-j))
		}
		return
	}
	// Q = H_1 ... H_k: blocks in reverse order.
	first := ((k - 1) / qrBlock) * qrBlock
	for j := first; j >= 0; j -= qrBlock {
		apply(j, min(qrBlock, k-j))
	}
}

// FormQ writes the explicit m x m orthogonal factor into q.
func (qr *QR) FormQ(q *mat.Dense) {
	m := qr.A.Rows
	if q.Rows != m || q.Cols != m {
		panic(fmt.Sprintf("lapack: FormQ expects a %dx%d destination, got %dx%d", m, m, q.Rows, q.Cols))
	}
	q.SetIdentity()
	qr.MulQ(false, q)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package lapack

import (
	"testing"

	"questgo/internal/mat"
	"questgo/internal/rng"
)

func testMatrix(rows, cols int, seed uint64) *mat.Dense {
	return randomDense(rng.New(seed), rows, cols)
}

// TestReleaseIdempotent: a second Release on the same QR must be a no-op
// (the tau reference is nilled on the first), so defensive double-releases
// never pool the same backing array twice.
func TestReleaseIdempotent(t *testing.T) {
	m := testMatrix(8, 8, 3)
	qr := QRFactor(m)
	if cap(qr.Tau) == 0 {
		t.Fatal("factorization has no tau buffer")
	}
	qr.Release()
	if qr.Tau != nil {
		t.Fatal("Release did not nil the tau reference")
	}
	qr.Release() // must be a no-op, not a second pool insert
	// Two subsequent factorizations must not alias: if the double release
	// had pooled the buffer twice, these would share tau storage.
	qr1 := QRFactor(testMatrix(8, 8, 5))
	qr2 := QRFactor(testMatrix(8, 8, 7))
	if len(qr1.Tau) > 0 && len(qr2.Tau) > 0 && &qr1.Tau[0] == &qr2.Tau[0] {
		t.Fatal("two live factorizations share a tau buffer after double release")
	}
	qr1.Release()
	qr2.Release()
}

// TestPutPivotIdempotent: PutPivot nils the caller's slice, so a second put
// through the same variable is a no-op and two later factorizations can
// never be handed the same pivot storage.
func TestPutPivotIdempotent(t *testing.T) {
	qr, perm := QRPFactor(testMatrix(8, 8, 11))
	qr.Release()
	if len(perm) == 0 {
		t.Fatal("QRPFactor returned no pivot")
	}
	PutPivot(&perm)
	if perm != nil {
		t.Fatal("PutPivot did not nil the caller's slice")
	}
	PutPivot(&perm) // second put through the same variable: no-op
	PutPivot(nil)   // nil pointer: no-op

	qr1, p1 := QRPFactor(testMatrix(8, 8, 13))
	qr2, p2 := QRPFactor(testMatrix(8, 8, 17))
	if len(p1) > 0 && len(p2) > 0 && &p1[0] == &p2[0] {
		t.Fatal("two live factorizations share a pivot buffer after double put")
	}
	qr1.Release()
	qr2.Release()
	PutPivot(&p1)
	PutPivot(&p2)
}

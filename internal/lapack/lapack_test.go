package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"questgo/internal/blas"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func randomDense(r *rng.Rand, rows, cols int) *mat.Dense {
	m := mat.New(rows, cols)
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

// orthoError returns ||Q^T Q - I||_max.
func orthoError(q *mat.Dense) float64 {
	n := q.Cols
	qtq := mat.New(n, n)
	blas.Gemm(true, false, 1, q, q, 0, qtq)
	id := mat.Identity(n)
	qtq.Add(-1, id)
	return qtq.MaxAbs()
}

func TestQRReconstruct(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][2]int{{8, 8}, {40, 40}, {65, 33}, {100, 100}, {33, 65}} {
		m, n := dims[0], dims[1]
		a := randomDense(r, m, n)
		orig := a.Clone()
		qr := QRFactor(a)
		rr := qr.R()
		// Reconstruct: Q * R.
		qrm := mat.New(m, n)
		full := mat.New(m, n)
		for j := 0; j < n; j++ {
			copy(full.Col(j)[:rr.Rows], rr.Col(j))
		}
		qrm.CopyFrom(full)
		qr.MulQ(false, qrm)
		if !qrm.EqualApprox(orig, 1e-12*float64(m)) {
			t.Fatalf("QR reconstruction failed for %dx%d", m, n)
		}
	}
}

func TestQRFormQOrthogonal(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{5, 31, 32, 33, 64, 97} {
		a := randomDense(r, n, n)
		qr := QRFactor(a)
		q := mat.New(n, n)
		qr.FormQ(q)
		if e := orthoError(q); e > 1e-12*float64(n) {
			t.Fatalf("n=%d: Q not orthogonal, err=%g", n, e)
		}
	}
}

func TestQRMulQTransposeInverse(t *testing.T) {
	r := rng.New(3)
	n := 50
	a := randomDense(r, n, n)
	qr := QRFactor(a)
	c := randomDense(r, n, 7)
	orig := c.Clone()
	qr.MulQ(false, c)
	qr.MulQ(true, c)
	if !c.EqualApprox(orig, 1e-11) {
		t.Fatal("Q^T Q C != C")
	}
}

func TestQRPReconstructAndGrading(t *testing.T) {
	r := rng.New(4)
	n := 60
	a := randomDense(r, n, n)
	// Impose a strong column grading like the stratified matrices have.
	for j := 0; j < n; j++ {
		blas.Scal(math.Pow(10, float64(-j)/6), a.Col(j))
	}
	orig := a.Clone()
	qr, jpvt := QRPFactor(a)
	rr := qr.R()
	// |R| diagonal must be non-increasing (the graded structure).
	for i := 1; i < n; i++ {
		if math.Abs(rr.At(i, i)) > math.Abs(rr.At(i-1, i-1))*(1+1e-12) {
			t.Fatalf("R diagonal not graded at %d: %g > %g", i, rr.At(i, i), rr.At(i-1, i-1))
		}
	}
	// Reconstruct Q*R and compare with A*P (columns gathered by jpvt).
	qrm := mat.New(n, n)
	for j := 0; j < n; j++ {
		copy(qrm.Col(j)[:rr.Rows], rr.Col(j))
	}
	qr.MulQ(false, qrm)
	ap := mat.New(n, n)
	for j := 0; j < n; j++ {
		copy(ap.Col(j), orig.Col(jpvt[j]))
	}
	if !qrm.EqualApprox(ap, 1e-12) {
		t.Fatal("QRP reconstruction failed")
	}
}

func TestQRPPermutationIsValid(t *testing.T) {
	r := rng.New(5)
	n := 37
	a := randomDense(r, n, n)
	_, jpvt := QRPFactor(a)
	seen := make([]bool, n)
	for _, p := range jpvt {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("invalid permutation %v", jpvt)
		}
		seen[p] = true
	}
}

func TestColumnNorms(t *testing.T) {
	r := rng.New(6)
	a := randomDense(r, 20, 9)
	norms := ColumnNorms(a, nil)
	for j := 0; j < 9; j++ {
		want := blas.Nrm2(a.Col(j))
		if math.Abs(norms[j]-want) > 1e-14 {
			t.Fatalf("ColumnNorms[%d] = %v want %v", j, norms[j], want)
		}
	}
}

func TestLUSolve(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 5, 31, 32, 33, 100} {
		a := randomDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		x := randomDense(r, n, 3)
		b := mat.New(n, 3)
		blas.Gemm(false, false, 1, a, x, 0, b)
		lu, err := LUFactor(a.Clone())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lu.Solve(b)
		if !b.EqualApprox(x, 1e-9) {
			t.Fatalf("n=%d: LU solve inaccurate", n)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := mat.New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1) // third row/col zero
	if _, err := LUFactor(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUDeterminant(t *testing.T) {
	// det of [[4,3],[6,3]] = 12-18 = -6.
	a := mat.New(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 3)
	a.Set(1, 0, 6)
	a.Set(1, 1, 3)
	lu, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	logd, sign := lu.LogDet()
	if sign != -1 || math.Abs(math.Exp(logd)-6) > 1e-12 {
		t.Fatalf("LogDet = (%v, %v)", logd, sign)
	}
}

func TestLUInvert(t *testing.T) {
	r := rng.New(8)
	n := 40
	a := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	lu, err := LUFactor(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	inv := mat.New(n, n)
	lu.Invert(inv)
	prod := mat.New(n, n)
	blas.Gemm(false, false, 1, a, inv, 0, prod)
	if !prod.EqualApprox(mat.Identity(n), 1e-9) {
		t.Fatal("A * A^{-1} != I")
	}
}

func TestSymEigDiagonal(t *testing.T) {
	d := mat.Diag([]float64{3, -1, 2})
	vals, vecs := SymEig(d)
	want := []float64{-1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-13 {
			t.Fatalf("vals = %v", vals)
		}
	}
	if e := orthoError(vecs); e > 1e-13 {
		t.Fatalf("eigenvectors not orthogonal: %g", e)
	}
}

func TestSymEigReconstruct(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{2, 5, 16, 33, 64} {
		a := randomDense(r, n, n)
		// Symmetrize.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				v := (a.At(i, j) + a.At(j, i)) / 2
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, z := SymEig(a)
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
		if e := orthoError(z); e > 1e-11*float64(n) {
			t.Fatalf("n=%d: Z not orthogonal (%g)", n, e)
		}
		// Reconstruct Z diag Z^T.
		zd := z.Clone()
		zd.ScaleCols(vals)
		rec := mat.New(n, n)
		blas.Gemm(false, true, 1, zd, z, 0, rec)
		if !rec.EqualApprox(a, 1e-11*float64(n)) {
			t.Fatalf("n=%d: eigendecomposition does not reconstruct A", n)
		}
	}
}

func TestSymExpInverse(t *testing.T) {
	r := rng.New(10)
	n := 24
	a := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	pos, neg := SymExp(a, 0.3)
	prod := mat.New(n, n)
	blas.Gemm(false, false, 1, pos, neg, 0, prod)
	if !prod.EqualApprox(mat.Identity(n), 1e-11) {
		t.Fatal("exp(sA) * exp(-sA) != I")
	}
}

func TestSymExpZeroIsIdentity(t *testing.T) {
	a := mat.Diag([]float64{1, 2, 3})
	pos, _ := SymExp(a, 0)
	if !pos.EqualApprox(mat.Identity(3), 1e-14) {
		t.Fatal("exp(0) != I")
	}
}

// Property: LU solve residual is tiny for well-conditioned random systems.
func TestQuickLUResidual(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(30)
		a := randomDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		x := randomDense(r, n, 1)
		b := mat.New(n, 1)
		blas.Gemm(false, false, 1, a, x, 0, b)
		lu, err := LUFactor(a.Clone())
		if err != nil {
			return false
		}
		lu.Solve(b)
		return b.EqualApprox(x, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: QR of a random matrix has orthogonal Q and upper-triangular R
// with QR = A.
func TestQuickQRProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0x5555)
		m := 2 + r.Intn(40)
		n := 1 + r.Intn(m)
		a := randomDense(r, m, n)
		orig := a.Clone()
		qr := QRFactor(a)
		rr := qr.R()
		for j := 0; j < rr.Cols; j++ {
			for i := j + 1; i < rr.Rows; i++ {
				if rr.At(i, j) != 0 {
					return false
				}
			}
		}
		rec := mat.New(m, n)
		for j := 0; j < n; j++ {
			copy(rec.Col(j)[:rr.Rows], rr.Col(j))
		}
		qr.MulQ(false, rec)
		return rec.EqualApprox(orig, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: QRP and QR of the same matrix produce R factors with the same
// set of singular values (their column spans match); cheap proxy — the
// absolute products of diagonals (|det|) agree.
func TestQuickQRPDetInvariant(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) ^ 0x9999)
		n := 2 + r.Intn(20)
		a := randomDense(r, n, n)
		qr1 := QRFactor(a.Clone())
		qr2, _ := QRPFactor(a.Clone())
		ld1, ld2 := 0.0, 0.0
		r1, r2 := qr1.R(), qr2.R()
		for i := 0; i < n; i++ {
			ld1 += math.Log(math.Abs(r1.At(i, i)))
			ld2 += math.Log(math.Abs(r2.At(i, i)))
		}
		return math.Abs(ld1-ld2) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Package lapack provides the dense factorizations used by the DQMC
// Green's function kernels: blocked Householder QR (the DGEQRF of the
// paper's Figure 1), column-pivoted QR (DGEQP3), LU with partial pivoting
// (the final solve of the stratification), and a symmetric eigensolver
// (used once per simulation to form B = exp(-dtau*K) and its inverse).
package lapack

import (
	"fmt"
	"math"

	"questgo/internal/blas"
	"questgo/internal/mat"
)

// larfg generates an elementary Householder reflector H = I - tau*v*v^T
// such that H * [alpha; x] = [beta; 0], with v = [1; x/(alpha-beta)] stored
// back into x. It returns (beta, tau). This is LAPACK's DLARFG with the
// usual rescaling for very small vectors.
func larfg(alpha float64, x []float64) (beta, tau float64) {
	xnorm := blas.Nrm2(x)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -math.Copysign(math.Hypot(alpha, xnorm), alpha)
	// Rescale if beta is dangerously small.
	const safmin = 2.0041683600089728e-292 // ~ dlamch('S')/dlamch('E')
	var scale float64 = 1
	cnt := 0
	for math.Abs(beta) < safmin && cnt < 20 {
		blas.Scal(1/safmin, x)
		beta /= safmin
		alpha /= safmin
		scale *= safmin
		xnorm = blas.Nrm2(x)
		beta = -math.Copysign(math.Hypot(alpha, xnorm), alpha)
		cnt++
	}
	tau = (beta - alpha) / beta
	blas.Scal(1/(alpha-beta), x)
	beta *= scale
	return beta, tau
}

// larf applies the reflector H = I - tau*v*v^T from the left to C, using
// work of length >= C.Cols. v has implicit leading 1 at v[0].
//
//qmc:hot
func larf(v []float64, tau float64, c *mat.Dense, work []float64) {
	if tau == 0 {
		return
	}
	m, n := c.Rows, c.Cols
	if len(v) != m {
		panic(fmt.Sprintf("lapack: larf dimension mismatch: len(v)=%d but C has %d rows", len(v), m))
	}
	w := work[:n]
	// w = C^T v
	for j := 0; j < n; j++ {
		w[j] = blas.Dot(c.Col(j), v)
	}
	// C -= tau * v * w^T
	for j := 0; j < n; j++ {
		blas.Axpy(-tau*w[j], v, c.Col(j))
	}
}

// larft forms the upper triangular factor T of the block reflector
// H = H_1 H_2 ... H_k = I - V*T*V^T ("forward, columnwise" storage).
// V is m x k with the reflectors below the unit diagonal; tau holds the
// scalar factors.
func larft(v *mat.Dense, tau []float64, t *mat.Dense) {
	k := v.Cols
	m := v.Rows
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j <= i; j++ {
				t.Set(j, i, 0)
			}
			continue
		}
		// t[0:i, i] = -tau[i] * V[:, 0:i]^T * v_i  (v_i has unit at row i)
		vi := v.Col(i)
		for j := 0; j < i; j++ {
			vj := v.Col(j)
			// v_j is zero above row j and unit at row j; v_i is zero above
			// row i and unit at row i. Their overlap starts at row i.
			s := vj[i] // v_j[i] * v_i[i] with v_i[i] = 1
			for r := i + 1; r < m; r++ {
				s += vj[r] * vi[r]
			}
			t.Set(j, i, -tau[i]*s)
		}
		// t[0:i, i] = T[0:i, 0:i] * t[0:i, i]. T is upper triangular, so
		// row j of the product only reads entries r >= j; overwriting in
		// increasing j is safe in place.
		for j := 0; j < i; j++ {
			s := 0.0
			for r := j; r < i; r++ {
				s += t.At(j, r) * t.At(r, i)
			}
			t.Set(j, i, s)
		}
		t.Set(i, i, tau[i])
	}
}

// larfb applies the block reflector defined by (V, T) to C from the left:
//
//	trans=false: C = (I - V T V^T) C   (apply H)
//	trans=true:  C = (I - V T^T V^T) C (apply H^T)
//
// V is m x k (unit lower trapezoidal), C is m x n.
// work must provide at least 2k rows and n columns of scratch.
func larfb(v *mat.Dense, t *mat.Dense, trans bool, c *mat.Dense, work *mat.Dense) {
	k := v.Cols
	n := c.Cols
	w := work.View(0, 0, k, n)
	w2 := work.View(k, 0, k, n)
	// W = V^T C (the transpose is absorbed by the Gemm packing)
	blas.GemmTN(1, v, c, 0, w)
	// W2 = op(T) W, with T upper triangular (treated densely; k is small).
	blas.Gemm(trans, false, 1, t, w, 0, w2)
	// C -= V W2
	blas.Gemm(false, false, -1, v, w2, 1, c)
}

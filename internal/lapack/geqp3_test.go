package lapack

import (
	"math"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// qrpResidual returns the relative difference between A·P (the columns of
// orig gathered in jpvt order) and the factorization's Q·R.
func qrpResidual(orig *mat.Dense, qr *QR, jpvt []int) float64 {
	m, n := orig.Rows, orig.Cols
	rr := qr.R()
	qrm := mat.New(m, n)
	for j := 0; j < n; j++ {
		copy(qrm.Col(j)[:rr.Rows], rr.Col(j))
	}
	qr.MulQ(false, qrm)
	ap := mat.New(m, n)
	for j := 0; j < n; j++ {
		copy(ap.Col(j), orig.Col(jpvt[j]))
	}
	return mat.RelDiff(qrm, ap)
}

func samePivots(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkBlockedVsLevel2 factors orig with both QRP paths and requires either
// an identical pivot sequence with matching |R| diagonals, or — when
// rounding in the two downdate schemes legitimately picks different pivots —
// a <= tol reconstruction A·P = Q·R from each path for its own permutation.
func checkBlockedVsLevel2(t *testing.T, orig *mat.Dense, tol float64) {
	t.Helper()
	ab := orig.Clone()
	qrB, jpvtB := QRPFactor(ab)
	al := orig.Clone()
	qrL, jpvtL := QRPFactorLevel2(al)

	if resB := qrpResidual(orig, qrB, jpvtB); resB > tol {
		t.Fatalf("blocked QRP reconstruction residual %.3e > %.3e", resB, tol)
	}
	if resL := qrpResidual(orig, qrL, jpvtL); resL > tol {
		t.Fatalf("level-2 QRP reconstruction residual %.3e > %.3e", resL, tol)
	}
	if samePivots(jpvtB, jpvtL) {
		// Same permutation: the triangular factors must agree up to column
		// signs, so their diagonal magnitudes match to roundoff.
		rb, rl := qrB.R(), qrL.R()
		k := min(orig.Rows, orig.Cols)
		for i := 0; i < k; i++ {
			db, dl := math.Abs(rb.At(i, i)), math.Abs(rl.At(i, i))
			if math.Abs(db-dl) > tol*(1+dl) {
				t.Fatalf("R diagonal %d differs: blocked %g vs level-2 %g", i, db, dl)
			}
		}
	}
	qrB.Release()
	qrL.Release()
	PutPivot(&jpvtB)
	PutPivot(&jpvtL)
}

// TestQRPBlockedVsLevel2Graded drives both paths over strongly graded
// columns — the shape the stratified DQMC matrices have. The grading makes
// every pivot choice unambiguous, so the blocked path must reproduce the
// level-2 pivot sequence exactly.
func TestQRPBlockedVsLevel2Graded(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{16, 33, 64, 96, 129} {
		a := randomDense(r, n, n)
		// Keep the full grading range well above roundoff (~1e-8 at the
		// deepest column): below that the downdated norms are noise and the
		// pivot order is legitimately implementation-defined.
		for j := 0; j < n; j++ {
			blas.Scal(math.Pow(10, -8*float64(j)/float64(n-1)), a.Col(j))
		}
		// For the deepest tail of the largest size, the partial norms of the
		// last few columns decay to where the two schemes' rounding flips
		// near-ties, so strict pivot identity is only well-posed up to ~96.
		if n <= 96 {
			ab := a.Clone()
			qrB, jpvtB := QRPFactor(ab)
			al := a.Clone()
			qrL, jpvtL := QRPFactorLevel2(al)
			if !samePivots(jpvtB, jpvtL) {
				t.Fatalf("n=%d: graded pivots differ: blocked %v vs level-2 %v", n, jpvtB, jpvtL)
			}
			qrB.Release()
			qrL.Release()
			PutPivot(&jpvtB)
			PutPivot(&jpvtL)
		}
		checkBlockedVsLevel2(t, a, 1e-12)
	}
}

// TestQRPBlockedVsLevel2RankDeficient covers numerically rank-deficient
// inputs: a low-rank product plus tiny noise, where the trailing partial
// norms collapse toward zero and the cancellation safeguard must keep the
// downdated norms honest.
func TestQRPBlockedVsLevel2RankDeficient(t *testing.T) {
	r := rng.New(12)
	n, rank := 80, 11
	b := randomDense(r, n, rank)
	c := randomDense(r, rank, n)
	a := mat.New(n, n)
	blas.Gemm(false, false, 1, b, c, 0, a)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] += 1e-14 * (2*r.Float64() - 1)
		}
	}
	checkBlockedVsLevel2(t, a, 1e-11)

	// Exactly rank deficient (no noise): trailing norms hit zero.
	blas.Gemm(false, false, 1, b, c, 0, a)
	checkBlockedVsLevel2(t, a, 1e-11)
}

// TestQRPBlockedVsLevel2DuplicateNorms covers exact column-norm ties
// (duplicated columns): both paths use strict > first-index-wins pivot
// selection, and whatever permutation each settles on must reconstruct.
func TestQRPBlockedVsLevel2DuplicateNorms(t *testing.T) {
	r := rng.New(13)
	n := 70
	a := randomDense(r, n, n)
	for j := 0; j < n; j += 2 {
		if j+1 < n {
			copy(a.Col(j+1), a.Col(j)) // pairs of identical columns
		}
	}
	checkBlockedVsLevel2(t, a, 1e-12)

	// All columns identical: every pivot choice is a tie.
	for j := 1; j < n; j++ {
		copy(a.Col(j), a.Col(0))
	}
	checkBlockedVsLevel2(t, a, 1e-12)
}

// TestQRPBlockedVsLevel2Rectangular covers m != n, including panel-width
// straddles and matrices living inside a view of larger storage.
func TestQRPBlockedVsLevel2Rectangular(t *testing.T) {
	r := rng.New(14)
	for _, dims := range [][2]int{{96, 40}, {70, 33}, {40, 96}, {33, 70}, {65, 64}} {
		m, n := dims[0], dims[1]
		checkBlockedVsLevel2(t, randomDense(r, m, n), 1e-12)
	}
	// Factor a view into larger backing storage: the column stride exceeds
	// the row count, so any accidental full-column access would corrupt the
	// frame (caught by the residual check on the view's contents).
	back := randomDense(r, 90, 90)
	view := back.View(7, 5, 61, 48)
	orig := view.Clone()
	qr, jpvt := QRPFactor(view)
	if res := qrpResidual(orig, qr, jpvt); res > 1e-12 {
		t.Fatalf("view: blocked QRP residual %.3e", res)
	}
	qr.Release()
	PutPivot(&jpvt)
}

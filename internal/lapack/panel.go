package lapack

import "questgo/internal/mat"

// This file exposes the panel-level building blocks of the blocked QR so a
// hybrid (CPU panel + accelerator trailing-update) factorization can be
// assembled outside the package — the MAGMA-style split the paper names as
// future work for running Algorithm 3 on the GPU.

// Panel is one factored Householder panel: the explicit unit-lower
// trapezoidal reflector block V (m x jb), the upper triangular T of the
// compact WY representation (jb x jb), the scalar factors Tau, and the
// panel's R rows (jb x jb upper triangle, stored in place of the input).
type Panel struct {
	V   *mat.Dense
	T   *mat.Dense
	Tau []float64
}

// FactorPanel runs the unblocked Householder QR on the panel (overwriting
// it with R above the diagonal and the reflectors below) and returns the
// explicit V and T factors needed to apply the block reflector elsewhere.
func FactorPanel(panel *mat.Dense) *Panel {
	m, jb := panel.Rows, panel.Cols
	tau := make([]float64, min(m, jb))
	work := make([]float64, jb)
	geqr2(panel, tau, work)
	v := mat.New(m, jb)
	copyReflectors(panel, v)
	t := mat.New(jb, jb)
	larft(v, tau, t)
	return &Panel{V: v, T: t, Tau: tau}
}

// ApplyBlockReflector applies the panel's block reflector to C from the
// left: C <- (I - V T V^T) C when trans is false, or with T^T when trans
// is true. It is exactly the update the blocked QR performs on its
// trailing matrix; callers that own an accelerator can instead run the
// same three products (W = V^T C; W' = op(T) W; C -= V W') on the device.
func (p *Panel) ApplyBlockReflector(trans bool, c *mat.Dense) {
	work := mat.New(2*p.V.Cols, c.Cols)
	larfb(p.V, p.T, trans, c, work)
}

package lapack

import (
	"errors"
	"fmt"
	"math"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/mat"
)

// luBlock is the panel width of the blocked LU factorization.
const luBlock = 32

// ErrSingular is returned when a pivot is exactly zero.
var ErrSingular = errors.New("lapack: matrix is singular")

// LU holds an LU factorization with partial pivoting (DGETRF layout):
// unit lower triangular L below the diagonal of A, U on and above it, and
// Piv recording the row interchanged with row i at step i.
type LU struct {
	A   *mat.Dense
	Piv []int
}

// LUFactor computes the blocked right-looking LU factorization of the
// square matrix a with partial pivoting, overwriting it.
func LUFactor(a *mat.Dense) (*LU, error) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: LUFactor expects a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	piv := make([]int, n)
	var singular bool
	for j := 0; j < n; j += luBlock {
		jb := min(luBlock, n-j)
		// Factor the panel A[j:n, j:j+jb] unblocked.
		if !getf2(a, j, jb, piv) {
			singular = true
		}
		// Apply the panel's row swaps to the left and right of the panel.
		for i := j; i < j+jb; i++ {
			p := piv[i]
			if p == i {
				continue
			}
			swapRowParts(a, i, p, 0, j)
			swapRowParts(a, i, p, j+jb, n)
		}
		if j+jb < n {
			// U block row: solve L11 * U12 = A12.
			l11 := a.View(j, j, jb, jb)
			a12 := a.View(j, j+jb, jb, n-j-jb)
			blas.Trsm(false, false, true, 1, l11, a12)
			// Trailing update: A22 -= L21 * U12.
			if j+jb < n {
				l21 := a.View(j+jb, j, n-j-jb, jb)
				a22 := a.View(j+jb, j+jb, n-j-jb, n-j-jb)
				blas.Gemm(false, false, -1, l21, a12, 1, a22)
			}
		}
	}
	lu := &LU{A: a, Piv: piv}
	if singular {
		return lu, ErrSingular
	}
	check.Finite("lapack.LUFactor", a)
	return lu, nil
}

// getf2 factors the panel A[j:n, j:j+jb] with partial pivoting, recording
// global pivot rows in piv[j:j+jb]. It returns false if a zero pivot was
// found.
func getf2(a *mat.Dense, j, jb int, piv []int) bool {
	n := a.Rows
	ok := true
	for c := 0; c < jb; c++ {
		col := a.Col(j + c)
		// Pivot within the panel rows.
		rel := blas.Idamax(col[j+c : n])
		p := j + c + rel
		piv[j+c] = p
		if col[p] == 0 {
			ok = false
			continue
		}
		if p != j+c {
			swapRowParts(a, j+c, p, j, j+jb)
		}
		pivv := col[j+c]
		inv := 1 / pivv
		for r := j + c + 1; r < n; r++ {
			col[r] *= inv
		}
		// Rank-1 update of the rest of the panel.
		for cc := c + 1; cc < jb; cc++ {
			ccol := a.Col(j + cc)
			f := ccol[j+c]
			if f == 0 {
				continue
			}
			for r := j + c + 1; r < n; r++ {
				ccol[r] -= f * col[r]
			}
		}
	}
	return ok
}

// swapRowParts exchanges rows r1 and r2 over columns [c0, c1).
func swapRowParts(a *mat.Dense, r1, r2 int, c0, c1 int) {
	for c := c0; c < c1; c++ {
		col := a.Col(c)
		col[r1], col[r2] = col[r2], col[r1]
	}
}

// Solve overwrites b (n x nrhs) with the solution of A*X = B.
func (lu *LU) Solve(b *mat.Dense) {
	n := lu.A.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("lapack: LU.Solve dimension mismatch: A is %dx%d but B has %d rows", n, n, b.Rows))
	}
	// Apply row interchanges to B.
	for i := 0; i < n; i++ {
		if p := lu.Piv[i]; p != i {
			swapRowParts(b, i, p, 0, b.Cols)
		}
	}
	blas.Trsm(false, false, true, 1, lu.A, b) // L y = P b
	blas.Trsm(true, false, false, 1, lu.A, b) // U x = y
}

// LogDet returns (log|det A|, sign of det A) from the factorization.
// DQMC tracks the sign of the fermion determinant this way.
func (lu *LU) LogDet() (logAbs float64, sign float64) {
	n := lu.A.Rows
	sign = 1
	for i := 0; i < n; i++ {
		if lu.Piv[i] != i {
			sign = -sign
		}
		d := lu.A.At(i, i)
		if d < 0 {
			sign = -sign
			d = -d
		}
		if d == 0 {
			return math.Inf(-1), 0
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}

// Invert overwrites dst with the inverse of the factored matrix.
func (lu *LU) Invert(dst *mat.Dense) {
	n := lu.A.Rows
	if dst.Rows != n || dst.Cols != n {
		panic(fmt.Sprintf("lapack: LU.Invert dimension mismatch: A is %dx%d but dst is %dx%d", n, n, dst.Rows, dst.Cols))
	}
	dst.SetIdentity()
	lu.Solve(dst)
}

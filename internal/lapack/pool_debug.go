//go:build qmcdebug

package lapack

import (
	"fmt"
	"sync"
)

// DebugPool reports whether factorization-pool double-put bookkeeping is
// compiled in (qmcdebug builds only).
const DebugPool = true

// Mirrors internal/mat's scratch bookkeeping: a checked-out set keyed by
// backing-array identity (&s[0] survives reslicing, which is how the pools
// hand buffers back out). A Put of storage that is already pooled is the
// use-after-free precursor the sanitizer exists to catch — the next Get
// would hand two owners the same backing array.
var (
	poolMu    sync.Mutex
	tauLive   = map[*float64]bool{} // true = checked out, false = in pool
	pivotLive = map[*int]bool{}
)

func debugTrackTauGet(t []float64) {
	if len(t) == 0 {
		return
	}
	poolMu.Lock()
	tauLive[&t[0]] = true
	poolMu.Unlock()
}

func debugTrackTauPut(t []float64) {
	if len(t) == 0 {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if live, seen := tauLive[&t[0]]; seen && !live {
		panic(fmt.Sprintf("lapack: QR.Release double put of len-%d tau buffer", len(t)))
	}
	tauLive[&t[0]] = false
}

func debugTrackPivotGet(p []int) {
	if len(p) == 0 {
		return
	}
	poolMu.Lock()
	pivotLive[&p[0]] = true
	poolMu.Unlock()
}

func debugTrackPivotPut(p []int) {
	if len(p) == 0 {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if live, seen := pivotLive[&p[0]]; seen && !live {
		panic(fmt.Sprintf("lapack: PutPivot double put of len-%d pivot buffer", len(p)))
	}
	pivotLive[&p[0]] = false
}

//go:build qmcdebug

package lapack

import (
	"strings"
	"testing"
)

// mustPanicContains runs f and asserts it panics with a message containing
// substr.
func mustPanicContains(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected string panic, got %T: %v", r, r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

func TestDebugPoolCompiledIn(t *testing.T) {
	if !DebugPool {
		t.Fatal("lapack.DebugPool must be true under the qmcdebug tag")
	}
}

// TestDoublePutPivotPanics: PutPivot through a surviving alias of an
// already-pooled slice — the hazard the nil-out cannot catch — must trip
// the sanitizer instead of silently pooling the storage twice.
func TestDoublePutPivotPanics(t *testing.T) {
	qr, perm := QRPFactor(testMatrix(8, 8, 23))
	qr.Release()
	alias := perm
	PutPivot(&perm)
	mustPanicContains(t, "double put", func() { PutPivot(&alias) })
}

// TestDoubleReleaseAliasPanics: releasing through two copies of the QR
// value (so the nil-out of one copy cannot protect the other) must panic.
func TestDoubleReleaseAliasPanics(t *testing.T) {
	qr := QRFactor(testMatrix(8, 8, 29))
	cp := *qr
	qr.Release()
	mustPanicContains(t, "double put", func() { cp.Release() })
}

package lapack

import (
	"math"
	"testing"

	"questgo/internal/mat"
	"questgo/internal/rng"
)

// FuzzQRReconstruct factors fuzzer-shaped random matrices with the
// blocked QR and requires Q*R to reproduce the input. This walks the
// panel/trailing-update boundaries (block-size straddles, tall-skinny,
// single-column) far more densely than the fixed-size unit tests.
func FuzzQRReconstruct(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint64(1))
	f.Add(uint8(13), uint8(7), uint64(2))
	f.Add(uint8(33), uint8(32), uint64(3))
	f.Add(uint8(65), uint8(64), uint64(4))
	f.Add(uint8(80), uint8(3), uint64(5))
	f.Fuzz(func(t *testing.T, m8, n8 uint8, seed uint64) {
		m := int(m8%80) + 1
		n := int(n8%80) + 1
		if n > m {
			m, n = n, m // QRFactor expects m >= n
		}
		r := rng.New(seed)
		orig := randomDense(r, m, n)
		qr := QRFactor(orig.Clone())
		rr := qr.R()
		// Reconstruct: embed R into an m x n block and apply Q.
		qrm := mat.New(m, n)
		for j := 0; j < n; j++ {
			copy(qrm.Col(j)[:rr.Rows], rr.Col(j))
		}
		qr.MulQ(false, qrm)
		tol := 1e-12 * float64(m)
		if !qrm.EqualApprox(orig, tol) {
			t.Fatalf("m=%d n=%d seed=%d: Q*R does not reproduce A (rel diff %.3e, tol %.3e)",
				m, n, seed, mat.RelDiff(qrm, orig), tol)
		}
	})
}

// FuzzGetrf factors fuzzer-shaped random square matrices with the
// blocked, partially pivoted LU and requires the pivoted product L*U to
// reproduce the input. Random [-1,1) matrices keep the pivot growth
// factor small, so a tight relative tolerance holds; the rare
// ill-conditioned draw is skipped rather than loosening the bound.
func FuzzGetrf(f *testing.F) {
	f.Add(uint8(1), uint64(1))
	f.Add(uint8(31), uint64(2))
	f.Add(uint8(32), uint64(3))
	f.Add(uint8(33), uint64(4))
	f.Add(uint8(77), uint64(5))
	f.Fuzz(func(t *testing.T, n8 uint8, seed uint64) {
		n := int(n8%80) + 1
		r := rng.New(seed)
		orig := randomDense(r, n, n)
		lu, err := LUFactor(orig.Clone())
		if err != nil {
			t.Skip("singular draw")
		}
		// Reconstruct P^T L U: form L*U from the packed factors, then
		// undo the recorded row interchanges in reverse order.
		prod := mat.New(n, n)
		for j := 0; j < n; j++ {
			col := prod.Col(j)
			for i := 0; i < n; i++ {
				kmax := i
				if j < i {
					kmax = j
				}
				s := 0.0
				for k := 0; k < kmax; k++ {
					s += lu.A.At(i, k) * lu.A.At(k, j)
				}
				if i <= j { // unit diagonal of L contributes U(i,j)
					s += lu.A.At(i, j)
				} else {
					s += lu.A.At(i, j) * lu.A.At(j, j)
				}
				col[i] = s
			}
		}
		for i := n - 1; i >= 0; i-- {
			if p := lu.Piv[i]; p != i {
				for j := 0; j < n; j++ {
					prod.Data[i+j*prod.Stride], prod.Data[p+j*prod.Stride] =
						prod.Data[p+j*prod.Stride], prod.Data[i+j*prod.Stride]
				}
			}
		}
		// Condition guard: a nearly singular draw amplifies the residual
		// legitimately. Estimate via the U diagonal.
		minPivot := math.Inf(1)
		for i := 0; i < n; i++ {
			if p := math.Abs(lu.A.At(i, i)); p < minPivot {
				minPivot = p
			}
		}
		if minPivot < 1e-8 {
			t.Skip("ill-conditioned draw")
		}
		tol := 1e-11 * float64(n)
		if !prod.EqualApprox(orig, tol) {
			t.Fatalf("n=%d seed=%d: P^T L U does not reproduce A (rel diff %.3e, tol %.3e)",
				n, seed, mat.RelDiff(prod, orig), tol)
		}
	})
}

// FuzzQRPBlockedVsLevel2 drives the blocked, level-3 pivoted QR and the
// retained level-2 reference over fuzzer-shaped matrices, including graded
// and tied column norms. The two downdate schemes round differently, so
// the pivot sequences are allowed to diverge — but when they agree the |R|
// diagonals must match, and each path must always satisfy its own
// reconstruction A·P = Q·R to near machine precision.
func FuzzQRPBlockedVsLevel2(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint64(1), uint8(0))
	f.Add(uint8(33), uint8(32), uint64(2), uint8(3))
	f.Add(uint8(64), uint8(64), uint64(3), uint8(0))
	f.Add(uint8(70), uint8(40), uint64(4), uint8(9))
	f.Add(uint8(40), uint8(70), uint64(5), uint8(1))
	f.Fuzz(func(t *testing.T, m8, n8 uint8, seed uint64, shape uint8) {
		m := int(m8%80) + 1
		n := int(n8%80) + 1
		r := rng.New(seed)
		orig := randomDense(r, m, n)
		switch shape % 4 {
		case 1: // graded columns, the stratified-matrix profile
			for j := 0; j < n; j++ {
				s := math.Pow(10, float64(-j)/8)
				col := orig.Col(j)
				for i := range col {
					col[i] *= s
				}
			}
		case 2: // duplicated columns: exact norm ties
			for j := 1; j < n; j += 2 {
				copy(orig.Col(j), orig.Col(j-1))
			}
		case 3: // a zero column block: rank deficiency
			for j := n / 2; j < n; j++ {
				col := orig.Col(j)
				for i := range col {
					col[i] = 0
				}
			}
		}
		check := func(name string, qr *QR, jpvt []int) *mat.Dense {
			rr := qr.R()
			qrm := mat.New(m, n)
			for j := 0; j < n; j++ {
				copy(qrm.Col(j)[:rr.Rows], rr.Col(j))
			}
			qr.MulQ(false, qrm)
			ap := mat.New(m, n)
			for j := 0; j < n; j++ {
				copy(ap.Col(j), orig.Col(jpvt[j]))
			}
			tol := 1e-12 * float64(m)
			if !qrm.EqualApprox(ap, tol) {
				t.Fatalf("m=%d n=%d seed=%d shape=%d: %s Q*R != A*P (rel diff %.3e, tol %.3e)",
					m, n, seed, shape%4, name, mat.RelDiff(qrm, ap), tol)
			}
			return rr
		}
		ab := orig.Clone()
		qrB, jpvtB := QRPFactor(ab)
		al := orig.Clone()
		qrL, jpvtL := QRPFactorLevel2(al)
		rb := check("blocked", qrB, jpvtB)
		rl := check("level-2", qrL, jpvtL)
		same := len(jpvtB) == len(jpvtL)
		for i := 0; same && i < len(jpvtB); i++ {
			same = jpvtB[i] == jpvtL[i]
		}
		if same {
			k := m
			if n < k {
				k = n
			}
			for i := 0; i < k; i++ {
				db, dl := math.Abs(rb.At(i, i)), math.Abs(rl.At(i, i))
				if math.Abs(db-dl) > 1e-12*float64(m)*(1+dl) {
					t.Fatalf("m=%d n=%d seed=%d shape=%d: same pivots but R diagonal %d differs (%g vs %g)",
						m, n, seed, shape%4, i, db, dl)
				}
			}
		}
		qrB.Release()
		qrL.Release()
		PutPivot(&jpvtB)
		PutPivot(&jpvtL)
	})
}

//go:build !qmcdebug

package lapack

// DebugPool reports whether factorization-pool double-put bookkeeping is
// compiled in (qmcdebug builds only).
const DebugPool = false

func debugTrackTauGet(t []float64) {}

func debugTrackTauPut(t []float64) {}

func debugTrackPivotGet(p []int) {}

func debugTrackPivotPut(p []int) {}

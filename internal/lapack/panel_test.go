package lapack

import (
	"testing"

	"questgo/internal/mat"
	"questgo/internal/rng"
)

func TestFactorPanelReconstructs(t *testing.T) {
	r := rng.New(31)
	m, jb := 40, 8
	a := randomDense(r, m, jb)
	orig := a.Clone()
	p := FactorPanel(a)
	// Q R = A with Q = I - V T V^T applied to [R; 0].
	rec := mat.New(m, jb)
	for j := 0; j < jb; j++ {
		copy(rec.Col(j)[:j+1], a.Col(j)[:j+1])
	}
	// Apply H = I - V T V^T (not transposed) to reconstruct.
	p.ApplyBlockReflector(false, rec)
	if d := mat.RelDiff(rec, orig); d > 1e-12 {
		t.Fatalf("panel reconstruction failed: %g", d)
	}
}

func TestApplyBlockReflectorInverse(t *testing.T) {
	r := rng.New(33)
	m, jb := 30, 6
	a := randomDense(r, m, jb)
	p := FactorPanel(a)
	c := randomDense(r, m, 5)
	orig := c.Clone()
	p.ApplyBlockReflector(false, c)
	p.ApplyBlockReflector(true, c)
	if d := mat.RelDiff(c, orig); d > 1e-12 {
		t.Fatalf("H H^T C != C: %g", d)
	}
}

func TestFactorPanelMatchesBlockedQR(t *testing.T) {
	// A single-panel matrix factored by FactorPanel and QRFactor must give
	// the same R.
	r := rng.New(35)
	m, jb := 25, 8
	a := randomDense(r, m, jb)
	a2 := a.Clone()
	FactorPanel(a)
	qr := QRFactor(a2)
	rr := qr.R()
	for j := 0; j < jb; j++ {
		for i := 0; i <= j; i++ {
			if diff := a.At(i, j) - rr.At(i, j); diff > 1e-13 || diff < -1e-13 {
				t.Fatalf("R(%d,%d) mismatch: %v vs %v", i, j, a.At(i, j), rr.At(i, j))
			}
		}
	}
}

func TestPanelVUnitLowerTrapezoid(t *testing.T) {
	r := rng.New(37)
	a := randomDense(r, 12, 4)
	p := FactorPanel(a)
	for j := 0; j < 4; j++ {
		for i := 0; i < j; i++ {
			if p.V.At(i, j) != 0 {
				t.Fatal("V not zero above diagonal")
			}
		}
		if p.V.At(j, j) != 1 {
			t.Fatal("V diagonal not unit")
		}
	}
	// T upper triangular with tau on the diagonal.
	for j := 0; j < 4; j++ {
		if p.T.At(j, j) != p.Tau[j] {
			t.Fatal("T diagonal != tau")
		}
		for i := j + 1; i < 4; i++ {
			if p.T.At(i, j) != 0 {
				t.Fatal("T not upper triangular")
			}
		}
	}
}

// Package gpu provides a *simulated* GPU accelerator for the paper's
// Section VI experiments.
//
// The paper offloads matrix clustering (Algorithms 4/5) and Green's
// function wrapping (Algorithms 6/7) to an Nvidia Tesla C2050 through
// CUBLAS and hand-written CUDA kernels. This environment has no GPU, so we
// substitute the closest synthetic equivalent that exercises the same code
// paths: a Device with explicit host<->device transfers, kernel launches,
// and a calibrated cost model (PCIe bandwidth + latency, DGEMM throughput,
// memory-bandwidth-bound scaling kernels). Arithmetic is executed bit-for-
// bit on the host, so every numerical result is real; only the *clock* is
// modeled. The modeled clock reproduces the paper's Figure 9/10 phenomena:
// clustering amortizes one transfer over k GEMMs and approaches device
// GEMM throughput, wrapping pays a full Green's function round trip for
// two GEMMs and saturates lower, and both improve with matrix dimension.
//
// Execution is organised around Streams (see stream.go): every operation
// is enqueued on a Stream whose modeled clock advances independently, with
// Event dependencies serializing only where the dataflow requires it —
// the same semantics as CUDA streams. The Device itself keeps two engine
// occupancy accumulators (compute and DMA) so concurrent streams can
// overlap in time but never exceed the card's aggregate throughput; its
// Clock is the lower-bound makespan max(stream critical paths, engine
// occupancies). Command graphs (graph.go) record a stream's launch
// sequence once and replay it for a single launch overhead.
package gpu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"questgo/internal/mat"
)

// DeviceModel holds the cost-model parameters of the simulated accelerator.
type DeviceModel struct {
	Name string
	// TransferBytesPerSec is the host<->device (PCIe) bandwidth.
	TransferBytesPerSec float64
	// TransferLatency is the fixed per-transaction cost.
	TransferLatency time.Duration
	// KernelLaunch is the fixed cost of launching any kernel.
	KernelLaunch time.Duration
	// GemmFlopsPerSec is sustained double-precision DGEMM throughput.
	GemmFlopsPerSec float64
	// MemBytesPerSec is device memory bandwidth, which bounds the scaling
	// kernels (they do O(1) flops per element and are bandwidth limited,
	// as the paper notes for Algorithms 5 and 7).
	MemBytesPerSec float64
}

// TeslaC2050 returns a cost model calibrated to the paper's hardware:
// ~300 GFlop/s sustained CUBLAS DGEMM, 144 GB/s memory bandwidth, ~6 GB/s
// effective PCIe 2.0 transfer, microsecond-scale launch overhead.
func TeslaC2050() DeviceModel {
	return DeviceModel{
		Name:                "sim-tesla-c2050",
		TransferBytesPerSec: 6e9,
		TransferLatency:     10 * time.Microsecond,
		KernelLaunch:        5 * time.Microsecond,
		GemmFlopsPerSec:     300e9,
		MemBytesPerSec:      144e9,
	}
}

// Device is a simulated accelerator: matrices "resident" on it are ordinary
// host memory, but every operation advances a modeled clock according to
// the DeviceModel.
//
// All timing state is atomic so independent command streams — the spin-up
// and spin-down Accelerators of the spin-parallel sweep, or the compute and
// copy streams of one Accelerator — can charge the same device
// concurrently with no serializing mutex. Matrix payloads are not guarded:
// concurrent use is only safe on disjoint device matrices, which per-spin
// Accelerator scratch guarantees.
type Device struct {
	model DeviceModel

	mu      sync.Mutex // guards the stream list only
	streams []*Stream  //qmc:guarded(mu)
	s0      *Stream    // default stream backing the legacy synchronous API

	// Modeled clock state, all atomic nanosecond/count cells. Written only
	// by Stream and Graph methods (and Reset) — the qmclint streamorder
	// analyzer enforces that no other code advances the clock directly.
	busyNS     int64 // compute-engine occupancy (kernel time + launches)
	xferBusyNS int64 // DMA-engine occupancy (transfer time + latencies)
	launchNS   int64 // launch + transfer-latency overhead included above
	realNS     int64 // host wall time spent executing simulated kernels

	transferred int64
	kernels     int64
	flops       int64 // modeled flops are integral (2mnk etc.)

	allocBytes    int64
	maxAllocBytes int64
}

// NewDevice creates a device with the given cost model.
func NewDevice(model DeviceModel) *Device {
	if model.TransferBytesPerSec <= 0 || model.GemmFlopsPerSec <= 0 || model.MemBytesPerSec <= 0 {
		panic("gpu: cost model rates must be positive")
	}
	d := &Device{model: model}
	d.s0 = d.NewStream()
	return d
}

// Model returns the device's cost-model parameters.
func (d *Device) Model() DeviceModel { return d.model }

// Matrix is a device-resident column-major matrix.
type Matrix struct {
	dev  *Device
	m    *mat.Dense
	rows int
	cols int
	// owned is the allocation size accounted to the device; 0 for views
	// (which share a parent's storage) and for freed matrices.
	owned int64
}

// Rows returns the matrix row count.
func (a *Matrix) Rows() int { return a.rows }

// Cols returns the matrix column count.
func (a *Matrix) Cols() int { return a.cols }

// Malloc allocates an uninitialized device matrix and accounts it against
// the device's allocation counters (cudaMalloc).
func (d *Device) Malloc(rows, cols int) *Matrix {
	bytes := int64(rows) * int64(cols) * 8
	now := atomic.AddInt64(&d.allocBytes, bytes)
	for {
		hw := atomic.LoadInt64(&d.maxAllocBytes)
		if now <= hw || atomic.CompareAndSwapInt64(&d.maxAllocBytes, hw, now) {
			break
		}
	}
	return &Matrix{dev: d, m: mat.New(rows, cols), rows: rows, cols: cols, owned: bytes}
}

// Free releases the device allocation (cudaFree). Safe to call twice; a
// no-op on views, which never own storage. Any later device operation on
// the freed matrix panics, catching use-after-free in the modeled memory
// accounting.
func (a *Matrix) Free() {
	if a.owned == 0 {
		return
	}
	atomic.AddInt64(&a.dev.allocBytes, -a.owned)
	a.owned = 0
	a.dev = nil
	a.m = nil
}

// AllocBytes returns the bytes currently allocated on the device.
func (d *Device) AllocBytes() int64 { return atomic.LoadInt64(&d.allocBytes) }

// MaxAllocBytes returns the high-water allocation mark — the modeled
// device memory footprint.
func (d *Device) MaxAllocBytes() int64 { return atomic.LoadInt64(&d.maxAllocBytes) }

// SetMatrix copies a host matrix to the device (cublasSetMatrix) on the
// default stream.
func (d *Device) SetMatrix(dst *Matrix, src *mat.Dense) { d.s0.SetMatrix(dst, src) }

// GetMatrix copies a device matrix back to the host (cublasGetMatrix) on
// the default stream.
func (d *Device) GetMatrix(dst *mat.Dense, src *Matrix) { d.s0.GetMatrix(dst, src) }

// SetVector uploads a host vector (cublasSetVector), e.g. the V_l diagonal.
func (d *Device) SetVector(dst *Matrix, src []float64) { d.s0.SetVector(dst, src) }

// Dgemm computes C = alpha*op(A)*op(B) + beta*C on the device.
func (d *Device) Dgemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	d.s0.Dgemm(transA, transB, alpha, a, b, beta, c)
}

// Dcopy copies src into dst on the device.
func (d *Device) Dcopy(dst, src *Matrix) { d.s0.Dcopy(dst, src) }

// ScaleRows is the paper's Algorithm 5 CUDA kernel: dst = diag(v) * src.
func (d *Device) ScaleRows(dst, src *Matrix, v *Matrix) { d.s0.ScaleRows(dst, src, v) }

// ScaleRowsCols is the paper's Algorithm 7 kernel:
// G = diag(v) * G * diag(v)^{-1}.
func (d *Device) ScaleRowsCols(g *Matrix, v *Matrix) { d.s0.ScaleRowsCols(g, v) }

func (d *Device) checkOwned(a *Matrix) {
	if a.dev != d {
		if a.dev == nil {
			panic("gpu: use of freed device matrix")
		}
		panic("gpu: matrix belongs to another device")
	}
}

// Clock returns the modeled device time elapsed since the last Reset: the
// lower-bound makespan over all command streams and both engines. A single
// serialized stream reduces to the old global clock; concurrent streams
// overlap, but can never beat the compute- or DMA-engine occupancy totals
// (two streams issuing GEMMs still share one card's DGEMM throughput).
func (d *Device) Clock() time.Duration {
	max := atomic.LoadInt64(&d.busyNS)
	if x := atomic.LoadInt64(&d.xferBusyNS); x > max {
		max = x
	}
	d.mu.Lock()
	for _, s := range d.streams {
		if c := atomic.LoadInt64(&s.clockNS); c > max {
			max = c
		}
	}
	d.mu.Unlock()
	return time.Duration(max)
}

// BusyCompute returns the accumulated compute-engine occupancy.
func (d *Device) BusyCompute() time.Duration { return time.Duration(atomic.LoadInt64(&d.busyNS)) }

// BusyTransfer returns the accumulated DMA-engine occupancy.
func (d *Device) BusyTransfer() time.Duration {
	return time.Duration(atomic.LoadInt64(&d.xferBusyNS))
}

// LaunchOverhead returns the total fixed kernel-launch and transfer-latency
// overhead charged since Reset — the quantity command-graph replay
// amortizes away.
func (d *Device) LaunchOverhead() time.Duration {
	return time.Duration(atomic.LoadInt64(&d.launchNS))
}

// RealTime returns the wall time the host spent executing simulated device
// kernels since the last Reset (transfer copies excluded; they stand in
// for DMA).
func (d *Device) RealTime() time.Duration { return time.Duration(atomic.LoadInt64(&d.realNS)) }

// Flops returns the floating-point operations charged since Reset.
func (d *Device) Flops() float64 { return float64(atomic.LoadInt64(&d.flops)) }

// Transferred returns host<->device bytes moved since Reset.
func (d *Device) Transferred() int64 { return atomic.LoadInt64(&d.transferred) }

// Kernels returns the number of kernel launches since Reset.
func (d *Device) Kernels() int { return int(atomic.LoadInt64(&d.kernels)) }

// GFlopsRate returns the achieved modeled throughput in GFlop/s.
func (d *Device) GFlopsRate() float64 {
	c := d.Clock()
	if c == 0 {
		return 0
	}
	return d.Flops() / c.Seconds() / 1e9
}

// Reset zeroes the modeled clock and counters (allocations persist).
func (d *Device) Reset() {
	atomic.StoreInt64(&d.busyNS, 0)
	atomic.StoreInt64(&d.xferBusyNS, 0)
	atomic.StoreInt64(&d.launchNS, 0)
	atomic.StoreInt64(&d.realNS, 0)
	atomic.StoreInt64(&d.transferred, 0)
	atomic.StoreInt64(&d.kernels, 0)
	atomic.StoreInt64(&d.flops, 0)
	d.mu.Lock()
	for _, s := range d.streams {
		atomic.StoreInt64(&s.clockNS, 0)
	}
	d.mu.Unlock()
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s: %.0f GF dgemm, %.0f GB/s mem, %.1f GB/s pcie",
		d.model.Name, d.model.GemmFlopsPerSec/1e9, d.model.MemBytesPerSec/1e9,
		d.model.TransferBytesPerSec/1e9)
}

// Package gpu provides a *simulated* GPU accelerator for the paper's
// Section VI experiments.
//
// The paper offloads matrix clustering (Algorithms 4/5) and Green's
// function wrapping (Algorithms 6/7) to an Nvidia Tesla C2050 through
// CUBLAS and hand-written CUDA kernels. This environment has no GPU, so we
// substitute the closest synthetic equivalent that exercises the same code
// paths: a Device with explicit host<->device transfers, kernel launches,
// and a calibrated cost model (PCIe bandwidth + latency, DGEMM throughput,
// memory-bandwidth-bound scaling kernels). Arithmetic is executed bit-for-
// bit on the host, so every numerical result is real; only the *clock* is
// modeled. The modeled clock reproduces the paper's Figure 9/10 phenomena:
// clustering amortizes one transfer over k GEMMs and approaches device
// GEMM throughput, wrapping pays a full Green's function round trip for
// two GEMMs and saturates lower, and both improve with matrix dimension.
package gpu

import (
	"fmt"
	"sync"
	"time"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// DeviceModel holds the cost-model parameters of the simulated accelerator.
type DeviceModel struct {
	Name string
	// TransferBytesPerSec is the host<->device (PCIe) bandwidth.
	TransferBytesPerSec float64
	// TransferLatency is the fixed per-transaction cost.
	TransferLatency time.Duration
	// KernelLaunch is the fixed cost of launching any kernel.
	KernelLaunch time.Duration
	// GemmFlopsPerSec is sustained double-precision DGEMM throughput.
	GemmFlopsPerSec float64
	// MemBytesPerSec is device memory bandwidth, which bounds the scaling
	// kernels (they do O(1) flops per element and are bandwidth limited,
	// as the paper notes for Algorithms 5 and 7).
	MemBytesPerSec float64
}

// TeslaC2050 returns a cost model calibrated to the paper's hardware:
// ~300 GFlop/s sustained CUBLAS DGEMM, 144 GB/s memory bandwidth, ~6 GB/s
// effective PCIe 2.0 transfer, microsecond-scale launch overhead.
func TeslaC2050() DeviceModel {
	return DeviceModel{
		Name:                "sim-tesla-c2050",
		TransferBytesPerSec: 6e9,
		TransferLatency:     10 * time.Microsecond,
		KernelLaunch:        5 * time.Microsecond,
		GemmFlopsPerSec:     300e9,
		MemBytesPerSec:      144e9,
	}
}

// Device is a simulated accelerator: matrices "resident" on it are ordinary
// host memory, but every operation advances a modeled clock according to
// the DeviceModel.
//
// The clock and counters are mutex-guarded so independent command streams —
// the spin-up and spin-down Accelerators of the spin-parallel sweep — can
// charge the same device concurrently, modeling two CUDA streams sharing
// one card. Matrix payloads are not guarded: concurrent use is only safe on
// disjoint device matrices, which per-spin Accelerator scratch guarantees.
type Device struct {
	model       DeviceModel
	mu          sync.Mutex
	clock       time.Duration
	realTime    time.Duration
	transferred int64
	flops       float64
	kernels     int
	allocBytes  int64
}

// NewDevice creates a device with the given cost model.
func NewDevice(model DeviceModel) *Device {
	if model.TransferBytesPerSec <= 0 || model.GemmFlopsPerSec <= 0 || model.MemBytesPerSec <= 0 {
		panic("gpu: cost model rates must be positive")
	}
	return &Device{model: model}
}

// Matrix is a device-resident column-major matrix.
type Matrix struct {
	dev  *Device
	m    *mat.Dense
	rows int
	cols int
}

// Rows returns the matrix row count.
func (a *Matrix) Rows() int { return a.rows }

// Cols returns the matrix column count.
func (a *Matrix) Cols() int { return a.cols }

// Malloc allocates an uninitialized device matrix.
func (d *Device) Malloc(rows, cols int) *Matrix {
	d.mu.Lock()
	d.allocBytes += int64(rows) * int64(cols) * 8
	d.mu.Unlock()
	return &Matrix{dev: d, m: mat.New(rows, cols), rows: rows, cols: cols}
}

//qmc:charges OpDeviceBytes
func (d *Device) chargeTransfer(bytes int64) {
	obs.Add(obs.OpDeviceBytes, bytes)
	d.mu.Lock()
	d.transferred += bytes
	d.clock += d.model.TransferLatency
	d.clock += time.Duration(float64(bytes) / d.model.TransferBytesPerSec * float64(time.Second))
	d.mu.Unlock()
}

//qmc:charges OpDeviceKernels,OpDeviceFlops
func (d *Device) chargeKernel(flops, memBytes float64) {
	obs.Add(obs.OpDeviceKernels, 1)
	obs.Add(obs.OpDeviceFlops, int64(flops))
	compute := flops / d.model.GemmFlopsPerSec
	memory := memBytes / d.model.MemBytesPerSec
	// The kernel runs at whichever resource is the bottleneck.
	t := compute
	if memory > t {
		t = memory
	}
	d.mu.Lock()
	d.kernels++
	d.flops += flops
	d.clock += d.model.KernelLaunch
	d.clock += time.Duration(t * float64(time.Second))
	d.mu.Unlock()
}

// SetMatrix copies a host matrix to the device (cublasSetMatrix).
func (d *Device) SetMatrix(dst *Matrix, src *mat.Dense) {
	d.checkOwned(dst)
	if dst.rows != src.Rows || dst.cols != src.Cols {
		panic(fmt.Sprintf("gpu: SetMatrix dimension mismatch: device matrix is %dx%d but host source is %dx%d", dst.rows, dst.cols, src.Rows, src.Cols))
	}
	dst.m.CopyFrom(src)
	d.chargeTransfer(int64(src.Rows) * int64(src.Cols) * 8)
}

// GetMatrix copies a device matrix back to the host (cublasGetMatrix).
func (d *Device) GetMatrix(dst *mat.Dense, src *Matrix) {
	d.checkOwned(src)
	if dst.Rows != src.rows || dst.Cols != src.cols {
		panic(fmt.Sprintf("gpu: GetMatrix dimension mismatch: host destination is %dx%d but device matrix is %dx%d", dst.Rows, dst.Cols, src.rows, src.cols))
	}
	dst.CopyFrom(src.m)
	d.chargeTransfer(int64(src.rows) * int64(src.cols) * 8)
	check.Finite("gpu.GetMatrix", dst)
}

// SetVector uploads a host vector (cublasSetVector), e.g. the V_l diagonal.
func (d *Device) SetVector(dst *Matrix, src []float64) {
	d.checkOwned(dst)
	if dst.cols != 1 || dst.rows != len(src) {
		panic(fmt.Sprintf("gpu: SetVector dimension mismatch: device vector is %dx%d but len(src)=%d", dst.rows, dst.cols, len(src)))
	}
	copy(dst.m.Col(0), src)
	d.chargeTransfer(int64(len(src)) * 8)
}

// Dgemm computes C = alpha*op(A)*op(B) + beta*C on the device.
func (d *Device) Dgemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	d.checkOwned(a)
	d.checkOwned(b)
	d.checkOwned(c)
	defer d.trackReal()()
	blas.Gemm(transA, transB, alpha, a.m, b.m, beta, c.m)
	m, k := a.rows, a.cols
	if transA {
		m, k = k, m
	}
	d.chargeKernel(blas.GemmFlops(m, c.cols, k), 0)
}

// Dcopy copies src into dst on the device.
func (d *Device) Dcopy(dst, src *Matrix) {
	d.checkOwned(dst)
	d.checkOwned(src)
	dst.m.CopyFrom(src.m)
	d.chargeKernel(0, 16*float64(src.rows)*float64(src.cols))
}

// ScaleRows is the paper's Algorithm 5 CUDA kernel: dst = diag(v) * src
// with one thread per row, coalesced column-major accesses, and v cached
// per thread. One launch, bandwidth bound (read + write of the matrix).
func (d *Device) ScaleRows(dst, src *Matrix, v *Matrix) {
	d.checkOwned(dst)
	d.checkOwned(src)
	d.checkOwned(v)
	if v.cols != 1 || v.rows != src.rows || dst.rows != src.rows || dst.cols != src.cols {
		panic(fmt.Sprintf("gpu: ScaleRows dimension mismatch: src is %dx%d, dst is %dx%d, v is %dx%d", src.rows, src.cols, dst.rows, dst.cols, v.rows, v.cols))
	}
	defer d.trackReal()()
	vv := v.m.Col(0)
	for j := 0; j < src.cols; j++ {
		sc := src.m.Col(j)
		dc := dst.m.Col(j)
		for i := range sc {
			dc[i] = vv[i] * sc[i]
		}
	}
	d.chargeKernel(float64(src.rows)*float64(src.cols),
		16*float64(src.rows)*float64(src.cols))
}

// ScaleRowsCols is the paper's Algorithm 7 kernel:
// G = diag(v) * G * diag(v)^{-1}, with the column factor read through the
// texture cache. In-place, one launch.
func (d *Device) ScaleRowsCols(g *Matrix, v *Matrix) {
	d.checkOwned(g)
	d.checkOwned(v)
	if v.cols != 1 || v.rows != g.rows || g.rows != g.cols {
		panic(fmt.Sprintf("gpu: ScaleRowsCols dimension mismatch: g is %dx%d, v is %dx%d", g.rows, g.cols, v.rows, v.cols))
	}
	defer d.trackReal()()
	vv := v.m.Col(0)
	for j := 0; j < g.cols; j++ {
		col := g.m.Col(j)
		inv := 1 / vv[j]
		for i := range col {
			col[i] *= vv[i] * inv
		}
	}
	d.chargeKernel(2*float64(g.rows)*float64(g.cols),
		16*float64(g.rows)*float64(g.cols))
}

func (d *Device) checkOwned(a *Matrix) {
	if a.dev != d {
		panic("gpu: matrix belongs to another device")
	}
}

// trackReal measures the wall time the host spends executing a simulated
// kernel, so benchmark harnesses can subtract it when combining real host
// time with the modeled device clock.
func (d *Device) trackReal() func() {
	start := time.Now()
	return func() {
		d.mu.Lock()
		d.realTime += time.Since(start)
		d.mu.Unlock()
	}
}

// Clock returns the modeled device time elapsed since the last Reset.
func (d *Device) Clock() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// RealTime returns the wall time the host spent executing simulated device
// kernels since the last Reset (transfer copies excluded; they stand in
// for DMA).
func (d *Device) RealTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.realTime
}

// Flops returns the floating-point operations charged since Reset.
func (d *Device) Flops() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flops
}

// Transferred returns host<->device bytes moved since Reset.
func (d *Device) Transferred() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transferred
}

// Kernels returns the number of kernel launches since Reset.
func (d *Device) Kernels() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernels
}

// GFlopsRate returns the achieved modeled throughput in GFlop/s.
func (d *Device) GFlopsRate() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.clock == 0 {
		return 0
	}
	return d.flops / d.clock.Seconds() / 1e9
}

// Reset zeroes the modeled clock and counters (allocations persist).
func (d *Device) Reset() {
	d.mu.Lock()
	d.clock = 0
	d.realTime = 0
	d.transferred = 0
	d.flops = 0
	d.kernels = 0
	d.mu.Unlock()
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s: %.0f GF dgemm, %.0f GB/s mem, %.1f GB/s pcie",
		d.model.Name, d.model.GemmFlopsPerSec/1e9, d.model.MemBytesPerSec/1e9,
		d.model.TransferBytesPerSec/1e9)
}

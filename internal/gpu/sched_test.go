package gpu

import (
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// TestPeerCopyMovesDataAndChargesLink checks the inter-device transfer:
// the payload arrives intact, the peer-byte ledger counts it, and both
// devices' DMA engines (plus the link-latency overhead) are charged.
func TestPeerCopyMovesDataAndChargesLink(t *testing.T) {
	g := NewGroup(2, TeslaC2050())
	n := 32
	src := g.Devs[0].Malloc(n, n)
	dst := g.Devs[1].Malloc(n, n)
	h := randomDense(rng.New(6), n)
	g.Devs[0].SetMatrix(src, h)
	g.Devs[0].Reset()
	g.Devs[1].Reset()

	g.PeerCopy(dst, src)

	back := mat.New(n, n)
	g.Devs[1].GetMatrix(back, dst)
	if !back.EqualApprox(h, 0) {
		t.Fatal("peer copy corrupted the payload")
	}
	if g.PeerBytes() != int64(n)*int64(n)*8 {
		t.Fatalf("peer bytes = %d, want %d", g.PeerBytes(), n*n*8)
	}
	if g.Devs[0].BusyTransfer() == 0 || g.Devs[1].BusyTransfer() == 0 {
		t.Fatal("both DMA engines must be occupied by a peer copy")
	}
	if g.Devs[0].LaunchOverhead() < g.Link.Latency {
		t.Fatal("link latency must count toward launch overhead")
	}
}

// TestPeerCopySameDeviceDegenerates: within one device it is a plain
// device copy and no link traffic is recorded.
func TestPeerCopySameDeviceDegenerates(t *testing.T) {
	g := NewGroup(1, TeslaC2050())
	a := g.Devs[0].Malloc(4, 4)
	b := g.Devs[0].Malloc(4, 4)
	g.PeerCopy(b, a)
	if g.PeerBytes() != 0 {
		t.Fatalf("same-device copy counted %d peer bytes", g.PeerBytes())
	}
}

// TestSpinPoolSplit checks the per-spin device split: 1 device serves both
// sectors, 2 gives each its own card, 4 gives each sector two.
func TestSpinPoolSplit(t *testing.T) {
	for _, tc := range []struct{ n, up, dn int }{
		{1, 1, 1},
		{2, 1, 1},
		{3, 2, 1},
		{4, 2, 2},
	} {
		g := NewGroup(tc.n, TeslaC2050())
		sc := Scheduler{G: g}
		up := sc.SpinPool(hubbard.Up)
		dn := sc.SpinPool(hubbard.Down)
		if len(up) != tc.up || len(dn) != tc.dn {
			t.Fatalf("n=%d: pools %d/%d, want %d/%d", tc.n, len(up), len(dn), tc.up, tc.dn)
		}
		if tc.n > 1 && up[0] == dn[0] {
			t.Fatalf("n=%d: spin sectors must not share a device", tc.n)
		}
	}
}

// TestPlacementRoundRobin checks the cluster-block and chain dealing.
func TestPlacementRoundRobin(t *testing.T) {
	g := NewGroup(4, TeslaC2050())
	sc := Scheduler{G: g}
	owners := sc.PlaceClusters(g.Devs[:2], 5)
	for c, o := range owners {
		if o != c%2 {
			t.Fatalf("cluster %d owner %d, want %d", c, o, c%2)
		}
	}
	chains := sc.PlaceChains(6)
	for c, o := range chains {
		if o != c%4 {
			t.Fatalf("chain %d owner %d, want %d", c, o, c%4)
		}
	}
}

// TestShardedClusterSetMatchesSingleDevice: dealing the cluster blocks
// over two devices must build bitwise the same products as one device.
func TestShardedClusterSetMatchesSingleDevice(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 4, 16, 31)
	dev := NewDevice(TeslaC2050())
	cs1 := NewClusterSet(NewAccelerator(dev, p), f, hubbard.Up, 4)

	grp := NewGroup(2, TeslaC2050())
	accs := []*Accelerator{NewAccelerator(grp.Devs[0], p), NewAccelerator(grp.Devs[1], p)}
	cs2 := NewClusterSetSharded(accs, f, hubbard.Up, 4)

	for c := 0; c < cs1.NC; c++ {
		if !cs2.Cluster(c).EqualApprox(cs1.Cluster(c), 0) {
			t.Fatalf("cluster %d differs between 1 and 2 devices", c)
		}
	}
	if cs2.AccFor(0) != accs[0] || cs2.AccFor(1) != accs[1] || cs2.AccFor(2) != accs[0] {
		t.Fatal("cluster blocks not dealt round-robin")
	}
}

// TestShardedStratifyMatchesSingleDevice: walking the stratification
// chain across device owners (peer-copying the running Q factor) must
// produce bitwise the single-device result, with real link traffic.
func TestShardedStratifyMatchesSingleDevice(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 4, 16, 33)
	dev := NewDevice(TeslaC2050())
	cs1 := NewClusterSet(NewAccelerator(dev, p), f, hubbard.Up, 4)
	g1 := GreenFromUDTHybrid(dev, StratifyHybrid(dev, cs1.Chain(1)))

	grp := NewGroup(2, TeslaC2050())
	accs := []*Accelerator{NewAccelerator(grp.Devs[0], p), NewAccelerator(grp.Devs[1], p)}
	cs2 := NewClusterSetSharded(accs, f, hubbard.Up, 4)
	g2 := GreenFromUDTHybrid(accs[0].Dev, StratifyHybridSharded(grp, cs2, 1))

	if !g2.EqualApprox(g1, 0) {
		t.Fatal("sharded stratification changed the Green's function")
	}
	if grp.PeerBytes() == 0 {
		t.Fatal("round-robin chain must cross the peer link")
	}
}

// TestSchedulerCostHeuristics: the crossing/gather estimates scale with
// their drivers (sanity for the placement decision they inform).
func TestSchedulerCostHeuristics(t *testing.T) {
	sc := Scheduler{G: NewGroup(2, TeslaC2050())}
	if sc.ChainCrossCost(64, 4) <= sc.ChainCrossCost(64, 2) {
		t.Fatal("crossing cost must grow with crossings")
	}
	if sc.GatherCost(64, 8) <= sc.GatherCost(64, 4) {
		t.Fatal("gather cost must grow with cluster count")
	}
}

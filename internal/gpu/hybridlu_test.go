package gpu

import (
	"testing"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func TestHybridLUSolveMatchesCPU(t *testing.T) {
	r := rng.New(41)
	for _, n := range []int{8, 33, 64, 100} {
		a := randomDense(r, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		x := randomDense(r, n)
		b := mat.New(n, n)
		// B = A X.
		cpuLU, err := lapack.LUFactor(a.Clone())
		if err != nil {
			t.Fatal(err)
		}
		_ = cpuLU
		// Form B with a plain product.
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.At(i, k) * x.At(k, j)
				}
				b.Set(i, j, s)
			}
		}
		dev := NewDevice(TeslaC2050())
		da := dev.Malloc(n, n)
		dev.SetMatrix(da, a)
		db := dev.Malloc(n, n)
		dev.SetMatrix(db, b)
		lu := LUFactorHybrid(dev, da)
		lu.Solve(db)
		got := mat.New(n, n)
		dev.GetMatrix(got, db)
		if d := mat.RelDiff(got, x); d > 1e-9 {
			t.Fatalf("n=%d: hybrid LU solve rel diff %g", n, d)
		}
	}
}

func TestHybridLUNeedsPivoting(t *testing.T) {
	// A matrix with a zero leading element forces a row swap.
	a := mat.New(3, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(2, 2, 3)
	a.Set(0, 0, 0)
	x := mat.New(3, 1)
	x.Set(0, 0, 1)
	x.Set(1, 0, -2)
	x.Set(2, 0, 0.5)
	b := mat.New(3, 1)
	for i := 0; i < 3; i++ {
		s := 0.0
		for k := 0; k < 3; k++ {
			s += a.At(i, k) * x.At(k, 0)
		}
		b.Set(i, 0, s)
	}
	dev := NewDevice(TeslaC2050())
	da := dev.Malloc(3, 3)
	dev.SetMatrix(da, a)
	db := dev.Malloc(3, 1)
	dev.SetMatrix(db, b)
	lu := LUFactorHybrid(dev, da)
	lu.Solve(db)
	got := mat.New(3, 1)
	dev.GetMatrix(got, db)
	if d := mat.RelDiff(got, x); d > 1e-12 {
		t.Fatalf("pivoted hybrid LU wrong: %g", d)
	}
}

func TestGreenHybridMatchesCPU(t *testing.T) {
	p, f := testSetup(t, 4, 4, 6, 4, 20, 43)
	cs := greens.NewClusterSet(p, f, hubbard.Up, 5)
	chain := cs.Chain(0)
	gCPU := greens.Green(chain)
	dev := NewDevice(TeslaC2050())
	gHyb := GreenHybrid(dev, chain)
	if d := mat.RelDiff(gHyb, gCPU); d > 1e-9 {
		t.Fatalf("hybrid full G differs from CPU: %g", d)
	}
	if dev.Flops() == 0 {
		t.Fatal("device did no work")
	}
}

func TestDeviceAxpyAndSwapRows(t *testing.T) {
	dev := NewDevice(TeslaC2050())
	r := rng.New(43)
	a := randomDense(r, 5)
	b := randomDense(r, 5)
	da := dev.Malloc(5, 5)
	db := dev.Malloc(5, 5)
	dev.SetMatrix(da, a)
	dev.SetMatrix(db, b)
	dev.Axpy(2, da, db)
	want := b.Clone()
	want.Add(2, a)
	got := mat.New(5, 5)
	dev.GetMatrix(got, db)
	if !got.EqualApprox(want, 1e-15) {
		t.Fatal("device Axpy wrong")
	}
	dev.SwapRows(da, 0, 4, 1, 3)
	dev.GetMatrix(got, da)
	if got.At(0, 1) != a.At(4, 1) || got.At(4, 2) != a.At(0, 2) || got.At(0, 0) != a.At(0, 0) {
		t.Fatal("device SwapRows wrong")
	}
}

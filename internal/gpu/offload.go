package gpu

import (
	"fmt"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// Accelerator owns the device-resident state of a DQMC offload session:
// the fixed kinetic propagators B and B^{-1} are uploaded once at the start
// of the simulation (the paper notes this amortization explicitly), and
// scratch matrices are reused across calls.
type Accelerator struct {
	Dev  *Device
	prop *hubbard.Propagator

	bKin, bInv *Matrix
	t, a, g    *Matrix // scratch
	v          *Matrix // diagonal vector
	hostV      []float64
}

// NewAccelerator uploads the kinetic propagators and allocates scratch.
func NewAccelerator(dev *Device, prop *hubbard.Propagator) *Accelerator {
	n := prop.Model.N()
	acc := &Accelerator{
		Dev:   dev,
		prop:  prop,
		bKin:  dev.Malloc(n, n),
		bInv:  dev.Malloc(n, n),
		t:     dev.Malloc(n, n),
		a:     dev.Malloc(n, n),
		g:     dev.Malloc(n, n),
		v:     dev.Malloc(n, 1),
		hostV: make([]float64, n),
	}
	dev.SetMatrix(acc.bKin, prop.Bkin)
	dev.SetMatrix(acc.bInv, prop.Binv)
	return acc
}

// Cluster computes the matrix cluster
//
//	A = B_{base+k-1} ... B_{base+1} B_{base}
//
// on the device (the paper's Algorithm 4, using the Algorithm 5 row-scaling
// kernel instead of per-row Dscal calls) and stores the result into dst on
// the host. Only the k diagonal V_l vectors and the result cross the bus.
func (acc *Accelerator) Cluster(dst *mat.Dense, f *hubbard.Field, sigma hubbard.Spin, base, k int) {
	dev := acc.Dev
	// A = V_base * B
	acc.prop.VDiag(sigma, f, base, acc.hostV)
	dev.SetVector(acc.v, acc.hostV)
	dev.ScaleRows(acc.a, acc.bKin, acc.v)
	for j := 1; j < k; j++ {
		// T = B * A; A = V_{base+j} * T
		dev.Dgemm(false, false, 1, acc.bKin, acc.a, 0, acc.t)
		acc.prop.VDiag(sigma, f, base+j, acc.hostV)
		dev.SetVector(acc.v, acc.hostV)
		dev.ScaleRows(acc.a, acc.t, acc.v)
	}
	dev.GetMatrix(dst, acc.a)
}

// Wrap advances the equal-time Green's function G <- B_l G B_l^{-1} on the
// device (Algorithm 6, with the Algorithm 7 combined row/column scaling
// kernel): upload G, two GEMMs against the resident propagators, one
// scaling kernel, download G.
//
//qmc:charges OpWraps
//qmc:hot
func (acc *Accelerator) Wrap(g *mat.Dense, f *hubbard.Field, sigma hubbard.Spin, l int) {
	obs.Add(obs.OpWraps, 1)
	dev := acc.Dev
	dev.SetMatrix(acc.g, g)
	dev.Dgemm(false, false, 1, acc.bKin, acc.g, 0, acc.t)
	dev.Dgemm(false, false, 1, acc.t, acc.bInv, 0, acc.g)
	acc.prop.VDiag(sigma, f, l, acc.hostV)
	dev.SetVector(acc.v, acc.hostV)
	dev.ScaleRowsCols(acc.g, acc.v)
	dev.GetMatrix(g, acc.g)
}

// ClusterSet mirrors greens.ClusterSet but builds the cluster products on
// the device; it satisfies the same recompute-on-change recycling contract.
type ClusterSet struct {
	K        int
	NC       int
	sigma    hubbard.Spin
	acc      *Accelerator
	clusters []*mat.Dense
}

// NewClusterSet builds all clusters for one spin on the accelerator.
func NewClusterSet(acc *Accelerator, f *hubbard.Field, sigma hubbard.Spin, k int) *ClusterSet {
	l := acc.prop.Model.L
	if k < 1 || l%k != 0 {
		panic(fmt.Sprintf("gpu: cluster size %d must divide the slice count %d", k, l))
	}
	n := acc.prop.Model.N()
	cs := &ClusterSet{K: k, NC: l / k, sigma: sigma, acc: acc, clusters: make([]*mat.Dense, l/k)}
	for c := range cs.clusters {
		cs.clusters[c] = mat.New(n, n)
		cs.Recompute(f, c)
	}
	return cs
}

// Recompute rebuilds cluster c on the device.
func (cs *ClusterSet) Recompute(f *hubbard.Field, c int) {
	cs.acc.Cluster(cs.clusters[c], f, cs.sigma, c*cs.K, cs.K)
}

// Cluster returns the host copy of cluster c.
func (cs *ClusterSet) Cluster(c int) *mat.Dense { return cs.clusters[c] }

// Clusters returns NC, satisfying the greens.ClusterSource interface so a
// greens.StratStack can maintain prefix/suffix UDTs over device-built
// clusters.
func (cs *ClusterSet) Clusters() int { return cs.NC }

// Chain returns the clusters in application order for boundary c (see
// greens.ClusterSet.Chain).
func (cs *ClusterSet) Chain(c int) []*mat.Dense {
	out := make([]*mat.Dense, 0, cs.NC)
	for i := 0; i < cs.NC; i++ {
		out = append(out, cs.clusters[(c+i)%cs.NC])
	}
	return out
}

// GreenAt evaluates the stratified Green's function at boundary c: the
// cluster products come from the device, the pre-pivoted stratification
// (Algorithm 3) runs on the host — the hybrid split of the paper's
// Section VI-C.
func (cs *ClusterSet) GreenAt(c int) *mat.Dense {
	return greens.Green(cs.Chain(c))
}

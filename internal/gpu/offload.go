package gpu

import (
	"fmt"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// Accelerator owns the device-resident state of a DQMC offload session:
// the fixed kinetic propagators B and B^{-1} are uploaded once at the start
// of the simulation (the paper notes this amortization explicitly), and
// scratch matrices are reused across calls.
//
// Work is issued on two streams — a compute stream for the GEMMs and
// scaling kernels and a copy stream for host<->device traffic — with Event
// dependencies expressing the real dataflow, so the modeled clock overlaps
// the next diagonal upload with the current GEMM (double-buffered V
// vectors, the cp.async pipeline idiom). With EnableGraphs the wrap and
// cluster launch sequences are captured once into command graphs and
// replayed for a single launch overhead; host nodes re-read the call
// parameters (field, slice, base) on every replay and the host operand is
// rebound when the destination changes, so one recording serves the whole
// sweep.
type Accelerator struct {
	Dev  *Device
	prop *hubbard.Propagator

	comp, xfer *Stream

	bKin, bInv *Matrix
	t, a, g    *Matrix    // scratch
	v          [2]*Matrix // double-buffered diagonal vectors
	hostV      [2][]float64

	gUp, compDone *Event
	up, consumed  [2]*Event

	// Replay parameters: the wrap/cluster host nodes read these fields at
	// execution time, so a captured graph follows the live sweep state.
	wp struct {
		f     *hubbard.Field
		sigma hubbard.Spin
		l     int
	}
	cp struct {
		f     *hubbard.Field
		sigma hubbard.Spin
		base  int
	}
	wrapVFn func()

	graphs    bool
	wrapGraph *Graph
	wrapBound *mat.Dense // host G the wrap graph transfers are bound to
	clGraph   *Graph
	clK       int
	clBound   *mat.Dense // host destination the cluster graph downloads to
}

// NewAccelerator uploads the kinetic propagators and allocates scratch.
func NewAccelerator(dev *Device, prop *hubbard.Propagator) *Accelerator {
	n := prop.Model.N()
	acc := &Accelerator{
		Dev:      dev,
		prop:     prop,
		comp:     dev.NewStream(),
		xfer:     dev.NewStream(),
		bKin:     dev.Malloc(n, n),
		bInv:     dev.Malloc(n, n),
		t:        dev.Malloc(n, n),
		a:        dev.Malloc(n, n),
		g:        dev.Malloc(n, n),
		gUp:      NewEvent(),
		compDone: NewEvent(),
	}
	for i := range acc.v {
		acc.v[i] = dev.Malloc(n, 1)
		acc.hostV[i] = make([]float64, n)
		acc.up[i] = NewEvent()
		acc.consumed[i] = NewEvent()
	}
	acc.wrapVFn = func() { acc.prop.VDiag(acc.wp.sigma, acc.wp.f, acc.wp.l, acc.hostV[0]) }
	acc.comp.SetMatrix(acc.bKin, prop.Bkin)
	acc.comp.SetMatrix(acc.bInv, prop.Binv)
	return acc
}

// EnableGraphs switches command-graph capture/replay of the wrap and
// cluster sequences on or off. Turning it on (or off) never changes the
// numbers — only whether the launch overhead is paid per kernel or per
// recorded sequence.
func (acc *Accelerator) EnableGraphs(on bool) {
	acc.graphs = on
	if !on {
		acc.InvalidateGraphs()
	}
}

// InvalidateGraphs drops the captured graphs (required after a cluster-size
// change; the next call re-captures).
func (acc *Accelerator) InvalidateGraphs() {
	acc.wrapGraph = nil
	acc.wrapBound = nil
	acc.clGraph = nil
	acc.clBound = nil
	acc.clK = 0
}

// Cluster computes the matrix cluster
//
//	A = B_{base+k-1} ... B_{base+1} B_{base}
//
// on the device (the paper's Algorithm 4, using the Algorithm 5 row-scaling
// kernel instead of per-row Dscal calls) and stores the result into dst on
// the host. Only the k diagonal V_l vectors and the result cross the bus,
// and the upload of V_{l+1} overlaps the GEMM absorbing B_l (double
// buffering on the copy stream).
func (acc *Accelerator) Cluster(dst *mat.Dense, f *hubbard.Field, sigma hubbard.Spin, base, k int) {
	acc.cp.f, acc.cp.sigma, acc.cp.base = f, sigma, base
	if acc.graphs {
		if acc.clGraph == nil || acc.clK != k {
			acc.captureCluster(dst, k)
		} else if acc.clBound != dst {
			acc.clGraph.RebindHost(acc.clBound, dst)
			acc.clBound = dst
		}
		acc.clGraph.Replay()
		return
	}
	acc.issueCluster(dst, k)
}

// issueCluster emits the cluster pipeline on the two streams (directly, or
// into a capturing graph). The host VDiag nodes read acc.cp at execution
// time and each captures only its slice offset j, so a recorded graph
// re-parameterizes per replay.
func (acc *Accelerator) issueCluster(dst *mat.Dense, k int) {
	for j := 0; j < k; j++ {
		j := j
		buf := j & 1
		if j >= 2 {
			// The buffer is reused from iteration j-2: its upload must not
			// start before the compute stream consumed it.
			acc.xfer.Wait(acc.consumed[buf])
		}
		acc.xfer.Host(func() { acc.prop.VDiag(acc.cp.sigma, acc.cp.f, acc.cp.base+j, acc.hostV[buf]) })
		acc.xfer.SetVector(acc.v[buf], acc.hostV[buf])
		acc.xfer.Record(acc.up[buf])
		acc.comp.Wait(acc.up[buf])
		if j == 0 {
			// A = V_base * B
			acc.comp.ScaleRows(acc.a, acc.bKin, acc.v[buf])
		} else {
			// T = B * A; A = V_{base+j} * T
			acc.comp.Dgemm(false, false, 1, acc.bKin, acc.a, 0, acc.t)
			acc.comp.ScaleRows(acc.a, acc.t, acc.v[buf])
		}
		acc.comp.Record(acc.consumed[buf])
	}
	acc.comp.GetMatrix(dst, acc.a)
}

// captureCluster records the k-slice cluster pipeline into a command graph
// bound to dst.
func (acc *Accelerator) captureCluster(dst *mat.Dense, k int) {
	acc.clGraph = acc.Dev.NewGraph()
	acc.clK = k
	acc.clBound = dst
	acc.clGraph.Capture(func() { acc.issueCluster(dst, k) }, acc.comp, acc.xfer)
}

// Wrap advances the equal-time Green's function G <- B_l G B_l^{-1} on the
// device (Algorithm 6, with the Algorithm 7 combined row/column scaling
// kernel): upload G, two GEMMs against the resident propagators, one
// scaling kernel, download G. The V_l diagonal upload rides the copy
// stream and overlaps the GEMMs.
//
//qmc:charges OpWraps
//qmc:hot
func (acc *Accelerator) Wrap(g *mat.Dense, f *hubbard.Field, sigma hubbard.Spin, l int) {
	obs.Add(obs.OpWraps, 1)
	acc.wp.f, acc.wp.sigma, acc.wp.l = f, sigma, l
	if acc.graphs {
		if acc.wrapGraph == nil {
			acc.captureWrap(g)
		} else if acc.wrapBound != g {
			acc.wrapGraph.RebindHost(acc.wrapBound, g)
			acc.wrapBound = g
		}
		acc.wrapGraph.Replay()
		return
	}
	acc.issueWrap(g)
}

// issueWrap emits the wrap sequence on the two streams.
func (acc *Accelerator) issueWrap(g *mat.Dense) {
	acc.xfer.SetMatrix(acc.g, g)
	acc.xfer.Record(acc.gUp)
	acc.xfer.Host(acc.wrapVFn)
	acc.xfer.SetVector(acc.v[0], acc.hostV[0])
	acc.xfer.Record(acc.up[0])
	acc.comp.Wait(acc.gUp)
	acc.comp.Dgemm(false, false, 1, acc.bKin, acc.g, 0, acc.t)
	acc.comp.Dgemm(false, false, 1, acc.t, acc.bInv, 0, acc.g)
	acc.comp.Wait(acc.up[0])
	acc.comp.ScaleRowsCols(acc.g, acc.v[0])
	acc.comp.Record(acc.compDone)
	acc.xfer.Wait(acc.compDone)
	acc.xfer.GetMatrix(g, acc.g)
}

// captureWrap records the wrap sequence into a command graph bound to g.
func (acc *Accelerator) captureWrap(g *mat.Dense) {
	acc.wrapGraph = acc.Dev.NewGraph()
	acc.wrapBound = g
	acc.wrapGraph.Capture(func() { acc.issueWrap(g) }, acc.comp, acc.xfer)
}

// ClusterSet mirrors greens.ClusterSet but builds the cluster products on
// the device; it satisfies the same recompute-on-change recycling contract.
// With more than one accelerator the cluster blocks are dealt round-robin
// (per-slice-block sharding): cluster c is built — and its slices wrapped
// and flushed — on the device owning it.
type ClusterSet struct {
	K        int
	NC       int
	sigma    hubbard.Spin
	accs     []*Accelerator
	clusters []*mat.Dense
}

// NewClusterSet builds all clusters for one spin on a single accelerator.
func NewClusterSet(acc *Accelerator, f *hubbard.Field, sigma hubbard.Spin, k int) *ClusterSet {
	return NewClusterSetSharded([]*Accelerator{acc}, f, sigma, k)
}

// NewClusterSetSharded builds the clusters for one spin round-robin over a
// pool of accelerators (one per device of the spin's scheduler pool).
func NewClusterSetSharded(accs []*Accelerator, f *hubbard.Field, sigma hubbard.Spin, k int) *ClusterSet {
	if len(accs) == 0 {
		panic("gpu: cluster set needs at least one accelerator")
	}
	l := accs[0].prop.Model.L
	if k < 1 || l%k != 0 {
		panic(fmt.Sprintf("gpu: cluster size %d must divide the slice count %d", k, l))
	}
	n := accs[0].prop.Model.N()
	cs := &ClusterSet{K: k, NC: l / k, sigma: sigma, accs: accs, clusters: make([]*mat.Dense, l/k)}
	for c := range cs.clusters {
		cs.clusters[c] = mat.New(n, n)
		cs.Recompute(f, c)
	}
	return cs
}

// AccFor returns the accelerator owning cluster block c.
func (cs *ClusterSet) AccFor(c int) *Accelerator { return cs.accs[c%len(cs.accs)] }

// Recompute rebuilds cluster c on its owning device.
func (cs *ClusterSet) Recompute(f *hubbard.Field, c int) {
	cs.AccFor(c).Cluster(cs.clusters[c], f, cs.sigma, c*cs.K, cs.K)
}

// Cluster returns the host copy of cluster c.
func (cs *ClusterSet) Cluster(c int) *mat.Dense { return cs.clusters[c] }

// Clusters returns NC, satisfying the greens.ClusterSource interface so a
// greens.StratStack can maintain prefix/suffix UDTs over device-built
// clusters.
func (cs *ClusterSet) Clusters() int { return cs.NC }

// Chain returns the clusters in application order for boundary c (see
// greens.ClusterSet.Chain).
func (cs *ClusterSet) Chain(c int) []*mat.Dense {
	out := make([]*mat.Dense, 0, cs.NC)
	for i := 0; i < cs.NC; i++ {
		out = append(out, cs.clusters[(c+i)%cs.NC])
	}
	return out
}

// GreenAt evaluates the stratified Green's function at boundary c: the
// cluster products come from the device, the pre-pivoted stratification
// (Algorithm 3) runs on the host — the hybrid split of the paper's
// Section VI-C.
func (cs *ClusterSet) GreenAt(c int) *mat.Dense {
	return greens.Green(cs.Chain(c))
}

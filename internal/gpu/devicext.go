package gpu

import (
	"fmt"
	"math"

	"questgo/internal/mat"
)

// Extended device operations used by the hybrid QR / stratification
// (Section VII future work): sub-matrix transfers, column scaling, column
// norms and column permutation kernels.

// Sub returns a view of the device matrix sharing its storage.
func (a *Matrix) Sub(i, j, rows, cols int) *Matrix {
	return &Matrix{dev: a.dev, m: a.m.View(i, j, rows, cols), rows: rows, cols: cols}
}

// GetSub downloads the (i, j)-anchored sub-matrix of src with the shape of
// dst.
func (d *Device) GetSub(dst *mat.Dense, src *Matrix, i, j int) {
	d.checkOwned(src)
	view := src.m.View(i, j, dst.Rows, dst.Cols)
	dst.CopyFrom(view)
	d.s0.chargeTransfer(int64(dst.Rows)*int64(dst.Cols)*8, true)
}

// SetSub uploads src into the (i, j)-anchored sub-matrix of dst.
func (d *Device) SetSub(dst *Matrix, i, j int, src *mat.Dense) {
	d.checkOwned(dst)
	view := dst.m.View(i, j, src.Rows, src.Cols)
	view.CopyFrom(src)
	d.s0.chargeTransfer(int64(src.Rows)*int64(src.Cols)*8, true)
}

// ScaleCols multiplies column j of a by v[j] (right diagonal scaling), a
// bandwidth-bound kernel like ScaleRows.
func (d *Device) ScaleCols(a *Matrix, v *Matrix) {
	d.checkOwned(a)
	d.checkOwned(v)
	if v.cols != 1 || v.rows != a.cols {
		panic(fmt.Sprintf("gpu: ScaleCols dimension mismatch: a is %dx%d, v is %dx%d", a.rows, a.cols, v.rows, v.cols))
	}
	defer d.s0.trackReal()()
	vv := v.m.Col(0)
	for j := 0; j < a.cols; j++ {
		col := a.m.Col(j)
		s := vv[j]
		for i := range col {
			col[i] *= s
		}
	}
	d.s0.chargeKernel(float64(a.rows)*float64(a.cols), 16*float64(a.rows)*float64(a.cols), true)
}

// ColumnNorms computes the Euclidean norm of every column on the device
// (one bandwidth-bound reduction kernel) and downloads the n results —
// the device half of the pre-pivoting step.
func (d *Device) ColumnNorms(a *Matrix, dst []float64) {
	d.checkOwned(a)
	if len(dst) != a.cols {
		panic(fmt.Sprintf("gpu: ColumnNorms length mismatch: a has %d cols but len(dst)=%d", a.cols, len(dst)))
	}
	defer d.s0.trackReal()()
	for j := 0; j < a.cols; j++ {
		var scale, ssq float64 = 0, 1
		for _, x := range a.m.Col(j) {
			if x == 0 {
				continue
			}
			ax := math.Abs(x)
			if scale < ax {
				r := scale / ax
				ssq = 1 + ssq*r*r
				scale = ax
			} else {
				r := ax / scale
				ssq += r * r
			}
		}
		dst[j] = scale * math.Sqrt(ssq)
	}
	d.s0.chargeKernel(2*float64(a.rows)*float64(a.cols), 8*float64(a.rows)*float64(a.cols), true)
	d.s0.chargeTransfer(int64(a.cols)*8, true)
}

// PermuteCols gathers columns of a by perm in place (dst column j takes
// source column perm[j]) — one gather kernel plus the tiny index upload.
func (d *Device) PermuteCols(a *Matrix, perm []int) {
	d.checkOwned(a)
	if len(perm) != a.cols {
		panic(fmt.Sprintf("gpu: PermuteCols length mismatch: a has %d cols but len(perm)=%d", a.cols, len(perm)))
	}
	defer d.s0.trackReal()()
	tmp := mat.New(a.rows, a.cols)
	for j, p := range perm {
		copy(tmp.Col(j), a.m.Col(p))
	}
	a.m.CopyFrom(tmp)
	d.s0.chargeTransfer(int64(len(perm))*8, true)
	d.s0.chargeKernel(0, 16*float64(a.rows)*float64(a.cols), true)
}

// SwapRows exchanges rows r1 and r2 of a over columns [c0, c1) — the
// pivoting primitive of the hybrid LU, bandwidth bound on the row pair.
func (d *Device) SwapRows(a *Matrix, r1, r2, c0, c1 int) {
	d.checkOwned(a)
	if c1 > a.cols {
		c1 = a.cols
	}
	if r1 == r2 || c0 >= c1 {
		return
	}
	defer d.s0.trackReal()()
	for c := c0; c < c1; c++ {
		col := a.m.Col(c)
		col[r1], col[r2] = col[r2], col[r1]
	}
	d.s0.chargeKernel(0, 32*float64(c1-c0), true)
}

// Axpy computes dst += alpha * src element-wise on the device.
func (d *Device) Axpy(alpha float64, src, dst *Matrix) {
	d.checkOwned(src)
	d.checkOwned(dst)
	if src.rows != dst.rows || src.cols != dst.cols {
		panic(fmt.Sprintf("gpu: Axpy dimension mismatch: src is %dx%d but dst is %dx%d", src.rows, src.cols, dst.rows, dst.cols))
	}
	defer d.s0.trackReal()()
	for j := 0; j < src.cols; j++ {
		sc := src.m.Col(j)
		dc := dst.m.Col(j)
		for i := range sc {
			dc[i] += alpha * sc[i]
		}
	}
	d.s0.chargeKernel(2*float64(src.rows)*float64(src.cols),
		24*float64(src.rows)*float64(src.cols), true)
}

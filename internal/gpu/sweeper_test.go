package gpu

import (
	"math"
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/measure"
	"questgo/internal/obs"
	"questgo/internal/rng"
	"questgo/internal/update"
)

func TestHybridSweeperGreenConsistency(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 51)
	dev := NewDevice(TeslaC2050())
	sw := NewSweeper(dev, p, f, rng.New(5), SweeperOptions{ClusterK: 4, Delay: 3})
	for i := 0; i < 3; i++ {
		sw.Sweep()
	}
	// The incrementally maintained G must match a fresh CPU evaluation of
	// the final field.
	fresh := sw.freshCPU(hubbard.Up)
	if d := mat.RelDiff(sw.GreenUp(), fresh); d > 1e-8 {
		t.Fatalf("hybrid sweeper G drifted: %g", d)
	}
	fresh = sw.freshCPU(hubbard.Down)
	if d := mat.RelDiff(sw.GreenDn(), fresh); d > 1e-8 {
		t.Fatalf("hybrid sweeper spin-down G drifted: %g", d)
	}
	if sw.AcceptanceRate() <= 0 || sw.AcceptanceRate() >= 1 {
		t.Fatalf("acceptance %v implausible", sw.AcceptanceRate())
	}
	if dev.Flops() == 0 {
		t.Fatal("device unused")
	}
}

// TestHybridSweeperSetClusterK resizes the hybrid sweeper's k between
// sweeps and checks the incrementally maintained G still matches a fresh
// CPU evaluation of the final field.
func TestHybridSweeperSetClusterK(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 12, 57)
	dev := NewDevice(TeslaC2050())
	sw := NewSweeper(dev, p, f, rng.New(13), SweeperOptions{ClusterK: 4, Delay: 3})
	sw.Sweep()
	for _, k := range []int{2, 6, 3} {
		if got := sw.SetClusterK(k); got != k {
			t.Fatalf("SetClusterK(%d) = %d on L=12", k, got)
		}
		if sw.ClusterK() != k {
			t.Fatalf("ClusterK() = %d, want %d", sw.ClusterK(), k)
		}
		sw.Sweep()
		fresh := sw.freshCPU(hubbard.Up)
		if d := mat.RelDiff(sw.GreenUp(), fresh); d > 1e-8 {
			t.Fatalf("k=%d: hybrid G drifted after resize: %g", k, d)
		}
	}
	// 5 does not divide 12: snap down to 4.
	if got := sw.SetClusterK(5); got != 4 {
		t.Fatalf("SetClusterK(5) = %d on L=12, want 4", got)
	}
}

func TestHybridSweeperPhysicsAgreesWithCPU(t *testing.T) {
	// Same model, independent chains: observables must agree within
	// combined statistical errors.
	run := func(hybrid bool) (docc, saf float64) {
		p, f := testSetup(t, 4, 4, 4, 2, 16, 53)
		r := rng.New(77)
		var dSum, sSum float64
		const warm, meas = 30, 80
		if hybrid {
			dev := NewDevice(TeslaC2050())
			sw := NewSweeper(dev, p, f, r, SweeperOptions{ClusterK: 8})
			for i := 0; i < warm; i++ {
				sw.Sweep()
			}
			for i := 0; i < meas; i++ {
				sw.Sweep()
				et := measure.Measure(p.Model.Lat, sw.GreenUp(), sw.GreenDn(), sw.Sign())
				dSum += et.DoubleOcc / meas
				sSum += et.AFStructureFactor() / meas
			}
		} else {
			sw := update.NewSweeper(p, f, r, update.Options{ClusterK: 8})
			for i := 0; i < warm; i++ {
				sw.Sweep()
			}
			for i := 0; i < meas; i++ {
				sw.Sweep()
				et := measure.Measure(p.Model.Lat, sw.GreenUp(), sw.GreenDn(), sw.Sign())
				dSum += et.DoubleOcc / meas
				sSum += et.AFStructureFactor() / meas
			}
		}
		return dSum, sSum
	}
	dH, sH := run(true)
	dC, sC := run(false)
	if math.Abs(dH-dC) > 0.01 {
		t.Fatalf("double occupancy: hybrid %v vs CPU %v", dH, dC)
	}
	if math.Abs(sH-sC) > 0.4 {
		t.Fatalf("S(pi,pi): hybrid %v vs CPU %v", sH, sC)
	}
	t.Logf("hybrid vs CPU: docc %.4f/%.4f, S_AF %.3f/%.3f", dH, dC, sH, sC)
}

func TestHybridSweeperProfile(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 57)
	col := obs.New()
	dev := NewDevice(TeslaC2050())
	sw := NewSweeper(dev, p, f, rng.New(3), SweeperOptions{ClusterK: 4, Obs: col})
	col.Reset()
	sw.Sweep()
	pd := col.PhaseDurations()
	for ph := obs.PhaseWrap; ph < obs.PhaseMeasure; ph++ {
		if pd[ph] == 0 {
			t.Fatalf("phase %s never timed", ph)
		}
	}
	// The simulated device must have charged its counters through obs too.
	d := col.OpDeltas()
	if d[obs.OpDeviceKernels] == 0 || d[obs.OpDeviceBytes] == 0 || d[obs.OpDeviceFlops] == 0 {
		t.Fatalf("device op counters not populated: kernels=%d bytes=%d flops=%d",
			d[obs.OpDeviceKernels], d[obs.OpDeviceBytes], d[obs.OpDeviceFlops])
	}
}

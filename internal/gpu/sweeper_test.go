package gpu

import (
	"math"
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/measure"
	"questgo/internal/obs"
	"questgo/internal/rng"
	"questgo/internal/update"
)

func TestHybridSweeperGreenConsistency(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 51)
	dev := NewDevice(TeslaC2050())
	sw := NewSweeper(dev, p, f, rng.New(5), SweeperOptions{ClusterK: 4, Delay: 3})
	for i := 0; i < 3; i++ {
		sw.Sweep()
	}
	// The incrementally maintained G must match a fresh CPU evaluation of
	// the final field.
	fresh := sw.freshCPU(hubbard.Up)
	if d := mat.RelDiff(sw.GreenUp(), fresh); d > 1e-8 {
		t.Fatalf("hybrid sweeper G drifted: %g", d)
	}
	fresh = sw.freshCPU(hubbard.Down)
	if d := mat.RelDiff(sw.GreenDn(), fresh); d > 1e-8 {
		t.Fatalf("hybrid sweeper spin-down G drifted: %g", d)
	}
	if sw.AcceptanceRate() <= 0 || sw.AcceptanceRate() >= 1 {
		t.Fatalf("acceptance %v implausible", sw.AcceptanceRate())
	}
	if dev.Flops() == 0 {
		t.Fatal("device unused")
	}
}

// TestHybridSweeperSetClusterK resizes the hybrid sweeper's k between
// sweeps and checks the incrementally maintained G still matches a fresh
// CPU evaluation of the final field.
func TestHybridSweeperSetClusterK(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 12, 57)
	dev := NewDevice(TeslaC2050())
	sw := NewSweeper(dev, p, f, rng.New(13), SweeperOptions{ClusterK: 4, Delay: 3})
	sw.Sweep()
	for _, k := range []int{2, 6, 3} {
		if got := sw.SetClusterK(k); got != k {
			t.Fatalf("SetClusterK(%d) = %d on L=12", k, got)
		}
		if sw.ClusterK() != k {
			t.Fatalf("ClusterK() = %d, want %d", sw.ClusterK(), k)
		}
		sw.Sweep()
		fresh := sw.freshCPU(hubbard.Up)
		if d := mat.RelDiff(sw.GreenUp(), fresh); d > 1e-8 {
			t.Fatalf("k=%d: hybrid G drifted after resize: %g", k, d)
		}
	}
	// 5 does not divide 12: snap down to 4.
	if got := sw.SetClusterK(5); got != 4 {
		t.Fatalf("SetClusterK(5) = %d on L=12, want 4", got)
	}
}

func TestHybridSweeperPhysicsAgreesWithCPU(t *testing.T) {
	// Same model, independent chains: observables must agree within
	// combined statistical errors.
	run := func(hybrid bool) (docc, saf float64) {
		p, f := testSetup(t, 4, 4, 4, 2, 16, 53)
		r := rng.New(77)
		var dSum, sSum float64
		const warm, meas = 30, 80
		if hybrid {
			dev := NewDevice(TeslaC2050())
			sw := NewSweeper(dev, p, f, r, SweeperOptions{ClusterK: 8})
			for i := 0; i < warm; i++ {
				sw.Sweep()
			}
			for i := 0; i < meas; i++ {
				sw.Sweep()
				et := measure.Measure(p.Model.Lat, sw.GreenUp(), sw.GreenDn(), sw.Sign())
				dSum += et.DoubleOcc / meas
				sSum += et.AFStructureFactor() / meas
			}
		} else {
			sw := update.NewSweeper(p, f, r, update.Options{ClusterK: 8})
			for i := 0; i < warm; i++ {
				sw.Sweep()
			}
			for i := 0; i < meas; i++ {
				sw.Sweep()
				et := measure.Measure(p.Model.Lat, sw.GreenUp(), sw.GreenDn(), sw.Sign())
				dSum += et.DoubleOcc / meas
				sSum += et.AFStructureFactor() / meas
			}
		}
		return dSum, sSum
	}
	dH, sH := run(true)
	dC, sC := run(false)
	if math.Abs(dH-dC) > 0.01 {
		t.Fatalf("double occupancy: hybrid %v vs CPU %v", dH, dC)
	}
	if math.Abs(sH-sC) > 0.4 {
		t.Fatalf("S(pi,pi): hybrid %v vs CPU %v", sH, sC)
	}
	t.Logf("hybrid vs CPU: docc %.4f/%.4f, S_AF %.3f/%.3f", dH, dC, sH, sC)
}

// fieldsEqual compares two auxiliary-field configurations exactly.
func fieldsEqual(a, b *hubbard.Field) bool {
	for s := range a.H {
		for i := range a.H[s] {
			if a.H[s][i] != b.H[s][i] {
				return false
			}
		}
	}
	return true
}

// TestSweeperDeviceAndGraphInvariance is the tentpole acceptance test:
// the physical trajectory (auxiliary field and both Green's functions)
// must be bitwise identical across 1, 2 and 4 devices and with command
// graphs off or on — sharding and graphs shape modeled time only. The
// stack refresh path and the NoStack full-rebuild path (which shards the
// stratification chain over the peer link) are both pinned.
func TestSweeperDeviceAndGraphInvariance(t *testing.T) {
	for _, noStack := range []bool{false, true} {
		run := func(nd int, graphs bool) (*hubbard.Field, *mat.Dense, *mat.Dense) {
			p, f := testSetup(t, 3, 3, 4, 2, 8, 61)
			grp := NewGroup(nd, TeslaC2050())
			sw := NewGroupSweeper(grp, p, f, rng.New(11),
				SweeperOptions{ClusterK: 4, Delay: 3, NoStack: noStack, UseGraphs: graphs})
			sw.Sweep()
			sw.Sweep()
			return f, sw.GreenUp().Clone(), sw.GreenDn().Clone()
		}
		fRef, gUpRef, gDnRef := run(1, false)
		for _, nd := range []int{1, 2, 4} {
			for _, graphs := range []bool{false, true} {
				if nd == 1 && !graphs {
					continue
				}
				f, gUp, gDn := run(nd, graphs)
				if !fieldsEqual(f, fRef) {
					t.Fatalf("noStack=%v devices=%d graphs=%v: auxiliary field diverged", noStack, nd, graphs)
				}
				if !gUp.EqualApprox(gUpRef, 0) || !gDn.EqualApprox(gDnRef, 0) {
					t.Fatalf("noStack=%v devices=%d graphs=%v: Green's functions diverged", noStack, nd, graphs)
				}
			}
		}
	}
}

// TestSweeperSteadyDeviceMemory asserts the device footprint reaches
// steady state: after the first sweep, further sweeps — and a cluster-size
// resize — neither allocate net device memory nor raise the high-water
// mark. Covers the stack path and the NoStack path (whose sharded
// stratification allocates scratch per refresh and must free all of it).
func TestSweeperSteadyDeviceMemory(t *testing.T) {
	for _, noStack := range []bool{false, true} {
		p, f := testSetup(t, 3, 3, 4, 2, 8, 67)
		grp := NewGroup(4, TeslaC2050())
		sw := NewGroupSweeper(grp, p, f, rng.New(29),
			SweeperOptions{ClusterK: 4, Delay: 3, NoStack: noStack, UseGraphs: true})
		sw.Sweep()
		alloc := make([]int64, grp.Size())
		high := make([]int64, grp.Size())
		for i, d := range grp.Devs {
			alloc[i], high[i] = d.AllocBytes(), d.MaxAllocBytes()
			if alloc[i] == 0 {
				t.Fatalf("noStack=%v: device %d unused", noStack, i)
			}
		}
		sw.Sweep()
		sw.SetClusterK(2)
		sw.Sweep()
		sw.Sweep()
		for i, d := range grp.Devs {
			if d.AllocBytes() != alloc[i] {
				t.Fatalf("noStack=%v: device %d allocation drifted %d -> %d bytes (leak or double free)",
					noStack, i, alloc[i], d.AllocBytes())
			}
			if d.MaxAllocBytes() != high[i] {
				t.Fatalf("noStack=%v: device %d high-water grew %d -> %d bytes after warmup",
					noStack, i, high[i], d.MaxAllocBytes())
			}
		}
	}
}

// TestShardedSetClusterKUnderAutopilot covers the autopilot actuator on a
// sharded sweeper: resizing k between sweeps (exactly as core's
// autopilotStep does) on 2- and 4-device groups must keep the trajectory
// bitwise identical to the single-device sweeper under the same schedule,
// and the final Green's function consistent with a fresh CPU evaluation.
func TestShardedSetClusterKUnderAutopilot(t *testing.T) {
	schedule := []int{2, 4, 1}
	run := func(nd int) (*hubbard.Field, *Sweeper) {
		p, f := testSetup(t, 3, 3, 4, 2, 8, 71)
		grp := NewGroup(nd, TeslaC2050())
		sw := NewGroupSweeper(grp, p, f, rng.New(19), SweeperOptions{ClusterK: 4, Delay: 3, UseGraphs: true})
		sw.Sweep()
		for _, k := range schedule {
			if got := sw.SetClusterK(k); got != k {
				t.Fatalf("SetClusterK(%d) = %d on L=8", k, got)
			}
			sw.Sweep()
		}
		return f, sw
	}
	fRef, swRef := run(1)
	for _, nd := range []int{2, 4} {
		f, sw := run(nd)
		if !fieldsEqual(f, fRef) {
			t.Fatalf("devices=%d: field diverged under the k schedule", nd)
		}
		if !sw.GreenUp().EqualApprox(swRef.GreenUp(), 0) || !sw.GreenDn().EqualApprox(swRef.GreenDn(), 0) {
			t.Fatalf("devices=%d: Green's functions diverged under the k schedule", nd)
		}
		fresh := sw.freshCPU(hubbard.Up)
		if d := mat.RelDiff(sw.GreenUp(), fresh); d > 1e-8 {
			t.Fatalf("devices=%d: sharded G inconsistent with CPU after resizes: %g", nd, d)
		}
	}
}

func TestHybridSweeperProfile(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 57)
	col := obs.New()
	dev := NewDevice(TeslaC2050())
	sw := NewSweeper(dev, p, f, rng.New(3), SweeperOptions{ClusterK: 4, Obs: col})
	col.Reset()
	sw.Sweep()
	pd := col.PhaseDurations()
	for ph := obs.PhaseWrap; ph < obs.PhaseMeasure; ph++ {
		if pd[ph] == 0 {
			t.Fatalf("phase %s never timed", ph)
		}
	}
	// The simulated device must have charged its counters through obs too.
	d := col.OpDeltas()
	if d[obs.OpDeviceKernels] == 0 || d[obs.OpDeviceBytes] == 0 || d[obs.OpDeviceFlops] == 0 {
		t.Fatalf("device op counters not populated: kernels=%d bytes=%d flops=%d",
			d[obs.OpDeviceKernels], d[obs.OpDeviceBytes], d[obs.OpDeviceFlops])
	}
}

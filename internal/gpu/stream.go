package gpu

import (
	"fmt"
	"sync/atomic"
	"time"

	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// Stream is an in-order command queue on a Device, the analogue of a CUDA
// stream. Operations issued on one stream serialize against each other;
// operations on different streams overlap in modeled time unless an Event
// dependency orders them. Data movement and arithmetic still execute
// synchronously on the host in issue order — only the *clock* is
// asynchronous — so the numerics are identical no matter how work is
// distributed over streams.
//
// The clock cells are atomic: two goroutines may share a stream (the
// legacy Device methods funnel through the default stream from both spin
// forks), in which case their ops serialize on it in arrival order, the
// pre-stream behavior.
type Stream struct {
	dev     *Device
	clockNS int64  // atomic: this stream's critical-path time
	capture *Graph // non-nil while recording into a command graph
}

// NewStream creates an independent command stream on the device.
func (d *Device) NewStream() *Stream {
	s := &Stream{dev: d}
	d.mu.Lock()
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	return s
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// Event is a cross-stream synchronization point (cudaEvent): Record stamps
// it with the recording stream's current clock, Wait holds the waiting
// stream back to at least that time.
type Event struct {
	ns int64 // atomic
}

// NewEvent returns an unrecorded event.
func NewEvent() *Event { return &Event{} }

// Record stamps e with the stream's current modeled time (or records a
// stamp node while capturing).
func (s *Stream) Record(e *Event) {
	if g := s.capture; g != nil {
		g.add(node{kind: nodeRecord, s: s, ev: e})
		return
	}
	s.runNode(node{kind: nodeRecord, s: s, ev: e}, true)
}

// Wait orders the stream after e: its clock cannot run ahead of the
// recorded stamp (cudaStreamWaitEvent).
func (s *Stream) Wait(e *Event) {
	if g := s.capture; g != nil {
		g.add(node{kind: nodeWait, s: s, ev: e})
		return
	}
	s.runNode(node{kind: nodeWait, s: s, ev: e}, true)
}

// Host enqueues a host callback (cudaLaunchHostFunc): fn runs on the CPU
// at its position in the stream, costs no modeled device time, and — when
// captured into a Graph — re-executes on every Replay, which is how
// replays re-read mutable parameters (the "operand rebinding" host half).
func (s *Stream) Host(fn func()) {
	if g := s.capture; g != nil {
		g.add(node{kind: nodeHost, s: s, fn: fn})
		return
	}
	fn()
}

// --- stream operations -------------------------------------------------

// SetMatrix copies a host matrix to the device (cublasSetMatrixAsync).
func (s *Stream) SetMatrix(dst *Matrix, src *mat.Dense) {
	s.dev.checkOwned(dst)
	if dst.rows != src.Rows || dst.cols != src.Cols {
		panic(fmt.Sprintf("gpu: SetMatrix dimension mismatch: device matrix is %dx%d but host source is %dx%d", dst.rows, dst.cols, src.Rows, src.Cols))
	}
	s.dispatch(node{kind: nodeSetMatrix, s: s, c: dst, hm: src})
}

// GetMatrix copies a device matrix back to the host (cublasGetMatrixAsync).
func (s *Stream) GetMatrix(dst *mat.Dense, src *Matrix) {
	s.dev.checkOwned(src)
	if dst.Rows != src.rows || dst.Cols != src.cols {
		panic(fmt.Sprintf("gpu: GetMatrix dimension mismatch: host destination is %dx%d but device matrix is %dx%d", dst.Rows, dst.Cols, src.rows, src.cols))
	}
	s.dispatch(node{kind: nodeGetMatrix, s: s, a: src, hm: dst})
}

// SetVector uploads a host vector (cublasSetVectorAsync).
func (s *Stream) SetVector(dst *Matrix, src []float64) {
	s.dev.checkOwned(dst)
	if dst.cols != 1 || dst.rows != len(src) {
		panic(fmt.Sprintf("gpu: SetVector dimension mismatch: device vector is %dx%d but len(src)=%d", dst.rows, dst.cols, len(src)))
	}
	s.dispatch(node{kind: nodeSetVector, s: s, c: dst, hv: src})
}

// Dgemm computes C = alpha*op(A)*op(B) + beta*C on the device.
func (s *Stream) Dgemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	s.dev.checkOwned(a)
	s.dev.checkOwned(b)
	s.dev.checkOwned(c)
	s.dispatch(node{kind: nodeGemm, s: s, a: a, b: b, c: c,
		transA: transA, transB: transB, alpha: alpha, beta: beta})
}

// Dcopy copies src into dst on the device.
func (s *Stream) Dcopy(dst, src *Matrix) {
	s.dev.checkOwned(dst)
	s.dev.checkOwned(src)
	s.dispatch(node{kind: nodeCopy, s: s, a: src, c: dst})
}

// ScaleRows is the paper's Algorithm 5 CUDA kernel: dst = diag(v) * src
// with one thread per row, coalesced column-major accesses, and v cached
// per thread. One launch, bandwidth bound (read + write of the matrix).
func (s *Stream) ScaleRows(dst, src *Matrix, v *Matrix) {
	s.dev.checkOwned(dst)
	s.dev.checkOwned(src)
	s.dev.checkOwned(v)
	if v.cols != 1 || v.rows != src.rows || dst.rows != src.rows || dst.cols != src.cols {
		panic(fmt.Sprintf("gpu: ScaleRows dimension mismatch: src is %dx%d, dst is %dx%d, v is %dx%d", src.rows, src.cols, dst.rows, dst.cols, v.rows, v.cols))
	}
	s.dispatch(node{kind: nodeScaleRows, s: s, a: src, b: v, c: dst})
}

// ScaleRowsCols is the paper's Algorithm 7 kernel:
// G = diag(v) * G * diag(v)^{-1}, with the column factor read through the
// texture cache. In-place, one launch.
func (s *Stream) ScaleRowsCols(g *Matrix, v *Matrix) {
	s.dev.checkOwned(g)
	s.dev.checkOwned(v)
	if v.cols != 1 || v.rows != g.rows || g.rows != g.cols {
		panic(fmt.Sprintf("gpu: ScaleRowsCols dimension mismatch: g is %dx%d, v is %dx%d", g.rows, g.cols, v.rows, v.cols))
	}
	s.dispatch(node{kind: nodeScaleRowsCols, s: s, b: v, c: g})
}

// dispatch records the node while capturing, otherwise executes it
// immediately with full per-launch overhead.
func (s *Stream) dispatch(nd node) {
	if g := s.capture; g != nil {
		g.add(nd)
		return
	}
	s.runNode(nd, true)
}

// --- command nodes ------------------------------------------------------

// nodeKind enumerates the operations a stream can enqueue; command graphs
// store them as data so Replay can re-execute with rebound operands.
type nodeKind uint8

const (
	nodeSetMatrix nodeKind = iota
	nodeGetMatrix
	nodeSetVector
	nodeGemm
	nodeCopy
	nodeScaleRows
	nodeScaleRowsCols
	nodeHost
	nodeRecord
	nodeWait
)

// node is one recorded (or immediately executed) stream operation. Device
// operands sit in a/b/c (c is always the destination), host operands in
// hm/hv, and host callbacks in fn.
type node struct {
	kind           nodeKind
	s              *Stream
	a, b, c        *Matrix
	hm             *mat.Dense
	hv             []float64
	transA, transB bool
	alpha, beta    float64
	ev             *Event
	fn             func()
}

// runNode validates nothing (the public entry points already did), executes
// the node's data movement or arithmetic on the host, and charges the
// modeled clock. launch=false is the graph-replay path: the work is
// charged at full bandwidth/throughput but without the per-launch or
// per-transfer fixed overhead, which the replay pays once for the whole
// graph.
func (s *Stream) runNode(nd node, launch bool) {
	switch nd.kind {
	case nodeSetMatrix:
		nd.c.m.CopyFrom(nd.hm)
		s.chargeTransfer(int64(nd.hm.Rows)*int64(nd.hm.Cols)*8, launch)
	case nodeGetMatrix:
		nd.hm.CopyFrom(nd.a.m)
		s.chargeTransfer(int64(nd.a.rows)*int64(nd.a.cols)*8, launch)
		check.Finite("gpu.GetMatrix", nd.hm)
	case nodeSetVector:
		copy(nd.c.m.Col(0), nd.hv)
		s.chargeTransfer(int64(len(nd.hv))*8, launch)
	case nodeGemm:
		stop := s.trackReal()
		blas.Gemm(nd.transA, nd.transB, nd.alpha, nd.a.m, nd.b.m, nd.beta, nd.c.m)
		stop()
		m, k := nd.a.rows, nd.a.cols
		if nd.transA {
			m, k = k, m
		}
		s.chargeKernel(blas.GemmFlops(m, nd.c.cols, k), 0, launch)
	case nodeCopy:
		nd.c.m.CopyFrom(nd.a.m)
		s.chargeKernel(0, 16*float64(nd.a.rows)*float64(nd.a.cols), launch)
	case nodeScaleRows:
		stop := s.trackReal()
		vv := nd.b.m.Col(0)
		for j := 0; j < nd.a.cols; j++ {
			sc := nd.a.m.Col(j)
			dc := nd.c.m.Col(j)
			for i := range sc {
				dc[i] = vv[i] * sc[i]
			}
		}
		stop()
		s.chargeKernel(float64(nd.a.rows)*float64(nd.a.cols),
			16*float64(nd.a.rows)*float64(nd.a.cols), launch)
	case nodeScaleRowsCols:
		stop := s.trackReal()
		vv := nd.b.m.Col(0)
		for j := 0; j < nd.c.cols; j++ {
			col := nd.c.m.Col(j)
			inv := 1 / vv[j]
			for i := range col {
				col[i] *= vv[i] * inv
			}
		}
		stop()
		s.chargeKernel(2*float64(nd.c.rows)*float64(nd.c.cols),
			16*float64(nd.c.rows)*float64(nd.c.cols), launch)
	case nodeHost:
		nd.fn()
	case nodeRecord:
		atomic.StoreInt64(&nd.ev.ns, atomic.LoadInt64(&s.clockNS))
	case nodeWait:
		s.waitUntil(atomic.LoadInt64(&nd.ev.ns))
	}
}

// --- modeled-clock charging --------------------------------------------

// advance moves this stream's clock forward by durNS.
func (s *Stream) advance(durNS int64) { atomic.AddInt64(&s.clockNS, durNS) }

// waitUntil holds the stream clock at or after ns (event dependency).
func (s *Stream) waitUntil(ns int64) {
	for {
		cur := atomic.LoadInt64(&s.clockNS)
		if cur >= ns || atomic.CompareAndSwapInt64(&s.clockNS, cur, ns) {
			return
		}
	}
}

// chargeTransfer advances the stream and the DMA engine for a bytes-sized
// host<->device copy; launch adds the fixed per-transaction latency.
//
//qmc:charges OpDeviceBytes
func (s *Stream) chargeTransfer(bytes int64, launch bool) {
	obs.Add(obs.OpDeviceBytes, bytes)
	d := s.dev
	ns := int64(float64(bytes) / d.model.TransferBytesPerSec * 1e9)
	if launch {
		lat := int64(d.model.TransferLatency)
		ns += lat
		atomic.AddInt64(&d.launchNS, lat)
	}
	atomic.AddInt64(&d.transferred, bytes)
	atomic.AddInt64(&d.xferBusyNS, ns)
	s.advance(ns)
}

// chargeKernel advances the stream and the compute engine for one kernel:
// the run time is whichever resource (flops or memory traffic) bottlenecks,
// plus the fixed launch cost when launch is set.
//
//qmc:charges OpDeviceKernels,OpDeviceFlops
func (s *Stream) chargeKernel(flops, memBytes float64, launch bool) {
	obs.Add(obs.OpDeviceKernels, 1)
	obs.Add(obs.OpDeviceFlops, int64(flops))
	d := s.dev
	t := flops / d.model.GemmFlopsPerSec
	if m := memBytes / d.model.MemBytesPerSec; m > t {
		t = m
	}
	ns := int64(t * 1e9)
	if launch {
		l := int64(d.model.KernelLaunch)
		ns += l
		atomic.AddInt64(&d.launchNS, l)
	}
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, int64(flops))
	atomic.AddInt64(&d.busyNS, ns)
	s.advance(ns)
}

// trackReal measures the wall time the host spends executing a simulated
// kernel, so benchmark harnesses can subtract it when combining real host
// time with the modeled device clock.
func (s *Stream) trackReal() func() {
	start := time.Now()
	return func() {
		atomic.AddInt64(&s.dev.realNS, int64(time.Since(start)))
	}
}

// Clock returns this stream's modeled critical-path time.
func (s *Stream) Clock() time.Duration { return time.Duration(atomic.LoadInt64(&s.clockNS)) }

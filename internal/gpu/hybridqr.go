package gpu

import (
	"fmt"
	"sort"

	"questgo/internal/greens"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/obs"
)

// This file implements the paper's Section VII future work: running "most
// of the stratification procedure (Algorithm 3) on the GPU". The split
// follows the hybrid dense-QR designs the paper cites (Tomov et al.;
// Agullo et al.): the level-2 Householder panel factorization stays on the
// CPU, where its serial column operations are cheap, while every level-3
// piece — the trailing block-reflector updates, the Q accumulation, the
// chain products and the T updates — runs on the (simulated) device.

// hybridQRBlock is the panel width; matches the CPU blocked QR.
const hybridQRBlock = 32

// HybridQR holds a device-resident QR factorization produced by
// QRFactorHybrid: R on and above the diagonal of A, panels' reflectors
// kept host-side for re-application.
type HybridQR struct {
	dev    *Device
	a      *Matrix // factored matrix on the device
	panels []*lapack.Panel
	starts []int
	m, n   int
}

// QRFactorHybrid factors the device-resident matrix a in place. Per panel:
// download the panel (m-j x nb strip), factor it on the CPU, upload V and
// T, and update the trailing matrix with three device GEMMs. It performs a
// full QR without going through lapack.QRFactor, so it charges the
// factorization counter itself (the device GEMMs charge their own flops).
//
//qmc:charges OpQRFactorizations
func QRFactorHybrid(dev *Device, a *Matrix) *HybridQR {
	obs.Add(obs.OpQRFactorizations, 1)
	m, n := a.rows, a.cols
	h := &HybridQR{dev: dev, a: a, m: m, n: n}
	k := m
	if n < k {
		k = n
	}
	hostPanel := mat.New(m, hybridQRBlock)
	for j := 0; j < k; j += hybridQRBlock {
		jb := hybridQRBlock
		if j+jb > k {
			jb = k - j
		}
		rows := m - j
		// Download the panel strip.
		ph := hostPanel.View(0, 0, rows, jb)
		dev.GetSub(ph, a, j, j)
		panel := lapack.FactorPanel(ph)
		// Write the factored panel (R + reflectors) back.
		dev.SetSub(a, j, j, ph)
		h.panels = append(h.panels, panel)
		h.starts = append(h.starts, j)
		if j+jb < n {
			h.applyPanelDevice(panel, j, j+jb, n-j-jb, true)
		}
	}
	return h
}

// applyPanelDevice applies (I - V op(T) V^T) to the device sub-matrix
// A[rowStart:, colStart:colStart+cols) with three device GEMMs. The V/T/W
// scratch is freed before returning so repeated factorizations hold the
// device footprint steady.
func (h *HybridQR) applyPanelDevice(p *lapack.Panel, rowStart, colStart, cols int, trans bool) {
	dev := h.dev
	rows := h.m - rowStart
	jb := p.V.Cols
	dv := dev.Malloc(rows, jb)
	dev.SetMatrix(dv, p.V)
	dt := dev.Malloc(jb, jb)
	dev.SetMatrix(dt, p.T)
	sub := h.a.Sub(rowStart, colStart, rows, cols)
	w := dev.Malloc(jb, cols)
	w2 := dev.Malloc(jb, cols)
	dev.Dgemm(true, false, 1, dv, sub, 0, w)    // W = V^T C
	dev.Dgemm(trans, false, 1, dt, w, 0, w2)    // W2 = op(T) W
	dev.Dgemm(false, false, -1, dv, w2, 1, sub) // C -= V W2
	dv.Free()
	dt.Free()
	w.Free()
	w2.Free()
}

// R extracts the upper triangular factor to the host.
func (h *HybridQR) R() *mat.Dense {
	host := mat.New(h.m, h.n)
	h.dev.GetMatrix(host, h.a)
	k := h.m
	if h.n < k {
		k = h.n
	}
	r := mat.New(k, h.n)
	for j := 0; j < h.n; j++ {
		top := j + 1
		if top > k {
			top = k
		}
		copy(r.Col(j)[:top], host.Col(j)[:top])
	}
	return r
}

// FormQDevice overwrites q (device-resident, m x m) with the explicit
// orthogonal factor, applying the stored panels in reverse order on the
// device.
func (h *HybridQR) FormQDevice(q *Matrix) {
	if q.rows != h.m || q.cols != h.m {
		panic(fmt.Sprintf("gpu: FormQDevice expects a %dx%d destination, got %dx%d", h.m, h.m, q.rows, q.cols))
	}
	h.dev.SetMatrix(q, mat.Identity(h.m))
	for i := len(h.panels) - 1; i >= 0; i-- {
		j := h.starts[i]
		h.applyPanelColsDevice(h.panels[i], j, q)
	}
}

// applyPanelColsDevice applies (I - V T V^T) to rows [rowStart, m) of the
// full-width device matrix q, freeing its scratch like applyPanelDevice.
func (h *HybridQR) applyPanelColsDevice(p *lapack.Panel, rowStart int, q *Matrix) {
	dev := h.dev
	rows := h.m - rowStart
	jb := p.V.Cols
	dv := dev.Malloc(rows, jb)
	dev.SetMatrix(dv, p.V)
	dt := dev.Malloc(jb, jb)
	dev.SetMatrix(dt, p.T)
	sub := q.Sub(rowStart, 0, rows, q.cols)
	w := dev.Malloc(jb, q.cols)
	w2 := dev.Malloc(jb, q.cols)
	dev.Dgemm(true, false, 1, dv, sub, 0, w)
	dev.Dgemm(false, false, 1, dt, w, 0, w2)
	dev.Dgemm(false, false, -1, dv, w2, 1, sub)
	dv.Free()
	dt.Free()
	w.Free()
	w2.Free()
}

// StratifyHybrid runs Algorithm 3 with the chain products, trailing
// updates, Q accumulation and T updates on the device; only the panel
// factorizations, the column-norm sort and the diagonal bookkeeping stay
// on the host. Input chain as for greens.StratifyPrePivot (application
// order); returns the UDT on the host.
func StratifyHybrid(dev *Device, chain []*mat.Dense) *greens.UDT {
	return stratifyHybridOn(nil, nil, dev, chain)
}

// StratifyHybridSharded walks the stratification chain across the devices
// that own each cluster block (per-slice-block sharding): step i runs on
// the device that built chain element i, and the running Q factor crosses
// the inter-device link whenever ownership changes. The arithmetic — and
// therefore the result — is bitwise identical to StratifyHybrid on one
// device; only the modeled charges move.
func StratifyHybridSharded(g *Group, cs *ClusterSet, boundary int) *greens.UDT {
	chain := cs.Chain(boundary)
	devs := make([]*Device, len(chain))
	for i := range chain {
		devs[i] = cs.AccFor((boundary + i) % cs.NC).Dev
	}
	return stratifyHybridOn(g, devs, devs[0], chain)
}

// stratifyHybridOn is the shared implementation: devs[i] (when non-nil)
// names the device executing chain step i, dev0 the device of the first
// factorization. All device scratch is freed on exit, so the footprint is
// steady across refreshes.
func stratifyHybridOn(g *Group, devs []*Device, dev0 *Device, chain []*mat.Dense) *greens.UDT {
	if len(chain) == 0 {
		panic("gpu: empty chain")
	}
	n := chain[0].Rows

	// First factorization: full QRP on the host (as in Algorithm 3 —
	// there is no grading to pre-sort yet), then move to the device. Since
	// the level-3 rewrite this rides lapack's blocked pre-pivoted panel
	// factorization, so the pivoted fallback no longer caps the hybrid
	// path at level-2 throughput; tau and the pivot vector go back to the
	// lapack pools once the host-side factors are extracted.
	first := chain[0].Clone()
	qrp, jpvt := lapack.QRPFactor(first)
	d := make([]float64, n)
	r := qrp.R()
	r.Diagonal(d)
	scaleInvRowsHost(r, d)
	t := mat.New(n, n)
	for j := 0; j < n; j++ {
		copy(t.Col(jpvt[j]), r.Col(j))
	}
	qHost := mat.New(n, n)
	qrp.FormQ(qHost)
	qrp.Release()
	lapack.PutPivot(&jpvt)

	dev := dev0
	dq := dev.Malloc(n, n)
	dev.SetMatrix(dq, qHost)
	dc := dev.Malloc(n, n)
	db := dev.Malloc(n, n)
	dvec := dev.Malloc(n, 1)
	dtm := dev.Malloc(n, n)
	dres := dev.Malloc(n, n)
	tHost := t
	perm := make([]int, n)
	norms := make([]float64, n)
	tTmp := mat.New(n, n)

	for i := 1; i < len(chain); i++ {
		if devs != nil && devs[i] != dev {
			// The running Q migrates to the device owning this cluster
			// block over the peer link; the per-device scratch follows.
			next := devs[i]
			nq := next.Malloc(n, n)
			g.PeerCopy(nq, dq)
			dq.Free()
			dc.Free()
			db.Free()
			dvec.Free()
			dtm.Free()
			dres.Free()
			dev = next
			dq = nq
			dc = dev.Malloc(n, n)
			db = dev.Malloc(n, n)
			dvec = dev.Malloc(n, 1)
			dtm = dev.Malloc(n, n)
			dres = dev.Malloc(n, n)
		}
		// C = (B_i * Q) * D on the device.
		dev.SetMatrix(db, chain[i])
		dev.Dgemm(false, false, 1, db, dq, 0, dc)
		dev.SetVector(dvec, d)
		dev.ScaleCols(dc, dvec)
		// Column norms on the device, sort on the host (tiny data).
		dev.ColumnNorms(dc, norms)
		for j := range perm {
			perm[j] = j
		}
		sort.SliceStable(perm, func(a, b int) bool { return norms[perm[a]] > norms[perm[b]] })
		dev.PermuteCols(dc, perm)
		// Hybrid QR of the permuted C, in place on the device.
		h := QRFactorHybrid(dev, dc)
		rr := h.R()
		rr.Diagonal(d)
		scaleInvRowsHost(rr, d)
		// T update on the device: T = (D^{-1} R) (P^T T).
		permuteRowsHost(tTmp, tHost, perm)
		dev.SetMatrix(db, rr)
		dev.SetMatrix(dtm, tTmp)
		dev.Dgemm(false, false, 1, db, dtm, 0, dres)
		dev.GetMatrix(tHost, dres)
		// Q for the next step.
		h.FormQDevice(dq)
	}
	qOut := mat.New(n, n)
	dev.GetMatrix(qOut, dq)
	dq.Free()
	dc.Free()
	db.Free()
	dvec.Free()
	dtm.Free()
	dres.Free()
	return &greens.UDT{Q: qOut, D: d, T: tHost}
}

func scaleInvRowsHost(r *mat.Dense, d []float64) {
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 0
		} else {
			inv[i] = 1 / v
		}
	}
	r.ScaleRows(inv)
}

func permuteRowsHost(dst, src *mat.Dense, perm []int) {
	for j := 0; j < src.Cols; j++ {
		s := src.Col(j)
		dcol := dst.Col(j)
		for i, p := range perm {
			dcol[i] = s[p]
		}
	}
}

package gpu

import (
	"fmt"
	"sync/atomic"
	"time"

	"questgo/internal/hubbard"
	"questgo/internal/obs"
)

// LinkModel is the cost model of the inter-accelerator interconnect:
// peer-to-peer copies over the PCIe switch (cudaMemcpyPeer). On the
// paper-era hardware a P2P copy crosses the same PCIe fabric as a host
// staging copy but skips the double hop through host memory, so the
// default link is modestly faster than two host transfers.
type LinkModel struct {
	BytesPerSec float64
	Latency     time.Duration
}

// DefaultLink returns the PCIe peer-to-peer model matching TeslaC2050-era
// boards: one fabric crossing at host-transfer bandwidth and latency,
// versus the 2x cost of staging through the host.
func DefaultLink() LinkModel {
	return LinkModel{BytesPerSec: 6e9, Latency: 8 * time.Microsecond}
}

// Group is a set of simulated accelerators sharing one node: the
// multi-GPU configuration of the scale-out experiments (per-spin,
// per-chain and per-slice-block sharding). All devices share a cost model;
// peer traffic is charged against the LinkModel.
type Group struct {
	Devs []*Device
	Link LinkModel

	peerBytes int64 // atomic
}

// NewGroup creates n identical devices with the given cost model and the
// default interconnect.
func NewGroup(n int, model DeviceModel) *Group {
	if n < 1 {
		panic(fmt.Sprintf("gpu: group needs at least one device, got %d", n))
	}
	g := &Group{Devs: make([]*Device, n), Link: DefaultLink()}
	for i := range g.Devs {
		g.Devs[i] = NewDevice(model)
	}
	return g
}

// GroupOf wraps existing devices (sharing the default link model).
func GroupOf(devs ...*Device) *Group {
	if len(devs) == 0 {
		panic("gpu: empty device group")
	}
	return &Group{Devs: devs, Link: DefaultLink()}
}

// Size returns the number of devices.
func (g *Group) Size() int { return len(g.Devs) }

// PeerCopy moves a device matrix payload from src to an equally-shaped
// destination on another device, charging the inter-device link: latency
// plus bytes over link bandwidth, occupying both DMA engines. On the same
// device it degenerates to a plain device copy.
//
//qmc:charges OpPeerBytes
func (g *Group) PeerCopy(dst, src *Matrix) {
	if dst.rows != src.rows || dst.cols != src.cols {
		panic(fmt.Sprintf("gpu: PeerCopy dimension mismatch: src is %dx%d but dst is %dx%d", src.rows, src.cols, dst.rows, dst.cols))
	}
	if dst.dev == src.dev {
		dst.dev.Dcopy(dst, src)
		return
	}
	bytes := int64(src.rows) * int64(src.cols) * 8
	obs.Add(obs.OpPeerBytes, bytes)
	atomic.AddInt64(&g.peerBytes, bytes)
	dst.m.CopyFrom(src.m)
	lat := int64(g.Link.Latency)
	ns := lat + int64(float64(bytes)/g.Link.BytesPerSec*1e9)
	src.dev.s0.chargePeer(ns, lat, bytes)
	dst.dev.s0.chargePeer(ns, lat, bytes)
}

// chargePeer occupies this stream and its device's DMA engine for one side
// of a peer-to-peer copy. The link latency is fixed interconnect overhead,
// so it counts toward LaunchOverhead like a host-transfer latency does.
func (s *Stream) chargePeer(ns, latNS, bytes int64) {
	d := s.dev
	atomic.AddInt64(&d.xferBusyNS, ns)
	atomic.AddInt64(&d.launchNS, latNS)
	atomic.AddInt64(&d.transferred, bytes)
	s.advance(ns)
}

// PeerBytes returns the total bytes moved over the inter-device link.
func (g *Group) PeerBytes() int64 { return atomic.LoadInt64(&g.peerBytes) }

// Clock returns the modeled wall clock of the whole group: the slowest
// device (they run concurrently).
func (g *Group) Clock() time.Duration {
	var max time.Duration
	for _, d := range g.Devs {
		if c := d.Clock(); c > max {
			max = c
		}
	}
	return max
}

// LaunchOverhead sums the fixed launch/latency overhead across devices.
func (g *Group) LaunchOverhead() time.Duration {
	var t time.Duration
	for _, d := range g.Devs {
		t += d.LaunchOverhead()
	}
	return t
}

// Reset resets every device clock (peer counters included).
func (g *Group) Reset() {
	for _, d := range g.Devs {
		d.Reset()
	}
	atomic.StoreInt64(&g.peerBytes, 0)
}

// --- placement ----------------------------------------------------------

// Scheduler decides where work lands on a Group. The three sharding axes
// of the scale-out design map to its methods:
//
//   - per-spin: SpinPool splits the devices between the two spin sectors
//     (the sectors are independent within a sweep, so this needs no
//     inter-device traffic at all);
//   - per-slice-block: PlaceClusters deals a spin's NC cluster blocks
//     round-robin over the sector's pool, so cluster builds, the wraps and
//     flushes of those slices, and the stratification steps that consume
//     each cluster all run on the device that owns it;
//   - per-chain: PlaceChains deals independent Markov chains over whole
//     devices (embarrassingly parallel, the Wendt/Drut-style scale-out).
type Scheduler struct {
	G *Group
}

// SpinPool returns the devices assigned to one spin sector: the first
// ceil(n/2) devices to spin-up, the rest to spin-down. A single device
// serves both sectors (two streams, one card); with 2 devices each sector
// gets its own card; with 4, each sector shards its cluster blocks over
// two.
func (sc Scheduler) SpinPool(sigma hubbard.Spin) []*Device {
	n := len(sc.G.Devs)
	if n == 1 {
		return sc.G.Devs
	}
	half := (n + 1) / 2
	if sigma == hubbard.Up {
		return sc.G.Devs[:half]
	}
	return sc.G.Devs[half:]
}

// PlaceClusters deals nc cluster blocks round-robin over a pool, returning
// the pool index owning each block.
func (sc Scheduler) PlaceClusters(pool []*Device, nc int) []int {
	owners := make([]int, nc)
	for c := range owners {
		owners[c] = c % len(pool)
	}
	return owners
}

// PlaceChains deals independent Markov chains over the whole group,
// returning the device index for each chain.
func (sc Scheduler) PlaceChains(chains int) []int {
	owners := make([]int, chains)
	for c := range owners {
		owners[c] = c % len(sc.G.Devs)
	}
	return owners
}

// ChainCrossCost estimates the modeled cost of walking a stratification
// chain whose consecutive clusters live on different devices: crossings
// peer copies of the running n x n Q factor (plus the T update each
// crossing drags along). The scheduler uses it to decide whether sharded
// stratification beats gathering every cluster onto one device first
// (GatherCost); for round-robin block placement the chain crosses devices
// on nearly every step, so gathering wins only when the link is much
// slower than its default.
func (sc Scheduler) ChainCrossCost(n, crossings int) time.Duration {
	bytes := int64(n) * int64(n) * 8 * 2
	per := time.Duration(int64(sc.G.Link.Latency) + int64(float64(bytes)/sc.G.Link.BytesPerSec*1e9))
	return time.Duration(crossings) * per
}

// GatherCost estimates moving nc-1 remote n x n clusters onto one device.
func (sc Scheduler) GatherCost(n, nc int) time.Duration {
	bytes := int64(n) * int64(n) * 8
	per := time.Duration(int64(sc.G.Link.Latency) + int64(float64(bytes)/sc.G.Link.BytesPerSec*1e9))
	return time.Duration(nc-1) * per
}

package gpu

import (
	"questgo/internal/check"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/parallel"
	"questgo/internal/rng"
)

// Sweeper is the device-offloaded counterpart of update.Sweeper: the same
// Metropolis sweep (Algorithm 1) with every level-3 phase on the simulated
// accelerator — wrapping (Algorithm 6/7), matrix clustering (Algorithm
// 4/5), and the delayed-update flush GEMMs. The per-site rank-1
// bookkeeping, which is latency-bound and serial, stays on the host,
// exactly as the paper's hybrid design prescribes.
//
// It shares the two structural optimizations of the CPU sweeper: the
// boundary Green's functions come from a greens.StratStack over the
// device-built clusters (one prefix extension per boundary instead of a
// full chain re-stratification; SweeperOptions.NoStack restores the hybrid
// full-rebuild reference), and the per-spin device phases run concurrently
// through parallel.Pair.
//
// The sweeper runs over a Group of one or more simulated devices. With one
// device, each spin owns an Accelerator — two stream pairs sharing one
// card. With more, the Scheduler splits the devices between the spin
// sectors (per-spin sharding) and each sector deals its cluster blocks
// round-robin over its pool (per-slice-block sharding): the wraps and
// flushes of a slice run on the device owning its cluster block, and the
// NoStack stratification walks the chain across owners over the peer link.
// Because every device executes the identical host arithmetic, the Markov
// chain is bitwise independent of the device count and of command-graph
// mode — sharding and graphs move modeled time, never numbers — which the
// tests verify.
type Sweeper struct {
	Prop  *hubbard.Propagator
	Field *hubbard.Field
	Rng   *rng.Rand

	grp      *Group
	clusterK int
	delay    int
	serial   bool
	noStack  bool
	graphs   bool
	o        *obs.Collector

	up, dn   *gpuSpin
	sign     float64
	accepted int64
	proposed int64

	// Pre-bound closures and their operand fields for the spin forks (see
	// update.Sweeper; same zero-alloc scheme).
	wrapUpFn, wrapDnFn     func()
	flushUpFn, flushDnFn   func()
	acceptUpFn, acceptDnFn func()
	clusterUpFn, clusterDn func()
	refreshUpFn, refreshDn func()
	advanceUpFn, advanceDn func()
	wrapSlice              int
	flipSite               int
	facUp, facDn           float64
	cluster                int
	boundary               int

	// boundaryHook, maxWrapDrift and the StabilityEvery pacing mirror
	// update.Sweeper (the autopilot and the measurement loop drive both
	// sweepers through the same surface).
	boundaryHook   func()
	maxWrapDrift   float64
	stabilityEvery int
	boundaries     int64
	checkStrat     bool
}

// gpuSpin owns one spin sector's device session: one Accelerator per
// device of the sector's pool (device scratch must not be shared between
// concurrently running spins), the sharded cluster set, stratification
// stack, Green's function, and per-device delayed-update flush operands.
type gpuSpin struct {
	sigma hubbard.Spin
	accs  []*Accelerator
	cs    *ClusterSet
	st    *greens.StratStack
	g     *mat.Dense
	u, w  *mat.Dense
	m     int
	// Device-resident flush operands, one set per accelerator, allocated
	// once — the device footprint is steady across sweeps.
	dg, du, dw []*Matrix
}

func newGpuSpin(pool []*Device, p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, k, nd int, noStack, graphs bool) *gpuSpin {
	n := p.Model.N()
	sp := &gpuSpin{
		sigma: sigma,
		g:     mat.New(n, n),
		u:     mat.New(n, nd),
		w:     mat.New(n, nd),
	}
	for _, dev := range pool {
		acc := NewAccelerator(dev, p)
		acc.EnableGraphs(graphs)
		sp.accs = append(sp.accs, acc)
		sp.dg = append(sp.dg, dev.Malloc(n, n))
		sp.du = append(sp.du, dev.Malloc(n, nd))
		sp.dw = append(sp.dw, dev.Malloc(n, nd))
	}
	sp.cs = NewClusterSetSharded(sp.accs, f, sigma, k)
	if !noStack {
		sp.st = greens.NewStratStack(sp.cs, true)
	}
	return sp
}

func (sp *gpuSpin) effDiag(i int) float64 {
	gii := sp.g.At(i, i)
	for t := 0; t < sp.m; t++ {
		gii += sp.u.At(i, t) * sp.w.At(i, t)
	}
	return gii
}

// push assembles the effective column/row of G for site i and queues the
// rank-1 update with amplitude factor = alpha/d.
func (sp *gpuSpin) push(i int, factor float64) {
	n := sp.g.Rows
	uc := sp.u.Col(sp.m)
	wc := sp.w.Col(sp.m)
	copy(uc, sp.g.Col(i))
	for r := 0; r < n; r++ {
		wc[r] = sp.g.At(i, r)
	}
	for t := 0; t < sp.m; t++ {
		ut := sp.u.Col(t)
		wt := sp.w.Col(t)
		wi := wt[i]
		ui := ut[i]
		for r := 0; r < n; r++ {
			uc[r] += ut[r] * wi
			wc[r] += wt[r] * ui
		}
	}
	for r := 0; r < n; r++ {
		uc[r] *= -factor
		wc[r] = -wc[r]
	}
	wc[i] += 1
	sp.m++
}

// flush applies the pending block update G += U*W^T with a *device* GEMM
// on the accelerator indexed ai (the owner of the current slice's cluster
// block) — on real hardware this is where the delayed-update trick pays
// off most, since the rank-nd updates are pure DGEMM.
//
//qmc:charges OpDelayedFlushes
//qmc:hot
func (sp *gpuSpin) flush(ai int) {
	if sp.m == 0 {
		return
	}
	obs.Add(obs.OpDelayedFlushes, 1)
	n := sp.g.Rows
	dev := sp.accs[ai].Dev
	dg, du, dw := sp.dg[ai], sp.du[ai], sp.dw[ai]
	dev.SetMatrix(dg, sp.g)
	duV := du.Sub(0, 0, n, sp.m)
	dwV := dw.Sub(0, 0, n, sp.m)
	dev.SetMatrix(duV, sp.u.View(0, 0, n, sp.m))
	dev.SetMatrix(dwV, sp.w.View(0, 0, n, sp.m))
	dev.Dgemm(false, true, 1, duV, dwV, 1, dg)
	dev.GetMatrix(sp.g, dg)
	sp.m = 0
}

// SweeperOptions configures the hybrid sweeper.
type SweeperOptions struct {
	ClusterK int
	Delay    int
	// NoStack disables the prefix/suffix UDT stack and refreshes by full
	// hybrid re-stratification of the cluster chain (the pre-stack
	// reference path; sharded across the spin's pool when it has more than
	// one device).
	NoStack bool
	// SerialSpins disables the concurrent up/down device phases.
	SerialSpins bool
	// UseGraphs captures the wrap and cluster launch sequences into device
	// command graphs and replays them for a single launch overhead per
	// call. Purely a modeled-time optimization: the arithmetic — and the
	// Markov chain — is identical either way.
	UseGraphs bool
	// Obs, when non-nil, receives per-phase timings, operation counts and
	// stability telemetry (nil costs nothing).
	Obs *obs.Collector
	// StabilityEvery, when positive and Obs is enabled, compares the
	// stack-refreshed Green's function against a full stratified rebuild
	// every StabilityEvery cluster boundaries and records the relative
	// residual (see update.Options.StabilityEvery).
	StabilityEvery int
}

// NewSweeper builds a single-device sweeper: the device cluster sets and
// the initial Green's functions through the stratification stack (or the
// hybrid rebuild when NoStack is set).
func NewSweeper(dev *Device, p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand, opts SweeperOptions) *Sweeper {
	return NewGroupSweeper(GroupOf(dev), p, f, r, opts)
}

// NewGroupSweeper builds a sweeper over a device group, sharding the spin
// sectors and their cluster blocks across the group's devices.
func NewGroupSweeper(g *Group, p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand, opts SweeperOptions) *Sweeper {
	if opts.ClusterK < 1 {
		opts.ClusterK = 10
	}
	for p.Model.L%opts.ClusterK != 0 {
		opts.ClusterK--
	}
	if opts.Delay < 1 {
		opts.Delay = 32
	}
	n := p.Model.N()
	if opts.Delay > n {
		opts.Delay = n
	}
	if opts.StabilityEvery < 0 {
		opts.StabilityEvery = 0
	}
	sw := &Sweeper{
		Prop: p, Field: f, Rng: r,
		grp:            g,
		clusterK:       opts.ClusterK,
		delay:          opts.Delay,
		serial:         opts.SerialSpins,
		noStack:        opts.NoStack,
		graphs:         opts.UseGraphs,
		o:              opts.Obs,
		stabilityEvery: opts.StabilityEvery,
		sign:           1,
	}
	sched := Scheduler{G: g}
	cstart := opts.Obs.Begin()
	sw.up = newGpuSpin(sched.SpinPool(hubbard.Up), p, f, hubbard.Up, opts.ClusterK, opts.Delay, opts.NoStack, opts.UseGraphs)
	sw.dn = newGpuSpin(sched.SpinPool(hubbard.Down), p, f, hubbard.Down, opts.ClusterK, opts.Delay, opts.NoStack, opts.UseGraphs)
	opts.Obs.End(obs.PhaseCluster, cstart)
	if sw.up.st != nil {
		sw.up.st.Obs = opts.Obs
		sw.dn.st.Obs = opts.Obs
	}

	sw.wrapUpFn = func() {
		sw.up.cs.AccFor(sw.wrapSlice/sw.clusterK).Wrap(sw.up.g, sw.Field, hubbard.Up, sw.wrapSlice)
	}
	sw.wrapDnFn = func() {
		sw.dn.cs.AccFor(sw.wrapSlice/sw.clusterK).Wrap(sw.dn.g, sw.Field, hubbard.Down, sw.wrapSlice)
	}
	sw.flushUpFn = func() { sw.up.flush((sw.wrapSlice / sw.clusterK) % len(sw.up.accs)) }
	sw.flushDnFn = func() { sw.dn.flush((sw.wrapSlice / sw.clusterK) % len(sw.dn.accs)) }
	sw.acceptUpFn = func() { sw.up.push(sw.flipSite, sw.facUp) }
	sw.acceptDnFn = func() { sw.dn.push(sw.flipSite, sw.facDn) }
	sw.clusterUpFn = func() { sw.up.cs.Recompute(sw.Field, sw.cluster) }
	sw.clusterDn = func() { sw.dn.cs.Recompute(sw.Field, sw.cluster) }
	sw.refreshUpFn = func() { sw.refreshSpin(sw.up, true) }
	sw.refreshDn = func() { sw.refreshSpin(sw.dn, false) }
	if sw.up.st != nil {
		sw.advanceUpFn = func() { sw.up.st.Advance() }
		sw.advanceDn = func() { sw.dn.st.Advance() }
	}

	sw.refresh(0)
	return sw
}

func (sw *Sweeper) fork(up, dn func()) {
	if sw.serial {
		up()
		dn()
		return
	}
	parallel.Pair(up, dn)
}

// refreshSpin recomputes one spin's Green's function by stratification at
// the current boundary and records the drift of the wrapped copy (spin-up
// only, matching update.Sweeper's diagnostic).
func (sw *Sweeper) refreshSpin(sp *gpuSpin, trackDrift bool) {
	n := sp.g.Rows
	gNew := mat.GetScratch(n, n)
	if sp.st != nil {
		sp.st.GreenInto(gNew)
		if trackDrift && sw.checkStrat {
			// Sampled stability check: the stack's amortized answer against
			// a from-scratch host stratification of the same cluster chain.
			sw.o.SampleStratResidual(mat.RelDiff(gNew, sp.cs.GreenAt(sw.boundary)))
		}
	} else if len(sp.accs) > 1 {
		gNew.CopyFrom(GreenFromUDTHybrid(sp.accs[0].Dev, StratifyHybridSharded(sw.grp, sp.cs, sw.boundary)))
	} else {
		gNew.CopyFrom(GreenFromUDTHybrid(sp.accs[0].Dev, StratifyHybrid(sp.accs[0].Dev, sp.cs.Chain(sw.boundary))))
	}
	if trackDrift && sw.proposed > 0 {
		d := mat.RelDiff(sp.g, gNew)
		// Loose bound: wrap drift is expected and merely bounded; only a
		// blow-up indicates a propagator or stratification bug.
		check.Drift("gpu.refreshSpin wrap", d, 0.05)
		if d > sw.maxWrapDrift {
			sw.maxWrapDrift = d
		}
		sw.o.SampleWrapDrift(d)
	}
	sp.g.CopyFrom(gNew)
	mat.PutScratch(gNew)
}

func (sw *Sweeper) refresh(c int) {
	start := sw.o.Begin()
	sw.boundary = c
	sw.boundaries++
	sw.checkStrat = sw.stabilityEvery > 0 && sw.o.Enabled() &&
		sw.boundaries%int64(sw.stabilityEvery) == 0
	sw.fork(sw.refreshUpFn, sw.refreshDn)
	sw.checkStrat = false
	sw.o.End(obs.PhaseRefresh, start)
}

// Sweep performs one full Metropolis sweep with device-offloaded
// wrapping, clustering and delayed-update flushes, the up/down sectors
// running concurrently.
//
//qmc:charges OpSweeps
func (sw *Sweeper) Sweep() {
	obs.Add(obs.OpSweeps, 1)
	model := sw.Prop.Model
	n := model.N()
	k := sw.clusterK
	for s := 0; s < model.L; s++ {
		wstart := sw.o.Begin()
		sw.wrapSlice = s
		sw.fork(sw.wrapUpFn, sw.wrapDnFn)
		sw.o.End(obs.PhaseWrap, wstart)

		ustart := sw.o.Begin()
		for i := 0; i < n; i++ {
			sw.proposeFlip(s, i)
		}
		sw.fork(sw.flushUpFn, sw.flushDnFn)
		sw.o.End(obs.PhaseFlush, ustart)

		if (s+1)%k == 0 {
			c := s / k
			cstart := sw.o.Begin()
			sw.cluster = c
			sw.fork(sw.clusterUpFn, sw.clusterDn)
			sw.o.End(obs.PhaseCluster, cstart)
			if sw.up.st != nil {
				sstart := sw.o.Begin()
				sw.fork(sw.advanceUpFn, sw.advanceDn)
				sw.o.End(obs.PhaseRefresh, sstart)
			}
			sw.refresh((c + 1) % sw.up.cs.NC)
			if sw.boundaryHook != nil {
				sw.boundaryHook()
			}
		}
	}
}

func (sw *Sweeper) proposeFlip(s, i int) {
	h := sw.Field.H[s][i]
	aUp := sw.Prop.Alpha(hubbard.Up, h)
	aDn := sw.Prop.Alpha(hubbard.Down, h)
	dUp := 1 + aUp*(1-sw.up.effDiag(i))
	dDn := 1 + aDn*(1-sw.dn.effDiag(i))
	r := dUp * dDn * sw.Prop.BosonRatio(h)
	sw.proposed++
	ar := r
	if ar < 0 {
		ar = -ar
	}
	if ar < 1 && sw.Rng.Float64() >= ar {
		return
	}
	sw.accepted++
	if r < 0 {
		sw.sign = -sw.sign
	}
	sw.flipSite = i
	sw.facUp = aUp / dUp
	sw.facDn = aDn / dDn
	sw.fork(sw.acceptUpFn, sw.acceptDnFn)
	sw.Field.Flip(s, i)
	if sw.up.m == sw.delay {
		sw.fork(sw.flushUpFn, sw.flushDnFn)
	}
}

// GreenUp returns the spin-up Green's function (valid after Sweep).
func (sw *Sweeper) GreenUp() *mat.Dense { return sw.up.g }

// GreenDn returns the spin-down Green's function.
func (sw *Sweeper) GreenDn() *mat.Dense { return sw.dn.g }

// Sign returns the tracked configuration sign.
func (sw *Sweeper) Sign() float64 { return sw.sign }

// SetSign restores a checkpointed sign (the sign is tracked incrementally
// across flips, so a resumed chain must start from the saved value).
func (sw *Sweeper) SetSign(s float64) { sw.sign = s }

// AcceptanceRate returns accepted/proposed so far.
func (sw *Sweeper) AcceptanceRate() float64 {
	if sw.proposed == 0 {
		return 0
	}
	return float64(sw.accepted) / float64(sw.proposed)
}

// Counters returns the lifetime Metropolis accept/propose counts.
func (sw *Sweeper) Counters() (accepted, proposed int64) {
	return sw.accepted, sw.proposed
}

// SetCounters restores checkpointed Metropolis counters so a resumed
// chain's acceptance rate spans the whole run.
func (sw *Sweeper) SetCounters(accepted, proposed int64) {
	sw.accepted, sw.proposed = accepted, proposed
}

// SetBoundaryHook registers h to run after every stratified refresh, when
// GreenUp/GreenDn hold freshly recomputed Green's functions. Pass nil to
// disable. Used for per-boundary equal-time measurements.
func (sw *Sweeper) SetBoundaryHook(h func()) { sw.boundaryHook = h }

// MaxWrapDrift reports the largest observed relative difference between a
// wrapped Green's function and its stratified recomputation.
func (sw *Sweeper) MaxWrapDrift() float64 { return sw.maxWrapDrift }

// StabilityEvery returns the residual-check cadence in use.
func (sw *Sweeper) StabilityEvery() int { return sw.stabilityEvery }

// SetStabilityEvery changes the stack-vs-rebuild residual check cadence
// (boundaries between checks; <= 0 disables). Takes effect at the next
// refresh; the cadence never influences the Markov chain, only how often
// the diagnostic is sampled.
func (sw *Sweeper) SetStabilityEvery(n int) {
	if n < 0 {
		n = 0
	}
	sw.stabilityEvery = n
}

// Device exposes the group's primary simulated device for its counters.
func (sw *Sweeper) Device() *Device { return sw.grp.Devs[0] }

// Group exposes the whole device group.
func (sw *Sweeper) Group() *Group { return sw.grp }

// GraphsEnabled reports whether the wrap/cluster sequences run via
// command-graph replay.
func (sw *Sweeper) GraphsEnabled() bool { return sw.graphs }

// ClusterK returns the clustering size in use.
func (sw *Sweeper) ClusterK() int { return sw.clusterK }

// SetClusterK switches the hybrid sweeper to cluster size k between sweeps
// (the autopilot's actuator, mirroring update.Sweeper.SetClusterK): k snaps
// to the nearest divisor of L at or below the request, the device cluster
// sets are rebuilt — with the same sharding — on each spin's existing
// accelerators, any captured cluster graphs are invalidated (the recorded
// pipeline depth no longer matches), and the stratification stacks are
// retargeted. The Green's functions sit at boundary 0 between sweeps and
// are independent of the clustering, so they are left untouched. Returns
// the k actually installed.
func (sw *Sweeper) SetClusterK(k int) int {
	if k < 1 {
		k = 1
	}
	for sw.Prop.Model.L%k != 0 {
		k--
	}
	if k == sw.clusterK {
		return k
	}
	sw.clusterK = k
	for _, sp := range [2]*gpuSpin{sw.up, sw.dn} {
		for _, acc := range sp.accs {
			acc.InvalidateGraphs()
		}
	}
	cstart := sw.o.Begin()
	sw.up.cs = NewClusterSetSharded(sw.up.accs, sw.Field, hubbard.Up, k)
	sw.dn.cs = NewClusterSetSharded(sw.dn.accs, sw.Field, hubbard.Down, k)
	sw.o.End(obs.PhaseCluster, cstart)
	if sw.up.st != nil {
		sstart := sw.o.Begin()
		sw.up.st.Retarget(sw.up.cs)
		sw.dn.st.Retarget(sw.dn.cs)
		sw.o.End(obs.PhaseRefresh, sstart)
	}
	sw.boundary = 0
	return k
}

// Greens consistency check against the CPU evaluation — used by tests.
func (sw *Sweeper) freshCPU(sigma hubbard.Spin) *mat.Dense {
	cs := greens.NewClusterSet(sw.Prop, sw.Field, sigma, sw.clusterK)
	return cs.GreenAt(0, true)
}

package gpu

import (
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/profile"
	"questgo/internal/rng"
)

// Sweeper is the device-offloaded counterpart of update.Sweeper: the same
// Metropolis sweep (Algorithm 1) with every level-3 phase on the simulated
// accelerator — wrapping (Algorithm 6/7), matrix clustering (Algorithm
// 4/5), and the stratified recomputation via the hybrid Algorithm 3
// (Section VII future work). The per-site rank-1 bookkeeping, which is
// latency-bound and serial, stays on the host, exactly as the paper's
// hybrid design prescribes.
//
// It produces the same Markov chain as the CPU sweeper up to floating-
// point reassociation in the stratified refreshes (the wrapping and
// update arithmetic is identical); physical observables agree within
// statistical errors, which the tests verify.
type Sweeper struct {
	Prop  *hubbard.Propagator
	Field *hubbard.Field
	Rng   *rng.Rand

	acc      *Accelerator
	clusterK int
	delay    int
	prof     *profile.Profile

	csUp, csDn *ClusterSet
	gUp, gDn   *mat.Dense
	uUp, wUp   *mat.Dense
	uDn, wDn   *mat.Dense
	pending    int
	sign       float64
	accepted   int64
	proposed   int64
}

// SweeperOptions configures the hybrid sweeper.
type SweeperOptions struct {
	ClusterK int
	Delay    int
	Prof     *profile.Profile
}

// NewSweeper builds the device cluster sets and the initial Green's
// functions through the hybrid stratification.
func NewSweeper(dev *Device, p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand, opts SweeperOptions) *Sweeper {
	if opts.ClusterK < 1 {
		opts.ClusterK = 10
	}
	for p.Model.L%opts.ClusterK != 0 {
		opts.ClusterK--
	}
	if opts.Delay < 1 {
		opts.Delay = 32
	}
	n := p.Model.N()
	if opts.Delay > n {
		opts.Delay = n
	}
	acc := NewAccelerator(dev, p)
	sw := &Sweeper{
		Prop: p, Field: f, Rng: r,
		acc:      acc,
		clusterK: opts.ClusterK,
		delay:    opts.Delay,
		prof:     opts.Prof,
		gUp:      mat.New(n, n),
		gDn:      mat.New(n, n),
		uUp:      mat.New(n, opts.Delay),
		wUp:      mat.New(n, opts.Delay),
		uDn:      mat.New(n, opts.Delay),
		wDn:      mat.New(n, opts.Delay),
		sign:     1,
	}
	done := opts.Prof.Track(profile.Clustering)
	sw.csUp = NewClusterSet(acc, f, hubbard.Up, opts.ClusterK)
	sw.csDn = NewClusterSet(acc, f, hubbard.Down, opts.ClusterK)
	done()
	sw.refresh(0)
	return sw
}

func (sw *Sweeper) refresh(c int) {
	defer sw.prof.Track(profile.Stratification)()
	sw.gUp.CopyFrom(GreenFromUDTHybrid(sw.acc.Dev, StratifyHybrid(sw.acc.Dev, sw.csUp.Chain(c))))
	sw.gDn.CopyFrom(GreenFromUDTHybrid(sw.acc.Dev, StratifyHybrid(sw.acc.Dev, sw.csDn.Chain(c))))
}

// Sweep performs one full Metropolis sweep with device-offloaded
// wrapping, clustering and stratification.
func (sw *Sweeper) Sweep() {
	model := sw.Prop.Model
	n := model.N()
	k := sw.clusterK
	for s := 0; s < model.L; s++ {
		wdone := sw.prof.Track(profile.Wrapping)
		sw.acc.Wrap(sw.gUp, sw.Field, hubbard.Up, s)
		sw.acc.Wrap(sw.gDn, sw.Field, hubbard.Down, s)
		wdone()

		udone := sw.prof.Track(profile.DelayedUpdate)
		for i := 0; i < n; i++ {
			sw.proposeFlip(s, i)
		}
		sw.flush()
		udone()

		if (s+1)%k == 0 {
			c := s / k
			cdone := sw.prof.Track(profile.Clustering)
			sw.csUp.Recompute(sw.Field, c)
			sw.csDn.Recompute(sw.Field, c)
			cdone()
			sw.refresh((c + 1) % sw.csUp.NC)
		}
	}
}

func (sw *Sweeper) effDiag(g, u, w *mat.Dense, i int) float64 {
	gii := g.At(i, i)
	for t := 0; t < sw.pending; t++ {
		gii += u.At(i, t) * w.At(i, t)
	}
	return gii
}

func (sw *Sweeper) push(g, u, w *mat.Dense, i int, factor float64) {
	n := g.Rows
	uc := u.Col(sw.pending)
	wc := w.Col(sw.pending)
	// Effective column and row of G.
	copy(uc, g.Col(i))
	for r := 0; r < n; r++ {
		wc[r] = g.At(i, r)
	}
	for t := 0; t < sw.pending; t++ {
		ut := u.Col(t)
		wt := w.Col(t)
		wi := wt[i]
		ui := ut[i]
		for r := 0; r < n; r++ {
			uc[r] += ut[r] * wi
			wc[r] += wt[r] * ui
		}
	}
	for r := 0; r < n; r++ {
		uc[r] *= -factor
		wc[r] = -wc[r]
	}
	wc[i] += 1
}

func (sw *Sweeper) proposeFlip(s, i int) {
	h := sw.Field.H[s][i]
	aUp := sw.Prop.Alpha(hubbard.Up, h)
	aDn := sw.Prop.Alpha(hubbard.Down, h)
	dUp := 1 + aUp*(1-sw.effDiag(sw.gUp, sw.uUp, sw.wUp, i))
	dDn := 1 + aDn*(1-sw.effDiag(sw.gDn, sw.uDn, sw.wDn, i))
	r := dUp * dDn * sw.Prop.BosonRatio(h)
	sw.proposed++
	ar := r
	if ar < 0 {
		ar = -ar
	}
	if ar < 1 && sw.Rng.Float64() >= ar {
		return
	}
	sw.accepted++
	if r < 0 {
		sw.sign = -sw.sign
	}
	sw.push(sw.gUp, sw.uUp, sw.wUp, i, aUp/dUp)
	sw.push(sw.gDn, sw.uDn, sw.wDn, i, aDn/dDn)
	sw.pending++
	sw.Field.Flip(s, i)
	if sw.pending == sw.delay {
		sw.flush()
	}
}

// flush applies the pending block updates with *device* GEMMs — on real
// hardware this is where the delayed-update trick pays off most, since
// the rank-nd updates are pure DGEMM.
func (sw *Sweeper) flush() {
	if sw.pending == 0 {
		return
	}
	m := sw.pending
	dev := sw.acc.Dev
	n := sw.gUp.Rows
	applyFlush := func(g, u, w *mat.Dense) {
		dg := dev.Malloc(n, n)
		dev.SetMatrix(dg, g)
		du := dev.Malloc(n, m)
		dev.SetMatrix(du, u.View(0, 0, n, m))
		dw := dev.Malloc(n, m)
		dev.SetMatrix(dw, w.View(0, 0, n, m))
		dev.Dgemm(false, true, 1, du, dw, 1, dg)
		dev.GetMatrix(g, dg)
	}
	applyFlush(sw.gUp, sw.uUp, sw.wUp)
	applyFlush(sw.gDn, sw.uDn, sw.wDn)
	sw.pending = 0
}

// GreenUp returns the spin-up Green's function (valid after Sweep).
func (sw *Sweeper) GreenUp() *mat.Dense { return sw.gUp }

// GreenDn returns the spin-down Green's function.
func (sw *Sweeper) GreenDn() *mat.Dense { return sw.gDn }

// Sign returns the tracked configuration sign.
func (sw *Sweeper) Sign() float64 { return sw.sign }

// AcceptanceRate returns accepted/proposed so far.
func (sw *Sweeper) AcceptanceRate() float64 {
	if sw.proposed == 0 {
		return 0
	}
	return float64(sw.accepted) / float64(sw.proposed)
}

// Device exposes the underlying simulated device for its counters.
func (sw *Sweeper) Device() *Device { return sw.acc.Dev }

// Greens consistency check against the CPU evaluation — used by tests.
func (sw *Sweeper) freshCPU(sigma hubbard.Spin) *mat.Dense {
	cs := greens.NewClusterSet(sw.Prop, sw.Field, sigma, sw.clusterK)
	return cs.GreenAt(0, true)
}

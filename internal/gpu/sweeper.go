package gpu

import (
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/parallel"
	"questgo/internal/rng"
)

// Sweeper is the device-offloaded counterpart of update.Sweeper: the same
// Metropolis sweep (Algorithm 1) with every level-3 phase on the simulated
// accelerator — wrapping (Algorithm 6/7), matrix clustering (Algorithm
// 4/5), and the delayed-update flush GEMMs. The per-site rank-1
// bookkeeping, which is latency-bound and serial, stays on the host,
// exactly as the paper's hybrid design prescribes.
//
// It shares the two structural optimizations of the CPU sweeper: the
// boundary Green's functions come from a greens.StratStack over the
// device-built clusters (one prefix extension per boundary instead of a
// full chain re-stratification; SweeperOptions.NoStack restores the hybrid
// full-rebuild reference), and the per-spin device phases run concurrently
// through parallel.Pair — each spin owns an Accelerator, modeling two CUDA
// streams sharing one card, with the Device clock mutex-serialized.
//
// It produces the same Markov chain as the CPU sweeper up to floating-
// point reassociation in the stratified refreshes (the wrapping and
// update arithmetic is identical); physical observables agree within
// statistical errors, which the tests verify.
type Sweeper struct {
	Prop  *hubbard.Propagator
	Field *hubbard.Field
	Rng   *rng.Rand

	dev      *Device
	clusterK int
	delay    int
	serial   bool
	o        *obs.Collector

	up, dn   *gpuSpin
	sign     float64
	accepted int64
	proposed int64

	// Pre-bound closures and their operand fields for the spin forks (see
	// update.Sweeper; same zero-alloc scheme).
	wrapUpFn, wrapDnFn     func()
	flushUpFn, flushDnFn   func()
	acceptUpFn, acceptDnFn func()
	clusterUpFn, clusterDn func()
	refreshUpFn, refreshDn func()
	advanceUpFn, advanceDn func()
	wrapSlice              int
	flipSite               int
	facUp, facDn           float64
	cluster                int
	boundary               int
}

// gpuSpin owns one spin sector's device session: its Accelerator (device
// scratch must not be shared between concurrently running spins), cluster
// set, stratification stack, Green's function, and delayed-update buffers.
type gpuSpin struct {
	sigma hubbard.Spin
	acc   *Accelerator
	cs    *ClusterSet
	st    *greens.StratStack
	g     *mat.Dense
	u, w  *mat.Dense
	m     int
	// Device-resident flush operands, allocated once.
	dg, du, dw *Matrix
}

func newGpuSpin(dev *Device, p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin, k, nd int, noStack bool) *gpuSpin {
	n := p.Model.N()
	sp := &gpuSpin{
		sigma: sigma,
		acc:   NewAccelerator(dev, p),
		g:     mat.New(n, n),
		u:     mat.New(n, nd),
		w:     mat.New(n, nd),
		dg:    dev.Malloc(n, n),
		du:    dev.Malloc(n, nd),
		dw:    dev.Malloc(n, nd),
	}
	sp.cs = NewClusterSet(sp.acc, f, sigma, k)
	if !noStack {
		sp.st = greens.NewStratStack(sp.cs, true)
	}
	return sp
}

func (sp *gpuSpin) effDiag(i int) float64 {
	gii := sp.g.At(i, i)
	for t := 0; t < sp.m; t++ {
		gii += sp.u.At(i, t) * sp.w.At(i, t)
	}
	return gii
}

// push assembles the effective column/row of G for site i and queues the
// rank-1 update with amplitude factor = alpha/d.
func (sp *gpuSpin) push(i int, factor float64) {
	n := sp.g.Rows
	uc := sp.u.Col(sp.m)
	wc := sp.w.Col(sp.m)
	copy(uc, sp.g.Col(i))
	for r := 0; r < n; r++ {
		wc[r] = sp.g.At(i, r)
	}
	for t := 0; t < sp.m; t++ {
		ut := sp.u.Col(t)
		wt := sp.w.Col(t)
		wi := wt[i]
		ui := ut[i]
		for r := 0; r < n; r++ {
			uc[r] += ut[r] * wi
			wc[r] += wt[r] * ui
		}
	}
	for r := 0; r < n; r++ {
		uc[r] *= -factor
		wc[r] = -wc[r]
	}
	wc[i] += 1
	sp.m++
}

// flush applies the pending block update G += U*W^T with a *device* GEMM —
// on real hardware this is where the delayed-update trick pays off most,
// since the rank-nd updates are pure DGEMM.
//
//qmc:charges OpDelayedFlushes
//qmc:hot
func (sp *gpuSpin) flush(dev *Device) {
	if sp.m == 0 {
		return
	}
	obs.Add(obs.OpDelayedFlushes, 1)
	n := sp.g.Rows
	dev.SetMatrix(sp.dg, sp.g)
	duV := sp.du.Sub(0, 0, n, sp.m)
	dwV := sp.dw.Sub(0, 0, n, sp.m)
	dev.SetMatrix(duV, sp.u.View(0, 0, n, sp.m))
	dev.SetMatrix(dwV, sp.w.View(0, 0, n, sp.m))
	dev.Dgemm(false, true, 1, duV, dwV, 1, sp.dg)
	dev.GetMatrix(sp.g, sp.dg)
	sp.m = 0
}

// refresh recomputes the spin's Green's function at the given boundary:
// through the stratification stack when enabled, otherwise by the hybrid
// full-chain rebuild (StratifyHybrid + GreenFromUDTHybrid).
func (sp *gpuSpin) refresh(dev *Device, boundary int) {
	if sp.st != nil {
		sp.st.GreenInto(sp.g)
		return
	}
	sp.g.CopyFrom(GreenFromUDTHybrid(dev, StratifyHybrid(dev, sp.cs.Chain(boundary))))
}

// SweeperOptions configures the hybrid sweeper.
type SweeperOptions struct {
	ClusterK int
	Delay    int
	// NoStack disables the prefix/suffix UDT stack and refreshes by full
	// hybrid re-stratification of the cluster chain (the pre-stack
	// reference path).
	NoStack bool
	// SerialSpins disables the concurrent up/down device phases.
	SerialSpins bool
	// Obs, when non-nil, receives per-phase timings, operation counts and
	// stability telemetry (nil costs nothing).
	Obs *obs.Collector
}

// NewSweeper builds the device cluster sets and the initial Green's
// functions through the stratification stack (or the hybrid rebuild when
// NoStack is set).
func NewSweeper(dev *Device, p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand, opts SweeperOptions) *Sweeper {
	if opts.ClusterK < 1 {
		opts.ClusterK = 10
	}
	for p.Model.L%opts.ClusterK != 0 {
		opts.ClusterK--
	}
	if opts.Delay < 1 {
		opts.Delay = 32
	}
	n := p.Model.N()
	if opts.Delay > n {
		opts.Delay = n
	}
	sw := &Sweeper{
		Prop: p, Field: f, Rng: r,
		dev:      dev,
		clusterK: opts.ClusterK,
		delay:    opts.Delay,
		serial:   opts.SerialSpins,
		o:        opts.Obs,
		sign:     1,
	}
	cstart := opts.Obs.Begin()
	sw.up = newGpuSpin(dev, p, f, hubbard.Up, opts.ClusterK, opts.Delay, opts.NoStack)
	sw.dn = newGpuSpin(dev, p, f, hubbard.Down, opts.ClusterK, opts.Delay, opts.NoStack)
	opts.Obs.End(obs.PhaseCluster, cstart)
	if sw.up.st != nil {
		sw.up.st.Obs = opts.Obs
		sw.dn.st.Obs = opts.Obs
	}

	sw.wrapUpFn = func() { sw.up.acc.Wrap(sw.up.g, sw.Field, hubbard.Up, sw.wrapSlice) }
	sw.wrapDnFn = func() { sw.dn.acc.Wrap(sw.dn.g, sw.Field, hubbard.Down, sw.wrapSlice) }
	sw.flushUpFn = func() { sw.up.flush(sw.dev) }
	sw.flushDnFn = func() { sw.dn.flush(sw.dev) }
	sw.acceptUpFn = func() { sw.up.push(sw.flipSite, sw.facUp) }
	sw.acceptDnFn = func() { sw.dn.push(sw.flipSite, sw.facDn) }
	sw.clusterUpFn = func() { sw.up.cs.Recompute(sw.Field, sw.cluster) }
	sw.clusterDn = func() { sw.dn.cs.Recompute(sw.Field, sw.cluster) }
	sw.refreshUpFn = func() { sw.up.refresh(sw.dev, sw.boundary) }
	sw.refreshDn = func() { sw.dn.refresh(sw.dev, sw.boundary) }
	if sw.up.st != nil {
		sw.advanceUpFn = func() { sw.up.st.Advance() }
		sw.advanceDn = func() { sw.dn.st.Advance() }
	}

	sw.refresh(0)
	return sw
}

func (sw *Sweeper) fork(up, dn func()) {
	if sw.serial {
		up()
		dn()
		return
	}
	parallel.Pair(up, dn)
}

func (sw *Sweeper) refresh(c int) {
	start := sw.o.Begin()
	sw.boundary = c
	sw.fork(sw.refreshUpFn, sw.refreshDn)
	sw.o.End(obs.PhaseRefresh, start)
}

// Sweep performs one full Metropolis sweep with device-offloaded
// wrapping, clustering and delayed-update flushes, the up/down sectors
// running concurrently.
//
//qmc:charges OpSweeps
func (sw *Sweeper) Sweep() {
	obs.Add(obs.OpSweeps, 1)
	model := sw.Prop.Model
	n := model.N()
	k := sw.clusterK
	for s := 0; s < model.L; s++ {
		wstart := sw.o.Begin()
		sw.wrapSlice = s
		sw.fork(sw.wrapUpFn, sw.wrapDnFn)
		sw.o.End(obs.PhaseWrap, wstart)

		ustart := sw.o.Begin()
		for i := 0; i < n; i++ {
			sw.proposeFlip(s, i)
		}
		sw.fork(sw.flushUpFn, sw.flushDnFn)
		sw.o.End(obs.PhaseFlush, ustart)

		if (s+1)%k == 0 {
			c := s / k
			cstart := sw.o.Begin()
			sw.cluster = c
			sw.fork(sw.clusterUpFn, sw.clusterDn)
			sw.o.End(obs.PhaseCluster, cstart)
			if sw.up.st != nil {
				sstart := sw.o.Begin()
				sw.fork(sw.advanceUpFn, sw.advanceDn)
				sw.o.End(obs.PhaseRefresh, sstart)
			}
			sw.refresh((c + 1) % sw.up.cs.NC)
		}
	}
}

func (sw *Sweeper) proposeFlip(s, i int) {
	h := sw.Field.H[s][i]
	aUp := sw.Prop.Alpha(hubbard.Up, h)
	aDn := sw.Prop.Alpha(hubbard.Down, h)
	dUp := 1 + aUp*(1-sw.up.effDiag(i))
	dDn := 1 + aDn*(1-sw.dn.effDiag(i))
	r := dUp * dDn * sw.Prop.BosonRatio(h)
	sw.proposed++
	ar := r
	if ar < 0 {
		ar = -ar
	}
	if ar < 1 && sw.Rng.Float64() >= ar {
		return
	}
	sw.accepted++
	if r < 0 {
		sw.sign = -sw.sign
	}
	sw.flipSite = i
	sw.facUp = aUp / dUp
	sw.facDn = aDn / dDn
	sw.fork(sw.acceptUpFn, sw.acceptDnFn)
	sw.Field.Flip(s, i)
	if sw.up.m == sw.delay {
		sw.fork(sw.flushUpFn, sw.flushDnFn)
	}
}

// GreenUp returns the spin-up Green's function (valid after Sweep).
func (sw *Sweeper) GreenUp() *mat.Dense { return sw.up.g }

// GreenDn returns the spin-down Green's function.
func (sw *Sweeper) GreenDn() *mat.Dense { return sw.dn.g }

// Sign returns the tracked configuration sign.
func (sw *Sweeper) Sign() float64 { return sw.sign }

// AcceptanceRate returns accepted/proposed so far.
func (sw *Sweeper) AcceptanceRate() float64 {
	if sw.proposed == 0 {
		return 0
	}
	return float64(sw.accepted) / float64(sw.proposed)
}

// Device exposes the underlying simulated device for its counters.
func (sw *Sweeper) Device() *Device { return sw.dev }

// ClusterK returns the clustering size in use.
func (sw *Sweeper) ClusterK() int { return sw.clusterK }

// SetClusterK switches the hybrid sweeper to cluster size k between sweeps
// (the autopilot's actuator, mirroring update.Sweeper.SetClusterK): k snaps
// to the nearest divisor of L at or below the request, the device cluster
// sets are rebuilt on each spin's existing accelerator, and the
// stratification stacks are retargeted. The Green's functions sit at
// boundary 0 between sweeps and are independent of the clustering, so they
// are left untouched. Returns the k actually installed.
func (sw *Sweeper) SetClusterK(k int) int {
	if k < 1 {
		k = 1
	}
	for sw.Prop.Model.L%k != 0 {
		k--
	}
	if k == sw.clusterK {
		return k
	}
	sw.clusterK = k
	cstart := sw.o.Begin()
	sw.up.cs = NewClusterSet(sw.up.acc, sw.Field, hubbard.Up, k)
	sw.dn.cs = NewClusterSet(sw.dn.acc, sw.Field, hubbard.Down, k)
	sw.o.End(obs.PhaseCluster, cstart)
	if sw.up.st != nil {
		sstart := sw.o.Begin()
		sw.up.st.Retarget(sw.up.cs)
		sw.dn.st.Retarget(sw.dn.cs)
		sw.o.End(obs.PhaseRefresh, sstart)
	}
	sw.boundary = 0
	return k
}

// Greens consistency check against the CPU evaluation — used by tests.
func (sw *Sweeper) freshCPU(sigma hubbard.Spin) *mat.Dense {
	cs := greens.NewClusterSet(sw.Prop, sw.Field, sigma, sw.clusterK)
	return cs.GreenAt(0, true)
}

package gpu

import (
	"testing"
	"time"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func testSetup(t *testing.T, nx, ny int, u, beta float64, l int, seed uint64) (*hubbard.Propagator, *hubbard.Field) {
	t.Helper()
	lat := lattice.NewSquare(nx, ny, 1)
	m, err := hubbard.NewModel(lat, u, 0, beta, l)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(m)
	f := hubbard.NewRandomField(l, m.N(), rng.New(seed))
	return p, f
}

func randomDense(r *rng.Rand, n int) *mat.Dense {
	m := mat.New(n, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*r.Float64() - 1
		}
	}
	return m
}

func TestTransferRoundTrip(t *testing.T) {
	d := NewDevice(TeslaC2050())
	r := rng.New(1)
	h := randomDense(r, 8)
	dm := d.Malloc(8, 8)
	d.SetMatrix(dm, h)
	back := mat.New(8, 8)
	d.GetMatrix(back, dm)
	if !back.EqualApprox(h, 0) {
		t.Fatal("transfer round trip corrupted data")
	}
	if d.Transferred() != 2*8*8*8 {
		t.Fatalf("transferred bytes = %d", d.Transferred())
	}
	if d.Clock() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestDeviceGemmMatchesHost(t *testing.T) {
	d := NewDevice(TeslaC2050())
	r := rng.New(2)
	a, b := randomDense(r, 12), randomDense(r, 12)
	da, db, dc := d.Malloc(12, 12), d.Malloc(12, 12), d.Malloc(12, 12)
	d.SetMatrix(da, a)
	d.SetMatrix(db, b)
	d.Dgemm(false, false, 1, da, db, 0, dc)
	got := mat.New(12, 12)
	d.GetMatrix(got, dc)
	// Host reference.
	want := mat.New(12, 12)
	for j := 0; j < 12; j++ {
		for i := 0; i < 12; i++ {
			s := 0.0
			for k := 0; k < 12; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("device Dgemm wrong")
	}
}

func TestScaleRowsKernel(t *testing.T) {
	d := NewDevice(TeslaC2050())
	r := rng.New(3)
	src := randomDense(r, 6)
	v := []float64{1, 2, 3, 4, 5, 6}
	dsrc, ddst, dv := d.Malloc(6, 6), d.Malloc(6, 6), d.Malloc(6, 1)
	d.SetMatrix(dsrc, src)
	d.SetVector(dv, v)
	d.ScaleRows(ddst, dsrc, dv)
	got := mat.New(6, 6)
	d.GetMatrix(got, ddst)
	want := src.Clone()
	want.ScaleRows(v)
	if !got.EqualApprox(want, 0) {
		t.Fatal("ScaleRows kernel wrong")
	}
}

func TestScaleRowsColsKernel(t *testing.T) {
	d := NewDevice(TeslaC2050())
	r := rng.New(4)
	g := randomDense(r, 5)
	v := []float64{2, 0.5, 3, 1.5, 4}
	dg, dv := d.Malloc(5, 5), d.Malloc(5, 1)
	d.SetMatrix(dg, g)
	d.SetVector(dv, v)
	d.ScaleRowsCols(dg, dv)
	got := mat.New(5, 5)
	d.GetMatrix(got, dg)
	want := g.Clone()
	want.ScaleRows(v)
	inv := make([]float64, 5)
	for i := range v {
		inv[i] = 1 / v[i]
	}
	want.ScaleCols(inv)
	if !got.EqualApprox(want, 1e-15) {
		t.Fatal("ScaleRowsCols kernel wrong")
	}
}

func TestAcceleratorClusterMatchesCPU(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 5)
	dev := NewDevice(TeslaC2050())
	acc := NewAccelerator(dev, p)
	cpu := greens.NewClusterSet(p, f, hubbard.Up, 4)
	gpuCS := NewClusterSet(acc, f, hubbard.Up, 4)
	for c := 0; c < 2; c++ {
		if d := mat.RelDiff(gpuCS.Cluster(c), cpu.Cluster(c)); d > 1e-13 {
			t.Fatalf("cluster %d: GPU vs CPU diff %g", c, d)
		}
	}
}

func TestAcceleratorWrapMatchesCPU(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 7)
	bs := make([]*mat.Dense, p.Model.L)
	for i := range bs {
		bs[i] = p.BMatrix(hubbard.Up, f, i)
	}
	gCPU := greens.Green(bs)
	gGPU := gCPU.Clone()
	w := greens.NewWrapper(p)
	w.Wrap(gCPU, f, hubbard.Up, 0)
	dev := NewDevice(TeslaC2050())
	acc := NewAccelerator(dev, p)
	acc.Wrap(gGPU, f, hubbard.Up, 0)
	if d := mat.RelDiff(gGPU, gCPU); d > 1e-12 {
		t.Fatalf("GPU wrap vs CPU wrap diff %g", d)
	}
}

func TestHybridGreenMatchesCPU(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 4, 16, 9)
	dev := NewDevice(TeslaC2050())
	acc := NewAccelerator(dev, p)
	gpuCS := NewClusterSet(acc, f, hubbard.Up, 4)
	cpuCS := greens.NewClusterSet(p, f, hubbard.Up, 4)
	gGPU := gpuCS.GreenAt(0)
	gCPU := cpuCS.GreenAt(0, true)
	if d := mat.RelDiff(gGPU, gCPU); d > 1e-11 {
		t.Fatalf("hybrid G vs CPU G diff %g", d)
	}
}

func TestCostModelShapes(t *testing.T) {
	// The paper's Figure 9 phenomenon: for the same N, clustering (k GEMMs
	// per result transfer) must achieve a higher modeled rate than
	// wrapping (2 GEMMs per full G round trip).
	p, f := testSetup(t, 8, 8, 4, 2, 20, 11)
	dev := NewDevice(TeslaC2050())
	acc := NewAccelerator(dev, p)
	n := p.Model.N()

	dev.Reset()
	dst := mat.New(n, n)
	acc.Cluster(dst, f, hubbard.Up, 0, 10)
	clusterRate := dev.GFlopsRate()

	dev.Reset()
	g := randomDense(rng.New(1), n)
	acc.Wrap(g, f, hubbard.Up, 0)
	wrapRate := dev.GFlopsRate()

	if clusterRate <= wrapRate {
		t.Fatalf("clustering rate %.1f should exceed wrapping rate %.1f", clusterRate, wrapRate)
	}
	// Rates grow with N (Figure 9's upward trend): compare against a
	// smaller lattice.
	p2, f2 := testSetup(t, 4, 4, 4, 2, 20, 13)
	dev2 := NewDevice(TeslaC2050())
	acc2 := NewAccelerator(dev2, p2)
	dev2.Reset()
	dst2 := mat.New(16, 16)
	acc2.Cluster(dst2, f2, hubbard.Up, 0, 10)
	if dev2.GFlopsRate() >= clusterRate {
		t.Fatalf("cluster rate should grow with N: N=16 %.1f vs N=64 %.1f",
			dev2.GFlopsRate(), clusterRate)
	}
}

func TestClockMonotonicAndReset(t *testing.T) {
	d := NewDevice(TeslaC2050())
	m := d.Malloc(4, 4)
	h := mat.New(4, 4)
	var prev time.Duration
	for i := 0; i < 3; i++ {
		d.SetMatrix(m, h)
		if d.Clock() <= prev {
			t.Fatal("clock must advance")
		}
		prev = d.Clock()
	}
	d.Reset()
	if d.Clock() != 0 || d.Transferred() != 0 || d.Flops() != 0 || d.Kernels() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCrossDevicePanics(t *testing.T) {
	d1 := NewDevice(TeslaC2050())
	d2 := NewDevice(TeslaC2050())
	a := d1.Malloc(2, 2)
	b := d2.Malloc(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-device operands")
		}
	}()
	d1.Dgemm(false, false, 1, a, b, 0, a)
}

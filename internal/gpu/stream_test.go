package gpu

import (
	"testing"

	"questgo/internal/mat"
	"questgo/internal/rng"
)

// TestStreamsOverlapIndependentEngines checks the core overlap property:
// a transfer on one stream and a GEMM on another, with no event
// dependency, overlap in modeled time — the device clock is the max of
// the two engines' occupancy, not the sum.
func TestStreamsOverlapIndependentEngines(t *testing.T) {
	d := NewDevice(TeslaC2050())
	copyS, compS := d.NewStream(), d.NewStream()
	n := 128
	h := randomDense(rng.New(1), n)
	dm := d.Malloc(n, n)
	da, db, dc := d.Malloc(n, n), d.Malloc(n, n), d.Malloc(n, n)

	copyS.SetMatrix(dm, h)
	compS.Dgemm(false, false, 1, da, db, 0, dc)

	xfer, comp := d.BusyTransfer(), d.BusyCompute()
	if xfer == 0 || comp == 0 {
		t.Fatal("both engines should have been charged")
	}
	clock := d.Clock()
	if clock >= xfer+comp {
		t.Fatalf("independent streams did not overlap: clock %v vs engines %v + %v", clock, xfer, comp)
	}
	if clock < xfer || clock < comp {
		t.Fatalf("clock %v below engine occupancy (%v transfer, %v compute)", clock, xfer, comp)
	}
}

// TestEventOrdersStreams checks Record/Wait semantics: the waiting stream
// cannot run ahead of the recorded stamp, and an event dependency
// serializes exactly the ordered pair.
func TestEventOrdersStreams(t *testing.T) {
	d := NewDevice(TeslaC2050())
	producer, consumer := d.NewStream(), d.NewStream()
	n := 64
	h := randomDense(rng.New(2), n)
	dm := d.Malloc(n, n)

	producer.SetMatrix(dm, h)
	e := NewEvent()
	producer.Record(e)
	if consumer.Clock() != 0 {
		t.Fatalf("idle stream clock should be 0, got %v", consumer.Clock())
	}
	consumer.Wait(e)
	if consumer.Clock() != producer.Clock() {
		t.Fatalf("Wait should advance the consumer to the stamp: %v vs %v", consumer.Clock(), producer.Clock())
	}
	// Waiting on an older stamp never rewinds a clock.
	stale := NewEvent()
	consumer.Wait(stale)
	if consumer.Clock() != producer.Clock() {
		t.Fatal("waiting on an unrecorded event must not move the clock")
	}
}

// TestEngineOccupancyBoundsClock checks that two streams issuing compute
// work cannot beat the single card's aggregate throughput: the clock is
// bounded below by the compute-engine occupancy even though each stream's
// own critical path is half of it.
func TestEngineOccupancyBoundsClock(t *testing.T) {
	d := NewDevice(TeslaC2050())
	s1, s2 := d.NewStream(), d.NewStream()
	n := 96
	a1, b1, c1 := d.Malloc(n, n), d.Malloc(n, n), d.Malloc(n, n)
	a2, b2, c2 := d.Malloc(n, n), d.Malloc(n, n), d.Malloc(n, n)

	s1.Dgemm(false, false, 1, a1, b1, 0, c1)
	s2.Dgemm(false, false, 1, a2, b2, 0, c2)

	if s1.Clock() != s2.Clock() {
		t.Fatalf("identical work on two streams should cost the same: %v vs %v", s1.Clock(), s2.Clock())
	}
	if d.Clock() != d.BusyCompute() {
		t.Fatalf("clock %v should equal compute occupancy %v (streams cannot oversubscribe the card)",
			d.Clock(), d.BusyCompute())
	}
	if d.Clock() != 2*s1.Clock() {
		t.Fatalf("two equal GEMMs should occupy the engine for twice one stream's path: %v vs 2*%v",
			d.Clock(), s1.Clock())
	}
}

// TestHostNodeRunsInline checks that host callbacks execute at their
// stream position and cost no modeled device time.
func TestHostNodeRunsInline(t *testing.T) {
	d := NewDevice(TeslaC2050())
	s := d.NewStream()
	ran := false
	s.Host(func() { ran = true })
	if !ran {
		t.Fatal("host callback did not run")
	}
	if s.Clock() != 0 || d.Clock() != 0 {
		t.Fatal("host callbacks must not advance the modeled clock")
	}
}

// TestFreedMatrixPanics checks the use-after-free guard on stream ops.
func TestFreedMatrixPanics(t *testing.T) {
	d := NewDevice(TeslaC2050())
	m := d.Malloc(4, 4)
	before := d.AllocBytes()
	m.Free()
	if d.AllocBytes() != before-4*4*8 {
		t.Fatalf("Free did not release accounting: %d vs %d", d.AllocBytes(), before)
	}
	m.Free() // double free is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on freed-matrix use")
		}
	}()
	d.SetMatrix(m, mat.New(4, 4))
}

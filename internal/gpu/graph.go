package gpu

import (
	"fmt"
	"sync/atomic"

	"questgo/internal/mat"
	"questgo/internal/obs"
)

// Graph is a recorded command sequence — the analogue of a CUDA Graph
// (cudaStreamBeginCapture / cudaGraphLaunch). Capture records the stream
// operations issued by a setup closure *without executing them*; Replay
// executes the whole sequence while charging the fixed launch overhead
// exactly once, which is the amortization CUDA Graphs exist for: a
// recorded sweep's cluster or wrap sequence stops paying per-kernel launch
// and per-transfer latency.
//
// Replays are parameterized two ways, mirroring cudaGraphExecUpdate:
//
//   - Host nodes (Stream.Host) re-execute their callback on every replay,
//     so a callback that reads mutable fields (the current slice index,
//     the live auxiliary field) re-binds the *data* flowing into fixed
//     device buffers.
//   - RebindHost / RebindDevice swap an operand pointer across the whole
//     graph (a new download destination, a resized scratch buffer).
//
// A graph records the event topology too: Record/Wait nodes captured from
// multiple streams replay with the same cross-stream ordering constraints,
// so overlapped transfer/compute pipelines keep their modeled overlap.
type Graph struct {
	dev     *Device
	nodes   []node
	streams []*Stream
}

// NewGraph returns an empty graph on the device.
func (d *Device) NewGraph() *Graph { return &Graph{dev: d} }

// Capture records every operation the setup closure issues on the given
// streams. Nothing executes during capture — the first execution is the
// first Replay. Capturing while a capture is already active on one of the
// streams panics, as does capturing nothing.
func (g *Graph) Capture(record func(), streams ...*Stream) {
	if len(streams) == 0 {
		panic("gpu: Graph.Capture needs at least one stream")
	}
	for _, s := range streams {
		if s.dev != g.dev {
			panic("gpu: Graph.Capture stream belongs to another device")
		}
		if s.capture != nil {
			panic("gpu: stream is already capturing")
		}
	}
	g.nodes = g.nodes[:0]
	g.streams = append(g.streams[:0], streams...)
	for _, s := range streams {
		s.capture = g
	}
	record()
	for _, s := range streams {
		s.capture = nil
	}
}

// add appends a recorded node (called from the stream entry points while
// capturing).
func (g *Graph) add(nd node) { g.nodes = append(g.nodes, nd) }

// Len returns the number of recorded nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Replay executes the recorded sequence: identical host arithmetic in
// identical order to the ungraphed path (trajectories stay bitwise equal),
// but the modeled clock charges the kernel-launch overhead once for the
// whole graph instead of once per node.
//
//qmc:charges OpGraphReplays,OpGraphNodes
func (g *Graph) Replay() {
	if len(g.nodes) == 0 {
		panic("gpu: Replay of an empty graph (Capture first)")
	}
	obs.Add(obs.OpGraphReplays, 1)
	obs.Add(obs.OpGraphNodes, int64(len(g.nodes)))
	// One launch for the whole graph, charged to the first stream's clock
	// and the compute front-end.
	d := g.dev
	l := int64(d.model.KernelLaunch)
	atomic.AddInt64(&d.launchNS, l)
	atomic.AddInt64(&d.busyNS, l)
	g.nodes[0].s.advance(l)
	for i := range g.nodes {
		nd := &g.nodes[i]
		nd.s.runNode(*nd, false)
	}
}

// RebindHost replaces every occurrence of the host matrix from among the
// graph's transfer operands with to, returning how many nodes rebound. The
// replacement must have the shape the graph was captured with (the stream
// entry points validated it then; replay trusts it now).
func (g *Graph) RebindHost(from, to *mat.Dense) int {
	if from.Rows != to.Rows || from.Cols != to.Cols {
		panic(fmt.Sprintf("gpu: RebindHost shape mismatch: captured %dx%d, rebind %dx%d", from.Rows, from.Cols, to.Rows, to.Cols))
	}
	n := 0
	for i := range g.nodes {
		if g.nodes[i].hm == from {
			g.nodes[i].hm = to
			n++
		}
	}
	return n
}

// RebindDevice replaces every occurrence of the device matrix from among
// the graph's operands with to, returning how many operand slots rebound.
func (g *Graph) RebindDevice(from, to *Matrix) int {
	g.dev.checkOwned(to)
	if from.rows != to.rows || from.cols != to.cols {
		panic(fmt.Sprintf("gpu: RebindDevice shape mismatch: captured %dx%d, rebind %dx%d", from.rows, from.cols, to.rows, to.cols))
	}
	n := 0
	for i := range g.nodes {
		nd := &g.nodes[i]
		if nd.a == from {
			nd.a = to
			n++
		}
		if nd.b == from {
			nd.b = to
			n++
		}
		if nd.c == from {
			nd.c = to
			n++
		}
	}
	return n
}

package gpu

import (
	"fmt"
	"math"

	"questgo/internal/greens"
	"questgo/internal/mat"
)

// This file completes the device offload of the Green's function
// evaluation: a hybrid LU factorization (CPU panel pivoting + device
// trailing GEMMs, the DGETRF analogue of the hybrid QR) and the final
// stabilized solve G = (D_b Q^T + D_s T)^{-1} D_b Q^T executed with
// device-resident level-3 work. Together with StratifyHybrid this puts
// the entire Algorithm 3 pipeline of the paper's Section VII on the
// accelerator.

const hybridLUBlock = 32

// HybridLU is a device-resident LU factorization with partial pivoting.
type HybridLU struct {
	dev *Device
	a   *Matrix
	piv []int
	n   int
}

// LUFactorHybrid factors the square device matrix a in place: the panel
// (including pivot search and row swaps, which are latency-bound) runs on
// the CPU on a downloaded strip; the trailing update is one device TRSM
// substitute (small triangular solve on CPU) plus a device GEMM.
func LUFactorHybrid(dev *Device, a *Matrix) *HybridLU {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("gpu: LUFactorHybrid expects a square matrix, got %dx%d", a.rows, a.cols))
	}
	h := &HybridLU{dev: dev, a: a, piv: make([]int, n), n: n}
	panel := mat.New(n, hybridLUBlock)
	for j := 0; j < n; j += hybridLUBlock {
		jb := hybridLUBlock
		if j+jb > n {
			jb = n - j
		}
		// Download the full-height panel columns [j, j+jb).
		ph := panel.View(0, 0, n, jb)
		dev.GetSub(ph, a, 0, j)
		// Factor rows [j, n) of the panel on the CPU with partial
		// pivoting; record global pivots and apply the swaps to the whole
		// panel (rows above j belong to U and swap too... they do not:
		// LAPACK swaps only within [j, n)). Pivot search over [j+c, n).
		for c := 0; c < jb; c++ {
			col := ph.Col(c)
			p := j + c
			best := math.Abs(col[p])
			for r := j + c + 1; r < n; r++ {
				if v := math.Abs(col[r]); v > best {
					best, p = v, r
				}
			}
			h.piv[j+c] = p
			if p != j+c {
				for cc := 0; cc < jb; cc++ {
					pc := ph.Col(cc)
					pc[j+c], pc[p] = pc[p], pc[j+c]
				}
			}
			pivv := col[j+c]
			if pivv != 0 {
				inv := 1 / pivv
				for r := j + c + 1; r < n; r++ {
					col[r] *= inv
				}
			}
			for cc := c + 1; cc < jb; cc++ {
				ccol := ph.Col(cc)
				f := ccol[j+c]
				if f == 0 {
					continue
				}
				for r := j + c + 1; r < n; r++ {
					ccol[r] -= f * col[r]
				}
			}
		}
		// Upload the factored panel.
		dev.SetSub(a, 0, j, ph)
		// Apply this panel's row swaps to the rest of the matrix on the
		// device (left of the panel and right of it).
		for c := 0; c < jb; c++ {
			if p := h.piv[j+c]; p != j+c {
				dev.SwapRows(a, j+c, p, 0, j)
				dev.SwapRows(a, j+c, p, j+jb, n)
			}
		}
		if j+jb < n {
			// U block row: solve L11 U12 = A12 on the CPU (jb x (n-j-jb),
			// small triangular work), then the trailing GEMM on the device.
			a12 := mat.New(jb, n-j-jb)
			dev.GetSub(a12, a, j, j+jb)
			l11 := ph.View(j, 0, jb, jb)
			trsmLowerUnit(l11, a12)
			dev.SetSub(a, j, j+jb, a12)
			l21 := a.Sub(j+jb, j, n-j-jb, jb)
			u12 := a.Sub(j, j+jb, jb, n-j-jb)
			a22 := a.Sub(j+jb, j+jb, n-j-jb, n-j-jb)
			dev.Dgemm(false, false, -1, l21, u12, 1, a22)
		}
	}
	return h
}

// trsmLowerUnit solves L X = B in place for unit lower triangular L.
func trsmLowerUnit(l, b *mat.Dense) {
	n := l.Rows
	for j := 0; j < b.Cols; j++ {
		x := b.Col(j)
		for k := 0; k < n; k++ {
			xk := x[k]
			if xk == 0 {
				continue
			}
			lc := l.Col(k)
			for i := k + 1; i < n; i++ {
				x[i] -= xk * lc[i]
			}
		}
	}
}

// Solve overwrites the device matrix b with the solution of A X = B,
// applying the pivots and both triangular solves through device-resident
// blocked operations (block solves on CPU, bulk GEMMs on device).
func (h *HybridLU) Solve(b *Matrix) {
	dev := h.dev
	n := h.n
	for i := 0; i < n; i++ {
		if p := h.piv[i]; p != i {
			dev.SwapRows(b, i, p, 0, b.cols)
		}
	}
	// Forward substitution, blocked: for each diagonal block solve on the
	// CPU then eliminate below with a device GEMM.
	host := mat.New(hybridLUBlock, b.cols)
	diag := mat.New(hybridLUBlock, hybridLUBlock)
	for j := 0; j < n; j += hybridLUBlock {
		jb := hybridLUBlock
		if j+jb > n {
			jb = n - j
		}
		hb := host.View(0, 0, jb, b.cols)
		dev.GetSub(hb, b, j, 0)
		dl := diag.View(0, 0, jb, jb)
		dev.GetSub(dl, h.a, j, j)
		trsmLowerUnit(dl, hb)
		dev.SetSub(b, j, 0, hb)
		if j+jb < n {
			l21 := h.a.Sub(j+jb, j, n-j-jb, jb)
			bj := b.Sub(j, 0, jb, b.cols)
			brest := b.Sub(j+jb, 0, n-j-jb, b.cols)
			dev.Dgemm(false, false, -1, l21, bj, 1, brest)
		}
	}
	// Back substitution.
	start := ((n - 1) / hybridLUBlock) * hybridLUBlock
	for j := start; j >= 0; j -= hybridLUBlock {
		jb := hybridLUBlock
		if j+jb > n {
			jb = n - j
		}
		hb := host.View(0, 0, jb, b.cols)
		dev.GetSub(hb, b, j, 0)
		du := diag.View(0, 0, jb, jb)
		dev.GetSub(du, h.a, j, j)
		trsmUpper(du, hb)
		dev.SetSub(b, j, 0, hb)
		if j > 0 {
			u01 := h.a.Sub(0, j, j, jb)
			bj := b.Sub(j, 0, jb, b.cols)
			babove := b.Sub(0, 0, j, b.cols)
			dev.Dgemm(false, false, -1, u01, bj, 1, babove)
		}
	}
}

// trsmUpper solves U X = B in place for non-unit upper triangular U.
func trsmUpper(u, b *mat.Dense) {
	n := u.Rows
	for j := 0; j < b.Cols; j++ {
		x := b.Col(j)
		for k := n - 1; k >= 0; k-- {
			uc := u.Col(k)
			x[k] /= uc[k]
			xk := x[k]
			if xk == 0 {
				continue
			}
			for i := 0; i < k; i++ {
				x[i] -= xk * uc[i]
			}
		}
	}
}

// GreenFromUDTHybrid forms G = (D_b Q^T + D_s T)^{-1} D_b Q^T with the
// level-3 work on the device: upload Q^T and T, scale rows with the device
// kernel, and run the hybrid LU solve.
func GreenFromUDTHybrid(dev *Device, u *greens.UDT) *mat.Dense {
	n := u.Q.Rows
	db := make([]float64, n)
	ds := make([]float64, n)
	for i, v := range u.D {
		if a := math.Abs(v); a > 1 {
			db[i] = 1 / a
			ds[i] = math.Copysign(1, v)
		} else {
			db[i] = 1
			ds[i] = v
		}
	}
	qt := u.Q.Transpose()
	dqt := dev.Malloc(n, n)
	dev.SetMatrix(dqt, qt)
	vb := dev.Malloc(n, 1)
	dev.SetVector(vb, db)
	dqtScaled := dev.Malloc(n, n)
	dev.ScaleRows(dqtScaled, dqt, vb) // D_b Q^T
	dt := dev.Malloc(n, n)
	dev.SetMatrix(dt, u.T)
	vs := dev.Malloc(n, 1)
	dev.SetVector(vs, ds)
	m := dev.Malloc(n, n)
	dev.ScaleRows(m, dt, vs) // D_s T
	dev.Axpy(1, dqtScaled, m)
	rhs := dev.Malloc(n, n)
	dev.Dcopy(rhs, dqtScaled)
	lu := LUFactorHybrid(dev, m)
	lu.Solve(rhs)
	out := mat.New(n, n)
	dev.GetMatrix(out, rhs)
	dqt.Free()
	vb.Free()
	dqtScaled.Free()
	dt.Free()
	vs.Free()
	m.Free()
	rhs.Free()
	return out
}

// GreenHybrid is the complete hybrid Algorithm 3 Green's function
// evaluation: device stratification followed by the device-offloaded
// stabilized solve.
func GreenHybrid(dev *Device, chain []*mat.Dense) *mat.Dense {
	return GreenFromUDTHybrid(dev, StratifyHybrid(dev, chain))
}

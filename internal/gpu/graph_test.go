package gpu

import (
	"testing"

	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

// TestGraphReplayBitwiseIdentical checks the tentpole's cardinal rule:
// capturing the wrap and cluster sequences into command graphs and
// replaying them produces bit-for-bit the numbers of the ungraphed path —
// graphs move modeled time, never results.
func TestGraphReplayBitwiseIdentical(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 21)
	n := p.Model.N()
	run := func(graphs bool) (*mat.Dense, *mat.Dense, *mat.Dense) {
		dev := NewDevice(TeslaC2050())
		acc := NewAccelerator(dev, p)
		acc.EnableGraphs(graphs)
		g := randomDense(rng.New(9), n)
		for l := 0; l < p.Model.L; l++ {
			acc.Wrap(g, f, hubbard.Up, l)
		}
		c0, c1 := mat.New(n, n), mat.New(n, n)
		acc.Cluster(c0, f, hubbard.Up, 0, 4)
		acc.Cluster(c1, f, hubbard.Up, 4, 4)
		return g, c0, c1
	}
	gOff, c0Off, c1Off := run(false)
	gOn, c0On, c1On := run(true)
	if !gOn.EqualApprox(gOff, 0) {
		t.Fatal("graph-replayed wraps changed the Green's function")
	}
	if !c0On.EqualApprox(c0Off, 0) || !c1On.EqualApprox(c1Off, 0) {
		t.Fatal("graph-replayed cluster build changed the product")
	}
}

// TestGraphLaunchAmortization pins the modeled effect the graphs exist
// for: replaying the recorded wrap/cluster sequences must remove at least
// 90% of the per-launch and per-transfer-latency overhead (one launch per
// replay instead of one per kernel and per transaction).
func TestGraphLaunchAmortization(t *testing.T) {
	p, f := testSetup(t, 3, 3, 4, 2, 8, 23)
	n := p.Model.N()
	run := func(graphs bool) int64 {
		dev := NewDevice(TeslaC2050())
		acc := NewAccelerator(dev, p)
		acc.EnableGraphs(graphs)
		g := randomDense(rng.New(9), n)
		dev.Reset() // exclude the one-time B upload
		for l := 0; l < p.Model.L; l++ {
			acc.Wrap(g, f, hubbard.Up, l)
		}
		c := mat.New(n, n)
		acc.Cluster(c, f, hubbard.Up, 0, 4)
		acc.Cluster(c, f, hubbard.Up, 4, 4)
		return int64(dev.LaunchOverhead())
	}
	off := run(false)
	on := run(true)
	if on <= 0 || off <= 0 {
		t.Fatalf("launch overhead not charged: off=%d on=%d", off, on)
	}
	if on*10 > off {
		t.Fatalf("graph replay kept %.1f%% of launch overhead, want <= 10%% (off %dns, on %dns)",
			100*float64(on)/float64(off), off, on)
	}
}

// TestGraphRebind captures a transfer+GEMM+download sequence once and
// retargets its host and device operands across replays.
func TestGraphRebind(t *testing.T) {
	d := NewDevice(TeslaC2050())
	s := d.NewStream()
	n := 8
	da, db := d.Malloc(n, n), d.Malloc(n, n)
	h1 := randomDense(rng.New(4), n)
	out1 := mat.New(n, n)

	g := d.NewGraph()
	g.Capture(func() {
		s.SetMatrix(da, h1)
		s.Dgemm(false, false, 1, da, da, 0, db)
		s.GetMatrix(out1, db)
	}, s)
	if g.Len() != 3 {
		t.Fatalf("captured %d nodes, want 3", g.Len())
	}
	if out1.EqualApprox(square(h1), 0) {
		t.Fatal("capture must not execute")
	}
	g.Replay()
	if !out1.EqualApprox(square(h1), 0) {
		t.Fatal("first replay wrong")
	}

	// Rebind the upload source and the download destination, replay again.
	h2 := randomDense(rng.New(5), n)
	out2 := mat.New(n, n)
	if got := g.RebindHost(h1, h2); got != 1 {
		t.Fatalf("RebindHost(h1) rebound %d nodes, want 1", got)
	}
	if got := g.RebindHost(out1, out2); got != 1 {
		t.Fatalf("RebindHost(out1) rebound %d nodes, want 1", got)
	}
	g.Replay()
	if !out2.EqualApprox(square(h2), 0) {
		t.Fatal("replay after host rebind wrong")
	}

	// Rebind the device accumulator: db appears as GEMM destination and
	// download source.
	dc := d.Malloc(n, n)
	if got := g.RebindDevice(db, dc); got != 2 {
		t.Fatalf("RebindDevice rebound %d operand slots, want 2", got)
	}
	out2.Scale(0)
	g.Replay()
	if !out2.EqualApprox(square(h2), 0) {
		t.Fatal("replay after device rebind wrong")
	}
}

// square returns h*h on the host, the reference for the graph GEMM.
func square(h *mat.Dense) *mat.Dense {
	n := h.Rows
	out := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += h.At(i, k) * h.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestGraphRebindShapeMismatchPanics checks the rebinding guards.
func TestGraphRebindShapeMismatchPanics(t *testing.T) {
	d := NewDevice(TeslaC2050())
	s := d.NewStream()
	da := d.Malloc(4, 4)
	h := mat.New(4, 4)
	g := d.NewGraph()
	g.Capture(func() { s.SetMatrix(da, h) }, s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape-mismatched rebind")
		}
	}()
	g.RebindHost(h, mat.New(4, 5))
}

// TestGraphEmptyReplayPanics: replaying before capturing is a bug.
func TestGraphEmptyReplayPanics(t *testing.T) {
	d := NewDevice(TeslaC2050())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty replay")
		}
	}()
	d.NewGraph().Replay()
}

// TestGraphCaptureForeignStreamPanics: a graph records streams of its own
// device only.
func TestGraphCaptureForeignStreamPanics(t *testing.T) {
	d1 := NewDevice(TeslaC2050())
	d2 := NewDevice(TeslaC2050())
	s2 := d2.NewStream()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-device capture")
		}
	}()
	d1.NewGraph().Capture(func() {}, s2)
}

// TestGraphReplayChargesOneLaunch pins the replay cost model exactly: a
// replayed k-node graph charges the kernel work plus a single launch.
func TestGraphReplayChargesOneLaunch(t *testing.T) {
	d := NewDevice(TeslaC2050())
	s := d.NewStream()
	n := 16
	da, db, dc := d.Malloc(n, n), d.Malloc(n, n), d.Malloc(n, n)
	g := d.NewGraph()
	g.Capture(func() {
		s.Dgemm(false, false, 1, da, db, 0, dc)
		s.Dgemm(false, false, 1, da, dc, 0, db)
		s.Dgemm(false, false, 1, da, db, 0, dc)
	}, s)
	d.Reset()
	g.Replay()
	launch := int64(d.LaunchOverhead())
	want := int64(d.Model().KernelLaunch)
	if launch != want {
		t.Fatalf("replay charged %dns launch overhead, want exactly one launch (%dns)", launch, want)
	}
	if d.Kernels() != 3 {
		t.Fatalf("replay ran %d kernels, want 3", d.Kernels())
	}
}

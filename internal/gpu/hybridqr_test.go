package gpu

import (
	"math"
	"testing"

	"questgo/internal/blas"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func TestHybridQRMatchesCPU(t *testing.T) {
	r := rng.New(21)
	for _, n := range []int{16, 33, 64, 100} {
		a := randomDense(r, n)
		dev := NewDevice(TeslaC2050())
		da := dev.Malloc(n, n)
		dev.SetMatrix(da, a)
		h := QRFactorHybrid(dev, da)
		rHybrid := h.R()
		cpu := lapack.QRFactor(a.Clone())
		rCPU := cpu.R()
		if d := mat.RelDiff(rHybrid, rCPU); d > 1e-11 {
			t.Fatalf("n=%d: hybrid R differs from CPU R by %g", n, d)
		}
	}
}

func TestHybridQRFormQOrthogonalAndReconstructs(t *testing.T) {
	r := rng.New(23)
	n := 48
	a := randomDense(r, n)
	dev := NewDevice(TeslaC2050())
	da := dev.Malloc(n, n)
	dev.SetMatrix(da, a)
	h := QRFactorHybrid(dev, da)
	dq := dev.Malloc(n, n)
	h.FormQDevice(dq)
	q := mat.New(n, n)
	dev.GetMatrix(q, dq)
	// Orthogonality.
	qtq := mat.New(n, n)
	blas.Gemm(true, false, 1, q, q, 0, qtq)
	if !qtq.EqualApprox(mat.Identity(n), 1e-11) {
		t.Fatal("hybrid Q not orthogonal")
	}
	// Q R = A.
	rr := h.R()
	rec := mat.New(n, n)
	blas.Gemm(false, false, 1, q, rr, 0, rec)
	if d := mat.RelDiff(rec, a); d > 1e-11 {
		t.Fatalf("hybrid QR does not reconstruct A: %g", d)
	}
}

func TestStratifyHybridMatchesCPU(t *testing.T) {
	p, f := testSetup(t, 4, 4, 6, 4, 20, 31)
	chain := make([]*mat.Dense, 0, 4)
	cs := greens.NewClusterSet(p, f, hubbard.Up, 5)
	for c := 0; c < cs.NC; c++ {
		chain = append(chain, cs.Cluster(c))
	}
	cpu := greens.StratifyPrePivot(chain)
	dev := NewDevice(TeslaC2050())
	hyb := StratifyHybrid(dev, chain)
	for i := range cpu.D {
		if math.Abs(hyb.D[i]-cpu.D[i]) > 1e-9*math.Abs(cpu.D[i]) {
			t.Fatalf("D[%d]: hybrid %g vs cpu %g", i, hyb.D[i], cpu.D[i])
		}
	}
	gCPU := greens.GreenFromUDT(cpu)
	gHyb := greens.GreenFromUDT(hyb)
	if d := mat.RelDiff(gHyb, gCPU); d > 1e-10 {
		t.Fatalf("hybrid stratified G differs: %g", d)
	}
	if dev.Kernels() == 0 || dev.Transferred() == 0 {
		t.Fatal("hybrid stratification did not use the device")
	}
}

func TestDeviceExtKernels(t *testing.T) {
	dev := NewDevice(TeslaC2050())
	r := rng.New(25)
	a := randomDense(r, 6)
	da := dev.Malloc(6, 6)
	dev.SetMatrix(da, a)

	// ScaleCols.
	v := []float64{1, 2, 3, 4, 5, 6}
	dv := dev.Malloc(6, 1)
	dev.SetVector(dv, v)
	dev.ScaleCols(da, dv)
	want := a.Clone()
	want.ScaleCols(v)
	got := mat.New(6, 6)
	dev.GetMatrix(got, da)
	if !got.EqualApprox(want, 0) {
		t.Fatal("device ScaleCols wrong")
	}

	// ColumnNorms.
	norms := make([]float64, 6)
	dev.ColumnNorms(da, norms)
	for j := 0; j < 6; j++ {
		w := blas.Nrm2(want.Col(j))
		if math.Abs(norms[j]-w) > 1e-13 {
			t.Fatalf("device column norm %d: %v want %v", j, norms[j], w)
		}
	}

	// PermuteCols.
	perm := []int{5, 4, 3, 2, 1, 0}
	dev.PermuteCols(da, perm)
	dev.GetMatrix(got, da)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			if got.At(i, j) != want.At(i, perm[j]) {
				t.Fatal("device PermuteCols wrong")
			}
		}
	}

	// Sub-matrix transfers.
	sub := mat.New(2, 3)
	dev.GetSub(sub, da, 1, 2)
	if sub.At(0, 0) != got.At(1, 2) {
		t.Fatal("GetSub wrong")
	}
	sub.Set(0, 0, 42)
	dev.SetSub(da, 1, 2, sub)
	dev.GetMatrix(got, da)
	if got.At(1, 2) != 42 {
		t.Fatal("SetSub wrong")
	}
}

func TestMatrixSubSharesStorage(t *testing.T) {
	dev := NewDevice(TeslaC2050())
	da := dev.Malloc(4, 4)
	sub := da.Sub(1, 1, 2, 2)
	if sub.Rows() != 2 || sub.Cols() != 2 {
		t.Fatal("Sub dims wrong")
	}
	host := mat.New(2, 2)
	host.Set(0, 0, 7)
	dev.SetMatrix(sub, host)
	full := mat.New(4, 4)
	dev.GetMatrix(full, da)
	if full.At(1, 1) != 7 {
		t.Fatal("Sub does not alias parent")
	}
}

package schema

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		in           string
		major, minor int
		ok           bool
	}{
		{"1.0", 1, 0, true},
		{"1.7", 1, 7, true},
		{"2", 2, 0, true},
		{"0.1", 0, 1, true},
		{"", 0, 0, false},
		{"one.two", 0, 0, false},
		{"1.", 0, 0, false},
		{"-1.0", 0, 0, false},
		{"1.-2", 0, 0, false},
		{"1.0.0", 0, 0, false},
	}
	for _, c := range cases {
		ma, mi, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("Parse(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && (ma != c.major || mi != c.minor) {
			t.Fatalf("Parse(%q) = %d.%d, want %d.%d", c.in, ma, mi, c.major, c.minor)
		}
	}
}

func TestCheck(t *testing.T) {
	cases := []struct {
		got, current string
		ok           bool
	}{
		{"1.0", "1.0", true},
		{"1.3", "1.0", true}, // newer minor: additive, still readable
		{"1.0", "1.5", true}, // older minor
		{"", "1.0", true},    // pre-versioning document
		{"2.0", "1.0", false},
		{"0.9", "1.0", false},
		{"junk", "1.0", false},
		{"1.0", "junk", false},
	}
	for _, c := range cases {
		err := Check(c.got, c.current)
		if c.ok != (err == nil) {
			t.Fatalf("Check(%q, %q) = %v, want ok=%v", c.got, c.current, err, c.ok)
		}
	}
}

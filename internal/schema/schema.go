// Package schema implements the "major.minor" versioning contract shared by
// every exported JSON document of the repository (the run metrics document,
// the benchmark Record lines, the canonical Config wire format, and the
// service job documents). The rule is the usual one: a reader accepts any
// document whose major version matches its own — minor bumps are additive
// and must not break decoding — and rejects everything else, so an
// incompatible producer fails loudly at the boundary instead of silently
// dropping fields deep inside an analysis.
package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse splits a "major.minor" version string. A bare "major" is accepted
// with minor 0.
func Parse(v string) (major, minor int, err error) {
	head, tail, hasMinor := strings.Cut(v, ".")
	major, err = strconv.Atoi(head)
	if err != nil || major < 0 {
		return 0, 0, fmt.Errorf("schema: malformed version %q", v)
	}
	if hasMinor {
		minor, err = strconv.Atoi(tail)
		if err != nil || minor < 0 {
			return 0, 0, fmt.Errorf("schema: malformed version %q", v)
		}
	}
	return major, minor, nil
}

// Check validates a document's version string against the reader's current
// one. An empty got is accepted: it marks a document written before the
// field existed (or a hand-written request) and is read as the current
// version. A malformed version or a major mismatch is an error; minor skew
// within one major is compatible in both directions.
func Check(got, current string) error {
	if got == "" {
		return nil
	}
	gm, _, err := Parse(got)
	if err != nil {
		return err
	}
	cm, _, err := Parse(current)
	if err != nil {
		return fmt.Errorf("schema: reader's own version is malformed: %v", err)
	}
	if gm != cm {
		return fmt.Errorf("schema: document version %s is incompatible with this reader (supports major %d)", got, cm)
	}
	return nil
}

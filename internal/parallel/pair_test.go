package parallel

import (
	"sync/atomic"
	"testing"
)

func TestPairRunsBoth(t *testing.T) {
	for iter := 0; iter < 1000; iter++ {
		var a, b int32
		Pair(func() { atomic.AddInt32(&a, 1) }, func() { atomic.AddInt32(&b, 1) })
		if a != 1 || b != 1 {
			t.Fatalf("iter %d: a=%d b=%d", iter, a, b)
		}
	}
}

func TestPairNested(t *testing.T) {
	// Pair inside Pair inside For must not deadlock: a busy pool degrades
	// to serial execution on the caller.
	var total int64
	For(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Pair(
				func() {
					Pair(func() { atomic.AddInt64(&total, 1) }, func() { atomic.AddInt64(&total, 1) })
				},
				func() { atomic.AddInt64(&total, 1) },
			)
		}
	})
	if total != 3*64 {
		t.Fatalf("nested pairs ran %d increments, want %d", total, 3*64)
	}
}

func TestPairParallelWork(t *testing.T) {
	// Both closures hammer disjoint slices; with -race this verifies the
	// handoff synchronization (happens-before on completion).
	const n = 1 << 12
	x := make([]float64, n)
	y := make([]float64, n)
	for iter := 0; iter < 50; iter++ {
		Pair(
			func() {
				for i := range x {
					x[i] += 1
				}
			},
			func() {
				for i := range y {
					y[i] += 2
				}
			},
		)
	}
	if x[0] != 50 || x[n-1] != 50 || y[0] != 100 || y[n-1] != 100 {
		t.Fatalf("pair work lost updates: x=%v y=%v", x[0], y[0])
	}
}

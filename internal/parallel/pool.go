// Persistent worker pool.
//
// The seed implementation spawned fresh goroutines on every For/ForDynamic
// call. That is cheap by OS-thread standards but still costs a stack
// allocation, scheduler round trips, and a sync.WaitGroup wakeup per call —
// and the dense kernels call For once per cache block, thousands of times
// per DQMC sweep. The pool below keeps long-lived workers parked on an
// unbuffered channel; a loop submits one task descriptor and the workers
// and the submitting goroutine claim chunks from it with an atomic cursor
// (dynamic scheduling, so irregular bodies balance automatically).
//
// Two properties are load-bearing:
//
//  1. The work channel is unbuffered and submission uses a non-blocking
//     send, so a task is handed over only to a worker that is parked on
//     the receive at that instant. Work can never queue behind a busy
//     worker, which makes nested parallel calls (Gemm inside a For body)
//     deadlock-free: when every worker is busy, the nested call's submits
//     fail and the calling goroutine simply runs all chunks itself.
//  2. Task descriptors are pooled and the claim cursor is atomic, so a
//     steady-state For call performs no heap allocation and spawns no
//     goroutine — the workers outlive the calls.
package parallel

import (
	"sync"
	"sync/atomic"
)

// task is what the persistent workers execute: run performs the work (or a
// share of it), finish signals the submitter. Implemented by loopTask
// (chunk-claiming loops) and pairTask (two-closure forks).
type task interface {
	run()
	finish()
}

// loopTask describes one parallel loop in flight. The submitting goroutine
// and any helping workers share it by pointer and claim [lo, hi) chunks via
// atomic adds on next.
type loopTask struct {
	body  func(lo, hi int) // chunked body (For); nil when each is set
	each  func(i int)      // per-index body (ForDynamic)
	n     int
	chunk int
	next  int64
	wg    sync.WaitGroup
}

func (t *loopTask) finish() { t.wg.Done() }

var taskPool = sync.Pool{New: func() interface{} { return new(loopTask) }}

// workCh hands tasks to the persistent workers. Unbuffered on purpose;
// see the package comment above.
var workCh = make(chan task)

// spawned counts the persistent workers started so far. Workers are started
// lazily on first parallel use and never exit; GOMAXPROCS caps how many are
// enlisted per call, not how many exist.
var spawned int64

func ensureWorkers(want int) {
	for {
		have := atomic.LoadInt64(&spawned)
		if int(have) >= want {
			return
		}
		if atomic.CompareAndSwapInt64(&spawned, have, have+1) {
			go worker()
		}
	}
}

func worker() {
	for t := range workCh {
		t.run()
		t.finish()
	}
}

// run claims and executes chunks until the task is drained. It is called by
// the submitting goroutine and by every worker that picked the task up.
func (t *loopTask) run() {
	for {
		lo := int(atomic.AddInt64(&t.next, int64(t.chunk))) - t.chunk
		if lo >= t.n {
			return
		}
		hi := lo + t.chunk
		if hi > t.n {
			hi = t.n
		}
		if t.each != nil {
			for i := lo; i < hi; i++ {
				t.each(i)
			}
		} else {
			t.body(lo, hi)
		}
	}
}

// runShared enlists up to w-1 idle workers for t, participates itself, and
// waits for everyone to finish. Failed submits (no idle worker) are not
// retried: the caller's own run loop will pick up the slack.
func runShared(w int, t *loopTask) {
	ensureWorkers(w - 1)
	for i := 0; i < w-1; i++ {
		t.wg.Add(1)
		select {
		case workCh <- t:
		default:
			t.wg.Done()
			i = w // no worker is idle; stop offering
		}
	}
	t.run()
	t.wg.Wait()
}

// release clears the closure references (so the pool does not pin caller
// state between uses) and returns the descriptor to the pool.
func (t *loopTask) release() {
	t.body, t.each = nil, nil
	taskPool.Put(t)
}

// pairTask carries the second closure of a Pair fork to a worker.
type pairTask struct {
	b  func()
	wg sync.WaitGroup
}

func (t *pairTask) run()    { t.b() }
func (t *pairTask) finish() { t.wg.Done() }

var pairPool = sync.Pool{New: func() interface{} { return new(pairTask) }}

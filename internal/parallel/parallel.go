// Package parallel provides shared-memory work distribution primitives used
// by the dense linear algebra kernels and the DQMC driver.
//
// The paper targets a two-socket six-core (12-way) shared memory node and
// parallelizes with OpenMP; here a pool of persistent goroutines plays the
// role of the OpenMP thread team (see pool.go). All helpers degrade
// gracefully to serial execution when GOMAXPROCS is 1 or when the workload
// is below the grain size, so small DQMC matrices do not pay scheduling
// overhead, and nested calls (a parallel Gemm inside a parallel loop body)
// are safe: inner loops that find no idle worker run serially on the caller.
package parallel

import (
	"runtime"
	"sync"
)

// maxWorkers reports the number of workers to use for a loop of n iterations
// with the given minimum grain per worker.
func maxWorkers(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	w := runtime.GOMAXPROCS(0)
	if byGrain := n / grain; byGrain < w {
		w = byGrain
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunksPerWorker oversubscribes the chunk count so dynamic claiming can
// rebalance when chunk costs are uneven, without making chunks so small
// that the atomic cursor becomes contended.
const chunksPerWorker = 4

// For executes body(lo, hi) over a partition of [0, n) using up to
// GOMAXPROCS workers from the persistent pool. Each chunk holds at least
// grain iterations; if the loop is too small for more than one chunk the
// body runs on the calling goroutine with no synchronization cost. A body
// may be invoked several times on the same worker with different ranges.
//
//qmc:hot
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := maxWorkers(n, grain)
	if w == 1 {
		body(0, n)
		return
	}
	chunk := (n + w*chunksPerWorker - 1) / (w * chunksPerWorker)
	if chunk < grain {
		chunk = grain
	}
	t := taskPool.Get().(*loopTask)
	t.body, t.each, t.n, t.chunk, t.next = body, nil, n, chunk, 0
	runShared(w, t)
	t.release()
}

// ForDynamic executes body(i) for i in [0, n) with dynamic scheduling:
// workers atomically claim blocks of the given grain. Use it when
// per-iteration cost is irregular, e.g. pivoted panel work.
func ForDynamic(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := maxWorkers(n, grain)
	if w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	t := taskPool.Get().(*loopTask)
	t.body, t.each, t.n, t.chunk, t.next = nil, body, n, grain, 0
	runShared(w, t)
	t.release()
}

// Pair runs a and b concurrently when an idle pool worker is available and
// serially (a then b) otherwise, returning when both are done. It is the
// fork primitive of the spin-parallel sweep: the up and down spin sectors
// of the DQMC update are independent between Metropolis decisions, so their
// heavy phases (wrapping, delayed-update flushes, cluster rebuilds,
// stratified refreshes) fork here. Nested parallelism is safe for the same
// reason it is in For: a busy pool degrades to serial execution on the
// caller, and any parallel kernels inside a or b enlist whatever workers
// remain idle. A steady-state call performs no allocation.
//
//qmc:hot
func Pair(a, b func()) {
	if runtime.GOMAXPROCS(0) == 1 {
		a()
		b()
		return
	}
	ensureWorkers(1)
	t := pairPool.Get().(*pairTask)
	t.b = b
	t.wg.Add(1)
	select {
	case workCh <- t:
		a()
		t.wg.Wait()
	default:
		t.wg.Done()
		a()
		b()
	}
	t.b = nil
	pairPool.Put(t)
}

// ReduceSum computes the sum of f(i) for i in [0, n) in parallel. The
// addition order depends on the chunking, so results can differ from the
// serial sum by floating-point roundoff.
func ReduceSum(n, grain int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if maxWorkers(n, grain) == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	var (
		mu    sync.Mutex
		total float64
	)
	For(n, grain, func(lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		mu.Lock()
		total += s
		mu.Unlock()
	})
	return total
}

// Package parallel provides shared-memory work distribution primitives used
// by the dense linear algebra kernels and the DQMC driver.
//
// The paper targets a two-socket six-core (12-way) shared memory node and
// parallelizes with OpenMP; here goroutines play the role of OpenMP threads.
// All helpers degrade gracefully to serial execution when GOMAXPROCS is 1 or
// when the workload is below the grain size, so small DQMC matrices do not
// pay scheduling overhead.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers reports the number of workers to use for a loop of n iterations
// with the given minimum grain per worker.
func maxWorkers(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	w := runtime.GOMAXPROCS(0)
	if byGrain := n / grain; byGrain < w {
		w = byGrain
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For executes body(lo, hi) over a partition of [0, n) using up to
// GOMAXPROCS goroutines. Each chunk holds at least grain iterations; if the
// loop is too small for more than one chunk the body runs on the calling
// goroutine with no synchronization cost.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := maxWorkers(n, grain)
	if w == 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic executes body(i) for i in [0, n) with dynamic (work-stealing
// style) scheduling: workers atomically claim blocks of the given grain.
// Use it when per-iteration cost is irregular, e.g. pivoted panel work.
func ForDynamic(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := maxWorkers(n, grain)
	if w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ReduceSum computes the sum of f(i) for i in [0, n) in parallel.
func ReduceSum(n, grain int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := maxWorkers(n, grain)
	if w == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	chunk := (n + w - 1) / w
	partial := make([]float64, 0, w)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			mu.Lock()
			partial = append(partial, s)
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

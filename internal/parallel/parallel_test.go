package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		var hits = make([]int32, n)
		For(n, 3, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	n := 257
	var hits = make([]int32, n)
	ForDynamic(n, 4, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestReduceSum(t *testing.T) {
	got := ReduceSum(1000, 10, func(i int) float64 { return float64(i) })
	if got != 499500 {
		t.Fatalf("ReduceSum = %v", got)
	}
	if ReduceSum(0, 1, func(int) float64 { return 1 }) != 0 {
		t.Fatal("empty ReduceSum should be 0")
	}
}

func TestQuickReduceMatchesSerial(t *testing.T) {
	f := func(n uint8) bool {
		m := int(n)
		want := 0.0
		for i := 0; i < m; i++ {
			want += float64(i * i)
		}
		got := ReduceSum(m, 2, func(i int) float64 { return float64(i * i) })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

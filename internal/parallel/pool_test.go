package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// coverageCheck runs For and ForDynamic over n indices and verifies every
// index is visited exactly once.
func coverageCheck(t *testing.T, n int) {
	t.Helper()
	hits := make([]int32, n)
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("For: index %d visited %d times", i, h)
		}
	}
	dyn := make([]int32, n)
	ForDynamic(n, 3, func(i int) {
		atomic.AddInt32(&dyn[i], 1)
	})
	for i, h := range dyn {
		if h != 1 {
			t.Fatalf("ForDynamic: index %d visited %d times", i, h)
		}
	}
}

// TestForAcrossGOMAXPROCS runs the coverage check with the worker counts the
// acceptance criteria call out: serial, two-way, and all-core.
func TestForAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		coverageCheck(t, 10_000)
	}
}

// TestNestedForNoDeadlock exercises the load-bearing pool property: an inner
// parallel loop issued from inside a worker's loop body must complete even
// when every worker is already busy (the inner submit fails and the caller
// runs the chunks itself). A regression here hangs, so the test fails on a
// watchdog timeout instead of stalling the suite.
func TestNestedForNoDeadlock(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	done := make(chan int64, 1)
	go func() {
		var total int64
		For(64, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var inner int64
				For(256, 8, func(jlo, jhi int) {
					var s int64
					for j := jlo; j < jhi; j++ {
						s += int64(j)
					}
					atomic.AddInt64(&inner, s)
				})
				atomic.AddInt64(&total, inner)
			}
		})
		done <- total
	}()

	want := int64(64) * (255 * 256 / 2)
	select {
	case got := <-done:
		if got != want {
			t.Fatalf("nested For sum = %d, want %d", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
}

// TestNoGoroutineGrowthAfterWarmup verifies that steady-state For calls are
// served by the persistent workers: after a warm-up burst the goroutine
// count must not grow with further calls (the seed implementation spawned
// per call, which this pins against).
func TestNoGoroutineGrowthAfterWarmup(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	work := func() {
		For(1024, 1, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		})
	}
	for i := 0; i < 50; i++ {
		work()
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 500; i++ {
		work()
	}
	// Workers are persistent, so the count must be flat; allow a small
	// slack for unrelated runtime goroutines coming and going.
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Fatalf("goroutine count grew after warm-up: %d -> %d", base, got)
	}
}

// TestReduceSumAcrossGOMAXPROCS pins the reduction against the serial sum at
// each worker count.
func TestReduceSumAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	n := 5000
	var want float64
	for i := 0; i < n; i++ {
		want += float64(i) * 0.5
	}
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		got := ReduceSum(n, 16, func(i int) float64 { return float64(i) * 0.5 })
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("GOMAXPROCS=%d: ReduceSum = %v, want %v", p, got, want)
		}
	}
}

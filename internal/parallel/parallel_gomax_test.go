package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withProcs runs f with GOMAXPROCS temporarily raised so the concurrent
// code paths execute even on single-core CI machines.
func withProcs(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestForParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 1000
		hits := make([]int32, n)
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d hit %d times", i, h)
			}
		}
	})
}

func TestForDynamicParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 513
		hits := make([]int32, n)
		ForDynamic(n, 2, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d hit %d times", i, h)
			}
		}
	})
}

func TestReduceSumParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		got := ReduceSum(10000, 1, func(i int) float64 { return float64(i) })
		if got != 49995000 {
			t.Fatalf("ReduceSum = %v", got)
		}
	})
}

func TestForGrainLimitsWorkers(t *testing.T) {
	withProcs(t, 8, func() {
		// Grain so large only one chunk fits: body must run exactly once
		// over the full range (serial fallback).
		calls := 0
		For(10, 100, func(lo, hi int) {
			calls++
			if lo != 0 || hi != 10 {
				t.Fatalf("unexpected chunk [%d,%d)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("expected single chunk, got %d", calls)
		}
	})
}

func TestZeroAndNegativeN(t *testing.T) {
	For(0, 1, func(lo, hi int) { t.Fatal("must not run") })
	For(-5, 1, func(lo, hi int) { t.Fatal("must not run") })
	ForDynamic(0, 1, func(int) { t.Fatal("must not run") })
	if ReduceSum(-1, 1, func(int) float64 { return 1 }) != 0 {
		t.Fatal("negative n should reduce to 0")
	}
}

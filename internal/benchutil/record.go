package benchutil

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"questgo/internal/schema"
)

// RecordSchemaVersion is the wire version of the benchmark record lines.
// Major bumps rename/retype/remove fields; minor bumps only add.
const RecordSchemaVersion = "1.0"

// Record is the unified machine-readable bench result shared by every
// figure-regeneration harness (cmd/kernels, cmd/sweep, cmd/gpubench,
// cmd/dqmcload). One record is one measured point; harnesses append them as
// JSON lines so results from different commands and commits diff with the
// same tooling. Field names are a compatibility surface; DecodeRecord and
// ReadRecords are the read path that enforces it.
type Record struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	// Bench is the harness name ("kernels", "sweep", "gpubench"); Name the
	// measured series/kernel within it ("gemm", "wrap", "cluster", ...).
	Bench string `json:"bench"`
	Name  string `json:"name"`
	// N is the primary problem size (matrix dimension or site count);
	// Params carries any further size/shape parameters by name (k, L, nd).
	N      int            `json:"n,omitempty"`
	Params map[string]int `json:"params,omitempty"`
	// FloatParams carries named real-valued results that ride alongside the
	// primary Ms/GFlops measurement (companion rates, speedup ratios) —
	// everything a series needs so no side-channel schema is required.
	FloatParams map[string]float64 `json:"fparams,omitempty"`
	// Ms is the measured milliseconds per operation; GFlops the derived
	// throughput when the harness knows the flop count.
	Ms     float64 `json:"ms"`
	GFlops float64 `json:"gflops,omitempty"`
	// GitRev pins the measurement to a commit; UnixTime to a moment.
	GitRev   string `json:"git_rev,omitempty"`
	UnixTime int64  `json:"unix_time"`
}

// NewRecord builds a record for one measured point, stamping the commit and
// time. secs is seconds per operation; flops the nominal flop count (0 when
// throughput is not meaningful for the series).
func NewRecord(bench, name string, n int, secs, flops float64) Record {
	return Record{
		SchemaVersion: RecordSchemaVersion,
		Bench:         bench,
		Name:          name,
		N:             n,
		Ms:            secs * 1e3,
		GFlops:        GFlops(flops, secs),
		GitRev:        GitRev(),
		UnixTime:      time.Now().Unix(),
	}
}

// DecodeRecord parses one JSON record line, rejecting incompatible schema
// majors (lines without a schema_version predate versioning and are read as
// current).
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return Record{}, err
	}
	if err := schema.Check(r.SchemaVersion, RecordSchemaVersion); err != nil {
		return Record{}, fmt.Errorf("benchutil: record: %w", err)
	}
	return r, nil
}

// ReadRecords loads a BENCH_*.json JSON-lines series, skipping blank lines
// and failing on the first malformed or schema-incompatible record.
func ReadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		r, err := DecodeRecord([]byte(text))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WithParam returns a copy of the record with one named size parameter set.
func (r Record) WithParam(key string, v int) Record {
	p := make(map[string]int, len(r.Params)+1)
	for k, old := range r.Params {
		p[k] = old
	}
	p[key] = v
	r.Params = p
	return r
}

// WithFloatParam returns a copy of the record with one named real-valued
// parameter set.
func (r Record) WithFloatParam(key string, v float64) Record {
	p := make(map[string]float64, len(r.FloatParams)+1)
	for k, old := range r.FloatParams {
		p[k] = old
	}
	p[key] = v
	r.FloatParams = p
	return r
}

// Append writes the record as one JSON line to path.
func (r Record) Append(path string) error { return AppendJSONLine(path, r) }

var (
	gitRevOnce sync.Once
	gitRev     string
)

// GitRev returns the short hash of the repository HEAD, or "" when not in a
// git checkout. Cached after the first call.
func GitRev() string {
	gitRevOnce.Do(func() {
		out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		if err != nil {
			return
		}
		gitRev = strings.TrimSpace(string(out))
	})
	return gitRev
}

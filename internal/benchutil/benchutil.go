// Package benchutil contains the shared machinery of the figure-regeneration
// harness: flop counting for the kernels and the Green's function
// evaluation, repeat-timing helpers, and plain-text table output matching
// the rows/series of the paper's figures.
package benchutil

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// TimeIt runs fn at least minReps times and at least minDur total, and
// returns the average seconds per call. It is the measurement loop used by
// all the figure harnesses (the paper reports averages over a full
// simulation; we average over repeated calls).
func TimeIt(minReps int, minDur time.Duration, fn func()) float64 {
	if minReps < 1 {
		minReps = 1
	}
	var (
		reps  int
		total time.Duration
	)
	for reps < minReps || total < minDur {
		start := time.Now()
		fn()
		total += time.Since(start)
		reps++
		if reps > 1_000_000 {
			break
		}
	}
	return total.Seconds() / float64(reps)
}

// GFlops converts a flop count and seconds-per-call into GFlop/s.
func GFlops(flops, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return flops / secs / 1e9
}

// GemmFlops is the nominal 2n^3 cost of a square DGEMM.
func GemmFlops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

// QRFlops is the nominal (4/3)n^3 cost of a square Householder QR.
func QRFlops(n int) float64 { return 4.0 / 3 * float64(n) * float64(n) * float64(n) }

// FormQFlops is the nominal (4/3)n^3 cost of forming the full Q.
func FormQFlops(n int) float64 { return 4.0 / 3 * float64(n) * float64(n) * float64(n) }

// GreensFlops estimates the arithmetic of one stratified Green's function
// evaluation over nc clusters of dimension n: per cluster one GEMM
// (C = B*Q), one QR, one Q formation, and one triangular-matrix GEMM for
// the T update, plus the final LU solve with n right-hand sides.
func GreensFlops(n, nc int) float64 {
	per := GemmFlops(n) + QRFlops(n) + FormQFlops(n) + GemmFlops(n)
	lu := 2.0 / 3 * float64(n) * float64(n) * float64(n) // LUFactor
	solve := 2 * float64(n) * float64(n) * float64(n)    // two triangular solves, n RHS
	return float64(nc)*per + lu + solve
}

// ClusterFlops is the arithmetic of building one cluster of k matrices:
// k-1 GEMMs plus k row scalings.
func ClusterFlops(n, k int) float64 {
	return float64(k-1)*GemmFlops(n) + float64(k)*float64(n)*float64(n)
}

// WrapFlops is the arithmetic of one wrapping step: two GEMMs plus the
// row/column scaling.
func WrapFlops(n int) float64 {
	return 2*GemmFlops(n) + 2*float64(n)*float64(n)
}

// Table accumulates aligned columns for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// AppendJSONLine marshals v and appends it as one line to path (JSON-lines
// format), creating the file if needed. The bench harnesses use it to
// accumulate machine-readable results (BENCH_*.json) across runs so
// regressions are diffable.
func AppendJSONLine(path string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(data, '\n'))
	return err
}

// ParseSizes parses a comma-separated list of integers ("256,400,576").
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("benchutil: bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchutil: empty size list")
	}
	return out, nil
}

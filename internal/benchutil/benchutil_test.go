package benchutil

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimeItMinReps(t *testing.T) {
	calls := 0
	sec := TimeIt(5, 0, func() { calls++ })
	if calls < 5 {
		t.Fatalf("expected >= 5 calls, got %d", calls)
	}
	if sec < 0 {
		t.Fatalf("negative time %v", sec)
	}
}

func TestTimeItMinDuration(t *testing.T) {
	calls := 0
	TimeIt(1, 20*time.Millisecond, func() {
		calls++
		time.Sleep(2 * time.Millisecond)
	})
	if calls < 5 {
		t.Fatalf("duration floor not honored: %d calls", calls)
	}
}

func TestGFlops(t *testing.T) {
	if GFlops(2e9, 1) != 2 {
		t.Fatal("GFlops wrong")
	}
	if GFlops(1, 0) != 0 {
		t.Fatal("zero time should give 0")
	}
}

func TestFlopFormulas(t *testing.T) {
	if GemmFlops(10) != 2000 {
		t.Fatalf("GemmFlops = %v", GemmFlops(10))
	}
	if math.Abs(QRFlops(10)-4000.0/3) > 1e-9 {
		t.Fatalf("QRFlops = %v", QRFlops(10))
	}
	// Greens flops dominated by nc * per-cluster work.
	if GreensFlops(10, 4) <= 4*GemmFlops(10) {
		t.Fatal("GreensFlops implausibly small")
	}
	if ClusterFlops(10, 1) != 100 { // zero GEMMs, one scaling
		t.Fatalf("ClusterFlops(k=1) = %v", ClusterFlops(10, 1))
	}
	if WrapFlops(10) != 2*GemmFlops(10)+200 {
		t.Fatalf("WrapFlops = %v", WrapFlops(10))
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("N", "rate")
	tbl.AddRow(128, "1.5")
	tbl.AddRow(1024, 3.25)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "N") || !strings.Contains(lines[0], "rate") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[3], "1024") || !strings.Contains(lines[3], "3.25") {
		t.Fatalf("row wrong: %q", lines[3])
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes(" 128, 256 ,1024")
	if err != nil || len(got) != 3 || got[2] != 1024 {
		t.Fatalf("ParseSizes = %v, %v", got, err)
	}
	if _, err := ParseSizes("12,abc"); err == nil {
		t.Fatal("bad token should fail")
	}
	if _, err := ParseSizes(""); err == nil {
		t.Fatal("empty list should fail")
	}
	if _, err := ParseSizes("0"); err == nil {
		t.Fatal("non-positive size should fail")
	}
}

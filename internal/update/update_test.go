package update

import (
	"math"
	"testing"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/rng"
)

func setup(t *testing.T, nx, ny int, u, beta float64, l int, seed uint64) (*hubbard.Propagator, *hubbard.Field) {
	t.Helper()
	lat := lattice.NewSquare(nx, ny, 1.0)
	m, err := hubbard.NewModel(lat, u, 0, beta, l)
	if err != nil {
		t.Fatal(err)
	}
	p := hubbard.NewPropagator(m)
	f := hubbard.NewRandomField(l, m.N(), rng.New(seed))
	return p, f
}

// detM computes log|det(I + B_L...B_1)| and its sign directly.
func detM(p *hubbard.Propagator, f *hubbard.Field, sigma hubbard.Spin) (float64, float64) {
	n := p.Model.N()
	bs := make([]*mat.Dense, p.Model.L)
	for i := range bs {
		bs[i] = p.BMatrix(sigma, f, i)
	}
	prod := bs[0].Clone()
	tmp := mat.New(n, n)
	for i := 1; i < len(bs); i++ {
		mulInto(tmp, bs[i], prod)
		prod, tmp = tmp, prod
	}
	for i := 0; i < n; i++ {
		prod.Set(i, i, prod.At(i, i)+1)
	}
	lu, err := lapack.LUFactor(prod)
	if err != nil {
		return math.Inf(-1), 0
	}
	return lu.LogDet()
}

func mulInto(dst, a, b *mat.Dense) {
	for j := 0; j < dst.Cols; j++ {
		col := dst.Col(j)
		for i := range col {
			col[i] = 0
		}
		for k := 0; k < a.Cols; k++ {
			f := b.At(k, j)
			ac := a.Col(k)
			for i := range col {
				col[i] += f * ac[i]
			}
		}
	}
}

// TestMetropolisRatioMatchesDeterminants verifies the rank-1 ratio formula
// d = 1 + alpha*(1 - G_ii) against brute-force determinants for flips at
// the first slice.
func TestMetropolisRatioMatchesDeterminants(t *testing.T) {
	p, f := setup(t, 2, 2, 4, 1, 4, 5)
	// G for updating slice 0 is (I + B_0 B_{L-1} ... B_1)^{-1}: wrap G_base.
	bs := make([]*mat.Dense, p.Model.L)
	for i := range bs {
		bs[i] = p.BMatrix(hubbard.Up, f, i)
	}
	g := greens.Green(bs)
	w := greens.NewWrapper(p)
	w.Wrap(g, f, hubbard.Up, 0)

	logBefore, signBefore := detM(p, f, hubbard.Up)
	for i := 0; i < p.Model.N(); i++ {
		h := f.H[0][i]
		alpha := p.Alpha(hubbard.Up, h)
		d := 1 + alpha*(1-g.At(i, i))

		f.Flip(0, i)
		logAfter, signAfter := detM(p, f, hubbard.Up)
		f.Flip(0, i) // restore

		want := math.Exp(logAfter-logBefore) * signAfter * signBefore
		if math.Abs(d-want) > 1e-8*math.Abs(want) {
			t.Fatalf("site %d: ratio formula %g, determinant ratio %g", i, d, want)
		}
	}
}

// TestSweepKeepsGreenConsistent runs full sweeps and verifies that the
// incrementally maintained Green's function matches a from-scratch
// stratified evaluation of the final field.
func TestSweepKeepsGreenConsistent(t *testing.T) {
	p, f := setup(t, 3, 3, 4, 2, 8, 7)
	sw := NewSweeper(p, f, rng.New(99), Options{ClusterK: 4, Delay: 3, PrePivot: true})
	for s := 0; s < 3; s++ {
		sw.Sweep()
	}
	// After Sweep, G corresponds to the full chain of the *current* field.
	bs := make([]*mat.Dense, p.Model.L)
	for i := range bs {
		bs[i] = p.BMatrix(hubbard.Up, f, i)
	}
	fresh := greens.Green(bs)
	if d := mat.RelDiff(sw.GreenUp(), fresh); d > 1e-8 {
		t.Fatalf("spin-up G drifted from fresh evaluation: %g", d)
	}
	for i := range bs {
		bs[i] = p.BMatrix(hubbard.Down, f, i)
	}
	fresh = greens.Green(bs)
	if d := mat.RelDiff(sw.GreenDn(), fresh); d > 1e-8 {
		t.Fatalf("spin-down G drifted from fresh evaluation: %g", d)
	}
}

// TestDelayedEqualsPlain checks that the delayed update (nd > 1) and the
// effectively-undelayed case (nd = 1) produce identical trajectories: the
// same accept/reject decisions and the same final field.
func TestDelayedEqualsPlain(t *testing.T) {
	p, f1 := setup(t, 3, 3, 4, 2, 8, 11)
	f2 := f1.Clone()
	sw1 := NewSweeper(p, f1, rng.New(42), Options{ClusterK: 4, Delay: 1, PrePivot: true})
	sw2 := NewSweeper(p, f2, rng.New(42), Options{ClusterK: 4, Delay: 16, PrePivot: true})
	for s := 0; s < 2; s++ {
		sw1.Sweep()
		sw2.Sweep()
	}
	if sw1.AcceptanceRate() != sw2.AcceptanceRate() {
		t.Fatalf("acceptance differs: %v vs %v", sw1.AcceptanceRate(), sw2.AcceptanceRate())
	}
	for l := 0; l < f1.L; l++ {
		for i := 0; i < f1.N; i++ {
			if f1.H[l][i] != f2.H[l][i] {
				t.Fatalf("fields diverged at (%d,%d)", l, i)
			}
		}
	}
	if d := mat.RelDiff(sw1.GreenUp(), sw2.GreenUp()); d > 1e-8 {
		t.Fatalf("delayed vs plain G differ: %g", d)
	}
}

// TestQRPandPrePivotSameTrajectory: with the same RNG stream, Algorithm 2
// and Algorithm 3 refreshes must give the same Monte Carlo decisions (their
// Green's functions agree to ~1e-12, far below any acceptance threshold
// sensitivity for generic uniforms).
func TestQRPandPrePivotSameTrajectory(t *testing.T) {
	p, f1 := setup(t, 3, 3, 6, 3, 12, 13)
	f2 := f1.Clone()
	sw1 := NewSweeper(p, f1, rng.New(7), Options{ClusterK: 4, PrePivot: false})
	sw2 := NewSweeper(p, f2, rng.New(7), Options{ClusterK: 4, PrePivot: true})
	for s := 0; s < 2; s++ {
		sw1.Sweep()
		sw2.Sweep()
	}
	for l := 0; l < f1.L; l++ {
		for i := 0; i < f1.N; i++ {
			if f1.H[l][i] != f2.H[l][i] {
				t.Fatalf("fields diverged at (%d,%d)", l, i)
			}
		}
	}
}

func TestSignStaysPositiveAtHalfFilling(t *testing.T) {
	// Particle-hole symmetry at mu = 0 guarantees a positive weight.
	p, f := setup(t, 2, 2, 6, 2, 8, 17)
	sw := NewSweeper(p, f, rng.New(3), Options{ClusterK: 4})
	for s := 0; s < 5; s++ {
		sw.Sweep()
		if sw.Sign() != 1 {
			t.Fatalf("sign became %v at half filling", sw.Sign())
		}
	}
}

func TestAcceptanceRateReasonable(t *testing.T) {
	p, f := setup(t, 3, 3, 4, 2, 8, 19)
	sw := NewSweeper(p, f, rng.New(21), Options{ClusterK: 4})
	for s := 0; s < 5; s++ {
		sw.Sweep()
	}
	ar := sw.AcceptanceRate()
	if ar <= 0.01 || ar >= 0.99 {
		t.Fatalf("acceptance rate %v implausible", ar)
	}
}

func TestWrapDriftSmall(t *testing.T) {
	p, f := setup(t, 3, 3, 4, 2, 20, 23)
	col := obs.New()
	sw := NewSweeper(p, f, rng.New(5), Options{ClusterK: 10, Obs: col, StabilityEvery: 2})
	col.Reset()
	for s := 0; s < 3; s++ {
		sw.Sweep()
	}
	if sw.MaxWrapDrift() > 1e-6 {
		t.Fatalf("wrapped G drift %g exceeds tolerance (wrapping limit l=10 should hold)", sw.MaxWrapDrift())
	}
	if sw.MaxWrapDrift() == 0 {
		t.Fatal("drift should be nonzero after real sweeps")
	}
	// All sweep phases (wrap/flush/cluster/refresh) must have accumulated
	// time; the measure phase belongs to core, not the sweeper.
	pd := col.PhaseDurations()
	for p := obs.PhaseWrap; p < obs.PhaseMeasure; p++ {
		if pd[p] == 0 {
			t.Fatalf("phase %s never timed", p)
		}
	}
	// The stability telemetry must be populated: drift samples from every
	// refresh, residual samples every StabilityEvery boundaries, condition
	// estimates from the stack evaluations.
	m := col.Metrics()
	if m.Stability.WrapDriftSamples == 0 {
		t.Fatal("no wrap-drift samples recorded")
	}
	if m.Stability.StratResidualSamples == 0 {
		t.Fatal("no stratification-residual samples recorded")
	}
	if m.Stability.MaxStratResidual > 1e-9 {
		t.Fatalf("stack residual %g vs full rebuild too large", m.Stability.MaxStratResidual)
	}
	if m.Stability.UDTCondSamples == 0 {
		t.Fatal("no UDT condition samples recorded")
	}
	if m.Ops.Wraps == 0 || m.Ops.UDTSteps == 0 || m.Ops.Sweeps != 3 {
		t.Fatalf("op counters not populated: %+v", m.Ops)
	}
}

func TestClusterKAdjusts(t *testing.T) {
	p, f := setup(t, 2, 2, 4, 2, 9, 29) // L = 9; requested K=10 must fall to 9 or 3
	sw := NewSweeper(p, f, rng.New(1), Options{ClusterK: 10})
	if 9%sw.ClusterK() != 0 {
		t.Fatalf("ClusterK %d does not divide L=9", sw.ClusterK())
	}
}

// TestSetClusterKMidRun resizes k between sweeps — the autopilot's actuator
// path — and checks (a) the Green's functions stay consistent with a fresh
// full-chain evaluation after further sweeps at the new k, (b) the stacked
// and no-stack sweepers resized identically walk the same trajectory, and
// (c) k is snapped to a divisor of L.
func TestSetClusterKMidRun(t *testing.T) {
	p, f1 := setup(t, 3, 3, 4, 2, 12, 43)
	f2 := f1.Clone()
	sw1 := NewSweeper(p, f1, rng.New(17), Options{ClusterK: 4, PrePivot: true})
	sw2 := NewSweeper(p, f2, rng.New(17), Options{ClusterK: 4, PrePivot: true, NoStack: true})
	for s := 0; s < 2; s++ {
		sw1.Sweep()
		sw2.Sweep()
	}
	for _, k := range []int{2, 6, 3} {
		if got := sw1.SetClusterK(k); got != k {
			t.Fatalf("SetClusterK(%d) = %d on L=12", k, got)
		}
		sw2.SetClusterK(k)
		sw1.Sweep()
		sw2.Sweep()
		if d := mat.RelDiff(sw1.GreenUp(), sw2.GreenUp()); d > 1e-9 {
			t.Fatalf("k=%d: stacked vs no-stack G diverged after resize: %g", k, d)
		}
	}
	for l := 0; l < f1.L; l++ {
		for i := 0; i < f1.N; i++ {
			if f1.H[l][i] != f2.H[l][i] {
				t.Fatalf("fields diverged at (%d,%d) after resizes", l, i)
			}
		}
	}
	// Final consistency against a from-scratch evaluation of the chain.
	bs := make([]*mat.Dense, p.Model.L)
	for i := range bs {
		bs[i] = p.BMatrix(hubbard.Up, f1, i)
	}
	fresh := greens.Green(bs)
	if d := mat.RelDiff(sw1.GreenUp(), fresh); d > 1e-8 {
		t.Fatalf("resized sweeper G drifted from fresh evaluation: %g", d)
	}
	// Snap-to-divisor: 5 does not divide 12, nearest divisor below is 4.
	if got := sw1.SetClusterK(5); got != 4 {
		t.Fatalf("SetClusterK(5) = %d on L=12, want 4", got)
	}
	if sw1.ClusterK() != 4 {
		t.Fatalf("ClusterK() = %d after snap, want 4", sw1.ClusterK())
	}
}

// TestSetStabilityEveryMidRun tightens the residual-check cadence mid-run
// and checks the sample count responds while the trajectory is untouched.
func TestSetStabilityEveryMidRun(t *testing.T) {
	p, f1 := setup(t, 3, 3, 4, 2, 12, 47)
	f2 := f1.Clone()
	col := obs.New()
	sw1 := NewSweeper(p, f1, rng.New(9), Options{ClusterK: 4, Obs: col, StabilityEvery: 3})
	sw2 := NewSweeper(p, f2, rng.New(9), Options{ClusterK: 4})
	col.Reset()
	sw1.Sweep()
	sw2.Sweep()
	before := col.StabilitySnapshot().StratResidualSamples
	if before != 1 {
		t.Fatalf("cadence 3 over 3 boundaries: %d residual samples, want 1", before)
	}
	sw1.SetStabilityEvery(1)
	if sw1.StabilityEvery() != 1 {
		t.Fatalf("StabilityEvery() = %d, want 1", sw1.StabilityEvery())
	}
	sw1.Sweep()
	sw2.Sweep()
	after := col.StabilitySnapshot().StratResidualSamples
	if after != before+3 {
		t.Fatalf("cadence 1 over 3 boundaries added %d samples, want 3", after-before)
	}
	// The cadence is diagnostic-only: the instrumented and bare sweepers
	// must agree bitwise on the field trajectory.
	for l := 0; l < f1.L; l++ {
		for i := 0; i < f1.N; i++ {
			if f1.H[l][i] != f2.H[l][i] {
				t.Fatalf("cadence change perturbed trajectory at (%d,%d)", l, i)
			}
		}
	}
}

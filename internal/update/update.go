// Package update implements the Metropolis sweep of the DQMC algorithm
// (Algorithm 1 of the paper): single HS-field flips accepted with the
// determinant ratio computed from the equal-time Green's function, with the
// rank-1 updates *delayed* into blocked rank-nd updates so the O(N^3) of
// update work per slice runs at GEMM speed instead of GER speed.
//
// Two optimizations sit on top of the paper's Algorithm 1:
//
//   - The per-boundary stratified refresh goes through greens.StratStack,
//     which caches suffix UDT decompositions (built once per sweep) and
//     extends a prefix UDT by one cluster per boundary, so each refresh
//     costs O(1) cluster-UDT steps instead of re-running the whole
//     L/k-cluster chain. Options.NoStack restores the full-rebuild
//     reference path.
//   - The heavy per-spin phases — wrapping, delayed-update flushes,
//     cluster recomputation, stratified refreshes, and the column/row
//     assembly of accepted flips — are independent between the up and down
//     sectors and fork onto the parallel pool (parallel.Pair). Only the
//     per-site Metropolis ratio, which needs both spins' effective
//     diagonal, stays synchronous. Options.SerialSpins restores the serial
//     ordering.
package update

import (
	"questgo/internal/blas"
	"questgo/internal/check"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/obs"
	"questgo/internal/parallel"
	"questgo/internal/rng"
)

// spinState carries the per-spin Green's function and the delayed-update
// buffers: the effective Green's function during a slice is
// G_eff(i,j) = G(i,j) + sum_t U(i,t)*W(j,t) with t < m pending updates.
type spinState struct {
	sigma hubbard.Spin
	g     *mat.Dense
	u, w  *mat.Dense // N x nd accumulators
	m     int        // pending update count
	col   []float64  // scratch: effective column i
	row   []float64  // scratch: effective row i
}

func newSpinState(sigma hubbard.Spin, n, nd int) *spinState {
	return &spinState{
		sigma: sigma,
		g:     mat.New(n, n),
		u:     mat.New(n, nd),
		w:     mat.New(n, nd),
		col:   make([]float64, n),
		row:   make([]float64, n),
	}
}

// effDiag returns G_eff(i,i).
//
//qmc:hot
func (s *spinState) effDiag(i int) float64 {
	gii := s.g.At(i, i)
	for t := 0; t < s.m; t++ {
		gii += s.u.At(i, t) * s.w.At(i, t)
	}
	return gii
}

// effColRow fills s.col with G_eff(:, i) and s.row with G_eff(i, :).
//
//qmc:hot
func (s *spinState) effColRow(i int) {
	n := s.g.Rows
	copy(s.col, s.g.Col(i))
	for r := 0; r < n; r++ {
		s.row[r] = s.g.At(i, r)
	}
	for t := 0; t < s.m; t++ {
		ut := s.u.Col(t)
		wt := s.w.Col(t)
		wi := wt[i]
		ui := ut[i]
		for r := 0; r < n; r++ {
			s.col[r] += ut[r] * wi
			s.row[r] += wt[r] * ui
		}
	}
}

// push appends the accepted flip at site i with amplitude factor = alpha/d.
// With our wrapping convention the updated slice's B_l sits *leftmost* in
// the cyclic product, M' = (I + alpha*e_i*e_i^T*(I-G)) * M, so
//
//	G' = G - (alpha/d) * (G e_i) * (e_i - G^T e_i)^T.
//
// (The paper's Section II-B prints the transposed variant, which belongs to
// the convention where the flipped slice is rightmost; the determinant
// ratio d = 1 + alpha*(1 - G_ii) is identical in both.) effColRow must have
// been called for this i first.
//
//qmc:hot
func (s *spinState) push(i int, factor float64) {
	uc := s.u.Col(s.m)
	wc := s.w.Col(s.m)
	for r := range uc {
		uc[r] = -factor * s.col[r]
		wc[r] = -s.row[r]
	}
	wc[i] += 1
	s.m++
}

// flush applies the pending block update G += U * W^T and resets the count.
//
//qmc:charges OpDelayedFlushes
//qmc:hot
func (s *spinState) flush() {
	if s.m == 0 {
		return
	}
	obs.Add(obs.OpDelayedFlushes, 1)
	uv := s.u.View(0, 0, s.u.Rows, s.m)
	wv := s.w.View(0, 0, s.w.Rows, s.m)
	blas.Gemm(false, true, 1, uv, wv, 1, s.g)
	s.m = 0
}

// accept assembles and queues the rank-1 update for an accepted flip.
//
//qmc:hot
func (s *spinState) accept(i int, factor float64) {
	s.effColRow(i)
	s.push(i, factor)
}

// Options configures a Sweeper.
type Options struct {
	// ClusterK is the matrix clustering size k, which also sets the
	// wrapping count between stratified recomputations (the paper uses
	// k = l = 10). Must divide the slice count L.
	ClusterK int
	// Delay is the delayed-update block size nd (32 by default).
	Delay int
	// PrePivot selects Algorithm 3 (true, the paper's method) or the
	// Algorithm 2 QRP reference (false) for stratified recomputations.
	PrePivot bool
	// NoStack disables the prefix/suffix UDT stack and recomputes every
	// boundary Green's function by full stratification of the cluster
	// chain — the pre-stack reference path, kept for accuracy
	// cross-checks and baseline benchmarks.
	NoStack bool
	// SerialSpins disables the concurrent execution of the up/down spin
	// phases (reference/baseline path; the arithmetic is identical either
	// way).
	SerialSpins bool
	// Obs, when non-nil, receives per-phase timings, operation counts and
	// stability telemetry. A nil collector costs nothing on the hot path.
	Obs *obs.Collector
	// StabilityEvery, when positive and Obs is enabled, compares the
	// stack-refreshed Green's function against a full stratified rebuild
	// every StabilityEvery cluster boundaries and records the relative
	// residual. The check costs one extra whole-chain stratification, so it
	// is sampled rather than continuous.
	StabilityEvery int
}

// Sweeper runs Metropolis sweeps over the HS field, maintaining the
// equal-time Green's functions for both spins with wrapping, delayed
// updates, cluster recycling and periodic stratified recomputation.
type Sweeper struct {
	Prop  *hubbard.Propagator
	Field *hubbard.Field
	Rng   *rng.Rand

	opts     Options
	up, dn   *spinState
	csUp     *greens.ClusterSet
	csDn     *greens.ClusterSet
	stUp     *greens.StratStack
	stDn     *greens.StratStack
	wrapUp   *greens.Wrapper // per-spin wrappers: scratch must not be shared
	wrapDn   *greens.Wrapper // when the spin phases fork onto the pool
	sign     float64
	accepted int64
	proposed int64

	// Pre-bound closures for the spin fork, so the per-site and per-slice
	// hot paths allocate nothing; the operands live in the fields below.
	wrapUpFn, wrapDnFn     func()
	flushUpFn, flushDnFn   func()
	acceptUpFn, acceptDnFn func()
	clusterUpFn, clusterDn func()
	refreshUpFn, refreshDn func()
	advanceUpFn, advanceDn func()
	wrapSlice              int     // slice for wrapXFn
	flipSite               int     // site for acceptXFn
	facUp, facDn           float64 // alpha/d factors for acceptXFn
	cluster                int     // cluster for clusterXFn
	boundary               int     // boundary for refreshXFn (reference path)

	// boundaryHook, when set, runs after every stratified refresh (i.e. at
	// every cluster boundary) with the Green's functions freshly
	// recomputed — the natural place for equal-time measurements, which
	// QUEST takes on multiple slices per sweep to reduce variance.
	boundaryHook func()
	// maxWrapDrift records the largest relative difference between the
	// wrapped Green's function and its stratified recomputation — the
	// numerical-accuracy diagnostic that motivates the wrapping limit.
	maxWrapDrift float64
	// boundaries counts stratified refreshes, pacing the StabilityEvery
	// residual check; checkStrat is set for the boundaries that sample it.
	boundaries int64
	checkStrat bool
}

// NewSweeper prepares a sweeper and computes the initial Green's functions
// by full stratification.
func NewSweeper(p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand, opts Options) *Sweeper {
	if opts.ClusterK < 1 {
		opts.ClusterK = 10
	}
	for p.Model.L%opts.ClusterK != 0 {
		opts.ClusterK--
	}
	if opts.Delay < 1 {
		opts.Delay = 32
	}
	n := p.Model.N()
	if opts.Delay > n {
		opts.Delay = n
	}
	sw := &Sweeper{
		Prop:  p,
		Field: f,
		Rng:   r,
		opts:  opts,
		up:    newSpinState(hubbard.Up, n, opts.Delay),
		dn:    newSpinState(hubbard.Down, n, opts.Delay),
		sign:  1,
	}
	cstart := opts.Obs.Begin()
	sw.csUp = greens.NewClusterSet(p, f, hubbard.Up, opts.ClusterK)
	sw.csDn = greens.NewClusterSet(p, f, hubbard.Down, opts.ClusterK)
	opts.Obs.End(obs.PhaseCluster, cstart)
	sw.wrapUp = greens.NewWrapper(p)
	sw.wrapDn = greens.NewWrapper(p)
	if !opts.NoStack {
		sstart := opts.Obs.Begin()
		sw.stUp = greens.NewStratStack(sw.csUp, opts.PrePivot)
		sw.stDn = greens.NewStratStack(sw.csDn, opts.PrePivot)
		sw.stUp.Obs = opts.Obs
		sw.stDn.Obs = opts.Obs
		opts.Obs.End(obs.PhaseRefresh, sstart)
	}

	sw.wrapUpFn = func() { sw.wrapUp.Wrap(sw.up.g, sw.Field, hubbard.Up, sw.wrapSlice) }
	sw.wrapDnFn = func() { sw.wrapDn.Wrap(sw.dn.g, sw.Field, hubbard.Down, sw.wrapSlice) }
	sw.flushUpFn = func() { sw.up.flush() }
	sw.flushDnFn = func() { sw.dn.flush() }
	sw.acceptUpFn = func() { sw.up.accept(sw.flipSite, sw.facUp) }
	sw.acceptDnFn = func() { sw.dn.accept(sw.flipSite, sw.facDn) }
	sw.clusterUpFn = func() { sw.csUp.Recompute(sw.Field, sw.cluster) }
	sw.clusterDn = func() { sw.csDn.Recompute(sw.Field, sw.cluster) }
	sw.refreshUpFn = func() { sw.refreshSpin(sw.up, sw.csUp, sw.stUp, true) }
	sw.refreshDn = func() { sw.refreshSpin(sw.dn, sw.csDn, sw.stDn, false) }
	if !opts.NoStack {
		sw.advanceUpFn = func() { sw.stUp.Advance() }
		sw.advanceDn = func() { sw.stDn.Advance() }
	}

	sw.refresh()
	return sw
}

// fork runs the two per-spin closures through the pool, or serially when
// the sweeper was configured with SerialSpins.
func (sw *Sweeper) fork(up, dn func()) {
	if sw.opts.SerialSpins {
		up()
		dn()
		return
	}
	parallel.Pair(up, dn)
}

// refreshSpin recomputes one spin's Green's function by stratification at
// the current boundary and records the drift of the wrapped copy (spin-up
// only, matching the original diagnostic).
func (sw *Sweeper) refreshSpin(s *spinState, cs *greens.ClusterSet, st *greens.StratStack, trackDrift bool) {
	n := s.g.Rows
	gNew := mat.GetScratch(n, n)
	if st != nil {
		st.GreenInto(gNew)
		if trackDrift && sw.checkStrat {
			// Sampled stability check: the stack's amortized answer against
			// a from-scratch stratification of the same cluster chain.
			ref := mat.GetScratch(n, n)
			cs.GreenAtInto(ref, sw.boundary, sw.opts.PrePivot)
			sw.opts.Obs.SampleStratResidual(mat.RelDiff(gNew, ref))
			mat.PutScratch(ref)
		}
	} else {
		cs.GreenAtInto(gNew, sw.boundary, sw.opts.PrePivot)
	}
	if trackDrift && sw.proposed > 0 {
		d := mat.RelDiff(s.g, gNew)
		// Loose bound: wrap drift is expected and merely bounded; only a
		// blow-up indicates a propagator or stratification bug.
		check.Drift("update.refreshSpin wrap", d, 0.05)
		if d > sw.maxWrapDrift {
			sw.maxWrapDrift = d
		}
		sw.opts.Obs.SampleWrapDrift(d)
	}
	s.g.CopyFrom(gNew)
	mat.PutScratch(gNew)
}

// refresh recomputes both Green's functions at the current boundary.
func (sw *Sweeper) refresh() {
	start := sw.opts.Obs.Begin()
	sw.boundaries++
	sw.checkStrat = sw.opts.StabilityEvery > 0 && sw.opts.Obs.Enabled() &&
		sw.boundaries%int64(sw.opts.StabilityEvery) == 0
	sw.fork(sw.refreshUpFn, sw.refreshDn)
	sw.checkStrat = false
	sw.opts.Obs.End(obs.PhaseRefresh, start)
}

// SetBoundaryHook registers h to run after every stratified refresh, when
// GreenUp/GreenDn hold freshly recomputed Green's functions. Pass nil to
// disable. Used for per-boundary equal-time measurements.
func (sw *Sweeper) SetBoundaryHook(h func()) { sw.boundaryHook = h }

// Sweep performs one full sweep: every (slice, site) pair is visited once
// and a flip is proposed (Algorithm 1). On return the Green's functions
// correspond to the full chain (cluster boundary 0), ready for equal-time
// measurements.
//
//qmc:charges OpSweeps
//qmc:hot
func (sw *Sweeper) Sweep() {
	obs.Add(obs.OpSweeps, 1)
	model := sw.Prop.Model
	n := model.N()
	k := sw.opts.ClusterK
	for s := 0; s < model.L; s++ {
		// Wrap both spins into slice s: G <- B_s G B_s^{-1}.
		wstart := sw.opts.Obs.Begin()
		sw.wrapSlice = s
		sw.fork(sw.wrapUpFn, sw.wrapDnFn)
		sw.opts.Obs.End(obs.PhaseWrap, wstart)

		ustart := sw.opts.Obs.Begin()
		for i := 0; i < n; i++ {
			sw.proposeFlip(s, i)
		}
		sw.fork(sw.flushUpFn, sw.flushDnFn)
		sw.opts.Obs.End(obs.PhaseFlush, ustart)

		if (s+1)%k == 0 {
			c := s / k
			cstart := sw.opts.Obs.Begin()
			sw.cluster = c
			sw.fork(sw.clusterUpFn, sw.clusterDn)
			sw.opts.Obs.End(obs.PhaseCluster, cstart)
			if sw.stUp != nil {
				// One prefix extension per boundary; GreenInto (inside
				// refresh) combines it with the cached suffix.
				sstart := sw.opts.Obs.Begin()
				sw.fork(sw.advanceUpFn, sw.advanceDn)
				sw.opts.Obs.End(obs.PhaseRefresh, sstart)
			}
			sw.boundary = (c + 1) % sw.csUp.NC
			sw.refresh()
			if sw.boundaryHook != nil {
				sw.boundaryHook()
			}
		}
	}
}

// proposeFlip carries out the Metropolis step for h[s][i].
//
//qmc:hot
func (sw *Sweeper) proposeFlip(s, i int) {
	h := sw.Field.H[s][i]
	aUp := sw.Prop.Alpha(hubbard.Up, h)
	aDn := sw.Prop.Alpha(hubbard.Down, h)
	dUp := 1 + aUp*(1-sw.up.effDiag(i))
	dDn := 1 + aDn*(1-sw.dn.effDiag(i))
	r := dUp * dDn * sw.Prop.BosonRatio(h)
	sw.proposed++
	ar := r
	if ar < 0 {
		ar = -ar
	}
	if ar < 1 && sw.Rng.Float64() >= ar {
		return
	}
	// Accepted: the two spins' column/row assembly is independent.
	sw.accepted++
	if r < 0 {
		sw.sign = -sw.sign
	}
	sw.flipSite = i
	sw.facUp = aUp / dUp
	sw.facDn = aDn / dDn
	sw.fork(sw.acceptUpFn, sw.acceptDnFn)
	sw.Field.Flip(s, i)
	if sw.up.m == sw.opts.Delay {
		sw.fork(sw.flushUpFn, sw.flushDnFn)
	}
}

// GreenUp returns the spin-up equal-time Green's function (valid after
// Sweep returns; do not modify).
func (sw *Sweeper) GreenUp() *mat.Dense { return sw.up.g }

// GreenDn returns the spin-down Green's function.
func (sw *Sweeper) GreenDn() *mat.Dense { return sw.dn.g }

// Sign returns the current fermion sign of the configuration weight.
func (sw *Sweeper) Sign() float64 { return sw.sign }

// SetSign restores a checkpointed sign (the sign is tracked incrementally
// across flips, so a resumed chain must start from the saved value).
func (sw *Sweeper) SetSign(s float64) { sw.sign = s }

// AcceptanceRate returns accepted/proposed over the sweeper's lifetime.
func (sw *Sweeper) AcceptanceRate() float64 {
	if sw.proposed == 0 {
		return 0
	}
	return float64(sw.accepted) / float64(sw.proposed)
}

// Counters returns the lifetime Metropolis accept/propose counts.
func (sw *Sweeper) Counters() (accepted, proposed int64) {
	return sw.accepted, sw.proposed
}

// SetCounters restores checkpointed Metropolis counters so a resumed
// chain's acceptance rate spans the whole run.
func (sw *Sweeper) SetCounters(accepted, proposed int64) {
	sw.accepted, sw.proposed = accepted, proposed
}

// MaxWrapDrift reports the largest observed relative difference between a
// wrapped Green's function and its stratified recomputation.
func (sw *Sweeper) MaxWrapDrift() float64 { return sw.maxWrapDrift }

// ClusterK returns the clustering size actually in use.
func (sw *Sweeper) ClusterK() int { return sw.opts.ClusterK }

// StabilityEvery returns the residual-check cadence in use.
func (sw *Sweeper) StabilityEvery() int { return sw.opts.StabilityEvery }

// SetStabilityEvery changes the stack-vs-rebuild residual check cadence
// (boundaries between checks; <= 0 disables). Takes effect at the next
// refresh; the cadence never influences the Markov chain, only how often
// the diagnostic is sampled.
func (sw *Sweeper) SetStabilityEvery(n int) {
	if n < 0 {
		n = 0
	}
	sw.opts.StabilityEvery = n
}

// SetClusterK switches the sweeper to cluster size k — the stability
// autopilot's actuator. k is decremented to the nearest divisor of L (like
// NewSweeper) and returned. Call only between sweeps: the Green's
// functions then sit at cluster boundary 0, which is independent of the
// clustering, so the resize rebuilds the per-spin cluster sets and
// retargets the stratification stacks without touching G or the field —
// the Markov chain continues exactly where it was. The pre-bound spin
// closures read the cluster-set and stack fields at call time, so no
// rebinding is needed.
func (sw *Sweeper) SetClusterK(k int) int {
	if k < 1 {
		k = 1
	}
	for sw.Prop.Model.L%k != 0 {
		k--
	}
	if k == sw.opts.ClusterK {
		return k
	}
	sw.opts.ClusterK = k
	cstart := sw.opts.Obs.Begin()
	sw.csUp = greens.NewClusterSet(sw.Prop, sw.Field, hubbard.Up, k)
	sw.csDn = greens.NewClusterSet(sw.Prop, sw.Field, hubbard.Down, k)
	sw.opts.Obs.End(obs.PhaseCluster, cstart)
	if sw.stUp != nil {
		sstart := sw.opts.Obs.Begin()
		sw.stUp.Retarget(sw.csUp)
		sw.stDn.Retarget(sw.csDn)
		sw.opts.Obs.End(obs.PhaseRefresh, sstart)
	}
	sw.boundary = 0
	return k
}

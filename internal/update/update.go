// Package update implements the Metropolis sweep of the DQMC algorithm
// (Algorithm 1 of the paper): single HS-field flips accepted with the
// determinant ratio computed from the equal-time Green's function, with the
// rank-1 updates *delayed* into blocked rank-nd updates so the O(N^3) of
// update work per slice runs at GEMM speed instead of GER speed.
package update

import (
	"questgo/internal/blas"
	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/profile"
	"questgo/internal/rng"
)

// spinState carries the per-spin Green's function and the delayed-update
// buffers: the effective Green's function during a slice is
// G_eff(i,j) = G(i,j) + sum_t U(i,t)*W(j,t) with t < m pending updates.
type spinState struct {
	sigma hubbard.Spin
	g     *mat.Dense
	u, w  *mat.Dense // N x nd accumulators
	m     int        // pending update count
	col   []float64  // scratch: effective column i
	row   []float64  // scratch: effective row i
}

func newSpinState(sigma hubbard.Spin, n, nd int) *spinState {
	return &spinState{
		sigma: sigma,
		g:     mat.New(n, n),
		u:     mat.New(n, nd),
		w:     mat.New(n, nd),
		col:   make([]float64, n),
		row:   make([]float64, n),
	}
}

// effDiag returns G_eff(i,i).
func (s *spinState) effDiag(i int) float64 {
	gii := s.g.At(i, i)
	for t := 0; t < s.m; t++ {
		gii += s.u.At(i, t) * s.w.At(i, t)
	}
	return gii
}

// effColRow fills s.col with G_eff(:, i) and s.row with G_eff(i, :).
func (s *spinState) effColRow(i int) {
	n := s.g.Rows
	copy(s.col, s.g.Col(i))
	for r := 0; r < n; r++ {
		s.row[r] = s.g.At(i, r)
	}
	for t := 0; t < s.m; t++ {
		ut := s.u.Col(t)
		wt := s.w.Col(t)
		wi := wt[i]
		ui := ut[i]
		for r := 0; r < n; r++ {
			s.col[r] += ut[r] * wi
			s.row[r] += wt[r] * ui
		}
	}
}

// push appends the accepted flip at site i with amplitude factor = alpha/d.
// With our wrapping convention the updated slice's B_l sits *leftmost* in
// the cyclic product, M' = (I + alpha*e_i*e_i^T*(I-G)) * M, so
//
//	G' = G - (alpha/d) * (G e_i) * (e_i - G^T e_i)^T.
//
// (The paper's Section II-B prints the transposed variant, which belongs to
// the convention where the flipped slice is rightmost; the determinant
// ratio d = 1 + alpha*(1 - G_ii) is identical in both.) effColRow must have
// been called for this i first.
func (s *spinState) push(i int, factor float64) {
	uc := s.u.Col(s.m)
	wc := s.w.Col(s.m)
	for r := range uc {
		uc[r] = -factor * s.col[r]
		wc[r] = -s.row[r]
	}
	wc[i] += 1
	s.m++
}

// flush applies the pending block update G += U * W^T and resets the count.
func (s *spinState) flush() {
	if s.m == 0 {
		return
	}
	uv := s.u.View(0, 0, s.u.Rows, s.m)
	wv := s.w.View(0, 0, s.w.Rows, s.m)
	blas.Gemm(false, true, 1, uv, wv, 1, s.g)
	s.m = 0
}

// Options configures a Sweeper.
type Options struct {
	// ClusterK is the matrix clustering size k, which also sets the
	// wrapping count between stratified recomputations (the paper uses
	// k = l = 10). Must divide the slice count L.
	ClusterK int
	// Delay is the delayed-update block size nd (32 by default).
	Delay int
	// PrePivot selects Algorithm 3 (true, the paper's method) or the
	// Algorithm 2 QRP reference (false) for stratified recomputations.
	PrePivot bool
	// Prof, when non-nil, accumulates the Table-I phase timings.
	Prof *profile.Profile
}

// Sweeper runs Metropolis sweeps over the HS field, maintaining the
// equal-time Green's functions for both spins with wrapping, delayed
// updates, cluster recycling and periodic stratified recomputation.
type Sweeper struct {
	Prop  *hubbard.Propagator
	Field *hubbard.Field
	Rng   *rng.Rand

	opts     Options
	up, dn   *spinState
	csUp     *greens.ClusterSet
	csDn     *greens.ClusterSet
	wrapper  *greens.Wrapper
	sign     float64
	accepted int64
	proposed int64
	// boundaryHook, when set, runs after every stratified refresh (i.e. at
	// every cluster boundary) with the Green's functions freshly
	// recomputed — the natural place for equal-time measurements, which
	// QUEST takes on multiple slices per sweep to reduce variance.
	boundaryHook func()
	// maxWrapDrift records the largest relative difference between the
	// wrapped Green's function and its stratified recomputation — the
	// numerical-accuracy diagnostic that motivates the wrapping limit.
	maxWrapDrift float64
}

// NewSweeper prepares a sweeper and computes the initial Green's functions
// by full stratification.
func NewSweeper(p *hubbard.Propagator, f *hubbard.Field, r *rng.Rand, opts Options) *Sweeper {
	if opts.ClusterK < 1 {
		opts.ClusterK = 10
	}
	for p.Model.L%opts.ClusterK != 0 {
		opts.ClusterK--
	}
	if opts.Delay < 1 {
		opts.Delay = 32
	}
	n := p.Model.N()
	if opts.Delay > n {
		opts.Delay = n
	}
	sw := &Sweeper{
		Prop:  p,
		Field: f,
		Rng:   r,
		opts:  opts,
		up:    newSpinState(hubbard.Up, n, opts.Delay),
		dn:    newSpinState(hubbard.Down, n, opts.Delay),
		sign:  1,
	}
	done := opts.Prof.Track(profile.Clustering)
	sw.csUp = greens.NewClusterSet(p, f, hubbard.Up, opts.ClusterK)
	sw.csDn = greens.NewClusterSet(p, f, hubbard.Down, opts.ClusterK)
	done()
	sw.wrapper = greens.NewWrapper(p)
	sw.refresh(0)
	return sw
}

// refresh recomputes both Green's functions by stratification at cluster
// boundary c and records the drift of the wrapped copies.
func (sw *Sweeper) refresh(c int) {
	defer sw.opts.Prof.Track(profile.Stratification)()
	gUp := sw.csUp.GreenAt(c, sw.opts.PrePivot)
	gDn := sw.csDn.GreenAt(c, sw.opts.PrePivot)
	if sw.up.g != nil && sw.proposed > 0 {
		if d := mat.RelDiff(sw.up.g, gUp); d > sw.maxWrapDrift {
			sw.maxWrapDrift = d
		}
	}
	sw.up.g.CopyFrom(gUp)
	sw.dn.g.CopyFrom(gDn)
}

// SetBoundaryHook registers h to run after every stratified refresh, when
// GreenUp/GreenDn hold freshly recomputed Green's functions. Pass nil to
// disable. Used for per-boundary equal-time measurements.
func (sw *Sweeper) SetBoundaryHook(h func()) { sw.boundaryHook = h }

// Sweep performs one full sweep: every (slice, site) pair is visited once
// and a flip is proposed (Algorithm 1). On return the Green's functions
// correspond to the full chain (cluster boundary 0), ready for equal-time
// measurements.
func (sw *Sweeper) Sweep() {
	model := sw.Prop.Model
	n := model.N()
	k := sw.opts.ClusterK
	for s := 0; s < model.L; s++ {
		// Wrap both spins into slice s: G <- B_s G B_s^{-1}.
		wdone := sw.opts.Prof.Track(profile.Wrapping)
		sw.wrapper.Wrap(sw.up.g, sw.Field, hubbard.Up, s)
		sw.wrapper.Wrap(sw.dn.g, sw.Field, hubbard.Down, s)
		wdone()

		udone := sw.opts.Prof.Track(profile.DelayedUpdate)
		for i := 0; i < n; i++ {
			sw.proposeFlip(s, i)
		}
		sw.up.flush()
		sw.dn.flush()
		udone()

		if (s+1)%k == 0 {
			c := s / k
			cdone := sw.opts.Prof.Track(profile.Clustering)
			sw.csUp.Recompute(sw.Field, c)
			sw.csDn.Recompute(sw.Field, c)
			cdone()
			sw.refresh((c + 1) % sw.csUp.NC)
			if sw.boundaryHook != nil {
				sw.boundaryHook()
			}
		}
	}
}

// proposeFlip carries out the Metropolis step for h[s][i].
func (sw *Sweeper) proposeFlip(s, i int) {
	h := sw.Field.H[s][i]
	aUp := sw.Prop.Alpha(hubbard.Up, h)
	aDn := sw.Prop.Alpha(hubbard.Down, h)
	dUp := 1 + aUp*(1-sw.up.effDiag(i))
	dDn := 1 + aDn*(1-sw.dn.effDiag(i))
	r := dUp * dDn * sw.Prop.BosonRatio(h)
	sw.proposed++
	ar := r
	if ar < 0 {
		ar = -ar
	}
	if ar < 1 && sw.Rng.Float64() >= ar {
		return
	}
	// Accepted.
	sw.accepted++
	if r < 0 {
		sw.sign = -sw.sign
	}
	sw.up.effColRow(i)
	sw.up.push(i, aUp/dUp)
	sw.dn.effColRow(i)
	sw.dn.push(i, aDn/dDn)
	sw.Field.Flip(s, i)
	if sw.up.m == sw.opts.Delay {
		sw.up.flush()
		sw.dn.flush()
	}
}

// GreenUp returns the spin-up equal-time Green's function (valid after
// Sweep returns; do not modify).
func (sw *Sweeper) GreenUp() *mat.Dense { return sw.up.g }

// GreenDn returns the spin-down Green's function.
func (sw *Sweeper) GreenDn() *mat.Dense { return sw.dn.g }

// Sign returns the current fermion sign of the configuration weight.
func (sw *Sweeper) Sign() float64 { return sw.sign }

// SetSign restores a checkpointed sign (the sign is tracked incrementally
// across flips, so a resumed chain must start from the saved value).
func (sw *Sweeper) SetSign(s float64) { sw.sign = s }

// AcceptanceRate returns accepted/proposed over the sweeper's lifetime.
func (sw *Sweeper) AcceptanceRate() float64 {
	if sw.proposed == 0 {
		return 0
	}
	return float64(sw.accepted) / float64(sw.proposed)
}

// MaxWrapDrift reports the largest observed relative difference between a
// wrapped Green's function and its stratified recomputation.
func (sw *Sweeper) MaxWrapDrift() float64 { return sw.maxWrapDrift }

// ClusterK returns the clustering size actually in use.
func (sw *Sweeper) ClusterK() int { return sw.opts.ClusterK }

package update

import (
	"testing"

	"questgo/internal/mat"
	"questgo/internal/rng"
)

func TestBoundaryHookFiresPerCluster(t *testing.T) {
	p, f := setup(t, 3, 3, 4, 2, 8, 41)
	sw := NewSweeper(p, f, rng.New(2), Options{ClusterK: 4})
	calls := 0
	sw.SetBoundaryHook(func() { calls++ })
	sw.Sweep()
	if calls != 2 { // L/k = 8/4 boundaries per sweep
		t.Fatalf("hook fired %d times, want 2", calls)
	}
	sw.SetBoundaryHook(nil)
	sw.Sweep()
	if calls != 2 {
		t.Fatal("nil hook must disable callbacks")
	}
}

func TestBoundaryHookSeesFreshGreens(t *testing.T) {
	p, f := setup(t, 3, 3, 4, 2, 8, 43)
	sw := NewSweeper(p, f, rng.New(3), Options{ClusterK: 4})
	var snapshots []*mat.Dense
	sw.SetBoundaryHook(func() {
		snapshots = append(snapshots, sw.GreenUp().Clone())
	})
	sw.Sweep()
	if len(snapshots) != 2 {
		t.Fatalf("snapshots: %d", len(snapshots))
	}
	// Boundary Green's functions at different imaginary times must differ.
	if d := mat.RelDiff(snapshots[0], snapshots[1]); d < 1e-10 {
		t.Fatalf("boundary G's suspiciously identical: %g", d)
	}
	// The last snapshot is the end-of-sweep G.
	if d := mat.RelDiff(snapshots[1], sw.GreenUp()); d > 1e-14 {
		t.Fatalf("final boundary snapshot != end-of-sweep G: %g", d)
	}
}

func TestBoundaryHookDoesNotChangeTrajectory(t *testing.T) {
	p, f1 := setup(t, 3, 3, 4, 2, 8, 47)
	f2 := f1.Clone()
	sw1 := NewSweeper(p, f1, rng.New(9), Options{ClusterK: 4})
	sw2 := NewSweeper(p, f2, rng.New(9), Options{ClusterK: 4})
	sw2.SetBoundaryHook(func() {}) // observer only
	for i := 0; i < 3; i++ {
		sw1.Sweep()
		sw2.Sweep()
	}
	for l := 0; l < f1.L; l++ {
		for i := 0; i < f1.N; i++ {
			if f1.H[l][i] != f2.H[l][i] {
				t.Fatal("hook perturbed the Markov chain")
			}
		}
	}
}

package update

import (
	"testing"

	"questgo/internal/greens"
	"questgo/internal/hubbard"
	"questgo/internal/mat"
	"questgo/internal/rng"
)

func fieldsEqual(t *testing.T, f1, f2 *hubbard.Field, label string) {
	t.Helper()
	for l := 0; l < f1.L; l++ {
		for i := 0; i < f1.N; i++ {
			if f1.H[l][i] != f2.H[l][i] {
				t.Fatalf("%s: fields diverged at (%d,%d)", label, l, i)
			}
		}
	}
}

// TestStackMatchesReferenceTrajectory runs the stratification-stack sweeper
// against the full-rebuild reference with the same RNG stream, under both
// pivoting policies: the boundary Green's functions agree to ~1e-12, far
// below any Metropolis threshold sensitivity, so the Monte Carlo
// trajectories must be identical and the end-of-sweep Green's functions
// (where both paths run the same incremental chain) must match to 1e-12.
func TestStackMatchesReferenceTrajectory(t *testing.T) {
	for _, prePivot := range []bool{false, true} {
		p, f1 := setup(t, 3, 3, 6, 3, 12, 43)
		f2 := f1.Clone()
		stacked := NewSweeper(p, f1, rng.New(9), Options{ClusterK: 4, PrePivot: prePivot})
		ref := NewSweeper(p, f2, rng.New(9), Options{ClusterK: 4, PrePivot: prePivot, NoStack: true})
		for s := 0; s < 3; s++ {
			stacked.Sweep()
			ref.Sweep()
		}
		fieldsEqual(t, f1, f2, "stack vs reference")
		if stacked.AcceptanceRate() != ref.AcceptanceRate() {
			t.Fatalf("prePivot=%v: acceptance differs: %v vs %v",
				prePivot, stacked.AcceptanceRate(), ref.AcceptanceRate())
		}
		if d := mat.RelDiff(stacked.GreenUp(), ref.GreenUp()); d > 1e-12 {
			t.Fatalf("prePivot=%v: spin-up G differs: %g", prePivot, d)
		}
		if d := mat.RelDiff(stacked.GreenDn(), ref.GreenDn()); d > 1e-12 {
			t.Fatalf("prePivot=%v: spin-down G differs: %g", prePivot, d)
		}
	}
}

// TestStackSweepUsesFewerUDTSteps asserts the tentpole accounting at the
// sweeper level: with NC clusters per sweep, the stacked refresh performs
// 3*NC-2 cluster-UDT steps per sweep while the reference re-stratifies
// NC^2, so for this configuration (NC = 10) the stack must come in under
// half the reference count.
func TestStackSweepUsesFewerUDTSteps(t *testing.T) {
	p, f1 := setup(t, 3, 3, 4, 2, 40, 47)
	f2 := f1.Clone()
	stacked := NewSweeper(p, f1, rng.New(5), Options{ClusterK: 4})
	ref := NewSweeper(p, f2, rng.New(5), Options{ClusterK: 4, NoStack: true})

	start := greens.UDTSteps()
	stacked.Sweep()
	stackSteps := greens.UDTSteps() - start

	start = greens.UDTSteps()
	ref.Sweep()
	refSteps := greens.UDTSteps() - start

	// Both spin sectors refresh at every boundary, so each path costs twice
	// its single-spin count.
	nc := int64(p.Model.L / stacked.ClusterK()) // 10
	if refSteps != 2*nc*nc {
		t.Fatalf("reference sweep: %d UDT steps, want %d", refSteps, 2*nc*nc)
	}
	if stackSteps != 2*(3*nc-2) {
		t.Fatalf("stacked sweep: %d UDT steps, want %d", stackSteps, 2*(3*nc-2))
	}
	if 2*stackSteps >= refSteps {
		t.Fatalf("stacked sweep (%d steps) not under half the reference (%d steps)", stackSteps, refSteps)
	}
}

// TestSpinParallelMatchesSerial: the spin fork only reorders *which
// goroutine* executes each sector's arithmetic, never the arithmetic
// itself, so the parallel and serial sweeps must be bit-for-bit identical
// — same fields, same Green's functions, same sign. Run with -race this
// also exercises the concurrent wrap/flush/refresh phases.
func TestSpinParallelMatchesSerial(t *testing.T) {
	p, f1 := setup(t, 3, 3, 4, 2, 12, 53)
	f2 := f1.Clone()
	par := NewSweeper(p, f1, rng.New(13), Options{ClusterK: 4, Delay: 8})
	ser := NewSweeper(p, f2, rng.New(13), Options{ClusterK: 4, Delay: 8, SerialSpins: true})
	for s := 0; s < 3; s++ {
		par.Sweep()
		ser.Sweep()
	}
	fieldsEqual(t, f1, f2, "parallel vs serial spins")
	if par.Sign() != ser.Sign() {
		t.Fatalf("signs differ: %v vs %v", par.Sign(), ser.Sign())
	}
	if d := mat.RelDiff(par.GreenUp(), ser.GreenUp()); d != 0 {
		t.Fatalf("spin-up G not bitwise identical: %g", d)
	}
	if d := mat.RelDiff(par.GreenDn(), ser.GreenDn()); d != 0 {
		t.Fatalf("spin-down G not bitwise identical: %g", d)
	}
}

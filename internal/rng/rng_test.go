package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams overlap: %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var s float64
	const n = 200000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean = %v, not ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d seen %d times (expect ~10000)", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPlusMinus(t *testing.T) {
	r := New(6)
	plus := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.PlusMinus()
		if v != 1 && v != -1 {
			t.Fatalf("PlusMinus = %v", v)
		}
		if v == 1 {
			plus++
		}
	}
	if plus < 49000 || plus > 51000 {
		t.Fatalf("PlusMinus bias: %d/%d", plus, n)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(7)
	var s, s2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		s += v
		s2 += v * v
	}
	mean, varr := s/n, s2/n-(s/n)*(s/n)
	if math.Abs(mean) > 0.01 || math.Abs(varr-1) > 0.02 {
		t.Fatalf("normal moments off: mean=%v var=%v", mean, varr)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint32, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(uint64(seed))
		v := r.Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package rng implements the deterministic pseudo-random number generator
// used throughout the DQMC simulation.
//
// Monte Carlo results must be exactly reproducible from a single seed (the
// paper's validation compares physical observables against published runs,
// which requires stable streams). We use xoshiro256** for the core stream and
// SplitMix64 to expand a single user seed into the 256-bit state, following
// the recommendations of Blackman and Vigna. Independent sub-streams (one per
// spin species, per walker, ...) are derived with Jump-free reseeding through
// SplitMix64, which is sufficient for the stream counts used here.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewStream returns an independent generator derived from seed and a stream
// identifier, so concurrent components can consume randomness without
// contention or overlap in practice.
func NewStream(seed, stream uint64) *Rand {
	sm := seed ^ (0x6a09e667f3bcc909 * (stream + 1))
	r := &Rand{}
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// State returns the generator's internal 256-bit state, for checkpointing.
func (r *Rand) State() [4]uint64 { return r.s }

// Restore overwrites the state with a previously captured State(). It
// panics on the invalid all-zero state.
func (r *Rand) Restore(state [4]uint64) {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		panic("rng: cannot restore the all-zero state")
	}
	r.s = state
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// PlusMinus returns +1 or -1 with equal probability, the initial value of a
// Hubbard-Stratonovich field element.
func (r *Rand) PlusMinus() float64 {
	if r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method);
// used only by test helpers and synthetic workload generators.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

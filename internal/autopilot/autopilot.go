// Package autopilot closes the loop from stability telemetry to sweep
// control. A Controller subscribes to the live sample stream of an
// obs.Collector (wrap drift, stack-vs-rebuild stratification residual,
// log10 UDT condition) and adapts two knobs between sweeps: the cluster
// size k (the wrapping count, which decides how much error the stratified
// stack must absorb per boundary) and the stability-check cadence (how
// often the expensive stack-vs-rebuild residual is evaluated).
//
// Control law, evaluated once per sweep from the window of samples the
// sweep produced:
//
//   - Any non-finite sample is an emergency: k drops to the smallest
//     admissible divisor of L, the cadence to its minimum, and the grow cap
//     freezes there — a blown-up Green's function is not a signal to probe
//     with.
//   - A ceiling breach (condition, drift, or residual above its configured
//     ceiling) shrinks k to the next smaller divisor of L and halves the
//     cadence interval. The breached values become hard caps: the
//     controller never grows back to a k or a cadence that has already
//     failed. This monotone cap is what makes oscillation impossible — the
//     set of reachable (k, cadence) pairs only ever shrinks.
//   - After Patience consecutive stable sweeps (every gated probe under
//     its floor) outside a post-change cooldown, k stretches to the
//     largest divisor of L at most twice the current k and the cadence
//     doubles, both clamped by the caps.
//
// k is divisor-constrained: every step lands on a divisor of L so the
// cluster partition stays exact. The controller is safe for concurrent
// ObserveStability calls (the spin-parallel sweep samples from two
// goroutines); EndSweep and the accessors take the same lock.
package autopilot

import (
	"fmt"
	"math"
	"sync"

	"questgo/internal/obs"
)

// Config parameterizes a Controller. The zero value of every optional
// field selects the documented default; L and InitialK are mandatory.
type Config struct {
	// L is the number of imaginary-time slices; every k the controller
	// picks divides L. InitialK is the starting cluster size (must divide
	// L); InitialCheckEvery the starting residual-check cadence in
	// boundaries (default 4).
	L                 int
	InitialK          int
	InitialCheckEvery int

	// MinK/MaxK bound the cluster size (defaults 1 and InitialK: the
	// controller shrinks below the configured k and recovers back, but
	// never exceeds it unless MaxK is raised explicitly).
	// MinCheckEvery/MaxCheckEvery bound the cadence (defaults 1 and 16).
	MinK          int
	MaxK          int
	MinCheckEvery int
	MaxCheckEvery int

	// Patience is the number of consecutive stable sweeps required before
	// a grow step (default 3). Cooldown is the number of sweeps after any
	// change during which no further change is considered (default 2).
	Patience int
	Cooldown int

	// Ceilings trigger shrink steps; floors gate grow steps. A zero
	// ceiling or floor disables that probe's contribution. Defaults:
	// condition ceiling 280 (log10; an overflow guard — the graded UDT
	// absorbs condition, so it scales with beta, not k), drift ceiling
	// 1e-3, residual ceiling 1e-9, drift floor 1e-4, residual floor
	// 1e-10, condition floor 0 (disabled). A wrap drift of ~1e-5 is the
	// healthy level of a well-stabilized beta = 32 chain, so the drift
	// ceiling sits two decades above it; when a default floor would sit
	// at or above an explicitly lowered ceiling it tracks ceiling/10.
	CondCeilLog10  float64
	CondFloorLog10 float64
	DriftCeil      float64
	DriftFloor     float64
	ResidualCeil   float64
	ResidualFloor  float64

	// MaxDecisions caps the retained per-change decision log (default 64).
	MaxDecisions int
}

// withDefaults returns cfg with every zero optional field replaced by its
// default.
func (cfg Config) withDefaults() Config {
	if cfg.InitialCheckEvery == 0 {
		cfg.InitialCheckEvery = 4
	}
	if cfg.MinK == 0 {
		cfg.MinK = 1
	}
	if cfg.MaxK == 0 {
		// The configured k is the trusted upper bound: stratification error
		// grows exponentially in the cluster size, so a k that looks to have
		// floors of headroom can still be one growth step from a cliff. By
		// default the controller only shrinks below the configured k and
		// recovers back to it; raising MaxK explicitly opts into exploring
		// larger clusters.
		cfg.MaxK = cfg.InitialK
	}
	if cfg.MinCheckEvery == 0 {
		cfg.MinCheckEvery = 1
	}
	if cfg.MaxCheckEvery == 0 {
		cfg.MaxCheckEvery = 16
		if cfg.MaxCheckEvery < cfg.InitialCheckEvery {
			cfg.MaxCheckEvery = cfg.InitialCheckEvery
		}
	}
	if cfg.Patience == 0 {
		cfg.Patience = 3
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 2
	}
	if cfg.CondCeilLog10 == 0 {
		cfg.CondCeilLog10 = 280
	}
	if cfg.DriftCeil == 0 {
		cfg.DriftCeil = 1e-3
	}
	if cfg.DriftFloor == 0 {
		cfg.DriftFloor = 1e-4
		// Track an explicitly lowered ceiling so the default floor stays
		// strictly below it.
		if cfg.DriftCeil > 0 && cfg.DriftFloor >= cfg.DriftCeil {
			cfg.DriftFloor = cfg.DriftCeil / 10
		}
	}
	if cfg.ResidualCeil == 0 {
		cfg.ResidualCeil = 1e-9
	}
	if cfg.ResidualFloor == 0 {
		cfg.ResidualFloor = 1e-10
		if cfg.ResidualCeil > 0 && cfg.ResidualFloor >= cfg.ResidualCeil {
			cfg.ResidualFloor = cfg.ResidualCeil / 10
		}
	}
	if cfg.MaxDecisions == 0 {
		cfg.MaxDecisions = 64
	}
	return cfg
}

// validate checks the defaulted config for consistency.
func (cfg Config) validate() error {
	if cfg.L < 1 {
		return fmt.Errorf("autopilot: L = %d, want >= 1", cfg.L)
	}
	if cfg.InitialK < 1 || cfg.L%cfg.InitialK != 0 {
		return fmt.Errorf("autopilot: InitialK = %d must be a positive divisor of L = %d", cfg.InitialK, cfg.L)
	}
	if cfg.MinK < 1 || cfg.MinK > cfg.InitialK {
		return fmt.Errorf("autopilot: MinK = %d, want 1 <= MinK <= InitialK = %d", cfg.MinK, cfg.InitialK)
	}
	if cfg.MaxK < cfg.InitialK {
		return fmt.Errorf("autopilot: MaxK = %d, want >= InitialK = %d", cfg.MaxK, cfg.InitialK)
	}
	if cfg.MinCheckEvery < 1 || cfg.MinCheckEvery > cfg.InitialCheckEvery {
		return fmt.Errorf("autopilot: MinCheckEvery = %d, want 1 <= MinCheckEvery <= InitialCheckEvery = %d",
			cfg.MinCheckEvery, cfg.InitialCheckEvery)
	}
	if cfg.MaxCheckEvery < cfg.InitialCheckEvery {
		return fmt.Errorf("autopilot: MaxCheckEvery = %d, want >= InitialCheckEvery = %d",
			cfg.MaxCheckEvery, cfg.InitialCheckEvery)
	}
	if cfg.Patience < 1 || cfg.Cooldown < 0 {
		return fmt.Errorf("autopilot: Patience = %d (want >= 1), Cooldown = %d (want >= 0)", cfg.Patience, cfg.Cooldown)
	}
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"CondCeilLog10", cfg.CondCeilLog10}, {"CondFloorLog10", cfg.CondFloorLog10},
		{"DriftCeil", cfg.DriftCeil}, {"DriftFloor", cfg.DriftFloor},
		{"ResidualCeil", cfg.ResidualCeil}, {"ResidualFloor", cfg.ResidualFloor},
	} {
		if math.IsNaN(v.v) || v.v < 0 {
			return fmt.Errorf("autopilot: %s = %v, want finite and >= 0", v.name, v.v)
		}
	}
	if cfg.CondFloorLog10 > 0 && cfg.CondFloorLog10 >= cfg.CondCeilLog10 {
		return fmt.Errorf("autopilot: CondFloorLog10 = %v >= CondCeilLog10 = %v", cfg.CondFloorLog10, cfg.CondCeilLog10)
	}
	if cfg.DriftFloor > 0 && cfg.DriftCeil > 0 && cfg.DriftFloor >= cfg.DriftCeil {
		return fmt.Errorf("autopilot: DriftFloor = %v >= DriftCeil = %v", cfg.DriftFloor, cfg.DriftCeil)
	}
	if cfg.ResidualFloor > 0 && cfg.ResidualCeil > 0 && cfg.ResidualFloor >= cfg.ResidualCeil {
		return fmt.Errorf("autopilot: ResidualFloor = %v >= ResidualCeil = %v", cfg.ResidualFloor, cfg.ResidualCeil)
	}
	return nil
}

// State is the controller's complete mutable state, exported so checkpoints
// can persist it (gob) and resume mid-trajectory: the adapted k and cadence
// plus the hysteresis caps and streak counters that make the next decision
// reproducible.
type State struct {
	K               int
	CheckEvery      int
	KCap            int
	CheckEveryCap   int
	StableStreak    int
	CooldownLeft    int
	Sweep           int
	Shrinks         int
	Grows           int
	NonFiniteEvents int
	NonFinite       bool
}

// Action is EndSweep's verdict: the knob settings the next sweep should run
// with, and whether they changed.
type Action struct {
	K          int
	CheckEvery int
	Changed    bool
	Reason     string
}

// Controller is the feedback controller. Create with New, attach with
// obs.Collector.SetStabilityListener, call EndSweep between sweeps.
type Controller struct {
	cfg Config

	mu sync.Mutex
	st State //qmc:guarded(mu)
	// Per-sweep sample window: max and count per probe, reset by EndSweep.
	winMax       [obs.NumProbes]float64 //qmc:guarded(mu)
	winN         [obs.NumProbes]int64   //qmc:guarded(mu)
	winNonFinite bool                   //qmc:guarded(mu)
	// lastRes is the most recent finite strat residual across sweeps: the
	// residual is sampled at cadence frequency, so most sweep windows have
	// no residual sample and growth gates on the last known reading.
	lastRes float64 //qmc:guarded(mu)
	resSeen bool    //qmc:guarded(mu)

	initialK          int
	initialCheckEvery int
	decisions         []obs.AutopilotDecision //qmc:guarded(mu)
	decisionsDropped  bool                    //qmc:guarded(mu)
}

// New builds a controller from cfg (zero optional fields take defaults).
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg: cfg,
		st: State{
			K:             cfg.InitialK,
			CheckEvery:    cfg.InitialCheckEvery,
			KCap:          cfg.MaxK,
			CheckEveryCap: cfg.MaxCheckEvery,
		},
		initialK:          cfg.InitialK,
		initialCheckEvery: cfg.InitialCheckEvery,
	}, nil
}

// ObserveStability implements obs.StabilityListener: it folds one sample
// into the current sweep window. Called concurrently from the spin-parallel
// sweep phases; must stay cheap (one mutex, no allocation).
func (c *Controller) ObserveStability(p obs.StabilityProbe, v float64) {
	c.mu.Lock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		c.winNonFinite = true
	} else {
		if c.winN[p] == 0 || v > c.winMax[p] {
			c.winMax[p] = v
		}
		c.winN[p]++
		if p == obs.ProbeStratResidual {
			c.lastRes = v
			c.resSeen = true
		}
	}
	c.mu.Unlock()
}

// EndSweep evaluates the control law over the sweep's sample window and
// returns the settings the next sweep should use. Call it exactly once per
// completed sweep, from the sweep goroutine (not concurrently with itself).
func (c *Controller) EndSweep() Action {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.st.Sweep++
	nonFinite := c.winNonFinite
	var winMax [obs.NumProbes]float64
	var winN [obs.NumProbes]int64
	copy(winMax[:], c.winMax[:])
	copy(winN[:], c.winN[:])
	c.winNonFinite = false
	for p := range c.winMax {
		c.winMax[p] = 0
		c.winN[p] = 0
	}

	prevK, prevCheck := c.st.K, c.st.CheckEvery

	switch {
	case nonFinite:
		// Emergency: drop to the most conservative admissible settings and
		// freeze the caps there. No recovery path from a NaN sweep.
		c.st.NonFinite = true
		c.st.NonFiniteEvents++
		k := smallestDivisorAtLeast(c.cfg.L, c.cfg.MinK)
		c.st.K = k
		c.st.KCap = k
		c.st.CheckEvery = c.cfg.MinCheckEvery
		c.st.CheckEveryCap = c.cfg.MinCheckEvery
		c.st.StableStreak = 0
		c.st.CooldownLeft = c.cfg.Cooldown
		if c.st.K != prevK || c.st.CheckEvery != prevCheck {
			c.st.Shrinks++
			c.record("non_finite", math.NaN())
			return Action{K: c.st.K, CheckEvery: c.st.CheckEvery, Changed: true, Reason: "non_finite"}
		}
		return Action{K: c.st.K, CheckEvery: c.st.CheckEvery, Reason: "non_finite"}

	case c.breach(winMax, winN) != "":
		reason := c.breach(winMax, winN)
		signal := c.breachSignal(reason, winMax)
		// Shrink k below the breached value and never allow growth back to
		// it; same for the cadence. Both caps are monotone non-increasing,
		// which is the no-oscillation guarantee.
		if kc := largestDivisorBelow(c.cfg.L, prevK, c.cfg.MinK); kc < c.st.KCap {
			c.st.KCap = kc
		}
		if c.st.K > c.st.KCap {
			c.st.K = c.st.KCap
		}
		if cc := maxInt(c.cfg.MinCheckEvery, prevCheck-1); cc < c.st.CheckEveryCap {
			c.st.CheckEveryCap = cc
		}
		if ce := maxInt(c.cfg.MinCheckEvery, prevCheck/2); ce < c.st.CheckEvery {
			c.st.CheckEvery = ce
		}
		if c.st.CheckEvery > c.st.CheckEveryCap {
			c.st.CheckEvery = c.st.CheckEveryCap
		}
		c.st.StableStreak = 0
		c.st.CooldownLeft = c.cfg.Cooldown
		if c.st.K != prevK || c.st.CheckEvery != prevCheck {
			c.st.Shrinks++
			c.record(reason, signal)
			return Action{K: c.st.K, CheckEvery: c.st.CheckEvery, Changed: true, Reason: reason}
		}
		// Already at the floor: nothing left to shrink.
		return Action{K: c.st.K, CheckEvery: c.st.CheckEvery, Reason: reason}
	}

	if c.st.CooldownLeft > 0 {
		c.st.CooldownLeft--
		return Action{K: c.st.K, CheckEvery: c.st.CheckEvery}
	}

	if !c.stable(winMax, winN) {
		c.st.StableStreak = 0
		return Action{K: c.st.K, CheckEvery: c.st.CheckEvery}
	}
	c.st.StableStreak++
	if c.st.StableStreak < c.cfg.Patience {
		return Action{K: c.st.K, CheckEvery: c.st.CheckEvery}
	}

	// Grow: stretch k geometrically (largest divisor of L at most 2k) and
	// double the cadence, both clamped by the hysteresis caps.
	kTarget := minInt(2*prevK, minInt(c.cfg.MaxK, c.st.KCap))
	if k := largestDivisorBetween(c.cfg.L, prevK, kTarget); k > prevK {
		c.st.K = k
	}
	if ce := minInt(2*prevCheck, minInt(c.cfg.MaxCheckEvery, c.st.CheckEveryCap)); ce > prevCheck {
		c.st.CheckEvery = ce
	}
	c.st.StableStreak = 0
	if c.st.K != prevK || c.st.CheckEvery != prevCheck {
		c.st.Grows++
		c.st.CooldownLeft = c.cfg.Cooldown
		c.record("stable_grow", c.lastRes)
		return Action{K: c.st.K, CheckEvery: c.st.CheckEvery, Changed: true, Reason: "stable_grow"}
	}
	return Action{K: c.st.K, CheckEvery: c.st.CheckEvery}
}

// breach returns the name of the first breached ceiling in severity order
// (residual, condition, drift), or "" if none. A zero ceiling disables the
// probe.
func (c *Controller) breach(winMax [obs.NumProbes]float64, winN [obs.NumProbes]int64) string {
	if c.cfg.ResidualCeil > 0 && winN[obs.ProbeStratResidual] > 0 && winMax[obs.ProbeStratResidual] > c.cfg.ResidualCeil {
		return "residual_ceiling"
	}
	if c.cfg.CondCeilLog10 > 0 && winN[obs.ProbeUDTCond] > 0 && winMax[obs.ProbeUDTCond] > c.cfg.CondCeilLog10 {
		return "cond_ceiling"
	}
	if c.cfg.DriftCeil > 0 && winN[obs.ProbeWrapDrift] > 0 && winMax[obs.ProbeWrapDrift] > c.cfg.DriftCeil {
		return "drift_ceiling"
	}
	return ""
}

// breachSignal returns the window value behind a breach reason.
func (c *Controller) breachSignal(reason string, winMax [obs.NumProbes]float64) float64 {
	switch reason {
	case "residual_ceiling":
		return winMax[obs.ProbeStratResidual]
	case "cond_ceiling":
		return winMax[obs.ProbeUDTCond]
	case "drift_ceiling":
		return winMax[obs.ProbeWrapDrift]
	}
	return 0
}

// stable reports whether the sweep window qualifies toward the growth
// streak: at least one sample arrived, every gated probe with samples is
// under its floor, and the last known residual (sampled sparsely, at
// cadence frequency) is under the residual floor.
//
//qmc:locked(mu)
func (c *Controller) stable(winMax [obs.NumProbes]float64, winN [obs.NumProbes]int64) bool {
	var total int64
	for _, n := range winN {
		total += n
	}
	if total == 0 {
		return false
	}
	if c.cfg.DriftFloor > 0 && winN[obs.ProbeWrapDrift] > 0 && winMax[obs.ProbeWrapDrift] > c.cfg.DriftFloor {
		return false
	}
	if c.cfg.CondFloorLog10 > 0 && winN[obs.ProbeUDTCond] > 0 && winMax[obs.ProbeUDTCond] > c.cfg.CondFloorLog10 {
		return false
	}
	if c.cfg.ResidualFloor > 0 && c.resSeen && c.lastRes > c.cfg.ResidualFloor {
		return false
	}
	return true
}

// record appends to the capped decision log. Caller holds c.mu.
//
//qmc:locked(mu)
func (c *Controller) record(reason string, signal float64) {
	if len(c.decisions) >= c.cfg.MaxDecisions {
		c.decisionsDropped = true
		return
	}
	if math.IsNaN(signal) || math.IsInf(signal, 0) {
		signal = 0 // the JSON document must stay marshalable
	}
	c.decisions = append(c.decisions, obs.AutopilotDecision{
		Sweep:      c.st.Sweep,
		K:          c.st.K,
		CheckEvery: c.st.CheckEvery,
		Reason:     reason,
		Signal:     signal,
	})
}

// K returns the current cluster size.
func (c *Controller) K() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.K
}

// CheckEvery returns the current stability-check cadence.
func (c *Controller) CheckEvery() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.CheckEvery
}

// State snapshots the controller state for checkpointing.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Restore overwrites the controller state from a checkpoint, clamping the
// restored k to a divisor of L so a hand-edited checkpoint cannot desync
// the cluster partition.
func (c *Controller) Restore(s State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.K < 1 || c.cfg.L%s.K != 0 {
		s.K = largestDivisorBetween(c.cfg.L, 0, maxInt(s.K, c.cfg.MinK))
	}
	if s.CheckEvery < 1 {
		s.CheckEvery = c.cfg.MinCheckEvery
	}
	if s.KCap < 1 {
		s.KCap = c.cfg.MaxK
	}
	if s.CheckEveryCap < 1 {
		s.CheckEveryCap = c.cfg.MaxCheckEvery
	}
	c.st = s
	// The resumed run starts from the restored knobs, so the trajectory
	// document reports them as its initial point.
	c.initialK = s.K
	c.initialCheckEvery = s.CheckEvery
}

// MetricsDoc renders the controller's trajectory for the metrics document.
func (c *Controller) MetricsDoc() *obs.AutopilotMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &obs.AutopilotMetrics{
		Enabled:           true,
		InitialK:          c.initialK,
		FinalK:            c.st.K,
		InitialCheckEvery: c.initialCheckEvery,
		FinalCheckEvery:   c.st.CheckEvery,
		Shrinks:           c.st.Shrinks,
		Grows:             c.st.Grows,
		KCap:              c.st.KCap,
		NonFiniteEvents:   c.st.NonFiniteEvents,
		NonFinite:         c.st.NonFinite,
	}
	m.Decisions = append(m.Decisions, c.decisions...)
	return m
}

// largestDivisorBelow returns the largest divisor of L that is < k and
// >= min, or min-clamped smallest divisor if none is (i.e. k is already
// minimal): the shrink step.
func largestDivisorBelow(L, k, min int) int {
	for d := k - 1; d >= min; d-- {
		if L%d == 0 {
			return d
		}
	}
	return smallestDivisorAtLeast(L, min)
}

// largestDivisorBetween returns the largest divisor of L in (lo, hi], or lo
// if none: the grow step.
func largestDivisorBetween(L, lo, hi int) int {
	if hi > L {
		hi = L
	}
	for d := hi; d > lo; d-- {
		if L%d == 0 {
			return d
		}
	}
	return lo
}

// smallestDivisorAtLeast returns the smallest divisor of L that is >= min
// (L itself in the worst case).
func smallestDivisorAtLeast(L, min int) int {
	if min < 1 {
		min = 1
	}
	for d := min; d <= L; d++ {
		if L%d == 0 {
			return d
		}
	}
	return L
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
